//===-- core/BruteForceOptimizer.cpp - Exact enumeration oracle -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BruteForceOptimizer.h"

#include <limits>
#include <vector>

using namespace ecosched;

namespace {

/// Depth-first enumeration state.
struct EnumerationState {
  const CombinationProblem &P;
  bool Minimize;
  /// Per-job minimum constraint weight of the remaining suffix; used to
  /// prune branches that cannot stay within the limit.
  std::vector<double> SuffixMinWeight;
  /// Per-job best possible objective of the remaining suffix; used to
  /// prune branches that cannot beat the incumbent.
  std::vector<double> SuffixBestObjective;

  std::vector<size_t> Stack;
  std::vector<size_t> BestSelected;
  double BestObjective = 0.0;
  bool HaveBest = false;

  explicit EnumerationState(const CombinationProblem &P)
      : P(P), Minimize(P.Direction == DirectionKind::Minimize) {
    const size_t N = P.PerJob.size();
    SuffixMinWeight.assign(N + 1, 0.0);
    SuffixBestObjective.assign(N + 1, 0.0);
    for (size_t I = N; I-- > 0;) {
      double MinWeight = std::numeric_limits<double>::infinity();
      double BestObj = Minimize ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity();
      for (const AlternativeValue &V : P.PerJob[I]) {
        const double W = V.get(P.Constraint);
        MinWeight = W < MinWeight ? W : MinWeight;
        const double G = V.get(P.Objective);
        if (Minimize ? G < BestObj : G > BestObj)
          BestObj = G;
      }
      SuffixMinWeight[I] = SuffixMinWeight[I + 1] + MinWeight;
      SuffixBestObjective[I] = SuffixBestObjective[I + 1] + BestObj;
    }
  }

  void visit(size_t Job, double Objective, double Weight) {
    if (Job == P.PerJob.size()) {
      if (!HaveBest ||
          (Minimize ? Objective < BestObjective
                    : Objective > BestObjective)) {
        BestObjective = Objective;
        BestSelected = Stack;
        HaveBest = true;
      }
      return;
    }
    // Prune: the cheapest completion already violates the limit.
    if (approxGt(Weight + SuffixMinWeight[Job], P.Limit))
      return;
    // Prune: even the ideal completion cannot beat the incumbent.
    if (HaveBest) {
      const double Ideal = Objective + SuffixBestObjective[Job];
      if (Minimize ? Ideal >= BestObjective : Ideal <= BestObjective)
        return;
    }
    for (size_t A = 0, E = P.PerJob[Job].size(); A != E; ++A) {
      const AlternativeValue &V = P.PerJob[Job][A];
      const double NextWeight = Weight + V.get(P.Constraint);
      if (approxGt(NextWeight, P.Limit))
        continue;
      Stack.push_back(A);
      visit(Job + 1, Objective + V.get(P.Objective), NextWeight);
      Stack.pop_back();
    }
  }
};

} // namespace

CombinationChoice
BruteForceOptimizer::solve(const CombinationProblem &Problem) const {
  CombinationChoice Infeasible;
  if (Problem.PerJob.empty())
    return Infeasible;
  for (const auto &Alts : Problem.PerJob)
    if (Alts.empty())
      return Infeasible;

  EnumerationState State(Problem);
  State.visit(0, 0.0, 0.0);
  if (!State.HaveBest)
    return Infeasible;
  return evaluateSelection(Problem, std::move(State.BestSelected));
}
