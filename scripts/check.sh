#!/usr/bin/env bash
# check.sh - build every correctness preset and run the test suite under it.
#
# Usage: scripts/check.sh [--preset NAME]... [--jobs N]
#
#   --preset NAME   Run only the named preset(s) (release, asan-ubsan, tsan).
#                   May be repeated. Default: release, asan-ubsan, tsan.
#   --with-tsan     Deprecated no-op: tsan is part of the default set now
#                   that the ThreadPool subsystem gives it concurrent code
#                   to exercise (see docs/CONCURRENCY.md).
#   --jobs N        Parallelism for builds and ctest (default: nproc).
#
# The tsan preset builds everything but runs only the concurrency-
# relevant tests (ThreadPool*, Experiment*, AlternativeSearchParallel*,
# SlotFilter*, SlotIntervalIndex*, and MultiVoDriver*): the rest of
# the suite is single-threaded and already covered by the other
# presets, and tsan's ~10x slowdown makes a full run pure cost.
#
# Exits non-zero on the first failing configure, build, or test run.
# See docs/STATIC_ANALYSIS.md for the preset definitions.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
PRESETS=()
WITH_TSAN=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || { echo "error: --preset needs an argument" >&2; exit 2; }
      PRESETS+=("$2"); shift 2 ;;
    --with-tsan)
      WITH_TSAN=1; shift ;;
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,15p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

if [[ ${#PRESETS[@]} -eq 0 ]]; then
  PRESETS=(release asan-ubsan tsan)
fi
[[ $WITH_TSAN -eq 1 ]] && echo "note: --with-tsan is a no-op; tsan runs by default"

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] ctest ===="
  if [[ "$preset" == tsan ]]; then
    # Concurrency-relevant tests only; see the header comment.
    ctest --preset "$preset" -j "$JOBS" \
      -R '^(ThreadPool|Experiment|AlternativeSearchParallel|SlotFilter|PersistentFilter|SlotIntervalIndex|MultiVoDriver)'
  else
    ctest --preset "$preset" -j "$JOBS"
  fi
  echo "==== [$preset] OK ===="
done

echo "check.sh: all presets passed: ${PRESETS[*]}"
