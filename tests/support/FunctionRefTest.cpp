//===-- tests/support/FunctionRefTest.cpp - FunctionRef unit tests --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Direct unit tests for support/FunctionRef.h: binding forms (lambda,
// function pointer, functor, member via lambda), non-owning semantics
// (state lives at the call site; copies alias the same callable), and
// const-correctness of both the reference and the referenced callable.
//
//===----------------------------------------------------------------------===//

#include "support/FunctionRef.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

using ecosched::FunctionRef;

namespace {

int freeTwice(int X) { return 2 * X; }

struct Accumulator {
  int Total = 0;
  int add(int X) {
    Total += X;
    return Total;
  }
};

struct ConstFunctor {
  int Base;
  int operator()(int X) const { return Base + X; }
};

TEST(FunctionRefTest, BindsLambda) {
  const FunctionRef<int(int)> Ref = [](int X) { return X + 1; };
  EXPECT_EQ(Ref(41), 42);
}

TEST(FunctionRefTest, BindsCapturingLambdaWithoutCopyingState) {
  int Calls = 0;
  auto Counter = [&Calls](int X) {
    ++Calls;
    return X;
  };
  const FunctionRef<int(int)> Ref = Counter;
  EXPECT_EQ(Ref(7), 7);
  EXPECT_EQ(Ref(8), 8);
  // Non-owning: the reference invoked the *original* lambda, so its
  // captured counter advanced — there is no hidden copy of the state.
  EXPECT_EQ(Calls, 2);
}

TEST(FunctionRefTest, BindsFunctionPointer) {
  const FunctionRef<int(int)> Ref = freeTwice;
  EXPECT_EQ(Ref(21), 42);
}

TEST(FunctionRefTest, BindsMutableFunctorAndMutatesIt) {
  Accumulator Acc;
  auto Call = [&Acc](int X) { return Acc.add(X); };
  const FunctionRef<int(int)> Ref = Call;
  EXPECT_EQ(Ref(5), 5);
  EXPECT_EQ(Ref(6), 11);
  EXPECT_EQ(Acc.Total, 11);
}

TEST(FunctionRefTest, BindsConstCallable) {
  const ConstFunctor Plus{40};
  const FunctionRef<int(int)> Ref = Plus;
  EXPECT_EQ(Ref(2), 42);
}

TEST(FunctionRefTest, CopiesAliasTheSameCallable) {
  int Hits = 0;
  auto Bump = [&Hits]() { ++Hits; };
  const FunctionRef<void()> First = Bump;
  const FunctionRef<void()> Second = First; // Trivial two-word copy.
  First();
  Second();
  EXPECT_EQ(Hits, 2);
}

TEST(FunctionRefTest, PassesReferencesThrough) {
  auto Doubler = [](std::vector<int> &V) {
    for (int &X : V)
      X *= 2;
  };
  const FunctionRef<void(std::vector<int> &)> Ref = Doubler;
  std::vector<int> Values = {1, 2, 3};
  Ref(Values);
  EXPECT_EQ(Values, (std::vector<int>{2, 4, 6}));
}

TEST(FunctionRefTest, ForwardsMoveOnlyArguments) {
  auto Consume = [](std::unique_ptr<int> P) { return *P; };
  const FunctionRef<int(std::unique_ptr<int>)> Ref = Consume;
  EXPECT_EQ(Ref(std::make_unique<int>(9)), 9);
}

TEST(FunctionRefTest, ReturnsByValueFromConvertibleCallable) {
  auto MakeString = [](int N) { return std::to_string(N); };
  const FunctionRef<std::string(int)> Ref = MakeString;
  EXPECT_EQ(Ref(123), "123");
}

TEST(FunctionRefTest, IsTwoWordsAndTriviallyCopyable) {
  using Ref = FunctionRef<int(int)>;
  static_assert(std::is_trivially_copyable_v<Ref>,
                "FunctionRef must stay a trivially copyable value type");
  static_assert(sizeof(Ref) <= 2 * sizeof(void *),
                "FunctionRef must stay two words — it rides in registers "
                "on the subtractExact hot path");
  SUCCEED();
}

// The canonical user: SlotList::subtractExact's remainder filter takes a
// FunctionRef<bool(const Slot &)>. Mirror that shape to pin down that a
// predicate over a const reference binds and discriminates.
TEST(FunctionRefTest, PredicateOverConstRefParameter) {
  const double MinLen = 2.0;
  auto LongEnough = [&](const std::pair<double, double> &Span) {
    return Span.second - Span.first >= MinLen;
  };
  const FunctionRef<bool(const std::pair<double, double> &)> Keep =
      LongEnough;
  EXPECT_TRUE(Keep({0.0, 3.0}));
  EXPECT_FALSE(Keep({0.0, 1.0}));
}

} // namespace
