//===-- sim/Slot.h - Vacant time slot model ------------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slot is a vacant time span on one computational node that can be
/// assigned to a task of a parallel job (Section 1 of the paper). The
/// node's performance and unit price are denormalized into the slot so
/// the search algorithms can scan a flat list.
///
/// This is the storage bridge of the unit-tagged quantity layer
/// (support/Units.h): the fields stay raw doubles — they are the trace
/// and snapshot representation, and the exact sort keys below need the
/// raw bits — while the typed accessors (start/end/span/price) hand the
/// rest of the library dimension-checked quantities. Slot.h and Units.h
/// are the only files exempt from the fplint raw-comparison rules
/// (docs/STATIC_ANALYSIS.md).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOT_H
#define ECOSCHED_SIM_SLOT_H

#include "support/Check.h"
#include "support/Units.h"

#include <cmath>

namespace ecosched {

/// A vacant time span on one node.
struct Slot {
  /// Node the slot is allocated on.
  int NodeId = -1;
  /// Relative performance rate of that node.
  double Performance = 1.0;
  /// Usage cost per time unit of that node.
  double UnitPrice = 0.0;
  /// Start time of the vacant span.
  double Start = 0.0;
  /// End time of the vacant span (exclusive).
  double End = 0.0;

  Slot() = default;
  Slot(int NodeId, double Performance, double UnitPrice, double Start,
       double End)
      : NodeId(NodeId), Performance(Performance), UnitPrice(UnitPrice),
        Start(Start), End(End) {
    ECOSCHED_CHECK(End >= Start, "slot on node {} ends before it starts: [{}, {})",
                   NodeId, Start, End);
    ECOSCHED_CHECK(Performance > 0.0,
                   "node {} performance must be positive, got {}", NodeId,
                   Performance);
  }

  /// Time span of the slot as a raw double (storage-level convenience;
  /// span() is the typed equivalent).
  double length() const { return End - Start; }

  /// Start of the vacant span as a typed instant.
  TimePoint start() const { return TimePoint(Start); }

  /// End of the vacant span as a typed instant.
  TimePoint end() const { return TimePoint(End); }

  /// Time span of the slot as a typed duration.
  Duration span() const { return Duration(End - Start); }

  /// Usage price of the slot's node as a typed rate.
  Price price() const { return Price(UnitPrice); }

  /// Runtime of a task of etalon volume \p Volume on this slot's node.
  Duration runtimeFor(double Volume) const {
    return Duration(Volume / Performance);
  }

  /// True if the slot still offers at least \p Needed time when the
  /// task starts at \p StartTime (used by the expiration step 3 of
  /// ALP/AMP).
  bool coversFrom(TimePoint StartTime, Duration Needed) const {
    return approxLe(Start, StartTime.value()) &&
           approxGe(End - StartTime.value(), Needed.value());
  }
};

/// Ordering used by the search algorithms: non-decreasing start time,
/// ties broken by node id for determinism. Comparisons are exact on
/// purpose: a tolerant comparator is not a strict weak ordering.
inline bool slotStartLess(const Slot &A, const Slot &B) {
  if (A.Start != B.Start)
    return A.Start < B.Start;
  if (A.NodeId != B.NodeId)
    return A.NodeId < B.NodeId;
  return A.End < B.End;
}

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOT_H
