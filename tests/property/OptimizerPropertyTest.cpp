//===-- tests/property/OptimizerPropertyTest.cpp - DP vs oracle -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Property tests of the combination optimizers on random instances:
/// the discretized backward-run DP must agree in feasibility with the
/// exact enumeration, never violate the constraint, and approach the
/// exact optimum as the grid refines.
///
//===----------------------------------------------------------------------===//

#include "core/BruteForceOptimizer.h"
#include "core/DpOptimizer.h"
#include "core/GreedyOptimizer.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

CombinationProblem makeRandomProblem(RandomGenerator &Rng) {
  CombinationProblem P;
  const int Jobs = static_cast<int>(Rng.uniformInt(1, 5));
  double MinWeightSum = 0.0;
  for (int I = 0; I < Jobs; ++I) {
    std::vector<AlternativeValue> Alts;
    const int Count = static_cast<int>(Rng.uniformInt(1, 6));
    double MinWeight = 1e18;
    for (int A = 0; A < Count; ++A) {
      AlternativeValue V;
      V.Cost = Rng.uniformReal(5.0, 400.0);
      V.Time = Rng.uniformReal(20.0, 150.0);
      Alts.push_back(V);
      MinWeight = std::min(MinWeight, V.Cost);
    }
    MinWeightSum += MinWeight;
    P.PerJob.push_back(std::move(Alts));
  }
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  // Mix feasible, tight, and infeasible limits.
  P.Limit = MinWeightSum * Rng.uniformReal(0.7, 2.0);
  return P;
}

} // namespace

class OptimizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerPropertyTest, DpAgreesWithExactOracle) {
  RandomGenerator Rng(GetParam());
  BruteForceOptimizer Exact;
  DpOptimizer Dp(8192);
  for (int Round = 0; Round < 20; ++Round) {
    const CombinationProblem P = makeRandomProblem(Rng);
    const CombinationChoice Want = Exact.solve(P);
    const CombinationChoice Got = Dp.solve(P);

    if (!Want.Feasible) {
      // Exact infeasible => DP infeasible (its grid only tightens).
      EXPECT_FALSE(Got.Feasible);
      continue;
    }
    // Ceil-rounding distorts each job's weight by less than one cell,
    // so a selection whose true slack exceeds n cells stays feasible on
    // the grid.
    const double Cell = P.Limit > 0.0 ? P.Limit / 8192.0 : 1.0;
    const double SlackNeeded =
        Cell * static_cast<double>(P.PerJob.size()) + 1e-9;
    const double Slack = P.Limit - Want.ConstraintTotal;
    if (!Got.Feasible) {
      // Only borderline instances may be rejected.
      EXPECT_LE(Slack, SlackNeeded);
      continue;
    }
    // Feasible DP choices satisfy the true constraint...
    EXPECT_LE(Got.ConstraintTotal, P.Limit + 1e-9);
    // ...and cannot beat the exact optimum.
    EXPECT_GE(Got.ObjectiveTotal, Want.ObjectiveTotal - 1e-9);
    // With enough slack the exact optimum is itself grid-feasible, so
    // the DP must match it exactly.
    if (Slack >= SlackNeeded) {
      EXPECT_NEAR(Got.ObjectiveTotal, Want.ObjectiveTotal, 1e-6);
    }
  }
}

TEST_P(OptimizerPropertyTest, GreedyIsFeasibleNeverBetterThanExact) {
  RandomGenerator Rng(GetParam() + 1000);
  BruteForceOptimizer Exact;
  GreedyOptimizer Greedy;
  for (int Round = 0; Round < 20; ++Round) {
    const CombinationProblem P = makeRandomProblem(Rng);
    const CombinationChoice Want = Exact.solve(P);
    const CombinationChoice Got = Greedy.solve(P);
    EXPECT_EQ(Want.Feasible, Got.Feasible);
    if (!Got.Feasible)
      continue;
    EXPECT_LE(Got.ConstraintTotal, P.Limit + 1e-9);
    EXPECT_GE(Got.ObjectiveTotal, Want.ObjectiveTotal - 1e-9);
  }
}

TEST_P(OptimizerPropertyTest, MaximizationMirrorsMinimization) {
  RandomGenerator Rng(GetParam() + 2000);
  BruteForceOptimizer Exact;
  DpOptimizer Dp(8192);
  for (int Round = 0; Round < 10; ++Round) {
    CombinationProblem P = makeRandomProblem(Rng);
    P.Objective = MeasureKind::Cost;
    P.Direction = DirectionKind::Maximize;
    P.Constraint = MeasureKind::Time;
    P.Limit = Rng.uniformReal(100.0, 600.0);
    const CombinationChoice Want = Exact.solve(P);
    const CombinationChoice Got = Dp.solve(P);
    if (!Want.Feasible) {
      EXPECT_FALSE(Got.Feasible);
      continue;
    }
    if (!Got.Feasible)
      continue; // Borderline grid rejection, as above.
    EXPECT_LE(Got.ConstraintTotal, P.Limit + 1e-9);
    EXPECT_LE(Got.ObjectiveTotal, Want.ObjectiveTotal + 1e-9);
    const double Cell = P.Limit > 0.0 ? P.Limit / 8192.0 : 1.0;
    const double SlackNeeded =
        Cell * static_cast<double>(P.PerJob.size()) + 1e-9;
    if (P.Limit - Want.ConstraintTotal >= SlackNeeded) {
      EXPECT_NEAR(Got.ObjectiveTotal, Want.ObjectiveTotal, 1e-6);
    }
  }
}

TEST_P(OptimizerPropertyTest, AnyResolutionRespectsConstraintAndOracle) {
  RandomGenerator Rng(GetParam() + 3000);
  BruteForceOptimizer Exact;
  for (int Round = 0; Round < 5; ++Round) {
    const CombinationProblem P = makeRandomProblem(Rng);
    const CombinationChoice Want = Exact.solve(P);
    for (size_t Bins : {64u, 256u, 4096u, 16384u}) {
      const CombinationChoice Got = DpOptimizer(Bins).solve(P);
      if (!Got.Feasible)
        continue;
      ASSERT_TRUE(Want.Feasible);
      EXPECT_LE(Got.ConstraintTotal, P.Limit + 1e-9);
      EXPECT_GE(Got.ObjectiveTotal, Want.ObjectiveTotal - 1e-9);
    }
  }
}

TEST_P(OptimizerPropertyTest, ExactBoundaryOptimaAreFound) {
  // Construct instances whose optimum sits exactly at the limit; the
  // floor-rounded second DP pass must recover them (its validated
  // reconstruction is provably the true optimum).
  RandomGenerator Rng(GetParam() + 4000);
  BruteForceOptimizer Exact;
  DpOptimizer Dp(4096);
  for (int Round = 0; Round < 10; ++Round) {
    CombinationProblem P = makeRandomProblem(Rng);
    // Pin the limit to one concrete selection's exact weight.
    std::vector<size_t> Pick;
    double Weight = 0.0;
    for (const auto &Alts : P.PerJob) {
      const size_t A =
          static_cast<size_t>(Rng.uniformInt(0, Alts.size() - 1));
      Pick.push_back(A);
      Weight += Alts[A].get(P.Constraint);
    }
    P.Limit = Weight;
    const CombinationChoice Want = Exact.solve(P);
    ASSERT_TRUE(Want.Feasible); // Pick itself is feasible.
    const CombinationChoice Got = Dp.solve(P);
    ASSERT_TRUE(Got.Feasible);
    EXPECT_LE(Got.ConstraintTotal, P.Limit + 1e-9);
    EXPECT_GE(Got.ObjectiveTotal, Want.ObjectiveTotal - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Range<uint64_t>(1, 17));
