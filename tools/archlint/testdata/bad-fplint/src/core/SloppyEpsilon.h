//===-- SloppyEpsilon.h - archlint negative fixture ----------------*- C++ -*-=//
//
// Deliberately violates the fplint epsilon-discipline rules: a raw
// relational on a time-dimensioned identifier, a hand-rolled epsilon
// composed with a raw comparison, and a public signature taking raw
// double for a dimensioned parameter. One additional violation is
// suppressed with a rationale so the JSON smoke test can assert the
// suppressed:true plumbing. The ArchLintNegativeFplint ctest lints
// this tree and is marked WILL_FAIL — if the linter ever stops
// flagging these hazards, CI fails.
//
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_SLOPPYEPSILON_H
#define ECOSCHED_CORE_SLOPPYEPSILON_H

struct SloppyEpsilon {
  // fp-double-api: dimensioned parameter passed as a bare double.
  bool admits(double StartTime, double Deadline) const {
    // fp-raw-compare: raw relational on time quantities.
    if (StartTime < Deadline)
      return true;
    // fp-raw-epsilon: hand-rolled tolerance instead of approxLe.
    return StartTime <= Deadline + 1e-9;
  }

  bool tieBreak() const {
    const double AEnd = 1.0;
    const double BEnd = 2.0;
    // archlint-allow(fp-raw-compare): fixture case for the suppression
    // plumbing — the JSON smoke test asserts this surfaces with
    // suppressed:true and does not count towards the exit code.
    return AEnd < BEnd;
  }
};

#endif // ECOSCHED_CORE_SLOPPYEPSILON_H
