
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AlpSearch.cpp" "src/core/CMakeFiles/ecosched_core.dir/AlpSearch.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/AlpSearch.cpp.o.d"
  "/root/repo/src/core/AlternativeSearch.cpp" "src/core/CMakeFiles/ecosched_core.dir/AlternativeSearch.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/AlternativeSearch.cpp.o.d"
  "/root/repo/src/core/AmpSearch.cpp" "src/core/CMakeFiles/ecosched_core.dir/AmpSearch.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/AmpSearch.cpp.o.d"
  "/root/repo/src/core/BackfillSearch.cpp" "src/core/CMakeFiles/ecosched_core.dir/BackfillSearch.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/BackfillSearch.cpp.o.d"
  "/root/repo/src/core/BatchOrdering.cpp" "src/core/CMakeFiles/ecosched_core.dir/BatchOrdering.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/BatchOrdering.cpp.o.d"
  "/root/repo/src/core/BatchSearch.cpp" "src/core/CMakeFiles/ecosched_core.dir/BatchSearch.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/BatchSearch.cpp.o.d"
  "/root/repo/src/core/BicriteriaOptimizer.cpp" "src/core/CMakeFiles/ecosched_core.dir/BicriteriaOptimizer.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/BicriteriaOptimizer.cpp.o.d"
  "/root/repo/src/core/BruteForceOptimizer.cpp" "src/core/CMakeFiles/ecosched_core.dir/BruteForceOptimizer.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/BruteForceOptimizer.cpp.o.d"
  "/root/repo/src/core/DpOptimizer.cpp" "src/core/CMakeFiles/ecosched_core.dir/DpOptimizer.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/DpOptimizer.cpp.o.d"
  "/root/repo/src/core/DynamicPricing.cpp" "src/core/CMakeFiles/ecosched_core.dir/DynamicPricing.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/DynamicPricing.cpp.o.d"
  "/root/repo/src/core/Experiment.cpp" "src/core/CMakeFiles/ecosched_core.dir/Experiment.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/Experiment.cpp.o.d"
  "/root/repo/src/core/GreedyOptimizer.cpp" "src/core/CMakeFiles/ecosched_core.dir/GreedyOptimizer.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/GreedyOptimizer.cpp.o.d"
  "/root/repo/src/core/Limits.cpp" "src/core/CMakeFiles/ecosched_core.dir/Limits.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/Limits.cpp.o.d"
  "/root/repo/src/core/Metascheduler.cpp" "src/core/CMakeFiles/ecosched_core.dir/Metascheduler.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/Metascheduler.cpp.o.d"
  "/root/repo/src/core/Optimizer.cpp" "src/core/CMakeFiles/ecosched_core.dir/Optimizer.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/Optimizer.cpp.o.d"
  "/root/repo/src/core/SearchAlgorithm.cpp" "src/core/CMakeFiles/ecosched_core.dir/SearchAlgorithm.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/SearchAlgorithm.cpp.o.d"
  "/root/repo/src/core/SearchCommon.cpp" "src/core/CMakeFiles/ecosched_core.dir/SearchCommon.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/SearchCommon.cpp.o.d"
  "/root/repo/src/core/Strategy.cpp" "src/core/CMakeFiles/ecosched_core.dir/Strategy.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/Strategy.cpp.o.d"
  "/root/repo/src/core/VirtualOrganization.cpp" "src/core/CMakeFiles/ecosched_core.dir/VirtualOrganization.cpp.o" "gcc" "src/core/CMakeFiles/ecosched_core.dir/VirtualOrganization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
