//===-- tests/sim/SlotTest.cpp - Slot model unit tests --------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/Slot.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(SlotTest, LengthAndRuntime) {
  Slot S(/*NodeId=*/0, /*Performance=*/2.0, /*UnitPrice=*/3.0,
         /*Start=*/10.0, /*End=*/110.0);
  EXPECT_DOUBLE_EQ(S.length(), 100.0);
  // A task of volume 80 runs for 40 on a performance-2 node.
  EXPECT_DOUBLE_EQ(S.runtimeFor(80.0).value(), 40.0);
}

TEST(SlotTest, EtalonNodeRuntimeEqualsVolume) {
  Slot S(0, 1.0, 1.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(S.runtimeFor(65.0).value(), 65.0);
}

TEST(SlotTest, CoversFromInside) {
  Slot S(0, 1.0, 1.0, 100.0, 200.0);
  EXPECT_TRUE(S.coversFrom(TimePoint(100.0), Duration(100.0))); // Exactly fits.
  EXPECT_TRUE(S.coversFrom(TimePoint(150.0), Duration(50.0)));  // Tail fits.
  EXPECT_TRUE(S.coversFrom(TimePoint(120.0), Duration(30.0)));  // Interior.
}

TEST(SlotTest, CoversFromRejectsOutside) {
  Slot S(0, 1.0, 1.0, 100.0, 200.0);
  EXPECT_FALSE(S.coversFrom(TimePoint(99.0), Duration(10.0)));   // Starts before the slot.
  EXPECT_FALSE(S.coversFrom(TimePoint(150.0), Duration(51.0)));  // Overruns the end.
  EXPECT_FALSE(S.coversFrom(TimePoint(200.0), Duration(1.0)));   // Starts at the end.
}

TEST(SlotTest, CoversFromToleratesEpsilon) {
  Slot S(0, 1.0, 1.0, 100.0, 200.0);
  EXPECT_TRUE(S.coversFrom(TimePoint(100.0 - 1e-12), Duration(100.0)));
  EXPECT_TRUE(S.coversFrom(TimePoint(100.0), Duration(100.0 + 1e-12)));
}

TEST(SlotStartLessTest, OrdersByStartThenNodeThenEnd) {
  Slot A(0, 1.0, 1.0, 10.0, 20.0);
  Slot B(1, 1.0, 1.0, 15.0, 20.0);
  Slot C(0, 1.0, 1.0, 15.0, 25.0);
  Slot D(0, 1.0, 1.0, 15.0, 30.0);
  EXPECT_TRUE(slotStartLess(A, B));  // Earlier start.
  EXPECT_FALSE(slotStartLess(B, A));
  EXPECT_TRUE(slotStartLess(C, B));  // Same start: node 0 < node 1.
  EXPECT_TRUE(slotStartLess(C, D));  // Same start+node: shorter end.
  EXPECT_FALSE(slotStartLess(C, C)); // Irreflexive.
}
