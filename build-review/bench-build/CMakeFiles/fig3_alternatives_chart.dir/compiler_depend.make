# Empty compiler generated dependencies file for fig3_alternatives_chart.
# This may be replaced when dependencies are built.
