//===-- tests/integration/PaperPipelineTest.cpp - Section 4 end-to-end ----===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end reproduction of the Section 4 example: the AMP first pass
/// over the reconstructed environment must find exactly the paper's
/// windows W1, W2, W3, ALP must exclude cpu6 where the paper says it
/// does, and the full two-phase scheduling of the batch must succeed.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "sim/PaperExample.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

class PaperPipelineTest : public ::testing::Test {
protected:
  void SetUp() override {
    Domain = buildPaperExampleDomain();
    Jobs = buildPaperExampleBatch();
    Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));
  }

  ComputingDomain Domain;
  Batch Jobs;
  SlotList Slots;
};

} // namespace

TEST_F(PaperPipelineTest, AmpFirstPassFindsW1) {
  AmpSearch Amp;
  const auto W1 = Amp.findWindow(Slots, Jobs[0].Request);
  ASSERT_TRUE(W1.has_value());
  // "The alternative found for Job 1 has two rectangles on cpu1 and
  // cpu4 resource lines on a time span [150, 230] ... total cost per
  // time unit of this window is 10."
  EXPECT_DOUBLE_EQ(W1->startTime().value(), 150.0);
  EXPECT_DOUBLE_EQ(W1->endTime().value(), 230.0);
  EXPECT_TRUE(W1->usesNode(0)); // cpu1.
  EXPECT_TRUE(W1->usesNode(3)); // cpu4.
  EXPECT_DOUBLE_EQ(W1->unitPriceSum().value(), 10.0);
}

TEST_F(PaperPipelineTest, AmpFirstPassFindsW2AfterW1Subtraction) {
  AmpSearch Amp;
  SlotList Work = Slots;
  const auto W1 = Amp.findWindow(Work, Jobs[0].Request);
  ASSERT_TRUE(W1.has_value());
  ASSERT_TRUE(W1->subtractFrom(Work));

  const auto W2 = Amp.findWindow(Work, Jobs[1].Request);
  ASSERT_TRUE(W2.has_value());
  // "The earliest suitable window for the second job consists of three
  // slots on the cpu1, cpu2 and cpu4 resource lines with a total cost
  // of 14 per time unit."
  EXPECT_TRUE(W2->usesNode(0)); // cpu1.
  EXPECT_TRUE(W2->usesNode(1)); // cpu2.
  EXPECT_TRUE(W2->usesNode(3)); // cpu4.
  EXPECT_DOUBLE_EQ(W2->unitPriceSum().value(), 14.0);
  EXPECT_DOUBLE_EQ(W2->startTime().value(), 230.0);
  EXPECT_DOUBLE_EQ(W2->timeSpan().value(), 30.0);
}

TEST_F(PaperPipelineTest, AmpFirstPassFindsW3OnSpan450To500) {
  AmpSearch Amp;
  SlotList Work = Slots;
  for (int JobIndex : {0, 1}) {
    const auto W =
        Amp.findWindow(Work, Jobs[static_cast<size_t>(JobIndex)].Request);
    ASSERT_TRUE(W.has_value());
    ASSERT_TRUE(W->subtractFrom(Work));
  }
  const auto W3 = Amp.findWindow(Work, Jobs[2].Request);
  ASSERT_TRUE(W3.has_value());
  // "The earliest possible alternative for the third job is W3 window
  // on a time span of [450, 500]."
  EXPECT_DOUBLE_EQ(W3->startTime().value(), 450.0);
  EXPECT_DOUBLE_EQ(W3->endTime().value(), 500.0);
  EXPECT_TRUE(W3->usesNode(2)); // cpu3.
  EXPECT_TRUE(W3->usesNode(4)); // cpu5.
}

TEST_F(PaperPipelineTest, AlpExcludesCpu6ForJob2ButAmpUsesIt) {
  // "In ALP approach the restriction to the cost of individual slots
  // would be equal to 10 for Job 2 ... so the computational resource
  // cpu6 with a 12 usage cost value is not considered ... However in
  // the presented AMP approach [alternatives] use the slots allocated
  // on the cpu6 resource line."
  AlpSearch Alp;
  AmpSearch Amp;
  const AlternativeSet AlpAlts = AlternativeSearch(Alp).run(Slots, Jobs);
  const AlternativeSet AmpAlts = AlternativeSearch(Amp).run(Slots, Jobs);

  bool AlpUsesCpu6 = false;
  for (const auto &PerJob : AlpAlts.PerJob)
    for (const Window &W : PerJob)
      AlpUsesCpu6 |= W.usesNode(5);
  EXPECT_FALSE(AlpUsesCpu6);

  bool AmpUsesCpu6 = false;
  for (const auto &PerJob : AmpAlts.PerJob)
    for (const Window &W : PerJob)
      AmpUsesCpu6 |= W.usesNode(5);
  EXPECT_TRUE(AmpUsesCpu6);
}

TEST_F(PaperPipelineTest, AmpFindsMoreAlternativesThanAlp) {
  AlpSearch Alp;
  AmpSearch Amp;
  const AlternativeSet AlpAlts = AlternativeSearch(Alp).run(Slots, Jobs);
  const AlternativeSet AmpAlts = AlternativeSearch(Amp).run(Slots, Jobs);
  EXPECT_TRUE(AmpAlts.allCovered());
  EXPECT_GT(AmpAlts.total(), AlpAlts.total());
}

TEST_F(PaperPipelineTest, FullSchedulingIterationCommitsBatch) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const IterationOutcome Out = Scheduler.runIteration(Slots, Jobs);
  ASSERT_TRUE(Out.Choice.Feasible);
  ASSERT_EQ(Out.Scheduled.size(), 3u);

  // Committing the chosen windows into the domain must succeed: they
  // are vacant by construction and pairwise disjoint.
  ComputingDomain Commit = buildPaperExampleDomain();
  for (const ScheduledJob &S : Out.Scheduled)
    ASSERT_TRUE(Commit.reserveWindow(S.W, S.JobId));
  EXPECT_GT(Commit.externalLoad(), 0.0);
}

TEST_F(PaperPipelineTest, CostMinimizationAlsoFeasible) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config Cfg;
  Cfg.Task = OptimizationTaskKind::MinimizeCost;
  Metascheduler Scheduler(Amp, Dp, Cfg);
  const IterationOutcome Out = Scheduler.runIteration(Slots, Jobs);
  ASSERT_TRUE(Out.Choice.Feasible);
  EXPECT_LE(Out.Choice.ConstraintTotal, Out.TimeQuota + 1e-9);
}
