//===-- sim/PaperExample.cpp - Section 4 example environment --------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/PaperExample.h"


using namespace ecosched;

ComputingDomain ecosched::buildPaperExampleDomain() {
  ComputingDomain Domain;
  // All nodes have etalon performance (Section 4 assumes a uniform set
  // of resources, so windows are rectangular).
  const int Cpu1 = Domain.addNode(1.0, 4.0, "cpu1");
  const int Cpu2 = Domain.addNode(1.0, 4.0, "cpu2");
  const int Cpu3 = Domain.addNode(1.0, 3.0, "cpu3");
  const int Cpu4 = Domain.addNode(1.0, 6.0, "cpu4");
  const int Cpu5 = Domain.addNode(1.0, 2.0, "cpu5");
  const int Cpu6 = Domain.addNode(1.0, 12.0, "cpu6");

  // Local tasks p1..p7 already scheduled in the system.
  bool Ok = true;
  Ok &= Domain.addLocalTask(Cpu1, TimePoint(0.0), TimePoint(150.0), /*TaskId=*/1);
  Ok &= Domain.addLocalTask(Cpu2, TimePoint(0.0), TimePoint(200.0), /*TaskId=*/2);
  Ok &= Domain.addLocalTask(Cpu3, TimePoint(40.0), TimePoint(350.0), /*TaskId=*/3);
  Ok &= Domain.addLocalTask(Cpu4, TimePoint(20.0), TimePoint(150.0), /*TaskId=*/4);
  Ok &= Domain.addLocalTask(Cpu2, TimePoint(320.0), TimePoint(420.0), /*TaskId=*/5);
  Ok &= Domain.addLocalTask(Cpu5, TimePoint(100.0), TimePoint(450.0), /*TaskId=*/6);
  Ok &= Domain.addLocalTask(Cpu6, TimePoint(0.0), TimePoint(250.0), /*TaskId=*/7);
  ECOSCHED_CHECK(Ok, "example local tasks must not conflict");
  return Domain;
}

static Job makeExampleJob(int Id, int NodeCount, double Runtime,
                          double TotalUnitCostCap) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = NodeCount;
  J.Request.Volume = Runtime; // Etalon performance: runtime == volume.
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = TotalUnitCostCap / NodeCount;
  J.Request.BudgetFactor = 1.0;
  J.Request.BudgetPolicy = BudgetPolicyKind::SpanBased;
  return J;
}

Batch ecosched::buildPaperExampleBatch() {
  Batch Jobs;
  Jobs.push_back(makeExampleJob(1, 2, 80.0, 10.0));
  Jobs.push_back(makeExampleJob(2, 3, 30.0, 30.0));
  Jobs.push_back(makeExampleJob(3, 2, 50.0, 6.0));
  return Jobs;
}
