//===-- tests/sim/GanttChartTest.cpp - ASCII chart unit tests -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/GanttChart.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(GanttChartTest, FillMarksExpectedCells) {
  GanttChart Chart(TimePoint(0.0), TimePoint(100.0), 10); // 10 units per cell.
  const size_t Row = Chart.addRow("n0");
  Chart.fill(Row, TimePoint(20.0), TimePoint(50.0), '#');
  const std::string Out = Chart.render();
  // Cells 2..4 are painted; cell 5 (t=50, exclusive end) is not.
  EXPECT_NE(Out.find("n0 |..###.....|"), std::string::npos);
}

TEST(GanttChartTest, SubCellSpanStillVisible) {
  GanttChart Chart(TimePoint(0.0), TimePoint(100.0), 10);
  const size_t Row = Chart.addRow("n0");
  Chart.fill(Row, TimePoint(42.0), TimePoint(44.0), 'X');
  const std::string Out = Chart.render();
  EXPECT_NE(Out.find("X"), std::string::npos);
}

TEST(GanttChartTest, OutOfHorizonSpansClipped) {
  GanttChart Chart(TimePoint(100.0), TimePoint(200.0), 10);
  const size_t Row = Chart.addRow("n0");
  Chart.fill(Row, TimePoint(0.0), TimePoint(50.0), 'A');   // Fully before: invisible.
  Chart.fill(Row, TimePoint(250.0), TimePoint(300.0), 'B'); // Fully after: invisible.
  Chart.fill(Row, TimePoint(150.0), TimePoint(400.0), 'C'); // Clipped to [150,200).
  const std::string Out = Chart.render();
  EXPECT_EQ(Out.find('A'), std::string::npos);
  EXPECT_EQ(Out.find('B'), std::string::npos);
  EXPECT_NE(Out.find(".....CCCCC"), std::string::npos);
}

TEST(GanttChartTest, RendersAllRowsAndAxis) {
  GanttChart Chart(TimePoint(0.0), TimePoint(600.0), 20);
  Chart.addRow("cpu1");
  Chart.addRow("cpu2-long-name");
  const std::string Out = Chart.render();
  EXPECT_NE(Out.find("cpu1"), std::string::npos);
  EXPECT_NE(Out.find("cpu2-long-name"), std::string::npos);
  EXPECT_NE(Out.find("0"), std::string::npos);
  EXPECT_NE(Out.find("600"), std::string::npos);
}

TEST(GanttChartTest, DomainChartShowsLocalAndExternal) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0, "cpuX");
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(300.0)));
  ASSERT_TRUE(D.reserve(N, TimePoint(300.0), TimePoint(600.0), /*JobId=*/1));
  const std::string Out = renderDomainChart(D, TimePoint(0.0), TimePoint(600.0), 24);
  EXPECT_NE(Out.find("cpuX"), std::string::npos);
  EXPECT_NE(Out.find('#'), std::string::npos); // Local occupancy.
  EXPECT_NE(Out.find('B'), std::string::npos); // Job 1 -> 'A' + 1.
}

TEST(GanttChartTest, SvgChartContainsLanesAndOccupancy) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 2.0, "alpha");
  D.addNode(2.0, 3.0, "beta");
  ASSERT_TRUE(D.addLocalTask(A, TimePoint(0.0), TimePoint(200.0)));
  ASSERT_TRUE(D.reserve(A, TimePoint(250.0), TimePoint(400.0), /*JobId=*/2));
  const SvgDocument Doc = renderDomainSvg(D, {}, TimePoint(0.0), TimePoint(600.0));
  const std::string Out = Doc.str();
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("beta"), std::string::npos);
  EXPECT_NE(Out.find("#9e9e9e"), std::string::npos); // Local grey.
  EXPECT_NE(Out.find("</svg>"), std::string::npos);
}

TEST(GanttChartTest, SvgWindowOverlayRendered) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0, "n");
  std::vector<WindowSlot> Members;
  WindowSlot M;
  M.Source = Slot(N, 1.0, 2.0, 0.0, 600.0);
  M.Runtime = 100.0;
  M.Cost = 200.0;
  Members.push_back(M);
  const Window W(TimePoint(50.0), std::move(Members));
  const std::vector<ChartWindow> Overlay = {{&W, 'A'}};
  const std::string Out =
      renderDomainSvg(D, Overlay, TimePoint(0.0), TimePoint(600.0)).str();
  EXPECT_NE(Out.find("stroke=\"#222222\""), std::string::npos);
}

TEST(GanttChartTest, WindowOverlayUsesRequestedFill) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0, "cpuX");
  std::vector<WindowSlot> Members;
  WindowSlot M;
  M.Source = Slot(N, 1.0, 2.0, 0.0, 600.0);
  M.Runtime = 200.0;
  M.Cost = 400.0;
  Members.push_back(M);
  const Window W(TimePoint(100.0), std::move(Members));
  const std::vector<ChartWindow> Overlay = {{&W, 'W'}};
  const std::string Out = renderDomainChart(D, Overlay, TimePoint(0.0), TimePoint(600.0), 24);
  EXPECT_NE(Out.find('W'), std::string::npos);
}
