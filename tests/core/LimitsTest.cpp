//===-- tests/core/LimitsTest.cpp - T*/B* limit tests ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Limits.h"

#include "core/BruteForceOptimizer.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(TimeQuotaTest, FormulaTwoFloorsEachTerm) {
  // Job with alternatives of times {50, 70, 95} (l = 3):
  // floor(50/3) + floor(70/3) + floor(95/3) = 16 + 23 + 31 = 70.
  std::vector<std::vector<AlternativeValue>> PerJob = {
      {{1.0, 50.0}, {1.0, 70.0}, {1.0, 95.0}}};
  EXPECT_DOUBLE_EQ(computeTimeQuota(PerJob), 70.0);
}

TEST(TimeQuotaTest, SumsOverJobs) {
  // Second job: single alternative time 59.5 -> floor(59.5) = 59.
  std::vector<std::vector<AlternativeValue>> PerJob = {
      {{1.0, 50.0}, {1.0, 70.0}, {1.0, 95.0}}, {{1.0, 59.5}}};
  EXPECT_DOUBLE_EQ(computeTimeQuota(PerJob), 70.0 + 59.0);
}

TEST(TimeQuotaTest, EmptyJobContributesNothing) {
  std::vector<std::vector<AlternativeValue>> PerJob = {{}, {{1.0, 30.0}}};
  EXPECT_DOUBLE_EQ(computeTimeQuota(PerJob), 30.0);
}

TEST(TimeQuotaTest, FloorCanMakeQuotaInfeasible) {
  // A single alternative with fractional time: T* = floor(t) < t, so
  // not even the only combination fits. This is the Section 5 effect
  // that reduces the number of counted experiments.
  std::vector<std::vector<AlternativeValue>> PerJob = {{{1.0, 59.5}}};
  const double Quota = computeTimeQuota(PerJob);
  EXPECT_LT(Quota, 59.5);
  BruteForceOptimizer Exact;
  EXPECT_LT(computeVoBudget(PerJob, Duration(Quota), Exact), 0.0);
}

TEST(VoBudgetTest, MaximizesOwnerIncomeUnderQuota) {
  // job 0: (cost 10, time 50) / (cost 30, time 20)
  // job 1: (cost 5, time 40) / (cost 25, time 10)
  std::vector<std::vector<AlternativeValue>> PerJob = {
      {{10.0, 50.0}, {30.0, 20.0}}, {{5.0, 40.0}, {25.0, 10.0}}};
  BruteForceOptimizer Exact;
  // Quota 60: max income 55 (both expensive picks, time 30 <= 60).
  EXPECT_DOUBLE_EQ(computeVoBudget(PerJob, Duration(60.0), Exact), 55.0);
  // Quota 30: only (1,1) fits (time 30); income 55.
  EXPECT_DOUBLE_EQ(computeVoBudget(PerJob, Duration(30.0), Exact), 55.0);
  // Quota 25: nothing fits.
  EXPECT_LT(computeVoBudget(PerJob, Duration(25.0), Exact), 0.0);
}

TEST(VoBudgetTest, DpAndBruteForceAgree) {
  std::vector<std::vector<AlternativeValue>> PerJob = {
      {{10.0, 50.0}, {30.0, 20.0}, {18.0, 35.0}},
      {{5.0, 40.0}, {25.0, 10.0}},
      {{7.0, 22.0}, {9.0, 18.0}}};
  BruteForceOptimizer Exact;
  DpOptimizer Dp(8192);
  const double Quota = 80.0;
  const double Want = computeVoBudget(PerJob, Duration(Quota), Exact);
  const double Got = computeVoBudget(PerJob, Duration(Quota), Dp);
  ASSERT_GE(Want, 0.0);
  // DP may be marginally conservative due to the grid, never higher.
  EXPECT_LE(Got, Want + 1e-9);
  EXPECT_NEAR(Got, Want, 0.5);
}

TEST(VoBudgetTest, BudgetFeasibleForSchedulingTask) {
  // The combination achieving B* also satisfies C(s) <= B*, so the
  // time-minimization task with limit B* is always feasible.
  std::vector<std::vector<AlternativeValue>> PerJob = {
      {{10.0, 50.0}, {30.0, 20.0}}, {{5.0, 40.0}, {25.0, 10.0}}};
  BruteForceOptimizer Exact;
  const double Quota = computeTimeQuota(PerJob);
  const double Budget = computeVoBudget(PerJob, Duration(Quota), Exact);
  ASSERT_GE(Budget, 0.0);

  CombinationProblem TimeMin;
  TimeMin.PerJob = PerJob;
  TimeMin.Objective = MeasureKind::Time;
  TimeMin.Direction = DirectionKind::Minimize;
  TimeMin.Constraint = MeasureKind::Cost;
  TimeMin.Limit = Budget;
  EXPECT_TRUE(Exact.solve(TimeMin).Feasible);
}
