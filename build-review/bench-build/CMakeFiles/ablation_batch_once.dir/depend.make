# Empty dependencies file for ablation_batch_once.
# This may be replaced when dependencies are built.
