//===-- core/PersistentSlotFilter.cpp - Cross-iteration slot views --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/PersistentSlotFilter.h"

#include "core/SlotFilter.h"
#include "sim/TraceIO.h"
#include "support/Check.h"
#include "support/StateCodec.h"

#include <utility>

using namespace ecosched;

namespace {

/// Exact field-by-field request equality. Conservative on purpose: any
/// difference — even in fields today's admits() implementations ignore,
/// like the budget factor — rebuilds the view, so the matching never
/// has to know which fields a (possibly future) algorithm's statics
/// read. NaN never matches itself, which also degrades to a rebuild.
bool requestsIdentical(const ResourceRequest &A, const ResourceRequest &B) {
  return A.NodeCount == B.NodeCount && A.Volume == B.Volume &&
         A.MinPerformance == B.MinPerformance &&
         A.MaxUnitPrice == B.MaxUnitPrice &&
         A.BudgetFactor == B.BudgetFactor &&
         A.BudgetPolicy == B.BudgetPolicy && A.Deadline == B.Deadline;
}

/// Exact slot identity beyond the (Start, NodeId, End) ordering key:
/// the diff treats a key-equal slot whose performance or price changed
/// (owner-side repricing) as a removal plus an addition, so views never
/// carry stale denormalized node fields.
bool slotsIdentical(const Slot &A, const Slot &B) {
  return A.Performance == B.Performance && A.UnitPrice == B.UnitPrice;
}

} // namespace

PersistentSlotFilter::PersistentSlotFilter(const SlotSearchAlgorithm &Algo)
    : Algo(Algo) {}

void PersistentSlotFilter::sync(const SlotList &Master, const Batch &Jobs,
                                SearchStats *Stats) {
  ECOSCHED_CHECK(Journal.empty(),
                 "persistent filter synced with {} unrolled sweep splices "
                 "in the journal",
                 Journal.size());
  // No master validation here: every sync is followed by a sweep over
  // the same list, and runFiltered() validates it at entry — repeating
  // the O(n log n) check per sync would double the debug-check cost of
  // exactly the steady-state path this class exists to shrink.

  // Slot delta: one sorted merge walk of the shadow against the new
  // master. Both lists are slotStartLess-sorted with unique (Start,
  // NodeId) keys (per-node disjointness), so equal keys align and the
  // walk is a plain two-pointer diff; Removed and Added come out sorted
  // as subsequences of sorted inputs.
  std::vector<Slot> Removed;
  std::vector<Slot> Added;
  {
    auto I = Shadow.begin();
    const auto IE = Shadow.end();
    auto J = Master.begin();
    const auto JE = Master.end();
    while (I != IE && J != JE) {
      if (slotStartLess(*I, *J)) {
        Removed.push_back(*I);
        ++I;
      } else if (slotStartLess(*J, *I)) {
        Added.push_back(*J);
        ++J;
      } else {
        if (!slotsIdentical(*I, *J)) {
          Removed.push_back(*I);
          Added.push_back(*J);
        }
        ++I;
        ++J;
      }
    }
    Removed.insert(Removed.end(), I, IE);
    Added.insert(Added.end(), J, JE);
  }
  const size_t DeltaSize = Removed.size() + Added.size();

  // Job delta: match each batch job against the previous batch's cached
  // views by identical (Id, Request); each cached view is consumed at
  // most once, so duplicate ids pair off one-to-one. The batch is small
  // relative to the slot lists, so the quadratic scan is noise.
  std::vector<ViewEntry> Next;
  Next.reserve(Jobs.size());
  std::vector<char> Consumed(Entries.size(), 0);
  for (const Job &J : Jobs) {
    ViewEntry E;
    E.JobId = J.Id;
    E.Request = J.Request;
    size_t Match = Entries.size();
    for (size_t K = 0, KE = Entries.size(); K != KE; ++K) {
      if (!Consumed[K] && Entries[K].JobId == J.Id &&
          requestsIdentical(Entries[K].Request, J.Request)) {
        Match = K;
        break;
      }
    }
    if (Match != Entries.size()) {
      Consumed[Match] = 1;
      E.View = std::move(Entries[Match].View);

      // Splicing the delta beats refiltering until most of the list has
      // turned over: a splice runs admits() only on the Added slots
      // plus a binary search per delta entry, while a rebuild runs
      // admits() on every master slot. The advancing horizon alone
      // churns a few slots per node per iteration (clipped starts, new
      // spans at the far edge), so the cutoff must scale with the
      // master, not the view — a per-view fraction starves reuse on
      // exactly the steady-state path this class exists for. Only a
      // majority turnover (rollover of an idle domain, mass failure)
      // falls back to the rebuild oracle. The cutoff depends only on
      // the delta and master sizes, so it is deterministic and
      // bitwise-neutral either way.
      const size_t SpliceLimit = 16 + Master.size();
      if (DeltaSize > SpliceLimit) {
        E.View = SlotFilter::filteredCopy(Master, E.Request, Algo);
        if (Stats)
          ++Stats->FilterViewRebuilds;
      } else {
        size_t Ops = 0;
        for (const Slot &S : Removed)
          if (E.View.eraseExact(S))
            ++Ops;
        // The re-admission path: a span returning to the free pool
        // (completion, release, repair, horizon extension) re-enters a
        // view iff it passes exactly the predicate filteredCopy applies
        // — the scan-horizon cutoff and the full admits(), not the
        // remainder fast path, because an added slot inherits nothing
        // from a previously admitted container.
        for (const Slot &S : Added) {
          if (SlotFilter::inScanHorizon(S, E.Request) &&
              Algo.admits(S, E.Request)) {
            E.View.insertVerbatim(S);
            ++Ops;
          }
        }
        if (Stats) {
          ++Stats->FilterViewReuses;
          Stats->FilterDeltaOps += Ops;
        }
      }
    } else {
      E.View = SlotFilter::filteredCopy(Master, E.Request, Algo);
      if (Stats)
        ++Stats->FilterViewRebuilds;
    }
    Next.push_back(std::move(E));
  }
  Entries = std::move(Next);
  Shadow = Master;
}

void PersistentSlotFilter::applyDamage(const Window &W) {
  const TimePoint Start = W.startTime();
  for (size_t J = 0, E = Entries.size(); J != E; ++J) {
    const ResourceRequest &Request = Entries[J].Request;
    for (const WindowSlot &M : W) {
      DamageRecord R;
      R.ViewIndex = J;
      R.Container = M.Source;
      // Same Keep predicate as SlotFilter::applyDamage — the horizon
      // cutoff is skipped for the head piece, which keeps its
      // container's already-vetted start — additionally capturing the
      // pieces that re-enter the view so the journal can remove
      // exactly them on rollback.
      const auto Keep = [&](const Slot &Piece) {
        const bool Kept = (Piece.Start == M.Source.Start ||
                           SlotFilter::inScanHorizon(Piece, Request)) &&
                          Algo.admitsRemainder(Piece, Request);
        if (Kept)
          R.Pieces[R.PieceCount++] = Piece;
        return Kept;
      };
      // A false return means this view never held the member slot
      // (inadmissible for job J): Keep was not invoked, nothing to
      // journal.
      if (Entries[J].View.subtractExact(M.Source, Start, Start + M.runtime(),
                                        Keep))
        Journal.push_back(R);
    }
  }
}

bool PersistentSlotFilter::windowIntact(size_t J, const Window &W) const {
  for (const WindowSlot &M : W)
    if (!Entries[J].View.containsExact(M.Source))
      return false;
  return true;
}

void PersistentSlotFilter::rollbackSweepDamage() {
  // Reverse order is load-bearing: a later commit may have taken one of
  // an earlier splice's remainder pieces as its own container, so the
  // piece only exists to be erased once the later splice has been
  // undone first. Exact keys are unambiguous — per-node disjointness
  // holds at every intermediate state, so (Start, NodeId) names one
  // slot — which makes each undo an exact inverse and the full unwind
  // a bitwise restoration of the post-sync views.
  for (auto It = Journal.rbegin(), E = Journal.rend(); It != E; ++It) {
    SlotList &View = Entries[It->ViewIndex].View;
    for (unsigned P = 0; P != It->PieceCount; ++P) {
      const bool Erased = View.eraseExact(It->Pieces[P]);
      ECOSCHED_CHECK(Erased,
                     "sweep rollback missed a journaled remainder piece on "
                     "node {}: [{}, {})",
                     It->Pieces[P].NodeId, It->Pieces[P].Start,
                     It->Pieces[P].End);
    }
    View.insertVerbatim(It->Container);
  }
  Journal.clear();
}

namespace {

/// Digest of the rebuilt-on-load state: every entry's job id followed
/// by the full bit pattern of every view slot. saveState stores it so
/// loadState can prove its filteredCopy reconstruction matches the
/// views the writer held, without the views entering the format.
uint64_t digestViews(const std::vector<std::pair<int, const SlotList *>>
                         &Views) {
  StateDigest D;
  for (const auto &[JobId, View] : Views) {
    D.addInt(JobId);
    for (const Slot &S : *View) {
      D.addInt(S.NodeId);
      D.addDouble(S.Performance);
      D.addDouble(S.UnitPrice);
      D.addDouble(S.Start);
      D.addDouble(S.End);
    }
  }
  return D.value();
}

} // namespace

void PersistentSlotFilter::saveState(StateWriter &W) const {
  ECOSCHED_CHECK(Journal.empty(),
                 "persistent filter serialized with {} unrolled sweep "
                 "splices in the journal",
                 Journal.size());
  W.beginSection("filter");
  Shadow.saveState(W);
  W.writeUInt("entries", Entries.size());
  std::vector<std::pair<int, const SlotList *>> Views;
  for (const ViewEntry &E : Entries) {
    Job Key;
    Key.Id = E.JobId;
    Key.Request = E.Request;
    saveJobState(W, Key);
    Views.emplace_back(E.JobId, &E.View);
  }
  W.writeUInt("view-digest", digestViews(Views));
  W.endSection("filter");
}

bool PersistentSlotFilter::loadState(StateReader &R) {
  if (!R.beginSection("filter"))
    return false;
  SlotList LoadedShadow;
  if (!LoadedShadow.loadState(R))
    return false;
  uint64_t EntryCount = 0;
  if (!R.readUInt("entries", EntryCount))
    return false;
  std::vector<ViewEntry> LoadedEntries;
  for (uint64_t I = 0; I < EntryCount; ++I) {
    Job Key;
    if (!loadJobState(R, Key))
      return false;
    ViewEntry E;
    E.JobId = Key.Id;
    E.Request = Key.Request;
    // The view is derived state: rebuild it exactly the way sync()'s
    // rebuild path would, then let the digest prove the reconstruction.
    E.View = SlotFilter::filteredCopy(LoadedShadow, E.Request, Algo);
    LoadedEntries.push_back(std::move(E));
  }
  uint64_t StoredDigest = 0;
  if (!R.readUInt("view-digest", StoredDigest) || !R.endSection("filter"))
    return false;
  std::vector<std::pair<int, const SlotList *>> Views;
  for (const ViewEntry &E : LoadedEntries)
    Views.emplace_back(E.JobId, &E.View);
  if (digestViews(Views) != StoredDigest) {
    R.fail("filter: rebuilt views do not match the serialized digest "
           "(corrupt snapshot or mismatched search algorithm)");
    return false;
  }
  Shadow = std::move(LoadedShadow);
  Entries = std::move(LoadedEntries);
  Journal.clear();
  return true;
}
