//===-- bench/vo_longrun.cpp - Steady-state VO comparison -----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment: the paper evaluates isolated scheduling
/// iterations; this bench runs the full iterative VO (Section 1's
/// "scheduling runs iteratively on periodically updated local
/// schedules") to steady state under Poisson job arrivals and compares
/// ALP and AMP as the VO's search algorithm on *system-level* measures:
/// throughput, queue wait distribution, owner income rate, and node
/// utilization. A warm-up prefix is discarded so the numbers describe
/// the steady state, not the empty-system transient.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/DynamicPricing.h"
#include "engine/VirtualOrganization.h"
#include "support/Check.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

using namespace ecosched;

namespace {

constexpr double IterationPeriod = 150.0;

ComputingDomain makeDomain(RandomGenerator &Rng, int Nodes,
                           double SpanEnd) {
  ComputingDomain D;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price = Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    const int Id = D.addNode(Perf, Price);
    // Sustained owner-local background load (~30%).
    double Cursor = Rng.uniformReal(0.0, 150.0);
    while (Cursor < SpanEnd) {
      const double Busy = Rng.uniformReal(20.0, 80.0);
      D.addLocalTask(Id, TimePoint(Cursor),
                     TimePoint(std::min(Cursor + Busy, SpanEnd)));
      Cursor += Busy + Rng.uniformReal(80.0, 250.0);
    }
  }
  return D;
}

Job makeJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 4));
  J.Request.Volume = Rng.uniformReal(50.0, 150.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 1.6);
  J.Request.MaxUnitPrice = 1.1 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

struct SteadyStateReport {
  double ThroughputPerIteration = 0.0;
  double MeanWait = 0.0;
  double P95Wait = 0.0;
  double IncomeRate = 0.0;
  double Utilization = 0.0;
  double DropRate = 0.0;
  /// Persistent-filter reconciliation totals (VirtualOrganization::
  /// filterStats): how often the cross-iteration views were carried by
  /// delta splices versus rebuilt from scratch.
  SearchStats FilterStats;
};

SteadyStateReport runVo(const SlotSearchAlgorithm &Algo, uint64_t Seed,
                        int64_t Iterations, int64_t Warmup,
                        double ArrivalRate, int64_t SnapshotStress) {
  RandomGenerator Rng(Seed);
  DpOptimizer Dp;
  Metascheduler Scheduler(Algo, Dp);
  const double SpanEnd =
      IterationPeriod * static_cast<double>(Iterations) + 900.0;
  const int NodeCount = 10;

  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = IterationPeriod;
  Cfg.HorizonLength = 700.0;
  Cfg.MaxAttempts = 10;
  ComputingDomain Domain = makeDomain(Rng, NodeCount, SpanEnd);
  // --snapshot-stress: a twin VO rides along on the same domain and
  // arrivals, gets torn down and rebuilt from its own snapshot every
  // M iterations mid-soak, and must keep tracking the uninterrupted
  // primary bitwise (the crash-safe resume gate of
  // docs/PERSISTENCE.md run against a realistic long soak).
  std::optional<VirtualOrganization> Twin;
  if (SnapshotStress > 0)
    Twin.emplace(Domain, Scheduler, Cfg);
  VirtualOrganization Vo(std::move(Domain), Scheduler, Cfg);

  int NextJobId = 0;
  size_t CompletedAtWarmup = 0, DroppedAtWarmup = 0;
  size_t SubmittedAfterWarmup = 0;
  double BusyAfterWarmup = 0.0;
  Histogram WaitHistogram(0.0, 10.0, 10);

  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    if (Iter == Warmup) {
      CompletedAtWarmup = Vo.completed().size();
      DroppedAtWarmup = Vo.dropped().size();
    }
    const int64_t Arrivals = Rng.poisson(ArrivalRate);
    for (int64_t A = 0; A < Arrivals; ++A) {
      const Job J = makeJob(Rng, NextJobId++);
      Vo.submit(J);
      if (Twin)
        Twin->submit(J);
      SubmittedAfterWarmup += Iter >= Warmup;
    }
    const double WindowStart = Vo.now().value();
    const VirtualOrganization::IterationReport Report = Vo.runIteration();
    if (Twin) {
      const VirtualOrganization::IterationReport TwinReport =
          Twin->runIteration();
      ECOSCHED_CHECK(TwinReport.Now == Report.Now &&
                         TwinReport.QueueLength == Report.QueueLength &&
                         TwinReport.Committed == Report.Committed &&
                         TwinReport.Dropped == Report.Dropped &&
                         exactEq(Twin->totalIncome(), Vo.totalIncome()),
                     "snapshot-stress twin diverged at iteration {}",
                     Iter);
      if ((Iter + 1) % SnapshotStress == 0) {
        // Kill the twin and resurrect it from its own snapshot; the
        // restored state must re-serialize identically.
        const std::string Snapshot = Twin->saveSnapshotText();
        Twin.emplace(ComputingDomain(), Scheduler, Cfg);
        std::string Error;
        ECOSCHED_CHECK(Twin->loadSnapshotText(Snapshot, &Error),
                       "snapshot-stress resume failed at iteration {}: {}",
                       Iter, Error);
        ECOSCHED_CHECK(Twin->saveSnapshotText() == Snapshot,
                       "snapshot-stress save->load->save drifted at "
                       "iteration {}",
                       Iter);
      }
    }
    if (Iter >= Warmup)
      for (const ResourceNode &Node : Vo.domain().pool())
        BusyAfterWarmup += PricingEngine::nodeUtilization(
            Vo.domain(), Node.Id, TimePoint(WindowStart),
            TimePoint(WindowStart + IterationPeriod));
  }

  const auto Measured = static_cast<double>(Iterations - Warmup);
  SteadyStateReport Report;
  RunningStats Wait;
  double Income = 0.0;
  size_t CompletedMeasured = 0;
  for (size_t I = CompletedAtWarmup; I < Vo.completed().size(); ++I) {
    const CompletedJob &C = Vo.completed()[I];
    Wait.add(static_cast<double>(C.Attempts - 1));
    WaitHistogram.add(static_cast<double>(C.Attempts - 1));
    Income += C.Cost;
    ++CompletedMeasured;
  }
  Report.ThroughputPerIteration =
      static_cast<double>(CompletedMeasured) / Measured;
  Report.MeanWait = Wait.mean();
  Report.P95Wait = WaitHistogram.quantile(0.95);
  Report.IncomeRate = Income / Measured;
  Report.Utilization =
      BusyAfterWarmup / (Measured * static_cast<double>(NodeCount));
  Report.DropRate =
      SubmittedAfterWarmup
          ? static_cast<double>(Vo.dropped().size() - DroppedAtWarmup) /
                static_cast<double>(SubmittedAfterWarmup)
          : 0.0;
  Report.FilterStats = Vo.filterStats();
  return Report;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("vo_longrun",
                 "steady-state VO comparison of ALP and AMP");
  const int64_t &Iterations =
      Args.addInt("iterations", 120, "VO iterations per run");
  const int64_t &Warmup =
      Args.addInt("warmup", 20, "iterations discarded as warm-up");
  const int64_t &Runs = Args.addInt("runs", 5, "independent runs");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const double &ArrivalRate = Args.addReal(
      "arrival-rate", 4.0, "mean Poisson job arrivals per iteration");
  const int64_t &SnapshotStress = Args.addInt(
      "snapshot-stress", 0,
      "kill-and-resume a twin VO from its snapshot every M iterations "
      "and require it to track the primary bitwise (0 disables)");
  const int64_t &Threads = Args.addThreads();
  if (!Args.parse(Argc, Argv))
    return 1;

  ThreadPool Pool(static_cast<size_t>(Threads));
  std::printf("Steady-state VO study: ALP vs AMP as the metascheduler's "
              "search (Poisson arrivals, warm-up discarded)\n");
  std::printf("==========================================================="
              "=============\n");
  std::printf("worker threads: %zu (independent runs execute "
              "concurrently; per-run seeds keep results identical for "
              "any value)\n\n",
              Pool.threadCount());

  TablePrinter Table;
  Table.addColumn("search", TablePrinter::AlignKind::Left);
  Table.addColumn("throughput/iter");
  Table.addColumn("mean wait");
  Table.addColumn("p95 wait");
  Table.addColumn("drop rate %");
  Table.addColumn("income/iter");
  Table.addColumn("utilization %");

  for (const bool UseAmp : {false, true}) {
    // Runs are independent (each owns its seed and VO state), so they
    // execute concurrently on the shared pool; the fold below walks the
    // pre-sized report vector in run order, keeping every aggregate
    // identical for any thread count.
    const std::vector<SteadyStateReport> Reports =
        Pool.parallelMap<SteadyStateReport>(
            static_cast<size_t>(Runs), 1, [&](size_t R) {
              AlpSearch Alp;
              AmpSearch Amp;
              const SlotSearchAlgorithm &Algo =
                  UseAmp ? static_cast<const SlotSearchAlgorithm &>(Amp)
                         : Alp;
              return runVo(Algo,
                           static_cast<uint64_t>(Seed) +
                               static_cast<uint64_t>(R) * 7919,
                           Iterations, Warmup, ArrivalRate,
                           SnapshotStress);
            });
    RunningStats Throughput, MeanWait, P95Wait, Drop, Income, Util;
    SearchStats Filter;
    for (const SteadyStateReport &Report : Reports) {
      Throughput.add(Report.ThroughputPerIteration);
      MeanWait.add(Report.MeanWait);
      P95Wait.add(Report.P95Wait);
      Drop.add(Report.DropRate);
      Income.add(Report.IncomeRate);
      Util.add(Report.Utilization);
      Filter += Report.FilterStats;
    }
    const size_t Synced = Filter.FilterViewReuses + Filter.FilterViewRebuilds;
    std::printf("%s persistent filter: %zu/%zu views carried by delta "
                "splice (%.1f%%), %zu delta ops, %zu forced rebuilds\n",
                UseAmp ? "AMP" : "ALP", Filter.FilterViewReuses, Synced,
                Synced ? 100.0 * static_cast<double>(Filter.FilterViewReuses) /
                             static_cast<double>(Synced)
                       : 0.0,
                Filter.FilterDeltaOps, Filter.FilterViewRebuilds);
    Table.beginRow();
    Table.addCell(std::string(UseAmp ? "AMP" : "ALP"));
    Table.addCell(Throughput.mean(), 2);
    Table.addCell(MeanWait.mean(), 2);
    Table.addCell(P95Wait.mean(), 2);
    Table.addCell(100.0 * Drop.mean(), 2);
    Table.addCell(Income.mean(), 1);
    Table.addCell(100.0 * Util.mean(), 1);
  }
  Table.print(stdout);

  std::printf("\nreading: the single-iteration advantages of AMP "
              "compound at the system level — higher steady-state "
              "throughput and lower queue waits at higher owner income "
              "(faster, pricier windows clear the queue), with drop "
              "rates showing who leaves demand unserved.\n");
  return 0;
}
