//===-- core/AlternativeSearch.cpp - Multi-variant batch search -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"

#include "core/PersistentSlotFilter.h"
#include "core/SlotFilter.h"
#include "support/Check.h"
#include "support/ThreadPool.h"

using namespace ecosched;

namespace {

/// One job's result from the parallel speculation phase.
struct Speculation {
  std::optional<Window> W;
  SearchStats Stats;
};

} // namespace

AlternativeSet AlternativeSearch::runUnfiltered(SlotList List,
                                                const Batch &Jobs,
                                                SearchStats *Stats) const {
  AlternativeSet Result;
  Result.PerJob.resize(Jobs.size());

  for (size_t Pass = 0; Cfg.MaxPasses == 0 || Pass < Cfg.MaxPasses;
       ++Pass) {
    bool PlacedAny = false;
    for (size_t I = 0, E = Jobs.size(); I != E; ++I) {
      if (Cfg.MaxAlternativesPerJob != 0 &&
          Result.PerJob[I].size() >= Cfg.MaxAlternativesPerJob)
        continue;
      std::optional<Window> W =
          Algo.findWindow(List, Jobs[I].Request, Stats);
      if (!W)
        continue;
      // Exclude the window's spans so later alternatives (for this or
      // any other job) cannot reuse the processor time.
      const bool Subtracted = W->subtractFrom(List);
      ECOSCHED_CHECK(Subtracted,
                     "search returned a window outside the list for job {} "
                     "starting at {}",
                     Jobs[I].Id, W->startTime());
      ECOSCHED_DVALIDATE(List.validate());
      Result.PerJob[I].push_back(std::move(*W));
      PlacedAny = true;
    }
    if (!PlacedAny)
      break;
  }
  return Result;
}

AlternativeSet AlternativeSearch::run(SlotList List, const Batch &Jobs,
                                      SearchStats *Stats,
                                      PersistentSlotFilter *Reuse) const {
  if (!Cfg.UseFilter)
    return runUnfiltered(std::move(List), Jobs, Stats);
  if (Reuse) {
    ECOSCHED_CHECK(Reuse->jobCount() == Jobs.size(),
                   "persistent filter holds {} views for a batch of {} "
                   "jobs; sync() it with this batch first",
                   Reuse->jobCount(), Jobs.size());
    AlternativeSet Result =
        runFiltered(std::move(List), Jobs, Stats, *Reuse);
    // Unwind the sweep's journaled damage so the views return to their
    // post-sync state, ready for the next iteration's delta sync.
    Reuse->rollbackSweepDamage();
    return Result;
  }
  SlotFilter Filter(List, Jobs, Algo);
  return runFiltered(std::move(List), Jobs, Stats, Filter);
}

template <typename FilterT>
AlternativeSet AlternativeSearch::runFiltered(SlotList List,
                                              const Batch &Jobs,
                                              SearchStats *Stats,
                                              FilterT &Filter) const {
  AlternativeSet Result;
  Result.PerJob.resize(Jobs.size());
  ECOSCHED_DVALIDATE(List.validate());
  const bool Sharded = Cfg.Pool && Algo.supportsSpeculativeReuse();

  const auto Capped = [&](size_t I) {
    return Cfg.MaxAlternativesPerJob != 0 &&
           Result.PerJob[I].size() >= Cfg.MaxAlternativesPerJob;
  };
  // Commits a found window: damages the master list and every view, and
  // records the alternative. Identical for the serial and sharded paths
  // — ordering is the only difference between them, and the sharded
  // path commits in the serial path's job order. The master list is
  // re-validated once per pass rather than per commit: subtraction is a
  // local splice, and per-commit O(n^2) validation is what made the
  // textbook sweep quadratic in the list size (docs/PERFORMANCE.md).
  const auto Commit = [&](size_t I, Window W) {
    const bool Subtracted = W.subtractFrom(List);
    ECOSCHED_CHECK(Subtracted,
                   "search returned a window outside the list for job {} "
                   "starting at {}",
                   Jobs[I].Id, W.startTime());
    Filter.applyDamage(W);
    Result.PerJob[I].push_back(std::move(W));
  };

  for (size_t Pass = 0; Cfg.MaxPasses == 0 || Pass < Cfg.MaxPasses;
       ++Pass) {
    bool PlacedAny = false;
    if (Sharded) {
      // Phase A: search every uncapped job against its pass-start view,
      // in parallel. Read-only — no damage is applied, the views are
      // disjoint per job, and Result is only read — so no locks are
      // needed and the windows found do not depend on the pool size.
      std::vector<Speculation> Specs = Cfg.Pool->parallelMap<Speculation>(
          Jobs.size(), 1, [&](size_t I) {
            Speculation S;
            if (!Capped(I))
              S.W = Algo.findWindowFiltered(Filter.view(I),
                                            Jobs[I].Request, &S.Stats);
            return S;
          });
      // Phase B: commit sequentially in job order. A speculative window
      // whose member slots all survived the earlier commits of this
      // pass is exactly what a fresh search would return (member-intact
      // reuse, docs/PERFORMANCE.md); otherwise recompute serially on
      // the damaged view. A speculative miss needs no recheck: damage
      // only shrinks the views, so a search that failed on the
      // pass-start view fails on the damaged one too.
      for (size_t I = 0, E = Jobs.size(); I != E; ++I) {
        if (Capped(I))
          continue;
        Speculation &S = Specs[I];
        if (Stats)
          *Stats += S.Stats;
        if (S.W && !Filter.windowIntact(I, *S.W)) {
          SearchStats Recompute;
          ++Recompute.SpeculationRecomputes;
          S.W = Algo.findWindowFiltered(Filter.view(I), Jobs[I].Request,
                                        &Recompute);
          if (Stats)
            *Stats += Recompute;
        }
        if (!S.W)
          continue;
        Commit(I, std::move(*S.W));
        PlacedAny = true;
      }
    } else {
      for (size_t I = 0, E = Jobs.size(); I != E; ++I) {
        if (Capped(I))
          continue;
        std::optional<Window> W =
            Algo.findWindowFiltered(Filter.view(I), Jobs[I].Request, Stats);
        if (!W)
          continue;
        Commit(I, std::move(*W));
        PlacedAny = true;
      }
    }
    // A pass that committed nothing left the list untouched, so only
    // mutating passes re-validate (the entry check covered the rest).
    if (PlacedAny)
      ECOSCHED_DVALIDATE(List.validate());
    else
      break;
  }
  return Result;
}
