//===-- core/Optimizer.cpp - Combination optimization interface -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include <cassert>

using namespace ecosched;

// Virtual method anchor.
CombinationOptimizer::~CombinationOptimizer() = default;

std::vector<std::vector<AlternativeValue>>
ecosched::toAlternativeValues(const AlternativeSet &Alts) {
  std::vector<std::vector<AlternativeValue>> Values;
  Values.reserve(Alts.PerJob.size());
  for (const auto &Windows : Alts.PerJob) {
    std::vector<AlternativeValue> JobValues;
    JobValues.reserve(Windows.size());
    for (const Window &W : Windows)
      JobValues.push_back({W.totalCost(), W.timeSpan()});
    Values.push_back(std::move(JobValues));
  }
  return Values;
}

CombinationChoice
ecosched::evaluateSelection(const CombinationProblem &Problem,
                            std::vector<size_t> Selected) {
  assert(Selected.size() == Problem.PerJob.size() &&
         "selection does not match the job count");
  CombinationChoice Choice;
  Choice.Selected = std::move(Selected);
  for (size_t I = 0, E = Choice.Selected.size(); I != E; ++I) {
    assert(Choice.Selected[I] < Problem.PerJob[I].size() &&
           "selected alternative out of range");
    const AlternativeValue &V = Problem.PerJob[I][Choice.Selected[I]];
    Choice.ObjectiveTotal += V.get(Problem.Objective);
    Choice.ConstraintTotal += V.get(Problem.Constraint);
  }
  Choice.Feasible = Choice.ConstraintTotal <= Problem.Limit + 1e-9;
  return Choice;
}
