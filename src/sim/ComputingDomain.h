//===-- sim/ComputingDomain.h - Non-dedicated resource domain ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment substrate behind the slot lists: computational nodes
/// whose occupancy mixes owner-local tasks and external (VO) reservations
/// (Section 1: "along with global flows of external users' jobs, owner's
/// local job flows exist inside the resource domains"). Local resource
/// managers publish the vacant spans as the ordered slot list the
/// metascheduler consumes; committed windows become reservations that
/// shape the next iteration's slots.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_COMPUTINGDOMAIN_H
#define ECOSCHED_SIM_COMPUTINGDOMAIN_H

#include "sim/Resource.h"
#include "sim/SlotList.h"
#include "sim/Window.h"

#include <string>
#include <vector>

namespace ecosched {

class StateWriter;
class StateReader;

/// Who occupies a busy interval of a node.
enum class OccupancyKind {
  /// Owner's local job, scheduled by the node's own manager.
  Local,
  /// External VO job placed by the metascheduler.
  External,
};

/// One busy interval on one node.
struct BusyInterval {
  double Start = 0.0;
  double End = 0.0;
  OccupancyKind Kind = OccupancyKind::Local;
  /// Id of the owning job (local task id or external job id).
  int JobId = -1;
};

/// A resource domain: nodes plus their occupancy schedules.
class ComputingDomain {
public:
  /// Adds a node; returns its id.
  // archlint-allow(fp-double-api): construction boundary — node specs
  // arrive as raw numbers from traces and generators, and no boundary
  // decision happens here; the typed world starts at the accessors.
  int addNode(double Performance, double UnitPrice,
              std::string Name = std::string());

  const ResourcePool &pool() const { return Pool; }

  /// Schedules an owner-local task on \p NodeId.
  /// \returns false if the interval overlaps existing occupancy.
  bool addLocalTask(int NodeId, TimePoint Start, TimePoint End,
                    int TaskId = -1);

  /// Reserves [\p Start, \p End) on \p NodeId for external job \p JobId.
  /// \returns false if the interval overlaps existing occupancy.
  bool reserve(int NodeId, TimePoint Start, TimePoint End, int JobId);

  /// Commits every member span of \p W as external reservations for
  /// \p JobId. \returns false (and commits nothing) if any span is busy.
  bool reserveWindow(const Window &W, int JobId);

  /// True if any occupancy intersects [\p Start, \p End) on \p NodeId.
  bool isBusy(int NodeId, TimePoint Start, TimePoint End) const;

  /// Publishes the vacant spans of all nodes inside the scheduling
  /// horizon [\p HorizonStart, \p HorizonEnd) as an ordered slot list.
  SlotList vacantSlots(TimePoint HorizonStart, TimePoint HorizonEnd) const;

  /// Drops occupancy that ends at or before \p Now. Models the periodic
  /// update of local schedules between scheduling iterations.
  void advanceTo(TimePoint Now);

  /// Updates the owner's price of \p NodeId; future vacant slots carry
  /// the new rate (committed reservations keep their agreed cost).
  void setNodePrice(int NodeId, Price UnitPrice);

  /// Takes \p NodeId out of service at time \p Now: occupancy that has
  /// not finished by \p Now is cancelled and the node publishes no
  /// vacant slots until restoreNode().
  /// \returns the external job ids whose reservations were cancelled
  /// (for resubmission by the VO).
  std::vector<int> failNode(int NodeId, TimePoint Now);

  /// Puts a failed node back into service.
  void restoreNode(int NodeId);

  /// Removes every external reservation of \p JobId from \p NodeId
  /// (e.g. when a sibling task's node failed and the job restarts).
  /// \returns the number of reservations removed.
  size_t cancelReservations(int NodeId, int JobId);

  /// Removes every external reservation of \p JobId from every node
  /// currently in service (a failed node's unfinished occupancy was
  /// already wiped when it failed). The single release primitive the
  /// engine's ReservationLedger drives for cancellations and failure
  /// recovery. \returns the number of reservations removed.
  size_t releaseExternalJob(int JobId);

  /// Number of external reservations of \p JobId across the nodes
  /// currently in service. Backs the ledger's release invariants:
  /// after releaseExternalJob() the count is zero.
  size_t externalReservationCount(int JobId) const;

  /// True if \p NodeId is currently in service.
  bool isNodeAvailable(int NodeId) const;

  /// Occupancy of \p NodeId, sorted by start.
  const std::vector<BusyInterval> &occupancy(int NodeId) const;

  /// Total busy time booked by external reservations.
  double externalLoad() const;

  /// Total busy time booked by local tasks.
  double localLoad() const;

  /// Serializes every node (performance, price, name, availability) and
  /// its occupancy schedule in stored order (docs/PERSISTENCE.md).
  void saveState(StateWriter &W) const;

  /// Restores a domain written by saveState by replaying addNode() and
  /// the production interval insertion for every record, so a loaded
  /// domain is built through exactly the code paths a live one was.
  /// Rejects — with a diagnostic on the reader, never an abort — ids
  /// that are not dense indices, out-of-domain node parameters, empty
  /// names (addNode never stores one), non-positive-length or
  /// overlapping intervals, unknown occupancy kinds, and any occupancy
  /// ordering the replay does not reproduce exactly (so save → load →
  /// save is provably a fixed point). The domain is unchanged unless
  /// the load succeeds.
  bool loadState(StateReader &R);

private:
  bool insertInterval(int NodeId, BusyInterval Interval);

  ResourcePool Pool;
  std::vector<std::vector<BusyInterval>> BusyByNode;
  std::vector<bool> Available;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_COMPUTINGDOMAIN_H
