file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/ComputingDomainTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/ComputingDomainTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/GanttChartTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/GanttChartTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/GeneratorTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/GeneratorTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/PaperExampleTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/PaperExampleTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/SlotListTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/SlotListTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/SlotListValidateTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/SlotListValidateTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/SlotTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/SlotTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/TraceIOTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/TraceIOTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/WindowTest.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/WindowTest.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
