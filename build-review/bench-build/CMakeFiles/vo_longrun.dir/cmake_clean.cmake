file(REMOVE_RECURSE
  "../bench/vo_longrun"
  "../bench/vo_longrun.pdb"
  "CMakeFiles/vo_longrun.dir/vo_longrun.cpp.o"
  "CMakeFiles/vo_longrun.dir/vo_longrun.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vo_longrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
