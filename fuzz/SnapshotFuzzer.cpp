//===-- fuzz/SnapshotFuzzer.cpp - Snapshot parse / fixed-point fuzzer -----===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes to VirtualOrganization::loadSnapshotText and
// enforces the crash-safe persistence contract (docs/PERSISTENCE.md):
//
//  1. No abort on any input: every layer loader pre-validates its
//     fields, so hostile bytes are rejected through the StateReader
//     diagnostic and must never reach an ECOSCHED_CHECK (which would
//     turn a corrupt snapshot file into a process abort at restart —
//     exactly the failure the snapshot feature exists to survive).
//  2. A rejected load leaves the VO fully usable: the facade must run
//     an iteration afterwards as if the load had never been attempted.
//  3. Accepted inputs reach a fixed point: re-serializing the loaded
//     state and loading that text again must reproduce it byte for
//     byte (write -> parse -> write is the identity on the second
//     write), the property that makes resumed runs bitwise equal.
//
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "engine/VirtualOrganization.h"
#include "support/Check.h"

#include <cstdint>
#include <string>

using namespace ecosched;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  // One static scheduler stack: the fuzz target only exercises the
  // snapshot codec, and rebuilding the schedulers per input would
  // dominate the run time.
  static AmpSearch Amp;
  static DpOptimizer Dp;
  static Metascheduler Scheduler(Amp, Dp);

  const std::string Text(reinterpret_cast<const char *>(Data), Size);
  VirtualOrganization Vo(ComputingDomain(), Scheduler);
  std::string Error;
  if (!Vo.loadSnapshotText(Text, &Error)) {
    ECOSCHED_CHECK(!Error.empty(),
                   "rejected snapshot produced no diagnostic");
    // A failed load must be transactional: the untouched VO still runs.
    Vo.runIteration();
    return 0;
  }

  const std::string First = Vo.saveSnapshotText();
  VirtualOrganization Second(ComputingDomain(), Scheduler);
  ECOSCHED_CHECK(Second.loadSnapshotText(First, &Error),
                 "re-serialized snapshot failed to load: {}", Error);
  ECOSCHED_CHECK(Second.saveSnapshotText() == First,
                 "snapshot is not a fixed point under write -> parse -> "
                 "write");
  return 0;
}
