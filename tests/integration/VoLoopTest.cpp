//===-- tests/integration/VoLoopTest.cpp - Multi-iteration VO loop --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Long-running VO simulation: randomized domains, owner-local load,
/// and a stream of external jobs across many scheduling iterations.
/// Checks global accounting invariants and that committed reservations
/// never collide with local tasks.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/VirtualOrganization.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecosched;

namespace {

/// Builds a random domain whose nodes carry some owner-local load over
/// the first stretch of the timeline.
ComputingDomain makeRandomDomain(RandomGenerator &Rng, int Nodes) {
  ComputingDomain D;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price =
        Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    const int Id = D.addNode(Perf, Price);
    // A few local tasks in the early timeline; the advancing cursor
    // guarantees they never overlap.
    double Cursor = Rng.uniformReal(0.0, 100.0);
    for (int T = 0; T < 3; ++T) {
      const double Len = Rng.uniformReal(20.0, 120.0);
      EXPECT_TRUE(D.addLocalTask(Id, TimePoint(Cursor), TimePoint(Cursor + Len)));
      Cursor += Len + Rng.uniformReal(10.0, 150.0);
    }
  }
  return D;
}

Job makeRandomJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 4));
  J.Request.Volume = Rng.uniformReal(50.0, 150.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 2.0);
  J.Request.MaxUnitPrice =
      1.25 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

} // namespace

class VoLoopTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VoLoopTest, LongRunKeepsGlobalInvariants) {
  RandomGenerator Rng(GetParam());
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  ComputingDomain Domain = makeRandomDomain(Rng, 10);
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 150.0;
  Cfg.HorizonLength = 700.0;
  Cfg.MaxAttempts = 6;
  VirtualOrganization Vo(std::move(Domain), Scheduler, Cfg);

  int NextJobId = 0;
  size_t Submitted = 0;
  size_t Committed = 0;
  size_t Dropped = 0;
  for (int Iter = 0; Iter < 20; ++Iter) {
    const int Arrivals = static_cast<int>(Rng.uniformInt(0, 4));
    for (int A = 0; A < Arrivals; ++A) {
      Vo.submit(makeRandomJob(Rng, NextJobId++));
      ++Submitted;
    }
    const auto Report = Vo.runIteration();
    Committed += Report.Committed;
    Dropped += Report.Dropped;
    // The clock advances by exactly one period per iteration.
    EXPECT_DOUBLE_EQ(Vo.now().value(), 150.0 * (Iter + 1));
  }

  // Conservation: every submitted job is running, done, queued, or
  // dropped.
  const size_t Running =
      Committed - Vo.completed().size() -
      0; // Completed jobs were committed earlier.
  EXPECT_EQ(Submitted, Committed + Dropped + Vo.queueLength());
  EXPECT_LE(Vo.completed().size(), Committed);
  EXPECT_EQ(Dropped, Vo.dropped().size());
  (void)Running;

  // Completed jobs carry consistent accounting.
  for (const CompletedJob &C : Vo.completed()) {
    EXPECT_GT(C.EndTime, C.StartTime);
    EXPECT_GT(C.Cost, 0.0);
    EXPECT_GE(C.Attempts, 1);
    EXPECT_LE(C.Attempts, Cfg.MaxAttempts);
  }
  EXPECT_GT(Vo.totalIncome().value(), 0.0);
}

TEST_P(VoLoopTest, ReservationsNeverCollideWithLocalTasks) {
  RandomGenerator Rng(GetParam() + 500);
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  // Keep an untouched copy of the initial local schedule for checking.
  ComputingDomain Pristine = makeRandomDomain(Rng, 8);
  std::vector<std::vector<BusyInterval>> LocalTasks;
  for (const ResourceNode &Node : Pristine.pool())
    LocalTasks.push_back(Pristine.occupancy(Node.Id));

  VirtualOrganization Vo(std::move(Pristine), Scheduler);

  int NextJobId = 0;
  std::vector<std::pair<int, Window>> CommittedWindows;
  for (int Iter = 0; Iter < 10; ++Iter) {
    for (int A = 0; A < 2; ++A)
      Vo.submit(makeRandomJob(Rng, NextJobId++));
    const auto Report = Vo.runIteration();
    for (const ScheduledJob &S : Report.Outcome.Scheduled)
      CommittedWindows.push_back({S.JobId, S.W});
  }

  for (const auto &[JobId, W] : CommittedWindows)
    for (const WindowSlot &M : W)
      for (const BusyInterval &B :
           LocalTasks[static_cast<size_t>(M.Source.NodeId)]) {
        const double OverlapStart = std::max(W.startTime().value(), B.Start);
        const double OverlapEnd =
            std::min(W.startTime().value() + M.Runtime, B.End);
        EXPECT_LE(OverlapEnd - OverlapStart, 1e-9)
            << "job " << JobId << " overlaps a local task on node "
            << M.Source.NodeId;
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoLoopTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));
