//===-- support/Statistics.cpp - Streaming statistics helpers ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Check.h"

#include <algorithm>
#include <cmath>

using namespace ecosched;

void RunningStats::addToSum(double X) {
  // Neumaier's variant of Kahan summation: the compensation picks up
  // the low-order bits of whichever operand is smaller in magnitude.
  const double T = Sum + X;
  if (std::abs(Sum) >= std::abs(X))
    SumComp += (Sum - T) + X;
  else
    SumComp += (X - T) + Sum;
  Sum = T;
}

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  const double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  addToSum(X);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  const double NA = static_cast<double>(N);
  const double NB = static_cast<double>(Other.N);
  const double Delta = Other.Mean - Mean;
  const double Combined = NA + NB;
  Mean += Delta * NB / Combined;
  M2 += Other.M2 + Delta * Delta * NA * NB / Combined;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  N += Other.N;
  addToSum(Other.Sum);
  addToSum(Other.SumComp);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double Lo, double Hi, size_t BucketCount)
    : Lo(Lo), Hi(Hi), Buckets(BucketCount, 0) {
  ECOSCHED_CHECK(Lo < Hi, "histogram range [{}, {}) is empty", Lo, Hi);
  ECOSCHED_CHECK(BucketCount > 0,
                 "histogram needs at least one bucket");
}

void Histogram::add(double X) {
  const double Width = (Hi - Lo) / static_cast<double>(Buckets.size());
  double Offset = std::floor((X - Lo) / Width);
  Offset = std::clamp(Offset, 0.0, static_cast<double>(Buckets.size() - 1));
  ++Buckets[static_cast<size_t>(Offset)];
  ++Total;
}

double Histogram::bucketLo(size_t Index) const {
  const double Width = (Hi - Lo) / static_cast<double>(Buckets.size());
  return Lo + Width * static_cast<double>(Index);
}

double Histogram::quantile(double Q) const {
  if (Total == 0)
    return 0.0;
  Q = std::clamp(Q, 0.0, 1.0);
  const double Target = Q * static_cast<double>(Total);
  double Seen = 0.0;
  for (size_t I = 0, E = Buckets.size(); I != E; ++I) {
    const double Next = Seen + static_cast<double>(Buckets[I]);
    if (Next >= Target && Buckets[I] > 0) {
      const double Fraction =
          (Target - Seen) / static_cast<double>(Buckets[I]);
      return bucketLo(I) + Fraction * (bucketHi(I) - bucketLo(I));
    }
    Seen = Next;
  }
  return Hi;
}
