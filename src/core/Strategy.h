//===-- core/Strategy.h - Multi-version safety strategies ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safety scheduling strategies (Section 7, after Toporkov et al.
/// [13, 14]): "in the general case, a set of versions of scheduling, or
/// a strategy, is required instead of a single version". Because the
/// alternative search yields pairwise-disjoint windows, several
/// alternatives per job can be *reserved simultaneously*: the chosen
/// alternative is the primary execution version and further
/// alternatives become standby fallbacks, activated when the primary
/// fails (node crash, revoked reservation) without running any new
/// search.
///
/// The module has two parts: building a strategy out of a scheduling
/// iteration's outcome, and executing a strategy under stochastic
/// launch failures to measure the dependability gain.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_STRATEGY_H
#define ECOSCHED_CORE_STRATEGY_H

#include "core/Metascheduler.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <vector>

namespace ecosched {

/// The reserved execution versions of one job, primary first; the
/// fallbacks are ordered by start time so activation always moves
/// forward on the timeline.
struct JobStrategy {
  int JobId = -1;
  size_t BatchIndex = 0;
  /// Reserved windows: Versions[0] is the primary; all are pairwise
  /// disjoint with every other job's versions.
  std::vector<Window> Versions;

  /// Total processor time reserved across all versions (the price of
  /// safety: capacity withheld from other use).
  Duration reservedNodeTime() const {
    Duration Total(0.0);
    for (const Window &W : Versions)
      for (const WindowSlot &M : W)
        Total = Total + M.runtime();
    return Total;
  }
};

/// Strategy construction knobs.
struct StrategyConfig {
  /// Maximum versions (primary + fallbacks) reserved per job.
  size_t MaxVersions = 3;
};

/// Builds per-job strategies from a feasible scheduling iteration: the
/// chosen alternative is the primary; the earliest-starting remaining
/// alternatives that begin no earlier than the primary become
/// fallbacks. Jobs the iteration postponed get no strategy.
std::vector<JobStrategy> buildStrategies(const IterationOutcome &Outcome,
                                         StrategyConfig Cfg = {});

/// Outcome of executing strategies under stochastic launch failures.
struct StrategyExecutionReport {
  size_t Jobs = 0;
  size_t Completed = 0;
  /// Jobs whose every version failed.
  size_t Lost = 0;
  /// Completion time (end of the succeeding version) per completed job.
  RunningStats CompletionTime;
  /// Versions consumed (1 = primary succeeded) per completed job.
  RunningStats VersionsUsed;
  /// Money spent on succeeding versions only.
  double PaidCost = 0.0;
  /// Node time reserved across all versions of all jobs.
  double ReservedNodeTime = 0.0;

  double completionRate() const {
    return Jobs ? static_cast<double>(Completed) /
                      static_cast<double>(Jobs)
                : 0.0;
  }
};

/// Simulates strategy execution: every version launch fails
/// independently with probability 1 - (1-p)^N (any of its N member
/// nodes failing, each with probability \p NodeFailureProbability); on
/// failure the next reserved version whose start is not in the past is
/// activated.
StrategyExecutionReport
executeStrategies(const std::vector<JobStrategy> &Strategies,
                  RandomGenerator &Rng, double NodeFailureProbability);

} // namespace ecosched

#endif // ECOSCHED_CORE_STRATEGY_H
