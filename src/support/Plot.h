//===-- support/Plot.h - SVG line and bar charts -------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chart builders over the SVG writer, enough to regenerate the paper's
/// figures as images: a multi-series line chart (Fig. 5) and a grouped
/// bar chart (Fig. 4/6), both with automatic "nice" axis ticks and a
/// legend.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_PLOT_H
#define ECOSCHED_SUPPORT_PLOT_H

#include "support/Svg.h"

#include <string>
#include <vector>

namespace ecosched {

/// Chooses a "nice" tick step (1/2/5 x 10^k) and returns the tick
/// positions covering [\p Lo, \p Hi] with roughly \p TargetCount ticks.
std::vector<double> niceTicks(double Lo, double Hi, int TargetCount = 5);

/// Multi-series line chart.
class LineChart {
public:
  LineChart(std::string Title, std::string XLabel, std::string YLabel)
      : Title(std::move(Title)), XLabel(std::move(XLabel)),
        YLabel(std::move(YLabel)) {}

  /// Adds a series; \p Color defaults to the built-in palette.
  void addSeries(std::string Label,
                 std::vector<std::pair<double, double>> Points,
                 std::string Color = std::string());

  /// Renders the chart into an SVG document.
  SvgDocument render(double Width = 720.0, double Height = 420.0) const;

private:
  struct Series {
    std::string Label;
    std::vector<std::pair<double, double>> Points;
    std::string Color;
  };

  std::string Title;
  std::string XLabel;
  std::string YLabel;
  std::vector<Series> AllSeries;
};

/// Grouped bar chart: one group per category, one bar per series.
class GroupedBarChart {
public:
  GroupedBarChart(std::string Title, std::string YLabel)
      : Title(std::move(Title)), YLabel(std::move(YLabel)) {}

  /// Declares the bar series (their order defines the bar order inside
  /// every group); must be called before addGroup.
  void setSeries(std::vector<std::string> Names);

  /// Adds one category with one value per declared series.
  void addGroup(std::string Label, std::vector<double> Values);

  SvgDocument render(double Width = 720.0, double Height = 420.0) const;

private:
  struct Group {
    std::string Label;
    std::vector<double> Values;
  };

  std::string Title;
  std::string YLabel;
  std::vector<std::string> SeriesNames;
  std::vector<Group> Groups;
};

/// The default categorical palette shared by the chart builders.
const std::vector<std::string> &plotPalette();

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_PLOT_H
