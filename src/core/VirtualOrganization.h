//===-- core/VirtualOrganization.h - Forwarding header -------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compatibility forwarding header: the VO driver moved to the engine
/// layer (see docs/ARCHITECTURE.md). Include engine/VirtualOrganization.h
/// in new code.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_VIRTUALORGANIZATION_H
#define ECOSCHED_CORE_VIRTUALORGANIZATION_H

#include "engine/VirtualOrganization.h"

#endif // ECOSCHED_CORE_VIRTUALORGANIZATION_H
