//===-- bench/ablation_adaptive_rho.cpp - Load-adaptive budgets -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment for Section 6's closing remark: "Variation of
/// rho allows to obtain flexible distribution schedules on different
/// scheduling periods, depending on the time of day, resource load
/// level". A VO under *diurnal* local load (owners occupy their nodes
/// during work hours, release them at night) runs with three budget
/// policies: fixed rho=1.0 (spend freely), fixed rho=0.7 (thrifty),
/// and adaptive rho that tightens as booked load rises. Reported:
/// throughput, mean cost per completed job, and queue wait.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/DynamicPricing.h"
#include "engine/VirtualOrganization.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace ecosched;

namespace {

/// A day is 4 scheduling iterations of 150 time units; work hours are
/// the first half of each day.
constexpr double IterationPeriod = 150.0;
constexpr int IterationsPerDay = 4;

/// Domain with diurnal owner-local load over the simulated span.
ComputingDomain makeDiurnalDomain(RandomGenerator &Rng, int Nodes,
                                  double SpanEnd) {
  ComputingDomain D;
  const double Day = IterationPeriod * IterationsPerDay;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price = Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    const int Id = D.addNode(Perf, Price);
    // Work-hour blocks: the first half of every day is mostly busy.
    for (double DayStart = 0.0; DayStart < SpanEnd; DayStart += Day) {
      double Cursor = DayStart + Rng.uniformReal(0.0, 40.0);
      const double WorkEnd = DayStart + Day / 2.0;
      while (Cursor < WorkEnd) {
        const double Busy = Rng.uniformReal(40.0, 120.0);
        D.addLocalTask(Id, TimePoint(Cursor),
                       TimePoint(std::min(Cursor + Busy, WorkEnd)));
        Cursor += Busy + Rng.uniformReal(5.0, 40.0);
      }
    }
  }
  return D;
}

Job makeJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 4));
  J.Request.Volume = Rng.uniformReal(50.0, 150.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 1.6);
  J.Request.MaxUnitPrice = 1.25 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

enum class PolicyKind { FixedFull, FixedThrifty, Adaptive };

struct PolicyReport {
  size_t Completed = 0;
  size_t Leftover = 0;
  double MeanCost = 0.0;
  double MeanWait = 0.0;
};

PolicyReport runPolicy(PolicyKind Policy, uint64_t Seed, int Days) {
  RandomGenerator Rng(Seed);
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const int Iterations = Days * IterationsPerDay;
  const double SpanEnd =
      IterationPeriod * static_cast<double>(Iterations) + 800.0;

  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = IterationPeriod;
  Cfg.HorizonLength = 700.0;
  VirtualOrganization Vo(makeDiurnalDomain(Rng, 10, SpanEnd), Scheduler,
                         Cfg);

  int NextJobId = 0;
  for (int Iter = 0; Iter < Iterations; ++Iter) {
    const int Arrivals = static_cast<int>(Rng.uniformInt(2, 6));
    for (int A = 0; A < Arrivals; ++A)
      Vo.submit(makeJob(Rng, NextJobId++));

    double Rho = 1.0;
    if (Policy == PolicyKind::FixedThrifty) {
      Rho = 0.7;
    } else if (Policy == PolicyKind::Adaptive) {
      // Spend freely when the upcoming horizon is heavily booked
      // (placement is hard; budget headroom buys windows) and be
      // thrifty off-peak when cheap vacancies abound.
      // Sample the load over the next couple of periods (the diurnal
      // phase), not the whole horizon (which averages day and night).
      double Load = 0.0;
      for (const ResourceNode &Node : Vo.domain().pool())
        Load += PricingEngine::nodeUtilization(
            Vo.domain(), Node.Id, TimePoint(Vo.now().value()),
            TimePoint(Vo.now().value() + 2.0 * Cfg.IterationPeriod));
      Load /= static_cast<double>(Vo.domain().pool().size());
      Rho = std::clamp(0.5 + Load * 0.7, 0.62, 1.0);
    }
    Vo.setQueuedBudgetFactor(Rho);
    Vo.runIteration();
  }

  PolicyReport Report;
  Report.Completed = Vo.completed().size();
  Report.Leftover = Vo.queueLength();
  RunningStats Cost, Wait;
  for (const CompletedJob &C : Vo.completed()) {
    Cost.add(C.Cost);
    Wait.add(static_cast<double>(C.Attempts - 1));
  }
  Report.MeanCost = Cost.mean();
  Report.MeanWait = Wait.mean();
  return Report;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_adaptive_rho",
                 "fixed vs load-adaptive budget factors under diurnal "
                 "local load");
  const int64_t &Days = Args.addInt("days", 8, "simulated days per run");
  const int64_t &Runs = Args.addInt("runs", 6, "independent runs");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: rho adapted to resource load level "
              "(Section 6 closing remark)\n");
  std::printf("=========================================================="
              "==\n\n");

  TablePrinter Table;
  Table.addColumn("policy", TablePrinter::AlignKind::Left);
  Table.addColumn("completed");
  Table.addColumn("queued at end");
  Table.addColumn("mean cost/job");
  Table.addColumn("mean wait (iters)");

  const PolicyKind Policies[] = {PolicyKind::FixedFull,
                                 PolicyKind::FixedThrifty,
                                 PolicyKind::Adaptive};
  const char *Names[] = {"fixed rho=1.0", "fixed rho=0.7",
                         "adaptive rho"};
  for (int PolicyIndex = 0; PolicyIndex < 3; ++PolicyIndex) {
    RunningStats Completed, Leftover, Cost, Wait;
    for (int64_t R = 0; R < Runs; ++R) {
      const PolicyReport Report = runPolicy(
          Policies[PolicyIndex],
          static_cast<uint64_t>(Seed) + static_cast<uint64_t>(R) * 7919,
          static_cast<int>(Days));
      Completed.add(static_cast<double>(Report.Completed));
      Leftover.add(static_cast<double>(Report.Leftover));
      Cost.add(Report.MeanCost);
      Wait.add(Report.MeanWait);
    }
    Table.beginRow();
    Table.addCell(std::string(Names[PolicyIndex]));
    Table.addCell(Completed.mean(), 1);
    Table.addCell(Leftover.mean(), 1);
    Table.addCell(Cost.mean(), 1);
    Table.addCell(Wait.mean(), 2);
  }
  Table.print(stdout);

  std::printf("\nreading: a fixed thrifty budget is cheap per job but "
              "strands a third of the stream during work hours; "
              "load-adaptive rho fully restores throughput with a small "
              "per-job saving. Most of the cost is set by the DP "
              "combination stage rather than the search budget, so "
              "rho's lever on cost is modest once the optimizer "
              "re-selects — a finding the Section 6 sketch does not "
              "anticipate.\n");
  return 0;
}
