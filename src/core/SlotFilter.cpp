//===-- core/SlotFilter.cpp - Per-job admissible slot views ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SlotFilter.h"

using namespace ecosched;

SlotFilter::SlotFilter(const SlotList &Master, const Batch &Jobs,
                       const SlotSearchAlgorithm &Algo)
    : Algo(Algo) {
  Requests.reserve(Jobs.size());
  Views.reserve(Jobs.size());
  for (const Job &J : Jobs) {
    Requests.push_back(J.Request);
    Views.push_back(filteredCopy(Master, J.Request, Algo));
  }
}

void SlotFilter::applyDamage(const Window &W) {
  const TimePoint Start = W.startTime();
  for (size_t J = 0, E = Views.size(); J != E; ++J) {
    const ResourceRequest &Request = Requests[J];
    for (const WindowSlot &M : W) {
      // admitsRemainder skips the shrink-invariant statics the
      // container already passed; its contract pins it to admits()
      // exactly, so the view invariant is unchanged. The horizon
      // cutoff is likewise skipped for the head piece: it keeps its
      // container's exact start, and every slot enters a view only
      // through that same cutoff (filteredCopy's bounded scan, the
      // delta re-admission, or this Keep), so only the tail piece —
      // which starts later than its container — can newly fail it.
      const auto Keep = [&](const Slot &Piece) {
        return (Piece.Start == M.Source.Start ||
                inScanHorizon(Piece, Request)) &&
               Algo.admitsRemainder(Piece, Request);
      };
      // A false return means this view never held the member slot
      // (inadmissible for job J), so there is nothing to update.
      Views[J].subtractExact(M.Source, Start, Start + M.runtime(), Keep);
    }
  }
}

bool SlotFilter::windowIntact(size_t J, const Window &W) const {
  for (const WindowSlot &M : W)
    if (!Views[J].containsExact(M.Source))
      return false;
  return true;
}

SlotList SlotFilter::filteredCopy(const SlotList &List,
                                  const ResourceRequest &Request,
                                  const SlotSearchAlgorithm &Algo) {
  std::vector<Slot> Kept;
  // O(log n + k) with a finite deadline: only the prefix a
  // deadline-bounded scan can reach is tested for admissibility.
  const auto E = List.scanEndBefore(Request.deadline());
  for (auto It = List.begin(); It != E; ++It)
    if (Algo.admits(*It, Request))
      Kept.push_back(*It);
  return SlotList(std::move(Kept));
}
