//===-- sim/Window.cpp - Co-allocation window model -----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/Window.h"

#include "sim/SlotList.h"

#include <algorithm>

using namespace ecosched;

Window::Window(TimePoint StartTime, std::vector<WindowSlot> InMembers)
    : Start(StartTime.value()), Members(std::move(InMembers)) {
  for (const WindowSlot &M : Members) {
    ECOSCHED_CHECK(M.Source.coversFrom(TimePoint(Start), M.runtime()),
                   "member slot on node {} [{}, {}) does not cover the "
                   "window span [{}, {})",
                   M.Source.NodeId, M.Source.Start, M.Source.End, Start,
                   Start + M.Runtime);
    MaxRuntime = std::max(MaxRuntime, M.Runtime);
    TotalCost += M.Cost;
    UnitPrices += M.Source.UnitPrice;
  }
}

bool Window::usesNode(int NodeId) const {
  for (const WindowSlot &M : Members)
    if (M.Source.NodeId == NodeId)
      return true;
  return false;
}

bool Window::intersects(const Window &Other) const {
  for (const WindowSlot &A : Members) {
    const double AStart = Start;
    const double AEnd = Start + A.Runtime;
    for (const WindowSlot &B : Other.Members) {
      if (A.Source.NodeId != B.Source.NodeId)
        continue;
      const double BStart = Other.Start;
      const double BEnd = Other.Start + B.Runtime;
      const double OverlapStart = std::max(AStart, BStart);
      const double OverlapEnd = std::min(AEnd, BEnd);
      if (approxGt(OverlapEnd - OverlapStart, 0.0))
        return true;
    }
  }
  return false;
}

bool Window::subtractFrom(SlotList &List) const {
  bool AllFound = true;
  for (const WindowSlot &M : Members) {
    const TimePoint SpanStart(Start);
    const TimePoint SpanEnd(Start + M.Runtime);
    // Fast path: the member's source slot is usually still in the list
    // verbatim (it was copied out of it when the window was built), and
    // per-node disjointness makes it the unique container of the span —
    // a binary search replaces the front-to-back scan. Fall back to the
    // linear scan when the source has since been split by other damage.
    if (!List.subtractExact(M.Source, SpanStart, SpanEnd))
      AllFound &= List.subtract(M.Source.NodeId, SpanStart, SpanEnd);
  }
  return AllFound;
}

void Window::validate() const {
  double RecomputedMax = 0.0;
  double RecomputedCost = 0.0;
  double RecomputedPrices = 0.0;
  for (size_t I = 0, E = Members.size(); I != E; ++I) {
    const WindowSlot &M = Members[I];
    ECOSCHED_CHECK(M.Runtime > 0.0,
                   "member {} on node {} has non-positive runtime {}", I,
                   M.Source.NodeId, M.Runtime);
    ECOSCHED_CHECK(M.Source.coversFrom(TimePoint(Start), M.runtime()),
                   "member {} on node {} [{}, {}) does not cover the window "
                   "span [{}, {})",
                   I, M.Source.NodeId, M.Source.Start, M.Source.End, Start,
                   Start + M.Runtime);
    ECOSCHED_CHECK(approxEq(M.Cost, M.Source.UnitPrice * M.Runtime),
                   "member {} cost {} disagrees with UnitPrice {} * "
                   "Runtime {}",
                   I, M.Cost, M.Source.UnitPrice, M.Runtime);
    RecomputedMax = std::max(RecomputedMax, M.Runtime);
    RecomputedCost += M.Cost;
    RecomputedPrices += M.Source.UnitPrice;
  }
  ECOSCHED_CHECK(approxEq(MaxRuntime, RecomputedMax),
                 "cached time span {} disagrees with recomputed {}",
                 MaxRuntime, RecomputedMax);
  ECOSCHED_CHECK(approxEq(TotalCost, RecomputedCost),
                 "cached total cost {} disagrees with member sum {}",
                 TotalCost, RecomputedCost);
  ECOSCHED_CHECK(approxEq(UnitPrices, RecomputedPrices),
                 "cached unit-price sum {} disagrees with member sum {}",
                 UnitPrices, RecomputedPrices);
}

void Window::validate(size_t ExpectedSlots) const {
  ECOSCHED_CHECK(Members.size() == ExpectedSlots,
                 "window holds {} slots but the request asked for {}",
                 Members.size(), ExpectedSlots);
  validate();
}
