//===-- sim/SlotIntervalIndex.cpp - Per-node interval index ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/SlotIntervalIndex.h"

#include "support/Check.h"

#include <algorithm>

using namespace ecosched;

bool SlotIntervalIndex::entryLess(const Entry &A, const Entry &B) {
  if (A.NodeId != B.NodeId)
    return A.NodeId < B.NodeId;
  if (A.Start != B.Start)
    return exactLess(A.Start, B.Start);
  return exactLess(A.End, B.End);
}

void SlotIntervalIndex::clear() {
  Entries.clear();
  Pending.clear();
  UnsortedEndNodes.clear();
  DeadCount = 0;
  Built = false;
}

void SlotIntervalIndex::markEndsUnsorted(int NodeId) {
  const auto It = std::lower_bound(UnsortedEndNodes.begin(),
                                   UnsortedEndNodes.end(), NodeId);
  if (It == UnsortedEndNodes.end() || *It != NodeId)
    UnsortedEndNodes.insert(It, NodeId);
}

bool SlotIntervalIndex::endsUnsorted(int NodeId) const {
  return !UnsortedEndNodes.empty() &&
         std::binary_search(UnsortedEndNodes.begin(), UnsortedEndNodes.end(),
                            NodeId);
}

void SlotIntervalIndex::recomputeUnsortedEnds() {
  // A node whose ends decrease somewhere in its run (overlapping
  // same-node slots — possible only for invariant-violating input)
  // cannot be binary-searched by end; record it for the scan fallback.
  UnsortedEndNodes.clear();
  for (size_t I = 1, E = Entries.size(); I < E; ++I)
    if (Entries[I].NodeId == Entries[I - 1].NodeId &&
        exactLess(Entries[I].End, Entries[I - 1].End))
      markEndsUnsorted(Entries[I].NodeId);
}

void SlotIntervalIndex::buildFrom(const std::vector<Slot> &Slots) {
  clear();
  Entries.reserve(Slots.size());
  for (const Slot &S : Slots)
    Entries.push_back({S.NodeId, /*Dead=*/false, S.Start, S.End});
  std::sort(Entries.begin(), Entries.end(), entryLess);
  recomputeUnsortedEnds();
  Built = true;
}

void SlotIntervalIndex::compact() {
  // One-pass sorted merge of the live entries and the Pending buffer.
  std::vector<Entry> Merged;
  Merged.reserve(Entries.size() - DeadCount + Pending.size());
  auto PIt = Pending.begin();
  const auto PEnd = Pending.end();
  for (const Entry &E : Entries) {
    if (E.Dead)
      continue;
    while (PIt != PEnd && entryLess(*PIt, E))
      Merged.push_back(*PIt++);
    Merged.push_back(E);
  }
  Merged.insert(Merged.end(), PIt, PEnd);
  Entries = std::move(Merged);
  Pending.clear();
  DeadCount = 0;
  // Tombstoned overlap culprits are gone and pending entries joined
  // their runs: recompute the marks exactly rather than carrying the
  // sticky over-approximation forward.
  recomputeUnsortedEnds();
}

void SlotIntervalIndex::compactIfDue() {
  if (DeadCount + Pending.size() >= CompactThreshold)
    compact();
}

void SlotIntervalIndex::noteInsert(const Slot &S) {
  if (!Built)
    return;
  const Entry Fresh{S.NodeId, /*Dead=*/false, S.Start, S.End};
  // upper_bound, like the master's placement; the buffer is small so
  // the splice moves at most CompactThreshold entries.
  const auto Pos =
      std::upper_bound(Pending.begin(), Pending.end(), Fresh, entryLess);
  Pending.insert(Pos, Fresh);
  compactIfDue();
}

void SlotIntervalIndex::noteErase(const Slot &S) {
  if (!Built)
    return;
  const Entry Key{S.NodeId, /*Dead=*/false, S.Start, S.End};
  // Any live occurrence of the triple is equivalent (identical value);
  // take one from the buffer when present — erasing there is cheap.
  const auto PIt =
      std::lower_bound(Pending.begin(), Pending.end(), Key, entryLess);
  if (PIt != Pending.end() && PIt->NodeId == S.NodeId &&
      PIt->Start == S.Start && PIt->End == S.End) {
    Pending.erase(PIt);
    return;
  }
  auto It = std::lower_bound(Entries.begin(), Entries.end(), Key, entryLess);
  // Full-key duplicates sit adjacently; skip already-dead twins.
  while (It != Entries.end() && It->Dead && It->NodeId == S.NodeId &&
         It->Start == S.Start && It->End == S.End)
    ++It;
  ECOSCHED_CHECK(It != Entries.end() && It->NodeId == S.NodeId &&
                     It->Start == S.Start && It->End == S.End,
                 "interval index is missing span [{}, {}) on node {} at "
                 "erase time",
                 S.Start, S.End, S.NodeId);
  It->Dead = true;
  ++DeadCount;
  compactIfDue();
}

std::optional<SlotIntervalIndex::Span>
SlotIntervalIndex::findContainer(int NodeId, TimePoint Start,
                                 TimePoint End) const {
  ECOSCHED_DCHECK(Built, "containment probe on an unbuilt interval index");
  const double ProbeStart = Start.value();
  const double ProbeEnd = End.value();
  // Candidate from the main vector: the node's entries form a
  // contiguous run delimited by two partition points. The linear
  // scan's two tolerant conditions each hold on a contiguous stretch
  // of the run: starts are non-decreasing (tombstones keep their keys,
  // so the searches see an intact ordering), hence "Start <= probe
  // start" holds on a prefix [First, UB); and when ends are
  // non-decreasing "End >= probe end" holds on a suffix [Lo, Last).
  // The first live entry of [Lo, UB) is the run's first match.
  const Entry *FromMain = nullptr;
  const auto First = std::partition_point(
      Entries.begin(), Entries.end(),
      [NodeId](const Entry &E) { return E.NodeId < NodeId; });
  const auto Last = std::partition_point(
      First, Entries.end(),
      [NodeId](const Entry &E) { return E.NodeId == NodeId; });
  if (First != Last) {
    const auto UB = std::partition_point(
        First, Last,
        [ProbeStart](const Entry &E) { return !approxGt(E.Start, ProbeStart); });
    if (!endsUnsorted(NodeId)) {
      auto It = std::partition_point(
          First, Last,
          [ProbeEnd](const Entry &E) { return approxLt(E.End, ProbeEnd); });
      while (It < UB && It->Dead)
        ++It;
      if (It < UB)
        FromMain = &*It;
    } else {
      // Unsorted ends (invariant-violating list): in-order scan of the
      // run, still restricted to the candidate prefix.
      for (auto It = First; It != UB; ++It)
        if (!It->Dead && !approxLt(It->End, ProbeEnd)) {
          FromMain = &*It;
          break;
        }
    }
  }
  // Candidate from the Pending buffer: its node range is (Start, End)-
  // sorted too, so the first entry satisfying both conditions is the
  // buffer's first match in per-node master order.
  const Entry *FromPending = nullptr;
  for (auto It = std::partition_point(
           Pending.begin(), Pending.end(),
           [NodeId](const Entry &E) { return E.NodeId < NodeId; });
       It != Pending.end() && It->NodeId == NodeId &&
       !approxGt(It->Start, ProbeStart);
       ++It)
    if (!approxLt(It->End, ProbeEnd)) {
      FromPending = &*It;
      break;
    }
  // The per-node master order is exactly (Start, End) lexicographic,
  // so the earlier of the two candidates is the list-wide first match.
  const Entry *Hit = FromMain;
  if (!Hit ||
      (FromPending && (exactLess(FromPending->Start, Hit->Start) ||
                       (FromPending->Start == Hit->Start &&
                        exactLess(FromPending->End, Hit->End)))))
    Hit = FromPending;
  if (!Hit)
    return std::nullopt;
  return Span{Hit->Start, Hit->End};
}

bool SlotIntervalIndex::consistentWith(const std::vector<Slot> &Slots) const {
  if (!Built)
    return Entries.empty() && Pending.empty() && UnsortedEndNodes.empty() &&
           DeadCount == 0;
  SlotIntervalIndex Fresh;
  Fresh.buildFrom(Slots);
  // The live view — main entries minus tombstones, merged with the
  // buffer — must be exactly the fresh build, triple for triple.
  size_t FreshIdx = 0;
  auto PIt = Pending.begin();
  const auto PEnd = Pending.end();
  size_t SeenDead = 0;
  const auto Matches = [&](const Entry &E) {
    if (FreshIdx >= Fresh.Entries.size())
      return false;
    const Entry &Want = Fresh.Entries[FreshIdx];
    if (E.NodeId != Want.NodeId || E.Start != Want.Start ||
        E.End != Want.End)
      return false;
    ++FreshIdx;
    return true;
  };
  for (const Entry &E : Entries) {
    if (E.Dead) {
      ++SeenDead;
      continue;
    }
    while (PIt != PEnd && entryLess(*PIt, E)) {
      if (!Matches(*PIt++))
        return false;
    }
    if (!Matches(E))
      return false;
  }
  for (; PIt != PEnd; ++PIt)
    if (!Matches(*PIt))
      return false;
  if (FreshIdx != Fresh.Entries.size() || SeenDead != DeadCount)
    return false;
  if (DeadCount + Pending.size() >= CompactThreshold)
    return false; // compactIfDue() must have fired.
  // Marks must stay truthful relative to the main vector the binary
  // searches run over: an unmarked node's run (tombstones included —
  // the searches see them) must really have non-decreasing ends. The
  // Pending buffer needs no marks; probes scan it in order. (Marking a
  // node the searches could still handle is allowed — it only costs
  // that node's probes their binary search.)
  for (size_t I = 1, E = Entries.size(); I < E; ++I)
    if (Entries[I].NodeId == Entries[I - 1].NodeId &&
        exactLess(Entries[I].End, Entries[I - 1].End) &&
        !endsUnsorted(Entries[I].NodeId))
      return false;
  return true;
}
