# Empty dependencies file for fig2_amp_example.
# This may be replaced when dependencies are built.
