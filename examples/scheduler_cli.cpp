//===-- examples/scheduler_cli.cpp - Trace-driven scheduling tool ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line front end over the whole library: generate workloads
/// to trace files, schedule archived workloads with any search/task
/// combination, and inspect traces — the way a downstream user would
/// drive EcoSched without writing C++.
///
///   scheduler_cli --mode=generate --slots=s.trace --jobs=j.trace
///   scheduler_cli --mode=schedule --slots=s.trace --jobs=j.trace
///                 --search=amp --task=time [--rho=0.8] [--csv=out.csv]
///   scheduler_cli --mode=simulate --slots=s.trace --jobs=j.trace
///                 [--iterations=N] [--snapshot-every=K --snapshot-out=DIR]
///                 [--resume=FILE]
///   scheduler_cli --mode=inspect --slots=s.trace --jobs=j.trace
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "engine/VirtualOrganization.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "sim/TraceIO.h"
#include "support/CommandLine.h"
#include "support/StateCodec.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace ecosched;

namespace {

int generateMode(uint64_t Seed, const std::string &SlotPath,
                 const std::string &JobPath) {
  RandomGenerator Rng(Seed);
  const SlotList Slots = SlotGenerator().generate(Rng);
  const Batch Jobs = JobGenerator().generate(Rng);
  std::string Error;
  if (!saveSlotTrace(Slots, SlotPath, &Error) ||
      !saveBatchTrace(Jobs, JobPath, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("wrote %zu slots to %s and %zu jobs to %s (seed %llu)\n",
              Slots.size(), SlotPath.c_str(), Jobs.size(),
              JobPath.c_str(), static_cast<unsigned long long>(Seed));
  return 0;
}

int inspectMode(const SlotList &Slots, const Batch &Jobs) {
  std::printf("slots: %zu spanning %.1f node-time units\n", Slots.size(),
              Slots.totalSpan());
  TablePrinter Table;
  Table.addColumn("job");
  Table.addColumn("nodes");
  Table.addColumn("volume");
  Table.addColumn("min perf");
  Table.addColumn("price cap");
  Table.addColumn("rho");
  for (const Job &J : Jobs) {
    Table.beginRow();
    Table.addCell(static_cast<long long>(J.Id));
    Table.addCell(static_cast<long long>(J.Request.NodeCount));
    Table.addCell(J.Request.Volume, 1);
    Table.addCell(J.Request.MinPerformance, 2);
    Table.addCell(J.Request.MaxUnitPrice, 2);
    Table.addCell(J.Request.BudgetFactor, 2);
  }
  Table.print(stdout);
  return 0;
}

int scheduleMode(const SlotList &Slots, Batch Jobs,
                 const std::string &Search, const std::string &Task,
                 double Rho, const std::string &CsvPath) {
  for (Job &J : Jobs)
    J.Request.BudgetFactor = Rho;

  AlpSearch Alp;
  AmpSearch Amp;
  const SlotSearchAlgorithm *Algo = nullptr;
  if (Search == "alp")
    Algo = &Alp;
  else if (Search == "amp")
    Algo = &Amp;
  if (!Algo) {
    std::fprintf(stderr, "unknown search '%s' (alp|amp)\n",
                 Search.c_str());
    return 1;
  }

  Metascheduler::Config Cfg;
  if (Task == "time") {
    Cfg.Task = OptimizationTaskKind::MinimizeTime;
  } else if (Task == "cost") {
    Cfg.Task = OptimizationTaskKind::MinimizeCost;
  } else {
    std::fprintf(stderr, "unknown task '%s' (time|cost)\n", Task.c_str());
    return 1;
  }

  DpOptimizer Dp;
  Metascheduler Scheduler(*Algo, Dp, Cfg);
  const IterationOutcome Out = Scheduler.runIteration(Slots, Jobs);

  std::printf("search %s, task %s-minimization, rho %.2f\n",
              Search.c_str(), Task.c_str(), Rho);
  std::printf("T* = %.2f, B* = %.2f, alternatives per job:",
              Out.TimeQuota, Out.VoBudget);
  for (const auto &PerJob : Out.Alternatives.PerJob)
    std::printf(" %zu", PerJob.size());
  std::printf("\n\n");

  TablePrinter Table;
  Table.addColumn("job");
  Table.addColumn("status", TablePrinter::AlignKind::Left);
  Table.addColumn("start");
  Table.addColumn("end");
  Table.addColumn("time");
  Table.addColumn("cost");
  Table.addColumn("nodes", TablePrinter::AlignKind::Left);
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const ScheduledJob *Placed = nullptr;
    for (const ScheduledJob &S : Out.Scheduled)
      if (S.BatchIndex == I)
        Placed = &S;
    Table.beginRow();
    Table.addCell(static_cast<long long>(Jobs[I].Id));
    if (!Placed) {
      Table.addCell(std::string("postponed"));
      Table.addCell(std::string("-"));
      Table.addCell(std::string("-"));
      Table.addCell(std::string("-"));
      Table.addCell(std::string("-"));
      Table.addCell(std::string("-"));
      continue;
    }
    std::string Nodes;
    for (const WindowSlot &M : Placed->W) {
      if (!Nodes.empty())
        Nodes += ",";
      Nodes += std::to_string(M.Source.NodeId);
    }
    Table.addCell(std::string("scheduled"));
    Table.addCell(Placed->W.startTime().value(), 1);
    Table.addCell(Placed->W.endTime().value(), 1);
    Table.addCell(Placed->W.timeSpan().value(), 2);
    Table.addCell(Placed->W.totalCost().value(), 2);
    Table.addCell(Nodes);
  }
  Table.print(stdout);

  if (Out.Choice.Feasible) {
    const bool TimeTask = Cfg.Task == OptimizationTaskKind::MinimizeTime;
    const double TotalTime = TimeTask ? Out.Choice.ObjectiveTotal
                                      : Out.Choice.ConstraintTotal;
    const double TotalCost = TimeTask ? Out.Choice.ConstraintTotal
                                      : Out.Choice.ObjectiveTotal;
    std::printf("\nbatch totals: time %.2f, cost %.2f\n", TotalTime,
                TotalCost);
  } else {
    std::printf("\nno feasible combination; batch postponed\n");
  }

  if (!CsvPath.empty() && Table.writeCsv(CsvPath))
    std::printf("wrote %s\n", CsvPath.c_str());
  return 0;
}

/// Rebuilds a ComputingDomain whose initial vacancy matches the slot
/// trace: one node per distinct NodeId (performance/price taken from
/// its slots), with owner-local tasks filling every span the trace does
/// not declare vacant.
ComputingDomain domainFromSlots(const SlotList &Slots) {
  std::map<int, std::vector<Slot>> ByNode;
  double TraceEnd = 0.0;
  for (const Slot &S : Slots) {
    ByNode[S.NodeId].push_back(S);
    TraceEnd = std::max(TraceEnd, S.End);
  }

  ComputingDomain D;
  for (auto &[TraceNode, NodeSlots] : ByNode) {
    const int Node = D.addNode(NodeSlots.front().Performance,
                               NodeSlots.front().UnitPrice,
                               "trace n" + std::to_string(TraceNode));
    std::sort(NodeSlots.begin(), NodeSlots.end(),
              [](const Slot &A, const Slot &B) { return A.Start < B.Start; });
    // Complement of the vacant spans becomes owner-local occupancy.
    double Cursor = 0.0;
    for (const Slot &S : NodeSlots) {
      if (S.Start > Cursor)
        D.addLocalTask(Node, TimePoint(Cursor), TimePoint(S.Start));
      Cursor = std::max(Cursor, S.End);
    }
    if (Cursor < TraceEnd)
      D.addLocalTask(Node, TimePoint(Cursor), TimePoint(TraceEnd));
  }
  return D;
}

/// Runs the archived jobs through the iterative VO engine loop over the
/// reconstructed domain instead of a single batch call. With
/// \p SnapshotEvery > 0 a crash-safe snapshot lands in \p SnapshotOut
/// after every K-th iteration; \p ResumePath restores one and finishes
/// the run bitwise-identically to the uninterrupted one
/// (docs/PERSISTENCE.md).
int simulateMode(const SlotList &Slots, const Batch &Jobs, double Rho,
                 int64_t Iterations, int64_t SnapshotEvery,
                 const std::string &SnapshotOut,
                 const std::string &ResumePath) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 100.0;
  Cfg.HorizonLength = 600.0;
  Cfg.MaxAttempts = static_cast<int>(Iterations);
  std::string Error;
  if (SnapshotEvery > 0 &&
      (SnapshotOut.empty() || !ensureDirectory(SnapshotOut, &Error))) {
    std::fprintf(stderr, "error: --snapshot-every needs a writable "
                         "--snapshot-out directory%s%s\n",
                 Error.empty() ? "" : ": ", Error.c_str());
    return 1;
  }

  // A resumed run restores the full engine state — clock, queue,
  // ledger, domain occupancy — from the snapshot, so the archived jobs
  // are not resubmitted and the budget factor is already applied.
  VirtualOrganization Vo(ResumePath.empty() ? domainFromSlots(Slots)
                                            : ComputingDomain(),
                         Scheduler, Cfg);
  if (!ResumePath.empty()) {
    if (!Vo.loadSnapshotFile(ResumePath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  } else {
    for (const Job &J : Jobs)
      Vo.submit(J);
    Vo.setQueuedBudgetFactor(Rho);
  }

  TablePrinter Table;
  Table.addColumn("iter");
  Table.addColumn("t");
  Table.addColumn("queued");
  Table.addColumn("placed");
  Table.addColumn("dropped");
  for (int64_t Iter = static_cast<int64_t>(Vo.clock().iteration());
       Iter < Iterations; ++Iter) {
    const auto Report = Vo.runIteration();
    Table.beginRow();
    Table.addCell(static_cast<long long>(Iter));
    Table.addCell(Report.Now, 0);
    Table.addCell(static_cast<long long>(Report.QueueLength));
    Table.addCell(static_cast<long long>(Report.Committed));
    Table.addCell(static_cast<long long>(Report.Dropped));
    if (SnapshotEvery > 0 && (Iter + 1) % SnapshotEvery == 0) {
      const std::string Path =
          SnapshotOut + "/iter_" + std::to_string(Iter + 1) + ".snap";
      if (!Vo.saveSnapshotFile(Path, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
    }
  }
  Table.print(stdout);
  // %.17g income: the resume check compares this line bitwise against
  // the uninterrupted run's.
  std::printf("\nsimulated %lld iterations: completed %zu of %zu jobs, "
              "still queued %zu, dropped %zu, owner income %.17g\n",
              static_cast<long long>(Iterations), Vo.completed().size(),
              Jobs.size(), Vo.queueLength(), Vo.dropped().size(),
              Vo.totalIncome().value());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("scheduler_cli",
                 "generate, inspect, and schedule workload traces");
  const std::string &Mode = Args.addString(
      "mode", "schedule", "generate | inspect | schedule | simulate");
  const std::string &SlotPath =
      Args.addString("slots", "/tmp/ecosched_slots.trace", "slot trace");
  const std::string &JobPath =
      Args.addString("jobs", "/tmp/ecosched_jobs.trace", "job trace");
  const int64_t &Seed = Args.addInt("seed", 42, "generate-mode RNG seed");
  const std::string &Search =
      Args.addString("search", "amp", "slot search: alp | amp");
  const std::string &Task =
      Args.addString("task", "time", "optimize: time | cost");
  const double &Rho =
      Args.addReal("rho", 1.0, "AMP budget factor (Section 6)");
  const std::string &CsvPath =
      Args.addString("csv", "", "optional CSV schedule output");
  const int64_t &Iterations =
      Args.addInt("iterations", 8, "simulate-mode VO iterations");
  const int64_t &SnapshotEvery = Args.addInt(
      "snapshot-every", 0,
      "simulate-mode: snapshot every K iterations (0 disables)");
  const std::string &SnapshotOut = Args.addString(
      "snapshot-out", "", "simulate-mode snapshot directory");
  const std::string &ResumePath = Args.addString(
      "resume", "", "simulate-mode: resume from this snapshot file");
  if (!Args.parse(Argc, Argv))
    return 1;

  if (Mode == "generate")
    return generateMode(static_cast<uint64_t>(Seed), SlotPath, JobPath);

  std::string Error;
  const auto Slots = loadSlotTrace(SlotPath, &Error);
  if (!Slots) {
    std::fprintf(stderr,
                 "error: %s\n(hint: --mode=generate writes traces)\n",
                 Error.c_str());
    return 1;
  }
  const auto Jobs = loadBatchTrace(JobPath, &Error);
  if (!Jobs) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Mode == "inspect")
    return inspectMode(*Slots, *Jobs);
  if (Mode == "schedule")
    return scheduleMode(*Slots, *Jobs, Search, Task, Rho, CsvPath);
  if (Mode == "simulate")
    return simulateMode(*Slots, *Jobs, Rho, Iterations, SnapshotEvery,
                        SnapshotOut, ResumePath);
  std::fprintf(stderr, "unknown mode '%s'\n", Mode.c_str());
  return 1;
}
