//===-- tests/support/StatisticsTest.cpp - Statistics unit tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ecosched;

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 0.0);
  EXPECT_DOUBLE_EQ(S.max(), 0.0);
  EXPECT_DOUBLE_EQ(S.sum(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats S;
  S.add(4.5);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 4.5);
  EXPECT_DOUBLE_EQ(S.variance(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), 4.5);
  EXPECT_DOUBLE_EQ(S.max(), 4.5);
}

TEST(RunningStatsTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
  // sample (unbiased) var 32/7.
  RunningStats S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_DOUBLE_EQ(S.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats S;
  for (double X : {-3.0, -1.0, 1.0, 3.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.min(), -3.0);
  EXPECT_DOUBLE_EQ(S.max(), 3.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RandomGenerator Rng(5);
  RunningStats Whole, Left, Right;
  for (int I = 0; I < 1000; ++I) {
    const double X = Rng.uniformReal(-10.0, 10.0);
    Whole.add(X);
    (I < 400 ? Left : Right).add(X);
  }
  Left.merge(Right);
  EXPECT_EQ(Left.count(), Whole.count());
  EXPECT_NEAR(Left.mean(), Whole.mean(), 1e-12);
  EXPECT_NEAR(Left.variance(), Whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(Left.min(), Whole.min());
  EXPECT_DOUBLE_EQ(Left.max(), Whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats A, B;
  A.add(1.0);
  A.add(3.0);
  RunningStats ACopy = A;
  A.merge(B); // Empty right side: no change.
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), 2.0);
  B.merge(ACopy); // Empty left side: adopt the right.
  EXPECT_EQ(B.count(), 2u);
  EXPECT_DOUBLE_EQ(B.mean(), 2.0);
}

TEST(RunningStatsTest, SumIsCompensatedNotReconstructed) {
  // A mean-times-count reconstruction loses the small addends next to a
  // large one; the Neumaier-carried sum keeps them. 1e16 has ulp 2, so
  // each naive += 1.0 would round away entirely, while 1e16 + 100 is
  // exactly representable.
  RunningStats S;
  S.add(1.0e16);
  for (int I = 0; I < 100; ++I)
    S.add(1.0);
  EXPECT_DOUBLE_EQ(S.sum(), 1.0e16 + 100.0);
}

TEST(RunningStatsTest, SumExactOverLongSeries) {
  // Welford's mean drifts by a few ulp over long series; the explicit
  // sum must match exact integer accumulation bit for bit.
  RunningStats S;
  double Exact = 0.0;
  for (int I = 1; I <= 25000; ++I) {
    const double X = static_cast<double>(I % 97) + 0.5;
    S.add(X);
    Exact += X; // Exact: every partial sum is an integer + k/2 < 2^53.
  }
  EXPECT_EQ(S.sum(), Exact);
}

TEST(RunningStatsTest, MergePreservesCompensatedSum) {
  RunningStats Left, Right;
  Left.add(1.0e16);
  for (int I = 0; I < 50; ++I)
    Left.add(1.0);
  for (int I = 0; I < 50; ++I)
    Right.add(1.0);
  Left.merge(Right);
  EXPECT_EQ(Left.count(), 101u);
  EXPECT_DOUBLE_EQ(Left.sum(), 1.0e16 + 100.0);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram H(0.0, 10.0, 5);
  H.add(0.0);  // Bucket 0.
  H.add(1.99); // Bucket 0.
  H.add(2.0);  // Bucket 1.
  H.add(9.99); // Bucket 4.
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(4), 1u);
}

TEST(HistogramTest, OutOfRangeClamped) {
  Histogram H(0.0, 10.0, 5);
  H.add(-100.0);
  H.add(100.0);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(4), 1u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram H(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(H.bucketLo(0), 10.0);
  EXPECT_DOUBLE_EQ(H.bucketHi(0), 12.5);
  EXPECT_DOUBLE_EQ(H.bucketLo(3), 17.5);
  EXPECT_DOUBLE_EQ(H.bucketHi(3), 20.0);
}

TEST(HistogramTest, QuantileOnUniformData) {
  Histogram H(0.0, 1.0, 100);
  RandomGenerator Rng(9);
  for (int I = 0; I < 100000; ++I)
    H.add(Rng.nextUnit());
  EXPECT_NEAR(H.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(H.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(H.quantile(0.1), 0.1, 0.02);
}

TEST(HistogramTest, QuantileEmptyIsZero) {
  Histogram H(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
}
