//===-- engine/JobQueue.cpp - VO admission queue --------------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/JobQueue.h"

#include "support/Check.h"

#include <algorithm>
#include <functional>

using namespace ecosched;

Batch JobQueue::batch() const {
  Batch Jobs;
  Jobs.reserve(Queue.size());
  for (const PendingJob &P : Queue)
    Jobs.push_back(P.Spec);
  return Jobs;
}

void JobQueue::removeScheduled(const std::vector<size_t> &BatchIndices) {
  // Erase back to front so earlier indices stay valid.
  std::vector<size_t> Sorted = BatchIndices;
  std::sort(Sorted.begin(), Sorted.end(), std::greater<size_t>());
  for (size_t Index : Sorted) {
    ECOSCHED_CHECK(Index < Queue.size(),
                   "scheduled batch index {} out of range for a queue of "
                   "{} jobs",
                   Index, Queue.size());
    Queue.erase(Queue.begin() + static_cast<long>(Index));
  }
}

size_t JobQueue::chargeAttempt() {
  for (PendingJob &P : Queue)
    ++P.Attempts;
  if (MaxAttempts <= 0)
    return 0;
  size_t Dropped = 0;
  for (const PendingJob &P : Queue)
    if (P.Attempts >= MaxAttempts) {
      DroppedIds.push_back(P.Spec.Id);
      ++Dropped;
    }
  std::erase_if(Queue, [this](const PendingJob &P) {
    return P.Attempts >= MaxAttempts;
  });
  return Dropped;
}

void JobQueue::setBudgetFactor(double Rho) {
  ECOSCHED_CHECK(Rho > 0.0, "budget factor must be positive, got {}", Rho);
  for (PendingJob &P : Queue)
    P.Spec.Request.BudgetFactor = Rho;
}

bool JobQueue::cancel(int JobId) {
  return std::erase_if(Queue, [JobId](const PendingJob &P) {
           return P.Spec.Id == JobId;
         }) > 0;
}
