//===-- tests/sim/SlotListTest.cpp - Slot list and subtraction tests ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/SlotList.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

using namespace ecosched;

namespace {

Slot makeSlot(int Node, double Start, double End) {
  return Slot(Node, /*Performance=*/1.0, /*UnitPrice=*/1.0, Start, End);
}

} // namespace

TEST(SlotListTest, ConstructorSortsByStart) {
  SlotList List({makeSlot(0, 50.0, 100.0), makeSlot(1, 0.0, 30.0),
                 makeSlot(2, 20.0, 80.0)});
  ASSERT_EQ(List.size(), 3u);
  EXPECT_DOUBLE_EQ(List[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(List[1].Start, 20.0);
  EXPECT_DOUBLE_EQ(List[2].Start, 50.0);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SlotListTest, InsertKeepsOrder) {
  SlotList List({makeSlot(0, 0.0, 10.0), makeSlot(1, 100.0, 110.0)});
  List.insert(makeSlot(2, 50.0, 60.0));
  ASSERT_EQ(List.size(), 3u);
  EXPECT_EQ(List[1].NodeId, 2);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SlotListTest, InsertIgnoresZeroLength) {
  SlotList List;
  List.insert(makeSlot(0, 5.0, 5.0));
  EXPECT_TRUE(List.empty());
}

TEST(SlotListTest, SubtractMiddleSplitsInTwo) {
  SlotList List({makeSlot(0, 0.0, 100.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(40.0), TimePoint(60.0)));
  ASSERT_EQ(List.size(), 2u);
  EXPECT_DOUBLE_EQ(List[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(List[0].End, 40.0);
  EXPECT_DOUBLE_EQ(List[1].Start, 60.0);
  EXPECT_DOUBLE_EQ(List[1].End, 100.0);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SlotListTest, SubtractPrefixLeavesTail) {
  SlotList List({makeSlot(0, 0.0, 100.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(0.0), TimePoint(30.0)));
  ASSERT_EQ(List.size(), 1u);
  EXPECT_DOUBLE_EQ(List[0].Start, 30.0);
  EXPECT_DOUBLE_EQ(List[0].End, 100.0);
}

TEST(SlotListTest, SubtractSuffixLeavesHead) {
  SlotList List({makeSlot(0, 0.0, 100.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(70.0), TimePoint(100.0)));
  ASSERT_EQ(List.size(), 1u);
  EXPECT_DOUBLE_EQ(List[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(List[0].End, 70.0);
}

TEST(SlotListTest, SubtractWholeSlotRemovesIt) {
  SlotList List({makeSlot(0, 0.0, 100.0), makeSlot(1, 0.0, 50.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(0.0), TimePoint(100.0)));
  ASSERT_EQ(List.size(), 1u);
  EXPECT_EQ(List[0].NodeId, 1);
}

TEST(SlotListTest, SubtractPicksCorrectNode) {
  SlotList List({makeSlot(0, 0.0, 100.0), makeSlot(1, 0.0, 100.0)});
  ASSERT_TRUE(List.subtract(1, TimePoint(10.0), TimePoint(20.0)));
  ASSERT_EQ(List.size(), 3u);
  // Node 0's slot is untouched.
  double Node0Span = 0.0;
  for (const Slot &S : List)
    if (S.NodeId == 0)
      Node0Span += S.length();
  EXPECT_DOUBLE_EQ(Node0Span, 100.0);
}

TEST(SlotListTest, SubtractFailsWhenNotContained) {
  SlotList List({makeSlot(0, 20.0, 100.0)});
  EXPECT_FALSE(List.subtract(0, TimePoint(10.0), TimePoint(30.0)));  // Starts before the slot.
  EXPECT_FALSE(List.subtract(0, TimePoint(90.0), TimePoint(110.0))); // Ends after the slot.
  EXPECT_FALSE(List.subtract(1, TimePoint(30.0), TimePoint(40.0)));  // Wrong node.
  EXPECT_EQ(List.size(), 1u);
}

TEST(SlotListTest, SubtractAcrossTwoSlotsOfSameNodeFails) {
  // [0,40) and [60,100) on the same node: a span bridging the hole is
  // not contained in either slot.
  SlotList List({makeSlot(0, 0.0, 40.0), makeSlot(0, 60.0, 100.0)});
  EXPECT_FALSE(List.subtract(0, TimePoint(30.0), TimePoint(70.0)));
  EXPECT_EQ(List.size(), 2u);
}

TEST(SlotListTest, SubtractEmptySpanIsNoop) {
  SlotList List({makeSlot(0, 0.0, 100.0)});
  EXPECT_TRUE(List.subtract(0, TimePoint(50.0), TimePoint(50.0)));
  EXPECT_EQ(List.size(), 1u);
  EXPECT_DOUBLE_EQ(List.totalSpan(), 100.0);
}

TEST(SlotListTest, SubtractConservesMeasure) {
  SlotList List({makeSlot(0, 0.0, 100.0), makeSlot(1, 10.0, 210.0)});
  const double Before = List.totalSpan();
  ASSERT_TRUE(List.subtract(1, TimePoint(50.0), TimePoint(90.0)));
  EXPECT_NEAR(List.totalSpan(), Before - 40.0, 1e-9);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SlotListTest, SubtractWithEqualStartsOnNode) {
  // Two slots share a start time; subtraction must pick the one that
  // actually contains the span.
  SlotList List({makeSlot(0, 0.0, 20.0), makeSlot(1, 0.0, 200.0)});
  ASSERT_TRUE(List.subtract(1, TimePoint(150.0), TimePoint(200.0)));
  EXPECT_TRUE(List.checkInvariants());
  double Node1Span = 0.0;
  for (const Slot &S : List)
    if (S.NodeId == 1)
      Node1Span += S.length();
  EXPECT_DOUBLE_EQ(Node1Span, 150.0);
}

TEST(SlotListTest, SubtractToleratesSubEpsilonOvershoot) {
  // A window whose runtime is not exactly representable can end within
  // TimeEpsilon past the container's end; coversFrom accepts that span
  // tolerantly, so subtraction must too instead of building a
  // negative-length tail piece. Regression test for a crash found by
  // fuzz/WindowInvariantFuzzer.cpp.
  const double Overshoot = 10.0 + TimeEpsilon / 2.0;
  SlotList List({makeSlot(0, 0.0, 10.0)});
  ASSERT_TRUE(List.subtract(0, TimePoint(2.0), TimePoint(Overshoot)));
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_DOUBLE_EQ(List.totalSpan(), 2.0);

  SlotList Exact({makeSlot(0, 0.0, 10.0)});
  const Slot Container = *Exact.begin();
  ASSERT_TRUE(Exact.subtractExact(Container, TimePoint(2.0), TimePoint(Overshoot)));
  EXPECT_TRUE(Exact.checkInvariants());
  EXPECT_DOUBLE_EQ(Exact.totalSpan(), 2.0);

  // Symmetric case: a span starting within TimeEpsilon before the slot.
  SlotList HeadSide({makeSlot(0, 5.0, 15.0)});
  const Slot HeadContainer = *HeadSide.begin();
  ASSERT_TRUE(
      HeadSide.subtractExact(HeadContainer, TimePoint(5.0 - TimeEpsilon / 2.0), TimePoint(9.0)));
  EXPECT_TRUE(HeadSide.checkInvariants());
  EXPECT_DOUBLE_EQ(HeadSide.totalSpan(), 6.0);
}

TEST(SlotListTest, TotalSpanSums) {
  SlotList List({makeSlot(0, 0.0, 10.0), makeSlot(1, 5.0, 25.0)});
  EXPECT_DOUBLE_EQ(List.totalSpan(), 30.0);
}

TEST(SlotListTest, TotalSpanCompensatesMagnitudeSpread) {
  // One huge slot followed by two unit slots: naive left-to-right
  // summation loses both unit lengths (1e16 + 1.0 rounds back to 1e16),
  // while the Neumaier compensation carries them in the low-order term.
  // 1e16 + 2.0 is exactly representable (the spacing at 1e16 is 2.0).
  SlotList List({makeSlot(0, 0.0, 1e16), makeSlot(1, 0.0, 1.0),
                 makeSlot(2, 0.0, 1.0)});
  EXPECT_EQ(List.totalSpan(), 1e16 + 2.0);
}

TEST(SlotListTest, SubtractOnLongMultiNodeList) {
  // Regression for the full-tail scan in the linear subtract: the scan
  // must stop once slot starts pass the span's start, yet still find
  // containers anywhere in the list and still report misses correctly.
  // Build 40 slots per node on 5 nodes, interleaved in start order.
  std::vector<Slot> Slots;
  for (int Node = 0; Node < 5; ++Node)
    for (int I = 0; I < 40; ++I) {
      const double Start = 10.0 * I + Node;
      Slots.push_back(makeSlot(Node, Start, Start + 8.0));
    }
  SlotList Indexed(Slots);
  SlotList Linear(Slots);
  // 200 slots sit below IndexBuildThreshold; force the index so the
  // probes really compare the two paths.
  Indexed.buildIndexNow();

  // A hit deep in the list, a hit at the front, and misses that bridge
  // per-node holes or name absent nodes must agree across both paths.
  struct Probe {
    int Node;
    double Lo, Hi;
    bool Hit;
  };
  const Probe Probes[] = {
      {3, 353.0, 357.0, true},  // Deep hit: node 3, slot [353, 361).
      {0, 0.0, 8.0, true},      // Front hit consumes a whole slot.
      {2, 118.0, 124.0, false}, // Bridges the [112,120)/[122,130) hole.
      {7, 10.0, 12.0, false},   // Node not present.
      {4, 395.0, 405.0, false}, // Past the node's last slot end.
  };
  for (const Probe &P : Probes) {
    EXPECT_EQ(Indexed.subtract(P.Node, TimePoint(P.Lo), TimePoint(P.Hi)), P.Hit)
        << "indexed probe node " << P.Node;
    EXPECT_EQ(Linear.subtractLinear(P.Node, TimePoint(P.Lo), TimePoint(P.Hi)), P.Hit)
        << "linear probe node " << P.Node;
  }
  ASSERT_EQ(Indexed.size(), Linear.size());
  for (size_t I = 0; I < Indexed.size(); ++I) {
    EXPECT_EQ(Indexed[I].NodeId, Linear[I].NodeId);
    EXPECT_EQ(Indexed[I].Start, Linear[I].Start);
    EXPECT_EQ(Indexed[I].End, Linear[I].End);
  }
  EXPECT_TRUE(Indexed.checkInvariants());
  EXPECT_TRUE(Indexed.checkIndexConsistency());
}

TEST(SlotListTest, ScanEndBeforeMatchesDeadlineBreak) {
  SlotList List({makeSlot(0, 0.0, 10.0), makeSlot(1, 5.0, 15.0),
                 makeSlot(2, 20.0, 30.0)});
  // Exactly the slots a loop with "break on approxGe(Start, Limit)"
  // would examine: starts strictly below the limit (tolerantly).
  EXPECT_EQ(List.scanEndBefore(TimePoint(20.0)) - List.begin(), 2);
  EXPECT_EQ(List.scanEndBefore(TimePoint(5.0)) - List.begin(), 1);
  EXPECT_EQ(List.scanEndBefore(TimePoint(0.0)) - List.begin(), 0);
  EXPECT_EQ(List.scanEndBefore(TimePoint(100.0)), List.end());
  // An infinite limit (the default Deadline) never bounds the scan.
  EXPECT_EQ(List.scanEndBefore(TimePoint(std::numeric_limits<double>::infinity())),
            List.end());
}

TEST(SlotListTest, InvariantsDetectOverlap) {
  // Bypass subtract: construct a list with overlapping same-node slots.
  SlotList List({makeSlot(0, 0.0, 50.0), makeSlot(0, 25.0, 60.0)});
  EXPECT_FALSE(List.checkInvariants());
}

TEST(SlotListTest, EraseExactRemovesOnlyBitwiseMatches) {
  SlotList List({makeSlot(0, 0.0, 50.0), makeSlot(1, 10.0, 40.0),
                 makeSlot(0, 60.0, 90.0)});
  List.buildIndexNow();

  // Near-misses on every key field leave the list untouched.
  EXPECT_FALSE(List.eraseExact(makeSlot(1, 10.0, 40.0 + 1e-12)));
  EXPECT_FALSE(List.eraseExact(makeSlot(2, 10.0, 40.0)));
  EXPECT_FALSE(List.eraseExact(makeSlot(1, 10.0 - 1e-12, 40.0)));
  ASSERT_EQ(List.size(), 3u);

  EXPECT_TRUE(List.eraseExact(makeSlot(1, 10.0, 40.0)));
  ASSERT_EQ(List.size(), 2u);
  EXPECT_FALSE(List.containsExact(makeSlot(1, 10.0, 40.0)));
  // Idempotence: a second erase of the same key is a miss.
  EXPECT_FALSE(List.eraseExact(makeSlot(1, 10.0, 40.0)));
  EXPECT_TRUE(List.checkInvariants());
  EXPECT_TRUE(List.checkIndexConsistency());
}

TEST(SlotListTest, InsertVerbatimRoundTripsSubEpsilonSlivers) {
  // insert() drops spans not tolerantly longer than zero — correct for
  // subtraction remainders, fatal for delta replay: a sliver erased
  // from one list copy must be re-insertable bitwise into another.
  const Slot Sliver = makeSlot(0, 25.0, 25.0 + TimeEpsilon / 2.0);
  SlotList Gated({makeSlot(0, 0.0, 10.0)});
  Gated.insert(Sliver);
  EXPECT_EQ(Gated.size(), 1u);

  SlotList List({makeSlot(0, 0.0, 10.0), makeSlot(1, 30.0, 60.0)});
  List.buildIndexNow();
  List.insertVerbatim(Sliver);
  ASSERT_EQ(List.size(), 3u);
  EXPECT_TRUE(List.containsExact(Sliver));
  // Sorted position between the node-0 span and the node-1 span.
  EXPECT_EQ(List[1].Start, Sliver.Start);
  EXPECT_EQ(List[1].End, Sliver.End);
  EXPECT_TRUE(List.checkIndexConsistency());

  // Exact round trip: erase + insertVerbatim restores the original
  // vector bitwise, which is what the damage-journal rollback relies
  // on.
  const std::vector<Slot> Before(List.begin(), List.end());
  ASSERT_TRUE(List.eraseExact(Sliver));
  List.insertVerbatim(Sliver);
  ASSERT_EQ(List.size(), Before.size());
  for (size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(List[I].NodeId, Before[I].NodeId);
    EXPECT_EQ(List[I].Start, Before[I].Start);
    EXPECT_EQ(List[I].End, Before[I].End);
    EXPECT_EQ(List[I].Performance, Before[I].Performance);
    EXPECT_EQ(List[I].UnitPrice, Before[I].UnitPrice);
  }
  EXPECT_TRUE(List.checkIndexConsistency());
}
