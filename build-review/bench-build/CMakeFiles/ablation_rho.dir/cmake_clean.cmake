file(REMOVE_RECURSE
  "../bench/ablation_rho"
  "../bench/ablation_rho.pdb"
  "CMakeFiles/ablation_rho.dir/ablation_rho.cpp.o"
  "CMakeFiles/ablation_rho.dir/ablation_rho.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
