//===-- bench/micro_benchmarks.cpp - google-benchmark microbenches --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the hot paths: ALP/AMP/backfill window search as
/// a function of the slot-list size (the Section 3 complexity claim in
/// wall-clock form), slot subtraction, the alternative search sweep,
/// and the backward-run DP as a function of the grid resolution.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/BatchSearch.h"
#include "core/BicriteriaOptimizer.h"
#include "core/DpOptimizer.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <benchmark/benchmark.h>

using namespace ecosched;

namespace {

SlotList makeList(int SlotCount, uint64_t Seed) {
  SlotGeneratorConfig Cfg;
  Cfg.MinSlotCount = SlotCount;
  Cfg.MaxSlotCount = SlotCount;
  RandomGenerator Rng(Seed);
  return SlotGenerator(Cfg).generate(Rng);
}

ResourceRequest makeRequest(int Nodes) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = 100.0;
  Req.MinPerformance = 1.3;
  Req.MaxUnitPrice = 1.25 * 2.0; // ~1.25 * 1.7^1.3.
  return Req;
}

void BM_AlpSearch(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  const ResourceRequest Req = makeRequest(4);
  AlpSearch Alp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Alp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_AmpSearch(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  const ResourceRequest Req = makeRequest(4);
  AmpSearch Amp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Amp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_AlpSearchWorstCase(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  ResourceRequest Req = makeRequest(100000); // Unsatisfiable: full scan.
  AlpSearch Alp;
  for (auto _ : State)
    benchmark::DoNotOptimize(Alp.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_BackfillSearchWorstCase(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 42);
  ResourceRequest Req = makeRequest(100000);
  BackfillSearch Backfill;
  for (auto _ : State)
    benchmark::DoNotOptimize(Backfill.findWindow(List, Req));
  State.SetComplexityN(State.range(0));
}

void BM_SlotSubtraction(benchmark::State &State) {
  const SlotList List = makeList(static_cast<int>(State.range(0)), 7);
  for (auto _ : State) {
    SlotList Work = List;
    // Subtract a span from the middle of every fourth slot.
    for (size_t I = 0; I < Work.size(); I += 4) {
      const Slot S = Work[I];
      const double Mid = (S.Start + S.End) / 2.0;
      benchmark::DoNotOptimize(
          Work.subtract(S.NodeId, S.Start, Mid));
    }
    benchmark::DoNotOptimize(Work.size());
  }
}

void BM_AlternativeSearchSweep(benchmark::State &State) {
  RandomGenerator Rng(11);
  const SlotList List = makeList(135, 11);
  const Batch Jobs = JobGenerator().generate(Rng);
  AmpSearch Amp;
  for (auto _ : State) {
    const AlternativeSet Alts = AlternativeSearch(Amp).run(List, Jobs);
    benchmark::DoNotOptimize(Alts.total());
  }
}

void BM_DpOptimizer(benchmark::State &State) {
  RandomGenerator Rng(13);
  CombinationProblem P;
  for (int J = 0; J < 6; ++J) {
    std::vector<AlternativeValue> Alts;
    for (int A = 0; A < 30; ++A)
      Alts.push_back({Rng.uniformReal(50.0, 500.0),
                      Rng.uniformReal(20.0, 150.0)});
    P.PerJob.push_back(std::move(Alts));
  }
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 1500.0;
  const DpOptimizer Dp(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(Dp.solve(P));
}

void BM_OnePassBatchScheduler(benchmark::State &State) {
  RandomGenerator Rng(17);
  const SlotList List = makeList(static_cast<int>(State.range(0)), 17);
  const Batch Jobs = JobGenerator().generate(Rng);
  OnePassBatchScheduler Scheduler;
  for (auto _ : State)
    benchmark::DoNotOptimize(Scheduler.assign(List, Jobs));
  State.SetComplexityN(State.range(0));
}

void BM_BicriteriaDp(benchmark::State &State) {
  RandomGenerator Rng(19);
  BicriteriaProblem P;
  for (int J = 0; J < 5; ++J) {
    std::vector<AlternativeValue> Alts;
    for (int A = 0; A < 25; ++A)
      Alts.push_back({Rng.uniformReal(50.0, 500.0),
                      Rng.uniformReal(20.0, 150.0)});
    P.PerJob.push_back(std::move(Alts));
  }
  P.Budget = 1200.0;
  P.TimeQuota = 450.0;
  P.CostWeight = 0.5;
  const BicriteriaDpOptimizer Dp(static_cast<size_t>(State.range(0)),
                                 static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(Dp.solve(P));
}

} // namespace

BENCHMARK(BM_AlpSearch)->RangeMultiplier(4)->Range(128, 8192);
BENCHMARK(BM_AmpSearch)->RangeMultiplier(4)->Range(128, 8192);
BENCHMARK(BM_AlpSearchWorstCase)
    ->RangeMultiplier(4)
    ->Range(128, 8192)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_BackfillSearchWorstCase)
    ->RangeMultiplier(4)
    ->Range(128, 2048)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(BM_SlotSubtraction)->RangeMultiplier(4)->Range(128, 2048);
BENCHMARK(BM_AlternativeSearchSweep);
BENCHMARK(BM_DpOptimizer)->RangeMultiplier(4)->Range(256, 16384);
BENCHMARK(BM_OnePassBatchScheduler)
    ->RangeMultiplier(4)
    ->Range(128, 8192)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_BicriteriaDp)->RangeMultiplier(2)->Range(64, 256);
