//===-- core/DynamicPricing.cpp - Supply-and-demand node pricing ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/DynamicPricing.h"

#include <algorithm>
#include <cassert>

using namespace ecosched;

void PricingEngine::captureBasePrices(const ComputingDomain &Domain) {
  BasePrices.clear();
  BasePrices.reserve(Domain.pool().size());
  for (const ResourceNode &Node : Domain.pool())
    BasePrices.push_back(Node.UnitPrice);
}

double PricingEngine::nodeUtilization(const ComputingDomain &Domain,
                                      int NodeId, double WindowStart,
                                      double WindowEnd) {
  assert(WindowStart < WindowEnd && "empty utilization window");
  double Busy = 0.0;
  for (const BusyInterval &B : Domain.occupancy(NodeId)) {
    const double OverlapStart = std::max(B.Start, WindowStart);
    const double OverlapEnd = std::min(B.End, WindowEnd);
    if (OverlapEnd > OverlapStart)
      Busy += OverlapEnd - OverlapStart;
  }
  return Busy / (WindowEnd - WindowStart);
}

std::vector<double> PricingEngine::update(ComputingDomain &Domain,
                                          double WindowStart,
                                          double WindowEnd) {
  assert(BasePrices.size() == Domain.pool().size() &&
         "captureBasePrices() before update(), and after adding nodes");
  std::vector<double> Utilizations;
  Utilizations.reserve(Domain.pool().size());
  for (const ResourceNode &Node : Domain.pool()) {
    const double Utilization =
        nodeUtilization(Domain, Node.Id, WindowStart, WindowEnd);
    Utilizations.push_back(Utilization);
    const double Error = Utilization - Cfg.TargetUtilization;
    const double Base = BasePrices[static_cast<size_t>(Node.Id)];
    const double Proposed =
        Node.UnitPrice * (1.0 + Cfg.Sensitivity * Error);
    const double Clamped = std::clamp(Proposed, Cfg.MinFactor * Base,
                                      Cfg.MaxFactor * Base);
    Domain.setNodePrice(Node.Id, Clamped);
  }
  return Utilizations;
}
