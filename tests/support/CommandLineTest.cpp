//===-- tests/support/CommandLineTest.cpp - Flag parser unit tests --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ecosched;

namespace {

bool parseArgs(ArgParser &Parser, std::vector<const char *> Argv) {
  Argv.insert(Argv.begin(), "prog");
  return Parser.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(ArgParserTest, DefaultsSurviveEmptyCommandLine) {
  ArgParser P("t", "test");
  int64_t &I = P.addInt("iters", 100, "iterations");
  double &R = P.addReal("rho", 0.8, "factor");
  bool &B = P.addBool("verbose", false, "chatty");
  std::string &S = P.addString("out", "table", "format");
  EXPECT_TRUE(parseArgs(P, {}));
  EXPECT_EQ(I, 100);
  EXPECT_DOUBLE_EQ(R, 0.8);
  EXPECT_FALSE(B);
  EXPECT_EQ(S, "table");
}

TEST(ArgParserTest, EqualsSyntax) {
  ArgParser P("t", "test");
  int64_t &I = P.addInt("iters", 100, "iterations");
  double &R = P.addReal("rho", 0.8, "factor");
  EXPECT_TRUE(parseArgs(P, {"--iters=25000", "--rho=0.5"}));
  EXPECT_EQ(I, 25000);
  EXPECT_DOUBLE_EQ(R, 0.5);
}

TEST(ArgParserTest, SpaceSeparatedValue) {
  ArgParser P("t", "test");
  int64_t &I = P.addInt("iters", 100, "iterations");
  std::string &S = P.addString("out", "table", "format");
  EXPECT_TRUE(parseArgs(P, {"--iters", "7", "--out", "csv"}));
  EXPECT_EQ(I, 7);
  EXPECT_EQ(S, "csv");
}

TEST(ArgParserTest, BoolForms) {
  ArgParser P("t", "test");
  bool &A = P.addBool("a", false, "flag a");
  bool &B = P.addBool("b", true, "flag b");
  bool &C = P.addBool("c", false, "flag c");
  EXPECT_TRUE(parseArgs(P, {"--a", "--b=false", "--c=1"}));
  EXPECT_TRUE(A);
  EXPECT_FALSE(B);
  EXPECT_TRUE(C);
}

TEST(ArgParserTest, NegativeNumbers) {
  ArgParser P("t", "test");
  int64_t &I = P.addInt("delta", 0, "offset");
  double &R = P.addReal("x", 0.0, "coord");
  EXPECT_TRUE(parseArgs(P, {"--delta=-5", "--x=-2.5"}));
  EXPECT_EQ(I, -5);
  EXPECT_DOUBLE_EQ(R, -2.5);
}

TEST(ArgParserTest, RejectsUnknownFlag) {
  ArgParser P("t", "test");
  P.addInt("iters", 100, "iterations");
  EXPECT_FALSE(parseArgs(P, {"--bogus=1"}));
}

TEST(ArgParserTest, RejectsMalformedInt) {
  ArgParser P("t", "test");
  P.addInt("iters", 100, "iterations");
  EXPECT_FALSE(parseArgs(P, {"--iters=ten"}));
  EXPECT_FALSE(parseArgs(P, {"--iters=12x"}));
}

TEST(ArgParserTest, RejectsMalformedReal) {
  ArgParser P("t", "test");
  P.addReal("rho", 0.8, "factor");
  EXPECT_FALSE(parseArgs(P, {"--rho=abc"}));
}

TEST(ArgParserTest, RejectsMalformedBool) {
  ArgParser P("t", "test");
  P.addBool("v", false, "verbose");
  EXPECT_FALSE(parseArgs(P, {"--v=maybe"}));
}

TEST(ArgParserTest, RejectsMissingValue) {
  ArgParser P("t", "test");
  P.addInt("iters", 100, "iterations");
  EXPECT_FALSE(parseArgs(P, {"--iters"}));
}

TEST(ArgParserTest, RejectsPositional) {
  ArgParser P("t", "test");
  EXPECT_FALSE(parseArgs(P, {"stray"}));
}

TEST(ArgParserTest, HelpReturnsFalse) {
  ArgParser P("t", "test");
  P.addInt("iters", 100, "iterations");
  EXPECT_FALSE(parseArgs(P, {"--help"}));
}

TEST(ArgParserTest, ManyFlagsKeepStableReferences) {
  ArgParser P("t", "test");
  std::vector<int64_t *> Refs;
  for (int I = 0; I < 32; ++I)
    Refs.push_back(&P.addInt("f" + std::to_string(I), I, "flag"));
  EXPECT_TRUE(parseArgs(P, {"--f31=99"}));
  for (int I = 0; I < 31; ++I)
    EXPECT_EQ(*Refs[static_cast<size_t>(I)], I);
  EXPECT_EQ(*Refs[31], 99);
}
