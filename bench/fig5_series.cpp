//===-- bench/fig5_series.cpp - Reproduces Fig. 5 -------------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5 (DESIGN.md): the per-experiment average job execution
/// time comparison for the first 300 counted experiments of the time-
/// minimization study (Fig. 5). The paper's figure shows "an observable
/// gain of AMP method in every single experiment"; this bench prints
/// the series (decimated for the console), an ASCII strip of who wins
/// each experiment, and the win-rate summary.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Plot.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("fig5_series",
                 "Fig. 5: per-experiment avg job time, first 300 counted");
  const int64_t &Experiments =
      Args.addInt("experiments", 300, "counted experiments to capture");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const double &PriceFactor = Args.addReal(
      "price-factor", 1.1,
      "request price cap factor: C = factor * 1.7^Pmin");
  const int64_t &Threads = Args.addThreads();
  const int64_t &Every =
      Args.addInt("print-every", 10, "print every N-th experiment row");
  const std::string &Csv =
      Args.addString("csv", "", "optional CSV output of the full series");
  const std::string &SvgPath = Args.addString(
      "svg", "", "write the series as an SVG line chart to this path");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Fig. 5 reproduction: per-experiment average job execution "
              "time (time minimization)\n");
  std::printf("========================================================="
              "====================\n\n");

  ExperimentConfig Cfg;
  Cfg.Iterations = 1000000; // Bounded by StopAfterCounted below.
  Cfg.Seed = static_cast<uint64_t>(Seed);
  Cfg.Jobs.PriceFactor = PriceFactor;
  Cfg.Threads = static_cast<size_t>(Threads);
  Cfg.Task = OptimizationTaskKind::MinimizeTime;
  Cfg.SeriesCapacity = static_cast<size_t>(Experiments);
  Cfg.StopAfterCounted = static_cast<size_t>(Experiments);
  const ExperimentResult R = PairedExperiment(Cfg).run();

  const auto &AlpSeries = R.Alp.JobTimeSeries;
  const auto &AmpSeries = R.Amp.JobTimeSeries;
  const size_t N = std::min(AlpSeries.size(), AmpSeries.size());
  std::printf("captured %zu counted experiments (from %zu simulated "
              "iterations)\n\n",
              N, R.TotalIterations);

  TablePrinter Table;
  Table.addColumn("experiment");
  Table.addColumn("ALP avg time");
  Table.addColumn("AMP avg time");
  Table.addColumn("AMP gain %");
  for (size_t I = 0; I < N; I += static_cast<size_t>(Every)) {
    Table.beginRow();
    Table.addCell(static_cast<long long>(I + 1));
    Table.addCell(AlpSeries[I], 2);
    Table.addCell(AmpSeries[I], 2);
    Table.addCell(100.0 * (1.0 - AmpSeries[I] / AlpSeries[I]), 1);
  }
  Table.print(stdout);

  // Win strip: one character per experiment, 'a' = AMP faster,
  // 'L' = ALP faster, '=' = tie within 1%.
  size_t AmpWins = 0, Ties = 0;
  std::string Strip;
  for (size_t I = 0; I < N; ++I) {
    const double Ratio = AmpSeries[I] / AlpSeries[I];
    if (Ratio < 0.99) {
      ++AmpWins;
      Strip += 'a';
    } else if (Ratio > 1.01) {
      Strip += 'L';
    } else {
      ++Ties;
      Strip += '=';
    }
    if ((I + 1) % 75 == 0)
      Strip += '\n';
  }
  std::printf("\nwin strip (a = AMP faster, L = ALP faster, = tie "
              "within 1%%):\n%s\n",
              Strip.c_str());
  std::printf("\nAMP faster in %zu/%zu experiments (%.1f%%), ties %zu; "
              "paper reports an observable gain of AMP in every single "
              "experiment\n",
              AmpWins, N, 100.0 * AmpWins / static_cast<double>(N), Ties);

  if (!SvgPath.empty()) {
    LineChart Chart("Fig. 5: average job execution time per experiment",
                    "experiment", "avg job time");
    std::vector<std::pair<double, double>> AlpPoints, AmpPoints;
    for (size_t I = 0; I < N; ++I) {
      AlpPoints.push_back({static_cast<double>(I + 1), AlpSeries[I]});
      AmpPoints.push_back({static_cast<double>(I + 1), AmpSeries[I]});
    }
    Chart.addSeries("ALP", std::move(AlpPoints));
    Chart.addSeries("AMP", std::move(AmpPoints));
    if (Chart.render(900.0, 420.0).write(SvgPath))
      std::printf("wrote %s\n", SvgPath.c_str());
  }

  if (!Csv.empty()) {
    TablePrinter Out;
    Out.addColumn("experiment");
    Out.addColumn("alp_avg_time");
    Out.addColumn("amp_avg_time");
    for (size_t I = 0; I < N; ++I) {
      Out.beginRow();
      Out.addCell(static_cast<long long>(I + 1));
      Out.addCell(AlpSeries[I], 4);
      Out.addCell(AmpSeries[I], 4);
    }
    if (Out.writeCsv(Csv))
      std::printf("wrote %s\n", Csv.c_str());
  }
  return 0;
}
