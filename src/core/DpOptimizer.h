//===-- core/DpOptimizer.h - Backward-run dynamic programming ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backward-run dynamic programming of equation (1):
///
///   f_i(Z_i) = extr{ g_i(s_i) + f_{i+1}(Z_i - z_i(s_i)) },
///   f_{n+1} = 0,
///
/// over jobs i = n..1 with the admissible resource z_i (time or cost)
/// discretized onto a fixed grid. Constraint weights are rounded *up*
/// to grid cells, so any selection the DP reports feasible is feasible
/// in exact arithmetic; the objective is exact (not discretized). The
/// grid resolution only affects how close the result is to the true
/// optimum (error vanishes as Bins grows; tests cross-check against
/// BruteForceOptimizer).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_DPOPTIMIZER_H
#define ECOSCHED_CORE_DPOPTIMIZER_H

#include "core/Optimizer.h"

namespace ecosched {

/// Discretized implementation of the paper's backward-run scheme.
class DpOptimizer : public CombinationOptimizer {
public:
  /// \p Bins is the resolution of the constraint axis.
  explicit DpOptimizer(size_t Bins = 4096) : Bins(Bins) {}

  std::string_view name() const override { return "dp"; }

  CombinationChoice solve(const CombinationProblem &Problem) const override;

  size_t bins() const { return Bins; }

private:
  size_t Bins;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_DPOPTIMIZER_H
