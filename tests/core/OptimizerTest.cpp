//===-- tests/core/OptimizerTest.cpp - Combination optimizer tests --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BruteForceOptimizer.h"
#include "core/DpOptimizer.h"
#include "core/GreedyOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

/// Two jobs, two alternatives each:
///   job 0: (cost 10, time 50) or (cost 30, time 20)
///   job 1: (cost 5, time 40) or (cost 25, time 10)
CombinationProblem makeTwoJobProblem() {
  CombinationProblem P;
  P.PerJob = {{{10.0, 50.0}, {30.0, 20.0}},
              {{5.0, 40.0}, {25.0, 10.0}}};
  return P;
}

} // namespace

class OptimizerTest
    : public ::testing::TestWithParam<const CombinationOptimizer *> {};

static const DpOptimizer Dp(4096);
static const BruteForceOptimizer BruteForce;
static const GreedyOptimizer Greedy;

TEST_P(OptimizerTest, MinTimeUnderBudget) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 40.0; // Affords (30,20)+(5,40) or (10,50)+(25,10).
  const CombinationChoice C = Opt.solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_LE(C.ConstraintTotal, 40.0 + 1e-9);
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 60.0); // Both options give 60.
}

TEST_P(OptimizerTest, GenerousBudgetReachesUnconstrainedOptimum) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 1000.0;
  const CombinationChoice C = Opt.solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 30.0); // 20 + 10.
  EXPECT_DOUBLE_EQ(C.ConstraintTotal, 55.0);
  EXPECT_EQ(C.Selected, (std::vector<size_t>{1, 1}));
}

TEST_P(OptimizerTest, MinCostUnderTimeQuota) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Cost;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Time;
  P.Limit = 60.0; // (50+10)=60 ok at cost 35; (20+40)=60 ok at cost 35.
  const CombinationChoice C = Opt.solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_LE(C.ConstraintTotal, 60.0 + 1e-9);
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 35.0);
}

TEST_P(OptimizerTest, InfeasibleLimit) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 10.0; // Cheapest combination costs 15.
  EXPECT_FALSE(Opt.solve(P).Feasible);
}

TEST_P(OptimizerTest, EmptyProblemInfeasible) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P;
  P.Limit = 100.0;
  EXPECT_FALSE(Opt.solve(P).Feasible);
}

TEST_P(OptimizerTest, JobWithoutAlternativesInfeasible) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P = makeTwoJobProblem();
  P.PerJob.push_back({});
  P.Limit = 1000.0;
  EXPECT_FALSE(Opt.solve(P).Feasible);
}

TEST_P(OptimizerTest, SingleAlternativePerJobIsForced) {
  const CombinationOptimizer &Opt = *GetParam();
  CombinationProblem P;
  P.PerJob = {{{10.0, 50.0}}, {{5.0, 40.0}}};
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 15.0;
  const CombinationChoice C = Opt.solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_EQ(C.Selected, (std::vector<size_t>{0, 0}));
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 90.0);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerTest,
                         ::testing::Values(&Dp, &BruteForce, &Greedy),
                         [](const auto &Info) {
                           return std::string(Info.param->name() == "dp"
                                                  ? "Dp"
                                              : Info.param->name() ==
                                                      "brute-force"
                                                  ? "BruteForce"
                                                  : "Greedy");
                         });

TEST(DpOptimizerTest, MaximizeIncomeForVoBudget) {
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Cost;
  P.Direction = DirectionKind::Maximize;
  P.Constraint = MeasureKind::Time;
  P.Limit = 60.0;
  const CombinationChoice C = DpOptimizer(4096).solve(P);
  ASSERT_TRUE(C.Feasible);
  // Under time 60 the combinations are (0,0)? 50+40=90 no; (0,1) 60 ok
  // cost 35; (1,0) 60 ok cost 35; (1,1) 30 ok cost 55. Max income 55.
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 55.0);
}

TEST(DpOptimizerTest, CoarseGridStaysFeasible) {
  // Even with very few bins the (ceil-rounded) DP must never return a
  // constraint-violating selection.
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 40.0;
  for (size_t Bins : {1u, 2u, 3u, 7u, 16u}) {
    const CombinationChoice C = DpOptimizer(Bins).solve(P);
    if (C.Feasible) {
      EXPECT_LE(C.ConstraintTotal, P.Limit + 1e-9) << "bins=" << Bins;
    }
  }
}

TEST(DpOptimizerTest, ZeroLimitRequiresZeroWeight) {
  CombinationProblem P;
  P.PerJob = {{{0.0, 5.0}, {2.0, 1.0}}};
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 0.0;
  const CombinationChoice C = DpOptimizer(64).solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_EQ(C.Selected, (std::vector<size_t>{0}));
}

TEST(DpOptimizerTest, NegativeLimitInfeasible) {
  CombinationProblem P = makeTwoJobProblem();
  P.Limit = -5.0;
  EXPECT_FALSE(DpOptimizer(64).solve(P).Feasible);
}

TEST(EvaluateSelectionTest, ComputesTotalsAndFeasibility) {
  CombinationProblem P = makeTwoJobProblem();
  P.Objective = MeasureKind::Time;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 35.0;
  const CombinationChoice C = evaluateSelection(P, {0, 1});
  EXPECT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 60.0);
  EXPECT_DOUBLE_EQ(C.ConstraintTotal, 35.0);
  const CombinationChoice D = evaluateSelection(P, {1, 1});
  EXPECT_FALSE(D.Feasible); // Cost 55 > 35.
}

TEST(GreedyOptimizerTest, SuboptimalButFeasibleExists) {
  // Greedy can be beaten but must stay feasible; on this instance the
  // ratio rule actually finds the optimum.
  CombinationProblem P;
  P.PerJob = {{{1.0, 100.0}, {10.0, 10.0}},
              {{1.0, 100.0}, {10.0, 10.0}}};
  P.Objective = MeasureKind::Time;
  P.Direction = DirectionKind::Minimize;
  P.Constraint = MeasureKind::Cost;
  P.Limit = 20.0;
  const CombinationChoice C = Greedy.solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_LE(C.ConstraintTotal, 20.0 + 1e-9);
  EXPECT_DOUBLE_EQ(C.ObjectiveTotal, 20.0);
}
