//===-- core/DynamicPricing.h - Supply-and-demand node pricing ----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated future work (Section 7): "pricing mechanisms that
/// will take into account supply-and-demand trends for computational
/// resources in virtual organizations".
///
/// PricingEngine implements a simple multiplicative owner-side rule:
/// after every scheduling iteration each node's unit price moves
/// towards demand,
///
///   price *= 1 + Sensitivity * (utilization - TargetUtilization),
///
/// clamped to [MinFactor, MaxFactor] times the node's base price.
/// Overloaded (popular) nodes become more expensive, pushing
/// price-capped requests towards idle nodes; idle nodes discount until
/// they attract load. The `ablation_dynamic_pricing` bench measures the
/// resulting utilization balance and owner income on the VO loop.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_DYNAMICPRICING_H
#define ECOSCHED_CORE_DYNAMICPRICING_H

#include "sim/ComputingDomain.h"

#include <vector>

namespace ecosched {

/// Owner-side supply-and-demand price controller for a domain.
class PricingEngine {
public:
  struct Config {
    /// Utilization the owner is content with; no price movement there.
    double TargetUtilization = 0.6;
    /// Fractional price change per unit of utilization error.
    double Sensitivity = 0.5;
    /// Price floor/ceiling as factors of the node's base price.
    double MinFactor = 0.25;
    double MaxFactor = 4.0;
  };

  PricingEngine() = default;
  explicit PricingEngine(Config Cfg) : Cfg(Cfg) {}

  /// Captures the base prices of \p Domain's nodes; must be called once
  /// before the first update (and again if nodes are added).
  void captureBasePrices(const ComputingDomain &Domain);

  /// Measures each node's utilization over [\p WindowStart,
  /// \p WindowEnd) and adjusts its price in \p Domain.
  /// \returns the per-node utilizations measured (test/report hook).
  std::vector<double> update(ComputingDomain &Domain, TimePoint WindowStart,
                             TimePoint WindowEnd);

  /// Utilization of one node over a time window: busy time / window.
  static double nodeUtilization(const ComputingDomain &Domain, int NodeId,
                                TimePoint WindowStart, TimePoint WindowEnd);

  const Config &config() const { return Cfg; }

private:
  Config Cfg;
  std::vector<double> BasePrices;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_DYNAMICPRICING_H
