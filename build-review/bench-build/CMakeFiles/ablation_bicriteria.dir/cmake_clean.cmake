file(REMOVE_RECURSE
  "../bench/ablation_bicriteria"
  "../bench/ablation_bicriteria.pdb"
  "CMakeFiles/ablation_bicriteria.dir/ablation_bicriteria.cpp.o"
  "CMakeFiles/ablation_bicriteria.dir/ablation_bicriteria.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bicriteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
