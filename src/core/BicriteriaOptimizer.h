//===-- core/BicriteriaOptimizer.h - Criteria-vector selection -----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The general case of the economic model (Section 2): "it is necessary
/// to use a vector of criteria, for example <C(s), D(s), T(s), I(s)>,
/// where D(s) = B* - C(s), I(s) = T* - T(s)" — i.e. both VO limits hold
/// simultaneously and the policy trades the two slacks off against each
/// other. This module provides:
///
///  * BicriteriaDpOptimizer — a two-dimensional backward-run DP over a
///    (cost, time) grid that minimizes the scalarization
///    CostWeight * C + (1 - CostWeight) * T subject to C <= B* and
///    T <= T*. Sweeping CostWeight traces the policy spectrum between
///    pure cost and pure time minimization under the full limit vector.
///  * enumerateParetoFront — the exact set of non-dominated (C, T)
///    selections within both limits, for small instances; the oracle
///    the tests hold the DP against and the curve the bicriteria bench
///    prints.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_BICRITERIAOPTIMIZER_H
#define ECOSCHED_CORE_BICRITERIAOPTIMIZER_H

#include "core/Optimizer.h"

namespace ecosched {

/// Selection under the full limit vector.
struct BicriteriaProblem {
  /// Alternatives per job, as in CombinationProblem.
  std::vector<std::vector<AlternativeValue>> PerJob;
  /// The VO budget B* (cost limit).
  double Budget = 0.0;
  /// The quota T* (time limit).
  double TimeQuota = 0.0;
  /// Scalarization weight in [0, 1]: 1 = pure cost minimization,
  /// 0 = pure time minimization.
  double CostWeight = 0.5;
};

/// A selection with its full criteria vector <C, D, T, I>.
struct BicriteriaChoice {
  bool Feasible = false;
  std::vector<size_t> Selected;
  double Cost = 0.0;
  double Time = 0.0;

  /// D(s) = B* - C(s): the unspent budget.
  double budgetSlack(const BicriteriaProblem &P) const {
    return P.Budget - Cost;
  }
  /// I(s) = T* - T(s): the unspent quota.
  double quotaSlack(const BicriteriaProblem &P) const {
    return P.TimeQuota - Time;
  }
};

/// Two-dimensional discretized backward run.
class BicriteriaDpOptimizer {
public:
  /// \p CostBins x \p TimeBins is the grid resolution; memory and time
  /// scale with their product.
  explicit BicriteriaDpOptimizer(size_t CostBins = 160,
                                 size_t TimeBins = 160)
      : CostBins(CostBins), TimeBins(TimeBins) {}

  /// Solves \p Problem. Constraint weights are rounded up on the grid,
  /// so a feasible result always satisfies both limits exactly; like
  /// DpOptimizer, a floor-rounded second pass recovers exact-boundary
  /// optima when its reconstruction validates.
  BicriteriaChoice solve(const BicriteriaProblem &Problem) const;

private:
  size_t CostBins;
  size_t TimeBins;
};

/// One point of the exact Pareto front.
struct ParetoPoint {
  double Cost = 0.0;
  double Time = 0.0;
  std::vector<size_t> Selected;
};

/// Enumerates every non-dominated (cost, time) selection satisfying
/// both limits, sorted by ascending cost (hence descending time).
/// Exponential in the worst case; intended for small instances (the
/// enumeration prunes against the limits and the incumbent front).
std::vector<ParetoPoint>
enumerateParetoFront(const BicriteriaProblem &Problem);

} // namespace ecosched

#endif // ECOSCHED_CORE_BICRITERIAOPTIMIZER_H
