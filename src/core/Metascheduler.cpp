//===-- core/Metascheduler.cpp - Two-phase batch scheduling ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Metascheduler.h"

#include "core/Limits.h"


using namespace ecosched;

IterationOutcome
Metascheduler::runIteration(const SlotList &List, const Batch &Jobs,
                            PersistentSlotFilter *Reuse) const {
  IterationOutcome Outcome;
  AlternativeSearch Search(SearchAlgo, Cfg.Search);
  Outcome.Alternatives = Search.run(List, Jobs, &Outcome.Stats, Reuse);

  // Jobs without alternatives are postponed; whether the rest proceeds
  // depends on the partial-batch policy.
  std::vector<size_t> Covered;
  for (size_t I = 0, E = Jobs.size(); I != E; ++I) {
    if (Outcome.Alternatives.PerJob[I].empty())
      Outcome.Postponed.push_back(Jobs[I].Id);
    else
      Covered.push_back(I);
  }
  const bool FullyCovered = Outcome.Postponed.empty();
  if (Covered.empty() || (!FullyCovered && !Cfg.AllowPartialBatch)) {
    Outcome.Postponed.clear();
    for (const Job &J : Jobs)
      Outcome.Postponed.push_back(J.Id);
    return Outcome;
  }

  // Phase 2 works on the covered sub-batch.
  std::vector<std::vector<AlternativeValue>> Values;
  Values.reserve(Covered.size());
  for (size_t I : Covered) {
    std::vector<AlternativeValue> JobValues;
    for (const Window &W : Outcome.Alternatives.PerJob[I])
      JobValues.push_back({W.totalCost().value(), W.timeSpan().value()});
    Values.push_back(std::move(JobValues));
  }

  Outcome.TimeQuota = computeTimeQuota(Values, Cfg.Quota);
  Outcome.VoBudget =
      computeVoBudget(Values, Duration(Outcome.TimeQuota), Optimizer);

  CombinationProblem Problem;
  Problem.PerJob = Values;
  if (Cfg.Task == OptimizationTaskKind::MinimizeTime) {
    Problem.Objective = MeasureKind::Time;
    Problem.Constraint = MeasureKind::Cost;
    Problem.Limit = Outcome.VoBudget;
  } else {
    Problem.Objective = MeasureKind::Cost;
    Problem.Constraint = MeasureKind::Time;
    Problem.Limit = Outcome.TimeQuota;
  }
  Problem.Direction = DirectionKind::Minimize;

  if (Outcome.VoBudget < 0.0) {
    // T* admits no combination at all; the whole batch waits.
    Outcome.Postponed.clear();
    for (const Job &J : Jobs)
      Outcome.Postponed.push_back(J.Id);
    return Outcome;
  }

  Outcome.Choice = Optimizer.solve(Problem);
  if (!Outcome.Choice.Feasible) {
    Outcome.Postponed.clear();
    for (const Job &J : Jobs)
      Outcome.Postponed.push_back(J.Id);
    return Outcome;
  }

  for (size_t K = 0, E = Covered.size(); K != E; ++K) {
    const size_t BatchIndex = Covered[K];
    ScheduledJob S;
    S.JobId = Jobs[BatchIndex].Id;
    S.BatchIndex = BatchIndex;
    S.AlternativeIndex = Outcome.Choice.Selected[K];
    S.W = Outcome.Alternatives.PerJob[BatchIndex][S.AlternativeIndex];
    Outcome.Scheduled.push_back(std::move(S));
  }
  return Outcome;
}
