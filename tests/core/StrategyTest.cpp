//===-- tests/core/StrategyTest.cpp - Safety strategy tests ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

/// A scheduled iteration over heterogeneous nodes that produces several
/// alternatives per job.
IterationOutcome makeOutcome(const Batch &Jobs) {
  const SlotList List({Slot(0, 1.0, 1.0, 0.0, 600.0),
                       Slot(1, 2.0, 1.5, 0.0, 600.0),
                       Slot(2, 2.0, 1.5, 0.0, 600.0)});
  static AmpSearch Amp;
  static DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  return Scheduler.runIteration(List, Jobs);
}

} // namespace

TEST(StrategyBuildTest, PrimaryIsChosenAlternative) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const IterationOutcome Outcome = makeOutcome(Jobs);
  ASSERT_EQ(Outcome.Scheduled.size(), 1u);

  const auto Strategies = buildStrategies(Outcome);
  ASSERT_EQ(Strategies.size(), 1u);
  const JobStrategy &S = Strategies[0];
  EXPECT_EQ(S.JobId, 1);
  ASSERT_FALSE(S.Versions.empty());
  EXPECT_DOUBLE_EQ(S.Versions[0].startTime().value(),
                   Outcome.Scheduled[0].W.startTime().value());
  EXPECT_DOUBLE_EQ(S.Versions[0].totalCost().value(),
                   Outcome.Scheduled[0].W.totalCost().value());
}

TEST(StrategyBuildTest, FallbacksAreOrderedAndNotEarlier) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const auto Strategies =
      buildStrategies(makeOutcome(Jobs), {/*MaxVersions=*/4});
  ASSERT_EQ(Strategies.size(), 1u);
  const JobStrategy &S = Strategies[0];
  EXPECT_GT(S.Versions.size(), 1u);
  EXPECT_LE(S.Versions.size(), 4u);
  for (size_t V = 1; V < S.Versions.size(); ++V) {
    EXPECT_GE(S.Versions[V].startTime().value(),
              S.Versions[0].startTime().value() - 1e-9);
    if (V >= 2) {
      EXPECT_GE(S.Versions[V].startTime().value(),
                S.Versions[V - 1].startTime().value() - 1e-9);
    }
  }
}

TEST(StrategyBuildTest, MaxVersionsOneKeepsOnlyPrimary) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const auto Strategies =
      buildStrategies(makeOutcome(Jobs), {/*MaxVersions=*/1});
  ASSERT_EQ(Strategies.size(), 1u);
  EXPECT_EQ(Strategies[0].Versions.size(), 1u);
}

TEST(StrategyBuildTest, VersionsAreDisjointAcrossJobs) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 1, 80.0, 2.0)};
  const auto Strategies = buildStrategies(makeOutcome(Jobs), {3});
  ASSERT_EQ(Strategies.size(), 2u);
  for (const Window &A : Strategies[0].Versions)
    for (const Window &B : Strategies[1].Versions)
      EXPECT_FALSE(A.intersects(B));
}

TEST(StrategyBuildTest, ReservedNodeTimeSumsVersions) {
  JobStrategy S;
  std::vector<WindowSlot> Members;
  WindowSlot M;
  M.Source = Slot(0, 1.0, 1.0, 0.0, 100.0);
  M.Runtime = 50.0;
  M.Cost = 50.0;
  Members.push_back(M);
  S.Versions.emplace_back(TimePoint(0.0), Members);
  S.Versions.emplace_back(TimePoint(50.0), std::vector<WindowSlot>{[] {
                            WindowSlot N;
                            N.Source = Slot(0, 1.0, 1.0, 0.0, 200.0);
                            N.Runtime = 30.0;
                            N.Cost = 30.0;
                            return N;
                          }()});
  EXPECT_DOUBLE_EQ(S.reservedNodeTime().value(), 80.0);
}

TEST(StrategyExecuteTest, NoFailuresUsePrimaryOnly) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 1, 80.0, 2.0)};
  const auto Strategies = buildStrategies(makeOutcome(Jobs), {3});
  RandomGenerator Rng(5);
  const StrategyExecutionReport Report =
      executeStrategies(Strategies, Rng, /*NodeFailureProbability=*/0.0);
  EXPECT_EQ(Report.Jobs, 2u);
  EXPECT_EQ(Report.Completed, 2u);
  EXPECT_EQ(Report.Lost, 0u);
  EXPECT_DOUBLE_EQ(Report.VersionsUsed.mean(), 1.0);
  EXPECT_DOUBLE_EQ(Report.completionRate(), 1.0);
  EXPECT_GT(Report.PaidCost, 0.0);
}

TEST(StrategyExecuteTest, CertainFailureLosesEverything) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const auto Strategies = buildStrategies(makeOutcome(Jobs), {3});
  RandomGenerator Rng(5);
  const StrategyExecutionReport Report =
      executeStrategies(Strategies, Rng, /*NodeFailureProbability=*/1.0);
  EXPECT_EQ(Report.Completed, 0u);
  EXPECT_EQ(Report.Lost, 1u);
  EXPECT_DOUBLE_EQ(Report.completionRate(), 0.0);
  EXPECT_DOUBLE_EQ(Report.PaidCost, 0.0);
}

TEST(StrategyExecuteTest, FallbacksRaiseCompletionRate) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 1, 80.0, 2.0)};
  const IterationOutcome Outcome = makeOutcome(Jobs);
  const auto Single = buildStrategies(Outcome, {1});
  const auto Multi = buildStrategies(Outcome, {4});

  // Monte-Carlo over many runs at a moderate failure rate.
  size_t SingleCompleted = 0, MultiCompleted = 0, Total = 0;
  RandomGenerator Rng(11);
  for (int Round = 0; Round < 2000; ++Round) {
    const auto A = executeStrategies(Single, Rng, 0.3);
    const auto B = executeStrategies(Multi, Rng, 0.3);
    SingleCompleted += A.Completed;
    MultiCompleted += B.Completed;
    Total += A.Jobs;
  }
  // Single-version: ~70% completion; 4 versions: much closer to 1.
  EXPECT_GT(MultiCompleted, SingleCompleted);
  EXPECT_GT(static_cast<double>(MultiCompleted) /
                static_cast<double>(Total),
            0.9);
}

TEST(StrategyExecuteTest, ReservedTimeGrowsWithVersions) {
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const IterationOutcome Outcome = makeOutcome(Jobs);
  RandomGenerator Rng(3);
  const auto One =
      executeStrategies(buildStrategies(Outcome, {1}), Rng, 0.0);
  const auto Three =
      executeStrategies(buildStrategies(Outcome, {3}), Rng, 0.0);
  EXPECT_GT(Three.ReservedNodeTime, One.ReservedNodeTime);
}

TEST(StrategyExecuteTest, EmptyStrategyListIsTrivial) {
  RandomGenerator Rng(1);
  const StrategyExecutionReport Report =
      executeStrategies({}, Rng, 0.5);
  EXPECT_EQ(Report.Jobs, 0u);
  EXPECT_DOUBLE_EQ(Report.completionRate(), 0.0);
}
