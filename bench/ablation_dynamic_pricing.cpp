//===-- bench/ablation_dynamic_pricing.cpp - Supply-demand pricing --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment (Section 7 future work): "pricing mechanisms
/// that will take into account supply-and-demand trends". Runs the VO
/// loop twice on identical domains and job streams — static owner
/// prices vs the PricingEngine's multiplicative supply-demand rule —
/// and reports throughput, owner income, and how evenly the external
/// load spreads across nodes (standard deviation of per-node busy
/// time): the pricing rule pushes price-capped requests away from hot
/// nodes, and prices decay wherever booked demand undershoots the
/// owner's utilization target.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/DynamicPricing.h"
#include "engine/VirtualOrganization.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>

using namespace ecosched;

namespace {

ComputingDomain makeDomain(RandomGenerator &Rng, int Nodes) {
  ComputingDomain D;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price = Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    D.addNode(Perf, Price);
  }
  return D;
}

Job makeJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 4));
  J.Request.Volume = Rng.uniformReal(50.0, 150.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 1.6);
  J.Request.MaxUnitPrice = 1.1 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

struct RunReport {
  size_t Completed = 0;
  size_t Leftover = 0;
  double Income = 0.0;
  double MeanWaitIterations = 0.0;
  double NodeBusyStddev = 0.0;
};

RunReport runVo(uint64_t Seed, int64_t Iterations, bool DynamicPrices) {
  RandomGenerator Rng(Seed);
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  ComputingDomain Domain = makeDomain(Rng, 10);
  const size_t NodeCount = Domain.pool().size();

  PricingEngine::Config PricingCfg;
  PricingCfg.TargetUtilization = 0.5;
  PricingCfg.Sensitivity = 0.6;
  PricingEngine Pricing(PricingCfg);
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 150.0;
  Cfg.HorizonLength = 700.0;
  VirtualOrganization Vo(std::move(Domain), Scheduler, Cfg);
  Pricing.captureBasePrices(Vo.domain());

  std::vector<double> BusyPerNode(NodeCount, 0.0);
  int NextJobId = 0;
  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    const int Arrivals = static_cast<int>(Rng.uniformInt(5, 11));
    for (int A = 0; A < Arrivals; ++A)
      Vo.submit(makeJob(Rng, NextJobId++));
    const double WindowStart = Vo.now().value();
    Vo.runIteration();

    // Account external load committed over the elapsed period and, in
    // dynamic mode, let the owners react to it.
    for (size_t N = 0; N < NodeCount; ++N)
      BusyPerNode[N] += PricingEngine::nodeUtilization(
                            Vo.domain(), static_cast<int>(N),
                            TimePoint(WindowStart),
                            TimePoint(WindowStart + Cfg.IterationPeriod)) *
                        Cfg.IterationPeriod;
    if (DynamicPrices)
      // Owners look at booked demand over the whole look-ahead horizon,
      // not just the elapsed period, so committed future reservations
      // count towards the trend.
      Pricing.update(Vo.mutableDomain(), Vo.now(),
                     TimePoint(Vo.now().value() + Cfg.HorizonLength));
  }

  RunReport Report;
  Report.Completed = Vo.completed().size();
  Report.Leftover = Vo.queueLength();
  Report.Income = Vo.totalIncome().value();
  RunningStats Wait, Busy;
  for (const CompletedJob &C : Vo.completed())
    Wait.add(static_cast<double>(C.Attempts - 1));
  for (const double B : BusyPerNode)
    Busy.add(B);
  Report.MeanWaitIterations = Wait.mean();
  Report.NodeBusyStddev = Busy.stddev();
  return Report;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_dynamic_pricing",
                 "static vs supply-demand node pricing on the VO loop");
  const int64_t &Iterations =
      Args.addInt("iterations", 40, "VO iterations per run");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const int64_t &Runs = Args.addInt("runs", 5, "independent VO runs");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: supply-and-demand pricing (Section 7 future "
              "work)\n");
  std::printf("=========================================================\n"
              "\n");

  TablePrinter Table;
  Table.addColumn("pricing", TablePrinter::AlignKind::Left);
  Table.addColumn("completed");
  Table.addColumn("queued at end");
  Table.addColumn("owner income");
  Table.addColumn("avg wait (iters)");
  Table.addColumn("node-load stddev");

  for (const bool Dynamic : {false, true}) {
    RunningStats Completed, Leftover, Income, Wait, Stddev;
    for (int64_t R = 0; R < Runs; ++R) {
      const RunReport Report = runVo(
          static_cast<uint64_t>(Seed) + static_cast<uint64_t>(R) * 7919,
          Iterations, Dynamic);
      Completed.add(static_cast<double>(Report.Completed));
      Leftover.add(static_cast<double>(Report.Leftover));
      Income.add(Report.Income);
      Wait.add(Report.MeanWaitIterations);
      Stddev.add(Report.NodeBusyStddev);
    }
    Table.beginRow();
    Table.addCell(std::string(Dynamic ? "supply-demand" : "static"));
    Table.addCell(Completed.mean(), 1);
    Table.addCell(Leftover.mean(), 1);
    Table.addCell(Income.mean(), 0);
    Table.addCell(Wait.mean(), 2);
    Table.addCell(Stddev.mean(), 1);
  }
  Table.print(stdout);

  std::printf("\nreading: demand-following prices spread external load "
              "noticeably more evenly across nodes (lower stddev) and "
              "shorten queue waits, at the same throughput. Aggregate "
              "owner income falls whenever booked demand sits below the "
              "target utilization -- prices correctly decay when supply "
              "exceeds demand -- so owners tune TargetUtilization to "
              "their revenue goals.\n");
  return 0;
}
