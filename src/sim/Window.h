//===-- sim/Window.h - Co-allocation window model -------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A window is the set of N concurrent slots selected for one job. All
/// tasks start simultaneously at the window start; on nodes of varying
/// performance each task finishes at its own time, giving the "rough
/// right edge" of Fig. 1(a). Window time is the runtime of the task on
/// the slowest selected node.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_WINDOW_H
#define ECOSCHED_SIM_WINDOW_H

#include "sim/Slot.h"

#include <cstddef>
#include <vector>

namespace ecosched {

class SlotList;

/// One member of a window: the source slot plus its derived usage.
/// Like Slot, this is storage-bridge state: the fields stay raw double
/// (trace/snapshot representation), the typed accessors carry the
/// dimension.
struct WindowSlot {
  /// The vacant slot the task is placed on.
  Slot Source;
  /// Time the task occupies the node: Volume / Performance.
  double Runtime = 0.0;
  /// Money charged for the usage: UnitPrice * Runtime.
  double Cost = 0.0;

  /// Occupied time as a typed duration.
  Duration runtime() const { return Duration(Runtime); }
  /// Charged money as a typed amount.
  Money cost() const { return Money(Cost); }
};

/// The co-allocated slot set for one job.
class Window {
public:
  Window() = default;

  /// Builds a window starting at \p StartTime from \p Members whose
  /// slots all cover [StartTime, StartTime + Runtime].
  Window(TimePoint StartTime, std::vector<WindowSlot> Members);

  /// Synchronous start time of all tasks.
  TimePoint startTime() const { return TimePoint(Start); }

  /// Runtime of the task on the slowest selected node; the paper's
  /// t_i(s_i) resource usage time.
  Duration timeSpan() const { return Duration(MaxRuntime); }

  /// End of the latest-finishing task.
  TimePoint endTime() const { return TimePoint(Start + MaxRuntime); }

  /// Total money charged for all member slots; the paper's c_i(s_i).
  Money totalCost() const { return Money(TotalCost); }

  /// Sum of member unit prices (the "window cost per time unit" used in
  /// the Section 4 example, where all performances are equal).
  Price unitPriceSum() const { return Price(UnitPrices); }

  /// Number of co-allocated slots.
  size_t size() const { return Members.size(); }
  bool empty() const { return Members.empty(); }

  const WindowSlot &operator[](size_t I) const { return Members[I]; }
  std::vector<WindowSlot>::const_iterator begin() const {
    return Members.begin();
  }
  std::vector<WindowSlot>::const_iterator end() const {
    return Members.end();
  }

  /// True if some member is placed on \p NodeId.
  bool usesNode(int NodeId) const;

  /// True if this window and \p Other reserve overlapping time on a
  /// common node. Alternatives produced by the batch search must be
  /// pairwise non-intersecting (Section 2).
  bool intersects(const Window &Other) const;

  /// Removes this window's reserved spans from \p List (Fig. 1(b)).
  /// \returns true if every member span was found and subtracted.
  bool subtractFrom(SlotList &List) const;

  /// Structural validator: every member covers [start, start + runtime],
  /// per-member cost equals UnitPrice * Runtime, and the cached
  /// aggregates (time span, total cost, unit-price sum) match a fresh
  /// recomputation. Aborts with a diagnostic naming the offending
  /// member. Invoked at search/optimizer stage boundaries under
  /// ECOSCHED_DCHECK.
  void validate() const;

  /// Validator variant that additionally checks the window answers a
  /// request for \p ExpectedSlots concurrent slots.
  void validate(size_t ExpectedSlots) const;

private:
  double Start = 0.0;
  double MaxRuntime = 0.0;
  double TotalCost = 0.0;
  double UnitPrices = 0.0;
  std::vector<WindowSlot> Members;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_WINDOW_H
