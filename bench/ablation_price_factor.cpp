//===-- bench/ablation_price_factor.cpp - Request price cap model ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E10 (DESIGN.md): the paper does not publish how a
/// generated job's price cap C is drawn; we model it as
/// C = priceFactor * 1.7^Pmin (top market rate of the slowest
/// acceptable node class at the default 1.25). This ablation sweeps the
/// factor to show which conclusions are robust to that choice: the
/// AMP-finds-more-alternatives and AMP-is-faster shapes hold across the
/// sweep, while absolute costs scale with the cap.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_price_factor",
                 "sweep the derived request price cap factor");
  const int64_t &Iterations =
      Args.addInt("iterations", 600, "iterations per factor");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Ablation: request price cap C = factor * 1.7^Pmin "
              "(time minimization)\n");
  std::printf("=================================================="
              "================\n\n");

  TablePrinter Table;
  Table.addColumn("factor");
  Table.addColumn("counted");
  Table.addColumn("ALP alts/job");
  Table.addColumn("AMP alts/job");
  Table.addColumn("ALP time");
  Table.addColumn("AMP time");
  Table.addColumn("ALP cost");
  Table.addColumn("AMP cost");

  for (const double Factor : {0.9, 1.0, 1.1, 1.25, 1.5, 2.0}) {
    ExperimentConfig Cfg;
    Cfg.Iterations = Iterations;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.Task = OptimizationTaskKind::MinimizeTime;
    Cfg.Jobs.PriceFactor = Factor;
    const ExperimentResult R = PairedExperiment(Cfg).run();

    Table.beginRow();
    Table.addCell(Factor, 2);
    Table.addCell(static_cast<long long>(R.CountedIterations));
    Table.addCell(R.Alp.AlternativesPerJob.mean(), 2);
    Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
    Table.addCell(R.Alp.JobTime.mean(), 2);
    Table.addCell(R.Amp.JobTime.mean(), 2);
    Table.addCell(R.Alp.JobCost.mean(), 2);
    Table.addCell(R.Amp.JobCost.mean(), 2);
  }
  Table.print(stdout);

  std::printf("\nreading: tighter caps starve ALP of admissible slots "
              "(fewer counted iterations); the AMP-over-ALP alternative "
              "and time advantages persist across the sweep, supporting "
              "the substitution documented in DESIGN.md.\n");
  return 0;
}
