//===-- examples/vo_simulation.cpp - Iterative VO scheduling --------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario the paper's introduction motivates: a virtual
/// organization over non-dedicated resources. Owner-local jobs occupy
/// the nodes; external parallel jobs arrive continuously and are batch-
/// scheduled every period on the refreshed local schedules. Unplaceable
/// jobs are postponed to the next iteration (Section 1-2). The example
/// reports per-iteration activity and the final economic summary.
///
/// With --vos=N > 1 the example becomes the paper's wider setting: N
/// independent virtual organizations over disjoint domains, driven
/// concurrently by the engine's MultiVoDriver (per-VO results are
/// deterministic for any --threads value).
///
/// Run: build/examples/vo_simulation [--iterations=N] [--seed=S]
///                                   [--nodes=N] [--task=time|cost]
///                                   [--vos=N] [--threads=T]
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/MultiVoDriver.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <cstdio>

using namespace ecosched;

namespace {

/// Random domain: heterogeneous nodes priced by the paper's 1.7^P rule,
/// each carrying a stream of owner-local tasks over the first stretch
/// of the timeline.
ComputingDomain makeDomain(RandomGenerator &Rng, int Nodes) {
  ComputingDomain D;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price = Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    const int Id = D.addNode(Perf, Price);
    double Cursor = Rng.uniformReal(0.0, 150.0);
    while (Cursor < 1200.0) {
      const double Len = Rng.uniformReal(30.0, 150.0);
      D.addLocalTask(Id, TimePoint(Cursor), TimePoint(Cursor + Len));
      Cursor += Len + Rng.uniformReal(50.0, 300.0);
    }
  }
  return D;
}

Job makeJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 5));
  J.Request.Volume = Rng.uniformReal(50.0, 150.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 2.0);
  J.Request.MaxUnitPrice = 1.25 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

/// Multi-VO mode: N tenants with independent domains and job streams,
/// one iteration of every VO per round via the concurrent driver.
int runMultiVo(const Metascheduler &Scheduler,
               const VirtualOrganization::Config &VoCfg,
               RandomGenerator &Rng, int64_t Vos, int64_t Threads,
               int64_t Nodes, int64_t Iterations) {
  ThreadPool Pool(
      ThreadPool::resolveThreadCount(static_cast<size_t>(Threads)));
  MultiVoDriver::Config DriverCfg;
  DriverCfg.Pool = &Pool;
  MultiVoDriver Driver(DriverCfg);
  for (int64_t V = 0; V < Vos; ++V) {
    RandomGenerator DomainRng = Rng.fork();
    Driver.addTenant(makeDomain(DomainRng, static_cast<int>(Nodes)),
                     Scheduler, VoCfg, Rng.next());
  }

  std::printf("multi-VO simulation: %lld VOs x %lld nodes, %lld "
              "iterations, %zu threads\n\n",
              static_cast<long long>(Vos), static_cast<long long>(Nodes),
              static_cast<long long>(Iterations), Pool.threadCount());

  // Per-round activity summed over the tenants; per-VO results stay
  // deterministic for any thread count (see docs/CONCURRENCY.md).
  TablePrinter Rounds;
  Rounds.addColumn("iter");
  Rounds.addColumn("arrived");
  Rounds.addColumn("queued");
  Rounds.addColumn("placed");
  Rounds.addColumn("dropped");
  const auto Arrivals = [](size_t VoIndex, size_t Iteration,
                           RandomGenerator &TenantRng) {
    Batch B;
    const int64_t Count = TenantRng.uniformInt(1, 5);
    for (int64_t K = 0; K < Count; ++K)
      B.push_back(makeJob(TenantRng,
                          static_cast<int>(VoIndex * 100000 +
                                           Iteration * 100 + K)));
    return B;
  };
  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    const auto Round = Driver.runIteration(Arrivals);
    size_t Arrived = 0, Queued = 0, Placed = 0, Dropped = 0;
    for (const MultiVoDriver::TenantIteration &T : Round) {
      Arrived += T.Arrivals;
      Queued += T.Report.QueueLength;
      Placed += T.Report.Committed;
      Dropped += T.Report.Dropped;
    }
    Rounds.beginRow();
    Rounds.addCell(static_cast<long long>(Iter));
    Rounds.addCell(static_cast<long long>(Arrived));
    Rounds.addCell(static_cast<long long>(Queued));
    Rounds.addCell(static_cast<long long>(Placed));
    Rounds.addCell(static_cast<long long>(Dropped));
  }
  Rounds.print(stdout);

  TablePrinter PerVo;
  PerVo.addColumn("vo");
  PerVo.addColumn("completed");
  PerVo.addColumn("queued");
  PerVo.addColumn("dropped");
  PerVo.addColumn("income", TablePrinter::AlignKind::Right);
  for (size_t V = 0; V < Driver.tenantCount(); ++V) {
    const VirtualOrganization &Vo = Driver.tenant(V);
    PerVo.beginRow();
    PerVo.addCell(static_cast<long long>(V));
    PerVo.addCell(static_cast<long long>(Vo.completed().size()));
    PerVo.addCell(static_cast<long long>(Vo.queueLength()));
    PerVo.addCell(static_cast<long long>(Vo.dropped().size()));
    PerVo.addCell(Vo.totalIncome().value(), 1);
  }
  std::printf("\n");
  PerVo.print(stdout);
  std::printf("\ntotal: completed %zu, dropped %zu, income %.1f\n",
              Driver.totalCompleted(), Driver.totalDropped(),
              Driver.totalIncome().value());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("vo_simulation",
                 "iterative VO scheduling over a non-dedicated domain");
  const int64_t &Iterations =
      Args.addInt("iterations", 12, "scheduling iterations to simulate");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const int64_t &Nodes = Args.addInt("nodes", 12, "domain size");
  const std::string &Task =
      Args.addString("task", "time", "optimize 'time' or 'cost'");
  const int64_t &Vos =
      Args.addInt("vos", 1, "number of independent VOs to drive");
  const int64_t &Threads = Args.addInt(
      "threads", 0, "threads for the multi-VO driver (0 = hardware)");
  if (!Args.parse(Argc, Argv))
    return 1;

  RandomGenerator Rng(static_cast<uint64_t>(Seed));
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config SchedCfg;
  SchedCfg.Task = Task == "cost" ? OptimizationTaskKind::MinimizeCost
                                 : OptimizationTaskKind::MinimizeTime;
  Metascheduler Scheduler(Amp, Dp, SchedCfg);

  VirtualOrganization::Config VoCfg;
  VoCfg.IterationPeriod = 150.0;
  VoCfg.HorizonLength = 700.0;
  VoCfg.MaxAttempts = 8;
  if (Vos > 1)
    return runMultiVo(Scheduler, VoCfg, Rng, Vos, Threads, Nodes,
                      Iterations);
  VirtualOrganization Vo(makeDomain(Rng, static_cast<int>(Nodes)),
                         Scheduler, VoCfg);

  std::printf("VO simulation: %lld nodes, %lld iterations, task=%s\n\n",
              static_cast<long long>(Nodes),
              static_cast<long long>(Iterations), Task.c_str());

  TablePrinter Table;
  Table.addColumn("iter");
  Table.addColumn("t");
  Table.addColumn("arrived");
  Table.addColumn("queued");
  Table.addColumn("placed");
  Table.addColumn("postponed");
  Table.addColumn("dropped");
  Table.addColumn("T*", TablePrinter::AlignKind::Right);
  Table.addColumn("B*", TablePrinter::AlignKind::Right);

  int NextJobId = 0;
  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    const int Arrivals = static_cast<int>(Rng.uniformInt(1, 5));
    for (int A = 0; A < Arrivals; ++A)
      Vo.submit(makeJob(Rng, NextJobId++));

    const auto Report = Vo.runIteration();
    Table.beginRow();
    Table.addCell(static_cast<long long>(Iter));
    Table.addCell(Report.Now, 0);
    Table.addCell(static_cast<long long>(Arrivals));
    Table.addCell(static_cast<long long>(Report.QueueLength));
    Table.addCell(static_cast<long long>(Report.Committed));
    Table.addCell(
        static_cast<long long>(Report.Outcome.Postponed.size()));
    Table.addCell(static_cast<long long>(Report.Dropped));
    Table.addCell(Report.Outcome.TimeQuota, 1);
    Table.addCell(Report.Outcome.VoBudget, 1);
  }
  Table.print(stdout);

  // Economic summary over completed jobs.
  RunningStats Wait, Span, Cost;
  for (const CompletedJob &C : Vo.completed()) {
    Wait.add(static_cast<double>(C.Attempts - 1));
    Span.add(C.EndTime - C.StartTime);
    Cost.add(C.Cost);
  }
  std::printf("\nsubmitted %d, completed %zu, still queued %zu, "
              "dropped %zu\n",
              NextJobId, Vo.completed().size(), Vo.queueLength(),
              Vo.dropped().size());
  std::printf("owner income %.1f; per completed job: avg wait %.2f "
              "iterations, avg span %.1f, avg cost %.1f\n",
              Vo.totalIncome().value(), Wait.mean(), Span.mean(), Cost.mean());
  std::printf("domain load: local %.0f, external %.0f (remaining booked "
              "time)\n",
              Vo.domain().localLoad(), Vo.domain().externalLoad());
  return 0;
}
