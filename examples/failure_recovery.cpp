//===-- examples/failure_recovery.cpp - Node failures in the VO -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependability scenario Section 7 motivates: "the necessity of
/// guaranteed job execution ... causes taking into account the
/// distributed environment dynamics, namely ... possible failures of
/// computational nodes". A VO schedules a stream of parallel jobs while
/// nodes fail and recover; cancelled jobs are transparently requeued
/// and rescheduled on the surviving nodes. Users also change their
/// minds: queued or already-placed jobs are occasionally cancelled,
/// exercising the ledger's release path (reservations must vanish
/// without a trace, even before they start).
///
/// Run: build/examples/failure_recovery [--seed=S] [--iterations=N]
///                                      [--mtbf-iterations=K]
///                                      [--cancel-rate=P]
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/VirtualOrganization.h"
#include "support/CommandLine.h"
#include "support/Random.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace ecosched;

namespace {

Job makeJob(RandomGenerator &Rng, int Id) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 3));
  J.Request.Volume = Rng.uniformReal(80.0, 200.0);
  J.Request.MinPerformance = Rng.uniformReal(1.0, 1.5);
  J.Request.MaxUnitPrice = 1.25 * std::pow(1.7, J.Request.MinPerformance);
  return J;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("failure_recovery",
                 "VO scheduling under node failures and repairs");
  const int64_t &Iterations =
      Args.addInt("iterations", 16, "VO iterations to simulate");
  const int64_t &Seed = Args.addInt("seed", 13, "RNG seed");
  const int64_t &MtbfIterations = Args.addInt(
      "mtbf-iterations", 3, "mean iterations between node failures");
  const double &CancelRate = Args.addReal(
      "cancel-rate", 0.2, "per-iteration probability of a user "
                          "cancelling a recent job");
  if (!Args.parse(Argc, Argv))
    return 1;

  RandomGenerator Rng(static_cast<uint64_t>(Seed));
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  ComputingDomain Domain;
  const int NodeCount = 8;
  for (int I = 0; I < NodeCount; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    Domain.addNode(Perf,
                   Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf));
  }

  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 100.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(std::move(Domain), Scheduler, Cfg);

  TablePrinter Table;
  Table.addColumn("iter");
  Table.addColumn("event", TablePrinter::AlignKind::Left);
  Table.addColumn("queued");
  Table.addColumn("placed");
  Table.addColumn("requeued");
  Table.addColumn("cancelled");
  Table.addColumn("nodes up");

  std::vector<int> Failed;
  int NextJobId = 0;
  size_t TotalRequeued = 0;
  size_t TotalCancelled = 0;
  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    // Job arrivals.
    const int Arrivals = static_cast<int>(Rng.uniformInt(1, 4));
    for (int A = 0; A < Arrivals; ++A)
      Vo.submit(makeJob(Rng, NextJobId++));

    // User cancellations: a recently submitted job may be withdrawn
    // whether it is still queued, already placed, or long finished
    // (the last returns false and charges nothing).
    size_t Cancelled = 0;
    if (NextJobId > 0 && Rng.bernoulli(CancelRate)) {
      const int Victim =
          static_cast<int>(Rng.uniformInt(0, NextJobId - 1));
      Cancelled = Vo.cancelJob(Victim) ? 1 : 0;
      TotalCancelled += Cancelled;
    }

    // Fault injection: occasionally fail a healthy node; failed nodes
    // are repaired two iterations later.
    std::string Event = "-";
    size_t Requeued = 0;
    if (!Failed.empty() && Iter % 2 == 0) {
      const int Node = Failed.front();
      Failed.erase(Failed.begin());
      Vo.repairNode(Node);
      Event = "repair n" + std::to_string(Node);
    } else if (Rng.bernoulli(1.0 / static_cast<double>(MtbfIterations))) {
      const int Node =
          static_cast<int>(Rng.uniformInt(0, NodeCount - 1));
      if (Vo.domain().isNodeAvailable(Node)) {
        Requeued = Vo.injectNodeFailure(Node);
        TotalRequeued += Requeued;
        Failed.push_back(Node);
        Event = "FAIL n" + std::to_string(Node);
      }
    }

    const auto Report = Vo.runIteration();
    int NodesUp = 0;
    for (const ResourceNode &Node : Vo.domain().pool())
      NodesUp += Vo.domain().isNodeAvailable(Node.Id);

    Table.beginRow();
    Table.addCell(static_cast<long long>(Iter));
    Table.addCell(Event);
    Table.addCell(static_cast<long long>(Report.QueueLength));
    Table.addCell(static_cast<long long>(Report.Committed));
    Table.addCell(static_cast<long long>(Requeued));
    Table.addCell(static_cast<long long>(Cancelled));
    Table.addCell(static_cast<long long>(NodesUp));
  }
  Table.print(stdout);

  std::printf("\nsubmitted %d jobs, completed %zu, requeued by failures "
              "%zu, cancelled by users %zu, still queued %zu, dropped "
              "%zu\n",
              NextJobId, Vo.completed().size(), TotalRequeued,
              TotalCancelled, Vo.queueLength(), Vo.dropped().size());
  std::printf("every failed job was resubmitted automatically; no work "
              "was billed for cancelled reservations (owner income "
              "%.1f covers completed jobs only).\n",
              Vo.totalIncome().value());
  return 0;
}
