//===-- tests/core/AlternativeSearchTest.cpp - Batch search tests ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice,
            double MinPerf = 1.0) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = MinPerf;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

/// Four identical etalon slots, long enough for several passes.
SlotList makeUniformList() {
  return SlotList({Slot(0, 1.0, 1.0, 0.0, 400.0),
                   Slot(1, 1.0, 1.0, 0.0, 400.0),
                   Slot(2, 1.0, 1.0, 0.0, 400.0),
                   Slot(3, 1.0, 1.0, 0.0, 400.0)});
}

} // namespace

TEST(AlternativeSearchTest, FindsMultipleAlternativesPerJob) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  ASSERT_EQ(Alts.PerJob.size(), 1u);
  // 4 nodes x 400 time / (2 nodes x 100 time) = 8 disjoint windows.
  EXPECT_EQ(Alts.PerJob[0].size(), 8u);
  EXPECT_TRUE(Alts.allCovered());
  EXPECT_EQ(Alts.total(), 8u);
  EXPECT_DOUBLE_EQ(Alts.averagePerJob(), 8.0);
}

TEST(AlternativeSearchTest, AlternativesArePairwiseDisjoint) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0),
                      makeJob(2, 1, 150.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);

  std::vector<const Window *> All;
  for (const auto &PerJob : Alts.PerJob)
    for (const Window &W : PerJob)
      All.push_back(&W);
  ASSERT_GE(All.size(), 2u);
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      EXPECT_FALSE(All[I]->intersects(*All[J]))
          << "windows " << I << " and " << J << " overlap";
}

TEST(AlternativeSearchTest, UncoverableJobGetsNoAlternatives) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  // Job 2 wants 5 concurrent nodes; only 4 exist.
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 5, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  EXPECT_FALSE(Alts.allCovered());
  EXPECT_FALSE(Alts.PerJob[0].empty());
  EXPECT_TRUE(Alts.PerJob[1].empty());
}

TEST(AlternativeSearchTest, SearchContinuesPastFailingJob) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  // First job is impossible; the second must still collect everything.
  const Batch Jobs = {makeJob(1, 5, 100.0, 2.0),
                      makeJob(2, 1, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  EXPECT_TRUE(Alts.PerJob[0].empty());
  EXPECT_EQ(Alts.PerJob[1].size(), 16u); // 4 nodes x 4 fits each.
}

TEST(AlternativeSearchTest, MaxPassesLimitsSweeps) {
  AlpSearch Alp;
  AlternativeSearch::Config Cfg;
  Cfg.MaxPasses = 2;
  AlternativeSearch Search(Alp, Cfg);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  EXPECT_EQ(Alts.PerJob[0].size(), 2u);
}

TEST(AlternativeSearchTest, MaxAlternativesPerJobCap) {
  AlpSearch Alp;
  AlternativeSearch::Config Cfg;
  Cfg.MaxAlternativesPerJob = 3;
  AlternativeSearch Search(Alp, Cfg);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  EXPECT_EQ(Alts.PerJob[0].size(), 3u);
}

TEST(AlternativeSearchTest, PriorityOrderGivesFirstJobEarliestWindow) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  const Batch Jobs = {makeJob(1, 4, 100.0, 2.0),
                      makeJob(2, 4, 100.0, 2.0)};
  const AlternativeSet Alts = Search.run(makeUniformList(), Jobs);
  ASSERT_TRUE(Alts.allCovered());
  // Job 1 is served first on every pass, so its first alternative
  // starts no later than job 2's first alternative.
  EXPECT_LE(Alts.PerJob[0][0].startTime().value(), Alts.PerJob[1][0].startTime().value());
  EXPECT_DOUBLE_EQ(Alts.PerJob[0][0].startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(Alts.PerJob[1][0].startTime().value(), 100.0);
}

TEST(AlternativeSearchTest, AmpFindsAtLeastAsManyAsAlp) {
  // Mixed prices: some slots exceed the per-slot cap but fit the
  // budget, so AMP has strictly more material to work with.
  SlotList List({Slot(0, 1.0, 3.0, 0.0, 400.0),
                 Slot(1, 1.0, 1.0, 0.0, 400.0),
                 Slot(2, 1.0, 1.5, 0.0, 400.0),
                 Slot(3, 1.0, 2.5, 0.0, 400.0)});
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};

  AlpSearch Alp;
  AmpSearch Amp;
  const AlternativeSet AlpAlts = AlternativeSearch(Alp).run(List, Jobs);
  const AlternativeSet AmpAlts = AlternativeSearch(Amp).run(List, Jobs);
  EXPECT_GE(AmpAlts.total(), AlpAlts.total());
  EXPECT_GT(AmpAlts.total(), 0u);
}

TEST(AlternativeSearchTest, EmptyBatch) {
  AlpSearch Alp;
  AlternativeSearch Search(Alp);
  const AlternativeSet Alts = Search.run(makeUniformList(), Batch{});
  EXPECT_EQ(Alts.total(), 0u);
  EXPECT_FALSE(Alts.allCovered()); // Vacuously empty set is "uncovered".
}
