//===-- bench/scaling_complexity.cpp - O(m) vs O(m^2) check ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E8 (DESIGN.md): the Section 3 complexity claim. ALP and
/// AMP move only forward through the slot list — O(m) — while the
/// backfill baseline rescans the list from every release point —
/// O(m^2). The bench sweeps the slot count m, using a worst-case
/// (unsatisfiable) request so every algorithm scans its full search
/// space, and reports examined-slot counts and wall time. The examined
/// count for ALP/AMP must equal m exactly; backfill's must grow
/// quadratically.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>

using namespace ecosched;

namespace {

double timeSearchMs(const SlotSearchAlgorithm &Algo, const SlotList &List,
                    const ResourceRequest &Req, int Repeats,
                    SearchStats &Stats) {
  const auto Begin = std::chrono::steady_clock::now();
  for (int I = 0; I < Repeats; ++I) {
    SearchStats Local;
    const auto W = Algo.findWindow(List, Req, &Local);
    if (I == 0)
      Stats = Local;
    if (W)
      std::fprintf(stderr, "unexpected success\n");
  }
  const auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Begin).count() /
         Repeats;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("scaling_complexity",
                 "Section 3 complexity claim: ALP/AMP O(m) vs backfill "
                 "O(m^2)");
  const int64_t &MaxSlots =
      Args.addInt("max-slots", 16000, "largest slot list in the sweep");
  const int64_t &BackfillCap = Args.addInt(
      "backfill-cap", 16000, "skip backfill above this m (quadratic)");
  const int64_t &Seed = Args.addInt("seed", 3, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Section 3 complexity check: worst-case search over m "
              "slots\n");
  std::printf("========================================================\n"
              "\n");

  TablePrinter Table;
  Table.addColumn("m (slots)");
  Table.addColumn("ALP examined");
  Table.addColumn("ALP ms");
  Table.addColumn("AMP examined");
  Table.addColumn("AMP ms");
  Table.addColumn("backfill examined");
  Table.addColumn("backfill ms");

  AlpSearch Alp;
  AmpSearch Amp;
  BackfillSearch Backfill;

  // An unsatisfiable request: more concurrent nodes than any list of
  // the generator's shape can offer, forcing full scans everywhere.
  ResourceRequest Req;
  Req.NodeCount = 100000;
  Req.Volume = 50.0;
  Req.MinPerformance = 1.0;
  Req.MaxUnitPrice = 1e9;

  RandomGenerator Rng(static_cast<uint64_t>(Seed));
  for (int64_t M = 1000; M <= MaxSlots; M *= 2) {
    SlotGeneratorConfig SlotCfg;
    SlotCfg.MinSlotCount = static_cast<int>(M);
    SlotCfg.MaxSlotCount = static_cast<int>(M);
    const SlotList List = SlotGenerator(SlotCfg).generate(Rng);

    SearchStats AlpStats, AmpStats, BackfillStats;
    const int Repeats = M <= 4000 ? 20 : 5;
    const double AlpMs = timeSearchMs(Alp, List, Req, Repeats, AlpStats);
    const double AmpMs = timeSearchMs(Amp, List, Req, Repeats, AmpStats);
    double BackfillMs = 0.0;
    const bool RunBackfill = M <= BackfillCap;
    if (RunBackfill)
      BackfillMs = timeSearchMs(Backfill, List, Req,
                                /*Repeats=*/M <= 4000 ? 3 : 1,
                                BackfillStats);

    Table.beginRow();
    Table.addCell(static_cast<long long>(M));
    Table.addCell(static_cast<long long>(AlpStats.SlotsExamined));
    Table.addCell(AlpMs, 3);
    Table.addCell(static_cast<long long>(AmpStats.SlotsExamined));
    Table.addCell(AmpMs, 3);
    if (RunBackfill) {
      Table.addCell(static_cast<long long>(BackfillStats.SlotsExamined));
      Table.addCell(BackfillMs, 3);
    } else {
      Table.addCell(std::string("(skipped)"));
      Table.addCell(std::string("-"));
    }
  }
  Table.print(stdout);

  std::printf("\nreading: ALP/AMP examine exactly m slots (one forward "
              "pass); backfill examines ~m + m^2 (every release point "
              "rescans the list). Doubling m doubles ALP/AMP time and "
              "quadruples backfill's.\n");
  return 0;
}
