//===-- core/BatchSearch.cpp - Whole-batch one-pass co-allocation ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BatchSearch.h"

#include "core/SearchCommon.h"

#include <algorithm>

using namespace ecosched;

namespace {

/// A slot in the scan queue, tagged with a unique serial so committed
/// members can be evicted from every job's working group.
struct ScanSlot {
  Slot S;
  uint64_t Serial = 0;
};

bool scanSlotStartLess(const ScanSlot &A, const ScanSlot &B) {
  return slotStartLess(A.S, B.S);
}

} // namespace

BatchAssignment OnePassBatchScheduler::assign(const SlotList &List,
                                              const Batch &Jobs) const {
  ECOSCHED_DVALIDATE(List.validate());
  BatchAssignment Result;
  Result.PerJob.resize(Jobs.size());

  // The scan queue: original slots plus, later, the unused tails of
  // committed window members. Indexed, because it grows mid-scan.
  std::vector<ScanSlot> Queue;
  Queue.reserve(List.size());
  uint64_t NextSerial = 0;
  for (const Slot &S : List)
    Queue.push_back({S, NextSerial++});
  std::sort(Queue.begin(), Queue.end(), scanSlotStartLess);

  std::vector<std::vector<ScanSlot>> Groups(Jobs.size());
  // Serials are dense (0..NextSerial), so a flat byte per serial beats
  // a hash set: O(1) with no hashing, and the commit sweep touches
  // contiguous memory. Grown in step with NextSerial as tails requeue.
  std::vector<char> Consumed(Queue.size(), 0);
  size_t Unplaced = Jobs.size();

  // Per-(serial, job) memo of the request-static predicates
  // (performance, optional price cap): 0 unknown, 1 admitted, 2
  // rejected. A requeued tail keeps its source's node, performance,
  // and price, so its row is inherited from the source serial instead
  // of re-evaluated — the same statics-are-shrink-invariant fact the
  // filters' admitsRemainder fast path relies on.
  const size_t JobCount = Jobs.size();
  std::vector<char> StaticAdmit(Queue.size() * JobCount, 0);
  const auto staticAdmits = [&](const ScanSlot &Cur,
                                const ResourceRequest &Req, size_t J) {
    char &Memo = StaticAdmit[Cur.Serial * JobCount + J];
    if (Memo == 0) {
      const bool Ok = detail::meetsPerformance(Cur.S, Req) &&
                      (PriceMode != PriceModeKind::PerSlotCap ||
                       detail::meetsPriceCap(Cur.S, Req));
      Memo = Ok ? 1 : 2;
    }
    return Memo == 1;
  };
  std::vector<char> RowScratch(JobCount);

  // Scratch buffers hoisted out of the scan so commits reuse capacity
  // instead of allocating per window.
  std::vector<const ScanSlot *> Candidates;
  std::vector<const Slot *> Members;
  std::vector<uint64_t> Serials;
  for (size_t Idx = 0; Idx < Queue.size() && Unplaced > 0; ++Idx) {
    const ScanSlot Cur = Queue[Idx]; // Copy: Queue may reallocate below.
    ++Result.Stats.SlotsExamined;
    const TimePoint Anchor = Cur.S.start();

    for (size_t J = 0, E = Jobs.size(); J != E; ++J) {
      if (Result.PerJob[J])
        continue;
      if (Consumed[Cur.Serial])
        break; // A higher-priority job took this slot at this anchor.
      const ResourceRequest &Req = Jobs[J].Request;
      if (!staticAdmits(Cur, Req, J))
        continue;
      if (!detail::meetsLength(Cur.S, Req))
        continue;
      if (!detail::fitsDeadline(Cur.S, Anchor, Req))
        continue;

      // The job's window start advances to the newest slot's start;
      // expire stale members (ALP/AMP step 3).
      std::vector<ScanSlot> &Group = Groups[J];
      std::erase_if(Group, [&](const ScanSlot &G) {
        return !G.S.coversFrom(Anchor, G.S.runtimeFor(Req.Volume)) ||
               !detail::fitsDeadline(G.S, Anchor, Req);
      });
      Group.push_back(Cur);
      Result.Stats.GroupOperations += Group.size();
      Result.Stats.GroupPeak =
          std::max(Result.Stats.GroupPeak, Group.size());

      const size_t Needed = static_cast<size_t>(Req.NodeCount);
      if (Group.size() < Needed)
        continue;

      // Cheapest-N members; in budget mode also check the job budget.
      Candidates.clear();
      for (const ScanSlot &G : Group)
        Candidates.push_back(&G);
      std::partial_sort(
          Candidates.begin(),
          Candidates.begin() + static_cast<long>(Needed),
          Candidates.end(), [&](const ScanSlot *A, const ScanSlot *B) {
            const Money CostA = detail::slotUsageCost(A->S, Req);
            const Money CostB = detail::slotUsageCost(B->S, Req);
            // Exact comparison: comparator must stay a strict weak
            // ordering.
            if (!exactEq(CostA, CostB))
              return exactLess(CostA, CostB);
            return A->Serial < B->Serial;
          });
      Candidates.resize(Needed);

      if (PriceMode == PriceModeKind::JobBudget) {
        Money Total(0.0);
        for (const ScanSlot *C : Candidates)
          Total = Total + detail::slotUsageCost(C->S, Req);
        if (approxGt(Total, Req.budget()))
          continue;
      }

      // Commit the window: evict members everywhere, requeue tails.
      Members.clear();
      Serials.clear();
      for (const ScanSlot *C : Candidates) {
        Members.push_back(&C->S);
        Serials.push_back(C->Serial);
      }
      Result.PerJob[J] = detail::buildWindow(Anchor, Members, Req);
      --Unplaced;

      size_t MemberIdx = 0;
      for (const WindowSlot &M : *Result.PerJob[J]) {
        // Window members preserve Candidates order (buildWindow), so
        // this member's scan-queue serial is Serials[MemberIdx].
        const uint64_t SourceSerial = Serials[MemberIdx++];
        const double TailStart = Anchor.value() + M.Runtime;
        if (approxGt(M.Source.End - TailStart, 0.0)) {
          ScanSlot Tail;
          Tail.S = M.Source;
          Tail.S.Start = TailStart;
          Tail.Serial = NextSerial++;
          Consumed.push_back(0);
          // Inherit the source's static-predicate row (via scratch —
          // self-insertion from a vector that may reallocate is UB).
          std::copy_n(StaticAdmit.begin() +
                          static_cast<long>(SourceSerial * JobCount),
                      JobCount, RowScratch.begin());
          StaticAdmit.insert(StaticAdmit.end(), RowScratch.begin(),
                             RowScratch.end());
          // Tails start after the current anchor; keep the unscanned
          // region sorted so the scan encounters them in order.
          const auto Pos = std::upper_bound(
              Queue.begin() + static_cast<long>(Idx) + 1, Queue.end(),
              Tail, scanSlotStartLess);
          Queue.insert(Pos, Tail);
        }
      }
      for (const uint64_t Serial : Serials)
        Consumed[Serial] = 1;
      // The placed job's own group is dead weight from here on; drop it
      // so the eviction sweeps below and in later commits skip it.
      Group.clear();
      for (auto &OtherGroup : Groups) {
        if (OtherGroup.empty())
          continue; // Most groups are empty or already placed: no sweep.
        std::erase_if(OtherGroup, [&](const ScanSlot &G) {
          return Consumed[G.Serial] != 0;
        });
      }
      if (Consumed[Cur.Serial])
        break; // The anchor slot itself was taken.
    }
  }
  return Result;
}
