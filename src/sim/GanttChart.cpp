//===-- sim/GanttChart.cpp - ASCII occupancy charts -----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/GanttChart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace ecosched;

GanttChart::GanttChart(TimePoint HorizonStart, TimePoint HorizonEnd,
                       int Columns)
    : HorizonStart(HorizonStart.value()), HorizonEnd(HorizonEnd.value()),
      Columns(Columns) {
  ECOSCHED_CHECK(exactLess(HorizonStart, HorizonEnd),
                 "empty chart horizon [{}, {})", HorizonStart.value(),
                 HorizonEnd.value());
  ECOSCHED_CHECK(Columns > 0, "chart needs at least one column, got {}",
                 Columns);
}

size_t GanttChart::addRow(const std::string &Label) {
  Labels.push_back(Label);
  Cells.emplace_back(static_cast<size_t>(Columns), '.');
  return Labels.size() - 1;
}

size_t GanttChart::columnFor(TimePoint Time) const {
  const double Fraction =
      (Time.value() - HorizonStart) / (HorizonEnd - HorizonStart);
  const double Clamped = std::clamp(Fraction, 0.0, 1.0);
  const auto Col = static_cast<size_t>(Clamped * Columns);
  return std::min(Col, static_cast<size_t>(Columns - 1));
}

void GanttChart::fill(size_t Row, TimePoint SpanStart, TimePoint SpanEnd,
                      char Fill) {
  ECOSCHED_CHECK(Row < Cells.size(),
                 "invalid chart row {} of {}", Row, Cells.size());
  const double Start = SpanStart.value();
  const double End = SpanEnd.value();
  if (!exactLess(HorizonStart, End) || !exactLess(Start, HorizonEnd) ||
      !exactLess(Start, End))
    return;
  const size_t FirstCol = columnFor(TimePoint(Start));
  // Last painted cell: the one containing End (exclusive), i.e.
  // ceil(offset) - 1, clamped to the chart.
  const double Width = (HorizonEnd - HorizonStart) / Columns;
  const double EndOffset = (End - HorizonStart) / Width;
  long Last = static_cast<long>(std::ceil(EndOffset)) - 1;
  Last = std::clamp(Last, static_cast<long>(FirstCol),
                    static_cast<long>(Columns - 1));
  for (size_t Col = FirstCol; Col <= static_cast<size_t>(Last); ++Col)
    Cells[Row][Col] = Fill;
}

std::string GanttChart::render() const {
  size_t LabelWidth = 0;
  for (const std::string &Label : Labels)
    LabelWidth = std::max(LabelWidth, Label.size());

  std::string Out;
  for (size_t Row = 0, E = Labels.size(); Row != E; ++Row) {
    Out += Labels[Row];
    Out.append(LabelWidth - Labels[Row].size() + 1, ' ');
    Out += '|';
    Out += Cells[Row];
    Out += "|\n";
  }
  // Time axis: horizon start at the left edge, horizon end at the right.
  Out.append(LabelWidth + 1, ' ');
  char Left[32], Right[32];
  std::snprintf(Left, sizeof(Left), "%g", HorizonStart);
  std::snprintf(Right, sizeof(Right), "%g", HorizonEnd);
  Out += Left;
  const size_t Used = std::char_traits<char>::length(Left) +
                      std::char_traits<char>::length(Right);
  const size_t Width = static_cast<size_t>(Columns) + 2;
  Out.append(Width > Used ? Width - Used : 1, ' ');
  Out += Right;
  Out += '\n';
  return Out;
}

static std::string renderChartImpl(const ComputingDomain &Domain,
                                   const std::vector<ChartWindow> *Windows,
                                   TimePoint HorizonStart,
                                   TimePoint HorizonEnd, int Columns) {
  GanttChart Chart(HorizonStart, HorizonEnd, Columns);
  for (const ResourceNode &Node : Domain.pool()) {
    char Label[96];
    std::snprintf(Label, sizeof(Label), "%s (P=%.1f, C=%.1f)",
                  Node.Name.c_str(), Node.Performance, Node.UnitPrice);
    const size_t Row = Chart.addRow(Label);
    for (const BusyInterval &B : Domain.occupancy(Node.Id)) {
      char Fill = '#';
      if (B.Kind == OccupancyKind::External)
        Fill = static_cast<char>('A' + (B.JobId >= 0 ? B.JobId % 26 : 25));
      Chart.fill(Row, TimePoint(B.Start), TimePoint(B.End), Fill);
    }
    if (Windows)
      for (const ChartWindow &CW : *Windows)
        for (const WindowSlot &M : *CW.W)
          if (M.Source.NodeId == Node.Id)
            Chart.fill(Row, CW.W->startTime(),
                       CW.W->startTime() + M.runtime(), CW.Fill);
  }
  return Chart.render();
}

std::string ecosched::renderDomainChart(const ComputingDomain &Domain,
                                        TimePoint HorizonStart,
                                        TimePoint HorizonEnd, int Columns) {
  return renderChartImpl(Domain, nullptr, HorizonStart, HorizonEnd,
                         Columns);
}

std::string ecosched::renderDomainChart(
    const ComputingDomain &Domain, const std::vector<ChartWindow> &Windows,
    TimePoint HorizonStart, TimePoint HorizonEnd, int Columns) {
  return renderChartImpl(Domain, &Windows, HorizonStart, HorizonEnd,
                         Columns);
}

SvgDocument ecosched::renderDomainSvg(
    const ComputingDomain &Domain, const std::vector<ChartWindow> &Windows,
    TimePoint HorizonStart, TimePoint HorizonEnd) {
  ECOSCHED_CHECK(exactLess(HorizonStart, HorizonEnd),
                 "empty chart horizon [{}, {})", HorizonStart.value(),
                 HorizonEnd.value());
  const double LaneHeight = 26.0;
  const double LaneGap = 6.0;
  const double Left = 110.0, Right = 16.0, Top = 28.0, Bottom = 34.0;
  const double PlotWidth = 640.0;
  const double Height =
      Top + Bottom +
      static_cast<double>(Domain.pool().size()) * (LaneHeight + LaneGap);
  SvgDocument Doc(Left + PlotWidth + Right, Height);

  const auto XOf = [&](double Time) {
    const double Fraction = (Time - HorizonStart.value()) /
                            (HorizonEnd.value() - HorizonStart.value());
    return Left + std::clamp(Fraction, 0.0, 1.0) * PlotWidth;
  };

  // Time axis with ticks every ~1/6 of the horizon.
  SvgStyle Axis;
  Axis.Stroke = "#444444";
  const double AxisY = Height - Bottom + 4.0;
  Doc.addLine(Left, AxisY, Left + PlotWidth, AxisY, Axis);
  for (int Tick = 0; Tick <= 6; ++Tick) {
    const double T = HorizonStart.value() +
                     (HorizonEnd.value() - HorizonStart.value()) * Tick / 6.0;
    char Label[32];
    std::snprintf(Label, sizeof(Label), "%.0f", T);
    Doc.addLine(XOf(T), AxisY, XOf(T), AxisY + 4.0, Axis);
    Doc.addText(XOf(T), AxisY + 16.0, Label, 10.0,
                SvgTextAnchorKind::Middle);
  }

  const std::vector<std::string> JobColors = {
      "#3366cc", "#dc3912", "#109618", "#ff9900", "#990099", "#0099c6"};
  for (const ResourceNode &Node : Domain.pool()) {
    const double LaneTop =
        Top + static_cast<double>(Node.Id) * (LaneHeight + LaneGap);
    char Label[96];
    std::snprintf(Label, sizeof(Label), "%s (P=%.1f, C=%.1f)",
                  Node.Name.c_str(), Node.Performance, Node.UnitPrice);
    Doc.addText(Left - 8.0, LaneTop + LaneHeight * 0.65, Label, 10.0,
                SvgTextAnchorKind::End);

    SvgStyle LaneBackground;
    LaneBackground.Fill = "#f3f3f3";
    Doc.addRect(Left, LaneTop, PlotWidth, LaneHeight, LaneBackground);

    for (const BusyInterval &B : Domain.occupancy(Node.Id)) {
      SvgStyle Fill;
      Fill.Fill = B.Kind == OccupancyKind::Local
                      ? "#9e9e9e"
                      : JobColors[static_cast<size_t>(
                            B.JobId >= 0 ? B.JobId : 0) %
                                  JobColors.size()];
      Doc.addRect(XOf(B.Start), LaneTop + 2.0,
                  XOf(B.End) - XOf(B.Start), LaneHeight - 4.0, Fill);
    }
    for (size_t W = 0; W < Windows.size(); ++W)
      for (const WindowSlot &M : *Windows[W].W)
        if (M.Source.NodeId == Node.Id) {
          const double Start = Windows[W].W->startTime().value();
          SvgStyle Fill;
          Fill.Fill = JobColors[W % JobColors.size()];
          Fill.Stroke = "#222222";
          Fill.Opacity = 0.85;
          Doc.addRect(XOf(Start), LaneTop + 2.0,
                      XOf(Start + M.Runtime) - XOf(Start),
                      LaneHeight - 4.0, Fill);
        }
  }
  return Doc;
}
