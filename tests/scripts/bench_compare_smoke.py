#!/usr/bin/env python3
"""Smoke test for scripts/bench_compare.py (registered in ctest).

Drives the comparator with synthetic before/after google-benchmark JSON
pairs and asserts its exit code and report for the three behaviors the
bench-regression workflow (docs/PERFORMANCE.md) depends on:

  1. pass       - growth within the threshold exits 0;
  2. regression - growth beyond the threshold exits 1 and names the
                  offender;
  3. one-sided  - benchmarks present in only one file are reported as
                  notes but never fail the comparison.

Usage: bench_compare_smoke.py /path/to/bench_compare.py
"""

import json
import os
import subprocess
import sys
import tempfile


def bench_json(times_ns):
    """Minimal google-benchmark JSON with the given {name: real_time}."""
    return {
        "benchmarks": [
            {"name": name, "run_name": name, "run_type": "iteration",
             "real_time": value, "time_unit": "ns"}
            for name, value in sorted(times_ns.items())
        ]
    }


def run_case(compare, tmp, label, baseline, current, extra_args=()):
    base_path = os.path.join(tmp, f"{label}_base.json")
    curr_path = os.path.join(tmp, f"{label}_curr.json")
    with open(base_path, "w", encoding="utf-8") as handle:
        json.dump(bench_json(baseline), handle)
    with open(curr_path, "w", encoding="utf-8") as handle:
        json.dump(bench_json(current), handle)
    proc = subprocess.run(
        [sys.executable, compare, base_path, curr_path, *extra_args],
        capture_output=True, text=True)
    return proc


def expect(condition, message, proc):
    if not condition:
        sys.stderr.write(f"bench_compare_smoke FAILED: {message}\n"
                         f"--- stdout ---\n{proc.stdout}"
                         f"--- stderr ---\n{proc.stderr}")
        sys.exit(1)


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    compare = sys.argv[1]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        # Case 1: within the default 25% threshold -> pass.
        proc = run_case(compare, tmp, "pass",
                        {"BM_Search": 1000.0, "BM_Subtract": 400.0},
                        {"BM_Search": 1100.0, "BM_Subtract": 380.0})
        expect(proc.returncode == 0, "in-threshold pair must exit 0", proc)
        expect("OK" in proc.stdout, "pass case must report OK", proc)

        # Case 2: 2x growth -> regression, exit 1, offender named.
        proc = run_case(compare, tmp, "regress",
                        {"BM_Search": 1000.0, "BM_Subtract": 400.0},
                        {"BM_Search": 2000.0, "BM_Subtract": 380.0})
        expect(proc.returncode == 1, "regression must exit 1", proc)
        expect("REGRESSION" in proc.stdout,
               "regression case must flag the row", proc)
        expect("BM_Search" in proc.stderr,
               "regression summary must name the offender", proc)

        # Case 3: one-sided benchmarks are notes, never failures.
        proc = run_case(compare, tmp, "onesided",
                        {"BM_Common": 1000.0, "BM_Retired": 500.0},
                        {"BM_Common": 1010.0, "BM_Added": 700.0})
        expect(proc.returncode == 0,
               "one-sided presence must not fail the comparison", proc)
        expect("only in baseline: BM_Retired" in proc.stdout,
               "retired benchmark must be noted", proc)
        expect("only in current run: BM_Added" in proc.stdout,
               "added benchmark must be noted", proc)

        # Case 3b: a custom --threshold is honored.
        proc = run_case(compare, tmp, "threshold",
                        {"BM_Search": 1000.0}, {"BM_Search": 1100.0},
                        extra_args=("--threshold", "0.05"))
        expect(proc.returncode == 1,
               "10% growth must fail a 5% threshold", proc)

    print("bench_compare_smoke: all cases passed")
    return failures


if __name__ == "__main__":
    sys.exit(main())
