//===-- tests/support/ThreadPoolFuzzTest.cpp - Adversarial schedules ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ScheduleFuzz mode itself (docs/CONCURRENCY.md): shuffled chunk
/// claiming and injected yields must change only execution order, never
/// coverage, result placement, or exception propagation. Every test
/// sweeps at least 8 distinct shuffle seeds — a schedule bug that only
/// one interleaving exposes should not survive the whole sweep.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

constexpr uint64_t Seeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 0xdeadbeef};

ThreadPool::ScheduleFuzz fuzzed(uint64_t Seed) {
  ThreadPool::ScheduleFuzz F;
  F.Enabled = true;
  F.Seed = Seed;
  return F;
}

/// RAII guard restoring ECOSCHED_SCHEDULE_FUZZ so env-knob tests cannot
/// leak adversarial mode into later tests of the same binary.
struct EnvGuard {
  EnvGuard() {
    const char *Old = std::getenv("ECOSCHED_SCHEDULE_FUZZ");
    HadOld = Old != nullptr;
    if (HadOld)
      OldValue = Old;
  }
  ~EnvGuard() {
    if (HadOld)
      setenv("ECOSCHED_SCHEDULE_FUZZ", OldValue.c_str(), 1);
    else
      unsetenv("ECOSCHED_SCHEDULE_FUZZ");
  }
  bool HadOld = false;
  std::string OldValue;
};

} // namespace

TEST(ThreadPoolScheduleFuzzTest, ParallelMapKeepsResultOrder) {
  for (const uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ThreadPool Pool(4, fuzzed(Seed));
    const std::vector<size_t> Out = Pool.parallelMap<size_t>(
        257, 3, [](size_t I) { return I * I; });
    ASSERT_EQ(Out.size(), 257u);
    for (size_t I = 0; I < Out.size(); ++I)
      EXPECT_EQ(Out[I], I * I);
  }
}

TEST(ThreadPoolScheduleFuzzTest, EveryIndexExactlyOnce) {
  constexpr size_t Count = 1000;
  for (const uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ThreadPool Pool(4, fuzzed(Seed));
    std::vector<std::atomic<int>> Hits(Count);
    Pool.parallelFor(0, Count, 7, [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I < Count; ++I)
      ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
  }
}

TEST(ThreadPoolScheduleFuzzTest, NonZeroFirstIndexCovered) {
  // The shuffled order is built from First + K * Chunk; an off-by-one
  // there would visit indices below First or skip the tail.
  for (const uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ThreadPool Pool(4, fuzzed(Seed));
    std::atomic<size_t> Sum{0};
    std::atomic<size_t> Calls{0};
    Pool.parallelFor(100, 131, 4, [&](size_t I) {
      Sum += I;
      ++Calls;
    });
    EXPECT_EQ(Calls.load(), 31u);
    EXPECT_EQ(Sum.load(), (100u + 130u) * 31u / 2u);
  }
}

TEST(ThreadPoolScheduleFuzzTest, ExceptionPropagatesUnderShuffle) {
  for (const uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ThreadPool Pool(4, fuzzed(Seed));
    EXPECT_THROW(Pool.parallelFor(0, 100, 1,
                                  [](size_t I) {
                                    if (I == 37)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must stay usable after a failed adversarial call.
    std::atomic<size_t> Calls{0};
    Pool.parallelFor(0, 50, 1, [&](size_t) { ++Calls; });
    EXPECT_EQ(Calls.load(), 50u);
  }
}

TEST(ThreadPoolScheduleFuzzTest, RepeatedCallsStayCovered) {
  // Each call draws a fresh sub-stream from FuzzCallIndex; coverage must
  // hold for every schedule the stream produces, not just the first.
  ThreadPool Pool(4, fuzzed(99));
  for (int Round = 0; Round < 32; ++Round) {
    std::vector<std::atomic<int>> Hits(64);
    Pool.parallelFor(0, 64, 3, [&](size_t I) { ++Hits[I]; });
    for (size_t I = 0; I < 64; ++I)
      ASSERT_EQ(Hits[I].load(), 1) << "round " << Round << " index " << I;
  }
}

TEST(ThreadPoolScheduleFuzzTest, InlinePathsRunInOrder) {
  // Single-thread pools and one-chunk ranges bypass the worker path, so
  // fuzzing must not perturb their ascending inline order.
  ThreadPool Single(1, fuzzed(7));
  std::vector<size_t> Order;
  Single.parallelFor(0, 5, 2, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));

  ThreadPool Pool(4, fuzzed(7));
  Order.clear();
  Pool.parallelFor(0, 5, 64, [&](size_t I) { Order.push_back(I); });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolScheduleFuzzTest, NestedSubmissionCompletes) {
  for (const uint64_t Seed : Seeds) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ThreadPool Pool(4, fuzzed(Seed));
    constexpr size_t Outer = 8;
    constexpr size_t Inner = 16;
    std::vector<std::vector<size_t>> Results(Outer);
    Pool.parallelFor(0, Outer, 1, [&](size_t O) {
      Results[O] = Pool.parallelMap<size_t>(
          Inner, 4, [O](size_t I) { return O * 100 + I; });
    });
    for (size_t O = 0; O < Outer; ++O) {
      ASSERT_EQ(Results[O].size(), Inner);
      for (size_t I = 0; I < Inner; ++I)
        ASSERT_EQ(Results[O][I], O * 100 + I);
    }
  }
}

TEST(ThreadPoolScheduleFuzzTest, EnvKnobParsing) {
  const EnvGuard Guard;

  unsetenv("ECOSCHED_SCHEDULE_FUZZ");
  EXPECT_FALSE(ThreadPool::scheduleFuzzFromEnv().Enabled);

  setenv("ECOSCHED_SCHEDULE_FUZZ", "", 1);
  EXPECT_FALSE(ThreadPool::scheduleFuzzFromEnv().Enabled);

  setenv("ECOSCHED_SCHEDULE_FUZZ", "42", 1);
  ThreadPool::ScheduleFuzz F = ThreadPool::scheduleFuzzFromEnv();
  EXPECT_TRUE(F.Enabled);
  EXPECT_EQ(F.Seed, 42u);

  // Unparseable text still enables fuzzing (seed 0): CI can export any
  // token and get adversarial schedules rather than a silent no-op.
  setenv("ECOSCHED_SCHEDULE_FUZZ", "on", 1);
  F = ThreadPool::scheduleFuzzFromEnv();
  EXPECT_TRUE(F.Enabled);
  EXPECT_EQ(F.Seed, 0u);

  // The default constructor reads the knob; the explicit-mode one wins
  // over it.
  setenv("ECOSCHED_SCHEDULE_FUZZ", "7", 1);
  EXPECT_TRUE(ThreadPool(2).scheduleFuzz().Enabled);
  EXPECT_EQ(ThreadPool(2).scheduleFuzz().Seed, 7u);
  EXPECT_FALSE(ThreadPool(2, ThreadPool::ScheduleFuzz{}).scheduleFuzz()
                   .Enabled);
}
