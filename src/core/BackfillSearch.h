//===-- core/BackfillSearch.h - Quadratic baseline search ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper compares against (Section 3): a backfill-style
/// search [11, 12] that examines every potential window start (every
/// slot release point) and, for each, rescans the list for concurrent
/// slots — O(m^2) overall. Classic backfilling assumes homogeneous nodes
/// and identical task requirements; this implementation generalizes it
/// just enough to run on our heterogeneous slot lists so it can serve
/// two roles:
///   * the complexity comparator for the O(m) claim (bench E8), and
///   * an exhaustive "earliest window" oracle for property-testing ALP
///     and AMP (any feasible window start is an examined anchor, so the
///     returned window is provably the earliest).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_BACKFILLSEARCH_H
#define ECOSCHED_CORE_BACKFILLSEARCH_H

#include "core/SearchAlgorithm.h"

namespace ecosched {

/// Which price admissibility rule the baseline applies; this makes it an
/// oracle for ALP (per-slot cap) or AMP (job budget) respectively.
enum class PriceRuleKind {
  /// Condition 2c: every slot's unit price within the request cap.
  PerSlotCap,
  /// AMP rule: total usage cost of the window within the job budget.
  JobBudget,
};

/// Exhaustive earliest-window search, quadratic in the list size.
class BackfillSearch : public SlotSearchAlgorithm {
public:
  explicit BackfillSearch(PriceRuleKind PriceRule = PriceRuleKind::PerSlotCap)
      : PriceRule(PriceRule) {}

  std::string_view name() const override {
    return PriceRule == PriceRuleKind::PerSlotCap ? "backfill"
                                                  : "backfill-budget";
  }

  std::optional<Window>
  findWindow(const SlotList &List, const ResourceRequest &Request,
             SearchStats *Stats = nullptr) const override;

  /// Performance (and, under the per-slot rule, price) only: a slot
  /// failing either can neither anchor a window nor join one. Length
  /// and deadline stay dynamic — a too-short slot's release point is
  /// still a valid anchor for *other* slots, so filtering it out would
  /// change results.
  bool admits(const Slot &S, const ResourceRequest &Request) const override;

  /// Remainder fast path: every backfill static predicate (performance,
  /// optional per-slot price cap) is invariant under span shrinking, so
  /// an admitted container's pieces are admitted unconditionally.
  bool admitsRemainder(const Slot &Piece,
                       const ResourceRequest &Request) const override;

private:
  PriceRuleKind PriceRule;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_BACKFILLSEARCH_H
