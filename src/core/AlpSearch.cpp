//===-- core/AlpSearch.cpp - Algorithm based on Local Price ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"

#include "core/SearchCommon.h"

#include <algorithm>

using namespace ecosched;

namespace {

/// The ALP forward scan. With \p PreFiltered the list is a SlotFilter
/// view whose slots already pass the request-static predicates
/// (performance, price cap, length, own-start deadline), so only the
/// dynamic group logic runs per slot.
template <bool PreFiltered>
std::optional<Window> alpScan(const SlotList &List,
                              const ResourceRequest &Request,
                              SearchStats *Stats) {
  ECOSCHED_CHECK(Request.NodeCount > 0,
                 "request must ask for at least one slot, got {}",
                 Request.NodeCount);
  if constexpr (!PreFiltered) {
    // A SlotFilter view is validated when built, and its damage
    // maintenance is an exactness-property-tested local splice;
    // re-validating the view on every search would make the sweep
    // quadratic in the list size again (docs/PERFORMANCE.md).
    ECOSCHED_DVALIDATE(List.validate());
  }
  const size_t Needed = static_cast<size_t>(Request.NodeCount);
  std::vector<const Slot *> Group;
  SearchStats Local;

  // Deadline horizon via binary search: scanEndBefore() is exactly
  // where the per-slot "start meets the deadline" break used to fire,
  // so the examined set (and the window, if any) is unchanged while
  // the scan becomes O(log n + examined).
  const auto ScanEnd = List.scanEndBefore(Request.deadline());
  for (auto ScanIt = List.begin(); ScanIt != ScanEnd; ++ScanIt) {
    const Slot &S = *ScanIt;
    ++Local.SlotsExamined;
    if constexpr (!PreFiltered) {
      if (!detail::meetsPerformance(S, Request))
        continue;
      if (!detail::meetsPriceCap(S, Request))
        continue;
      if (!detail::meetsLength(S, Request))
        continue;
      if (!detail::fitsDeadline(S, S.start(), Request))
        continue;
    }

    // Step 3: the window start advances to the newest slot's start; drop
    // group members whose remaining length is no longer sufficient (or,
    // with a deadline, whose task can no longer finish in time).
    const TimePoint WindowStart = S.start();
    std::erase_if(Group, [&](const Slot *G) {
      return !G->coversFrom(WindowStart, G->runtimeFor(Request.Volume)) ||
             !detail::fitsDeadline(*G, WindowStart, Request);
    });
    Group.push_back(&S);
    Local.GroupOperations += Group.size();
    Local.GroupPeak = std::max(Local.GroupPeak, Group.size());

    if (Group.size() == Needed) {
      if (Stats)
        *Stats += Local;
      return detail::buildWindow(WindowStart, Group, Request);
    }
  }
  if (Stats)
    *Stats += Local;
  return std::nullopt;
}

} // namespace

std::optional<Window>
AlpSearch::findWindow(const SlotList &List, const ResourceRequest &Request,
                      SearchStats *Stats) const {
  return alpScan<false>(List, Request, Stats);
}

std::optional<Window>
AlpSearch::findWindowFiltered(const SlotList &Filtered,
                              const ResourceRequest &Request,
                              SearchStats *Stats) const {
  return alpScan<true>(Filtered, Request, Stats);
}

bool AlpSearch::admits(const Slot &S, const ResourceRequest &Request) const {
  return detail::meetsPerformance(S, Request) &&
         detail::meetsPriceCap(S, Request) &&
         detail::meetsLength(S, Request) &&
         detail::fitsDeadline(S, S.start(), Request);
}

bool AlpSearch::admitsRemainder(const Slot &Piece,
                                const ResourceRequest &Request) const {
  // A remainder keeps its container's node, performance, and price, so
  // conditions 2a and 2c hold by inheritance; the span-dependent checks
  // (2b and the own-start deadline — the piece may start later than its
  // container) are all that can change.
  return detail::meetsLength(Piece, Request) &&
         detail::fitsDeadline(Piece, Piece.start(), Request);
}
