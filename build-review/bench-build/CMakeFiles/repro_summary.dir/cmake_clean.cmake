file(REMOVE_RECURSE
  "../bench/repro_summary"
  "../bench/repro_summary.pdb"
  "CMakeFiles/repro_summary.dir/repro_summary.cpp.o"
  "CMakeFiles/repro_summary.dir/repro_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
