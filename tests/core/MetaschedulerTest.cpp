//===-- tests/core/MetaschedulerTest.cpp - Scheduler iteration tests ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Metascheduler.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

/// Heterogeneous node speeds so alternative times vary; with equal
/// times the floor in formula (2) makes T* smaller than the fastest
/// combination and every iteration is quota-infeasible (a faithful
/// reproduction quirk, exercised in LimitsTest).
SlotList makeNodeList() {
  return SlotList({Slot(0, 1.0, 1.0, 0.0, 400.0),
                   Slot(1, 2.0, 1.5, 0.0, 400.0),
                   Slot(2, 2.0, 1.5, 0.0, 400.0)});
}

} // namespace

TEST(MetaschedulerTest, SchedulesWholeBatch) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0),
                      makeJob(2, 1, 100.0, 2.0)};
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);

  ASSERT_TRUE(Out.Choice.Feasible);
  ASSERT_EQ(Out.Scheduled.size(), 2u);
  EXPECT_TRUE(Out.Postponed.empty());
  EXPECT_GT(Out.TimeQuota, 0.0);
  EXPECT_GT(Out.VoBudget, 0.0);
  // Chosen windows must not collide.
  EXPECT_FALSE(Out.Scheduled[0].W.intersects(Out.Scheduled[1].W));
}

TEST(MetaschedulerTest, ChoiceRespectsBudgetForTimeTask) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config Cfg;
  Cfg.Task = OptimizationTaskKind::MinimizeTime;
  Metascheduler Scheduler(Amp, Dp, Cfg);
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 1, 80.0, 2.0)};
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);
  ASSERT_TRUE(Out.Choice.Feasible);
  EXPECT_LE(Out.Choice.ConstraintTotal, Out.VoBudget + 1e-9);
}

TEST(MetaschedulerTest, ChoiceRespectsQuotaForCostTask) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config Cfg;
  Cfg.Task = OptimizationTaskKind::MinimizeCost;
  Metascheduler Scheduler(Amp, Dp, Cfg);
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 1, 80.0, 2.0)};
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);
  ASSERT_TRUE(Out.Choice.Feasible);
  EXPECT_LE(Out.Choice.ConstraintTotal, Out.TimeQuota + 1e-9);
}

TEST(MetaschedulerTest, PartialBatchSchedulesCoverableJobs) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config Cfg;
  Cfg.AllowPartialBatch = true;
  Metascheduler Scheduler(Amp, Dp, Cfg);
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 9, 100.0, 2.0)}; // Impossible: 9 nodes.
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);
  ASSERT_EQ(Out.Scheduled.size(), 1u);
  EXPECT_EQ(Out.Scheduled[0].JobId, 1);
  ASSERT_EQ(Out.Postponed.size(), 1u);
  EXPECT_EQ(Out.Postponed[0], 2);
}

TEST(MetaschedulerTest, StrictModePostponesEverythingOnGap) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config Cfg;
  Cfg.AllowPartialBatch = false;
  Metascheduler Scheduler(Amp, Dp, Cfg);
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 9, 100.0, 2.0)};
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);
  EXPECT_TRUE(Out.Scheduled.empty());
  EXPECT_EQ(Out.Postponed.size(), 2u);
}

TEST(MetaschedulerTest, FlooredQuotaPostponesUniformBatch) {
  // On uniform (etalon) nodes every alternative of a job shares one
  // execution time, so the floored formula (2) truncates T* below the
  // fastest combination and the batch is postponed; the exact-mean
  // policy schedules it.
  const SlotList Uniform({Slot(0, 1.0, 1.0, 0.0, 400.0),
                          Slot(1, 1.0, 1.0, 0.0, 400.0),
                          Slot(2, 1.0, 1.0, 0.0, 400.0)});
  const Batch Jobs = {makeJob(1, 1, 100.5, 2.0),
                      makeJob(2, 1, 80.5, 2.0)};
  AmpSearch Amp;
  DpOptimizer Dp;

  Metascheduler::Config Floored;
  Floored.Quota = QuotaPolicyKind::FlooredTerms;
  const IterationOutcome A =
      Metascheduler(Amp, Dp, Floored).runIteration(Uniform, Jobs);
  EXPECT_TRUE(A.Scheduled.empty());
  EXPECT_EQ(A.Postponed.size(), 2u);

  Metascheduler::Config Exact;
  Exact.Quota = QuotaPolicyKind::ExactMean;
  const IterationOutcome B =
      Metascheduler(Amp, Dp, Exact).runIteration(Uniform, Jobs);
  EXPECT_EQ(B.Scheduled.size(), 2u);
}

TEST(MetaschedulerTest, EmptySlotListPostponesAll) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0)};
  const IterationOutcome Out = Scheduler.runIteration(SlotList(), Jobs);
  EXPECT_TRUE(Out.Scheduled.empty());
  EXPECT_EQ(Out.Postponed.size(), 1u);
}

TEST(MetaschedulerTest, ScheduledEntriesReferenceChosenAlternative) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};
  const IterationOutcome Out =
      Scheduler.runIteration(makeNodeList(), Jobs);
  ASSERT_EQ(Out.Scheduled.size(), 1u);
  const ScheduledJob &S = Out.Scheduled[0];
  ASSERT_LT(S.AlternativeIndex,
            Out.Alternatives.PerJob[S.BatchIndex].size());
  const Window &Chosen =
      Out.Alternatives.PerJob[S.BatchIndex][S.AlternativeIndex];
  EXPECT_DOUBLE_EQ(S.W.startTime().value(), Chosen.startTime().value());
  EXPECT_DOUBLE_EQ(S.W.totalCost().value(), Chosen.totalCost().value());
}
