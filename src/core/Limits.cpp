//===-- core/Limits.cpp - VO economic limits T* and B* --------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Limits.h"

#include <cmath>

using namespace ecosched;

double ecosched::computeTimeQuota(
    const std::vector<std::vector<AlternativeValue>> &PerJob,
    QuotaPolicyKind Policy) {
  double Quota = 0.0;
  for (const auto &Alts : PerJob) {
    if (Alts.empty())
      continue;
    const double Count = static_cast<double>(Alts.size());
    for (const AlternativeValue &V : Alts) {
      const double Term = V.Time / Count;
      Quota += Policy == QuotaPolicyKind::FlooredTerms ? std::floor(Term)
                                                       : Term;
    }
  }
  return Quota;
}

double ecosched::computeVoBudget(
    const std::vector<std::vector<AlternativeValue>> &PerJob,
    Duration TimeQuota, const CombinationOptimizer &Optimizer) {
  CombinationProblem Income;
  Income.PerJob = PerJob;
  Income.Objective = MeasureKind::Cost;
  Income.Direction = DirectionKind::Maximize;
  Income.Constraint = MeasureKind::Time;
  Income.Limit = TimeQuota.value();
  const CombinationChoice Choice = Optimizer.solve(Income);
  if (!Choice.Feasible)
    return -1.0;
  return Choice.ObjectiveTotal;
}
