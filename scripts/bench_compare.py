#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

Usage: scripts/bench_compare.py BASELINE CURRENT [--threshold FRAC]
                                [--filter REGEX]

Compares per-benchmark real_time between a committed baseline (captured
with scripts/bench_baseline.sh) and a fresh run. A benchmark regresses
when its real_time grows by more than --threshold (default 0.25, i.e.
25%); any regression makes the script exit 1. Benchmarks present in
only one file are reported but never fail the comparison, so adding or
retiring benchmarks does not require regenerating the baseline in the
same commit.

Wall-clock microbenchmarks on shared machines are noisy; the threshold
is deliberately generous, and docs/PERFORMANCE.md describes when to
refresh the committed baseline instead of chasing noise.
"""

import argparse
import json
import re
import sys

# Aggregate entry preferred when a run used --benchmark_repetitions.
_PREFERRED_AGGREGATE = "median"


def load_times(path, name_filter):
    """Returns {benchmark name: real_time in ns} for one JSON file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    unit_to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    times = {}
    aggregates = set()
    for entry in data.get("benchmarks", []):
        run_name = entry.get("run_name", entry["name"])
        if name_filter and not re.search(name_filter, run_name):
            continue
        run_type = entry.get("run_type", "iteration")
        if run_type == "aggregate":
            if entry.get("aggregate_name") != _PREFERRED_AGGREGATE:
                continue
            aggregates.add(run_name)
        elif run_name in aggregates:
            continue  # Aggregate already seen; ignore raw repetitions.
        scale = unit_to_ns.get(entry.get("time_unit", "ns"), 1.0)
        times[run_name] = entry["real_time"] * scale
    return times


def main():
    parser = argparse.ArgumentParser(
        description="Compare google-benchmark JSON files.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed real_time growth fraction "
                             "(default: 0.25)")
    parser.add_argument("--filter", default="",
                        help="regex restricting compared benchmark names")
    args = parser.parse_args()

    base = load_times(args.baseline, args.filter)
    curr = load_times(args.current, args.filter)

    common = sorted(set(base) & set(curr))
    if not common:
        print("bench_compare: no common benchmarks to compare",
              file=sys.stderr)
        return 1

    regressions = []
    width = max(len(name) for name in common)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'current':>12}  delta")
    for name in common:
        delta = (curr[name] - base[name]) / base[name]
        marker = ""
        if delta > args.threshold:
            marker = "  REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  {base[name]:>10.0f}ns  "
              f"{curr[name]:>10.0f}ns  {delta:+7.1%}{marker}")

    for name in sorted(set(base) - set(curr)):
        print(f"note: only in baseline: {name}")
    for name in sorted(set(curr) - set(base)):
        print(f"note: only in current run: {name}")

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(common)} benchmarks within "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
