//===-- sim/SlotGenerator.h - Section 5 slot stream generator ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the ordered list of vacant slots used by the simulation
/// studies. The paper found it "more convenient to generate the ordered
/// list of available slots with preassigned set of features instead of
/// generating the whole distributed system model" (Section 5); this class
/// implements exactly that generator with the published parameter ranges
/// as defaults.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOTGENERATOR_H
#define ECOSCHED_SIM_SLOTGENERATOR_H

#include "sim/SlotList.h"
#include "support/Random.h"

namespace ecosched {

/// Parameters of the Section 5 slot stream; all values are drawn from
/// uniform distributions inside the configured intervals.
struct SlotGeneratorConfig {
  /// Number of slots in the ordered list: [120, 150].
  int MinSlotCount = 120;
  int MaxSlotCount = 150;
  /// Length of an individual slot: [50, 300].
  double MinLength = 50.0;
  double MaxLength = 300.0;
  /// Node performance range: [1, 3] ("relatively homogeneous").
  double MinPerformance = 1.0;
  double MaxPerformance = 3.0;
  /// Probability that a slot shares its start time with its predecessor
  /// (resources released in cluster domains): 0.4.
  double SameStartProbability = 0.4;
  /// Gap between neighboring distinct start times: [0, 10].
  double MinStartGap = 0.0;
  double MaxStartGap = 10.0;
  /// Price model: price = U(NoiseLo, NoiseHi) * PriceBase^Performance.
  /// The paper uses p = 1.7^performance with noise [0.75p, 1.25p].
  double PriceBase = 1.7;
  double PriceNoiseLo = 0.75;
  double PriceNoiseHi = 1.25;
};

/// Produces ordered vacant-slot lists. Every generated slot lives on its
/// own synthetic node (the generator models the flat list the
/// metascheduler receives, not a persistent machine room); node ids are
/// dense starting from 0.
class SlotGenerator {
public:
  explicit SlotGenerator(SlotGeneratorConfig Config = SlotGeneratorConfig())
      : Config(Config) {}

  /// Generates one slot list, consuming randomness from \p Rng.
  SlotList generate(RandomGenerator &Rng) const;

  const SlotGeneratorConfig &config() const { return Config; }

private:
  SlotGeneratorConfig Config;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOTGENERATOR_H
