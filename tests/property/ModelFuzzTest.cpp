//===-- tests/property/ModelFuzzTest.cpp - Reference-model fuzzing --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Randomized operation sequences checked against independent naive
/// reference models:
///  * SlotList insert/subtract vs a point-sampled coverage oracle;
///  * ComputingDomain occupancy/vacancy vs a boolean timeline;
///  * RunningStats vs two-pass recomputation over the raw sample.
///
//===----------------------------------------------------------------------===//

#include "sim/ComputingDomain.h"
#include "sim/SlotList.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace ecosched;

namespace {

/// True if any stored slot of \p List covers time \p T on \p NodeId.
bool listCovers(const SlotList &List, int NodeId, double T) {
  for (const Slot &S : List)
    if (S.NodeId == NodeId && S.Start <= T && T < S.End)
      return true;
  return false;
}

} // namespace

class ModelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelFuzzTest, SlotListMatchesCoverageOracle) {
  RandomGenerator Rng(GetParam());
  constexpr int Nodes = 4;
  constexpr double Horizon = 1000.0;

  // Reference model: per-node vacancy as a set of half-open intervals,
  // maintained with brute-force splitting.
  std::vector<std::vector<std::pair<double, double>>> Reference(Nodes);
  SlotList List;

  // Seed both models with disjoint per-node slots.
  for (int Node = 0; Node < Nodes; ++Node) {
    double Cursor = Rng.uniformReal(0.0, 50.0);
    while (Cursor < Horizon - 60.0) {
      const double Len = Rng.uniformReal(30.0, 150.0);
      const double End = std::min(Cursor + Len, Horizon);
      List.insert(Slot(Node, 1.0, 1.0, Cursor, End));
      Reference[static_cast<size_t>(Node)].push_back({Cursor, End});
      Cursor = End + Rng.uniformReal(5.0, 60.0);
    }
  }
  ASSERT_TRUE(List.checkInvariants());

  // Random subtraction attempts; mirror successful ones in the model.
  for (int Op = 0; Op < 200; ++Op) {
    const int Node = static_cast<int>(Rng.uniformInt(0, Nodes - 1));
    const double Start = Rng.uniformReal(0.0, Horizon);
    const double End = Start + Rng.uniformReal(1.0, 80.0);

    auto &Intervals = Reference[static_cast<size_t>(Node)];
    bool ModelContained = false;
    for (auto &I : Intervals)
      if (I.first <= Start + 1e-9 && End <= I.second + 1e-9) {
        ModelContained = true;
        const std::pair<double, double> Old = I;
        // Split the containing interval; drop empty pieces.
        I = {Old.first, Start};
        if (End < Old.second - 1e-9)
          Intervals.push_back({End, Old.second});
        break;
      }
    std::erase_if(Intervals, [](const std::pair<double, double> &I) {
      return I.second - I.first <= 1e-9;
    });

    const bool ListContained = List.subtract(Node, TimePoint(Start), TimePoint(End));
    ASSERT_EQ(ListContained, ModelContained)
        << "op " << Op << " node " << Node << " [" << Start << ", "
        << End << ")";
    ASSERT_TRUE(List.checkInvariants());
  }

  // Compare total vacancy and point-sampled coverage.
  double ModelSpan = 0.0;
  for (const auto &Intervals : Reference)
    for (const auto &I : Intervals)
      ModelSpan += I.second - I.first;
  EXPECT_NEAR(List.totalSpan(), ModelSpan, 1e-6);

  for (int Sample = 0; Sample < 500; ++Sample) {
    const int Node = static_cast<int>(Rng.uniformInt(0, Nodes - 1));
    const double T = Rng.uniformReal(0.0, Horizon);
    bool ModelCovered = false;
    for (const auto &I : Reference[static_cast<size_t>(Node)])
      ModelCovered |= I.first <= T && T < I.second;
    ASSERT_EQ(listCovers(List, Node, T), ModelCovered)
        << "node " << Node << " t=" << T;
  }
}

TEST_P(ModelFuzzTest, DomainVacancyMatchesBooleanTimeline) {
  RandomGenerator Rng(GetParam() + 100);
  constexpr double Horizon = 500.0;
  constexpr int Ticks = 500; // 1 time unit per tick.

  ComputingDomain Domain;
  const int Nodes = static_cast<int>(Rng.uniformInt(2, 5));
  std::vector<std::vector<bool>> Busy(
      static_cast<size_t>(Nodes),
      std::vector<bool>(static_cast<size_t>(Ticks), false));
  for (int N = 0; N < Nodes; ++N)
    Domain.addNode(Rng.uniformReal(1.0, 3.0), Rng.uniformReal(1.0, 5.0));

  // Random occupancy on integer boundaries (so tick sampling is exact).
  for (int Op = 0; Op < 60; ++Op) {
    const int Node = static_cast<int>(Rng.uniformInt(0, Nodes - 1));
    const double Start =
        static_cast<double>(Rng.uniformInt(0, Ticks - 2));
    const double End = Start + static_cast<double>(Rng.uniformInt(
                                   1, Ticks - static_cast<int64_t>(Start) -
                                          1));
    const bool External = Rng.bernoulli(0.5);
    const bool Accepted =
        External ? Domain.reserve(Node, TimePoint(Start), TimePoint(End), Op)
                 : Domain.addLocalTask(Node, TimePoint(Start), TimePoint(End), Op);

    auto &Track = Busy[static_cast<size_t>(Node)];
    bool Overlaps = false;
    for (int T = static_cast<int>(Start); T < static_cast<int>(End); ++T)
      Overlaps |= Track[static_cast<size_t>(T)];
    ASSERT_EQ(Accepted, !Overlaps) << "op " << Op;
    if (Accepted)
      for (int T = static_cast<int>(Start); T < static_cast<int>(End);
           ++T)
        Track[static_cast<size_t>(T)] = true;
  }

  // The published vacancy must be the exact complement of the timeline.
  const SlotList Slots = Domain.vacantSlots(TimePoint(0.0), TimePoint(Horizon));
  EXPECT_TRUE(Slots.checkInvariants());
  for (int N = 0; N < Nodes; ++N) {
    const auto &Track = Busy[static_cast<size_t>(N)];
    for (int T = 0; T < Ticks; ++T) {
      const bool Vacant = listCovers(Slots, N, T + 0.5);
      ASSERT_NE(Vacant, Track[static_cast<size_t>(T)])
          << "node " << N << " tick " << T;
    }
  }
}

TEST_P(ModelFuzzTest, RunningStatsMatchesTwoPassComputation) {
  RandomGenerator Rng(GetParam() + 200);
  std::vector<double> Sample;
  RunningStats Stats;
  const int N = static_cast<int>(Rng.uniformInt(2, 500));
  for (int I = 0; I < N; ++I) {
    const double X = Rng.uniformReal(-1000.0, 1000.0);
    Sample.push_back(X);
    Stats.add(X);
  }

  double Sum = 0.0;
  double Min = Sample[0], Max = Sample[0];
  for (const double X : Sample) {
    Sum += X;
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  const double Mean = Sum / N;
  double Var = 0.0;
  for (const double X : Sample)
    Var += (X - Mean) * (X - Mean);
  Var /= N - 1;

  EXPECT_EQ(Stats.count(), static_cast<size_t>(N));
  EXPECT_NEAR(Stats.mean(), Mean, 1e-9);
  EXPECT_NEAR(Stats.variance(), Var, 1e-6);
  EXPECT_DOUBLE_EQ(Stats.min(), Min);
  EXPECT_DOUBLE_EQ(Stats.max(), Max);
  EXPECT_NEAR(Stats.sum(), Sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));
