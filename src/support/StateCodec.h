//===-- support/StateCodec.h - Versioned engine-state codec --------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialization substrate of the crash-safe snapshot protocol
/// (docs/PERSISTENCE.md): a versioned, text-based record stream that
/// every stateful component writes itself into via saveState(Writer&)
/// and restores itself from via loadState(Reader&). Like sim/TraceIO,
/// the format is plain text with exact double round-trips (%.17g), so
/// snapshots can be archived, diffed, and replayed bit for bit across
/// machines.
///
/// Stream shape (version header, then records in write order):
///
///   ecosched-snapshot v1
///   section <name>
///   i <key> <int64>
///   u <key> <uint64>
///   b <key> <0|1>
///   d <key> <%.17g double>
///   s <key> <byte-count> <raw bytes>
///   blob <key> <byte-count>
///   <raw bytes>
///   end <name>
///
/// Strings and blobs are length-prefixed so arbitrary bytes (node names
/// with spaces, embedded trace text with newlines) transport verbatim.
/// Lines starting with '#' and blank lines between records are ignored.
///
/// The reader is strictly sequential: every read names the key it
/// expects, and any mismatch — unknown version, wrong record kind or
/// key, malformed number, truncated payload — sets a sticky diagnostic
/// and fails every subsequent read. Nothing in this file (or in any
/// loadState built on it) aborts on malformed input: corrupt snapshots
/// are rejected with an error message, never a contract check, which
/// fuzz/SnapshotFuzzer.cpp enforces byte by byte.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_STATECODEC_H
#define ECOSCHED_SUPPORT_STATECODEC_H

#include <cstdint>
#include <string>

namespace ecosched {

/// The snapshot format version this build writes and the only one it
/// reads. Bump on any incompatible record change; readers reject other
/// versions with a diagnostic (docs/PERSISTENCE.md's versioning policy).
inline constexpr int StateFormatVersion = 1;

/// Append-only writer of the snapshot record stream. Components write
/// their fields in a fixed order inside a named section; the matching
/// loadState reads them back in exactly that order.
class StateWriter {
public:
  /// Starts a stream with the version header.
  StateWriter();

  void beginSection(const char *Name);
  void endSection(const char *Name);

  void writeInt(const char *Key, int64_t Value);
  void writeUInt(const char *Key, uint64_t Value);
  void writeBool(const char *Key, bool Value);
  /// Exact round-trip via %.17g; infinities transport as "inf"/"-inf".
  void writeDouble(const char *Key, double Value);
  /// Length-prefixed; \p Value may hold any bytes, including newlines.
  void writeString(const char *Key, const std::string &Value);
  /// Length-prefixed multi-line payload (e.g. an embedded TraceIO
  /// rendering); \p Value may hold any bytes.
  void writeBlob(const char *Key, const std::string &Value);

  const std::string &text() const { return Out; }

private:
  std::string Out;
};

/// Strict sequential reader over a snapshot text. All reads return
/// false (leaving the out-parameter untouched) once an error is
/// recorded; the first diagnostic sticks and names the offending line.
class StateReader {
public:
  /// Parses the version header; an unknown or missing version is an
  /// immediate sticky error.
  explicit StateReader(const std::string &Text);

  bool ok() const { return ErrorText.empty(); }
  const std::string &error() const { return ErrorText; }

  /// Records a semantic validation failure (out-of-domain field,
  /// digest mismatch, ...) from a component loadState. Sticky like any
  /// parse error; keeps the first message.
  void fail(const std::string &Message);

  bool beginSection(const char *Name);
  bool endSection(const char *Name);

  bool readInt(const char *Key, int64_t &Value);
  bool readUInt(const char *Key, uint64_t &Value);
  bool readBool(const char *Key, bool &Value);
  /// Accepts any strtod-parsable value except NaN (a NaN field can
  /// never compare equal on resume, so it is malformed by definition).
  bool readDouble(const char *Key, double &Value);
  bool readString(const char *Key, std::string &Value);
  bool readBlob(const char *Key, std::string &Value);

  /// True when only skippable content (blanks, comments) remains.
  bool atEnd();

private:
  bool expectRecord(const char *Kind, const char *Key);
  bool readLengthPrefixed(const char *Kind, const char *Key,
                          std::string &Value);
  void skipInterRecord();
  bool readToken(std::string &Token);
  bool finishLine();
  size_t lineNumber() const;

  const std::string &Text;
  size_t Pos = 0;
  std::string ErrorText;
};

/// Accumulating FNV-1a (64-bit) digest over field bit patterns. The
/// snapshot format stores digests of rebuilt-on-load derived state
/// (persistent-filter views) so a loader can prove its reconstruction
/// matches what the writer held without the derived state ever entering
/// the format.
class StateDigest {
public:
  void addBytes(const void *Data, size_t Size);
  void addUInt(uint64_t Value);
  void addInt(int64_t Value);
  /// Hashes the IEEE-754 bit pattern, so -0.0 and 0.0 differ and every
  /// distinct double is a distinct input.
  void addDouble(double Value);

  uint64_t value() const { return Hash; }

private:
  uint64_t Hash = 1469598103934665603ULL;
};

/// \name Snapshot file I/O
/// The only file-writing surface of the snapshot protocol: everything
/// in src/ that persists a snapshot goes through these two calls (the
/// archlint file-io rule pins all other src/ file I/O to sim/TraceIO).
/// @{

/// Writes \p Text to \p Path. \returns false on I/O failure, filling
/// \p Error when provided.
bool writeStateFile(const std::string &Text, const std::string &Path,
                    std::string *Error = nullptr);

/// Reads all of \p Path into \p Text. \returns false on I/O failure.
bool readStateFile(const std::string &Path, std::string &Text,
                   std::string *Error = nullptr);

/// Creates \p Path and any missing parents (mkdir -p semantics); an
/// existing directory is success. Snapshot directories (MultiVoDriver
/// per-tenant layout, scheduler_cli --snapshot-out) go through this.
bool ensureDirectory(const std::string &Path, std::string *Error = nullptr);

/// @}

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_STATECODEC_H
