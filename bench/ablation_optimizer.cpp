//===-- bench/ablation_optimizer.cpp - DP vs greedy vs exact --------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E10 (DESIGN.md): quality of the combination-selection
/// stage. On identical per-iteration alternative sets (AMP search over
/// the Section 5 workload), compares the paper's discretized backward-
/// run DP against exact branch-and-bound and a greedy swap heuristic:
/// objective gap to the exact optimum and solve time.
///
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BruteForceOptimizer.h"
#include "core/DpOptimizer.h"
#include "core/GreedyOptimizer.h"
#include "core/Limits.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>

using namespace ecosched;

namespace {

struct OptimizerScore {
  RunningStats GapPercent; // Objective gap to the exact optimum.
  RunningStats SolveUs;
  size_t Solved = 0;
  size_t Missed = 0; // Exact found a combination, this optimizer not.
};

/// Budget tightenings: 1.0 is the paper's B*; smaller fractions turn
/// the selection into a real knapsack and separate the optimizers.
constexpr double BudgetFractions[] = {1.0, 0.9, 0.8};
constexpr size_t FractionCount = 3;

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_optimizer",
                 "combination stage: DP vs greedy vs exact");
  const int64_t &Iterations =
      Args.addInt("iterations", 300, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Ablation: combination optimizers on identical alternative "
              "sets (time minimization)\n");
  std::printf("========================================================="
              "===============\n\n");

  RandomGenerator Master(static_cast<uint64_t>(Seed));
  SlotGenerator Slots;
  JobGenerator Jobs;
  AmpSearch Amp;
  BruteForceOptimizer Exact;
  const DpOptimizer DpFine(8192);
  const DpOptimizer DpCoarse(256);
  const GreedyOptimizer Greedy;

  const CombinationOptimizer *Contenders[] = {&DpFine, &DpCoarse,
                                              &Greedy};
  const char *Names[] = {"dp (8192 bins)", "dp (256 bins)", "greedy"};
  OptimizerScore Scores[FractionCount][3];
  RunningStats ExactUs;
  size_t Problems[FractionCount] = {};

  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    RandomGenerator Rng = Master.fork();
    const SlotList SlotsNow = Slots.generate(Rng);
    const Batch BatchNow = Jobs.generate(Rng);

    // Cap the alternatives per job to keep the exact oracle tractable
    // on every instance.
    AlternativeSearch::Config SearchCfg;
    SearchCfg.MaxAlternativesPerJob = 16;
    const AlternativeSet Alts =
        AlternativeSearch(Amp, SearchCfg).run(SlotsNow, BatchNow);
    if (!Alts.allCovered())
      continue;
    const auto Values = toAlternativeValues(Alts);
    const double Quota = computeTimeQuota(Values);
    const double Budget = computeVoBudget(Values, Duration(Quota), Exact);
    if (Budget < 0.0)
      continue;

    for (size_t F = 0; F < FractionCount; ++F) {
      CombinationProblem P;
      P.PerJob = Values;
      P.Objective = MeasureKind::Time;
      P.Direction = DirectionKind::Minimize;
      P.Constraint = MeasureKind::Cost;
      P.Limit = Budget * BudgetFractions[F];

      const auto T0 = std::chrono::steady_clock::now();
      const CombinationChoice Want = Exact.solve(P);
      const auto T1 = std::chrono::steady_clock::now();
      if (!Want.Feasible)
        continue;
      ++Problems[F];
      if (F == 0)
        ExactUs.add(
            std::chrono::duration<double, std::micro>(T1 - T0).count());

      for (int C = 0; C < 3; ++C) {
        const auto S0 = std::chrono::steady_clock::now();
        const CombinationChoice Got = Contenders[C]->solve(P);
        const auto S1 = std::chrono::steady_clock::now();
        Scores[F][C].SolveUs.add(
            std::chrono::duration<double, std::micro>(S1 - S0).count());
        if (!Got.Feasible) {
          ++Scores[F][C].Missed;
          continue;
        }
        ++Scores[F][C].Solved;
        Scores[F][C].GapPercent.add(
            100.0 * (Got.ObjectiveTotal - Want.ObjectiveTotal) /
            Want.ObjectiveTotal);
      }
    }
  }

  std::printf("%zu / %zu / %zu combination problems feasible at budget "
              "fractions 1.0 / 0.9 / 0.8 (exact solve avg %.1f us)\n\n",
              Problems[0], Problems[1], Problems[2], ExactUs.mean());
  TablePrinter Table;
  Table.addColumn("budget", TablePrinter::AlignKind::Left);
  Table.addColumn("optimizer", TablePrinter::AlignKind::Left);
  Table.addColumn("solved");
  Table.addColumn("missed");
  Table.addColumn("avg gap %");
  Table.addColumn("max gap %");
  Table.addColumn("avg us");

  for (size_t F = 0; F < FractionCount; ++F) {
    char BudgetText[32];
    std::snprintf(BudgetText, sizeof(BudgetText), "%.1f x B*",
                  BudgetFractions[F]);
    for (int C = 0; C < 3; ++C) {
      Table.beginRow();
      Table.addCell(std::string(BudgetText));
      Table.addCell(std::string(Names[C]));
      Table.addCell(static_cast<long long>(Scores[F][C].Solved));
      Table.addCell(static_cast<long long>(Scores[F][C].Missed));
      Table.addCell(Scores[F][C].GapPercent.mean(), 3);
      Table.addCell(Scores[F][C].GapPercent.max(), 3);
      Table.addCell(Scores[F][C].SolveUs.mean(), 1);
    }
  }
  Table.print(stdout);

  std::printf("\nreading: at the paper's own budget B* the selection is "
              "easy and every optimizer is exact; tightening the budget "
              "turns it into a real knapsack where the DP stays "
              "near-exact (grid-dependent) while greedy leaves batch "
              "time on the table.\n");
  return 0;
}
