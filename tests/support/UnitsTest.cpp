//===-- tests/support/UnitsTest.cpp - Unit-tagged quantity tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Units.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <type_traits>

using namespace ecosched;

// The zero-cost claim, statically: same representation as double,
// trivially copyable (StateCodec/memcpy-compatible), and not
// implicitly constructible from a bare number.
static_assert(sizeof(TimePoint) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Money>);
static_assert(!std::is_convertible_v<double, TimePoint>,
              "raw doubles must be tagged explicitly at the boundary");
static_assert(!std::is_convertible_v<double, Price>,
              "raw doubles must be tagged explicitly at the boundary");

// Dimension algebra: only physically meaningful expressions compile.
// (The negative cases — TimePoint + TimePoint, Money + Duration — are
// compile errors by construction; what's checkable here is that the
// sanctioned operations produce the right type and the same bits.)
TEST(UnitsTest, DimensionPreservingArithmetic) {
  const TimePoint Start(100.0);
  const TimePoint End(160.0);
  const Duration Span = End - Start;
  static_assert(std::is_same_v<decltype(End - Start), Duration>);
  EXPECT_DOUBLE_EQ(Span.value(), 60.0);

  static_assert(std::is_same_v<decltype(Start + Span), TimePoint>);
  EXPECT_DOUBLE_EQ((Start + Span).value(), End.value());
  EXPECT_DOUBLE_EQ((End - Span).value(), Start.value());

  const Price Rate(1.5);
  static_assert(std::is_same_v<decltype(Rate * Span), Money>);
  EXPECT_DOUBLE_EQ((Rate * Span).value(), 90.0);
  EXPECT_DOUBLE_EQ((Span * Rate).value(), 90.0);

  const Money Cost = Rate * Span;
  static_assert(std::is_same_v<decltype(Cost / Span), Price>);
  EXPECT_DOUBLE_EQ((Cost / Span).value(), 1.5);

  // Ratios of like quantities are dimensionless.
  static_assert(std::is_same_v<decltype(Span / Duration(30.0)), double>);
  EXPECT_DOUBLE_EQ(Span / Duration(30.0), 2.0);
  EXPECT_DOUBLE_EQ(Cost / Money(45.0), 2.0);
  EXPECT_DOUBLE_EQ(Rate / Price(0.5), 3.0);

  // Scaling stays within the dimension.
  EXPECT_DOUBLE_EQ((2.0 * Span).value(), 120.0);
  EXPECT_DOUBLE_EQ((Cost / 3.0).value(), 30.0);
  EXPECT_DOUBLE_EQ((-Cost).value(), -90.0);
}

// Arithmetic forwards to the identical double expression — the
// bitwise-free adoption guarantee, spot-checked on a value where
// floating point rounding is visible.
TEST(UnitsTest, ArithmeticIsBitwiseIdenticalToRawDoubles) {
  const double A = 0.1;
  const double B = 0.2;
  EXPECT_EQ((TimePoint(A) + Duration(B)).value(), A + B);
  EXPECT_EQ((Duration(A) + Duration(B)).value(), A + B);
  EXPECT_EQ((Price(A) * Duration(B)).value(), A * B);
}

// Tolerant comparisons: the deleted relational operators route every
// boundary decision through these, so their semantics at the epsilon
// edge are contract.
TEST(UnitsTest, ApproxComparisonsHonorTheTolerance) {
  const TimePoint T(100.0);
  const TimePoint Within(100.0 + TimeEpsilon / 2);
  const TimePoint Beyond(100.0 + 10 * TimeEpsilon);

  EXPECT_TRUE(approxEq(T, Within));
  EXPECT_FALSE(approxEq(T, Beyond));

  // A sub-epsilon excess is not "greater"; a real excess is.
  EXPECT_TRUE(approxLe(Within, T));
  EXPECT_FALSE(approxGt(Within, T));
  EXPECT_TRUE(approxGt(Beyond, T));
  EXPECT_FALSE(approxLt(T, Within));
  EXPECT_TRUE(approxLt(T, Beyond));
  EXPECT_TRUE(approxGe(T, Within));

  // The dimension check is compile-time: approxEq(TimePoint, Money)
  // does not compile. A custom epsilon threads through.
  EXPECT_TRUE(approxEq(Money(1.0), Money(1.05), /*Eps=*/0.1));
}

// Exact escapes: strict weak ordering for sort keys, identity for
// round-trip checks — the two places tolerance would be wrong.
TEST(UnitsTest, ExactEscapesAreExact) {
  const TimePoint T(100.0);
  const TimePoint Within(100.0 + TimeEpsilon / 2);

  // approx sees one instant; exact sees two distinct keys.
  EXPECT_TRUE(approxEq(T, Within));
  EXPECT_FALSE(exactEq(T, Within));
  EXPECT_TRUE(exactLess(T, Within));
  EXPECT_FALSE(exactLess(Within, T));
  EXPECT_FALSE(exactLess(T, T));
  EXPECT_TRUE(exactEq(T, T));
}

TEST(UnitsTest, DefaultConstructionIsZeroAndFiniteChecks) {
  EXPECT_DOUBLE_EQ(TimePoint().value(), 0.0);
  EXPECT_TRUE(Duration(1.0).isFinite());
  EXPECT_FALSE(TimePoint(std::numeric_limits<double>::infinity()).isFinite());
  EXPECT_FALSE(Money(std::numeric_limits<double>::quiet_NaN()).isFinite());
}

// Quantities stream as their raw value, so contract-violation messages
// (support/Check.h) can format them directly.
TEST(UnitsTest, StreamsAsRawValue) {
  std::ostringstream OS;
  OS << TimePoint(12.5) << ' ' << Money(-3.0);
  EXPECT_EQ(OS.str(), "12.5 -3");
}
