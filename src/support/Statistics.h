//===-- support/Statistics.h - Streaming statistics helpers ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming statistics used by the experiment harness to aggregate the
/// per-job execution time/cost measures reported in Section 5 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_STATISTICS_H
#define ECOSCHED_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace ecosched {

/// Numerically stable streaming accumulator (Welford) for count, mean,
/// variance, and extrema of a sample.
class RunningStats {
public:
  /// Adds one observation.
  void add(double X);

  /// Merges another accumulator into this one (parallel-combine rule).
  void merge(const RunningStats &Other);

  /// Number of observations so far.
  size_t count() const { return N; }

  /// Sample mean; 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation; 0 when empty.
  double min() const { return N ? Min : 0.0; }

  /// Largest observation; 0 when empty.
  double max() const { return N ? Max : 0.0; }

  /// Sum of all observations, carried explicitly with Neumaier
  /// compensation rather than reconstructed as mean() * count(): the
  /// reconstruction compounds Welford rounding error over long series
  /// (the paper's runs are 25000 iterations).
  double sum() const { return Sum + SumComp; }

private:
  void addToSum(double X);

  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  double Sum = 0.0;
  /// Neumaier compensation term for Sum (accumulated low-order bits).
  double SumComp = 0.0;
};

/// Fixed-width histogram over [Lo, Hi); out-of-range samples are clamped
/// into the first/last bucket. Supports approximate quantiles.
class Histogram {
public:
  /// Creates a histogram with \p BucketCount equal buckets covering
  /// [\p Lo, \p Hi). Requires Lo < Hi and BucketCount > 0.
  Histogram(double Lo, double Hi, size_t BucketCount);

  /// Adds one observation.
  void add(double X);

  /// Total number of observations.
  size_t count() const { return Total; }

  /// Number of observations in bucket \p Index.
  size_t bucketCount(size_t Index) const { return Buckets[Index]; }

  /// Number of buckets.
  size_t bucketCountTotal() const { return Buckets.size(); }

  /// Inclusive lower edge of bucket \p Index.
  double bucketLo(size_t Index) const;

  /// Exclusive upper edge of bucket \p Index.
  double bucketHi(size_t Index) const { return bucketLo(Index + 1); }

  /// Approximate \p Q quantile (Q in [0, 1]), linearly interpolated
  /// within the containing bucket; 0 when empty.
  double quantile(double Q) const;

private:
  double Lo;
  double Hi;
  std::vector<size_t> Buckets;
  size_t Total = 0;
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_STATISTICS_H
