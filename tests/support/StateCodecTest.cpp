//===-- tests/support/StateCodecTest.cpp - Snapshot codec tests -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The StateCodec contract (docs/PERSISTENCE.md): every scalar written
/// comes back bitwise-identical — including sub-epsilon slivers, ±huge
/// magnitudes, -0.0, denormals, and infinities — while malformed input
/// of any shape is rejected with a sticky diagnostic, never an abort.
///
//===----------------------------------------------------------------------===//

#include "support/StateCodec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

using namespace ecosched;

namespace {

TEST(StateCodecTest, ScalarRoundTrip) {
  StateWriter W;
  W.beginSection("s");
  W.writeInt("imin", std::numeric_limits<int64_t>::min());
  W.writeInt("imax", std::numeric_limits<int64_t>::max());
  W.writeUInt("umax", std::numeric_limits<uint64_t>::max());
  W.writeBool("yes", true);
  W.writeBool("no", false);
  W.endSection("s");

  StateReader R(W.text());
  int64_t I = 0;
  uint64_t U = 0;
  bool B = false;
  ASSERT_TRUE(R.beginSection("s"));
  ASSERT_TRUE(R.readInt("imin", I));
  EXPECT_EQ(I, std::numeric_limits<int64_t>::min());
  ASSERT_TRUE(R.readInt("imax", I));
  EXPECT_EQ(I, std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(R.readUInt("umax", U));
  EXPECT_EQ(U, std::numeric_limits<uint64_t>::max());
  ASSERT_TRUE(R.readBool("yes", B));
  EXPECT_TRUE(B);
  ASSERT_TRUE(R.readBool("no", B));
  EXPECT_FALSE(B);
  ASSERT_TRUE(R.endSection("s"));
  ASSERT_TRUE(R.atEnd());
  EXPECT_TRUE(R.ok());
}

TEST(StateCodecTest, DoubleRoundTripIsExact) {
  // The values the snapshot format must carry bit for bit: sub-epsilon
  // slivers (a SlotList can legitimately store spans smaller than the
  // 1e-9 time epsilon), huge magnitudes, denormals, negative zero, and
  // the infinities (a Job's default deadline is +inf).
  const double Values[] = {
      0.0,
      -0.0,
      1.0,
      1.0 + std::numeric_limits<double>::epsilon(),
      1e-12,
      -3.5e-13,
      1e300,
      -1e300,
      5e-324, // Smallest denormal.
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      0.1, // Not exactly representable; %.17g must still round-trip it.
      1.0 / 3.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  StateWriter W;
  for (const double V : Values)
    W.writeDouble("v", V);
  StateReader R(W.text());
  for (const double V : Values) {
    double Got = 42.0;
    ASSERT_TRUE(R.readDouble("v", Got)) << R.error();
    // Bit-pattern comparison so -0.0 vs 0.0 cannot slip through ==.
    EXPECT_EQ(std::signbit(Got), std::signbit(V));
    if (std::isinf(V))
      EXPECT_EQ(Got, V);
    else
      EXPECT_EQ(Got, V);
  }
  ASSERT_TRUE(R.atEnd());
}

TEST(StateCodecTest, NanIsRejectedOnRead) {
  // A NaN field can never compare equal on resume, so the reader treats
  // it as malformed even though %.17g would happily print it.
  StateWriter W;
  W.writeDouble("v", std::numeric_limits<double>::quiet_NaN());
  StateReader R(W.text());
  double Got = 0.0;
  EXPECT_FALSE(R.readDouble("v", Got));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("v"), std::string::npos);
}

TEST(StateCodecTest, StringRoundTripCarriesArbitraryBytes) {
  const std::string Values[] = {
      "",
      "plain",
      "with spaces and\ttabs",
      "embedded\nnewline",
      std::string("nul\0byte", 8),
      "# not a comment",
      "end section trailer",
  };
  StateWriter W;
  for (const std::string &V : Values)
    W.writeString("s", V);
  W.writeBlob("b", "line one\nline two\n# not a comment\n");
  StateReader R(W.text());
  for (const std::string &V : Values) {
    std::string Got;
    ASSERT_TRUE(R.readString("s", Got)) << R.error();
    EXPECT_EQ(Got, V);
  }
  std::string Blob;
  ASSERT_TRUE(R.readBlob("b", Blob));
  EXPECT_EQ(Blob, "line one\nline two\n# not a comment\n");
  ASSERT_TRUE(R.atEnd());
}

TEST(StateCodecTest, MissingHeaderIsRejected) {
  StateReader R("i key 1\n");
  EXPECT_FALSE(R.ok());
  int64_t V = 0;
  EXPECT_FALSE(R.readInt("key", V));
}

TEST(StateCodecTest, FutureVersionIsRejected) {
  StateReader R("ecosched-snapshot v2\ni key 1\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("version"), std::string::npos);
}

TEST(StateCodecTest, EmptyAndGarbageInputsAreRejected) {
  for (const char *Text : {"", "garbage", "ecosched-snapshot",
                           "ecosched-snapshot v1 trailing\n"}) {
    StateReader R{std::string(Text)};
    EXPECT_FALSE(R.ok()) << "input: " << Text;
  }
}

TEST(StateCodecTest, WrongKindOrKeyIsRejected) {
  StateWriter W;
  W.writeInt("count", 3);
  {
    StateReader R(W.text());
    uint64_t U = 0;
    EXPECT_FALSE(R.readUInt("count", U)); // Kind mismatch: i vs u.
    EXPECT_FALSE(R.ok());
  }
  {
    StateReader R(W.text());
    int64_t I = 0;
    EXPECT_FALSE(R.readInt("total", I)); // Key mismatch.
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.error().find("total"), std::string::npos);
  }
}

TEST(StateCodecTest, ErrorsAreStickyAndKeepTheFirstMessage) {
  StateWriter W;
  W.writeInt("a", 1);
  W.writeInt("b", 2);
  StateReader R(W.text());
  int64_t V = 0;
  ASSERT_FALSE(R.readInt("wrong", V));
  const std::string First = R.error();
  // Even a read that would have matched now fails, and the diagnostic
  // does not churn.
  EXPECT_FALSE(R.readInt("a", V));
  EXPECT_EQ(R.error(), First);
  R.fail("later semantic failure");
  EXPECT_EQ(R.error(), First);
  EXPECT_FALSE(R.atEnd());
}

TEST(StateCodecTest, SemanticFailSetsDiagnosticWithLineNumber) {
  StateWriter W;
  W.writeInt("a", 1);
  StateReader R(W.text());
  int64_t V = 0;
  ASSERT_TRUE(R.readInt("a", V));
  R.fail("value out of domain");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("value out of domain"), std::string::npos);
  EXPECT_NE(R.error().find("line"), std::string::npos);
}

TEST(StateCodecTest, TruncatedPayloadsAreRejectedWithoutAllocating) {
  // A hostile byte count far beyond the remaining text must fail
  // cleanly (the reader bounds the count before allocating).
  StateReader R("ecosched-snapshot v1\ns key 18446744073709551615 x\n");
  std::string Got;
  EXPECT_FALSE(R.readString("key", Got));
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("truncated"), std::string::npos);
}

TEST(StateCodecTest, TruncatedStreamsAreRejected) {
  StateWriter W;
  W.beginSection("s");
  W.writeUInt("n", 7);
  W.writeBlob("payload", "0123456789");
  W.endSection("s");
  const std::string Full = W.text();
  // Every strict prefix must fail somewhere — never crash, never
  // accept the whole protocol.
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    const std::string Prefix = Full.substr(0, Cut);
    StateReader R(Prefix);
    uint64_t N = 0;
    std::string Blob;
    const bool Accepted = R.ok() && R.beginSection("s") &&
                          R.readUInt("n", N) &&
                          R.readBlob("payload", Blob) &&
                          R.endSection("s") && R.atEnd();
    EXPECT_FALSE(Accepted) << "prefix of " << Cut << " bytes accepted";
  }
}

TEST(StateCodecTest, SkipsCommentsAndBlankLinesBetweenRecords) {
  const std::string Text = "ecosched-snapshot v1\n"
                           "# a comment\n"
                           "\n"
                           "i key 5\n"
                           "   \n"
                           "# trailing comment\n";
  StateReader R(Text);
  int64_t V = 0;
  ASSERT_TRUE(R.readInt("key", V));
  EXPECT_EQ(V, 5);
  EXPECT_TRUE(R.atEnd());
}

TEST(StateCodecTest, NonCanonicalNumbersStillParse) {
  // The reader accepts any strtod/strtoll-parsable token; canonicality
  // is enforced by the component loaders, not the codec.
  const std::string Text = "ecosched-snapshot v1\n"
                           "d x 1.0\n"
                           "i y 007\n";
  StateReader R(Text);
  double D = 0.0;
  int64_t I = 0;
  ASSERT_TRUE(R.readDouble("x", D));
  EXPECT_EQ(D, 1.0);
  ASSERT_TRUE(R.readInt("y", I));
  EXPECT_EQ(I, 7);
}

TEST(StateCodecTest, MalformedNumbersAreRejected) {
  const char *Bad[] = {
      "ecosched-snapshot v1\nd x nan\n",
      "ecosched-snapshot v1\nd x 1.0x\n",
      "ecosched-snapshot v1\ni y 12abc\n",
      "ecosched-snapshot v1\nu z -1\n",
      "ecosched-snapshot v1\nu z +1\n",
      "ecosched-snapshot v1\nb w 2\n",
      "ecosched-snapshot v1\nb w true\n",
  };
  for (const char *Text : Bad) {
    StateReader R{std::string(Text)};
    double D = 0.0;
    int64_t I = 0;
    uint64_t U = 0;
    bool B = false;
    EXPECT_FALSE(R.readDouble("x", D) || R.readInt("y", I) ||
                 R.readUInt("z", U) || R.readBool("w", B))
        << "accepted: " << Text;
    EXPECT_FALSE(R.ok());
  }
}

TEST(StateCodecTest, DigestSeparatesBitPatterns) {
  StateDigest A, B;
  A.addDouble(0.0);
  B.addDouble(-0.0);
  EXPECT_NE(A.value(), B.value()); // Sign bit matters.

  StateDigest C, D;
  C.addUInt(1);
  C.addUInt(2);
  D.addUInt(2);
  D.addUInt(1);
  EXPECT_NE(C.value(), D.value()); // Order matters.

  StateDigest E, F;
  E.addInt(-1);
  F.addInt(-1);
  EXPECT_EQ(E.value(), F.value()); // Deterministic.
}

TEST(StateCodecTest, FileHelpersRoundTrip) {
  char Template[] = "/tmp/ecosched-statecodec-XXXXXX";
  ASSERT_NE(::mkdtemp(Template), nullptr);
  const std::string Dir = Template;

  const std::string Nested = Dir + "/a/b/c";
  ASSERT_TRUE(ensureDirectory(Nested));
  ASSERT_TRUE(ensureDirectory(Nested)); // Existing directory is success.

  const std::string Path = Nested + "/state.snap";
  StateWriter W;
  W.writeDouble("pi", 3.14159265358979312);
  std::string Error;
  ASSERT_TRUE(writeStateFile(W.text(), Path, &Error)) << Error;
  std::string Back;
  ASSERT_TRUE(readStateFile(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, W.text());

  std::string Missing;
  EXPECT_FALSE(readStateFile(Dir + "/does-not-exist", Missing, &Error));
  EXPECT_FALSE(Error.empty());

  // Cleanup (best effort).
  std::remove(Path.c_str());
}

} // namespace
