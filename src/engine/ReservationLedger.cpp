//===-- engine/ReservationLedger.cpp - Reservation bookkeeping ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/ReservationLedger.h"

#include "sim/TraceIO.h"
#include "support/Check.h"
#include "support/StateCodec.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ecosched;

void ReservationLedger::commit(ComputingDomain &D, const ScheduledJob &S,
                               const Job &Spec, int Attempts) {
  const bool Ok = D.reserveWindow(S.W, S.JobId);
  ECOSCHED_CHECK(Ok,
                 "scheduled window for job {} starting at {} conflicts "
                 "with domain occupancy",
                 S.JobId, S.W.startTime());
  RunningJob R;
  R.JobId = S.JobId;
  R.StartTime = S.W.startTime().value();
  R.EndTime = S.W.endTime().value();
  R.Cost = S.W.totalCost().value();
  R.Attempts = Attempts;
  R.Spec = Spec;
  for (const WindowSlot &M : S.W)
    R.Nodes.push_back(M.Source.NodeId);
  Running.push_back(std::move(R));
}

void ReservationLedger::retireFinished(TimePoint Now) {
  const double Cut = Now.value();
  for (const RunningJob &R : Running) {
    if (approxGt(R.EndTime, Cut))
      continue;
    Completed.push_back({R.JobId, R.StartTime, R.EndTime, R.Cost,
                         R.Attempts});
  }
  std::erase_if(Running, [Cut](const RunningJob &R) {
    return approxLe(R.EndTime, Cut);
  });
}

bool ReservationLedger::release(ComputingDomain &D, int JobId) {
  const auto It = std::find_if(
      Running.begin(), Running.end(),
      [JobId](const RunningJob &R) { return R.JobId == JobId; });
  if (It == Running.end())
    return false;
  D.releaseExternalJob(JobId);
  // A reservation that has not started (or only partially elapsed) must
  // vanish completely; leftovers on failed nodes were wiped at failure
  // time, so the in-service count is exact.
  ECOSCHED_CHECK(D.externalReservationCount(JobId) == 0,
                 "released job {} still holds reservations in the domain",
                 JobId);
  Running.erase(It);
  return true;
}

std::vector<ReservationLedger::RequeuedJob>
ReservationLedger::cancelOnNode(ComputingDomain &D, int NodeId,
                                TimePoint Now) {
  const size_t RunningBefore = Running.size();
  const std::vector<int> Cancelled = D.failNode(NodeId, Now);

  // Requeue every affected job that is still running; reservations on
  // the healthy nodes of a cancelled window are released as well so the
  // job can be rescheduled as a whole.
  std::vector<RequeuedJob> Requeued;
  for (const int JobId : Cancelled) {
    const auto It = std::find_if(
        Running.begin(), Running.end(),
        [JobId](const RunningJob &R) { return R.JobId == JobId; });
    if (It == Running.end())
      continue; // Already finished bookkeeping-wise.
    D.releaseExternalJob(JobId);
    ECOSCHED_CHECK(D.externalReservationCount(JobId) == 0,
                   "failure-cancelled job {} still holds reservations on "
                   "in-service nodes",
                   JobId);
    Requeued.push_back({It->Spec, It->Attempts});
    Running.erase(It);
  }
  // A failed node without reservations must leave the ledger untouched;
  // in general the running set shrinks by exactly the requeued jobs.
  ECOSCHED_CHECK(Running.size() + Requeued.size() == RunningBefore,
                 "failure of node {} requeued {} jobs but the running set "
                 "shrank from {} to {}",
                 NodeId, Requeued.size(), RunningBefore, Running.size());
  return Requeued;
}

bool ReservationLedger::isRunning(int JobId) const {
  return std::any_of(Running.begin(), Running.end(),
                     [JobId](const RunningJob &R) {
                       return R.JobId == JobId;
                     });
}

Money ReservationLedger::totalIncome() const {
  double Income = 0.0;
  for (const CompletedJob &C : Completed)
    Income += C.Cost;
  return Money(Income);
}

namespace {

/// Shared record shape of RunningJob's and CompletedJob's accounting
/// head: (job id, start, end, cost, attempts).
void saveAccountingHead(StateWriter &W, int JobId, double StartTime,
                        double EndTime, double Cost, int Attempts) {
  W.writeInt("job", JobId);
  W.writeDouble("start", StartTime);
  W.writeDouble("end", EndTime);
  W.writeDouble("cost", Cost);
  W.writeInt("attempts", Attempts);
}

bool loadAccountingHead(StateReader &R, int &JobId, double &StartTime,
                        double &EndTime, double &Cost, int &Attempts) {
  int64_t Job = 0, AttemptCount = 0;
  double Start = 0.0, End = 0.0, JobCost = 0.0;
  if (!R.readInt("job", Job) || !R.readDouble("start", Start) ||
      !R.readDouble("end", End) || !R.readDouble("cost", JobCost) ||
      !R.readInt("attempts", AttemptCount))
    return false;
  if (Job < std::numeric_limits<int>::min() ||
      Job > std::numeric_limits<int>::max()) {
    R.fail("ledger: job id out of range");
    return false;
  }
  if (!std::isfinite(Start) || !std::isfinite(End) ||
      !std::isfinite(JobCost)) {
    R.fail("ledger: times and cost must be finite");
    return false;
  }
  if (AttemptCount < 0 || AttemptCount > std::numeric_limits<int>::max()) {
    R.fail("ledger: attempt counter out of range");
    return false;
  }
  JobId = static_cast<int>(Job);
  StartTime = Start;
  EndTime = End;
  Cost = JobCost;
  Attempts = static_cast<int>(AttemptCount);
  return true;
}

} // namespace

void ReservationLedger::saveState(StateWriter &W) const {
  W.beginSection("ledger");
  W.writeUInt("running", Running.size());
  for (const RunningJob &R : Running) {
    W.beginSection("running-job");
    saveAccountingHead(W, R.JobId, R.StartTime, R.EndTime, R.Cost,
                       R.Attempts);
    saveJobState(W, R.Spec);
    W.writeUInt("nodes", R.Nodes.size());
    for (const int Node : R.Nodes)
      W.writeInt("node", Node);
    W.endSection("running-job");
  }
  W.writeUInt("completed", Completed.size());
  for (const CompletedJob &C : Completed) {
    W.beginSection("completed-job");
    saveAccountingHead(W, C.JobId, C.StartTime, C.EndTime, C.Cost,
                       C.Attempts);
    W.endSection("completed-job");
  }
  W.endSection("ledger");
}

bool ReservationLedger::loadState(StateReader &R) {
  uint64_t RunningCount = 0;
  if (!R.beginSection("ledger") || !R.readUInt("running", RunningCount))
    return false;
  std::vector<RunningJob> LoadedRunning;
  for (uint64_t I = 0; I < RunningCount; ++I) {
    RunningJob Entry;
    if (!R.beginSection("running-job") ||
        !loadAccountingHead(R, Entry.JobId, Entry.StartTime, Entry.EndTime,
                            Entry.Cost, Entry.Attempts) ||
        !loadJobState(R, Entry.Spec))
      return false;
    uint64_t NodeCount = 0;
    if (!R.readUInt("nodes", NodeCount))
      return false;
    for (uint64_t N = 0; N < NodeCount; ++N) {
      int64_t Node = 0;
      if (!R.readInt("node", Node))
        return false;
      if (Node < 0 || Node > std::numeric_limits<int>::max()) {
        R.fail("ledger: reservation node id out of range");
        return false;
      }
      Entry.Nodes.push_back(static_cast<int>(Node));
    }
    if (!R.endSection("running-job"))
      return false;
    LoadedRunning.push_back(std::move(Entry));
  }
  uint64_t CompletedCount = 0;
  if (!R.readUInt("completed", CompletedCount))
    return false;
  std::vector<CompletedJob> LoadedCompleted;
  for (uint64_t I = 0; I < CompletedCount; ++I) {
    CompletedJob Entry;
    if (!R.beginSection("completed-job") ||
        !loadAccountingHead(R, Entry.JobId, Entry.StartTime, Entry.EndTime,
                            Entry.Cost, Entry.Attempts) ||
        !R.endSection("completed-job"))
      return false;
    LoadedCompleted.push_back(Entry);
  }
  if (!R.endSection("ledger"))
    return false;
  Running = std::move(LoadedRunning);
  Completed = std::move(LoadedCompleted);
  return true;
}
