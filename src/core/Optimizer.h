//===-- core/Optimizer.h - Combination optimization interface ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second phase of the scheduling scheme: choose one alternative per
/// job so that the whole batch is efficient or optimal (Section 2). Each
/// alternative is reduced to its (cost, time) pair; the optimizer
/// extremizes one measure subject to a limit on the other, e.g.
/// min T(s) with C(s) <= B*, or max C(s) with T(s) <= T* (formula (3)).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_OPTIMIZER_H
#define ECOSCHED_CORE_OPTIMIZER_H

#include "core/AlternativeSearch.h"

#include <string_view>
#include <vector>

namespace ecosched {

/// The two measures of the paper's criteria vector we optimize over.
enum class MeasureKind { Cost, Time };

/// Direction of the extremum in the functional equation (1).
enum class DirectionKind { Minimize, Maximize };

/// The (cost, time) footprint of one alternative; the g/z values of the
/// paper's equation (1).
struct AlternativeValue {
  double Cost = 0.0;
  double Time = 0.0;

  double get(MeasureKind Kind) const {
    return Kind == MeasureKind::Cost ? Cost : Time;
  }
};

/// A multiple-choice selection problem: exactly one alternative per job.
struct CombinationProblem {
  /// Alternatives per job (job order preserved). Every job must have at
  /// least one alternative for the problem to be feasible.
  std::vector<std::vector<AlternativeValue>> PerJob;
  /// Measure to extremize (g in equation (1)).
  MeasureKind Objective = MeasureKind::Time;
  DirectionKind Direction = DirectionKind::Minimize;
  /// Constrained measure (z in equation (1)) and its limit Z*.
  MeasureKind Constraint = MeasureKind::Cost;
  double Limit = 0.0;
};

/// The selected combination.
struct CombinationChoice {
  /// False if no selection satisfies the constraint.
  bool Feasible = false;
  /// Chosen alternative index per job; parallel to PerJob.
  std::vector<size_t> Selected;
  /// Objective measure total of the selection.
  double ObjectiveTotal = 0.0;
  /// Constrained measure total of the selection.
  double ConstraintTotal = 0.0;
};

/// Interface of combination optimizers.
class CombinationOptimizer {
public:
  virtual ~CombinationOptimizer();

  virtual std::string_view name() const = 0;

  /// Solves \p Problem; Selected/totals are only meaningful when the
  /// returned choice is feasible.
  virtual CombinationChoice solve(const CombinationProblem &Problem) const = 0;
};

/// Extracts the (cost, time) values of \p Alts for the optimizers.
std::vector<std::vector<AlternativeValue>>
toAlternativeValues(const AlternativeSet &Alts);

/// Recomputes the totals of \p Selected against \p Problem; utility for
/// tests and for validating reconstructed DP choices.
CombinationChoice evaluateSelection(const CombinationProblem &Problem,
                                    std::vector<size_t> Selected);

} // namespace ecosched

#endif // ECOSCHED_CORE_OPTIMIZER_H
