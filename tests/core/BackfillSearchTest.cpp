//===-- tests/core/BackfillSearchTest.cpp - Baseline search tests ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BackfillSearch.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

ResourceRequest makeRequest(int Nodes, double Volume, double MinPerf,
                            double MaxPrice) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = Volume;
  Req.MinPerformance = MinPerf;
  Req.MaxUnitPrice = MaxPrice;
  return Req;
}

} // namespace

TEST(BackfillSearchTest, FindsEarliestWindow) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 60.0),  // Too short alone later.
                 Slot(1, 1.0, 1.0, 40.0, 200.0),
                 Slot(2, 1.0, 1.0, 90.0, 200.0)});
  BackfillSearch Backfill;
  const auto W = Backfill.findWindow(List, makeRequest(2, 50.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  // At t=90 both slot 1 and 2 cover 50 time units.
  EXPECT_DOUBLE_EQ(W->startTime().value(), 90.0);
}

TEST(BackfillSearchTest, PerSlotCapMode) {
  SlotList List({Slot(0, 1.0, 9.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0)});
  BackfillSearch Backfill(PriceRuleKind::PerSlotCap);
  EXPECT_FALSE(
      Backfill.findWindow(List, makeRequest(2, 50.0, 1.0, 2.0))
          .has_value());
}

TEST(BackfillSearchTest, JobBudgetMode) {
  SlotList List({Slot(0, 1.0, 3.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0)});
  // Budget 2*2*50 = 200 >= (3+1)*50 = 200.
  BackfillSearch Backfill(PriceRuleKind::JobBudget);
  const auto W =
      Backfill.findWindow(List, makeRequest(2, 50.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 200.0);
}

TEST(BackfillSearchTest, PicksCheapestAliveSubset) {
  SlotList List({Slot(0, 1.0, 5.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0),
                 Slot(2, 1.0, 2.0, 0.0, 100.0)});
  BackfillSearch Backfill(PriceRuleKind::PerSlotCap);
  const auto W =
      Backfill.findWindow(List, makeRequest(2, 50.0, 1.0, 6.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->usesNode(1));
  EXPECT_TRUE(W->usesNode(2));
}

TEST(BackfillSearchTest, FailsWhenInfeasible) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 40.0)});
  BackfillSearch Backfill;
  EXPECT_FALSE(
      Backfill.findWindow(List, makeRequest(1, 50.0, 1.0, 2.0))
          .has_value());
}

TEST(BackfillSearchTest, QuadraticExaminationOnFailure) {
  std::vector<Slot> Slots;
  for (int I = 0; I < 50; ++I)
    Slots.emplace_back(I, 1.0, 1.0, I * 1.0, I * 1.0 + 60.0);
  SlotList List(std::move(Slots));
  BackfillSearch Backfill;
  SearchStats Stats;
  EXPECT_FALSE(
      Backfill.findWindow(List, makeRequest(51, 50.0, 1.0, 2.0), &Stats)
          .has_value());
  // Every anchor rescans the full list: ~m + m^2 examinations.
  EXPECT_GE(Stats.SlotsExamined, 50u * 50u);
}
