//===-- tests/sim/TraceIOTest.cpp - Trace persistence tests ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceIO.h"

#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace ecosched;

namespace {

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + "/" + Name;
}

void writeFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path);
  Out << Content;
}

} // namespace

TEST(TraceIOTest, SlotRoundTripIsBitExact) {
  RandomGenerator Rng(21);
  const SlotList Original = SlotGenerator().generate(Rng);
  const std::string Path = tempPath("slots.trace");
  std::string Error;
  ASSERT_TRUE(saveSlotTrace(Original, Path, &Error)) << Error;

  const auto Loaded = loadSlotTrace(Path, &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->size(), Original.size());
  for (size_t I = 0; I < Original.size(); ++I) {
    EXPECT_EQ((*Loaded)[I].NodeId, Original[I].NodeId);
    EXPECT_EQ((*Loaded)[I].Performance, Original[I].Performance);
    EXPECT_EQ((*Loaded)[I].UnitPrice, Original[I].UnitPrice);
    EXPECT_EQ((*Loaded)[I].Start, Original[I].Start);
    EXPECT_EQ((*Loaded)[I].End, Original[I].End);
  }
  std::remove(Path.c_str());
}

TEST(TraceIOTest, BatchRoundTripIsBitExact) {
  RandomGenerator Rng(22);
  JobGeneratorConfig Cfg;
  Cfg.BudgetFactor = 0.8;
  Cfg.BudgetPolicy = BudgetPolicyKind::VolumeBased;
  const Batch Original = JobGenerator(Cfg).generate(Rng, 100);
  const std::string Path = tempPath("jobs.trace");
  std::string Error;
  ASSERT_TRUE(saveBatchTrace(Original, Path, &Error)) << Error;

  const auto Loaded = loadBatchTrace(Path, &Error);
  ASSERT_TRUE(Loaded.has_value()) << Error;
  ASSERT_EQ(Loaded->size(), Original.size());
  for (size_t I = 0; I < Original.size(); ++I) {
    EXPECT_EQ((*Loaded)[I].Id, Original[I].Id);
    EXPECT_EQ((*Loaded)[I].Request.NodeCount,
              Original[I].Request.NodeCount);
    EXPECT_EQ((*Loaded)[I].Request.Volume, Original[I].Request.Volume);
    EXPECT_EQ((*Loaded)[I].Request.MinPerformance,
              Original[I].Request.MinPerformance);
    EXPECT_EQ((*Loaded)[I].Request.MaxUnitPrice,
              Original[I].Request.MaxUnitPrice);
    EXPECT_EQ((*Loaded)[I].Request.BudgetFactor,
              Original[I].Request.BudgetFactor);
    EXPECT_EQ((*Loaded)[I].Request.BudgetPolicy,
              Original[I].Request.BudgetPolicy);
  }
  std::remove(Path.c_str());
}

TEST(TraceIOTest, LoadedListIsSortedEvenIfFileIsNot) {
  const std::string Path = tempPath("unsorted.trace");
  writeFile(Path, "slot 0 1 2 100 200\n"
                  "slot 1 1 2 0 50\n");
  const auto Loaded = loadSlotTrace(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(Loaded->checkInvariants());
  EXPECT_DOUBLE_EQ((*Loaded)[0].Start, 0.0);
  std::remove(Path.c_str());
}

TEST(TraceIOTest, CommentsAndBlanksIgnored) {
  const std::string Path = tempPath("comments.trace");
  writeFile(Path, "# header\n"
                  "\n"
                  "  \t \n"
                  "slot 3 1.5 2.5 10 60\n"
                  "# trailing comment\n");
  const auto Loaded = loadSlotTrace(Path);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), 1u);
  EXPECT_EQ((*Loaded)[0].NodeId, 3);
  std::remove(Path.c_str());
}

TEST(TraceIOTest, MissingFileReportsError) {
  std::string Error;
  EXPECT_FALSE(loadSlotTrace("/no/such/file.trace", &Error).has_value());
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
  EXPECT_FALSE(loadBatchTrace("/no/such/file.trace", &Error).has_value());
}

TEST(TraceIOTest, MalformedSlotLineReportsLineNumber) {
  const std::string Path = tempPath("bad_slot.trace");
  writeFile(Path, "slot 0 1 2 0 100\n"
                  "slot nonsense\n");
  std::string Error;
  EXPECT_FALSE(loadSlotTrace(Path, &Error).has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceIOTest, InvalidSlotParametersRejected) {
  const std::string Path = tempPath("bad_params.trace");
  writeFile(Path, "slot 0 -1 2 0 100\n"); // Negative performance.
  std::string Error;
  EXPECT_FALSE(loadSlotTrace(Path, &Error).has_value());
  writeFile(Path, "slot 0 1 2 100 50\n"); // End before start.
  EXPECT_FALSE(loadSlotTrace(Path, &Error).has_value());
  std::remove(Path.c_str());
}

TEST(TraceIOTest, UnknownBudgetPolicyRejected) {
  const std::string Path = tempPath("bad_policy.trace");
  writeFile(Path, "job 1 2 100 1 3 1 elastic\n");
  std::string Error;
  EXPECT_FALSE(loadBatchTrace(Path, &Error).has_value());
  EXPECT_NE(Error.find("elastic"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TraceIOTest, InvalidJobParametersRejected) {
  const std::string Path = tempPath("bad_job.trace");
  writeFile(Path, "job 1 0 100 1 3 1 span\n"); // Zero nodes.
  std::string Error;
  EXPECT_FALSE(loadBatchTrace(Path, &Error).has_value());
  std::remove(Path.c_str());
}

TEST(TraceIOTest, SaveFailsOnBadPath) {
  std::string Error;
  EXPECT_FALSE(saveSlotTrace(SlotList(), "/no/such/dir/x.trace", &Error));
  EXPECT_FALSE(saveBatchTrace(Batch{}, "/no/such/dir/x.trace", &Error));
}
