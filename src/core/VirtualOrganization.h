//===-- core/VirtualOrganization.h - Forwarding header -------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DEPRECATED compatibility forwarding header: the VO driver moved to
/// the engine layer in PR 4 (see docs/ARCHITECTURE.md). Include
/// engine/VirtualOrganization.h instead; every in-repo user has been
/// migrated, and this forwarder exists only for out-of-tree code. It is
/// archlint's sole sanctioned upward edge and will be removed once
/// downstream consumers have had a release to migrate.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_VIRTUALORGANIZATION_H
#define ECOSCHED_CORE_VIRTUALORGANIZATION_H

// archlint-allow(layer-dag): legacy forwarder, kept one release for
// out-of-tree includers of the pre-PR-4 path.
#include "engine/VirtualOrganization.h"

#endif // ECOSCHED_CORE_VIRTUALORGANIZATION_H
