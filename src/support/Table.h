//===-- support/Table.h - Console table and CSV writers ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small table formatting utilities. Every bench binary reproduces one of
/// the paper's figures/tables as console rows; TablePrinter keeps that
/// output aligned and CSV-exportable without pulling in iostreams.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_TABLE_H
#define ECOSCHED_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace ecosched {

/// Column-aligned console table. Columns are declared once; rows are then
/// appended as formatted cells. print() pads cells to the widest entry.
class TablePrinter {
public:
  enum class AlignKind { Left, Right };

  /// Declares a column with the given \p Header.
  void addColumn(std::string Header, AlignKind Align = AlignKind::Right);

  /// Starts a new row. Subsequent addCell calls fill it left to right.
  void beginRow();

  /// Appends a string cell to the current row.
  void addCell(std::string Text);

  /// Appends an integer cell.
  void addCell(long long Value);

  /// Appends a floating-point cell rendered with \p Precision digits
  /// after the decimal point.
  void addCell(double Value, int Precision = 2);

  /// Writes the table to \p Out with a header underline.
  void print(std::FILE *Out) const;

  /// Writes the table as CSV to the file at \p Path.
  /// \returns true on success.
  bool writeCsv(const std::string &Path) const;

  /// Number of data rows appended so far.
  size_t rowCount() const { return Rows.size(); }

private:
  std::vector<std::string> Headers;
  std::vector<AlignKind> Aligns;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p Value like printf("%.*f") into a std::string.
std::string formatDouble(double Value, int Precision = 2);

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_TABLE_H
