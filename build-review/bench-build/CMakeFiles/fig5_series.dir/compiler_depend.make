# Empty compiler generated dependencies file for fig5_series.
# This may be replaced when dependencies are built.
