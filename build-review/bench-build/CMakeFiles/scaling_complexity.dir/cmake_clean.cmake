file(REMOVE_RECURSE
  "../bench/scaling_complexity"
  "../bench/scaling_complexity.pdb"
  "CMakeFiles/scaling_complexity.dir/scaling_complexity.cpp.o"
  "CMakeFiles/scaling_complexity.dir/scaling_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
