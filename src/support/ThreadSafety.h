//===-- support/ThreadSafety.h - Clang thread-safety annotations -*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static lock-discipline checking for the concurrency layer
/// (docs/CONCURRENCY.md). Under clang with -Wthread-safety the macros
/// expand to the thread-safety-analysis attributes, so "which mutex
/// guards which member" is compiler-checked instead of comment-only;
/// under every other compiler they expand to nothing and the code is
/// unchanged.
///
/// The standard library's mutex types are not annotated as
/// capabilities (with libstdc++ there is nothing for the analysis to
/// see through), so this header also provides the thin annotated
/// wrappers the analysis needs: Mutex (a capability over std::mutex),
/// MutexLock (a scoped acquire/release), and ConditionVariable (waits
/// on a held MutexLock without giving up the annotation). The wrappers
/// forward directly to the standard types — no behavior change, only
/// visibility to the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_THREADSAFETY_H
#define ECOSCHED_SUPPORT_THREADSAFETY_H

#include <condition_variable>
#include <mutex>

// The attribute spelling, gated so non-clang compilers (and clang
// builds without the capability attribute) see plain code.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ECOSCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ECOSCHED_THREAD_ANNOTATION
#define ECOSCHED_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability.
#define ECOSCHED_CAPABILITY(name) ECOSCHED_THREAD_ANNOTATION(capability(name))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define ECOSCHED_SCOPED_CAPABILITY ECOSCHED_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be read or written while holding the given mutex.
#define ECOSCHED_GUARDED_BY(x) ECOSCHED_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed while holding the given mutex.
#define ECOSCHED_PT_GUARDED_BY(x) ECOSCHED_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the listed capabilities and does not release them.
#define ECOSCHED_ACQUIRE(...)                                                 \
  ECOSCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define ECOSCHED_RELEASE(...)                                                 \
  ECOSCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define ECOSCHED_TRY_ACQUIRE(...)                                             \
  ECOSCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the listed capabilities when calling the function.
#define ECOSCHED_REQUIRES(...)                                                \
  ECOSCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define ECOSCHED_EXCLUDES(...)                                                \
  ECOSCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Opt a function (or lambda) out of the analysis, with a comment
/// saying why — typically a wait predicate that runs with the lock
/// held by the waiting function.
#define ECOSCHED_NO_THREAD_SAFETY_ANALYSIS                                    \
  ECOSCHED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ecosched {

/// std::mutex as a capability the analysis can track.
class ECOSCHED_CAPABILITY("mutex") Mutex {
public:
  void lock() ECOSCHED_ACQUIRE() { M.lock(); }
  void unlock() ECOSCHED_RELEASE() { M.unlock(); }
  bool try_lock() ECOSCHED_TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  friend class ConditionVariable;
  std::mutex M;
};

/// Scoped lock over Mutex; the annotated replacement for
/// std::lock_guard / std::unique_lock in annotated code.
class ECOSCHED_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) ECOSCHED_ACQUIRE(M) : M(M) { M.lock(); }
  ~MutexLock() ECOSCHED_RELEASE() { M.unlock(); }
  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  friend class ConditionVariable;
  Mutex &M;
};

/// Condition variable that waits on a held MutexLock. The wait borrows
/// the already-locked native mutex (adopt/release), so the lock is
/// held again when wait returns and MutexLock's destructor remains the
/// single release point — exactly std::condition_variable semantics,
/// visible to the analysis.
class ConditionVariable {
public:
  /// Blocks until \p P() is true; \p P runs with the lock held, so a
  /// lambda predicate reading guarded members should be marked
  /// ECOSCHED_NO_THREAD_SAFETY_ANALYSIS (the analysis cannot see the
  /// borrowed acquisition from inside the lambda).
  template <class Pred> void wait(MutexLock &Lock, Pred P) {
    std::unique_lock<std::mutex> Borrowed(Lock.M.M, std::adopt_lock);
    Cv.wait(Borrowed, P);
    (void)Borrowed.release();
  }
  void notify_one() { Cv.notify_one(); }
  void notify_all() { Cv.notify_all(); }

private:
  std::condition_variable Cv;
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_THREADSAFETY_H
