//===-- tests/support/TableTest.cpp - Table writer unit tests -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ecosched;

namespace {

/// Captures TablePrinter::print output through a temporary file.
std::string printToString(const TablePrinter &T) {
  std::FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr);
  T.print(Tmp);
  std::rewind(Tmp);
  std::string Out;
  char Buffer[256];
  while (std::fgets(Buffer, sizeof(Buffer), Tmp))
    Out += Buffer;
  std::fclose(Tmp);
  return Out;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

} // namespace

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(3.14159, 0), "3");
  EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T;
  T.addColumn("name", TablePrinter::AlignKind::Left);
  T.addColumn("value");
  T.beginRow();
  T.addCell(std::string("alpha"));
  T.addCell(static_cast<long long>(5));
  T.beginRow();
  T.addCell(std::string("b"));
  T.addCell(static_cast<long long>(1234));
  const std::string Out = printToString(T);
  EXPECT_NE(Out.find("name   value"), std::string::npos);
  EXPECT_NE(Out.find("alpha      5"), std::string::npos);
  EXPECT_NE(Out.find("b       1234"), std::string::npos);
}

TEST(TablePrinterTest, DoubleCellsUsePrecision) {
  TablePrinter T;
  T.addColumn("x");
  T.beginRow();
  T.addCell(2.5, 3);
  const std::string Out = printToString(T);
  EXPECT_NE(Out.find("2.500"), std::string::npos);
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter T;
  T.addColumn("x");
  EXPECT_EQ(T.rowCount(), 0u);
  T.beginRow();
  T.addCell(std::string("1"));
  EXPECT_EQ(T.rowCount(), 1u);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter T;
  T.addColumn("a");
  T.addColumn("b");
  T.beginRow();
  T.addCell(std::string("plain"));
  T.addCell(std::string("has,comma and \"quote\""));
  const std::string Path =
      ::testing::TempDir() + "/ecosched_table_test.csv";
  ASSERT_TRUE(T.writeCsv(Path));
  const std::string Content = readFile(Path);
  EXPECT_EQ(Content,
            "a,b\nplain,\"has,comma and \"\"quote\"\"\"\n");
  std::remove(Path.c_str());
}

TEST(TablePrinterTest, CsvFailsOnBadPath) {
  TablePrinter T;
  T.addColumn("a");
  EXPECT_FALSE(T.writeCsv("/nonexistent-dir/impossible.csv"));
}
