//===-- tests/engine/MultiVoDriverScheduleFuzzTest.cpp - Fuzzed driver ----===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism gate's adversarial-schedule stress for the
/// concurrent multi-VO driver: per-tenant reports, completed-job
/// streams, and incomes must stay bitwise-identical to the serial
/// baseline when the pool runs tenants under shuffled claim orders with
/// injected yields, across {2, 8} threads and at least 8 distinct
/// shuffle seeds. Exact floating-point comparison on purpose — "close
/// enough" would hide cross-tenant result mixups.
///
//===----------------------------------------------------------------------===//

#include "engine/MultiVoDriver.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ecosched;

namespace {

constexpr size_t TenantCount = 4;
constexpr size_t Rounds = 8;
constexpr uint64_t ShuffleSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

ComputingDomain makeTenantDomain(size_t VoIndex) {
  // Deliberately different per tenant so a cross-tenant mixup cannot
  // cancel out.
  ComputingDomain D;
  const int Nodes = 2 + static_cast<int>(VoIndex % 3);
  for (int Node = 0; Node < Nodes; ++Node)
    D.addNode(1.0 + 0.5 * Node, 1.0 + 0.25 * Node);
  return D;
}

Batch makeArrivals(size_t VoIndex, size_t Iteration, RandomGenerator &Rng) {
  Batch B;
  const int64_t Count = Rng.uniformInt(0, 2);
  for (int64_t K = 0; K < Count; ++K) {
    Job J;
    J.Id = static_cast<int>(VoIndex * 1000 + Iteration * 10 + K);
    J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 2));
    J.Request.Volume = Rng.uniformReal(40.0, 120.0);
    J.Request.MinPerformance = 1.0;
    J.Request.MaxUnitPrice = Rng.uniformReal(1.5, 2.5);
    B.push_back(J);
  }
  return B;
}

/// Everything a run produces, per tenant, for exact comparison.
struct RunTrace {
  std::vector<std::vector<MultiVoDriver::TenantIteration>> PerRound;
  std::vector<std::vector<CompletedJob>> Completed;
  std::vector<double> Income;
};

/// Runs the fixed scenario; \p Threads == 0 means no pool (serial).
RunTrace runScenario(size_t Threads, ThreadPool::ScheduleFuzz Fuzz) {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);

  ThreadPool Pool(Threads == 0 ? 1 : Threads, Fuzz);
  MultiVoDriver::Config Cfg;
  Cfg.Pool = Threads == 0 ? nullptr : &Pool;
  MultiVoDriver Driver(Cfg);

  VirtualOrganization::Config VoCfg;
  VoCfg.IterationPeriod = 100.0;
  VoCfg.HorizonLength = 500.0;
  for (size_t I = 0; I < TenantCount; ++I)
    Driver.addTenant(makeTenantDomain(I), Scheduler, VoCfg,
                     /*Seed=*/1000 + I);

  RunTrace Trace;
  for (size_t Round = 0; Round < Rounds; ++Round)
    Trace.PerRound.push_back(Driver.runIteration(makeArrivals));
  for (size_t I = 0; I < TenantCount; ++I) {
    Trace.Completed.push_back(Driver.tenant(I).completed());
    Trace.Income.push_back(Driver.tenant(I).totalIncome().value());
  }
  return Trace;
}

void expectSameTrace(const RunTrace &A, const RunTrace &B) {
  ASSERT_EQ(A.PerRound.size(), B.PerRound.size());
  for (size_t Round = 0; Round < A.PerRound.size(); ++Round) {
    ASSERT_EQ(A.PerRound[Round].size(), B.PerRound[Round].size());
    for (size_t I = 0; I < A.PerRound[Round].size(); ++I) {
      const MultiVoDriver::TenantIteration &X = A.PerRound[Round][I];
      const MultiVoDriver::TenantIteration &Y = B.PerRound[Round][I];
      ASSERT_EQ(X.Arrivals, Y.Arrivals);
      ASSERT_EQ(X.Report.Now, Y.Report.Now);
      ASSERT_EQ(X.Report.QueueLength, Y.Report.QueueLength);
      ASSERT_EQ(X.Report.Committed, Y.Report.Committed);
      ASSERT_EQ(X.Report.Dropped, Y.Report.Dropped);
      ASSERT_EQ(X.Report.Outcome.Scheduled.size(),
                Y.Report.Outcome.Scheduled.size());
      for (size_t S = 0; S < X.Report.Outcome.Scheduled.size(); ++S) {
        const ScheduledJob &P = X.Report.Outcome.Scheduled[S];
        const ScheduledJob &Q = Y.Report.Outcome.Scheduled[S];
        ASSERT_EQ(P.JobId, Q.JobId);
        ASSERT_EQ(P.BatchIndex, Q.BatchIndex);
        ASSERT_EQ(P.AlternativeIndex, Q.AlternativeIndex);
        ASSERT_EQ(P.W.startTime().value(), Q.W.startTime().value());
        ASSERT_EQ(P.W.endTime().value(), Q.W.endTime().value());
        ASSERT_EQ(P.W.totalCost().value(), Q.W.totalCost().value());
      }
    }
  }
  ASSERT_EQ(A.Completed.size(), B.Completed.size());
  for (size_t I = 0; I < A.Completed.size(); ++I) {
    ASSERT_EQ(A.Completed[I].size(), B.Completed[I].size());
    for (size_t C = 0; C < A.Completed[I].size(); ++C) {
      ASSERT_EQ(A.Completed[I][C].JobId, B.Completed[I][C].JobId);
      ASSERT_EQ(A.Completed[I][C].StartTime, B.Completed[I][C].StartTime);
      ASSERT_EQ(A.Completed[I][C].EndTime, B.Completed[I][C].EndTime);
      ASSERT_EQ(A.Completed[I][C].Cost, B.Completed[I][C].Cost);
      ASSERT_EQ(A.Completed[I][C].Attempts, B.Completed[I][C].Attempts);
    }
    ASSERT_EQ(A.Income[I], B.Income[I]);
  }
}

} // namespace

TEST(MultiVoDriverScheduleFuzzTest, TraceIdenticalUnderShuffledSchedules) {
  // Serial no-pool baseline; the adversarial pooled runs must reproduce
  // it bitwise under every (threads, shuffle seed) combination.
  const RunTrace Baseline =
      runScenario(/*Threads=*/0, ThreadPool::ScheduleFuzz{});
  for (const size_t Threads : {2u, 8u}) {
    for (const uint64_t Seed : ShuffleSeeds) {
      SCOPED_TRACE("Threads=" + std::to_string(Threads) + " shuffle seed " +
                   std::to_string(Seed));
      expectSameTrace(Baseline,
                      runScenario(Threads, ThreadPool::ScheduleFuzz{
                                               /*Enabled=*/true, Seed}));
    }
  }
}

TEST(MultiVoDriverScheduleFuzzTest, RepeatedFuzzedRunsAgree) {
  // Same pool size and seed twice: the adversarial mode itself must be
  // reproducible, or a stress failure could never be replayed.
  const ThreadPool::ScheduleFuzz Fuzz{/*Enabled=*/true, 42};
  expectSameTrace(runScenario(8, Fuzz), runScenario(8, Fuzz));
}
