//===-- tests/core/BatchSearchTest.cpp - One-pass batch scheduler ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BatchSearch.h"

#include "sim/PaperExample.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice,
            double MinPerf = 1.0) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = MinPerf;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

SlotList makeUniformList() {
  return SlotList({Slot(0, 1.0, 1.0, 0.0, 400.0),
                   Slot(1, 1.0, 1.0, 0.0, 400.0),
                   Slot(2, 1.0, 1.0, 0.0, 400.0),
                   Slot(3, 1.0, 1.0, 0.0, 400.0)});
}

} // namespace

TEST(BatchSearchTest, PlacesWholeBatchInOnePass) {
  OnePassBatchScheduler Scheduler;
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0),
                      makeJob(2, 2, 100.0, 2.0)};
  const BatchAssignment A = Scheduler.assign(makeUniformList(), Jobs);
  ASSERT_EQ(A.placedCount(), 2u);
  // Four free nodes: both jobs can start at t=0 side by side, which the
  // sequential scheme also achieves here.
  EXPECT_DOUBLE_EQ(A.PerJob[0]->startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(A.PerJob[1]->startTime().value(), 0.0);
  EXPECT_FALSE(A.PerJob[0]->intersects(*A.PerJob[1]));
  EXPECT_DOUBLE_EQ(A.makespan().value(), 100.0);
}

TEST(BatchSearchTest, ReusesTailsWithinTheSamePass) {
  // Two nodes only: the second job must run after the first, inside the
  // same scan, by picking up the committed members' tails.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 400.0),
                 Slot(1, 1.0, 1.0, 0.0, 400.0)});
  OnePassBatchScheduler Scheduler;
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0),
                      makeJob(2, 2, 100.0, 2.0)};
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  ASSERT_EQ(A.placedCount(), 2u);
  EXPECT_DOUBLE_EQ(A.PerJob[0]->startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(A.PerJob[1]->startTime().value(), 100.0);
  EXPECT_FALSE(A.PerJob[0]->intersects(*A.PerJob[1]));
}

TEST(BatchSearchTest, PriorityOrderBreaksContention) {
  // One node, both jobs want it: the higher-priority job gets t=0.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 400.0)});
  OnePassBatchScheduler Scheduler;
  const Batch Jobs = {makeJob(7, 1, 100.0, 2.0),
                      makeJob(8, 1, 100.0, 2.0)};
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  ASSERT_EQ(A.placedCount(), 2u);
  EXPECT_DOUBLE_EQ(A.PerJob[0]->startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(A.PerJob[1]->startTime().value(), 100.0);
}

TEST(BatchSearchTest, UnplaceableJobReported) {
  OnePassBatchScheduler Scheduler;
  const Batch Jobs = {makeJob(1, 1, 100.0, 2.0),
                      makeJob(2, 9, 100.0, 2.0)}; // Needs 9 nodes.
  const BatchAssignment A = Scheduler.assign(makeUniformList(), Jobs);
  EXPECT_TRUE(A.PerJob[0].has_value());
  EXPECT_FALSE(A.PerJob[1].has_value());
  EXPECT_EQ(A.placedCount(), 1u);
}

TEST(BatchSearchTest, PerSlotCapModeFiltersExpensiveSlots) {
  SlotList List({Slot(0, 1.0, 9.0, 0.0, 400.0),
                 Slot(1, 1.0, 1.0, 0.0, 400.0)});
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0)};

  OnePassBatchScheduler Capped(
      OnePassBatchScheduler::PriceModeKind::PerSlotCap);
  EXPECT_EQ(Capped.assign(List, Jobs).placedCount(), 0u);

  // Budget mode: (9+1)*100 = 1000 > budget 2*2*100 = 400 -> also fails.
  OnePassBatchScheduler Budgeted(
      OnePassBatchScheduler::PriceModeKind::JobBudget);
  EXPECT_EQ(Budgeted.assign(List, Jobs).placedCount(), 0u);

  // A richer job affords the pair under the budget but not the cap.
  const Batch RichJobs = {makeJob(1, 2, 100.0, 5.0)};
  EXPECT_EQ(Capped.assign(List, RichJobs).placedCount(), 0u);
  EXPECT_EQ(Budgeted.assign(List, RichJobs).placedCount(), 1u);
}

TEST(BatchSearchTest, HandlesPaperExampleBatch) {
  ComputingDomain Domain = buildPaperExampleDomain();
  const SlotList Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));
  OnePassBatchScheduler Scheduler;
  const BatchAssignment A =
      Scheduler.assign(Slots, buildPaperExampleBatch());
  EXPECT_EQ(A.placedCount(), 3u);
  // Committed windows are pairwise disjoint and commit cleanly.
  for (size_t I = 0; I < A.PerJob.size(); ++I)
    for (size_t J = I + 1; J < A.PerJob.size(); ++J)
      EXPECT_FALSE(A.PerJob[I]->intersects(*A.PerJob[J]));
  for (size_t I = 0; I < A.PerJob.size(); ++I)
    EXPECT_TRUE(
        Domain.reserveWindow(*A.PerJob[I], static_cast<int>(I + 1)));
}

TEST(BatchSearchTest, EmptyInputs) {
  OnePassBatchScheduler Scheduler;
  EXPECT_EQ(Scheduler.assign(SlotList(), {makeJob(1, 1, 10.0, 2.0)})
                .placedCount(),
            0u);
  const BatchAssignment A = Scheduler.assign(makeUniformList(), Batch{});
  EXPECT_EQ(A.placedCount(), 0u);
  EXPECT_DOUBLE_EQ(A.makespan().value(), 0.0);
  EXPECT_DOUBLE_EQ(A.totalCost().value(), 0.0);
}

TEST(BatchSearchTest, StatsCountRequeuedTails) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 400.0),
                 Slot(1, 1.0, 1.0, 0.0, 400.0)});
  OnePassBatchScheduler Scheduler;
  const Batch Jobs = {makeJob(1, 2, 100.0, 2.0),
                      makeJob(2, 2, 100.0, 2.0)};
  const BatchAssignment A = Scheduler.assign(List, Jobs);
  // 2 original slots + 2 tails from job 1 + nothing further needed
  // examined before job 2 completes; at least 4 examinations total.
  EXPECT_GE(A.Stats.SlotsExamined, 4u);
}
