//===-- support/Svg.h - Minimal SVG document writer ----------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal SVG writer so the figure benches can emit the paper's
/// charts as image files (`--svg=...`). Only the primitives the plot
/// layer needs: rectangles, lines, polylines, text, with plain
/// fill/stroke styling. Coordinates are in user units; the document
/// writes a fixed viewBox.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_SVG_H
#define ECOSCHED_SUPPORT_SVG_H

#include <string>
#include <vector>

namespace ecosched {

/// Paint style of an SVG element.
struct SvgStyle {
  /// Fill color ("#rrggbb" or "none").
  std::string Fill = "none";
  /// Stroke color ("#rrggbb" or "none").
  std::string Stroke = "none";
  double StrokeWidth = 1.0;
  /// Fill/stroke opacity in [0, 1].
  double Opacity = 1.0;
};

/// Horizontal anchoring of text.
enum class SvgTextAnchorKind { Start, Middle, End };

/// An SVG document assembled element by element.
class SvgDocument {
public:
  /// Creates a document of the given pixel size with a white background.
  SvgDocument(double Width, double Height);

  void addRect(double X, double Y, double W, double H,
               const SvgStyle &Style);

  void addLine(double X1, double Y1, double X2, double Y2,
               const SvgStyle &Style);

  /// Polyline through the given (x, y) points.
  void addPolyline(const std::vector<std::pair<double, double>> &Points,
                   const SvgStyle &Style);

  void addCircle(double X, double Y, double R, const SvgStyle &Style);

  /// Text at (X, Y baseline); \p Size is the font size in pixels.
  void addText(double X, double Y, const std::string &Text, double Size,
               SvgTextAnchorKind Anchor = SvgTextAnchorKind::Start,
               const std::string &Color = "#1a1a1a");

  double width() const { return Width; }
  double height() const { return Height; }

  /// Serializes the document.
  std::string str() const;

  /// Writes the document to \p Path; false on I/O failure.
  bool write(const std::string &Path) const;

private:
  double Width;
  double Height;
  std::vector<std::string> Elements;
};

/// Escapes &, <, > and quotes for use in SVG text/attributes.
std::string svgEscape(const std::string &Text);

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_SVG_H
