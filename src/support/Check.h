//===-- support/Check.h - Runtime contract checks ------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contract-check macros that replace raw `assert`: on failure they
/// print the failing expression, the source location, and a message with
/// formatted operand values before aborting, so a corrupted schedule
/// diagnoses itself instead of silently propagating.
///
/// `ECOSCHED_CHECK(Cond, Fmt, Vals...)` is always on, in every build
/// type; use it for cheap preconditions and postconditions.
/// `ECOSCHED_DCHECK` has the same shape but compiles to a no-op when
/// `ECOSCHED_ENABLE_DCHECKS` is 0 (defaulted from NDEBUG); use it for
/// expensive structural validation at stage boundaries.
///
/// The message is a literal format string where each `{}` is replaced by
/// the next value argument, e.g.:
///
///   ECOSCHED_CHECK(End >= Start, "slot ends before it starts: [{}, {})",
///                  Start, End);
///
/// Doubles are printed with enough digits to round-trip, so epsilon-level
/// disagreements are visible in the failure report.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_CHECK_H
#define ECOSCHED_SUPPORT_CHECK_H

#include <sstream>
#include <string>

namespace ecosched {
namespace support {

/// Prints the failure report to stderr and aborts. Never returns.
[[noreturn]] void checkFailed(const char *File, long Line, const char *Expr,
                              const std::string &Message);

/// Renders one operand for the failure message. Doubles round-trip
/// (max_digits10); everything else uses its ostream inserter.
template <typename T> std::string renderValue(const T &Value) {
  std::ostringstream OS;
  OS.precision(17);
  OS << Value;
  return OS.str();
}

inline std::string renderValue(bool Value) {
  return Value ? "true" : "false";
}

/// Substitutes each "{}" in \p Fmt with the next rendered value.
/// Surplus values are appended; surplus "{}" markers are left verbatim.
std::string formatCheckMessage(const char *Fmt,
                               std::initializer_list<std::string> Values);

template <typename... Ts>
std::string formatMessage(const char *Fmt, const Ts &...Values) {
  return formatCheckMessage(Fmt, {renderValue(Values)...});
}

inline std::string formatMessage(const char *Fmt) { return Fmt; }

} // namespace support
} // namespace ecosched

/// Always-on contract check. \p Cond is evaluated exactly once; the
/// message arguments are only evaluated on failure.
#define ECOSCHED_CHECK(Cond, ...)                                             \
  do {                                                                        \
    if (!(Cond))                                                              \
      ::ecosched::support::checkFailed(                                       \
          __FILE__, __LINE__, #Cond,                                          \
          ::ecosched::support::formatMessage(__VA_ARGS__));                   \
  } while (false)

/// Debug-mode checks default to on because every build type of this
/// project keeps assertions enabled (see the top-level CMakeLists.txt);
/// define ECOSCHED_ENABLE_DCHECKS=0 to strip them from a hot build.
#ifndef ECOSCHED_ENABLE_DCHECKS
#ifdef NDEBUG
#define ECOSCHED_ENABLE_DCHECKS 0
#else
#define ECOSCHED_ENABLE_DCHECKS 1
#endif
#endif

#if ECOSCHED_ENABLE_DCHECKS
#define ECOSCHED_DCHECK(Cond, ...) ECOSCHED_CHECK(Cond, __VA_ARGS__)
/// Runs a structural validator statement (e.g. `List.validate()`) only
/// when debug checks are enabled; the validator itself aborts with a
/// diagnostic on failure.
#define ECOSCHED_DVALIDATE(...)                                               \
  do {                                                                        \
    __VA_ARGS__;                                                              \
  } while (false)
#else
// Keeps every operand referenced (no unused-variable warnings) without
// evaluating any of them.
#define ECOSCHED_DCHECK(Cond, ...)                                            \
  do {                                                                        \
    if (false) {                                                              \
      (void)(Cond);                                                           \
      (void)::ecosched::support::formatMessage(__VA_ARGS__);                  \
    }                                                                         \
  } while (false)
#define ECOSCHED_DVALIDATE(...)                                               \
  do {                                                                        \
    if (false) {                                                              \
      __VA_ARGS__;                                                            \
    }                                                                         \
  } while (false)
#endif

#endif // ECOSCHED_SUPPORT_CHECK_H
