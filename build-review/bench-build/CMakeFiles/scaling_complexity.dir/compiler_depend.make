# Empty compiler generated dependencies file for scaling_complexity.
# This may be replaced when dependencies are built.
