//===-- core/SearchAlgorithm.h - Slot search interface --------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface of the window-search algorithms (ALP, AMP, and the
/// backfill-style baseline). A search takes the ordered list of vacant
/// slots and a resource request and returns the first suitable window,
/// if any.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_SEARCHALGORITHM_H
#define ECOSCHED_CORE_SEARCHALGORITHM_H

#include "sim/Job.h"
#include "sim/SlotList.h"
#include "sim/Window.h"

#include <optional>
#include <string_view>

namespace ecosched {

/// Work counters reported by a search run; used by the complexity
/// benches that check the paper's O(m) claim (Section 3).
struct SearchStats {
  /// Slots taken from the ordered list and examined.
  size_t SlotsExamined = 0;
  /// Peak size of the working slot group.
  size_t GroupPeak = 0;
  /// Total comparison-ish work: group updates plus sorting effort.
  size_t GroupOperations = 0;
  /// Speculative windows discarded and recomputed serially by the
  /// sharded alternative sweep (docs/PERFORMANCE.md).
  size_t SpeculationRecomputes = 0;
  /// Per-job views carried across VO iterations by the persistent
  /// filter instead of being rebuilt (docs/PERFORMANCE.md, "The
  /// persistent filter").
  size_t FilterViewReuses = 0;
  /// Views the persistent filter had to build from scratch: new jobs,
  /// changed requests, and deltas too large to splice profitably.
  size_t FilterViewRebuilds = 0;
  /// Individual slot splices (erase or re-admission insert) the
  /// persistent filter applied while reconciling reused views.
  size_t FilterDeltaOps = 0;

  SearchStats &operator+=(const SearchStats &Other) {
    SlotsExamined += Other.SlotsExamined;
    GroupPeak = GroupPeak > Other.GroupPeak ? GroupPeak : Other.GroupPeak;
    GroupOperations += Other.GroupOperations;
    SpeculationRecomputes += Other.SpeculationRecomputes;
    FilterViewReuses += Other.FilterViewReuses;
    FilterViewRebuilds += Other.FilterViewRebuilds;
    FilterDeltaOps += Other.FilterDeltaOps;
    return *this;
  }
};

/// Abstract window search over an ordered slot list.
class SlotSearchAlgorithm {
public:
  virtual ~SlotSearchAlgorithm();

  /// Human-readable algorithm name ("ALP", "AMP", ...).
  virtual std::string_view name() const = 0;

  /// Finds the first (earliest) window satisfying \p Request on \p List.
  /// \param Stats optional work counters, accumulated when non-null.
  /// \returns the window, or std::nullopt if the list cannot satisfy the
  /// request (the job is then postponed to the next scheduling
  /// iteration).
  virtual std::optional<Window>
  findWindow(const SlotList &List, const ResourceRequest &Request,
             SearchStats *Stats = nullptr) const = 0;

  /// The request-static admissibility predicate: true unless \p S can
  /// never contribute to a window this algorithm returns for
  /// \p Request, regardless of the rest of the list. SlotFilter uses it
  /// to precompute per-job slot views (docs/PERFORMANCE.md).
  ///
  /// Contract: the predicate must be monotone under slot shrinking — if
  /// a slot is inadmissible, every sub-span of it (same node,
  /// performance, and price) is inadmissible too. All of the Section 3
  /// conditions (2a performance, 2b length, 2c price) and the
  /// own-start deadline check satisfy this. The base implementation
  /// admits everything.
  virtual bool admits(const Slot &S, const ResourceRequest &Request) const;

  /// admits() specialized to remainder pieces: \p Piece is a sub-span —
  /// same node, performance, and unit price, narrower time span — of a
  /// slot this algorithm already admitted for \p Request.
  /// Implementations may skip predicates that cannot change when a
  /// slot's span shrinks (performance, price cap) and re-check only the
  /// span-dependent ones (length, own-start deadline).
  ///
  /// Contract: must return exactly admits(\p Piece, \p Request) — this
  /// is a pure fast path for the filters' re-admission Keep callback,
  /// never a semantic change. The base implementation forwards to
  /// admits(), which is always correct.
  virtual bool admitsRemainder(const Slot &Piece,
                               const ResourceRequest &Request) const;

  /// findWindow over a \p Filtered list that contains only slots passing
  /// admits(): implementations may skip their request-static predicate
  /// checks. Must return exactly the window findWindow would return on
  /// any list whose admissible subsequence equals \p Filtered. The base
  /// implementation forwards to findWindow, which is always correct.
  virtual std::optional<Window>
  findWindowFiltered(const SlotList &Filtered,
                     const ResourceRequest &Request,
                     SearchStats *Stats = nullptr) const;

  /// True if a window this algorithm found on a list L0 may be reused
  /// on a damaged sublist L1 (every L1 slot is a verbatim or shrunk L0
  /// slot) whenever all of the window's member slots are still present
  /// verbatim in L1 — i.e. findWindow(L1) is guaranteed to return the
  /// same window. ALP and AMP satisfy this because their output is a
  /// pure function of the per-start alive-slot sets
  /// (docs/PERFORMANCE.md gives the argument). The speculative sharded
  /// sweep falls back to a serial sweep when false.
  virtual bool supportsSpeculativeReuse() const { return false; }
};

} // namespace ecosched

#endif // ECOSCHED_CORE_SEARCHALGORITHM_H
