//===-- support/Svg.cpp - Minimal SVG document writer ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Svg.h"

#include "support/Check.h"

#include <cstdio>

using namespace ecosched;

std::string ecosched::svgEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (const char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {

std::string formatNumber(double X) {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "%.2f", X);
  return Buffer;
}

std::string styleAttrs(const SvgStyle &Style) {
  std::string Out = " fill=\"" + Style.Fill + "\"";
  Out += " stroke=\"" + Style.Stroke + "\"";
  if (Style.Stroke != "none")
    Out += " stroke-width=\"" + formatNumber(Style.StrokeWidth) + "\"";
  if (Style.Opacity < 1.0)
    Out += " opacity=\"" + formatNumber(Style.Opacity) + "\"";
  return Out;
}

} // namespace

SvgDocument::SvgDocument(double Width, double Height)
    : Width(Width), Height(Height) {
  ECOSCHED_CHECK(Width > 0.0 && Height > 0.0,
                 "empty SVG canvas: {} x {}", Width, Height);
  SvgStyle Background;
  Background.Fill = "#ffffff";
  addRect(0.0, 0.0, Width, Height, Background);
}

void SvgDocument::addRect(double X, double Y, double W, double H,
                          const SvgStyle &Style) {
  Elements.push_back("<rect x=\"" + formatNumber(X) + "\" y=\"" +
                     formatNumber(Y) + "\" width=\"" + formatNumber(W) +
                     "\" height=\"" + formatNumber(H) + "\"" +
                     styleAttrs(Style) + "/>");
}

void SvgDocument::addLine(double X1, double Y1, double X2, double Y2,
                          const SvgStyle &Style) {
  Elements.push_back("<line x1=\"" + formatNumber(X1) + "\" y1=\"" +
                     formatNumber(Y1) + "\" x2=\"" + formatNumber(X2) +
                     "\" y2=\"" + formatNumber(Y2) + "\"" +
                     styleAttrs(Style) + "/>");
}

void SvgDocument::addPolyline(
    const std::vector<std::pair<double, double>> &Points,
    const SvgStyle &Style) {
  if (Points.empty())
    return;
  std::string Attr = "<polyline points=\"";
  for (size_t I = 0; I < Points.size(); ++I) {
    if (I)
      Attr += ' ';
    Attr += formatNumber(Points[I].first) + "," +
            formatNumber(Points[I].second);
  }
  Attr += "\"" + styleAttrs(Style) + "/>";
  Elements.push_back(std::move(Attr));
}

void SvgDocument::addCircle(double X, double Y, double R,
                            const SvgStyle &Style) {
  Elements.push_back("<circle cx=\"" + formatNumber(X) + "\" cy=\"" +
                     formatNumber(Y) + "\" r=\"" + formatNumber(R) +
                     "\"" + styleAttrs(Style) + "/>");
}

void SvgDocument::addText(double X, double Y, const std::string &Text,
                          double Size, SvgTextAnchorKind Anchor,
                          const std::string &Color) {
  const char *AnchorName = "start";
  if (Anchor == SvgTextAnchorKind::Middle)
    AnchorName = "middle";
  else if (Anchor == SvgTextAnchorKind::End)
    AnchorName = "end";
  Elements.push_back(
      "<text x=\"" + formatNumber(X) + "\" y=\"" + formatNumber(Y) +
      "\" font-family=\"sans-serif\" font-size=\"" + formatNumber(Size) +
      "\" text-anchor=\"" + AnchorName + "\" fill=\"" + Color + "\">" +
      svgEscape(Text) + "</text>");
}

std::string SvgDocument::str() const {
  std::string Out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         formatNumber(Width) + "\" height=\"" + formatNumber(Height) +
         "\" viewBox=\"0 0 " + formatNumber(Width) + " " +
         formatNumber(Height) + "\">\n";
  for (const std::string &Element : Elements) {
    Out += Element;
    Out += '\n';
  }
  Out += "</svg>\n";
  return Out;
}

bool SvgDocument::write(const std::string &Path) const {
  // archlint-allow(file-io): user-facing artifact writer (chart/CSV
  // output), not engine state; the snapshot format stays in StateCodec.
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  const std::string Content = str();
  const size_t Written =
      std::fwrite(Content.data(), 1, Content.size(), Out);
  std::fclose(Out);
  return Written == Content.size();
}
