//===-- examples/tradeoff_explorer.cpp - Cost/time policy explorer --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores the economic policy space of Section 6 on the public API:
/// sweeps the budget scaling factor rho in S = rho*C*t*N and reports the
/// cost/time frontier of AMP-scheduled batches for both optimization
/// tasks. "Variation of rho allows to obtain flexible distribution
/// schedules on different scheduling periods" — this example shows the
/// knob in action.
///
/// Run: build/examples/tradeoff_explorer [--iterations=N] [--seed=S]
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("tradeoff_explorer",
                 "sweep rho and compare cost/time trade-offs");
  const int64_t &Iterations =
      Args.addInt("iterations", 400, "simulated iterations per point");
  const int64_t &Seed = Args.addInt("seed", 7, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  const double Rhos[] = {0.6, 0.7, 0.8, 0.9, 1.0};

  for (const bool CostTask : {false, true}) {
    std::printf("=== %s minimization, AMP budget S = rho*C*t*N ===\n",
                CostTask ? "cost" : "time");
    TablePrinter Table;
    Table.addColumn("rho");
    Table.addColumn("counted");
    Table.addColumn("AMP time");
    Table.addColumn("AMP cost");
    Table.addColumn("ALP time");
    Table.addColumn("ALP cost");
    Table.addColumn("alts/job AMP");

    for (const double Rho : Rhos) {
      ExperimentConfig Cfg;
      Cfg.Iterations = Iterations;
      Cfg.Seed = static_cast<uint64_t>(Seed);
      Cfg.Task = CostTask ? OptimizationTaskKind::MinimizeCost
                          : OptimizationTaskKind::MinimizeTime;
      Cfg.Jobs.BudgetFactor = Rho;
      const ExperimentResult R = PairedExperiment(Cfg).run();

      Table.beginRow();
      Table.addCell(Rho, 2);
      Table.addCell(static_cast<long long>(R.CountedIterations));
      Table.addCell(R.Amp.JobTime.mean(), 2);
      Table.addCell(R.Amp.JobCost.mean(), 2);
      Table.addCell(R.Alp.JobTime.mean(), 2);
      Table.addCell(R.Alp.JobCost.mean(), 2);
      Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
    }
    Table.print(stdout);
    std::printf("\n");
  }

  std::printf("reading: shrinking rho narrows AMP's budget towards "
              "ALP-like behaviour — fewer alternatives, cheaper but "
              "slower schedules.\n");
  return 0;
}
