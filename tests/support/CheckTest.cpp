//===-- tests/support/CheckTest.cpp - Contract-check macros ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Death tests for ECOSCHED_CHECK / ECOSCHED_DCHECK: the failure report
// must carry the failing expression, the source location, and the
// formatted operand values - that diagnostic quality is the reason the
// macros exist, so it is pinned here.
//
//===----------------------------------------------------------------------===//

#include "support/Check.h"

#include <gtest/gtest.h>

namespace {

using ecosched::support::formatCheckMessage;
using ecosched::support::formatMessage;

TEST(FormatCheckMessage, SubstitutesMarkersInOrder) {
  EXPECT_EQ(formatCheckMessage("a={} b={}", {"1", "2"}), "a=1 b=2");
}

TEST(FormatCheckMessage, NoMarkersNoValues) {
  EXPECT_EQ(formatCheckMessage("plain message", {}), "plain message");
}

TEST(FormatCheckMessage, SurplusMarkersStayVerbatim) {
  EXPECT_EQ(formatCheckMessage("a={} b={}", {"1"}), "a=1 b={}");
}

TEST(FormatCheckMessage, SurplusValuesAreAppended) {
  EXPECT_EQ(formatCheckMessage("a={}", {"1", "2", "3"}),
            "a=1 [extra: 2 3]");
}

TEST(FormatMessage, RendersMixedOperandTypes) {
  EXPECT_EQ(formatMessage("n={} s={} b={}", 42, "abc", true),
            "n=42 s=abc b=true");
}

TEST(FormatMessage, DoublesRoundTrip) {
  // 17 significant digits: 0.1 must expose its binary representation
  // instead of being prettified, so epsilon-level disagreements between
  // two printed operands remain visible.
  EXPECT_EQ(formatMessage("x={}", 0.1), "x=0.10000000000000001");
  EXPECT_EQ(formatMessage("x={}", 1.0), "x=1");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  ECOSCHED_CHECK(1 + 1 == 2, "arithmetic broke");
  SUCCEED();
}

TEST(CheckDeathTest, FailureReportCarriesExpression) {
  const int Lhs = 3, Rhs = 2;
  EXPECT_DEATH(ECOSCHED_CHECK(Lhs < Rhs, "unused"),
               "expression: Lhs < Rhs");
}

TEST(CheckDeathTest, FailureReportCarriesLocation) {
  EXPECT_DEATH(ECOSCHED_CHECK(false, "location test"), "CheckTest\\.cpp");
}

TEST(CheckDeathTest, FailureReportCarriesFormattedOperands) {
  const double Budget = 10.5;
  const double Total = 12.25;
  EXPECT_DEATH(ECOSCHED_CHECK(Total <= Budget,
                              "total {} exceeds budget {}", Total, Budget),
               "message:    total 12.25 exceeds budget 10.5");
}

TEST(CheckDeathTest, ConditionEvaluatedExactlyOnce) {
  int Calls = 0;
  const auto Bump = [&Calls] {
    ++Calls;
    return true;
  };
  ECOSCHED_CHECK(Bump(), "side effect must run once");
  EXPECT_EQ(Calls, 1);
}

#if ECOSCHED_ENABLE_DCHECKS
TEST(CheckDeathTest, DcheckFiresWhenEnabled) {
  EXPECT_DEATH(ECOSCHED_DCHECK(false, "dcheck message {}", 7),
               "dcheck message 7");
}
#else
TEST(CheckDeathTest, DcheckCompiledOutWhenDisabled) {
  int Calls = 0;
  ECOSCHED_DCHECK((++Calls, false), "never evaluated");
  EXPECT_EQ(Calls, 0);
}
#endif

} // namespace
