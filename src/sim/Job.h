//===-- sim/Job.h - Jobs, resource requests, batches ----------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A job is an independent parallel application whose resource request
/// (Section 3) asks for N concurrent slots for a task of volume V, with
/// a minimum node performance P and a maximum unit price C. Jobs of one
/// scheduling iteration form a batch, ordered by priority.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_JOB_H
#define ECOSCHED_SIM_JOB_H

#include "support/Check.h"
#include "support/Units.h"

#include <limits>
#include <vector>

namespace ecosched {

/// Determines the AMP job budget S (Section 3 / Section 6).
enum class BudgetPolicyKind {
  /// S = rho * C * N * (V / Pmin): the paper's S = C*t*N with t equal to
  /// the reserved span (worst-case runtime at minimum performance).
  SpanBased,
  /// S = rho * C * N * V: t taken as the etalon volume.
  VolumeBased,
};

/// The user's resource request for one job.
struct ResourceRequest {
  /// Number of concurrent slots to co-allocate (N).
  int NodeCount = 1;
  /// Computation volume in etalon time units: runtime on a node of
  /// performance P is Volume / P.
  double Volume = 1.0;
  /// Minimum admissible node performance rate (P).
  double MinPerformance = 1.0;
  /// Maximum admissible price per time unit of an individual slot (C).
  /// ALP enforces this per slot; AMP converts it into the job budget.
  double MaxUnitPrice = 0.0;
  /// Section 6 budget scaling factor rho in (0, 1]; 1 reproduces the
  /// paper's S = C*t*N.
  double BudgetFactor = 1.0;
  /// How the AMP budget is derived from the request.
  BudgetPolicyKind BudgetPolicy = BudgetPolicyKind::SpanBased;
  /// Latest completion time: every task of the window must finish by
  /// this time (deadline-constrained economic requests after [6]).
  /// Infinity (the default) disables the constraint.
  double Deadline = std::numeric_limits<double>::infinity();

  /// Latest completion time as a typed instant.
  TimePoint deadline() const { return TimePoint(Deadline); }

  /// Maximum admissible slot price as a typed rate.
  Price priceCap() const { return Price(MaxUnitPrice); }

  /// Worst admissible runtime: the reservation span t of the request.
  double maxRuntime() const {
    ECOSCHED_CHECK(MinPerformance > 0.0,
                   "minimum performance must be positive, got {}",
                   MinPerformance);
    return Volume / MinPerformance;
  }

  /// The AMP budget S for this request as a typed amount.
  Money budget() const {
    const double Span =
        BudgetPolicy == BudgetPolicyKind::SpanBased ? maxRuntime() : Volume;
    return Money(BudgetFactor * MaxUnitPrice * static_cast<double>(NodeCount) *
                 Span);
  }
};

/// One job of a batch.
struct Job {
  /// Stable identifier within the experiment.
  int Id = -1;
  /// The job's resource request.
  ResourceRequest Request;
};

/// A batch of independent jobs, ordered by decreasing priority: the
/// alternative search serves index 0 first (Section 4's example gives
/// Job 1 the highest priority).
using Batch = std::vector<Job>;

} // namespace ecosched

#endif // ECOSCHED_SIM_JOB_H
