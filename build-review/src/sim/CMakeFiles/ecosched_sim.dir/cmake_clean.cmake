file(REMOVE_RECURSE
  "CMakeFiles/ecosched_sim.dir/ComputingDomain.cpp.o"
  "CMakeFiles/ecosched_sim.dir/ComputingDomain.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/GanttChart.cpp.o"
  "CMakeFiles/ecosched_sim.dir/GanttChart.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/JobGenerator.cpp.o"
  "CMakeFiles/ecosched_sim.dir/JobGenerator.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/PaperExample.cpp.o"
  "CMakeFiles/ecosched_sim.dir/PaperExample.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/SlotGenerator.cpp.o"
  "CMakeFiles/ecosched_sim.dir/SlotGenerator.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/SlotList.cpp.o"
  "CMakeFiles/ecosched_sim.dir/SlotList.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/TraceIO.cpp.o"
  "CMakeFiles/ecosched_sim.dir/TraceIO.cpp.o.d"
  "CMakeFiles/ecosched_sim.dir/Window.cpp.o"
  "CMakeFiles/ecosched_sim.dir/Window.cpp.o.d"
  "libecosched_sim.a"
  "libecosched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecosched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
