//===-- sim/JobGenerator.h - Section 5 job batch generator ---------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates job batches with the Section 5 parameter ranges. The paper
/// does not publish how the per-job price cap C is drawn; we derive it
/// from the minimum required performance as
///   C = PriceFactor * PriceBase^MinPerformance,
/// i.e. the user accepts the top market rate of the slowest admissible
/// node class (see DESIGN.md, "Model conventions").
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_JOBGENERATOR_H
#define ECOSCHED_SIM_JOBGENERATOR_H

#include "sim/Job.h"
#include "support/Random.h"

namespace ecosched {

/// Parameters of the Section 5 job batch; uniform draws throughout.
struct JobGeneratorConfig {
  /// Number of jobs in the batch: [3, 7].
  int MinJobs = 3;
  int MaxJobs = 7;
  /// Number of computational nodes to find: [1, 6].
  int MinNodes = 1;
  int MaxNodes = 6;
  /// Job length (complexity) in etalon time units: [50, 150].
  double MinVolume = 50.0;
  double MaxVolume = 150.0;
  /// Minimum required node performance: [1, 2].
  double MinPerformanceLo = 1.0;
  double MinPerformanceHi = 2.0;
  /// Price cap derivation: C = PriceFactor * PriceBase^MinPerformance.
  /// The default was calibrated against the paper's published scalars
  /// (alternatives-per-job ratio and counted-iteration rate) with
  /// bench/ablation_price_factor; see EXPERIMENTS.md.
  double PriceFactor = 1.1;
  double PriceBase = 1.7;
  /// Section 6 budget scaling rho applied to every generated request.
  double BudgetFactor = 1.0;
  /// AMP budget policy applied to every generated request.
  BudgetPolicyKind BudgetPolicy = BudgetPolicyKind::SpanBased;
};

/// Produces priority-ordered job batches.
class JobGenerator {
public:
  explicit JobGenerator(JobGeneratorConfig Config = JobGeneratorConfig())
      : Config(Config) {}

  /// Generates one batch, consuming randomness from \p Rng. Job ids are
  /// assigned from \p FirstJobId upwards.
  Batch generate(RandomGenerator &Rng, int FirstJobId = 0) const;

  const JobGeneratorConfig &config() const { return Config; }

private:
  JobGeneratorConfig Config;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_JOBGENERATOR_H
