
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ComputingDomain.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/ComputingDomain.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/ComputingDomain.cpp.o.d"
  "/root/repo/src/sim/GanttChart.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/GanttChart.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/GanttChart.cpp.o.d"
  "/root/repo/src/sim/JobGenerator.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/JobGenerator.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/JobGenerator.cpp.o.d"
  "/root/repo/src/sim/PaperExample.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/PaperExample.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/PaperExample.cpp.o.d"
  "/root/repo/src/sim/SlotGenerator.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/SlotGenerator.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/SlotGenerator.cpp.o.d"
  "/root/repo/src/sim/SlotList.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/SlotList.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/SlotList.cpp.o.d"
  "/root/repo/src/sim/TraceIO.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/TraceIO.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/TraceIO.cpp.o.d"
  "/root/repo/src/sim/Window.cpp" "src/sim/CMakeFiles/ecosched_sim.dir/Window.cpp.o" "gcc" "src/sim/CMakeFiles/ecosched_sim.dir/Window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
