# Empty compiler generated dependencies file for fig4_time_minimization.
# This may be replaced when dependencies are built.
