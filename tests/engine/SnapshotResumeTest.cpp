//===-- tests/engine/SnapshotResumeTest.cpp - Kill-and-resume gate --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-safe snapshot acceptance gate (docs/PERSISTENCE.md): a VO
/// killed at iteration k and resumed from its snapshot in a fresh
/// facade must reproduce the uninterrupted run's observable trace —
/// IterationReports, CompletedJobs, total income, SearchStats —
/// bitwise, across ALP/AMP/backfill, pool sizes {1, 2, 8}, adversarial
/// schedule-fuzz seeds, and ReuseFilter on/off. Corrupt, truncated,
/// and version-mismatched snapshots must be rejected with a diagnostic,
/// never an abort.
///
//===----------------------------------------------------------------------===//

#include "engine/MultiVoDriver.h"
#include "engine/VirtualOrganization.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/DpOptimizer.h"
#include "support/StateCodec.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

using namespace ecosched;

namespace {

constexpr size_t TotalIterations = 8;

enum class AlgoKind { Alp, Amp, Backfill };

const char *algoName(AlgoKind K) {
  switch (K) {
  case AlgoKind::Alp:
    return "ALP";
  case AlgoKind::Amp:
    return "AMP";
  case AlgoKind::Backfill:
    return "backfill";
  }
  return "?";
}

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0);
  D.addNode(1.5, 2.0);
  // Priced above every job's per-slot cap: ALP views exclude this
  // node's slots while AMP's include them, which the algorithm-swap
  // rejection test below relies on.
  D.addNode(2.0, 3.0);
  return D;
}

/// Deterministic per-iteration arrivals: a pure function of the
/// iteration index, so the uninterrupted and the resumed run feed both
/// VOs identical submissions without sharing any generator state.
Batch makeArrivals(size_t Iteration) {
  Batch B;
  const size_t Count = 1 + Iteration % 2;
  for (size_t K = 0; K < Count; ++K) {
    Job J;
    J.Id = static_cast<int>(100 * Iteration + K);
    J.Request.NodeCount = 1 + static_cast<int>((Iteration + K) % 2);
    J.Request.Volume = 40.0 + 17.0 * static_cast<double>(Iteration) +
                       5.0 * static_cast<double>(K);
    J.Request.MinPerformance = 1.0;
    J.Request.MaxUnitPrice = 2.0 + 0.25 * static_cast<double>(K);
    if (Iteration % 3 == 2)
      J.Request.BudgetPolicy = BudgetPolicyKind::VolumeBased;
    if (K == 1) // A finite deadline exercises the scan-horizon cutoff.
      J.Request.Deadline = 400.0 + 150.0 * static_cast<double>(Iteration);
    B.push_back(J);
  }
  return B;
}

/// Everything one run produces, for exact comparison.
struct RunTrace {
  std::vector<VirtualOrganization::IterationReport> Reports;
  std::vector<CompletedJob> Completed;
  double Income = 0.0;
  SearchStats FilterStats;
};

void expectSameStats(const SearchStats &A, const SearchStats &B) {
  EXPECT_EQ(A.SlotsExamined, B.SlotsExamined);
  EXPECT_EQ(A.GroupPeak, B.GroupPeak);
  EXPECT_EQ(A.GroupOperations, B.GroupOperations);
  EXPECT_EQ(A.SpeculationRecomputes, B.SpeculationRecomputes);
  EXPECT_EQ(A.FilterViewReuses, B.FilterViewReuses);
  EXPECT_EQ(A.FilterViewRebuilds, B.FilterViewRebuilds);
  EXPECT_EQ(A.FilterDeltaOps, B.FilterDeltaOps);
}

void expectSameTrace(const RunTrace &A, const RunTrace &B) {
  ASSERT_EQ(A.Reports.size(), B.Reports.size());
  for (size_t I = 0; I < A.Reports.size(); ++I) {
    SCOPED_TRACE("iteration " + std::to_string(I));
    const VirtualOrganization::IterationReport &X = A.Reports[I];
    const VirtualOrganization::IterationReport &Y = B.Reports[I];
    ASSERT_EQ(X.Now, Y.Now);
    ASSERT_EQ(X.QueueLength, Y.QueueLength);
    ASSERT_EQ(X.Committed, Y.Committed);
    ASSERT_EQ(X.Dropped, Y.Dropped);
    ASSERT_EQ(X.Outcome.Scheduled.size(), Y.Outcome.Scheduled.size());
    for (size_t S = 0; S < X.Outcome.Scheduled.size(); ++S) {
      const ScheduledJob &P = X.Outcome.Scheduled[S];
      const ScheduledJob &Q = Y.Outcome.Scheduled[S];
      ASSERT_EQ(P.JobId, Q.JobId);
      ASSERT_EQ(P.BatchIndex, Q.BatchIndex);
      ASSERT_EQ(P.AlternativeIndex, Q.AlternativeIndex);
      ASSERT_EQ(P.W.startTime().value(), Q.W.startTime().value());
      ASSERT_EQ(P.W.endTime().value(), Q.W.endTime().value());
      ASSERT_EQ(P.W.totalCost().value(), Q.W.totalCost().value());
    }
    ASSERT_EQ(X.Outcome.Postponed, Y.Outcome.Postponed);
    expectSameStats(X.Outcome.Stats, Y.Outcome.Stats);
  }
  ASSERT_EQ(A.Completed.size(), B.Completed.size());
  for (size_t C = 0; C < A.Completed.size(); ++C) {
    ASSERT_EQ(A.Completed[C].JobId, B.Completed[C].JobId);
    ASSERT_EQ(A.Completed[C].StartTime, B.Completed[C].StartTime);
    ASSERT_EQ(A.Completed[C].EndTime, B.Completed[C].EndTime);
    ASSERT_EQ(A.Completed[C].Cost, B.Completed[C].Cost);
    ASSERT_EQ(A.Completed[C].Attempts, B.Completed[C].Attempts);
  }
  ASSERT_EQ(A.Income, B.Income);
  expectSameStats(A.FilterStats, B.FilterStats);
}

/// One scheduler stack: algorithm + optimizer + metascheduler + pool,
/// kept alive together because the scheduler holds references.
struct SchedulerStack {
  explicit SchedulerStack(AlgoKind Kind, size_t Threads, uint64_t FuzzSeed)
      : Pool(Threads,
             ThreadPool::ScheduleFuzz{/*Enabled=*/FuzzSeed != 0, FuzzSeed}) {
    switch (Kind) {
    case AlgoKind::Alp:
      Algo = &Alp;
      break;
    case AlgoKind::Amp:
      Algo = &Amp;
      break;
    case AlgoKind::Backfill:
      Algo = &Backfill;
      break;
    }
    Metascheduler::Config Cfg;
    Cfg.Search.Pool = Threads > 1 ? &Pool : nullptr;
    Scheduler.emplace(*Algo, Dp, Cfg);
  }

  AlpSearch Alp;
  AmpSearch Amp;
  BackfillSearch Backfill;
  DpOptimizer Dp;
  ThreadPool Pool;
  const SlotSearchAlgorithm *Algo = nullptr;
  std::optional<Metascheduler> Scheduler;
};

VirtualOrganization::Config makeVoConfig(bool ReuseFilter) {
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 100.0;
  Cfg.HorizonLength = 500.0;
  Cfg.MaxAttempts = 3; // Exercise drops and attempt accounting.
  Cfg.ReuseFilter = ReuseFilter;
  return Cfg;
}

/// Runs the fixed scenario straight through, or — when \p SnapshotAt is
/// set — snapshots at that iteration, loads the snapshot into a fresh
/// VO ("the restarted process"), and finishes the run there. The trace
/// concatenates both halves; \p SnapshotText receives the snapshot for
/// the fixed-point and rejection tests.
RunTrace runScenario(AlgoKind Kind, size_t Threads, uint64_t FuzzSeed,
                     bool ReuseFilter,
                     std::optional<size_t> SnapshotAt = std::nullopt,
                     std::string *SnapshotText = nullptr) {
  SchedulerStack Stack(Kind, Threads, FuzzSeed);
  RunTrace Trace;

  auto First = std::make_unique<VirtualOrganization>(
      makeDomain(), *Stack.Scheduler, makeVoConfig(ReuseFilter));
  VirtualOrganization *Vo = First.get();
  std::unique_ptr<VirtualOrganization> Resumed;

  for (size_t Iter = 0; Iter < TotalIterations; ++Iter) {
    if (SnapshotAt && Iter == *SnapshotAt) {
      const std::string Text = Vo->saveSnapshotText();
      if (SnapshotText)
        *SnapshotText = Text;
      // A fresh facade over an empty domain, as a restarted process
      // would build, restored purely from the snapshot text.
      Resumed = std::make_unique<VirtualOrganization>(
          ComputingDomain(), *Stack.Scheduler,
          VirtualOrganization::Config());
      std::string Error;
      EXPECT_TRUE(Resumed->loadSnapshotText(Text, &Error)) << Error;
      // Re-serializing the restored state must reproduce the snapshot
      // byte for byte: save → load → save is a fixed point.
      EXPECT_EQ(Resumed->saveSnapshotText(), Text);
      First.reset(); // The "killed" process is gone.
      Vo = Resumed.get();
    }
    for (const Job &J : makeArrivals(Iter))
      Vo->submit(J);
    Trace.Reports.push_back(Vo->runIteration());
  }
  Trace.Completed = Vo->completed();
  Trace.Income = Vo->totalIncome().value();
  Trace.FilterStats = Vo->filterStats();
  return Trace;
}

TEST(SnapshotResumeTest, KillAtEveryIterationReproducesTheStraightRun) {
  const RunTrace Straight =
      runScenario(AlgoKind::Amp, /*Threads=*/1, /*FuzzSeed=*/0,
                  /*ReuseFilter=*/true);
  for (size_t K = 1; K < TotalIterations; ++K) {
    SCOPED_TRACE("kill at iteration " + std::to_string(K));
    expectSameTrace(Straight,
                    runScenario(AlgoKind::Amp, 1, 0, true, K));
  }
}

TEST(SnapshotResumeTest, MatrixAlgorithmsPoolsFilterAndFuzzSeeds) {
  // ALP/AMP/backfill × pools {1, 2, 8} × ReuseFilter {on, off} × 4
  // schedule-fuzz seeds (seed 0 = fuzz off on the single-thread leg).
  const uint64_t FuzzSeeds[] = {0, 17, 91, 4242};
  const size_t Kill = 3;
  for (const AlgoKind Kind :
       {AlgoKind::Alp, AlgoKind::Amp, AlgoKind::Backfill}) {
    for (const size_t Threads : {size_t(1), size_t(2), size_t(8)}) {
      for (const bool Reuse : {true, false}) {
        for (const uint64_t Seed : FuzzSeeds) {
          SCOPED_TRACE(std::string(algoName(Kind)) + " threads=" +
                       std::to_string(Threads) +
                       (Reuse ? " reuse" : " rebuild") + " fuzz-seed=" +
                       std::to_string(Seed));
          expectSameTrace(runScenario(Kind, Threads, Seed, Reuse),
                          runScenario(Kind, Threads, Seed, Reuse, Kill));
        }
      }
    }
  }
}

TEST(SnapshotResumeTest, RngStreamStateRoundTrips) {
  RandomGenerator Rng(987654321);
  for (int I = 0; I < 1000; ++I)
    Rng.next(); // Advance deep into the stream.
  StateWriter W;
  Rng.saveState(W);
  RandomGenerator Restored(1); // Different seed; must not matter.
  StateReader R(W.text());
  ASSERT_TRUE(Restored.loadState(R)) << R.error();
  for (int I = 0; I < 1000; ++I) {
    ASSERT_EQ(Rng.next(), Restored.next());
    ASSERT_EQ(Rng.nextUnit(), Restored.nextUnit());
  }

  SplitMix64 A(42);
  A.next();
  SplitMix64 B(0);
  B.setState(A.state());
  EXPECT_EQ(A.next(), B.next());
}

TEST(SnapshotResumeTest, TruncatedSnapshotsAreRejectedAtEveryLine) {
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, /*SnapshotAt=*/4, &Text);
  ASSERT_FALSE(Text.empty());

  SchedulerStack Stack(AlgoKind::Amp, 1, 0);
  // Cut the snapshot after every line; no strict prefix may load, and
  // none may abort. (The final cut reproduces the full text — skip it.)
  size_t Cut = Text.find('\n');
  while (Cut != std::string::npos && Cut + 1 < Text.size()) {
    VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
    std::string Error;
    EXPECT_FALSE(Vo.loadSnapshotText(Text.substr(0, Cut + 1), &Error));
    EXPECT_FALSE(Error.empty());
    Cut = Text.find('\n', Cut + 1);
  }
}

TEST(SnapshotResumeTest, VersionMismatchIsRejected) {
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, 4, &Text);
  const size_t V = Text.find("v1");
  ASSERT_NE(V, std::string::npos);
  std::string Future = Text;
  Future[V + 1] = '9';
  SchedulerStack Stack(AlgoKind::Amp, 1, 0);
  VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
  std::string Error;
  EXPECT_FALSE(Vo.loadSnapshotText(Future, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(SnapshotResumeTest, SingleByteCorruptionsNeverAbort) {
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, 4, &Text);
  SchedulerStack Stack(AlgoKind::Amp, 1, 0);
  // Flip a byte at a spread of positions. Some corruptions are benign
  // (a changed node name still parses); the contract under test is
  // graceful handling — a clean bool either way, never a contract-
  // check abort, and a diagnostic whenever the load fails.
  for (size_t Pos = 0; Pos < Text.size(); Pos += 7) {
    std::string Corrupt = Text;
    Corrupt[Pos] = Corrupt[Pos] == 'x' ? 'y' : 'x';
    VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
    std::string Error;
    const bool Loaded = Vo.loadSnapshotText(Corrupt, &Error);
    if (!Loaded) {
      EXPECT_FALSE(Error.empty()) << "silent failure at byte " << Pos;
    }
  }
}

TEST(SnapshotResumeTest, FilterDigestRejectsAlgorithmSwap) {
  // Snapshot an AMP-filtered VO whose views include the node priced
  // above the jobs' per-slot cap, then load it into an ALP-bound VO:
  // ALP's filteredCopy excludes that node, so the rebuilt views cannot
  // match the serialized digest.
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, 4, &Text);
  ASSERT_NE(Text.find("section filter"), std::string::npos)
      << "scenario did not engage the persistent filter";
  SchedulerStack Stack(AlgoKind::Alp, 1, 0);
  VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
  std::string Error;
  EXPECT_FALSE(Vo.loadSnapshotText(Text, &Error));
  EXPECT_NE(Error.find("digest"), std::string::npos) << Error;
}

TEST(SnapshotResumeTest, TamperedDigestIsRejected) {
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, 4, &Text);
  const size_t D = Text.find("u view-digest ");
  ASSERT_NE(D, std::string::npos);
  std::string Tampered = Text;
  const size_t Digit = D + std::string("u view-digest ").size();
  Tampered[Digit] = Tampered[Digit] == '1' ? '2' : '1';
  SchedulerStack Stack(AlgoKind::Amp, 1, 0);
  VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
  std::string Error;
  EXPECT_FALSE(Vo.loadSnapshotText(Tampered, &Error));
  EXPECT_NE(Error.find("digest"), std::string::npos) << Error;
}

TEST(SnapshotResumeTest, TrailingContentIsRejected) {
  std::string Text;
  runScenario(AlgoKind::Amp, 1, 0, true, 4, &Text);
  SchedulerStack Stack(AlgoKind::Amp, 1, 0);
  VirtualOrganization Vo(ComputingDomain(), *Stack.Scheduler);
  std::string Error;
  EXPECT_FALSE(Vo.loadSnapshotText(Text + "i stray 1\n", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(SnapshotResumeTest, MultiVoDriverSnapshotDirectoryRoundTrips) {
  char Template[] = "/tmp/ecosched-snapshots-XXXXXX";
  ASSERT_NE(::mkdtemp(Template), nullptr);
  const std::string Dir = std::string(Template) + "/tenants";

  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const auto Arrivals = [](size_t VoIndex, size_t Iteration,
                           RandomGenerator &Rng) {
    Batch B;
    const int64_t Count = Rng.uniformInt(0, 2);
    for (int64_t K = 0; K < Count; ++K) {
      Job J;
      J.Id = static_cast<int>(VoIndex * 1000 + Iteration * 10 +
                              static_cast<size_t>(K));
      J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 2));
      J.Request.Volume = Rng.uniformReal(40.0, 120.0);
      J.Request.MinPerformance = 1.0;
      J.Request.MaxUnitPrice = Rng.uniformReal(1.5, 2.5);
      B.push_back(J);
    }
    return B;
  };

  const auto registerTenants = [&](MultiVoDriver &Driver) {
    VirtualOrganization::Config VoCfg;
    VoCfg.IterationPeriod = 100.0;
    VoCfg.HorizonLength = 500.0;
    for (size_t I = 0; I < 3; ++I)
      Driver.addTenant(makeDomain(), Scheduler, VoCfg, /*Seed=*/500 + I);
  };

  MultiVoDriver Original;
  registerTenants(Original);
  Original.run(4, Arrivals);
  std::string Error;
  ASSERT_TRUE(Original.saveSnapshots(Dir, &Error)) << Error;

  MultiVoDriver Restored;
  registerTenants(Restored);
  ASSERT_TRUE(Restored.loadSnapshots(Dir, &Error)) << Error;

  // Both drivers continue; the restored one must track the original
  // bitwise — including the per-tenant RNG streams driving arrivals.
  for (size_t Round = 0; Round < 4; ++Round) {
    const auto A = Original.runIteration(Arrivals);
    const auto B = Restored.runIteration(Arrivals);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I) {
      ASSERT_EQ(A[I].Arrivals, B[I].Arrivals);
      ASSERT_EQ(A[I].Report.Now, B[I].Report.Now);
      ASSERT_EQ(A[I].Report.Committed, B[I].Report.Committed);
    }
  }
  ASSERT_EQ(Original.totalIncome().value(), Restored.totalIncome().value());
  ASSERT_EQ(Original.totalCompleted(), Restored.totalCompleted());

  // A mismatched tenant count is a clean failure, not an abort.
  MultiVoDriver TooFew;
  VirtualOrganization::Config VoCfg;
  TooFew.addTenant(makeDomain(), Scheduler, VoCfg, 1);
  std::string Unused;
  EXPECT_TRUE(TooFew.loadSnapshots(Dir, &Unused)); // Loads tenant_0 only.
  MultiVoDriver Empty;
  EXPECT_TRUE(Empty.loadSnapshots(Dir, &Unused)); // Nothing to load.
}

} // namespace
