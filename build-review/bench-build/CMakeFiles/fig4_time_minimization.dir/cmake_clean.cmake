file(REMOVE_RECURSE
  "../bench/fig4_time_minimization"
  "../bench/fig4_time_minimization.pdb"
  "CMakeFiles/fig4_time_minimization.dir/fig4_time_minimization.cpp.o"
  "CMakeFiles/fig4_time_minimization.dir/fig4_time_minimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_time_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
