//===-- sim/GanttChart.h - ASCII occupancy charts -------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASCII Gantt chart renderer used by the Fig. 2 / Fig. 3 reproductions
/// and the examples: one row per node, characters bucketed over the
/// horizon, with a time axis underneath.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_GANTTCHART_H
#define ECOSCHED_SIM_GANTTCHART_H

#include "sim/ComputingDomain.h"
#include "sim/Window.h"
#include "support/Svg.h"

#include <string>
#include <vector>

namespace ecosched {

/// Row-oriented ASCII chart over a fixed time horizon.
class GanttChart {
public:
  /// Creates a chart covering [\p HorizonStart, \p HorizonEnd) rendered
  /// into \p Columns character cells per row.
  GanttChart(TimePoint HorizonStart, TimePoint HorizonEnd, int Columns = 72);

  /// Appends an empty row labelled \p Label; returns its index.
  size_t addRow(const std::string &Label);

  /// Paints [\p Start, \p End) of row \p Row with \p Fill. Cells already
  /// painted with a different character are overwritten.
  void fill(size_t Row, TimePoint Start, TimePoint End, char Fill);

  /// Renders all rows plus a time axis.
  std::string render() const;

private:
  size_t columnFor(TimePoint Time) const;

  double HorizonStart;
  double HorizonEnd;
  int Columns;
  std::vector<std::string> Labels;
  std::vector<std::string> Cells;
};

/// Renders \p Domain occupancy over the horizon: local tasks are painted
/// with '#', external reservations with the letter cycle 'A'..'Z' keyed
/// by job id, vacancy with '.'.
std::string renderDomainChart(const ComputingDomain &Domain,
                              TimePoint HorizonStart, TimePoint HorizonEnd,
                              int Columns = 72);

/// An assigned window to overlay on a chart.
struct ChartWindow {
  const Window *W = nullptr;
  char Fill = 'A';
};

/// Renders \p Domain with the given windows overlaid.
std::string renderDomainChart(const ComputingDomain &Domain,
                              const std::vector<ChartWindow> &Windows,
                              TimePoint HorizonStart, TimePoint HorizonEnd,
                              int Columns = 72);

/// Renders \p Domain as an SVG Gantt chart (one lane per node): local
/// tasks in grey, external reservations colored by job, overlay
/// windows colored by their position in \p Windows. Used by the
/// Fig. 2/3 benches to emit the figures as image files.
SvgDocument renderDomainSvg(const ComputingDomain &Domain,
                            const std::vector<ChartWindow> &Windows,
                            TimePoint HorizonStart, TimePoint HorizonEnd);

} // namespace ecosched

#endif // ECOSCHED_SIM_GANTTCHART_H
