
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/AlpSearchTest.cpp" "tests/CMakeFiles/core_tests.dir/core/AlpSearchTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/AlpSearchTest.cpp.o.d"
  "/root/repo/tests/core/AlternativeSearchTest.cpp" "tests/CMakeFiles/core_tests.dir/core/AlternativeSearchTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/AlternativeSearchTest.cpp.o.d"
  "/root/repo/tests/core/AmpSearchTest.cpp" "tests/CMakeFiles/core_tests.dir/core/AmpSearchTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/AmpSearchTest.cpp.o.d"
  "/root/repo/tests/core/BackfillSearchTest.cpp" "tests/CMakeFiles/core_tests.dir/core/BackfillSearchTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/BackfillSearchTest.cpp.o.d"
  "/root/repo/tests/core/BatchOrderingTest.cpp" "tests/CMakeFiles/core_tests.dir/core/BatchOrderingTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/BatchOrderingTest.cpp.o.d"
  "/root/repo/tests/core/BatchSearchTest.cpp" "tests/CMakeFiles/core_tests.dir/core/BatchSearchTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/BatchSearchTest.cpp.o.d"
  "/root/repo/tests/core/BicriteriaOptimizerTest.cpp" "tests/CMakeFiles/core_tests.dir/core/BicriteriaOptimizerTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/BicriteriaOptimizerTest.cpp.o.d"
  "/root/repo/tests/core/DeadlineTest.cpp" "tests/CMakeFiles/core_tests.dir/core/DeadlineTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/DeadlineTest.cpp.o.d"
  "/root/repo/tests/core/DynamicPricingTest.cpp" "tests/CMakeFiles/core_tests.dir/core/DynamicPricingTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/DynamicPricingTest.cpp.o.d"
  "/root/repo/tests/core/FailureInjectionTest.cpp" "tests/CMakeFiles/core_tests.dir/core/FailureInjectionTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/FailureInjectionTest.cpp.o.d"
  "/root/repo/tests/core/LimitsTest.cpp" "tests/CMakeFiles/core_tests.dir/core/LimitsTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/LimitsTest.cpp.o.d"
  "/root/repo/tests/core/MetaschedulerTest.cpp" "tests/CMakeFiles/core_tests.dir/core/MetaschedulerTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/MetaschedulerTest.cpp.o.d"
  "/root/repo/tests/core/OptimizerTest.cpp" "tests/CMakeFiles/core_tests.dir/core/OptimizerTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/OptimizerTest.cpp.o.d"
  "/root/repo/tests/core/StrategyTest.cpp" "tests/CMakeFiles/core_tests.dir/core/StrategyTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/StrategyTest.cpp.o.d"
  "/root/repo/tests/core/VirtualOrganizationTest.cpp" "tests/CMakeFiles/core_tests.dir/core/VirtualOrganizationTest.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/VirtualOrganizationTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ecosched_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
