//===-- core/SearchAlgorithm.cpp - Slot search interface ------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SearchAlgorithm.h"

using namespace ecosched;

// Virtual method anchor.
SlotSearchAlgorithm::~SlotSearchAlgorithm() = default;
