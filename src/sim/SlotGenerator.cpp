//===-- sim/SlotGenerator.cpp - Section 5 slot stream generator ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/SlotGenerator.h"

#include <cmath>
#include <vector>

using namespace ecosched;

SlotList SlotGenerator::generate(RandomGenerator &Rng) const {
  const int Count = static_cast<int>(
      Rng.uniformInt(Config.MinSlotCount, Config.MaxSlotCount));
  std::vector<Slot> Slots;
  Slots.reserve(static_cast<size_t>(Count));

  double Start = 0.0;
  for (int I = 0; I < Count; ++I) {
    if (I > 0 && !Rng.bernoulli(Config.SameStartProbability))
      Start += Rng.uniformReal(Config.MinStartGap, Config.MaxStartGap);

    const double Performance =
        Rng.uniformReal(Config.MinPerformance, Config.MaxPerformance);
    const double MeanPrice = std::pow(Config.PriceBase, Performance);
    const double Price =
        Rng.uniformReal(Config.PriceNoiseLo * MeanPrice,
                        Config.PriceNoiseHi * MeanPrice);
    const double Length =
        Rng.uniformReal(Config.MinLength, Config.MaxLength);

    Slots.emplace_back(/*NodeId=*/I, Performance, Price, Start,
                       Start + Length);
  }
  return SlotList(std::move(Slots));
}
