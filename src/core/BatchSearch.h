//===-- core/BatchSearch.h - Whole-batch one-pass co-allocation ----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated future work (Section 7): "the problem of slot
/// selection for the whole job batch at once and not for each job
/// consecutively", scheduling "on the fly" without a dedicated
/// optimization phase.
///
/// OnePassBatchScheduler makes a single synchronized forward scan of
/// the ordered slot list, maintaining one ALP/AMP-style working group
/// per *unplaced* job simultaneously. Whenever the newest slot lets
/// some job (served in priority order) complete a window, the window is
/// committed immediately: its members leave every other job's group and
/// the members' unused tails re-enter the scan as fresh slots. The scan
/// touches every original and remainder slot once, so the whole batch
/// is placed in O((m + k) * n) for m slots, k committed members, and n
/// jobs — no sweep repetition and no second phase.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_BATCHSEARCH_H
#define ECOSCHED_CORE_BATCHSEARCH_H

#include "core/SearchAlgorithm.h"

#include <vector>

namespace ecosched {

/// Result of a one-pass batch co-allocation.
struct BatchAssignment {
  /// Chosen window per job (parallel to the batch); empty optional for
  /// jobs the pass could not place.
  std::vector<std::optional<Window>> PerJob;
  /// Scan work counters (original + remainder slots examined).
  SearchStats Stats;

  /// Number of placed jobs.
  size_t placedCount() const {
    size_t Count = 0;
    for (const auto &W : PerJob)
      Count += W.has_value();
    return Count;
  }

  /// Latest end time across placed windows; time 0 when none placed.
  TimePoint makespan() const {
    double End = 0.0;
    for (const auto &W : PerJob)
      if (W)
        End = std::max(End, W->endTime().value());
    return TimePoint(End);
  }

  /// Total money cost across placed windows.
  Money totalCost() const {
    double Cost = 0.0;
    for (const auto &W : PerJob)
      if (W)
        Cost += W->totalCost().value();
    return Money(Cost);
  }
};

/// Single-scan whole-batch scheduler (future-work extension).
class OnePassBatchScheduler {
public:
  /// How slot prices are admitted, mirroring ALP vs AMP.
  enum class PriceModeKind {
    /// ALP-style: per-slot unit-price cap.
    PerSlotCap,
    /// AMP-style: per-job budget S = rho*C*t*N.
    JobBudget,
  };

  explicit OnePassBatchScheduler(
      PriceModeKind PriceMode = PriceModeKind::JobBudget)
      : PriceMode(PriceMode) {}

  /// Places the whole \p Jobs batch onto \p List in one forward scan.
  /// Jobs are served in batch (priority) order at every step; committed
  /// windows are pairwise disjoint in processor time.
  BatchAssignment assign(const SlotList &List, const Batch &Jobs) const;

private:
  PriceModeKind PriceMode;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_BATCHSEARCH_H
