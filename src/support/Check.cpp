//===-- support/Check.cpp - Runtime contract checks -----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace ecosched;

std::string
support::formatCheckMessage(const char *Fmt,
                            std::initializer_list<std::string> Values) {
  std::string Out;
  const std::string Format = Fmt;
  Out.reserve(Format.size());
  auto Value = Values.begin();
  size_t Pos = 0;
  while (Pos < Format.size()) {
    const size_t Marker = Format.find("{}", Pos);
    if (Marker == std::string::npos || Value == Values.end())
      break;
    Out.append(Format, Pos, Marker - Pos);
    Out += *Value++;
    Pos = Marker + 2;
  }
  Out.append(Format, Pos, std::string::npos);
  // Surplus values have no marker to land in; append them so the report
  // never silently drops an operand.
  if (Value != Values.end()) {
    Out += " [extra:";
    for (; Value != Values.end(); ++Value) {
      Out += ' ';
      Out += *Value;
    }
    Out += ']';
  }
  return Out;
}

void support::checkFailed(const char *File, long Line, const char *Expr,
                          const std::string &Message) {
  std::fprintf(stderr,
               "ECOSCHED_CHECK failed at %s:%ld\n"
               "  expression: %s\n"
               "  message:    %s\n",
               File, Line, Expr, Message.c_str());
  std::fflush(stderr);
  std::abort();
}
