//===-- engine/JobQueue.h - VO admission queue ---------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The external-job queue of the VO loop: admission, priority order,
/// per-job attempt accounting with a MaxAttempts drop policy, the
/// Section 6 budget-factor hook, and user cancellation. The queue knows
/// nothing about slots or reservations — it hands the metascheduler a
/// priority-ordered batch and takes back which batch indices were
/// placed.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_ENGINE_JOBQUEUE_H
#define ECOSCHED_ENGINE_JOBQUEUE_H

#include "sim/Job.h"

#include <deque>
#include <vector>

namespace ecosched {

class StateWriter;
class StateReader;

/// FIFO-with-priority admission queue with attempt accounting.
class JobQueue {
public:
  struct PendingJob {
    Job Spec;
    /// Failed scheduling iterations so far.
    int Attempts = 0;
  };

  /// \p MaxAttempts drops a job after that many failed iterations;
  /// 0 keeps postponed jobs queued forever.
  explicit JobQueue(int MaxAttempts = 0) : MaxAttempts(MaxAttempts) {}

  /// Admits an external job at the back of the queue.
  void submit(const Job &J) { Queue.push_back({J, /*Attempts=*/0}); }

  /// Re-admits a failure-cancelled job at the front (it already waited
  /// its turn) with its attempt count preserved.
  void resubmitFront(const Job &J, int Attempts) {
    Queue.push_front({J, Attempts});
  }

  size_t size() const { return Queue.size(); }
  bool empty() const { return Queue.empty(); }
  const PendingJob &at(size_t I) const { return Queue[I]; }

  /// The queued jobs in priority (queue) order as a scheduling batch;
  /// batch index I corresponds to queue position I until the next
  /// mutation.
  Batch batch() const;

  /// Removes the entries scheduled this iteration, identified by their
  /// batch indices (any order). Must be called before chargeAttempt().
  void removeScheduled(const std::vector<size_t> &BatchIndices);

  /// Charges one failed attempt to every still-queued job and drops the
  /// ones that exhausted MaxAttempts, recording their ids in dropped().
  /// \returns the number of jobs dropped by this call.
  size_t chargeAttempt();

  /// VO-policy hook (Section 6): sets the AMP budget factor of every
  /// queued job before the next iteration. \p Rho must be positive.
  void setBudgetFactor(double Rho);

  /// Removes every queued entry with \p JobId.
  /// \returns true if at least one entry was removed.
  bool cancel(int JobId);

  /// Ids of jobs dropped by the MaxAttempts policy, in drop order.
  const std::vector<int> &dropped() const { return DroppedIds; }

  int maxAttempts() const { return MaxAttempts; }

  /// Serializes the drop policy, every pending entry in queue order
  /// (spec plus attempt counter — resubmitFront ordering is part of the
  /// observable state), and the drop log (docs/PERSISTENCE.md).
  void saveState(StateWriter &W) const;

  /// Restores a queue written by saveState. Rejects out-of-domain job
  /// fields and negative attempt counters with a diagnostic on the
  /// reader; the queue is unchanged unless the load succeeds.
  bool loadState(StateReader &R);

private:
  int MaxAttempts;
  std::deque<PendingJob> Queue;
  std::vector<int> DroppedIds;
};

} // namespace ecosched

#endif // ECOSCHED_ENGINE_JOBQUEUE_H
