#!/usr/bin/env bash
# check.sh - build every correctness preset and run the test suite under it.
#
# Usage: scripts/check.sh [--preset NAME]... [--with-tsan] [--jobs N]
#
#   --preset NAME   Run only the named preset(s) (release, asan-ubsan, tsan).
#                   May be repeated. Default: release and asan-ubsan.
#   --with-tsan     Append the tsan preset to the default set. The code is
#                   single-threaded today, so tsan is opt-in until a
#                   concurrent subsystem lands.
#   --jobs N        Parallelism for builds and ctest (default: nproc).
#
# Exits non-zero on the first failing configure, build, or test run.
# See docs/STATIC_ANALYSIS.md for the preset definitions.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
PRESETS=()
WITH_TSAN=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset)
      [[ $# -ge 2 ]] || { echo "error: --preset needs an argument" >&2; exit 2; }
      PRESETS+=("$2"); shift 2 ;;
    --with-tsan)
      WITH_TSAN=1; shift ;;
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,15p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

if [[ ${#PRESETS[@]} -eq 0 ]]; then
  PRESETS=(release asan-ubsan)
  [[ $WITH_TSAN -eq 1 ]] && PRESETS+=(tsan)
fi

for preset in "${PRESETS[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] ctest ===="
  ctest --preset "$preset" -j "$JOBS"
  echo "==== [$preset] OK ===="
done

echo "check.sh: all presets passed: ${PRESETS[*]}"
