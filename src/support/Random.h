//===-- support/Random.h - Deterministic random number utilities -*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation for the simulation studies.
///
/// Experiments in the paper are driven by streams of uniformly distributed
/// parameters (Section 5). We need generators that are fast, seedable, and
/// reproducible across platforms, so we implement xoshiro256** (Blackman &
/// Vigna) seeded through SplitMix64 rather than relying on implementation-
/// defined standard library distributions.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_RANDOM_H
#define ECOSCHED_SUPPORT_RANDOM_H

#include <cstdint>

namespace ecosched {

class StateWriter;
class StateReader;

/// SplitMix64 generator, used to expand a single 64-bit seed into the
/// xoshiro256** state. Also usable standalone for cheap hashing-style
/// randomness.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value of the stream.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// The stream position: re-seeding another SplitMix64 with this value
  /// continues the stream exactly where this one stands. The snapshot
  /// protocol (docs/PERSISTENCE.md) captures and restores it so resumed
  /// runs draw the identical remaining sequence.
  uint64_t state() const { return State; }

  /// Restores a stream position previously captured with state().
  void setState(uint64_t S) { State = S; }

private:
  uint64_t State;
};

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// All experiment harnesses and generators take a RandomGenerator by
/// reference so that a single seed fully determines a simulation run.
class RandomGenerator {
public:
  /// Creates a generator whose 256-bit state is expanded from \p Seed.
  explicit RandomGenerator(uint64_t Seed = 0x9c0dedb6u) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double nextUnit();

  /// Returns a double uniformly distributed in [\p Lo, \p Hi).
  /// \p Lo must not exceed \p Hi; when they are equal, returns \p Lo.
  double uniformReal(double Lo, double Hi);

  /// Returns an integer uniformly distributed in the closed range
  /// [\p Lo, \p Hi] without modulo bias.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool bernoulli(double P);

  /// Returns a Poisson-distributed count with the given \p Mean
  /// (Knuth's multiplication method; intended for small means such as
  /// per-iteration arrival counts).
  int64_t poisson(double Mean);

  /// Derives an independent child generator. Useful to give every
  /// simulated iteration its own stream so that changing one knob does
  /// not shift unrelated draws.
  RandomGenerator fork();

  /// Serializes the full 256-bit stream position so a resumed run draws
  /// the identical remaining sequence (docs/PERSISTENCE.md).
  void saveState(StateWriter &W) const;

  /// Restores a position written by saveState. Any four words form a
  /// valid xoshiro256** state, so this only fails on malformed records.
  /// \returns false (with the reader's diagnostic set) on failure; the
  /// generator is unchanged unless the load succeeds.
  bool loadState(StateReader &R);

private:
  uint64_t State[4];
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_RANDOM_H
