file(REMOVE_RECURSE
  "libecosched_sim.a"
)
