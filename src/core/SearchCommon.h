//===-- core/SearchCommon.h - Shared search helpers -----------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by ALP, AMP, and the backfill baseline: admissibility
/// checks (conditions 2a/2b/2c of Section 3) and window construction.
/// These live in ecosched::detail; tests may use them but applications
/// should stick to the search classes.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_SEARCHCOMMON_H
#define ECOSCHED_CORE_SEARCHCOMMON_H

#include "sim/Job.h"
#include "sim/Slot.h"
#include "sim/Window.h"

#include <span>

namespace ecosched {
namespace detail {

/// Condition 2a: the slot's node is fast enough.
inline bool meetsPerformance(const Slot &S, const ResourceRequest &Req) {
  return approxGe(S.Performance, Req.MinPerformance);
}

/// Condition 2c: the slot's unit price is within the per-slot cap.
inline bool meetsPriceCap(const Slot &S, const ResourceRequest &Req) {
  return approxLe(S.UnitPrice, Req.MaxUnitPrice);
}

/// Condition 2b at examination time: the slot is long enough to hold the
/// task at its node's speed when the window starts at the slot's own
/// start. (The paper prints the performance ratio inverted; see
/// DESIGN.md, "Model conventions".)
inline bool meetsLength(const Slot &S, const ResourceRequest &Req) {
  return approxGe(S.span(), S.runtimeFor(Req.Volume));
}

/// Money charged for running a task of the request's volume on \p S.
inline Money slotUsageCost(const Slot &S, const ResourceRequest &Req) {
  return S.price() * S.runtimeFor(Req.Volume);
}

/// True if a task launched on \p S at \p StartTime finishes within the
/// request's deadline (always true for the default infinite deadline).
inline bool fitsDeadline(const Slot &S, TimePoint StartTime,
                         const ResourceRequest &Req) {
  return approxLe(StartTime + S.runtimeFor(Req.Volume), Req.deadline());
}

/// Builds a Window starting at \p StartTime from \p Chosen slots; each
/// must cover [StartTime, StartTime + runtime]. Takes a view so callers
/// can pass any contiguous pointer buffer without materializing a
/// vector.
Window buildWindow(TimePoint StartTime, std::span<const Slot *const> Chosen,
                   const ResourceRequest &Req);

} // namespace detail
} // namespace ecosched

#endif // ECOSCHED_CORE_SEARCHCOMMON_H
