//===-- core/Optimizer.cpp - Combination optimization interface -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "support/Check.h"

using namespace ecosched;

// Virtual method anchor.
CombinationOptimizer::~CombinationOptimizer() = default;

std::vector<std::vector<AlternativeValue>>
ecosched::toAlternativeValues(const AlternativeSet &Alts) {
  std::vector<std::vector<AlternativeValue>> Values;
  Values.reserve(Alts.PerJob.size());
  for (const auto &Windows : Alts.PerJob) {
    std::vector<AlternativeValue> JobValues;
    JobValues.reserve(Windows.size());
    for (const Window &W : Windows)
      JobValues.push_back({W.totalCost().value(), W.timeSpan().value()});
    Values.push_back(std::move(JobValues));
  }
  return Values;
}

CombinationChoice
ecosched::evaluateSelection(const CombinationProblem &Problem,
                            std::vector<size_t> Selected) {
  ECOSCHED_CHECK(Selected.size() == Problem.PerJob.size(),
                 "selection holds {} choices for {} jobs", Selected.size(),
                 Problem.PerJob.size());
  CombinationChoice Choice;
  Choice.Selected = std::move(Selected);
  for (size_t I = 0, E = Choice.Selected.size(); I != E; ++I) {
    ECOSCHED_CHECK(Choice.Selected[I] < Problem.PerJob[I].size(),
                   "job {}: selected alternative {} out of range (job has "
                   "{} alternatives)",
                   I, Choice.Selected[I], Problem.PerJob[I].size());
    const AlternativeValue &V = Problem.PerJob[I][Choice.Selected[I]];
    Choice.ObjectiveTotal += V.get(Problem.Objective);
    Choice.ConstraintTotal += V.get(Problem.Constraint);
  }
  Choice.Feasible = approxLe(Choice.ConstraintTotal, Problem.Limit);
  return Choice;
}
