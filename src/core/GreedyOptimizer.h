//===-- core/GreedyOptimizer.h - Repair-and-improve heuristic ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cheap heuristic for the combination problem, used as the ablation
/// baseline for the paper's DP scheme: start from the per-job
/// minimum-constraint selection (the most conservative feasible point,
/// if one exists) and repeatedly apply the single alternative swap with
/// the best objective improvement per unit of extra constrained
/// resource until no swap fits the limit.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_GREEDYOPTIMIZER_H
#define ECOSCHED_CORE_GREEDYOPTIMIZER_H

#include "core/Optimizer.h"

namespace ecosched {

/// Greedy swap-based optimizer; feasible but generally suboptimal.
class GreedyOptimizer : public CombinationOptimizer {
public:
  std::string_view name() const override { return "greedy"; }

  CombinationChoice solve(const CombinationProblem &Problem) const override;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_GREEDYOPTIMIZER_H
