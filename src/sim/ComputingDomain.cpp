//===-- sim/ComputingDomain.cpp - Non-dedicated resource domain ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/ComputingDomain.h"

#include <algorithm>

using namespace ecosched;

int ComputingDomain::addNode(double Performance, double UnitPrice,
                             std::string Name) {
  const int Id = Pool.addNode(Performance, UnitPrice, std::move(Name));
  BusyByNode.emplace_back();
  Available.push_back(true);
  return Id;
}

bool ComputingDomain::insertInterval(int NodeId, BusyInterval Interval) {
  ECOSCHED_CHECK(Interval.End > Interval.Start,
                 "empty busy interval [{}, {}) on node {}", Interval.Start,
                 Interval.End, NodeId);
  if (!isNodeAvailable(NodeId))
    return false;
  if (isBusy(NodeId, Interval.Start, Interval.End))
    return false;
  auto &Intervals = BusyByNode[static_cast<size_t>(NodeId)];
  auto Pos = std::upper_bound(
      Intervals.begin(), Intervals.end(), Interval,
      [](const BusyInterval &A, const BusyInterval &B) {
        return A.Start < B.Start;
      });
  Intervals.insert(Pos, Interval);
  return true;
}

bool ComputingDomain::addLocalTask(int NodeId, double Start, double End,
                                   int TaskId) {
  return insertInterval(NodeId,
                        {Start, End, OccupancyKind::Local, TaskId});
}

bool ComputingDomain::reserve(int NodeId, double Start, double End,
                              int JobId) {
  return insertInterval(NodeId,
                        {Start, End, OccupancyKind::External, JobId});
}

bool ComputingDomain::reserveWindow(const Window &W, int JobId) {
  // Validate all member spans before mutating anything.
  for (const WindowSlot &M : W)
    if (isBusy(M.Source.NodeId, W.startTime(), W.startTime() + M.Runtime))
      return false;
  for (const WindowSlot &M : W) {
    const bool Ok = reserve(
        M.Source.NodeId, W.startTime(), W.startTime() + M.Runtime, JobId);
    ECOSCHED_CHECK(Ok,
                   "window member on node {} became busy during commit of "
                   "job {}",
                   M.Source.NodeId, JobId);
  }
  return true;
}

bool ComputingDomain::isBusy(int NodeId, double Start, double End) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  for (const BusyInterval &B : BusyByNode[static_cast<size_t>(NodeId)]) {
    const double OverlapStart = std::max(Start, B.Start);
    const double OverlapEnd = std::min(End, B.End);
    if (approxGt(OverlapEnd - OverlapStart, 0.0))
      return true;
  }
  return false;
}

SlotList ComputingDomain::vacantSlots(double HorizonStart,
                                      double HorizonEnd) const {
  ECOSCHED_CHECK(HorizonStart < HorizonEnd,
                 "empty scheduling horizon [{}, {})", HorizonStart,
                 HorizonEnd);
  std::vector<Slot> Slots;
  for (const ResourceNode &Node : Pool) {
    if (!Available[static_cast<size_t>(Node.Id)])
      continue;
    double Cursor = HorizonStart;
    for (const BusyInterval &B :
         BusyByNode[static_cast<size_t>(Node.Id)]) {
      if (B.End <= HorizonStart || B.Start >= HorizonEnd)
        continue;
      const double GapEnd = std::max(B.Start, HorizonStart);
      if (approxGt(GapEnd, Cursor))
        Slots.emplace_back(Node.Id, Node.Performance, Node.UnitPrice,
                           Cursor, GapEnd);
      Cursor = std::max(Cursor, std::min(B.End, HorizonEnd));
    }
    if (approxGt(HorizonEnd, Cursor))
      Slots.emplace_back(Node.Id, Node.Performance, Node.UnitPrice, Cursor,
                         HorizonEnd);
  }
  return SlotList(std::move(Slots));
}

void ComputingDomain::advanceTo(double Now) {
  for (auto &Intervals : BusyByNode)
    std::erase_if(Intervals, [Now](const BusyInterval &B) {
      return approxLe(B.End, Now);
    });
}

const std::vector<BusyInterval> &
ComputingDomain::occupancy(int NodeId) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  return BusyByNode[static_cast<size_t>(NodeId)];
}

void ComputingDomain::setNodePrice(int NodeId, double UnitPrice) {
  Pool.setUnitPrice(NodeId, UnitPrice);
}

std::vector<int> ComputingDomain::failNode(int NodeId, double Now) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  Available[static_cast<size_t>(NodeId)] = false;
  std::vector<int> CancelledJobs;
  auto &Intervals = BusyByNode[static_cast<size_t>(NodeId)];
  for (const BusyInterval &B : Intervals)
    if (approxGt(B.End, Now) && B.Kind == OccupancyKind::External)
      CancelledJobs.push_back(B.JobId);
  std::erase_if(Intervals, [Now](const BusyInterval &B) {
    return approxGt(B.End, Now);
  });
  return CancelledJobs;
}

size_t ComputingDomain::cancelReservations(int NodeId, int JobId) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  return std::erase_if(
      BusyByNode[static_cast<size_t>(NodeId)],
      [JobId](const BusyInterval &B) {
        return B.Kind == OccupancyKind::External && B.JobId == JobId;
      });
}

size_t ComputingDomain::releaseExternalJob(int JobId) {
  size_t Removed = 0;
  for (size_t Node = 0, E = BusyByNode.size(); Node != E; ++Node) {
    if (!Available[Node])
      continue;
    Removed += std::erase_if(BusyByNode[Node], [JobId](const BusyInterval &B) {
      return B.Kind == OccupancyKind::External && B.JobId == JobId;
    });
  }
  return Removed;
}

size_t ComputingDomain::externalReservationCount(int JobId) const {
  size_t Count = 0;
  for (size_t Node = 0, E = BusyByNode.size(); Node != E; ++Node) {
    if (!Available[Node])
      continue;
    for (const BusyInterval &B : BusyByNode[Node])
      Count += B.Kind == OccupancyKind::External && B.JobId == JobId;
  }
  return Count;
}

void ComputingDomain::restoreNode(int NodeId) {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < BusyByNode.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 BusyByNode.size());
  Available[static_cast<size_t>(NodeId)] = true;
}

bool ComputingDomain::isNodeAvailable(int NodeId) const {
  ECOSCHED_CHECK(NodeId >= 0 &&
                     static_cast<size_t>(NodeId) < Available.size(),
                 "invalid node id {} for a domain of {} nodes", NodeId,
                 Available.size());
  return Available[static_cast<size_t>(NodeId)];
}

double ComputingDomain::externalLoad() const {
  double Total = 0.0;
  for (const auto &Intervals : BusyByNode)
    for (const BusyInterval &B : Intervals)
      if (B.Kind == OccupancyKind::External)
        Total += B.End - B.Start;
  return Total;
}

double ComputingDomain::localLoad() const {
  double Total = 0.0;
  for (const auto &Intervals : BusyByNode)
    for (const BusyInterval &B : Intervals)
      if (B.Kind == OccupancyKind::Local)
        Total += B.End - B.Start;
  return Total;
}
