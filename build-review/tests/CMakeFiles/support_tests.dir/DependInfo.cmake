
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/CheckTest.cpp" "tests/CMakeFiles/support_tests.dir/support/CheckTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/CheckTest.cpp.o.d"
  "/root/repo/tests/support/CommandLineTest.cpp" "tests/CMakeFiles/support_tests.dir/support/CommandLineTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/CommandLineTest.cpp.o.d"
  "/root/repo/tests/support/RandomTest.cpp" "tests/CMakeFiles/support_tests.dir/support/RandomTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/RandomTest.cpp.o.d"
  "/root/repo/tests/support/StatisticsTest.cpp" "tests/CMakeFiles/support_tests.dir/support/StatisticsTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/StatisticsTest.cpp.o.d"
  "/root/repo/tests/support/SvgTest.cpp" "tests/CMakeFiles/support_tests.dir/support/SvgTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/SvgTest.cpp.o.d"
  "/root/repo/tests/support/TableTest.cpp" "tests/CMakeFiles/support_tests.dir/support/TableTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/TableTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ecosched_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
