//===-- core/SearchAlgorithm.h - Slot search interface --------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface of the window-search algorithms (ALP, AMP, and the
/// backfill-style baseline). A search takes the ordered list of vacant
/// slots and a resource request and returns the first suitable window,
/// if any.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_SEARCHALGORITHM_H
#define ECOSCHED_CORE_SEARCHALGORITHM_H

#include "sim/Job.h"
#include "sim/SlotList.h"
#include "sim/Window.h"

#include <optional>
#include <string_view>

namespace ecosched {

/// Work counters reported by a search run; used by the complexity
/// benches that check the paper's O(m) claim (Section 3).
struct SearchStats {
  /// Slots taken from the ordered list and examined.
  size_t SlotsExamined = 0;
  /// Peak size of the working slot group.
  size_t GroupPeak = 0;
  /// Total comparison-ish work: group updates plus sorting effort.
  size_t GroupOperations = 0;

  SearchStats &operator+=(const SearchStats &Other) {
    SlotsExamined += Other.SlotsExamined;
    GroupPeak = GroupPeak > Other.GroupPeak ? GroupPeak : Other.GroupPeak;
    GroupOperations += Other.GroupOperations;
    return *this;
  }
};

/// Abstract window search over an ordered slot list.
class SlotSearchAlgorithm {
public:
  virtual ~SlotSearchAlgorithm();

  /// Human-readable algorithm name ("ALP", "AMP", ...).
  virtual std::string_view name() const = 0;

  /// Finds the first (earliest) window satisfying \p Request on \p List.
  /// \param Stats optional work counters, accumulated when non-null.
  /// \returns the window, or std::nullopt if the list cannot satisfy the
  /// request (the job is then postponed to the next scheduling
  /// iteration).
  virtual std::optional<Window>
  findWindow(const SlotList &List, const ResourceRequest &Request,
             SearchStats *Stats = nullptr) const = 0;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_SEARCHALGORITHM_H
