//===-- tests/sim/PaperExampleTest.cpp - Section 4 fixture tests ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/PaperExample.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(PaperExampleTest, SixNodesWithStatedPrices) {
  const ComputingDomain D = buildPaperExampleDomain();
  ASSERT_EQ(D.pool().size(), 6u);
  const double ExpectedPrices[] = {4.0, 4.0, 3.0, 6.0, 2.0, 12.0};
  for (int I = 0; I < 6; ++I) {
    EXPECT_DOUBLE_EQ(D.pool().node(I).UnitPrice, ExpectedPrices[I]);
    EXPECT_DOUBLE_EQ(D.pool().node(I).Performance, 1.0);
  }
  EXPECT_EQ(D.pool().node(5).Name, "cpu6");
}

TEST(PaperExampleTest, SevenLocalTasks) {
  const ComputingDomain D = buildPaperExampleDomain();
  size_t Tasks = 0;
  for (const ResourceNode &Node : D.pool())
    Tasks += D.occupancy(Node.Id).size();
  EXPECT_EQ(Tasks, 7u);
}

TEST(PaperExampleTest, TenVacantSlotsAsInFig2a) {
  const ComputingDomain D = buildPaperExampleDomain();
  const SlotList Slots = D.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));
  ASSERT_EQ(Slots.size(), 10u);
  EXPECT_TRUE(Slots.checkInvariants());

  // Expected spans, sorted by start (node, start, end).
  struct Expected {
    int Node;
    double Start;
    double End;
  };
  // Ties on start time are ordered by node id (slotStartLess).
  const Expected Spans[] = {
      {2, 0.0, 40.0},    {3, 0.0, 20.0},    {4, 0.0, 100.0},
      {0, 150.0, 600.0}, {3, 150.0, 600.0}, {1, 200.0, 320.0},
      {5, 250.0, 600.0}, {2, 350.0, 600.0}, {1, 420.0, 600.0},
      {4, 450.0, 600.0},
  };
  for (size_t I = 0; I < 10; ++I) {
    SCOPED_TRACE(I);
    EXPECT_EQ(Slots[I].NodeId, Spans[I].Node);
    EXPECT_DOUBLE_EQ(Slots[I].Start, Spans[I].Start);
    EXPECT_DOUBLE_EQ(Slots[I].End, Spans[I].End);
  }
}

TEST(PaperExampleTest, BatchMatchesSection4Requirements) {
  const Batch Jobs = buildPaperExampleBatch();
  ASSERT_EQ(Jobs.size(), 3u);

  EXPECT_EQ(Jobs[0].Request.NodeCount, 2);
  EXPECT_DOUBLE_EQ(Jobs[0].Request.Volume, 80.0);
  EXPECT_DOUBLE_EQ(Jobs[0].Request.MaxUnitPrice, 5.0); // 10 / 2.

  EXPECT_EQ(Jobs[1].Request.NodeCount, 3);
  EXPECT_DOUBLE_EQ(Jobs[1].Request.Volume, 30.0);
  EXPECT_DOUBLE_EQ(Jobs[1].Request.MaxUnitPrice, 10.0); // 30 / 3.

  EXPECT_EQ(Jobs[2].Request.NodeCount, 2);
  EXPECT_DOUBLE_EQ(Jobs[2].Request.Volume, 50.0);
  EXPECT_DOUBLE_EQ(Jobs[2].Request.MaxUnitPrice, 3.0); // 6 / 2.
}

TEST(PaperExampleTest, BudgetsMatchTotalWindowCostCaps) {
  const Batch Jobs = buildPaperExampleBatch();
  // S = C*t*N with uniform performance: total cap per time * runtime.
  EXPECT_DOUBLE_EQ(Jobs[0].Request.budget().value(), 10.0 * 80.0);
  EXPECT_DOUBLE_EQ(Jobs[1].Request.budget().value(), 30.0 * 30.0);
  EXPECT_DOUBLE_EQ(Jobs[2].Request.budget().value(), 6.0 * 50.0);
}
