//===-- engine/MultiVoDriver.h - Concurrent multi-VO driver --------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N independent virtual organizations side by side — the paper's
/// distributed-computing setting has many VOs scheduling over disjoint
/// domains at once. Each tenant owns its ComputingDomain, its
/// VirtualOrganization facade, and a forked RandomGenerator stream, so
/// tenants share no mutable state and one iteration of all tenants is
/// embarrassingly parallel.
///
/// Determinism contract (see docs/CONCURRENCY.md): per-tenant results
/// are bitwise identical for every thread-pool size, including the
/// serial fallback. ThreadPool::parallelMap writes tenant I's report
/// to slot I of a pre-sized vector and the driver folds aggregates in
/// VO-index order on the calling thread; each tenant draws only from
/// its own RNG stream. The arrival callback therefore must not touch
/// shared mutable state — it receives the tenant's own RNG and may be
/// invoked from any worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_ENGINE_MULTIVODRIVER_H
#define ECOSCHED_ENGINE_MULTIVODRIVER_H

#include "engine/VirtualOrganization.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ecosched {

/// Concurrent driver over independent VO instances.
class MultiVoDriver {
public:
  struct Config {
    /// Pool for the per-iteration tenant fan-out; nullptr (or a pool of
    /// size 1) runs tenants serially in VO-index order.
    ThreadPool *Pool = nullptr;
  };

  /// Produces the external jobs arriving at tenant \p VoIndex for its
  /// iteration \p Iteration. \p Rng is the tenant's private stream;
  /// drawing only from it keeps the run deterministic. Called from
  /// worker threads — must not touch shared mutable state.
  // archlint-allow(std-function): owning storage — the driver keeps the
  // arrival source across iterations, so a non-owning FunctionRef would
  // dangle.
  using ArrivalFn = std::function<Batch(size_t VoIndex, size_t Iteration,
                                        RandomGenerator &Rng)>;

  /// One tenant's slice of a driver iteration.
  struct TenantIteration {
    size_t Arrivals = 0;
    VirtualOrganization::IterationReport Report;
  };

  MultiVoDriver() = default;
  explicit MultiVoDriver(Config Cfg) : Cfg(Cfg) {}

  /// Registers a tenant VO owning \p Domain, scheduled by \p Scheduler
  /// (which must outlive the driver), configured by \p VoCfg, with an
  /// independent RNG stream expanded from \p Seed.
  /// \returns the tenant's VO index.
  size_t addTenant(ComputingDomain Domain, const Metascheduler &Scheduler,
                   VirtualOrganization::Config VoCfg, uint64_t Seed);

  /// Runs one iteration of every tenant — arrivals, scheduling, clock
  /// advance — concurrently when a pool is configured. \p Arrivals may
  /// be empty (no new jobs). \returns per-tenant results in VO-index
  /// order regardless of execution order.
  std::vector<TenantIteration> runIteration(const ArrivalFn &Arrivals);

  /// Convenience loop: \p Iterations rounds of runIteration.
  /// \returns the last round's per-tenant results.
  std::vector<TenantIteration> run(size_t Iterations,
                                   const ArrivalFn &Arrivals);

  size_t tenantCount() const { return Tenants.size(); }
  const VirtualOrganization &tenant(size_t I) const { return *Tenants[I].Vo; }
  VirtualOrganization &tenant(size_t I) { return *Tenants[I].Vo; }

  /// Aggregates folded in VO-index order on the calling thread.
  Money totalIncome() const;
  size_t totalCompleted() const;
  size_t totalDropped() const;

  /// Persistent-filter reconciliation counters summed across tenants in
  /// VO-index order (each tenant's filter is private to its VO, so the
  /// fold is race-free). All-zero when tenants run with ReuseFilter
  /// off.
  SearchStats totalFilterStats() const;

  /// Writes one snapshot file per tenant — `tenant_<I>.snap` carrying
  /// the tenant's index, iteration counter, RNG stream, and full VO
  /// state — into \p Dir (created if missing). Call between driver
  /// iterations only. \returns false on I/O failure, filling \p Error.
  bool saveSnapshots(const std::string &Dir,
                     std::string *Error = nullptr) const;

  /// Loads `tenant_<I>.snap` for every registered tenant from \p Dir.
  /// Tenants must already be registered with the same schedulers and
  /// in the same order as when the snapshots were written; each file's
  /// stored index must match its tenant. On any failure the diagnostic
  /// lands in \p Error and already-loaded tenants keep their new state
  /// (callers treat a failed restore as fatal for the whole driver).
  bool loadSnapshots(const std::string &Dir, std::string *Error = nullptr);

private:
  /// A VO plus its private arrival stream. The VO is heap-allocated
  /// because it holds a reference member and must stay put while the
  /// tenant vector grows.
  struct Tenant {
    std::unique_ptr<VirtualOrganization> Vo;
    RandomGenerator Rng;
    size_t Iteration = 0;
  };

  TenantIteration stepTenant(size_t I, const ArrivalFn &Arrivals);

  Config Cfg;
  std::vector<Tenant> Tenants;
};

} // namespace ecosched

#endif // ECOSCHED_ENGINE_MULTIVODRIVER_H
