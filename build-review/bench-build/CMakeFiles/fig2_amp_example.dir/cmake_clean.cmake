file(REMOVE_RECURSE
  "../bench/fig2_amp_example"
  "../bench/fig2_amp_example.pdb"
  "CMakeFiles/fig2_amp_example.dir/fig2_amp_example.cpp.o"
  "CMakeFiles/fig2_amp_example.dir/fig2_amp_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_amp_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
