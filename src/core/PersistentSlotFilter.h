//===-- core/PersistentSlotFilter.h - Cross-iteration slot views ---*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-job admissibility views that survive across VO iterations.
/// AlternativeSearch normally rebuilds a SlotFilter from scratch on
/// every call — O(jobs * slots) — even though consecutive iterations of
/// VirtualOrganization::runIteration see nearly the same domain: a few
/// reservations committed or retired, a node failed or repaired, a
/// local task added, the horizon rolled forward one period. The
/// persistent filter keeps last iteration's views and reconciles them
/// with this iteration's published master list by explicit deltas, so
/// the steady-state cost tracks the delta, not the domain size.
///
/// Delta protocol (docs/PERFORMANCE.md, "The persistent filter"):
///  * Slot deltas are derived, not event-sourced: sync() diffs the new
///    master against a retained shadow of the previous one with one
///    sorted merge walk. Every free-pool change — reservations
///    committed by the ledger, spans returning on completion / release
///    / cancellation, node failure and repair, owner-side local tasks
///    and price updates, and the period-rollover horizon shift —
///    surfaces in that diff, so no producer has to publish events.
///    Removed slots leave each reused view by an exact-key splice;
///    added slots re-enter a view iff they pass the same scan-horizon +
///    admits() test filteredCopy applies (the re-admission path).
///  * Job deltas come from batch matching: a job whose (Id, Request)
///    pair is bitwise-identical to one of the previous batch keeps its
///    view (a *view reuse*); arrivals and changed requests build fresh
///    (a *view rebuild*); departed jobs drop theirs.
///  * Sweep damage is journaled: during AlternativeSearch's sweep every
///    commit splices the views exactly as the throwaway filter would,
///    and each splice records (container, kept pieces). Rolling the
///    journal back in reverse order — later splices may subdivide
///    earlier pieces — restores every view to its post-sync state bit
///    for bit, ready for the next iteration's diff.
///
/// Determinism argument: a reused view equals the from-scratch
/// filteredCopy of the new master bitwise. Set-equality holds because
/// the diff is exact and the re-admission predicate is identical to
/// filteredCopy's; order follows, because in a structurally valid list
/// the (Start, NodeId) key is unique, so slotStartLess assigns every
/// slot one canonical position. The sweep then scans identical views,
/// so results are bitwise-identical to the rebuild path for every
/// algorithm, pool size, and schedule-fuzz seed — the twin-VO fuzzers
/// and the PersistentFilter test suites enforce this.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_PERSISTENTSLOTFILTER_H
#define ECOSCHED_CORE_PERSISTENTSLOTFILTER_H

#include "core/SearchAlgorithm.h"

#include <cstddef>
#include <vector>

namespace ecosched {

class StateWriter;
class StateReader;

/// Per-job admissible slot views reconciled across scheduling
/// iterations by slot/job deltas. Owned at the engine layer (one per
/// VirtualOrganization — the Metascheduler is shared and stateless) and
/// passed down through Metascheduler::runIteration into
/// AlternativeSearch, which uses it in place of a throwaway SlotFilter.
class PersistentSlotFilter {
public:
  /// \p Algo must outlive the filter; views cache its admits()
  /// decisions, so one filter serves exactly one algorithm.
  explicit PersistentSlotFilter(const SlotSearchAlgorithm &Algo);

  /// Reconciles the filter with this iteration's \p Master list and
  /// \p Jobs batch. Afterwards view(J) is bitwise-equal to
  /// SlotFilter::filteredCopy(\p Master, \p Jobs[J].Request) for every
  /// J, and the filter is ready for one AlternativeSearch sweep.
  /// \p Master must be structurally valid (per-node disjoint, no
  /// zero-length slots), as ComputingDomain::vacantSlots guarantees.
  /// O(master-diff + affected-view splices) in the steady state; a view
  /// facing a delta larger than its splice budget falls back to one
  /// filteredCopy rebuild (counted as a forced rebuild).
  /// \param Stats when non-null, accumulates FilterViewReuses,
  /// FilterViewRebuilds, and FilterDeltaOps for this sync.
  void sync(const SlotList &Master, const Batch &Jobs,
            SearchStats *Stats = nullptr);

  /// The admissible subsequence of the master list for job \p J of the
  /// last synced batch — same meaning as SlotFilter::view.
  const SlotList &view(size_t J) const { return Entries[J].View; }

  /// Jobs of the last synced batch.
  size_t jobCount() const { return Entries.size(); }

  /// SlotFilter::applyDamage with journaling: propagates a committed
  /// window's damage into every view and records each successful splice
  /// so rollbackSweepDamage() can undo it.
  void applyDamage(const Window &W);

  /// True if every member slot of \p W is still present verbatim in
  /// view \p J — same meaning as SlotFilter::windowIntact.
  bool windowIntact(size_t J, const Window &W) const;

  /// Rolls every journaled splice back in reverse order, restoring all
  /// views to their post-sync state bitwise. AlternativeSearch calls
  /// this once after its sweep; idempotent on an empty journal.
  void rollbackSweepDamage();

  /// Journaled splices not yet rolled back (tests).
  size_t journalSize() const { return Journal.size(); }

  /// The algorithm the views were filtered through.
  const SlotSearchAlgorithm &algorithm() const { return Algo; }

  /// The retained copy of the last synced master list (tests).
  const SlotList &shadowMaster() const { return Shadow; }

  /// Serializes the shadow master and every entry's (JobId, Request)
  /// pair, plus an FNV-1a digest of the views (docs/PERSISTENCE.md).
  /// The views themselves are derived state — post-sync each equals
  /// filteredCopy(Shadow, Request) bitwise — so they are rebuilt on
  /// load and checked against the digest rather than serialized.
  /// Requires an empty journal (snapshots are taken between iterations,
  /// never mid-sweep); aborts otherwise, like sync().
  void saveState(StateWriter &W) const;

  /// Restores a filter written by saveState, rebuilding every view
  /// through SlotFilter::filteredCopy against this filter's algorithm.
  /// Rejects — with a diagnostic on the reader, never an abort —
  /// malformed shadow blobs, out-of-domain requests, and any digest
  /// mismatch (which also catches loading a snapshot into a filter
  /// bound to a different search algorithm). The filter is unchanged
  /// unless the load succeeds.
  bool loadState(StateReader &R);

private:
  /// One job's cached view, carried between iterations.
  struct ViewEntry {
    int JobId = -1;
    ResourceRequest Request;
    SlotList View;
  };

  /// One journaled view splice: subtractExact erased Container from
  /// view ViewIndex and kept PieceCount remainder pieces.
  struct DamageRecord {
    size_t ViewIndex = 0;
    Slot Container;
    Slot Pieces[2];
    unsigned PieceCount = 0;
  };

  const SlotSearchAlgorithm &Algo;
  /// Last synced master list; next sync() diffs against it.
  SlotList Shadow;
  /// Views in last synced batch order.
  std::vector<ViewEntry> Entries;
  /// Sweep splices since the last sync, in application order.
  std::vector<DamageRecord> Journal;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_PERSISTENTSLOTFILTER_H
