
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/ComputingDomainTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/ComputingDomainTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/ComputingDomainTest.cpp.o.d"
  "/root/repo/tests/sim/GanttChartTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/GanttChartTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/GanttChartTest.cpp.o.d"
  "/root/repo/tests/sim/GeneratorTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/GeneratorTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/GeneratorTest.cpp.o.d"
  "/root/repo/tests/sim/PaperExampleTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/PaperExampleTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/PaperExampleTest.cpp.o.d"
  "/root/repo/tests/sim/SlotListTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/SlotListTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/SlotListTest.cpp.o.d"
  "/root/repo/tests/sim/SlotListValidateTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/SlotListValidateTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/SlotListValidateTest.cpp.o.d"
  "/root/repo/tests/sim/SlotTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/SlotTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/SlotTest.cpp.o.d"
  "/root/repo/tests/sim/TraceIOTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/TraceIOTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/TraceIOTest.cpp.o.d"
  "/root/repo/tests/sim/WindowTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/WindowTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/WindowTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ecosched_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
