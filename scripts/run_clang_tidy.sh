#!/usr/bin/env bash
# run_clang_tidy.sh - drive clang-tidy over the project's
# compile_commands.json and fail on any finding.
#
# Usage: scripts/run_clang_tidy.sh [--build-dir DIR] [--jobs N] [PATH]...
#
#   --build-dir DIR  Build tree holding compile_commands.json
#                    (default: build/release if configured, else build).
#   --jobs N         Parallel clang-tidy processes (default: nproc).
#   PATH...          Restrict the run to sources under these prefixes
#                    (default: src tests bench examples).
#
# The check list and suppression rationale live in .clang-tidy and
# docs/STATIC_ANALYSIS.md.
#
# If no clang-tidy binary is installed (this container ships only the
# GCC toolchain), the script reports SKIPPED and exits 0 so check runs
# stay green; install clang-tidy >= 15 to activate the gate. CI images
# with LLVM get the full run automatically.

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD_DIR=""
PATHS=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      [[ $# -ge 2 ]] || { echo "error: --build-dir needs an argument" >&2; exit 2; }
      BUILD_DIR="$2"; shift 2 ;;
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,20p' "$0"; exit 0 ;;
    *)
      PATHS+=("$1"); shift ;;
  esac
done

[[ ${#PATHS[@]} -gt 0 ]] || PATHS=(src tests bench examples)

TIDY="${CLANG_TIDY:-}"
if [[ -z "$TIDY" ]]; then
  for candidate in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
                   clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [[ -z "$TIDY" ]]; then
  echo "run_clang_tidy.sh: SKIPPED - no clang-tidy binary found" \
       "(set CLANG_TIDY or install clang-tidy >= 15)"
  exit 0
fi

if [[ -z "$BUILD_DIR" ]]; then
  if [[ -f build/release/compile_commands.json ]]; then
    BUILD_DIR=build/release
  else
    BUILD_DIR=build
  fi
fi
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found;" \
       "configure first (cmake --preset release)" >&2
  exit 2
fi

# Collect translation units under the requested prefixes from the
# compilation database, so generated/external sources are never scanned.
mapfile -t FILES < <(python3 - "$BUILD_DIR" "${PATHS[@]}" <<'EOF'
import json, os, sys
build_dir = sys.argv[1]
prefixes = [os.path.abspath(p) for p in sys.argv[2:]]
with open(os.path.join(build_dir, "compile_commands.json")) as f:
    entries = json.load(f)
seen = set()
for entry in entries:
    path = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
    if path in seen:
        continue
    if any(path.startswith(prefix + os.sep) for prefix in prefixes):
        seen.add(path)
        print(path)
EOF
)

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "error: no translation units matched: ${PATHS[*]}" >&2
  exit 2
fi

echo "run_clang_tidy.sh: $TIDY over ${#FILES[@]} files ($BUILD_DIR)"
FAILED=0
printf '%s\n' "${FILES[@]}" \
  | xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet || FAILED=1

if [[ $FAILED -ne 0 ]]; then
  echo "run_clang_tidy.sh: FAILED - findings above must be fixed or" \
       "suppressed with rationale in .clang-tidy + docs/STATIC_ANALYSIS.md"
  exit 1
fi
echo "run_clang_tidy.sh: clean"
