// Negative fixture for the ArchLintNegativeLayering ctest entry: a sim/
// header reaching up into core/ must be rejected by the layer-dag rule.
// This tree is never compiled; archlint is pointed at it with --root.
#ifndef ECOSCHED_SIM_BADINCLUDE_H
#define ECOSCHED_SIM_BADINCLUDE_H

#include "core/Optimizer.h"

#endif // ECOSCHED_SIM_BADINCLUDE_H
