//===-- tests/sim/WindowTest.cpp - Window model unit tests ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/Window.h"

#include "sim/SlotList.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

WindowSlot makeMember(int Node, double Perf, double Price, double Start,
                      double End, double Volume) {
  WindowSlot M;
  M.Source = Slot(Node, Perf, Price, Start, End);
  M.Runtime = Volume / Perf;
  M.Cost = Price * M.Runtime;
  return M;
}

/// Two-member window with heterogeneous nodes: volume 60 on perf 1 and
/// perf 2 nodes starting at t=100.
Window makeHeterogeneousWindow() {
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 60.0));
  Members.push_back(makeMember(1, 2.0, 5.0, 90.0, 150.0, 60.0));
  return Window(100.0, std::move(Members));
}

} // namespace

TEST(WindowTest, RoughRightEdge) {
  const Window W = makeHeterogeneousWindow();
  EXPECT_DOUBLE_EQ(W.startTime(), 100.0);
  // Slowest member (perf 1) runs for 60; the fast one for 30.
  EXPECT_DOUBLE_EQ(W.timeSpan(), 60.0);
  EXPECT_DOUBLE_EQ(W.endTime(), 160.0);
  EXPECT_DOUBLE_EQ(W[0].Runtime, 60.0);
  EXPECT_DOUBLE_EQ(W[1].Runtime, 30.0);
}

TEST(WindowTest, CostAggregation) {
  const Window W = makeHeterogeneousWindow();
  // Costs: 2*60 + 5*30 = 270; unit price sum 7.
  EXPECT_DOUBLE_EQ(W.totalCost(), 270.0);
  EXPECT_DOUBLE_EQ(W.unitPriceSum(), 7.0);
  EXPECT_EQ(W.size(), 2u);
}

TEST(WindowTest, UsesNode) {
  const Window W = makeHeterogeneousWindow();
  EXPECT_TRUE(W.usesNode(0));
  EXPECT_TRUE(W.usesNode(1));
  EXPECT_FALSE(W.usesNode(2));
}

TEST(WindowTest, IntersectsSameNodeOverlap) {
  const Window A = makeHeterogeneousWindow(); // Node 0 busy [100,160).
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window B(140.0, std::move(Members)); // Node 0 busy [140,160).
  EXPECT_TRUE(A.intersects(B));
  EXPECT_TRUE(B.intersects(A));
}

TEST(WindowTest, NoIntersectionWhenTimeDisjoint) {
  const Window A = makeHeterogeneousWindow(); // Node 0 busy [100,160).
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(0, 1.0, 2.0, 100.0, 200.0, 20.0));
  const Window B(160.0, std::move(Members)); // Node 0 busy [160,180).
  EXPECT_FALSE(A.intersects(B));
}

TEST(WindowTest, NoIntersectionAcrossNodes) {
  const Window A = makeHeterogeneousWindow();
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(7, 1.0, 2.0, 100.0, 200.0, 50.0));
  const Window B(100.0, std::move(Members));
  EXPECT_FALSE(A.intersects(B));
}

TEST(WindowTest, PartialOverlapOnlyWithSlowMember) {
  // B overlaps [100,160) on node 0 but is disjoint from the fast
  // member's [100,130) usage on node 1.
  const Window A = makeHeterogeneousWindow();
  std::vector<WindowSlot> Members;
  Members.push_back(makeMember(1, 2.0, 5.0, 90.0, 150.0, 20.0));
  const Window B(135.0, std::move(Members)); // Node 1 busy [135,145).
  EXPECT_FALSE(A.intersects(B)); // Node 1 usage of A ends at 130.
}

TEST(WindowTest, SubtractFromRemovesUsedSpans) {
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0),
                 Slot(1, 2.0, 5.0, 90.0, 150.0)});
  const double Before = List.totalSpan();
  const Window W = makeHeterogeneousWindow();
  ASSERT_TRUE(W.subtractFrom(List));
  // Node 0 loses 60 time units, node 1 loses 30.
  EXPECT_NEAR(List.totalSpan(), Before - 90.0, 1e-9);
  EXPECT_TRUE(List.checkInvariants());
}

TEST(WindowTest, SubtractFromFailsWhenSpanMissing) {
  SlotList List({Slot(0, 1.0, 2.0, 100.0, 200.0)}); // Node 1 missing.
  const Window W = makeHeterogeneousWindow();
  EXPECT_FALSE(W.subtractFrom(List));
}

TEST(WindowTest, EmptyWindow) {
  Window W;
  EXPECT_TRUE(W.empty());
  EXPECT_DOUBLE_EQ(W.timeSpan(), 0.0);
  EXPECT_DOUBLE_EQ(W.totalCost(), 0.0);
}
