//===-- sim/SlotIntervalIndex.h - Per-node interval index ----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An auxiliary per-node interval index over a SlotList's slot vector,
/// answering the containment probe behind SlotList::subtract ("which
/// slot on node N contains [Start, End)?") in O(log n) instead of the
/// front-to-back scan. The master vector stays the canonical storage —
/// iteration order, and therefore every search result, is untouched —
/// and the index is a pure lookup accelerator whose answers are
/// bitwise-identical to the linear scan's (docs/PERFORMANCE.md,
/// "The interval index").
///
/// Structure: one flat vector of (NodeId, Start, End) entries sorted
/// lexicographically — a node's entries form a contiguous run, in the
/// master's per-node order (the master is sorted by (Start, NodeId,
/// End), so its restriction to one node is (Start, End)-sorted, which
/// is exactly the flat order's per-node restriction). A single flat
/// vector means building and copying the index is one allocation and
/// one memcpy, no matter how many nodes the list spans.
///
/// Mutations are deliberately lazy so that subtract-heavy flows do not
/// pay an O(n) entry-vector splice on top of the master vector's own:
/// an erase tombstones its entry in place (no memmove), an insert goes
/// to a small sorted Pending side buffer, and once tombstones plus
/// pending entries reach a fixed threshold the index compacts with one
/// O(n) merge. Probes consult the main vector (skipping tombstones)
/// and the buffer, and take the earlier of the two candidates in
/// per-node master order — amortized O(log n + threshold).
///
/// Per-node spans of a structurally valid list are disjoint with
/// positive length, which makes both the starts *and* the ends
/// non-decreasing within a run — so the tolerant containment
/// conditions of the linear scan each hold on a contiguous stretch and
/// a handful of binary searches find the first match. Lists that
/// violate the disjointness invariant (constructible via the sorting
/// constructor) lose the sorted-ends guarantee; such nodes are tracked
/// in a side list and probed with an in-order scan of their run,
/// preserving the answer exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOTINTERVALINDEX_H
#define ECOSCHED_SIM_SLOTINTERVALINDEX_H

#include "sim/Slot.h"

#include <cstddef>
#include <optional>
#include <vector>

namespace ecosched {

/// Per-node interval index over a start-sorted slot vector. Built
/// lazily by SlotList on the first containment probe, then maintained
/// incrementally through every insert and erase.
class SlotIntervalIndex {
public:
  /// One indexed span; Performance/UnitPrice stay in the master vector.
  struct Span {
    double Start = 0.0;
    double End = 0.0;
  };

  /// Default compaction trigger: compaction fires when tombstones plus
  /// pending entries reach this count, bounding both the probes'
  /// skip work and the buffer scan. Named so the bench gate
  /// (BM_SlotIndexCompaction) and the threshold-sweep tests can refer
  /// to — and override — the production value instead of a magic 128.
  static constexpr size_t DefaultCompactThreshold = 128;

  /// The active compaction trigger; DefaultCompactThreshold unless a
  /// test overrode it.
  size_t compactThreshold() const { return CompactThreshold; }

  /// Test-only override of the compaction trigger (minimum 1). The
  /// threshold is a pure performance knob — probes and answers are
  /// identical for any value — so sweeps can force frequent or rare
  /// compaction to exercise both regimes. Takes effect on the next
  /// noteInsert/noteErase; it does not trigger a compaction itself.
  void setCompactThreshold(size_t Threshold) {
    CompactThreshold = Threshold > 0 ? Threshold : 1;
  }

  /// True once buildFrom() has run; an unbuilt index ignores
  /// noteInsert/noteErase so lists that never probe pay nothing.
  bool built() const { return Built; }

  /// Drops all entries and returns to the unbuilt state.
  void clear();

  /// Rebuilds the entries from \p Slots (must be slotStartLess-sorted,
  /// as SlotList maintains). O(n log n), one allocation.
  void buildFrom(const std::vector<Slot> &Slots);

  /// Mirrors SlotList::insert: records \p S in the Pending buffer (a
  /// probe sees it immediately), compacting when the buffer fills.
  void noteInsert(const Slot &S);

  /// Mirrors an erase from the master vector: tombstones one live
  /// entry equal to (\p S.NodeId, S.Start, S.End). Aborts if absent —
  /// the index and the master may never disagree.
  void noteErase(const Slot &S);

  /// The containment probe: the span the linear scan would select for
  /// the reserved span [\p Start, \p End) on \p NodeId — the first slot
  /// of the node, in master order, with Start <= \p Start and
  /// End >= \p End under the tolerant comparisons — or nullopt if no
  /// slot contains it. O(log n + threshold); O(run) on a node whose
  /// ends went unsorted (invariant-violating input).
  std::optional<Span> findContainer(int NodeId, TimePoint Start,
                                    TimePoint End) const;

  /// True if the live entries (main vector minus tombstones, merged
  /// with the Pending buffer) are exactly \p Slots regrouped by node,
  /// the tombstone count is bookkept correctly, compaction fired when
  /// due, and every unmarked node's run really has non-decreasing ends
  /// (tombstones included — the binary searches run over them).
  /// Consistency oracle for tests and SlotList::validate().
  bool consistentWith(const std::vector<Slot> &Slots) const;

private:
  /// One slot's identity, grouped by node: sorted by (NodeId, Start,
  /// End), exact comparisons. Dead entries keep their key (ordering
  /// stays intact for the binary searches) and are skipped by probes.
  struct Entry {
    int NodeId = -1;
    bool Dead = false;
    double Start = 0.0;
    double End = 0.0;
  };

  /// Active compaction trigger (see DefaultCompactThreshold /
  /// setCompactThreshold).
  size_t CompactThreshold = DefaultCompactThreshold;

  /// Exact lexicographic (NodeId, Start, End) order. Within one node
  /// this equals the master vector's per-node order: the master is
  /// sorted by (Start, NodeId, End), so restricted to a node it is
  /// (Start, End)-sorted. Full-key duplicates are interchangeable, so
  /// a plain sort reproduces the master's per-node sequence exactly.
  static bool entryLess(const Entry &A, const Entry &B);

  /// Rebuilds Entries as the one-pass merge of the live entries and
  /// the Pending buffer, then recomputes the unsorted-ends marks.
  void compact();
  void compactIfDue();

  /// Recomputes UnsortedEndNodes from the (tombstone-free) Entries.
  void recomputeUnsortedEnds();

  /// Marks \p NodeId's run as no longer binary-searchable by end.
  void markEndsUnsorted(int NodeId);
  bool endsUnsorted(int NodeId) const;

  /// All spans, grouped by node id, in master per-node order; may
  /// contain tombstones between compactions.
  std::vector<Entry> Entries;
  /// Inserts since the last compaction, entryLess-sorted, all live.
  std::vector<Entry> Pending;
  /// Sorted node ids whose Entries runs lost the non-decreasing-ends
  /// guarantee (possible only for invariant-violating lists). Empty in
  /// practice, so the membership test is one empty() check.
  std::vector<int> UnsortedEndNodes;
  /// Tombstones currently in Entries.
  size_t DeadCount = 0;
  bool Built = false;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOTINTERVALINDEX_H
