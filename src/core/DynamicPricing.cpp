//===-- core/DynamicPricing.cpp - Supply-and-demand node pricing ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/DynamicPricing.h"

#include <algorithm>
#include "support/Check.h"

using namespace ecosched;

void PricingEngine::captureBasePrices(const ComputingDomain &Domain) {
  BasePrices.clear();
  BasePrices.reserve(Domain.pool().size());
  for (const ResourceNode &Node : Domain.pool())
    BasePrices.push_back(Node.UnitPrice);
}

double PricingEngine::nodeUtilization(const ComputingDomain &Domain,
                                      int NodeId, TimePoint WindowStart,
                                      TimePoint WindowEnd) {
  ECOSCHED_CHECK(exactLess(WindowStart, WindowEnd),
                 "empty utilization window [{}, {}) on node {}", WindowStart,
                 WindowEnd, NodeId);
  double Busy = 0.0;
  for (const BusyInterval &B : Domain.occupancy(NodeId)) {
    const double OverlapStart = std::max(B.Start, WindowStart.value());
    const double OverlapEnd = std::min(B.End, WindowEnd.value());
    // Tolerant on purpose: a sub-epsilon sliver where a reservation
    // merely abuts the window boundary is not load (the same rule
    // Window::intersects applies to zero-length overlaps).
    if (approxGt(OverlapEnd, OverlapStart))
      Busy += OverlapEnd - OverlapStart;
  }
  return Busy / (WindowEnd - WindowStart).value();
}

std::vector<double> PricingEngine::update(ComputingDomain &Domain,
                                          TimePoint WindowStart,
                                          TimePoint WindowEnd) {
  ECOSCHED_CHECK(BasePrices.size() == Domain.pool().size(),
                 "captured {} base prices for {} nodes: call "
                 "captureBasePrices() before update(), and after adding "
                 "nodes",
                 BasePrices.size(), Domain.pool().size());
  std::vector<double> Utilizations;
  Utilizations.reserve(Domain.pool().size());
  for (const ResourceNode &Node : Domain.pool()) {
    const double Utilization =
        nodeUtilization(Domain, Node.Id, WindowStart, WindowEnd);
    Utilizations.push_back(Utilization);
    const double Error = Utilization - Cfg.TargetUtilization;
    const double Base = BasePrices[static_cast<size_t>(Node.Id)];
    const double Proposed =
        Node.UnitPrice * (1.0 + Cfg.Sensitivity * Error);
    const double Clamped = std::clamp(Proposed, Cfg.MinFactor * Base,
                                      Cfg.MaxFactor * Base);
    Domain.setNodePrice(Node.Id, Price(Clamped));
  }
  return Utilizations;
}
