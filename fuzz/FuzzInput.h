//===-- fuzz/FuzzInput.h - Byte-stream decoder for fuzz targets ----*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal FuzzedDataProvider-style decoder: turns the fuzzer's raw
/// byte string into bounded integers and finite doubles so the harness
/// can build structurally valid (but adversarially shaped) slots, jobs,
/// and operation sequences. Exhausted input yields zeros, so every byte
/// string decodes to *some* test case and the fuzzer is never rejected
/// at the decode stage.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_FUZZ_FUZZINPUT_H
#define ECOSCHED_FUZZ_FUZZINPUT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace ecosched {
namespace fuzz {

class FuzzInput {
public:
  FuzzInput(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t remaining() const { return Size - Pos; }
  bool empty() const { return Pos >= Size; }

  uint8_t takeByte() { return empty() ? 0 : Data[Pos++]; }

  bool takeBool() { return (takeByte() & 1) != 0; }

  uint32_t takeU32() {
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V = (V << 8) | takeByte();
    return V;
  }

  /// Uniform-ish integer in [Lo, Hi]; Lo when the range is degenerate.
  int takeIntInRange(int Lo, int Hi) {
    if (Hi <= Lo)
      return Lo;
    const uint32_t Span = static_cast<uint32_t>(Hi - Lo) + 1;
    return Lo + static_cast<int>(takeU32() % Span);
  }

  /// Finite double in [Lo, Hi] with 2^-32 granularity — never NaN/inf,
  /// so contract-checked constructors (Slot, Window) accept it and any
  /// failure the harness sees is the library's, not the decoder's.
  double takeDoubleInRange(double Lo, double Hi) {
    const double Fraction =
        static_cast<double>(takeU32()) / 4294967295.0; // 2^32 - 1
    return Lo + (Hi - Lo) * Fraction;
  }

  /// Double snapped to a multiple of \p Step within [Lo, Hi]. The slot
  /// fuzzers quantize boundaries far above TimeEpsilon so tolerant
  /// comparisons behave exactly and the differential oracle is crisp.
  double takeQuantized(double Lo, double Hi, double Step) {
    const int Steps = static_cast<int>((Hi - Lo) / Step);
    return Lo + Step * takeIntInRange(0, Steps);
  }

  /// The rest of the input as text (for the trace-format fuzzer).
  std::string takeRemainingString() {
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  Size - Pos);
    Pos = Size;
    return S;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace fuzz
} // namespace ecosched

#endif // ECOSCHED_FUZZ_FUZZINPUT_H
