file(REMOVE_RECURSE
  "../bench/fig6_cost_minimization"
  "../bench/fig6_cost_minimization.pdb"
  "CMakeFiles/fig6_cost_minimization.dir/fig6_cost_minimization.cpp.o"
  "CMakeFiles/fig6_cost_minimization.dir/fig6_cost_minimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cost_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
