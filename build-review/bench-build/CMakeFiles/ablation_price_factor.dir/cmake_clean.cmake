file(REMOVE_RECURSE
  "../bench/ablation_price_factor"
  "../bench/ablation_price_factor.pdb"
  "CMakeFiles/ablation_price_factor.dir/ablation_price_factor.cpp.o"
  "CMakeFiles/ablation_price_factor.dir/ablation_price_factor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_price_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
