//===-- NondetCache.h - archlint negative fixture -----------------*- C++ -*-=//
//
// Deliberately violates the detlint determinism rules: an unordered
// container and a pointer-keyed map in a result-affecting layer. The
// ArchLintNegativeDeterminism ctest lints this tree and is marked
// WILL_FAIL — if the linter ever stops flagging these hazards, CI fails.
//
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_NONDETCACHE_H
#define ECOSCHED_CORE_NONDETCACHE_H

#include <map>
#include <unordered_map>

struct Window;

struct NondetCache {
  std::unordered_map<int, double> ByHashOrder;
  std::map<const Window *, double> ByAddressOrder;
};

#endif // ECOSCHED_CORE_NONDETCACHE_H
