//===-- tests/property/SubtractionPropertyTest.cpp - List invariants ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Property tests of the slot-subtraction machinery under the full
/// batch search: alternatives never intersect, the working list keeps
/// its invariants, and vacant time is conserved exactly.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

using namespace ecosched;

class SubtractionPropertyTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    RandomGenerator Rng(GetParam());
    List = SlotGenerator().generate(Rng);
    Jobs = JobGenerator().generate(Rng);
  }

  SlotList List;
  Batch Jobs;
};

TEST_P(SubtractionPropertyTest, WindowSubtractionConservesMeasure) {
  AmpSearch Amp;
  SlotList Work = List;
  for (const Job &J : Jobs) {
    const auto W = Amp.findWindow(Work, J.Request);
    if (!W)
      continue;
    const double Before = Work.totalSpan();
    double Reserved = 0.0;
    for (const WindowSlot &M : *W)
      Reserved += M.Runtime;
    ASSERT_TRUE(W->subtractFrom(Work));
    EXPECT_NEAR(Work.totalSpan(), Before - Reserved, 1e-6);
    EXPECT_TRUE(Work.checkInvariants());
  }
}

TEST_P(SubtractionPropertyTest, AlternativesArePairwiseDisjoint) {
  for (const bool UseAmp : {false, true}) {
    AlpSearch Alp;
    AmpSearch Amp;
    const SlotSearchAlgorithm &Algo =
        UseAmp ? static_cast<const SlotSearchAlgorithm &>(Amp)
               : static_cast<const SlotSearchAlgorithm &>(Alp);
    const AlternativeSet Alts = AlternativeSearch(Algo).run(List, Jobs);

    std::vector<const Window *> All;
    for (const auto &PerJob : Alts.PerJob)
      for (const Window &W : PerJob)
        All.push_back(&W);
    for (size_t I = 0; I < All.size(); ++I)
      for (size_t J = I + 1; J < All.size(); ++J)
        ASSERT_FALSE(All[I]->intersects(*All[J]))
            << Algo.name() << " windows " << I << " and " << J;
  }
}

TEST_P(SubtractionPropertyTest, AmpFindsMoreAlternativesThanAlp) {
  AlpSearch Alp;
  AmpSearch Amp;
  const AlternativeSet AlpAlts = AlternativeSearch(Alp).run(List, Jobs);
  const AlternativeSet AmpAlts = AlternativeSearch(Amp).run(List, Jobs);
  // Section 6: AMP's search space strictly contains ALP's. Per-pass
  // interactions mean this is a statistical, not per-instance, claim;
  // it holds for every generator seed we pin here.
  EXPECT_GE(AmpAlts.total(), AlpAlts.total());
}

TEST_P(SubtractionPropertyTest, AlternativesFitOriginalVacancy) {
  AmpSearch Amp;
  const AlternativeSet Alts = AlternativeSearch(Amp).run(List, Jobs);
  // Every alternative must carve out of the original list: subtracting
  // all of them in discovery order succeeds.
  SlotList Work = List;
  // Re-run the search interleaved to reproduce discovery order is
  // complex; instead check each member span lies inside some original
  // slot of the same node.
  for (const auto &PerJob : Alts.PerJob)
    for (const Window &W : PerJob)
      for (const WindowSlot &M : W) {
        bool Contained = false;
        for (const Slot &S : List)
          if (S.NodeId == M.Source.NodeId &&
              S.Start <= W.startTime().value() + 1e-9 &&
              S.End >= W.startTime().value() + M.Runtime - 1e-9) {
            Contained = true;
            break;
          }
        ASSERT_TRUE(Contained);
      }
  (void)Work;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractionPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));
