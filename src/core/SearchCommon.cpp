//===-- core/SearchCommon.cpp - Shared search helpers ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SearchCommon.h"

using namespace ecosched;

Window ecosched::detail::buildWindow(TimePoint StartTime,
                                     std::span<const Slot *const> Chosen,
                                     const ResourceRequest &Req) {
  ECOSCHED_CHECK(!Chosen.empty(), "cannot build a window from zero slots");
  std::vector<WindowSlot> Members;
  Members.reserve(Chosen.size());
  for (const Slot *S : Chosen) {
    WindowSlot M;
    M.Source = *S;
    M.Runtime = S->runtimeFor(Req.Volume).value();
    M.Cost = slotUsageCost(*S, Req).value();
    Members.push_back(M);
  }
  Window Result(StartTime, std::move(Members));
  ECOSCHED_DVALIDATE(Result.validate(static_cast<size_t>(Req.NodeCount)));
  return Result;
}
