//===-- sim/TraceIO.cpp - Workload trace persistence ----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceIO.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace ecosched;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

/// RAII FILE handle.
struct FileHandle {
  std::FILE *F = nullptr;
  FileHandle(const char *Path, const char *Mode)
      : F(std::fopen(Path, Mode)) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
};

/// Reads all lines of \p Path; false on open failure.
bool readLines(const std::string &Path, std::vector<std::string> &Lines,
               std::string *Error) {
  FileHandle In(Path.c_str(), "r");
  if (!In.F) {
    setError(Error, "cannot open '" + Path + "' for reading");
    return false;
  }
  std::string Current;
  char Buffer[512];
  while (std::fgets(Buffer, sizeof(Buffer), In.F)) {
    Current += Buffer;
    if (!Current.empty() && Current.back() == '\n') {
      Current.pop_back();
      Lines.push_back(Current);
      Current.clear();
    }
  }
  if (!Current.empty())
    Lines.push_back(Current);
  return true;
}

bool isSkippable(const std::string &Line) {
  for (const char C : Line) {
    if (C == '#')
      return true;
    if (C != ' ' && C != '\t')
      return false;
  }
  return true; // Blank line.
}

} // namespace

bool ecosched::saveSlotTrace(const SlotList &List, const std::string &Path,
                             std::string *Error) {
  FileHandle Out(Path.c_str(), "w");
  if (!Out.F) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::fputs("# ecosched slot trace v1\n", Out.F);
  for (const Slot &S : List)
    std::fprintf(Out.F, "slot %d %.17g %.17g %.17g %.17g\n", S.NodeId,
                 S.Performance, S.UnitPrice, S.Start, S.End);
  return true;
}

std::optional<SlotList>
ecosched::loadSlotTrace(const std::string &Path, std::string *Error) {
  std::vector<std::string> Lines;
  if (!readLines(Path, Lines, Error))
    return std::nullopt;

  std::vector<Slot> Slots;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (isSkippable(Line))
      continue;
    int NodeId = 0;
    double Performance = 0.0, Price = 0.0, Start = 0.0, End = 0.0;
    if (std::sscanf(Line.c_str(), "slot %d %lg %lg %lg %lg", &NodeId,
                    &Performance, &Price, &Start, &End) != 5) {
      setError(Error, "line " + std::to_string(LineNo + 1) +
                          ": expected 'slot <node> <perf> <price> "
                          "<start> <end>'");
      return std::nullopt;
    }
    if (Performance <= 0.0 || End < Start) {
      setError(Error, "line " + std::to_string(LineNo + 1) +
                          ": invalid slot parameters");
      return std::nullopt;
    }
    Slots.emplace_back(NodeId, Performance, Price, Start, End);
  }
  return SlotList(std::move(Slots));
}

bool ecosched::saveBatchTrace(const Batch &Jobs, const std::string &Path,
                              std::string *Error) {
  FileHandle Out(Path.c_str(), "w");
  if (!Out.F) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::fputs("# ecosched job trace v1\n", Out.F);
  for (const Job &J : Jobs)
    std::fprintf(
        Out.F, "job %d %d %.17g %.17g %.17g %.17g %s\n", J.Id,
        J.Request.NodeCount, J.Request.Volume, J.Request.MinPerformance,
        J.Request.MaxUnitPrice, J.Request.BudgetFactor,
        J.Request.BudgetPolicy == BudgetPolicyKind::SpanBased ? "span"
                                                              : "volume");
  return true;
}

std::optional<Batch> ecosched::loadBatchTrace(const std::string &Path,
                                              std::string *Error) {
  std::vector<std::string> Lines;
  if (!readLines(Path, Lines, Error))
    return std::nullopt;

  Batch Jobs;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (isSkippable(Line))
      continue;
    Job J;
    char Policy[16] = {};
    if (std::sscanf(Line.c_str(), "job %d %d %lg %lg %lg %lg %15s",
                    &J.Id, &J.Request.NodeCount, &J.Request.Volume,
                    &J.Request.MinPerformance, &J.Request.MaxUnitPrice,
                    &J.Request.BudgetFactor, Policy) != 7) {
      setError(Error, "line " + std::to_string(LineNo + 1) +
                          ": expected 'job <id> <nodes> <volume> "
                          "<min-perf> <max-price> <rho> <span|volume>'");
      return std::nullopt;
    }
    if (std::strcmp(Policy, "span") == 0) {
      J.Request.BudgetPolicy = BudgetPolicyKind::SpanBased;
    } else if (std::strcmp(Policy, "volume") == 0) {
      J.Request.BudgetPolicy = BudgetPolicyKind::VolumeBased;
    } else {
      setError(Error, "line " + std::to_string(LineNo + 1) +
                          ": unknown budget policy '" +
                          std::string(Policy) + "'");
      return std::nullopt;
    }
    if (J.Request.NodeCount <= 0 || J.Request.Volume <= 0.0 ||
        J.Request.MinPerformance <= 0.0) {
      setError(Error, "line " + std::to_string(LineNo + 1) +
                          ": invalid job parameters");
      return std::nullopt;
    }
    Jobs.push_back(J);
  }
  return Jobs;
}
