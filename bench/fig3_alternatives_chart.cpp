//===-- bench/fig3_alternatives_chart.cpp - Reproduces Fig. 3 -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E3 (DESIGN.md): the final chart of all alternatives found
/// during the AMP search on the Section 4 environment (Fig. 3), plus
/// the Section 4 observation that ALP cannot use cpu6 (unit cost 12 >
/// per-slot cap 10 for Job 2) while AMP alternatives do.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "sim/GanttChart.h"
#include "sim/PaperExample.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("fig3_alternatives_chart",
                 "Fig. 3: all alternatives of the AMP search");
  const std::string &SvgPath = Args.addString(
      "svg", "", "write the chart as an SVG figure to this path");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Fig. 3 reproduction: all alternatives found during AMP "
              "search\n");
  std::printf("===========================================================\n"
              "\n");

  ComputingDomain Domain = buildPaperExampleDomain();
  const Batch Jobs = buildPaperExampleBatch();
  const SlotList Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));

  AlpSearch Alp;
  AmpSearch Amp;
  const AlternativeSet AmpAlts = AlternativeSearch(Amp).run(Slots, Jobs);
  const AlternativeSet AlpAlts = AlternativeSearch(Alp).run(Slots, Jobs);

  // Chart: every AMP alternative of job i drawn with digit i+1.
  std::vector<ChartWindow> Overlay;
  const char Fills[] = {'1', '2', '3'};
  for (size_t I = 0; I < AmpAlts.PerJob.size(); ++I)
    for (const Window &W : AmpAlts.PerJob[I])
      Overlay.push_back({&W, Fills[I % 3]});
  std::printf("%s\n", renderDomainChart(Domain, Overlay,
                                        PaperExampleHorizonStart,
                                        PaperExampleHorizonEnd)
                          .c_str());

  TablePrinter Table;
  Table.addColumn("job");
  Table.addColumn("AMP alternatives");
  Table.addColumn("ALP alternatives");
  Table.addColumn("AMP uses cpu6", TablePrinter::AlignKind::Left);
  Table.addColumn("ALP uses cpu6", TablePrinter::AlignKind::Left);
  for (size_t I = 0; I < Jobs.size(); ++I) {
    bool AmpCpu6 = false, AlpCpu6 = false;
    for (const Window &W : AmpAlts.PerJob[I])
      AmpCpu6 |= W.usesNode(5);
    for (const Window &W : AlpAlts.PerJob[I])
      AlpCpu6 |= W.usesNode(5);
    Table.beginRow();
    Table.addCell(static_cast<long long>(Jobs[I].Id));
    Table.addCell(static_cast<long long>(AmpAlts.PerJob[I].size()));
    Table.addCell(static_cast<long long>(AlpAlts.PerJob[I].size()));
    Table.addCell(std::string(AmpCpu6 ? "yes" : "no"));
    Table.addCell(std::string(AlpCpu6 ? "yes" : "no"));
  }
  Table.print(stdout);

  if (!SvgPath.empty()) {
    const SvgDocument Doc =
        renderDomainSvg(Domain, Overlay, PaperExampleHorizonStart,
                        PaperExampleHorizonEnd);
    if (Doc.write(SvgPath))
      std::printf("wrote %s\n", SvgPath.c_str());
  }

  std::printf("\ntotal alternatives: AMP %zu, ALP %zu\n", AmpAlts.total(),
              AlpAlts.total());
  std::printf("paper: AMP finds alternatives using cpu6 (unit cost 12), "
              "which ALP's per-slot cap (10 for Job 2) excludes.\n");
  return 0;
}
