# Empty compiler generated dependencies file for ablation_domain_workload.
# This may be replaced when dependencies are built.
