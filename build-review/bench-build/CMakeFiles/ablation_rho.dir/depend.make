# Empty dependencies file for ablation_rho.
# This may be replaced when dependencies are built.
