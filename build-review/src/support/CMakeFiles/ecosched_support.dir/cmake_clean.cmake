file(REMOVE_RECURSE
  "CMakeFiles/ecosched_support.dir/Check.cpp.o"
  "CMakeFiles/ecosched_support.dir/Check.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/CommandLine.cpp.o"
  "CMakeFiles/ecosched_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/Plot.cpp.o"
  "CMakeFiles/ecosched_support.dir/Plot.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/Random.cpp.o"
  "CMakeFiles/ecosched_support.dir/Random.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/Statistics.cpp.o"
  "CMakeFiles/ecosched_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/Svg.cpp.o"
  "CMakeFiles/ecosched_support.dir/Svg.cpp.o.d"
  "CMakeFiles/ecosched_support.dir/Table.cpp.o"
  "CMakeFiles/ecosched_support.dir/Table.cpp.o.d"
  "libecosched_support.a"
  "libecosched_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecosched_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
