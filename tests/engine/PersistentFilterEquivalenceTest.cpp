//===-- tests/engine/PersistentFilterEquivalenceTest.cpp - Twin VOs -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-iteration reuse-vs-rebuild differential gate: a VO running
/// with the persistent filter (Config::ReuseFilter on) must reproduce
/// the from-scratch oracle (ReuseFilter off) bitwise — every iteration
/// report, scheduled window, completed job, income cent — for every
/// algorithm (ALP / AMP / backfill), pool size {1, 2, 8}, and at least
/// 8 adversarial ScheduleFuzz seeds, through a scenario that exercises
/// each delta source mid-stream: arrivals, completions, node failure
/// and repair, user cancellation, owner repricing and local tasks, and
/// a queued-budget (rho) change. Exact floating-point comparison on
/// purpose; the reconciliation counters are deliberately excluded —
/// they are the one legitimate difference between the paths.
///
//===----------------------------------------------------------------------===//

#include "engine/VirtualOrganization.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/DpOptimizer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ecosched;

namespace {

constexpr uint64_t FuzzSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0, "n0");
  D.addNode(1.5, 1.25, "n1");
  D.addNode(2.0, 1.5, "n2");
  D.addNode(1.0, 0.75, "n3");
  return D;
}

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

/// Everything one run observably produces, for exact comparison.
struct VoTrace {
  std::vector<VirtualOrganization::IterationReport> Reports;
  std::vector<CompletedJob> Completed;
  std::vector<int> Dropped;
  double Income = 0.0;
};

/// Runs the mid-stream scenario: submissions every iteration, a node
/// failure with requeue, a repair, a cancellation of a queued and of a
/// running job, an owner repricing plus local task, and a rho change.
VoTrace runScenario(const SlotSearchAlgorithm &Algo, bool ReuseFilter,
                    ThreadPool *Pool) {
  DpOptimizer Dp;
  Metascheduler::Config SchedCfg;
  SchedCfg.Search.Pool = Pool;
  SchedCfg.Search.MaxAlternativesPerJob = 4;
  Metascheduler Scheduler(Algo, Dp, SchedCfg);

  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 100.0;
  Cfg.HorizonLength = 500.0;
  Cfg.MaxAttempts = 6;
  Cfg.ReuseFilter = ReuseFilter;
  VirtualOrganization Vo(makeDomain(), Scheduler, Cfg);

  VoTrace Trace;
  int NextId = 1;
  for (size_t Iter = 0; Iter < 14; ++Iter) {
    // Two arrivals per iteration with drifting shapes.
    const double Volume = 40.0 + 7.0 * static_cast<double>(Iter % 5);
    Vo.submit(makeJob(NextId++, 1 + static_cast<int>(Iter % 2), Volume,
                      1.6));
    Vo.submit(makeJob(NextId++, 1, Volume * 0.5, 1.1));

    switch (Iter) {
    case 3:
      Vo.injectNodeFailure(1);
      break;
    case 5:
      Vo.repairNode(1);
      break;
    case 6:
      Vo.cancelJob(NextId - 1); // Still queued this iteration.
      break;
    case 7:
      Vo.cancelJob(1); // Long gone or running; releases if running.
      break;
    case 8:
      Vo.mutableDomain().setNodePrice(2, Price(1.1));
      Vo.mutableDomain().addLocalTask(0, TimePoint(Vo.now().value() + 150.0), TimePoint(Vo.now().value() + 260.0));
      break;
    case 10:
      Vo.setQueuedBudgetFactor(0.85);
      break;
    default:
      break;
    }
    Trace.Reports.push_back(Vo.runIteration());
  }
  // Drain: let committed work finish.
  for (size_t Iter = 0; Iter < 6; ++Iter)
    Trace.Reports.push_back(Vo.runIteration());

  Trace.Completed = Vo.completed();
  Trace.Dropped = Vo.dropped();
  Trace.Income = Vo.totalIncome().value();
  return Trace;
}

/// Bitwise comparison of everything except the search stats (the
/// reconciliation counters legitimately differ between the paths).
void expectSameTrace(const VoTrace &A, const VoTrace &B) {
  ASSERT_EQ(A.Reports.size(), B.Reports.size());
  for (size_t R = 0; R < A.Reports.size(); ++R) {
    SCOPED_TRACE("iteration " + std::to_string(R));
    const VirtualOrganization::IterationReport &X = A.Reports[R];
    const VirtualOrganization::IterationReport &Y = B.Reports[R];
    ASSERT_EQ(X.Now, Y.Now);
    ASSERT_EQ(X.QueueLength, Y.QueueLength);
    ASSERT_EQ(X.Committed, Y.Committed);
    ASSERT_EQ(X.Dropped, Y.Dropped);
    ASSERT_EQ(X.Outcome.TimeQuota, Y.Outcome.TimeQuota);
    ASSERT_EQ(X.Outcome.VoBudget, Y.Outcome.VoBudget);
    ASSERT_EQ(X.Outcome.Postponed, Y.Outcome.Postponed);
    ASSERT_EQ(X.Outcome.Alternatives.total(),
              Y.Outcome.Alternatives.total());
    ASSERT_EQ(X.Outcome.Scheduled.size(), Y.Outcome.Scheduled.size());
    for (size_t S = 0; S < X.Outcome.Scheduled.size(); ++S) {
      const ScheduledJob &P = X.Outcome.Scheduled[S];
      const ScheduledJob &Q = Y.Outcome.Scheduled[S];
      ASSERT_EQ(P.JobId, Q.JobId);
      ASSERT_EQ(P.BatchIndex, Q.BatchIndex);
      ASSERT_EQ(P.AlternativeIndex, Q.AlternativeIndex);
      ASSERT_EQ(P.W.startTime().value(), Q.W.startTime().value());
      ASSERT_EQ(P.W.endTime().value(), Q.W.endTime().value());
      ASSERT_EQ(P.W.totalCost().value(), Q.W.totalCost().value());
      ASSERT_EQ(P.W.size(), Q.W.size());
      for (size_t M = 0; M < P.W.size(); ++M) {
        ASSERT_EQ(P.W[M].Source.NodeId, Q.W[M].Source.NodeId);
        ASSERT_EQ(P.W[M].Source.Start, Q.W[M].Source.Start);
        ASSERT_EQ(P.W[M].Source.End, Q.W[M].Source.End);
        ASSERT_EQ(P.W[M].Cost, Q.W[M].Cost);
      }
    }
  }
  ASSERT_EQ(A.Completed.size(), B.Completed.size());
  for (size_t C = 0; C < A.Completed.size(); ++C) {
    ASSERT_EQ(A.Completed[C].JobId, B.Completed[C].JobId);
    ASSERT_EQ(A.Completed[C].StartTime, B.Completed[C].StartTime);
    ASSERT_EQ(A.Completed[C].EndTime, B.Completed[C].EndTime);
    ASSERT_EQ(A.Completed[C].Cost, B.Completed[C].Cost);
    ASSERT_EQ(A.Completed[C].Attempts, B.Completed[C].Attempts);
  }
  ASSERT_EQ(A.Dropped, B.Dropped);
  ASSERT_EQ(A.Income, B.Income);
}

struct NamedAlgo {
  const char *Name;
  const SlotSearchAlgorithm &Algo;
};

} // namespace

TEST(PersistentFilterEquivalenceTest, ReuseMatchesRebuildSerially) {
  const AlpSearch Alp;
  const AmpSearch Amp;
  const BackfillSearch Backfill;
  const NamedAlgo Algos[] = {{"ALP", Alp}, {"AMP", Amp},
                             {"backfill", Backfill}};
  for (const NamedAlgo &A : Algos) {
    SCOPED_TRACE(A.Name);
    expectSameTrace(runScenario(A.Algo, /*ReuseFilter=*/false, nullptr),
                    runScenario(A.Algo, /*ReuseFilter=*/true, nullptr));
  }
}

TEST(PersistentFilterEquivalenceTest, ReuseMatchesRebuildAcrossPoolSizes) {
  const AlpSearch Alp;
  const AmpSearch Amp;
  const BackfillSearch Backfill;
  const NamedAlgo Algos[] = {{"ALP", Alp}, {"AMP", Amp},
                             {"backfill", Backfill}};
  for (const NamedAlgo &A : Algos) {
    const VoTrace Oracle =
        runScenario(A.Algo, /*ReuseFilter=*/false, nullptr);
    for (const size_t Threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::string(A.Name) + " pool " +
                   std::to_string(Threads));
      ThreadPool Pool(Threads);
      expectSameTrace(Oracle,
                      runScenario(A.Algo, /*ReuseFilter=*/true, &Pool));
    }
  }
}

TEST(PersistentFilterEquivalenceTest, ReuseMatchesRebuildUnderScheduleFuzz) {
  // Adversarial worker scheduling on top of the reuse path: ALP with a
  // pool of 8 under every fuzz seed must still reproduce the serial
  // rebuild oracle bitwise.
  const AlpSearch Alp;
  const VoTrace Oracle =
      runScenario(Alp, /*ReuseFilter=*/false, nullptr);
  for (const uint64_t Seed : FuzzSeeds) {
    SCOPED_TRACE("fuzz seed " + std::to_string(Seed));
    ThreadPool Pool(8, ThreadPool::ScheduleFuzz{/*Enabled=*/true, Seed});
    expectSameTrace(Oracle,
                    runScenario(Alp, /*ReuseFilter=*/true, &Pool));
  }
}

TEST(PersistentFilterEquivalenceTest, UnfilteredOracleUnaffectedByReuseFlag) {
  // With the filter disabled entirely (textbook loop) the reuse flag
  // must be inert: no views exist, so no filter state is created.
  const AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler::Config SchedCfg;
  SchedCfg.Search.UseFilter = false;
  Metascheduler Scheduler(Amp, Dp, SchedCfg);
  VirtualOrganization::Config Cfg;
  Cfg.ReuseFilter = true;
  VirtualOrganization Vo(makeDomain(), Scheduler, Cfg);
  Vo.submit(makeJob(1, 1, 60.0, 1.6));
  Vo.runIteration();
  const SearchStats &Stats = Vo.filterStats();
  EXPECT_EQ(Stats.FilterViewReuses + Stats.FilterViewRebuilds +
                Stats.FilterDeltaOps,
            0u);
}

TEST(PersistentFilterEquivalenceTest, FilterStatsReportReuseInSteadyState) {
  // Counter plumbing: after the first iteration, carried-over jobs must
  // show up as view reuses in both the VO accumulator and the
  // per-iteration outcome stats.
  const AlpSearch Alp;
  DpOptimizer Dp;
  Metascheduler Scheduler(Alp, Dp);
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 50.0; // Short: jobs stay queued across syncs.
  Cfg.HorizonLength = 400.0;
  VirtualOrganization Vo(makeDomain(), Scheduler, Cfg);
  // An unplaceable job keeps re-entering the batch with an identical
  // request, so its view must be reused every iteration after the
  // first.
  Vo.submit(makeJob(1, 9, 40.0, 1.6));
  const auto First = Vo.runIteration();
  EXPECT_EQ(First.Outcome.Stats.FilterViewRebuilds, 1u);
  EXPECT_EQ(First.Outcome.Stats.FilterViewReuses, 0u);
  const auto Second = Vo.runIteration();
  EXPECT_EQ(Second.Outcome.Stats.FilterViewReuses, 1u);
  EXPECT_EQ(Second.Outcome.Stats.FilterViewRebuilds, 0u);
  EXPECT_EQ(Vo.filterStats().FilterViewReuses, 1u);
  EXPECT_EQ(Vo.filterStats().FilterViewRebuilds, 1u);
}
