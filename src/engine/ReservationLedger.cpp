//===-- engine/ReservationLedger.cpp - Reservation bookkeeping ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/ReservationLedger.h"

#include "support/Check.h"

#include <algorithm>

using namespace ecosched;

void ReservationLedger::commit(ComputingDomain &D, const ScheduledJob &S,
                               const Job &Spec, int Attempts) {
  const bool Ok = D.reserveWindow(S.W, S.JobId);
  ECOSCHED_CHECK(Ok,
                 "scheduled window for job {} starting at {} conflicts "
                 "with domain occupancy",
                 S.JobId, S.W.startTime());
  RunningJob R;
  R.JobId = S.JobId;
  R.StartTime = S.W.startTime();
  R.EndTime = S.W.endTime();
  R.Cost = S.W.totalCost();
  R.Attempts = Attempts;
  R.Spec = Spec;
  for (const WindowSlot &M : S.W)
    R.Nodes.push_back(M.Source.NodeId);
  Running.push_back(std::move(R));
}

void ReservationLedger::retireFinished(double Now) {
  for (const RunningJob &R : Running) {
    if (approxGt(R.EndTime, Now))
      continue;
    Completed.push_back({R.JobId, R.StartTime, R.EndTime, R.Cost,
                         R.Attempts});
  }
  std::erase_if(Running, [Now](const RunningJob &R) {
    return approxLe(R.EndTime, Now);
  });
}

bool ReservationLedger::release(ComputingDomain &D, int JobId) {
  const auto It = std::find_if(
      Running.begin(), Running.end(),
      [JobId](const RunningJob &R) { return R.JobId == JobId; });
  if (It == Running.end())
    return false;
  D.releaseExternalJob(JobId);
  // A reservation that has not started (or only partially elapsed) must
  // vanish completely; leftovers on failed nodes were wiped at failure
  // time, so the in-service count is exact.
  ECOSCHED_CHECK(D.externalReservationCount(JobId) == 0,
                 "released job {} still holds reservations in the domain",
                 JobId);
  Running.erase(It);
  return true;
}

std::vector<ReservationLedger::RequeuedJob>
ReservationLedger::cancelOnNode(ComputingDomain &D, int NodeId, double Now) {
  const size_t RunningBefore = Running.size();
  const std::vector<int> Cancelled = D.failNode(NodeId, Now);

  // Requeue every affected job that is still running; reservations on
  // the healthy nodes of a cancelled window are released as well so the
  // job can be rescheduled as a whole.
  std::vector<RequeuedJob> Requeued;
  for (const int JobId : Cancelled) {
    const auto It = std::find_if(
        Running.begin(), Running.end(),
        [JobId](const RunningJob &R) { return R.JobId == JobId; });
    if (It == Running.end())
      continue; // Already finished bookkeeping-wise.
    D.releaseExternalJob(JobId);
    ECOSCHED_CHECK(D.externalReservationCount(JobId) == 0,
                   "failure-cancelled job {} still holds reservations on "
                   "in-service nodes",
                   JobId);
    Requeued.push_back({It->Spec, It->Attempts});
    Running.erase(It);
  }
  // A failed node without reservations must leave the ledger untouched;
  // in general the running set shrinks by exactly the requeued jobs.
  ECOSCHED_CHECK(Running.size() + Requeued.size() == RunningBefore,
                 "failure of node {} requeued {} jobs but the running set "
                 "shrank from {} to {}",
                 NodeId, Requeued.size(), RunningBefore, Running.size());
  return Requeued;
}

bool ReservationLedger::isRunning(int JobId) const {
  return std::any_of(Running.begin(), Running.end(),
                     [JobId](const RunningJob &R) {
                       return R.JobId == JobId;
                     });
}

double ReservationLedger::totalIncome() const {
  double Income = 0.0;
  for (const CompletedJob &C : Completed)
    Income += C.Cost;
  return Income;
}
