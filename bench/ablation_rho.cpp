//===-- bench/ablation_rho.cpp - Budget scaling S = rho*C*t*N -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E9 (DESIGN.md): Section 6 proposes reducing the AMP job
/// budget to S = rho*C*t*N (rho < 1, e.g. 0.8) to curb AMP's cost
/// overhead. This ablation sweeps rho under time minimization and shows
/// the trade: smaller rho narrows the admissible windows (fewer
/// alternatives, costs approach ALP's) while giving back part of the
/// time gain.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_rho",
                 "Section 6 budget scaling: sweep rho in S = rho*C*t*N");
  const int64_t &Iterations =
      Args.addInt("iterations", 600, "iterations per rho value");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Section 6 ablation: AMP budget scaling S = rho*C*t*N "
              "(time minimization)\n");
  std::printf("====================================================="
              "===============\n\n");

  TablePrinter Table;
  Table.addColumn("rho");
  Table.addColumn("counted");
  Table.addColumn("AMP alts/job");
  Table.addColumn("AMP time");
  Table.addColumn("AMP cost");
  Table.addColumn("ALP time");
  Table.addColumn("ALP cost");
  Table.addColumn("cost overhead %");

  for (const double Rho : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    ExperimentConfig Cfg;
    Cfg.Iterations = Iterations;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.Task = OptimizationTaskKind::MinimizeTime;
    Cfg.Jobs.BudgetFactor = Rho;
    const ExperimentResult R = PairedExperiment(Cfg).run();

    Table.beginRow();
    Table.addCell(Rho, 2);
    Table.addCell(static_cast<long long>(R.CountedIterations));
    Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
    Table.addCell(R.Amp.JobTime.mean(), 2);
    Table.addCell(R.Amp.JobCost.mean(), 2);
    Table.addCell(R.Alp.JobTime.mean(), 2);
    Table.addCell(R.Alp.JobCost.mean(), 2);
    Table.addCell(
        R.Alp.JobCost.mean() > 0.0
            ? 100.0 * (R.Amp.JobCost.mean() / R.Alp.JobCost.mean() - 1.0)
            : 0.0,
        1);
  }
  Table.print(stdout);

  std::printf("\nreading: rho trades AMP's cost overhead against its "
              "time gain; the paper suggests rho ~ 0.8 for cheaper "
              "schedules on busy periods. (ALP ignores rho: its "
              "restriction is per slot.)\n");
  return 0;
}
