//===-- sim/SlotList.cpp - Ordered list of vacant slots ------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/SlotList.h"

#include <algorithm>

using namespace ecosched;

SlotList::SlotList(std::vector<Slot> InitialSlots)
    : Slots(std::move(InitialSlots)) {
  std::stable_sort(Slots.begin(), Slots.end(), slotStartLess);
}

void SlotList::insert(const Slot &S) {
  if (S.length() <= TimeEpsilon)
    return;
  auto Pos = std::upper_bound(Slots.begin(), Slots.end(), S, slotStartLess);
  Slots.insert(Pos, S);
}

bool SlotList::subtract(int NodeId, double Start, double End) {
  if (End - Start <= TimeEpsilon)
    return true; // Nothing to reserve.
  for (auto It = Slots.begin(), E = Slots.end(); It != E; ++It) {
    if (It->NodeId != NodeId)
      continue;
    if (It->Start > Start + TimeEpsilon)
      continue; // Slots are sorted; a later slot cannot contain Start,
                // but keep scanning in case of equal starts on the node.
    if (It->End < End - TimeEpsilon)
      continue;
    // Found the containing slot K; split it into K1 and K2.
    Slot K = *It;
    Slots.erase(It);
    insert(Slot(K.NodeId, K.Performance, K.UnitPrice, K.Start, Start));
    insert(Slot(K.NodeId, K.Performance, K.UnitPrice, End, K.End));
    return true;
  }
  return false;
}

double SlotList::totalSpan() const {
  double Total = 0.0;
  for (const Slot &S : Slots)
    Total += S.length();
  return Total;
}

bool SlotList::checkInvariants() const {
  for (size_t I = 1, E = Slots.size(); I < E; ++I)
    if (Slots[I - 1].Start > Slots[I].Start + TimeEpsilon)
      return false;
  // Per-node disjointness: O(n^2) scan is fine for test-time checking.
  for (size_t I = 0, E = Slots.size(); I < E; ++I) {
    if (Slots[I].length() <= TimeEpsilon)
      return false; // Zero-length slots must not be stored.
    for (size_t J = I + 1; J < E; ++J) {
      if (Slots[I].NodeId != Slots[J].NodeId)
        continue;
      const double OverlapStart = std::max(Slots[I].Start, Slots[J].Start);
      const double OverlapEnd = std::min(Slots[I].End, Slots[J].End);
      if (OverlapEnd - OverlapStart > TimeEpsilon)
        return false;
    }
  }
  return true;
}
