//===-- examples/trace_replay.cpp - Persist and replay workloads ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload persistence round-trip: generate one Section 5 scheduling
/// iteration (slot list + job batch), archive it as plain-text traces,
/// reload it, and verify the reloaded workload schedules to the exact
/// same result. This is how experiment inputs are pinned for
/// regression comparisons across machines and revisions.
///
/// Run: build/examples/trace_replay [--seed=S] [--dir=PATH] [--keep]
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "sim/TraceIO.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace ecosched;

namespace {

/// Summarizes one scheduling run for comparison.
struct RunSummary {
  size_t Scheduled = 0;
  double TotalTime = 0.0;
  double TotalCost = 0.0;
};

RunSummary schedule(const SlotList &Slots, const Batch &Jobs) {
  static AmpSearch Amp;
  static DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const IterationOutcome Out = Scheduler.runIteration(Slots, Jobs);
  RunSummary Summary;
  Summary.Scheduled = Out.Scheduled.size();
  for (const ScheduledJob &S : Out.Scheduled) {
    Summary.TotalTime += S.W.timeSpan().value();
    Summary.TotalCost += S.W.totalCost().value();
  }
  return Summary;
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("trace_replay",
                 "archive a workload as traces and replay it bit-exactly");
  const int64_t &Seed = Args.addInt("seed", 99, "workload RNG seed");
  const std::string &Dir =
      Args.addString("dir", "/tmp", "directory for the trace files");
  const bool &Keep =
      Args.addBool("keep", false, "keep the trace files afterwards");
  if (!Args.parse(Argc, Argv))
    return 1;

  // 1. Generate one scheduling iteration's workload.
  RandomGenerator Rng(static_cast<uint64_t>(Seed));
  const SlotList Slots = SlotGenerator().generate(Rng);
  const Batch Jobs = JobGenerator().generate(Rng);
  std::printf("generated workload: %zu slots, %zu jobs (seed %lld)\n",
              Slots.size(), Jobs.size(), static_cast<long long>(Seed));

  // 2. Archive it.
  const std::string SlotPath = Dir + "/ecosched_slots.trace";
  const std::string JobPath = Dir + "/ecosched_jobs.trace";
  std::string Error;
  if (!saveSlotTrace(Slots, SlotPath, &Error) ||
      !saveBatchTrace(Jobs, JobPath, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("archived to %s and %s\n", SlotPath.c_str(),
              JobPath.c_str());

  // 3. Reload and verify.
  const auto ReloadedSlots = loadSlotTrace(SlotPath, &Error);
  const auto ReloadedJobs = loadBatchTrace(JobPath, &Error);
  if (!ReloadedSlots || !ReloadedJobs) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("reloaded: %zu slots, %zu jobs\n", ReloadedSlots->size(),
              ReloadedJobs->size());

  // 4. Schedule both workloads and compare the outcomes.
  const RunSummary Original = schedule(Slots, Jobs);
  const RunSummary Replayed = schedule(*ReloadedSlots, *ReloadedJobs);
  std::printf("original: %zu jobs scheduled, total time %.6f, total "
              "cost %.6f\n",
              Original.Scheduled, Original.TotalTime, Original.TotalCost);
  std::printf("replayed: %zu jobs scheduled, total time %.6f, total "
              "cost %.6f\n",
              Replayed.Scheduled, Replayed.TotalTime, Replayed.TotalCost);

  const bool Identical = Original.Scheduled == Replayed.Scheduled &&
                         Original.TotalTime == Replayed.TotalTime &&
                         Original.TotalCost == Replayed.TotalCost;
  std::printf("replay %s\n",
              Identical ? "is BIT-EXACT" : "DIVERGED (bug!)");

  if (!Keep) {
    std::remove(SlotPath.c_str());
    std::remove(JobPath.c_str());
  }
  return Identical ? 0 : 1;
}
