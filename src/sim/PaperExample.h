//===-- sim/PaperExample.h - Section 4 example environment ---------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reconstructed Section 4 example: six computational nodes
/// cpu1..cpu6 with unit costs, seven local tasks p1..p7, ten vacant
/// slots, and the batch of three jobs. The figure data is not fully
/// published; this reconstruction is consistent with every stated fact
/// (see DESIGN.md, "Reconstructed Section 4 environment") and makes the
/// AMP first pass find exactly the paper's windows:
///   W1 = [150, 230] on cpu1+cpu4, unit cost 10;
///   W2 = [230, 260] on cpu1,cpu2,cpu4, unit cost 14;
///   W3 = [450, 500] on cpu3+cpu5, unit cost 5.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_PAPEREXAMPLE_H
#define ECOSCHED_SIM_PAPEREXAMPLE_H

#include "sim/ComputingDomain.h"
#include "sim/Job.h"

namespace ecosched {

/// Scheduling horizon of the example.
inline constexpr TimePoint PaperExampleHorizonStart{0.0};
inline constexpr TimePoint PaperExampleHorizonEnd{600.0};

/// Builds the six-node domain with the seven local tasks p1..p7.
ComputingDomain buildPaperExampleDomain();

/// Builds the batch of the three jobs of Section 4. The per-job
/// requirements are published directly in the paper:
///   Job 1: 2 nodes, runtime 80, max total window cost per time 10;
///   Job 2: 3 nodes, runtime 30, max total window cost per time 30;
///   Job 3: 2 nodes, runtime 50, max total window cost per time 6.
/// The per-slot cap C of each request is the total cap divided by the
/// node count (the convention the paper applies to ALP in Section 4).
Batch buildPaperExampleBatch();

} // namespace ecosched

#endif // ECOSCHED_SIM_PAPEREXAMPLE_H
