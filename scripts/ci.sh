#!/usr/bin/env bash
# ci.sh - the full correctness gate, intended as the single entry point
# for CI runners (and for developers before pushing).
#
# Stages, in order (each must pass):
#   1. repo hygiene: no tracked file may match the .gitignore rules
#      (guards against committed build trees recurring)
#   2. release preset: configure, build (-Werror), full ctest suite
#   3. archlint: the self-hosted architecture linter (tools/archlint)
#      over src/ tests/ bench/ examples/ — layer DAG, banned patterns,
#      header guards, test registration, and the detlint determinism
#      rule family over the result-affecting layers. NEVER self-skips:
#      it is built by stage 2 from this repo with the same toolchain as
#      everything else, so there is no missing-binary excuse.
#   4. bench smoke: one short repetition of bench/micro_benchmarks with
#      JSON output to a temp file, validated as well-formed benchmark
#      JSON (guards the bench-baseline workflow, docs/PERFORMANCE.md)
#   5. schedule-fuzz stress: the concurrency-relevant tests of the
#      release build replayed under ECOSCHED_SCHEDULE_FUZZ adversarial
#      schedules for several shuffle seeds (docs/CONCURRENCY.md). NEVER
#      self-skips: it reuses the stage 2 build and needs no extra tools.
#   6. asan-ubsan preset: configure, build, full ctest suite under
#      AddressSanitizer + UndefinedBehaviorSanitizer
#   7. tsan preset: configure, build, and the concurrency-relevant
#      tests (ThreadPool, Experiment, AlternativeSearchParallel,
#      SlotFilter, SlotIntervalIndex, MultiVoDriver) under
#      ThreadSanitizer
#   8. fuzz smoke: build the fuzz preset (ASan+UBSan) and run the five
#      harnesses over their committed corpora plus a bounded number of
#      generated inputs (-runs=5000). Uses libFuzzer under clang and
#      the deterministic standalone driver under any other compiler, so
#      it runs on every toolchain. Skipped only by --skip-sanitizers.
#   9. clang-tidy over src/ tests/ bench/ examples/ (zero findings);
#      SKIPPED with a notice when no clang-tidy binary is installed
#  10. clang-format verification of every tracked C++ file against the
#      repo .clang-format; SKIPPED when clang-format is not installed
#
# Usage: scripts/ci.sh [--jobs N] [--skip-sanitizers]
#
# See docs/STATIC_ANALYSIS.md for what each stage enforces and why.

set -euo pipefail

cd "$(dirname "$0")/.."

# Per-stage wall-clock accounting: stage() closes the previous stage's
# timer and opens the next; the EXIT trap prints the summary whether
# the run passes or dies mid-stage, so a hanging stage is identifiable
# from the last line of the table.
STAGE_LABELS=()
STAGE_SECONDS=()
CURRENT_STAGE=""
CURRENT_STAGE_START=0
BENCH_JSON=""

stage_close() {
  if [[ -n "$CURRENT_STAGE" ]]; then
    STAGE_LABELS+=("$CURRENT_STAGE")
    STAGE_SECONDS+=($((SECONDS - CURRENT_STAGE_START)))
    CURRENT_STAGE=""
  fi
}

stage() {
  stage_close
  CURRENT_STAGE="$1"
  CURRENT_STAGE_START=$SECONDS
  echo "=== ci $1 ==="
}

ci_exit() {
  [[ -n "$BENCH_JSON" ]] && rm -f "$BENCH_JSON"
  stage_close
  if [[ ${#STAGE_LABELS[@]} -gt 0 ]]; then
    echo "--- ci stage timing ---"
    local i
    for i in "${!STAGE_LABELS[@]}"; do
      printf '%5ds  %s\n' "${STAGE_SECONDS[$i]}" "${STAGE_LABELS[$i]}"
    done
    printf '%5ds  total\n' "$SECONDS"
  fi
}
trap ci_exit EXIT

JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_SAN=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    --skip-sanitizers)
      SKIP_SAN=1; shift ;;
    -h|--help)
      sed -n '2,39p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

stage "stage 1/10: repo hygiene (tracked files vs ignore rules)"
TRACKED_IGNORED="$(git ls-files --cached -i --exclude-standard)"
if [[ -n "$TRACKED_IGNORED" ]]; then
  echo "error: tracked files match the repo ignore rules:" >&2
  echo "$TRACKED_IGNORED" | head -20 >&2
  echo "(git rm -r --cached <path> to untrack them)" >&2
  exit 1
fi
echo "repo hygiene: clean"

stage "stage 2/10: release build + tests"
scripts/check.sh --preset release --jobs "$JOBS"

stage "stage 3/10: archlint (architecture + detlint, no self-skip)"
# Stage 2 just built this binary; a missing binary is a build failure,
# never a reason to skip the lint.
build/release/tools/archlint/archlint --self-test
build/release/tools/archlint/archlint --root .

stage "stage 4/10: bench smoke (micro_benchmarks JSON output)"
BENCH_JSON="$(mktemp --suffix=.json)"
build/release/bench/micro_benchmarks \
  --benchmark_out="$BENCH_JSON" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.01 > /dev/null
python3 - "$BENCH_JSON" <<'PYEOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as handle:
    data = json.load(handle)
names = [entry["name"] for entry in data["benchmarks"]]
assert names, "bench smoke produced no benchmark entries"
probes = [name for name in names if name.startswith("BM_SlotListProbe")]
assert probes, "slot-list probe benches missing from the bench binary"
steady = [n for n in names if n.startswith("BM_VoIterationSteadyState")]
assert steady, "steady-state VO iteration benches missing from the binary"
compaction = [n for n in names if n.startswith("BM_SlotIndexCompaction")]
assert compaction, "index-compaction benches missing from the bench binary"
snapshot = [n for n in names if n.startswith("BM_SnapshotSaveLoad")]
assert snapshot, "snapshot save/load benches missing from the bench binary"
print(f"bench smoke: {len(names)} benchmark entries, JSON well-formed")
PYEOF

stage "stage 5/10: schedule-fuzz stress (adversarial schedules)"
# The determinism gate's dynamic half: the whole concurrency-relevant
# test set must stay bitwise-deterministic when every pool claims
# chunks in shuffled orders with injected yields. Reuses the stage 2
# build — this stage never self-skips.
for SHUFFLE_SEED in 1 7 42; do
  echo "--- schedule-fuzz stress: seed $SHUFFLE_SEED ---"
  ECOSCHED_SCHEDULE_FUZZ="$SHUFFLE_SEED" ctest --preset release -j "$JOBS" \
    -R '^(ThreadPool|Experiment|AlternativeSearchParallel|SlotFilter|PersistentFilter|SlotIntervalIndex|MultiVoDriver|Snapshot)' \
    --output-on-failure
done

if [[ $SKIP_SAN -eq 0 ]]; then
  stage "stage 6/10: asan-ubsan build + tests"
  scripts/check.sh --preset asan-ubsan --jobs "$JOBS"
  stage "stage 7/10: tsan build + concurrency tests"
  scripts/check.sh --preset tsan --jobs "$JOBS"
  stage "stage 8/10: fuzz smoke (5 harnesses, corpora + -runs=5000)"
  cmake --preset fuzz > /dev/null
  cmake --build --preset fuzz -j "$JOBS" > /dev/null
  export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
  export UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1
  build/fuzz/fuzz/fuzz_traceio fuzz/corpus/traceio -runs=5000
  build/fuzz/fuzz/fuzz_slotlist_diff fuzz/corpus/slotlist_diff -runs=5000
  build/fuzz/fuzz/fuzz_window_invariants fuzz/corpus/window_invariants \
    -runs=5000
  build/fuzz/fuzz/fuzz_vo_iteration fuzz/corpus/vo_iteration -runs=5000
  build/fuzz/fuzz/fuzz_snapshot fuzz/corpus/snapshot -runs=5000
else
  echo "=== ci stage 6/10: SKIPPED (--skip-sanitizers) ==="
  echo "=== ci stage 7/10: SKIPPED (--skip-sanitizers) ==="
  echo "=== ci stage 8/10: SKIPPED (--skip-sanitizers) ==="
fi

stage "stage 9/10: clang-tidy"
scripts/run_clang_tidy.sh --jobs "$JOBS"

stage "stage 10/10: clang-format"
FORMAT="${CLANG_FORMAT:-}"
if [[ -z "$FORMAT" ]]; then
  for candidate in clang-format clang-format-21 clang-format-20 \
                   clang-format-19 clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      FORMAT="$candidate"
      break
    fi
  done
fi
if [[ -z "$FORMAT" ]]; then
  echo "clang-format: SKIPPED - no binary found (set CLANG_FORMAT or" \
       "install clang-format >= 15)"
else
  mapfile -t CXX_FILES < <(git ls-files '*.cpp' '*.h')
  "$FORMAT" --dry-run --Werror "${CXX_FILES[@]}"
  echo "clang-format: clean (${#CXX_FILES[@]} files)"
fi

echo "ci.sh: all stages passed"
