file(REMOVE_RECURSE
  "../bench/ablation_batch_once"
  "../bench/ablation_batch_once.pdb"
  "CMakeFiles/ablation_batch_once.dir/ablation_batch_once.cpp.o"
  "CMakeFiles/ablation_batch_once.dir/ablation_batch_once.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_once.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
