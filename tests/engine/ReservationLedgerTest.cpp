//===-- tests/engine/ReservationLedgerTest.cpp - Ledger round-trips -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/ReservationLedger.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0, "n0");
  D.addNode(2.0, 1.5, "n1");
  D.addNode(2.0, 1.5, "n2");
  return D;
}

/// Schedules \p J over the domain's current vacancy and returns the
/// metascheduler's placement, so ledger tests commit real windows.
struct LedgerFixture {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler;
  ComputingDomain Domain = makeDomain();
  ReservationLedger Ledger;

  LedgerFixture() : Scheduler(Amp, Dp) {}

  ScheduledJob schedule(const Job &J) {
    const SlotList Slots = Domain.vacantSlots(TimePoint(0.0), TimePoint(600.0));
    IterationOutcome Outcome = Scheduler.runIteration(Slots, {J});
    EXPECT_EQ(Outcome.Scheduled.size(), 1u);
    return Outcome.Scheduled.at(0);
  }
};

} // namespace

TEST(ReservationLedgerTest, CommitOpensRunningEntry) {
  LedgerFixture F;
  const Job J = makeJob(1, 2, 100.0, 2.0);
  const ScheduledJob S = F.schedule(J);
  F.Ledger.commit(F.Domain, S, J, /*Attempts=*/1);
  EXPECT_EQ(F.Ledger.runningCount(), 1u);
  EXPECT_TRUE(F.Ledger.isRunning(1));
  EXPECT_GT(F.Domain.externalLoad(), 0.0);
  EXPECT_TRUE(F.Ledger.completed().empty());
  EXPECT_DOUBLE_EQ(F.Ledger.totalIncome().value(), 0.0);
}

TEST(ReservationLedgerTest, RetireFinishedRecordsWindowAccounting) {
  LedgerFixture F;
  const Job J = makeJob(1, 1, 100.0, 2.0);
  const ScheduledJob S = F.schedule(J);
  F.Ledger.commit(F.Domain, S, J, /*Attempts=*/3);

  // Before the window elapses nothing retires.
  F.Ledger.retireFinished(TimePoint(S.W.endTime().value() - 1.0));
  EXPECT_EQ(F.Ledger.runningCount(), 1u);
  EXPECT_TRUE(F.Ledger.completed().empty());

  F.Ledger.retireFinished(TimePoint(S.W.endTime().value()));
  EXPECT_EQ(F.Ledger.runningCount(), 0u);
  ASSERT_EQ(F.Ledger.completed().size(), 1u);
  const CompletedJob &C = F.Ledger.completed()[0];
  EXPECT_EQ(C.JobId, 1);
  EXPECT_DOUBLE_EQ(C.StartTime, S.W.startTime().value());
  EXPECT_DOUBLE_EQ(C.EndTime, S.W.endTime().value());
  EXPECT_DOUBLE_EQ(C.Cost, S.W.totalCost().value());
  EXPECT_EQ(C.Attempts, 3);
  EXPECT_DOUBLE_EQ(F.Ledger.totalIncome().value(), S.W.totalCost().value());
}

TEST(ReservationLedgerTest, ReleaseRoundTripClearsDomain) {
  LedgerFixture F;
  const Job J = makeJob(1, 2, 100.0, 2.0);
  const ScheduledJob S = F.schedule(J);
  F.Ledger.commit(F.Domain, S, J, 1);
  ASSERT_GT(F.Domain.externalLoad(), 0.0);

  EXPECT_TRUE(F.Ledger.release(F.Domain, 1));
  EXPECT_EQ(F.Ledger.runningCount(), 0u);
  EXPECT_FALSE(F.Ledger.isRunning(1));
  EXPECT_DOUBLE_EQ(F.Domain.externalLoad(), 0.0);
  EXPECT_EQ(F.Domain.externalReservationCount(1), 0u);

  EXPECT_FALSE(F.Ledger.release(F.Domain, 1)); // Already gone.
}

TEST(ReservationLedgerTest, ReleaseUnknownJobReturnsFalse) {
  LedgerFixture F;
  EXPECT_FALSE(F.Ledger.release(F.Domain, 12345));
}

TEST(ReservationLedgerTest, CancelOnNodeRequeuesWholeWindow) {
  LedgerFixture F;
  const Job J = makeJob(1, 3, 100.0, 2.0); // Uses every node.
  const ScheduledJob S = F.schedule(J);
  F.Ledger.commit(F.Domain, S, J, /*Attempts=*/2);

  const auto Requeued = F.Ledger.cancelOnNode(F.Domain, /*NodeId=*/0, TimePoint(/*Now=*/0.0));
  ASSERT_EQ(Requeued.size(), 1u);
  EXPECT_EQ(Requeued[0].Spec.Id, 1);
  EXPECT_EQ(Requeued[0].Attempts, 2); // Attempt count survives requeue.
  EXPECT_EQ(F.Ledger.runningCount(), 0u);
  // The surviving siblings on healthy nodes are released too, so the
  // job can be rescheduled as a whole.
  EXPECT_DOUBLE_EQ(F.Domain.externalLoad(), 0.0);
  EXPECT_EQ(F.Domain.externalReservationCount(1), 0u);
}

TEST(ReservationLedgerTest, CancelOnNodeWithoutReservationsIsLedgerNoOp) {
  LedgerFixture F;
  const Job J = makeJob(1, 1, 100.0, 2.0);
  const ScheduledJob S = F.schedule(J);
  F.Ledger.commit(F.Domain, S, J, 1);
  const double LoadBefore = F.Domain.externalLoad();

  // Fail a node the window does not use: the node goes out of service
  // but the ledger and the committed reservation are untouched.
  int FreeNode = -1;
  for (int Node = 0; Node < 3; ++Node)
    if (!S.W.usesNode(Node))
      FreeNode = Node;
  ASSERT_GE(FreeNode, 0);

  const auto Requeued = F.Ledger.cancelOnNode(F.Domain, FreeNode, TimePoint(0.0));
  EXPECT_TRUE(Requeued.empty());
  EXPECT_EQ(F.Ledger.runningCount(), 1u);
  EXPECT_TRUE(F.Ledger.isRunning(1));
  EXPECT_FALSE(F.Domain.isNodeAvailable(FreeNode));
  EXPECT_DOUBLE_EQ(F.Domain.externalLoad(), LoadBefore);
}
