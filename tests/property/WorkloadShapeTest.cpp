//===-- tests/property/WorkloadShapeTest.cpp - Shape sweeps ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// The search invariants must hold far from the paper's workload: this
/// suite sweeps generator *shapes* (dense/sparse lists, homogeneous and
/// extreme heterogeneity, clustered starts, long and short slots) and
/// re-checks the core properties — oracle agreement, AMP dominance,
/// disjoint alternatives — on every shape x seed combination.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace ecosched;

namespace {

struct WorkloadShape {
  const char *Name;
  SlotGeneratorConfig Slots;
  JobGeneratorConfig Jobs;
};

WorkloadShape makeShape(const char *Name) {
  WorkloadShape Shape;
  Shape.Name = Name;
  if (std::string(Name) == "sparse") {
    Shape.Slots.MinSlotCount = 20;
    Shape.Slots.MaxSlotCount = 30;
    Shape.Slots.MaxStartGap = 40.0;
  } else if (std::string(Name) == "dense") {
    Shape.Slots.MinSlotCount = 300;
    Shape.Slots.MaxSlotCount = 350;
    Shape.Slots.SameStartProbability = 0.7;
    Shape.Slots.MaxStartGap = 3.0;
  } else if (std::string(Name) == "homogeneous") {
    Shape.Slots.MinPerformance = Shape.Slots.MaxPerformance = 1.0;
    Shape.Jobs.MinPerformanceLo = Shape.Jobs.MinPerformanceHi = 1.0;
  } else if (std::string(Name) == "extreme-heterogeneity") {
    Shape.Slots.MinPerformance = 0.5;
    Shape.Slots.MaxPerformance = 8.0;
    Shape.Jobs.MinPerformanceLo = 0.5;
    Shape.Jobs.MinPerformanceHi = 4.0;
  } else if (std::string(Name) == "short-slots") {
    Shape.Slots.MinLength = 20.0;
    Shape.Slots.MaxLength = 60.0;
    Shape.Jobs.MinVolume = 10.0;
    Shape.Jobs.MaxVolume = 50.0;
  } else if (std::string(Name) == "wide-jobs") {
    Shape.Jobs.MinNodes = 5;
    Shape.Jobs.MaxNodes = 12;
  }
  return Shape;
}

} // namespace

class WorkloadShapeTest
    : public ::testing::TestWithParam<std::tuple<const char *, uint64_t>> {
protected:
  void SetUp() override {
    const WorkloadShape Shape = makeShape(std::get<0>(GetParam()));
    RandomGenerator Rng(std::get<1>(GetParam()));
    List = SlotGenerator(Shape.Slots).generate(Rng);
    Jobs = JobGenerator(Shape.Jobs).generate(Rng);
  }

  SlotList List;
  Batch Jobs;
};

TEST_P(WorkloadShapeTest, SearchesMatchOracleOnEveryShape) {
  AlpSearch Alp;
  AmpSearch Amp;
  BackfillSearch AlpOracle(PriceRuleKind::PerSlotCap);
  BackfillSearch AmpOracle(PriceRuleKind::JobBudget);
  for (const Job &J : Jobs) {
    const auto A = Alp.findWindow(List, J.Request);
    const auto AO = AlpOracle.findWindow(List, J.Request);
    ASSERT_EQ(A.has_value(), AO.has_value());
    if (A) {
      EXPECT_NEAR(A->startTime().value(), AO->startTime().value(), 1e-9);
    }
    const auto M = Amp.findWindow(List, J.Request);
    const auto MO = AmpOracle.findWindow(List, J.Request);
    ASSERT_EQ(M.has_value(), MO.has_value());
    if (M) {
      EXPECT_NEAR(M->startTime().value(), MO->startTime().value(), 1e-9);
    }
    // AMP dominance holds on every shape.
    if (A) {
      ASSERT_TRUE(M.has_value());
      EXPECT_LE(M->startTime().value(), A->startTime().value() + 1e-9);
    }
  }
}

TEST_P(WorkloadShapeTest, AlternativesStayDisjointOnEveryShape) {
  AmpSearch Amp;
  const AlternativeSet Alts = AlternativeSearch(Amp).run(List, Jobs);
  std::vector<const Window *> All;
  for (const auto &PerJob : Alts.PerJob)
    for (const Window &W : PerJob)
      All.push_back(&W);
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      ASSERT_FALSE(All[I]->intersects(*All[J]));
}

TEST_P(WorkloadShapeTest, SubtractionInvariantsHoldOnEveryShape) {
  AmpSearch Amp;
  SlotList Work = List;
  for (const Job &J : Jobs) {
    const auto W = Amp.findWindow(Work, J.Request);
    if (!W)
      continue;
    ASSERT_TRUE(W->subtractFrom(Work));
    ASSERT_TRUE(Work.checkInvariants());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WorkloadShapeTest,
    ::testing::Combine(
        ::testing::Values("sparse", "dense", "homogeneous",
                          "extreme-heterogeneity", "short-slots",
                          "wide-jobs"),
        ::testing::Range<uint64_t>(1, 7)),
    [](const auto &Info) {
      std::string Name = std::string(std::get<0>(Info.param)) + "_seed" +
                         std::to_string(std::get<1>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });
