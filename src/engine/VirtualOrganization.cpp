//===-- engine/VirtualOrganization.cpp - Layered VO facade ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/VirtualOrganization.h"

#include "support/StateCodec.h"

#include <cmath>
#include <limits>

using namespace ecosched;

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler)
    : VirtualOrganization(std::move(InDomain), Scheduler, Config()) {}

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler,
                                         Config Cfg)
    : Domain(std::move(InDomain)), Scheduler(Scheduler), Cfg(Cfg),
      Clock(Duration(Cfg.IterationPeriod), Duration(Cfg.HorizonLength)),
      Queue(Cfg.MaxAttempts) {}

void VirtualOrganization::submit(const Job &J) { Queue.submit(J); }

VirtualOrganization::IterationReport VirtualOrganization::runIteration() {
  IterationReport Report;
  Report.Now = Clock.now().value();
  Report.QueueLength = Queue.size();

  // Build the batch in queue (priority) order.
  const Batch Jobs = Queue.batch();
  if (!Jobs.empty()) {
    const SlotList Slots = Domain.vacantSlots(Clock.now(),
                                              Clock.horizonEnd());
    // Reconcile the carried-over views with this iteration's slots and
    // batch; the sweep then reuses them instead of rebuilding. The
    // sync's reconciliation counters ride along in the iteration's
    // stats (they are the only stats difference versus the rebuild
    // path — the sweep scans bitwise-identical views either way).
    PersistentSlotFilter *Reuse = nullptr;
    SearchStats SyncStats;
    if (Cfg.ReuseFilter && Scheduler.config().Search.UseFilter) {
      if (!Filter)
        Filter.emplace(Scheduler.searchAlgo());
      Filter->sync(Slots, Jobs, &SyncStats);
      Reuse = &*Filter;
    }
    Report.Outcome = Scheduler.runIteration(Slots, Jobs, Reuse);
    Report.Outcome.Stats += SyncStats;
    FilterStats += SyncStats;

    // Commit the selected windows as external reservations and remove
    // the jobs from the queue.
    std::vector<size_t> CommittedIndices;
    CommittedIndices.reserve(Report.Outcome.Scheduled.size());
    for (const ScheduledJob &S : Report.Outcome.Scheduled) {
      const JobQueue::PendingJob &P = Queue.at(S.BatchIndex);
      Ledger.commit(Domain, S, P.Spec, P.Attempts + 1);
      CommittedIndices.push_back(S.BatchIndex);
      ++Report.Committed;
    }
    Queue.removeScheduled(CommittedIndices);
  }

  // Postponed jobs stay queued; the queue accounts the failed attempt
  // and drops jobs that exhausted their attempt budget.
  Report.Dropped = Queue.chargeAttempt();

  Clock.advance();
  Domain.advanceTo(Clock.now());
  Ledger.retireFinished(Clock.now());
  return Report;
}

size_t VirtualOrganization::injectNodeFailure(int NodeId) {
  const std::vector<ReservationLedger::RequeuedJob> Requeued =
      Ledger.cancelOnNode(Domain, NodeId, Clock.now());
  for (const ReservationLedger::RequeuedJob &R : Requeued)
    Queue.resubmitFront(R.Spec, R.Attempts);
  return Requeued.size();
}

void VirtualOrganization::repairNode(int NodeId) {
  Domain.restoreNode(NodeId);
}

bool VirtualOrganization::cancelJob(int JobId) {
  if (Queue.cancel(JobId))
    return true;
  return Ledger.release(Domain, JobId);
}

void VirtualOrganization::setQueuedBudgetFactor(double Rho) {
  Queue.setBudgetFactor(Rho);
}

void VirtualOrganization::saveSnapshot(StateWriter &W) const {
  W.beginSection("vo");
  W.beginSection("config");
  W.writeDouble("iteration-period", Cfg.IterationPeriod);
  W.writeDouble("horizon-length", Cfg.HorizonLength);
  W.writeInt("max-attempts", Cfg.MaxAttempts);
  W.writeBool("reuse-filter", Cfg.ReuseFilter);
  W.endSection("config");
  Clock.saveState(W);
  Queue.saveState(W);
  Ledger.saveState(W);
  Domain.saveState(W);
  W.writeBool("has-filter", Filter.has_value());
  if (Filter)
    Filter->saveState(W);
  W.beginSection("filter-stats");
  W.writeUInt("slots-examined", FilterStats.SlotsExamined);
  W.writeUInt("group-peak", FilterStats.GroupPeak);
  W.writeUInt("group-operations", FilterStats.GroupOperations);
  W.writeUInt("speculation-recomputes", FilterStats.SpeculationRecomputes);
  W.writeUInt("view-reuses", FilterStats.FilterViewReuses);
  W.writeUInt("view-rebuilds", FilterStats.FilterViewRebuilds);
  W.writeUInt("delta-ops", FilterStats.FilterDeltaOps);
  W.endSection("filter-stats");
  W.endSection("vo");
}

bool VirtualOrganization::loadSnapshot(StateReader &R) {
  if (!R.beginSection("vo"))
    return false;
  Config LoadedCfg;
  if (!R.beginSection("config") ||
      !R.readDouble("iteration-period", LoadedCfg.IterationPeriod) ||
      !R.readDouble("horizon-length", LoadedCfg.HorizonLength))
    return false;
  int64_t MaxAttempts = 0;
  if (!R.readInt("max-attempts", MaxAttempts) ||
      !R.readBool("reuse-filter", LoadedCfg.ReuseFilter) ||
      !R.endSection("config"))
    return false;
  // The SimClock constructor CHECKs the cadence, so the config copy of
  // it must be validated here before any SimClock is built from it.
  if (!(LoadedCfg.IterationPeriod > 0.0) ||
      !std::isfinite(LoadedCfg.IterationPeriod) ||
      !(LoadedCfg.HorizonLength > 0.0) ||
      !std::isfinite(LoadedCfg.HorizonLength)) {
    R.fail("vo: config cadence must be positive and finite");
    return false;
  }
  if (MaxAttempts < std::numeric_limits<int>::min() ||
      MaxAttempts > std::numeric_limits<int>::max()) {
    R.fail("vo: max-attempts out of range");
    return false;
  }
  LoadedCfg.MaxAttempts = static_cast<int>(MaxAttempts);

  // Every layer loads into a temporary so this VO stays untouched
  // unless the whole snapshot validates.
  SimClock LoadedClock(Duration(LoadedCfg.IterationPeriod),
                       Duration(LoadedCfg.HorizonLength));
  if (!LoadedClock.loadState(R))
    return false;
  JobQueue LoadedQueue(LoadedCfg.MaxAttempts);
  if (!LoadedQueue.loadState(R))
    return false;
  ReservationLedger LoadedLedger;
  if (!LoadedLedger.loadState(R))
    return false;
  ComputingDomain LoadedDomain;
  if (!LoadedDomain.loadState(R))
    return false;
  bool HasFilter = false;
  if (!R.readBool("has-filter", HasFilter))
    return false;
  std::optional<PersistentSlotFilter> LoadedFilter;
  if (HasFilter) {
    LoadedFilter.emplace(Scheduler.searchAlgo());
    if (!LoadedFilter->loadState(R))
      return false;
  }
  SearchStats LoadedStats;
  uint64_t Counters[7] = {};
  if (!R.beginSection("filter-stats") ||
      !R.readUInt("slots-examined", Counters[0]) ||
      !R.readUInt("group-peak", Counters[1]) ||
      !R.readUInt("group-operations", Counters[2]) ||
      !R.readUInt("speculation-recomputes", Counters[3]) ||
      !R.readUInt("view-reuses", Counters[4]) ||
      !R.readUInt("view-rebuilds", Counters[5]) ||
      !R.readUInt("delta-ops", Counters[6]) ||
      !R.endSection("filter-stats") || !R.endSection("vo"))
    return false;
  LoadedStats.SlotsExamined = static_cast<size_t>(Counters[0]);
  LoadedStats.GroupPeak = static_cast<size_t>(Counters[1]);
  LoadedStats.GroupOperations = static_cast<size_t>(Counters[2]);
  LoadedStats.SpeculationRecomputes = static_cast<size_t>(Counters[3]);
  LoadedStats.FilterViewReuses = static_cast<size_t>(Counters[4]);
  LoadedStats.FilterViewRebuilds = static_cast<size_t>(Counters[5]);
  LoadedStats.FilterDeltaOps = static_cast<size_t>(Counters[6]);

  Cfg = LoadedCfg;
  Clock = LoadedClock;
  Queue = std::move(LoadedQueue);
  Ledger = std::move(LoadedLedger);
  Domain = std::move(LoadedDomain);
  // The filter's algorithm reference deletes its assignment operators,
  // so the optional is re-engaged by move construction instead.
  Filter.reset();
  if (LoadedFilter)
    Filter.emplace(std::move(*LoadedFilter));
  FilterStats = LoadedStats;
  return true;
}

std::string VirtualOrganization::saveSnapshotText() const {
  StateWriter W;
  saveSnapshot(W);
  return W.text();
}

bool VirtualOrganization::loadSnapshotText(const std::string &Text,
                                           std::string *Error) {
  StateReader R(Text);
  if (loadSnapshot(R) && R.atEnd())
    return true;
  if (Error) {
    *Error = !R.ok() ? R.error()
                     : std::string("vo: trailing content after snapshot");
  }
  return false;
}

bool VirtualOrganization::saveSnapshotFile(const std::string &Path,
                                           std::string *Error) const {
  return writeStateFile(saveSnapshotText(), Path, Error);
}

bool VirtualOrganization::loadSnapshotFile(const std::string &Path,
                                           std::string *Error) {
  std::string Text;
  if (!readStateFile(Path, Text, Error))
    return false;
  return loadSnapshotText(Text, Error);
}
