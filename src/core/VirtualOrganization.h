//===-- core/VirtualOrganization.h - Iterative VO scheduling loop --*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterative VO loop of Section 1: job batch scheduling runs
/// "iteratively on periodically updated local schedules". External jobs
/// queue up; each iteration publishes the domain's vacant slots over a
/// look-ahead horizon, schedules the queue as a batch, commits the
/// chosen windows as reservations, postpones the rest, and advances the
/// clock to the next iteration.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_VIRTUALORGANIZATION_H
#define ECOSCHED_CORE_VIRTUALORGANIZATION_H

#include "core/Metascheduler.h"
#include "sim/ComputingDomain.h"

#include <deque>

namespace ecosched {

/// A job finished (its reservation elapsed) inside the VO.
struct CompletedJob {
  int JobId = -1;
  double StartTime = 0.0;
  double EndTime = 0.0;
  double Cost = 0.0;
  /// Scheduling iterations the job waited before being placed.
  int Attempts = 0;
};

/// VO driver state: domain + queue + clock.
class VirtualOrganization {
public:
  struct Config {
    /// Time between scheduling iterations (local schedules refresh).
    double IterationPeriod = 200.0;
    /// Look-ahead horizon published to the metascheduler.
    double HorizonLength = 800.0;
    /// Drop a job after this many failed attempts; 0 keeps it queued
    /// forever.
    int MaxAttempts = 0;
  };

  /// Report of one VO iteration.
  struct IterationReport {
    double Now = 0.0;
    size_t QueueLength = 0;
    IterationOutcome Outcome;
    size_t Committed = 0;
    size_t Dropped = 0;
  };

  /// \p Scheduler must outlive the VO.
  VirtualOrganization(ComputingDomain Domain,
                      const Metascheduler &Scheduler);
  VirtualOrganization(ComputingDomain Domain,
                      const Metascheduler &Scheduler, Config Cfg);

  /// Enqueues an external job for the next iteration.
  void submit(const Job &J);

  /// Injects a node failure at the current clock: the node stops
  /// publishing slots, its unfinished reservations are cancelled, and
  /// the affected external jobs are resubmitted at the front of the
  /// queue (Section 7 motivates guaranteed execution under "possible
  /// failures of computational nodes").
  /// \returns the number of jobs cancelled and requeued.
  size_t injectNodeFailure(int NodeId);

  /// Returns a failed node to service.
  void repairNode(int NodeId);

  /// VO-policy hook (Section 6: rho may vary "depending on the time of
  /// day, resource load level"): sets the AMP budget factor of every
  /// queued job before the next iteration.
  void setQueuedBudgetFactor(double Rho);

  /// User-initiated cancellation: removes the job from the queue, or
  /// releases its reservations if it is already placed but has not
  /// finished. Completed jobs are unaffected (their cost is owed).
  /// Returns true if a queued or running job was cancelled.
  bool cancelJob(int JobId);

  /// Runs one scheduling iteration at the current clock, commits the
  /// selected windows, and advances the clock by the iteration period.
  IterationReport runIteration();

  double now() const { return Clock; }
  size_t queueLength() const { return Queue.size(); }
  const ComputingDomain &domain() const { return Domain; }

  /// Owner-side access between iterations (price updates, extra local
  /// tasks). Mutations must keep reservations intact.
  ComputingDomain &mutableDomain() { return Domain; }
  const std::vector<CompletedJob> &completed() const { return Completed; }
  const std::vector<int> &dropped() const { return Dropped; }

  /// Total owner income from completed external jobs.
  double totalIncome() const;

private:
  struct RunningJob {
    int JobId = -1;
    double StartTime = 0.0;
    double EndTime = 0.0;
    double Cost = 0.0;
    int Attempts = 0;
    /// Kept for resubmission after a node failure.
    Job Spec;
    /// Nodes the reservation occupies (failure impact lookup).
    std::vector<int> Nodes;
  };

  struct PendingJob {
    Job J;
    int Attempts = 0;
  };

  void retireFinishedJobs();

  ComputingDomain Domain;
  const Metascheduler &Scheduler;
  Config Cfg;
  double Clock = 0.0;
  std::deque<PendingJob> Queue;
  std::vector<RunningJob> Running;
  std::vector<CompletedJob> Completed;
  std::vector<int> Dropped;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_VIRTUALORGANIZATION_H
