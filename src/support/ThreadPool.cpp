//===-- support/ThreadPool.cpp - Shared worker-thread pool ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Check.h"
#include "support/Random.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

using namespace ecosched;

namespace {

/// The pool whose worker is currently executing this thread, if any.
/// Used to run same-pool nested submissions inline instead of
/// deadlocking on the pool's own (busy) workers.
thread_local const ThreadPool *CurrentPool = nullptr;

} // namespace

struct ThreadPool::Call {
  /// Next unclaimed index; advanced by Chunk per claim. Under
  /// ScheduleFuzz it is instead the next ordinal into ShuffledOrder,
  /// advanced by one per claim.
  std::atomic<size_t> Next{0};
  size_t Last = 0;
  size_t Chunk = 1;
  size_t Total = 0;
  /// Shuffled chunk-begin order (ScheduleFuzz); empty in the default
  /// FIFO-claim mode.
  std::vector<size_t> ShuffledOrder;
  /// Seed of the stateless per-chunk yield decision (ScheduleFuzz).
  uint64_t YieldSeed = 0;
  const std::function<void(size_t)> *Body = nullptr;
  /// Indices retired (executed or skipped after a failure). The call is
  /// complete when Done == Total.
  std::atomic<size_t> Done{0};
  /// Set on the first exception; stops later chunks from running.
  std::atomic<bool> Failed{false};
  ecosched::Mutex Mutex;
  ConditionVariable AllDone;
  std::exception_ptr Error ECOSCHED_GUARDED_BY(Mutex);
};

ThreadPool::ThreadPool(size_t ThreadCount)
    : ThreadPool(ThreadCount, scheduleFuzzFromEnv()) {}

ThreadPool::ThreadPool(size_t ThreadCount, ScheduleFuzz Fuzz)
    : Count(resolveThreadCount(ThreadCount)), Fuzz(Fuzz) {}

ThreadPool::ScheduleFuzz ThreadPool::scheduleFuzzFromEnv() {
  ScheduleFuzz F;
  const char *Env = std::getenv("ECOSCHED_SCHEDULE_FUZZ");
  if (Env == nullptr || *Env == '\0')
    return F;
  F.Enabled = true;
  F.Seed = std::strtoull(Env, nullptr, 10);
  return F;
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock Lock(QueueMutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

size_t ThreadPool::resolveThreadCount(size_t Requested) {
  // Catches sign-converted negatives from `--threads=-1` style input
  // long before an 18-quintillion-worker spawn loop would.
  ECOSCHED_CHECK(Requested <= 4096,
                 "implausible thread count {} (max 4096)", Requested);
  if (Requested != 0)
    return Requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::runCall(Call &C) {
  for (;;) {
    size_t Begin;
    if (C.ShuffledOrder.empty()) {
      Begin = C.Next.fetch_add(C.Chunk, std::memory_order_relaxed);
      if (Begin >= C.Last)
        return;
    } else {
      // ScheduleFuzz: claim the next ordinal of the shuffled order and
      // maybe yield first, so neighbouring chunks land on different
      // workers in different interleavings. The yield decision is a
      // stateless mix of the call's yield stream and the chunk identity
      // — no shared RNG state, so claiming stays race-free.
      const size_t Ordinal = C.Next.fetch_add(1, std::memory_order_relaxed);
      if (Ordinal >= C.ShuffledOrder.size())
        return;
      Begin = C.ShuffledOrder[Ordinal];
      SplitMix64 Coin(C.YieldSeed ^ (Begin * 0x9e3779b97f4a7c15ULL));
      if (Coin.next() % 2 == 0)
        std::this_thread::yield();
    }
    const size_t End = std::min(Begin + C.Chunk, C.Last);
    if (!C.Failed.load(std::memory_order_acquire)) {
      try {
        for (size_t I = Begin; I != End; ++I)
          (*C.Body)(I);
      } catch (...) {
        C.Failed.store(true, std::memory_order_release);
        const MutexLock Lock(C.Mutex);
        if (!C.Error)
          C.Error = std::current_exception();
      }
    }
    // Retire the chunk even on failure/skip so the caller's wait always
    // terminates. acq_rel: the write releases this worker's results and
    // the final read below acquires everyone else's.
    const size_t Retired = End - Begin;
    if (C.Done.fetch_add(Retired, std::memory_order_acq_rel) + Retired ==
        C.Total) {
      // Lock so the notify cannot slip between the caller's predicate
      // check and its wait.
      const MutexLock Lock(C.Mutex);
      C.AllDone.notify_all();
    }
  }
}

void ThreadPool::startWorkersLocked() {
  if (Started)
    return;
  Started = true;
  Workers.reserve(Count - 1);
  for (size_t I = 0; I + 1 < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

void ThreadPool::workerLoop() {
  CurrentPool = this;
  for (;;) {
    std::shared_ptr<Call> C;
    {
      MutexLock Lock(QueueMutex);
      // The predicate runs with QueueMutex held by the wait itself; the
      // analysis cannot see that from inside a lambda, so it opts out.
      WorkAvailable.wait(Lock, [this]() ECOSCHED_NO_THREAD_SAFETY_ANALYSIS {
        return Stopping || !Queue.empty();
      });
      if (Stopping)
        return;
      C = std::move(Queue.front());
      Queue.pop_front();
    }
    runCall(*C);
  }
}

void ThreadPool::parallelFor(size_t First, size_t Last, size_t Chunk,
                             const std::function<void(size_t)> &Body) {
  ECOSCHED_CHECK(Chunk > 0, "parallelFor chunk must be positive");
  if (First >= Last)
    return;

  const size_t Total = Last - First;
  const size_t Chunks = (Total + Chunk - 1) / Chunk;
  // Inline paths: a single-thread pool, a range one chunk can cover, or
  // a nested submission from one of this pool's own workers (whose
  // siblings are busy with the outer range; helping inline is the only
  // deadlock-free option that keeps the pool at its thread budget).
  if (Count == 1 || Chunks == 1 || CurrentPool == this) {
    for (size_t I = First; I != Last; ++I)
      Body(I);
    return;
  }

  auto C = std::make_shared<Call>();
  C->Last = Last;
  C->Chunk = Chunk;
  C->Total = Total;
  C->Body = &Body;
  if (Fuzz.Enabled) {
    // Adversarial schedule: Fisher-Yates-shuffle the chunk-begin order
    // with a per-call sub-stream, so every call (and every seed) walks
    // the range in a different order. Next becomes an ordinal cursor.
    C->ShuffledOrder.resize(Chunks);
    for (size_t K = 0; K < Chunks; ++K)
      C->ShuffledOrder[K] = First + K * Chunk;
    SplitMix64 Rng(Fuzz.Seed ^
                   (FuzzCallIndex.fetch_add(1, std::memory_order_relaxed) *
                        0xbf58476d1ce4e5b9ULL +
                    0x94d049bb133111ebULL));
    C->YieldSeed = Rng.next();
    for (size_t K = Chunks; K > 1; --K)
      std::swap(C->ShuffledOrder[K - 1], C->ShuffledOrder[Rng.next() % K]);
    C->Next.store(0, std::memory_order_relaxed);
  } else {
    C->Next.store(First, std::memory_order_relaxed);
  }

  // One helper token per worker that could claim a chunk; surplus
  // tokens (and tokens drained after completion) find the cursor
  // exhausted and return immediately.
  const size_t Helpers = std::min(Count - 1, Chunks - 1);
  {
    const MutexLock Lock(QueueMutex);
    startWorkersLocked();
    for (size_t I = 0; I < Helpers; ++I)
      Queue.push_back(C);
  }
  if (Helpers == 1)
    WorkAvailable.notify_one();
  else
    WorkAvailable.notify_all();

  runCall(*C);

  MutexLock Lock(C->Mutex);
  C->AllDone.wait(Lock, [&C] {
    return C->Done.load(std::memory_order_acquire) == C->Total;
  });
  if (C->Error)
    std::rethrow_exception(C->Error);
}
