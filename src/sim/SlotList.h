//===-- sim/SlotList.h - Ordered list of vacant slots --------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered list of available slots the search algorithms scan
/// (Fig. 1(a) of the paper), together with the slot-subtraction operation
/// of Fig. 1(b): removing a reserved span from a slot splits it into up
/// to two remainder slots that are re-inserted in start order.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOTLIST_H
#define ECOSCHED_SIM_SLOTLIST_H

#include "sim/Slot.h"
#include "sim/SlotIntervalIndex.h"
#include "support/FunctionRef.h"

#include <cstddef>
#include <vector>

namespace ecosched {

class StateWriter;
class StateReader;

/// A list of vacant slots kept sorted by non-decreasing start time.
///
/// Slots on the same node never overlap; this invariant is established by
/// the producers (generators / domain) and preserved by subtract().
class SlotList {
public:
  SlotList() = default;

  /// Builds a list from arbitrary slots; sorts them by start time.
  explicit SlotList(std::vector<Slot> Slots);

  /// Copies carry the interval index along: the flat entry vector
  /// copies with one memcpy, which is far cheaper than the O(n log n)
  /// rebuild a probing copy would otherwise pay — and the engine's
  /// copy-then-damage snapshot flows probe immediately. Lists that
  /// never probe never build an index in the first place, so their
  /// copies stay index-free too.

  /// Inserts \p S keeping the start-time order. Zero-length slots are
  /// ignored (the paper: "if slots K1 and K2 have a zero time span, it
  /// is not necessary to add them to the list").
  void insert(const Slot &S);

  /// Lists below this size answer containment probes with the plain
  /// linear scan: its early break reaches the container in a handful of
  /// cache-hot steps there, and no index build or maintenance can beat
  /// that. The lazy build in subtract() only fires at or above it.
  static constexpr size_t IndexBuildThreshold = 512;

  /// Subtracts the reserved span [\p Start, \p End) from the slot on
  /// \p NodeId that fully contains it. The containing slot is removed
  /// and up to two remainder slots are inserted (Fig. 1(b)).
  ///
  /// On lists of at least IndexBuildThreshold slots the containment
  /// probe goes through the per-node interval index (built lazily on
  /// the first call, maintained incrementally after that): O(log n)
  /// amortized instead of the front-to-back scan, selecting exactly
  /// the slot subtractLinear() would — the fuzz harnesses
  /// differential-test the two paths bit for bit. Smaller lists scan
  /// linearly unless buildIndexNow() forced the index.
  ///
  /// \returns true if a containing slot was found and split; false if no
  /// slot on \p NodeId contains the span (the list is left unchanged).
  bool subtract(int NodeId, TimePoint Start, TimePoint End);

  /// Builds the interval index immediately, regardless of the
  /// IndexBuildThreshold gate. The differential test harnesses use
  /// this to drive small lists down the indexed path; production
  /// callers rely on the lazy build in subtract().
  void buildIndexNow();

  /// True once the interval index has been built (lazily or forced).
  bool indexBuilt() const { return Index.built(); }

  /// The O(n) front-to-back scan subtract() accelerates: kept verbatim
  /// (plus the sorted-order early exit) as the differential-testing
  /// oracle for the indexed probe. Same result, same list mutations.
  bool subtractLinear(int NodeId, TimePoint Start, TimePoint End);

  /// Binary-search variant of subtract() for callers that know the
  /// exact containing slot (window members carry their source slot):
  /// if a slot equal to \p Container is stored, splits it around
  /// [\p Start, \p End) exactly like subtract() and returns true;
  /// otherwise returns false without modifying the list, and the
  /// caller falls back to the linear subtract(). O(log n) lookup plus
  /// the vector splice instead of a front-to-back scan.
  bool subtractExact(const Slot &Container, TimePoint Start, TimePoint End);

  /// subtractExact() with a remainder filter: each nonzero remainder
  /// piece is inserted only if \p Keep returns true. SlotFilter uses
  /// this to keep per-job admissible views exact under damage — a
  /// remainder too short for the job must not re-enter its view. The
  /// filter is taken as a non-allocating FunctionRef because this call
  /// sits on the window-damage hot path (once per member span of every
  /// committed window, across every per-job view).
  bool subtractExact(const Slot &Container, TimePoint Start, TimePoint End,
                     FunctionRef<bool(const Slot &)> Keep);

  /// True if a slot equal to \p S (node, span) is stored. Binary
  /// search; used by the speculative sweep's window-intact check.
  bool containsExact(const Slot &S) const;

  /// Removes the slot equal to \p S (node, span), if stored: the exact
  /// inverse of insert() for a slot known by identity. O(log n) lookup
  /// plus the vector splice. Part of the delta surface the persistent
  /// filter reconciles per-job views through (docs/PERFORMANCE.md,
  /// "The persistent filter").
  /// \returns true if a slot was removed; false leaves the list
  /// unchanged.
  bool eraseExact(const Slot &S);

  /// insert() without the zero-length gate: splices \p S at its sorted
  /// position verbatim, whatever its span. The delta/rollback surface
  /// uses this so that re-inserting a slot recorded from another list
  /// reproduces that list bit for bit even for degenerate inputs;
  /// regular producers should call insert(), which applies the paper's
  /// zero-span rule.
  void insertVerbatim(const Slot &S);

  /// Total vacant time across all slots, carried with Neumaier
  /// compensation (matching support/Statistics.h RunningStats::sum())
  /// so magnitude-spread slot sets do not drop their small terms.
  double totalSpan() const;

  /// First position whose slot a deadline-bounded scan can never
  /// examine: the partition point of approxLt(Start, \p Limit), i.e.
  /// exactly where the ALP/AMP/backfill loops' per-slot deadline break
  /// would fire. O(log n); end() for an infinite \p Limit.
  std::vector<Slot>::const_iterator scanEndBefore(TimePoint Limit) const;

  /// True if the list is sorted by start and slots never overlap within
  /// a node. Intended for asserts and tests.
  bool checkInvariants() const;

  /// Structural validator: re-checks the sorted order, the absence of
  /// zero-length slots, per-node disjointness, and (when built) the
  /// interval index's consistency with the slot vector, aborting with a
  /// diagnostic that names the offending slots on the first violation.
  /// The search algorithms invoke it at stage boundaries under
  /// ECOSCHED_DCHECK; it is O(n^2) and intended for debug builds.
  void validate() const;

  /// True if the lazily built interval index (when built) mirrors the
  /// slot vector exactly. Exposed for the differential fuzz harnesses;
  /// always true for an unbuilt index.
  bool checkIndexConsistency() const;

  /// Serializes the slot vector as an embedded TraceIO slot-trace blob
  /// (docs/PERSISTENCE.md). The interval index is derived state and
  /// never enters the format; loadState leaves it unbuilt, to be
  /// rebuilt lazily exactly as after the original construction.
  void saveState(StateWriter &W) const;

  /// Restores a list written by saveState. Rejects — with a diagnostic
  /// on the reader, never an abort — malformed trace text, zero-length
  /// slots, invariant violations (unsorted, overlapping within a node),
  /// and non-canonical renderings (re-serializing the parsed list must
  /// reproduce the stored blob byte for byte, so save → load → save is
  /// provably a fixed point). The list is unchanged unless the load
  /// succeeds.
  bool loadState(StateReader &R);

  size_t size() const { return Slots.size(); }
  bool empty() const { return Slots.empty(); }
  const Slot &operator[](size_t I) const { return Slots[I]; }

  std::vector<Slot>::const_iterator begin() const { return Slots.begin(); }
  std::vector<Slot>::const_iterator end() const { return Slots.end(); }

private:
  /// Removes *It, keeping the interval index in step.
  void eraseAt(std::vector<Slot>::iterator It);

  /// Splits the slot at \p It around the reserved span [\p Start,
  /// \p End): erases it and re-inserts the nonzero remainder pieces.
  void splitAround(std::vector<Slot>::iterator It, TimePoint Start,
                   TimePoint End);

  std::vector<Slot> Slots;
  /// Containment-probe accelerator for subtract(); built lazily on the
  /// first probe so lists that are only scanned (SlotFilter views, the
  /// search loops) never pay for it.
  SlotIntervalIndex Index;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOTLIST_H
