//===-- tests/sim/SlotListValidateTest.cpp - Structural validators --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Exercises SlotList::validate() and Window::validate() on deliberately
// corrupted structures: the validators must abort with a diagnostic that
// names the offending slots, and must stay silent on healthy inputs.
//
//===----------------------------------------------------------------------===//

#include "sim/SlotList.h"
#include "sim/Window.h"

#include <gtest/gtest.h>

namespace {

using namespace ecosched;

SlotList healthyList() {
  return SlotList({Slot(0, 1.0, 2.0, 0.0, 10.0),
                   Slot(1, 2.0, 3.0, 1.0, 8.0),
                   Slot(0, 1.0, 2.0, 12.0, 20.0)});
}

TEST(SlotListValidate, HealthyListPasses) {
  healthyList().validate();
  SUCCEED();
}

TEST(SlotListValidate, EmptyListPasses) {
  SlotList().validate();
  SUCCEED();
}

TEST(SlotListValidateDeathTest, DetectsOverlapOnOneNode) {
  // The constructor sorts but does not police per-node disjointness;
  // that invariant is owed by the producers, which is exactly what
  // validate() double-checks at stage boundaries.
  const SlotList Corrupt({Slot(0, 1.0, 2.0, 0.0, 10.0),
                          Slot(0, 1.0, 2.0, 5.0, 15.0)});
  EXPECT_DEATH(Corrupt.validate(), "overlap on node 0");
}

TEST(SlotListValidateDeathTest, DetectsZeroLengthSlot) {
  // insert() filters zero-length slots; the bulk constructor does not.
  const SlotList Corrupt({Slot(2, 1.0, 2.0, 5.0, 5.0)});
  EXPECT_DEATH(Corrupt.validate(), "zero-length slot");
}

TEST(SlotListValidate, TouchingSlotsAreNotOverlap) {
  const SlotList Touching({Slot(0, 1.0, 2.0, 0.0, 5.0),
                           Slot(0, 1.0, 2.0, 5.0, 10.0)});
  Touching.validate();
  SUCCEED();
}

TEST(SlotListValidate, SubtractPreservesValidity) {
  SlotList List = healthyList();
  ASSERT_TRUE(List.subtract(0, TimePoint(2.0), TimePoint(4.0)));
  List.validate();
  SUCCEED();
}

Window healthyWindow() {
  std::vector<WindowSlot> Members;
  // Two members covering [1, 1 + runtime) with consistent costs.
  Members.push_back({Slot(0, 1.0, 2.0, 0.0, 10.0), /*Runtime=*/4.0,
                     /*Cost=*/8.0});
  Members.push_back({Slot(1, 2.0, 3.0, 1.0, 8.0), /*Runtime=*/2.0,
                     /*Cost=*/6.0});
  return Window(TimePoint(1.0), std::move(Members));
}

TEST(WindowValidate, HealthyWindowPasses) {
  healthyWindow().validate();
  healthyWindow().validate(/*ExpectedSlots=*/2);
  SUCCEED();
}

TEST(WindowValidateDeathTest, DetectsCostInconsistentWithPriceAndRuntime) {
  std::vector<WindowSlot> Members;
  // UnitPrice 2.0 * Runtime 4.0 = 8.0, but the cached cost claims 9.5.
  Members.push_back({Slot(0, 1.0, 2.0, 0.0, 10.0), /*Runtime=*/4.0,
                     /*Cost=*/9.5});
  const Window W(TimePoint(1.0), std::move(Members));
  EXPECT_DEATH(W.validate(), "disagrees with UnitPrice");
}

TEST(WindowValidateDeathTest, DetectsSlotCountMismatch) {
  EXPECT_DEATH(healthyWindow().validate(/*ExpectedSlots=*/3),
               "holds 2 slots but the request asked for 3");
}

TEST(WindowValidateDeathTest, ConstructorRejectsNonCoveringMember) {
  // Coverage violations abort in the constructor itself, before a
  // corrupted window can circulate.
  std::vector<WindowSlot> Members;
  Members.push_back({Slot(0, 1.0, 2.0, 0.0, 3.0), /*Runtime=*/4.0,
                     /*Cost=*/8.0});
  EXPECT_DEATH(Window(TimePoint(1.0), std::move(Members)),
               "does not cover the window span");
}

TEST(ApproxHelpers, ToleranceSemantics) {
  EXPECT_TRUE(approxEq(1.0, 1.0 + TimeEpsilon / 2));
  EXPECT_FALSE(approxEq(1.0, 1.0 + 3 * TimeEpsilon));
  EXPECT_TRUE(approxLe(1.0 + TimeEpsilon / 2, 1.0));
  EXPECT_FALSE(approxLe(1.0 + 3 * TimeEpsilon, 1.0));
  EXPECT_TRUE(approxGe(1.0 - TimeEpsilon / 2, 1.0));
  EXPECT_TRUE(approxLt(1.0, 1.0 + 3 * TimeEpsilon));
  EXPECT_FALSE(approxLt(1.0, 1.0 + TimeEpsilon / 2));
  EXPECT_TRUE(approxGt(1.0 + 3 * TimeEpsilon, 1.0));
  EXPECT_FALSE(approxGt(1.0 + TimeEpsilon / 2, 1.0));
}

} // namespace
