file(REMOVE_RECURSE
  "../bench/ablation_deadline"
  "../bench/ablation_deadline.pdb"
  "CMakeFiles/ablation_deadline.dir/ablation_deadline.cpp.o"
  "CMakeFiles/ablation_deadline.dir/ablation_deadline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
