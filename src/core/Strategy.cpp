//===-- core/Strategy.cpp - Multi-version safety strategies ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Strategy.h"

#include <algorithm>
#include "support/Check.h"
#include <cmath>

using namespace ecosched;

std::vector<JobStrategy>
ecosched::buildStrategies(const IterationOutcome &Outcome,
                          StrategyConfig Cfg) {
  ECOSCHED_CHECK(Cfg.MaxVersions > 0,
                 "a strategy needs at least the primary version, got {}",
                 Cfg.MaxVersions);
  std::vector<JobStrategy> Strategies;
  Strategies.reserve(Outcome.Scheduled.size());

  for (const ScheduledJob &S : Outcome.Scheduled) {
    JobStrategy Strategy;
    Strategy.JobId = S.JobId;
    Strategy.BatchIndex = S.BatchIndex;
    Strategy.Versions.push_back(S.W);

    // Fallback candidates: the job's other alternatives that start no
    // earlier than the primary (activation moves forward in time),
    // earliest first.
    const std::vector<Window> &Alternatives =
        Outcome.Alternatives.PerJob[S.BatchIndex];
    std::vector<const Window *> Candidates;
    for (size_t A = 0, E = Alternatives.size(); A != E; ++A) {
      if (A == S.AlternativeIndex)
        continue;
      if (approxGe(Alternatives[A].startTime(), S.W.startTime()))
        Candidates.push_back(&Alternatives[A]);
    }
    std::sort(Candidates.begin(), Candidates.end(),
              [](const Window *A, const Window *B) {
                if (!exactEq(A->startTime(), B->startTime()))
                  return exactLess(A->startTime(), B->startTime());
                return exactLess(A->totalCost(), B->totalCost());
              });
    for (const Window *W : Candidates) {
      if (Strategy.Versions.size() >= Cfg.MaxVersions)
        break;
      Strategy.Versions.push_back(*W);
    }
    Strategies.push_back(std::move(Strategy));
  }
  return Strategies;
}

StrategyExecutionReport
ecosched::executeStrategies(const std::vector<JobStrategy> &Strategies,
                            RandomGenerator &Rng,
                            double NodeFailureProbability) {
  ECOSCHED_CHECK(NodeFailureProbability >= 0.0 &&
                     NodeFailureProbability <= 1.0,
                 "failure probability must be in [0, 1], got {}",
                 NodeFailureProbability);
  StrategyExecutionReport Report;
  Report.Jobs = Strategies.size();

  for (const JobStrategy &Strategy : Strategies) {
    Report.ReservedNodeTime += Strategy.reservedNodeTime().value();

    TimePoint Now(0.0); // Earliest time the next launch may happen.
    bool Done = false;
    size_t Used = 0;
    for (const Window &Version : Strategy.Versions) {
      if (approxLt(Version.startTime(), Now))
        continue; // This fallback's start already passed.
      ++Used;
      // The launch fails if any member node fails.
      const double WindowFailure =
          1.0 - std::pow(1.0 - NodeFailureProbability,
                         static_cast<double>(Version.size()));
      if (!Rng.bernoulli(WindowFailure)) {
        ++Report.Completed;
        Report.CompletionTime.add(Version.endTime().value());
        Report.VersionsUsed.add(static_cast<double>(Used));
        Report.PaidCost += Version.totalCost().value();
        Done = true;
        break;
      }
      // Failure detected at launch; later versions remain usable.
      Now = Version.startTime();
    }
    if (!Done)
      ++Report.Lost;
  }
  return Report;
}
