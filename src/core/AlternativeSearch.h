//===-- core/AlternativeSearch.h - Multi-variant batch search ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first phase of the scheduling scheme (Section 2): for every job
/// of the batch, collect several *alternative* slot sets. The search
/// sweeps the batch in priority order; each found window is subtracted
/// from the working slot list (Fig. 1(b)) so alternatives never
/// intersect in processor time; sweeps repeat until no job can be
/// placed on the remaining slots.
///
/// Two orthogonal accelerations over the textbook loop, both
/// result-preserving (docs/PERFORMANCE.md):
///  * SlotFilter precomputes each job's admissible slot view and keeps
///    it exact incrementally, so every search scans only slots that can
///    actually join a window for that job.
///  * With a ThreadPool configured, each pass speculatively searches
///    all jobs in parallel against the pass-start views, then commits
///    sequentially in job order; a speculative window invalidated by an
///    earlier commit is recomputed serially. The resulting
///    AlternativeSet is bitwise-identical to the serial sweep for any
///    thread count.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_ALTERNATIVESEARCH_H
#define ECOSCHED_CORE_ALTERNATIVESEARCH_H

#include "core/SearchAlgorithm.h"

#include <vector>

namespace ecosched {

class PersistentSlotFilter;
class ThreadPool;

/// All alternatives found for one batch; PerJob is parallel to the
/// batch's job order.
struct AlternativeSet {
  std::vector<std::vector<Window>> PerJob;

  /// True if every job has at least one alternative (the requirement for
  /// an experiment to be counted, Section 5).
  bool allCovered() const {
    for (const auto &Windows : PerJob)
      if (Windows.empty())
        return false;
    return !PerJob.empty();
  }

  /// Total number of alternatives across the batch.
  size_t total() const {
    size_t Sum = 0;
    for (const auto &Windows : PerJob)
      Sum += Windows.size();
    return Sum;
  }

  /// Mean alternatives per job; 0 for an empty batch.
  double averagePerJob() const {
    if (PerJob.empty())
      return 0.0;
    return static_cast<double>(total()) /
           static_cast<double>(PerJob.size());
  }
};

/// Runs the multi-pass alternative search for a batch.
class AlternativeSearch {
public:
  struct Config {
    /// Stop after this many sweeps over the batch; 0 means sweep until
    /// a full pass places nothing (the paper's termination rule).
    size_t MaxPasses = 0;
    /// Optional cap on alternatives per job; 0 means unlimited.
    size_t MaxAlternativesPerJob = 0;
    /// Optional shared pool for the speculative sharded sweep. The
    /// sweep stays deterministic: the result is identical for any pool
    /// size, including a pool of 1. Algorithms that do not support
    /// speculative reuse (supportsSpeculativeReuse() == false) fall
    /// back to the serial filtered sweep; the pool is then unused.
    ThreadPool *Pool = nullptr;
    /// When false, disables the SlotFilter admissibility index *and*
    /// the sharded sweep, running the textbook serial loop over the
    /// full list. Reference path for differential tests and the bench
    /// baseline; production callers leave it on.
    bool UseFilter = true;
  };

  explicit AlternativeSearch(const SlotSearchAlgorithm &Algo)
      : Algo(Algo) {}
  AlternativeSearch(const SlotSearchAlgorithm &Algo, Config Cfg)
      : Algo(Algo), Cfg(Cfg) {}

  /// Collects alternatives for \p Jobs on a copy of \p List.
  /// \param Stats optional accumulated search work counters. Counters
  /// depend on the configured path (the filter shrinks SlotsExamined;
  /// speculation adds recompute work) but not on the pool size.
  /// \param Reuse optional persistent filter already synced with
  /// exactly \p List and \p Jobs (PersistentSlotFilter::sync): the
  /// sweep then scans its carried-over views instead of building a
  /// throwaway SlotFilter, journals its damage, and rolls the journal
  /// back before returning, leaving \p Reuse ready for the next
  /// iteration's sync. Views synced from the same list and batch are
  /// bitwise-equal to the throwaway filter's, so the result is
  /// bitwise-identical with or without \p Reuse. Ignored when
  /// Config::UseFilter is false (the unfiltered loop has no views to
  /// reuse).
  AlternativeSet run(SlotList List, const Batch &Jobs,
                     SearchStats *Stats = nullptr,
                     PersistentSlotFilter *Reuse = nullptr) const;

private:
  /// The textbook loop: full-list scans, no speculation (UseFilter off).
  AlternativeSet runUnfiltered(SlotList List, const Batch &Jobs,
                               SearchStats *Stats) const;

  /// The filtered multi-pass sweep, generic over the view provider:
  /// SlotFilter (throwaway, built per call) or PersistentSlotFilter
  /// (carried across iterations). Both expose view / applyDamage /
  /// windowIntact with identical semantics, so the sweep body — and
  /// therefore the result — is the same code either way.
  template <typename FilterT>
  AlternativeSet runFiltered(SlotList List, const Batch &Jobs,
                             SearchStats *Stats, FilterT &Filter) const;

  const SlotSearchAlgorithm &Algo;
  Config Cfg = {};
};

} // namespace ecosched

#endif // ECOSCHED_CORE_ALTERNATIVESEARCH_H
