//===-- bench/fig6_cost_minimization.cpp - Reproduces Fig. 6 --------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E6 (DESIGN.md): job batch execution cost minimization,
/// min C(s) subject to T(s) <= T* (Fig. 6). The paper reports, over the
/// 8571 counted experiments of the 25000-iteration study:
///   (a) average job execution cost: ALP 313.09, AMP 343.3 (ALP -9%);
///   (b) average job execution time: ALP 61.04, AMP 51.62 (AMP -15%).
///
//===----------------------------------------------------------------------===//

#include "ExperimentReport.h"
#include "support/CommandLine.h"
#include "support/Plot.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("fig6_cost_minimization",
                 "Fig. 6: batch cost minimization, ALP vs AMP");
  const int64_t &Iterations =
      Args.addInt("iterations", 2000, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const double &PriceFactor = Args.addReal(
      "price-factor", 1.1,
      "request price cap factor: C = factor * 1.7^Pmin");
  const int64_t &Threads = Args.addThreads();
  const std::string &SvgPrefix = Args.addString(
      "svg", "", "write <prefix>_time.svg and <prefix>_cost.svg figures");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Fig. 6 reproduction: job batch execution cost "
              "minimization (min C(s) s.t. T(s) <= T*)\n");
  std::printf("======================================================="
              "================\n\n");

  ExperimentConfig Cfg;
  Cfg.Iterations = Iterations;
  Cfg.Seed = static_cast<uint64_t>(Seed);
  Cfg.Jobs.PriceFactor = PriceFactor;
  Cfg.Threads = static_cast<size_t>(Threads);
  Cfg.Task = OptimizationTaskKind::MinimizeCost;
  const ExperimentResult R = PairedExperiment(Cfg).run();
  printRunHeader(R);

  const PaperComparisonRow Rows[] = {
      {"(a) avg job execution cost", R.Alp.JobCost.mean(),
       R.Amp.JobCost.mean(), 313.09, 343.30},
      {"(b) avg job execution time", R.Alp.JobTime.mean(),
       R.Amp.JobTime.mean(), 61.04, 51.62},
      {"alternatives per job", R.Alp.AlternativesPerJob.mean(),
       R.Amp.AlternativesPerJob.mean(), 7.28, 34.23},
  };
  printPaperComparison(Rows, 3);

  std::printf("\nshape check: ALP cost advantage %.1f%% (paper 8.8%%), "
              "AMP time gain %.1f%% (paper 15.4%%)\n",
              100.0 * (R.Amp.JobCost.mean() / R.Alp.JobCost.mean() - 1.0),
              100.0 *
                  (1.0 - R.Amp.JobTime.mean() / R.Alp.JobTime.mean()));
  std::printf("counted fraction: %.1f%% of simulated iterations (paper: "
              "8571/25000 = 34.3%%)\n",
              100.0 * static_cast<double>(R.CountedIterations) /
                  static_cast<double>(R.TotalIterations));
  if (!SvgPrefix.empty()) {
    GroupedBarChart TimeChart("Fig. 6(a/b): average job execution time",
                              "time");
    TimeChart.setSeries({"ALP", "AMP"});
    TimeChart.addGroup("measured",
                       {R.Alp.JobTime.mean(), R.Amp.JobTime.mean()});
    TimeChart.addGroup("paper", {61.04, 51.62});
    GroupedBarChart CostChart("Fig. 6: average job execution cost",
                              "cost");
    CostChart.setSeries({"ALP", "AMP"});
    CostChart.addGroup("measured",
                       {R.Alp.JobCost.mean(), R.Amp.JobCost.mean()});
    CostChart.addGroup("paper", {313.09, 343.30});
    if (TimeChart.render().write(SvgPrefix + "_time.svg") &&
        CostChart.render().write(SvgPrefix + "_cost.svg"))
      std::printf("wrote %s_time.svg and %s_cost.svg\n",
                  SvgPrefix.c_str(), SvgPrefix.c_str());
  }
  return 0;
}
