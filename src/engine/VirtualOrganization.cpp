//===-- engine/VirtualOrganization.cpp - Layered VO facade ----------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/VirtualOrganization.h"

using namespace ecosched;

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler)
    : VirtualOrganization(std::move(InDomain), Scheduler, Config()) {}

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler,
                                         Config Cfg)
    : Domain(std::move(InDomain)), Scheduler(Scheduler), Cfg(Cfg),
      Clock(Cfg.IterationPeriod, Cfg.HorizonLength),
      Queue(Cfg.MaxAttempts) {}

void VirtualOrganization::submit(const Job &J) { Queue.submit(J); }

VirtualOrganization::IterationReport VirtualOrganization::runIteration() {
  IterationReport Report;
  Report.Now = Clock.now();
  Report.QueueLength = Queue.size();

  // Build the batch in queue (priority) order.
  const Batch Jobs = Queue.batch();
  if (!Jobs.empty()) {
    const SlotList Slots = Domain.vacantSlots(Clock.now(),
                                              Clock.horizonEnd());
    // Reconcile the carried-over views with this iteration's slots and
    // batch; the sweep then reuses them instead of rebuilding. The
    // sync's reconciliation counters ride along in the iteration's
    // stats (they are the only stats difference versus the rebuild
    // path — the sweep scans bitwise-identical views either way).
    PersistentSlotFilter *Reuse = nullptr;
    SearchStats SyncStats;
    if (Cfg.ReuseFilter && Scheduler.config().Search.UseFilter) {
      if (!Filter)
        Filter.emplace(Scheduler.searchAlgo());
      Filter->sync(Slots, Jobs, &SyncStats);
      Reuse = &*Filter;
    }
    Report.Outcome = Scheduler.runIteration(Slots, Jobs, Reuse);
    Report.Outcome.Stats += SyncStats;
    FilterStats += SyncStats;

    // Commit the selected windows as external reservations and remove
    // the jobs from the queue.
    std::vector<size_t> CommittedIndices;
    CommittedIndices.reserve(Report.Outcome.Scheduled.size());
    for (const ScheduledJob &S : Report.Outcome.Scheduled) {
      const JobQueue::PendingJob &P = Queue.at(S.BatchIndex);
      Ledger.commit(Domain, S, P.Spec, P.Attempts + 1);
      CommittedIndices.push_back(S.BatchIndex);
      ++Report.Committed;
    }
    Queue.removeScheduled(CommittedIndices);
  }

  // Postponed jobs stay queued; the queue accounts the failed attempt
  // and drops jobs that exhausted their attempt budget.
  Report.Dropped = Queue.chargeAttempt();

  Clock.advance();
  Domain.advanceTo(Clock.now());
  Ledger.retireFinished(Clock.now());
  return Report;
}

size_t VirtualOrganization::injectNodeFailure(int NodeId) {
  const std::vector<ReservationLedger::RequeuedJob> Requeued =
      Ledger.cancelOnNode(Domain, NodeId, Clock.now());
  for (const ReservationLedger::RequeuedJob &R : Requeued)
    Queue.resubmitFront(R.Spec, R.Attempts);
  return Requeued.size();
}

void VirtualOrganization::repairNode(int NodeId) {
  Domain.restoreNode(NodeId);
}

bool VirtualOrganization::cancelJob(int JobId) {
  if (Queue.cancel(JobId))
    return true;
  return Ledger.release(Domain, JobId);
}

void VirtualOrganization::setQueuedBudgetFactor(double Rho) {
  Queue.setBudgetFactor(Rho);
}
