//===-- tests/core/AlpSearchTest.cpp - ALP unit tests ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

ResourceRequest makeRequest(int Nodes, double Volume, double MinPerf,
                            double MaxPrice) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = Volume;
  Req.MinPerformance = MinPerf;
  Req.MaxUnitPrice = MaxPrice;
  return Req;
}

} // namespace

TEST(AlpSearchTest, SingleSlotRequest) {
  SlotList List({Slot(0, 1.0, 2.0, 10.0, 100.0)});
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(1, 50.0, 1.0, 3.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 10.0);
  EXPECT_DOUBLE_EQ(W->timeSpan().value(), 50.0);
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 100.0);
  EXPECT_EQ(W->size(), 1u);
}

TEST(AlpSearchTest, PriceCapExcludesExpensiveSlots) {
  SlotList List({Slot(0, 1.0, 10.0, 0.0, 100.0),   // Too expensive.
                 Slot(1, 1.0, 2.0, 50.0, 200.0)}); // Fits.
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(1, 50.0, 1.0, 3.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ((*W)[0].Source.NodeId, 1);
  EXPECT_DOUBLE_EQ(W->startTime().value(), 50.0);
}

TEST(AlpSearchTest, PerformanceFilter) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 500.0),   // Too slow.
                 Slot(1, 2.5, 1.0, 100.0, 500.0)}); // Fast enough.
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(1, 100.0, 2.0, 5.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ((*W)[0].Source.NodeId, 1);
  EXPECT_DOUBLE_EQ(W->timeSpan().value(), 40.0); // 100 / 2.5.
}

TEST(AlpSearchTest, TooShortSlotSkipped) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 30.0),    // Shorter than 50.
                 Slot(1, 1.0, 1.0, 10.0, 70.0)}); // Long enough.
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(1, 50.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ((*W)[0].Source.NodeId, 1);
}

TEST(AlpSearchTest, ExpirationDropsStaleGroupMembers) {
  // Slot 0 is alive at its own start but cannot cover the runtime once
  // the window start advances to slot 1's start; the window needs
  // slot 1 + slot 2.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 120.0),
                 Slot(1, 1.0, 1.0, 100.0, 300.0),
                 Slot(2, 1.0, 1.0, 150.0, 300.0)});
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(2, 100.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 150.0);
  EXPECT_TRUE(W->usesNode(1));
  EXPECT_TRUE(W->usesNode(2));
  EXPECT_FALSE(W->usesNode(0));
}

TEST(AlpSearchTest, MemberStillValidWhenWindowAdvancesWithinSlot) {
  // Slot 0 has enough tail to stay in the window at slot 1's start.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 250.0),
                 Slot(1, 1.0, 1.0, 100.0, 300.0)});
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(2, 100.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 100.0);
  EXPECT_TRUE(W->usesNode(0));
  EXPECT_TRUE(W->usesNode(1));
}

TEST(AlpSearchTest, FailsWhenNotEnoughConcurrentSlots) {
  // Two admissible slots but they never overlap long enough.
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 90.0, 190.0)});
  AlpSearch Alp;
  EXPECT_FALSE(
      Alp.findWindow(List, makeRequest(2, 100.0, 1.0, 2.0)).has_value());
}

TEST(AlpSearchTest, EmptyListFails) {
  SlotList List;
  AlpSearch Alp;
  EXPECT_FALSE(
      Alp.findWindow(List, makeRequest(1, 10.0, 1.0, 2.0)).has_value());
}

TEST(AlpSearchTest, RoughRightEdgeOnHeterogeneousNodes) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 200.0),
                 Slot(1, 2.0, 1.5, 0.0, 200.0)});
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(2, 100.0, 1.0, 2.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->timeSpan().value(), 100.0); // Slowest node dominates.
  // Member runtimes differ: 100 and 50.
  double FastRuntime = 0.0, SlowRuntime = 0.0;
  for (const WindowSlot &M : *W)
    (M.Source.Performance > 1.5 ? FastRuntime : SlowRuntime) = M.Runtime;
  EXPECT_DOUBLE_EQ(SlowRuntime, 100.0);
  EXPECT_DOUBLE_EQ(FastRuntime, 50.0);
  // Cost: 1*100 + 1.5*50 = 175.
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 175.0);
}

TEST(AlpSearchTest, ReturnsEarliestWindow) {
  // A later, cheaper window exists; ALP must return the earliest.
  SlotList List({Slot(0, 1.0, 2.0, 0.0, 100.0),
                 Slot(1, 1.0, 2.0, 0.0, 100.0),
                 Slot(2, 1.0, 1.0, 300.0, 400.0),
                 Slot(3, 1.0, 1.0, 300.0, 400.0)});
  AlpSearch Alp;
  const auto W = Alp.findWindow(List, makeRequest(2, 50.0, 1.0, 3.0));
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 0.0);
}

TEST(AlpSearchTest, StatsCountEveryExaminedSlot) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0),
                 Slot(2, 1.0, 1.0, 0.0, 100.0)});
  AlpSearch Alp;
  SearchStats Stats;
  const auto W =
      Alp.findWindow(List, makeRequest(2, 50.0, 1.0, 2.0), &Stats);
  ASSERT_TRUE(W.has_value());
  // Stops as soon as the window is complete: two slots examined.
  EXPECT_EQ(Stats.SlotsExamined, 2u);
  EXPECT_EQ(Stats.GroupPeak, 2u);
}

TEST(AlpSearchTest, StatsLinearOnFailure) {
  std::vector<Slot> Slots;
  for (int I = 0; I < 100; ++I)
    Slots.emplace_back(I, 1.0, 1.0, I * 10.0, I * 10.0 + 60.0);
  SlotList List(std::move(Slots));
  AlpSearch Alp;
  SearchStats Stats;
  // Requires 10 concurrent slots: never more than ~6 alive.
  EXPECT_FALSE(
      Alp.findWindow(List, makeRequest(10, 50.0, 1.0, 2.0), &Stats)
          .has_value());
  EXPECT_EQ(Stats.SlotsExamined, 100u); // Exactly one pass.
}
