file(REMOVE_RECURSE
  "../bench/ablation_ordering"
  "../bench/ablation_ordering.pdb"
  "CMakeFiles/ablation_ordering.dir/ablation_ordering.cpp.o"
  "CMakeFiles/ablation_ordering.dir/ablation_ordering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
