//===-- core/SearchCommon.cpp - Shared search helpers ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SearchCommon.h"

using namespace ecosched;

Window ecosched::detail::buildWindow(
    double StartTime, const std::vector<const Slot *> &Chosen,
    const ResourceRequest &Req) {
  std::vector<WindowSlot> Members;
  Members.reserve(Chosen.size());
  for (const Slot *S : Chosen) {
    WindowSlot M;
    M.Source = *S;
    M.Runtime = S->runtimeFor(Req.Volume);
    M.Cost = slotUsageCost(*S, Req);
    Members.push_back(M);
  }
  return Window(StartTime, std::move(Members));
}
