//===-- core/VirtualOrganization.cpp - Iterative VO scheduling loop -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/VirtualOrganization.h"

#include <algorithm>
#include "support/Check.h"

using namespace ecosched;

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler)
    : VirtualOrganization(std::move(InDomain), Scheduler, Config()) {}

VirtualOrganization::VirtualOrganization(ComputingDomain InDomain,
                                         const Metascheduler &Scheduler,
                                         Config Cfg)
    : Domain(std::move(InDomain)), Scheduler(Scheduler), Cfg(Cfg) {
  ECOSCHED_CHECK(Cfg.IterationPeriod > 0.0,
                 "iteration period must be positive, got {}",
                 Cfg.IterationPeriod);
  ECOSCHED_CHECK(Cfg.HorizonLength > 0.0,
                 "horizon must be positive, got {}", Cfg.HorizonLength);
}

void VirtualOrganization::submit(const Job &J) {
  Queue.push_back({J, /*Attempts=*/0});
}

void VirtualOrganization::retireFinishedJobs() {
  for (const RunningJob &R : Running) {
    if (R.EndTime > Clock + TimeEpsilon)
      continue;
    Completed.push_back({R.JobId, R.StartTime, R.EndTime, R.Cost,
                         R.Attempts});
  }
  std::erase_if(Running, [this](const RunningJob &R) {
    return R.EndTime <= Clock + TimeEpsilon;
  });
}

VirtualOrganization::IterationReport VirtualOrganization::runIteration() {
  IterationReport Report;
  Report.Now = Clock;
  Report.QueueLength = Queue.size();

  // Build the batch in queue (priority) order.
  Batch Jobs;
  Jobs.reserve(Queue.size());
  for (const PendingJob &P : Queue)
    Jobs.push_back(P.J);

  if (!Jobs.empty()) {
    const SlotList Slots =
        Domain.vacantSlots(Clock, Clock + Cfg.HorizonLength);
    Report.Outcome = Scheduler.runIteration(Slots, Jobs);

    // Commit the selected windows as external reservations and remove
    // the jobs from the queue.
    std::vector<size_t> CommittedIndices;
    for (const ScheduledJob &S : Report.Outcome.Scheduled) {
      const bool Ok = Domain.reserveWindow(S.W, S.JobId);
      ECOSCHED_CHECK(Ok,
                     "scheduled window for job {} starting at {} conflicts "
                     "with domain occupancy",
                     S.JobId, S.W.startTime());
      RunningJob R;
      R.JobId = S.JobId;
      R.StartTime = S.W.startTime();
      R.EndTime = S.W.endTime();
      R.Cost = S.W.totalCost();
      R.Attempts = Queue[S.BatchIndex].Attempts + 1;
      R.Spec = Queue[S.BatchIndex].J;
      for (const WindowSlot &M : S.W)
        R.Nodes.push_back(M.Source.NodeId);
      Running.push_back(std::move(R));
      CommittedIndices.push_back(S.BatchIndex);
      ++Report.Committed;
    }
    std::sort(CommittedIndices.begin(), CommittedIndices.end(),
              std::greater<size_t>());
    for (size_t Index : CommittedIndices)
      Queue.erase(Queue.begin() + static_cast<long>(Index));
  }

  // Postponed jobs stay queued; account the failed attempt and drop
  // jobs that exhausted their attempt budget.
  for (PendingJob &P : Queue)
    ++P.Attempts;
  if (Cfg.MaxAttempts > 0) {
    for (const PendingJob &P : Queue)
      if (P.Attempts >= Cfg.MaxAttempts) {
        Dropped.push_back(P.J.Id);
        ++Report.Dropped;
      }
    std::erase_if(Queue, [this](const PendingJob &P) {
      return P.Attempts >= Cfg.MaxAttempts;
    });
  }

  Clock += Cfg.IterationPeriod;
  Domain.advanceTo(Clock);
  retireFinishedJobs();
  return Report;
}

size_t VirtualOrganization::injectNodeFailure(int NodeId) {
  const std::vector<int> Cancelled = Domain.failNode(NodeId, Clock);

  // Requeue every affected job that is still running; reservations on
  // the healthy nodes of a cancelled window are released as well so the
  // job can be rescheduled as a whole.
  size_t Requeued = 0;
  for (const int JobId : Cancelled) {
    const auto It =
        std::find_if(Running.begin(), Running.end(),
                     [JobId](const RunningJob &R) {
                       return R.JobId == JobId;
                     });
    if (It == Running.end())
      continue; // Already finished bookkeeping-wise.
    for (const int Node : It->Nodes)
      if (Node != NodeId && Domain.isNodeAvailable(Node))
        Domain.cancelReservations(Node, JobId);
    PendingJob Resubmitted;
    Resubmitted.J = It->Spec;
    Resubmitted.Attempts = It->Attempts;
    Queue.push_front(std::move(Resubmitted));
    Running.erase(It);
    ++Requeued;
  }
  return Requeued;
}

void VirtualOrganization::repairNode(int NodeId) {
  Domain.restoreNode(NodeId);
}

bool VirtualOrganization::cancelJob(int JobId) {
  const size_t Dequeued = std::erase_if(
      Queue, [JobId](const PendingJob &P) { return P.J.Id == JobId; });
  if (Dequeued > 0)
    return true;
  const auto It = std::find_if(
      Running.begin(), Running.end(),
      [JobId](const RunningJob &R) { return R.JobId == JobId; });
  if (It == Running.end())
    return false;
  for (const int Node : It->Nodes)
    if (Domain.isNodeAvailable(Node))
      Domain.cancelReservations(Node, JobId);
  Running.erase(It);
  return true;
}

void VirtualOrganization::setQueuedBudgetFactor(double Rho) {
  ECOSCHED_CHECK(Rho > 0.0, "budget factor must be positive, got {}", Rho);
  for (PendingJob &P : Queue)
    P.J.Request.BudgetFactor = Rho;
}

double VirtualOrganization::totalIncome() const {
  double Income = 0.0;
  for (const CompletedJob &C : Completed)
    Income += C.Cost;
  return Income;
}
