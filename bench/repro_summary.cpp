//===-- bench/repro_summary.cpp - Self-verifying reproduction report ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One binary, one verdict: re-derives every headline claim of the
/// paper on live runs and prints a PASS/FAIL table. Returns a non-zero
/// exit code if any claim fails, so CI can gate on the reproduction
/// staying intact. Shape bands are generous on purpose: they encode
/// "who wins and by roughly what factor", not the authors' exact RNG.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/DpOptimizer.h"
#include "core/Experiment.h"
#include "engine/VirtualOrganization.h"
#include "sim/PaperExample.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <cmath>
#include <cstdio>
#include <string>

using namespace ecosched;

namespace {

struct ClaimChecker {
  TablePrinter Table;
  int Failures = 0;

  ClaimChecker() {
    Table.addColumn("claim", TablePrinter::AlignKind::Left);
    Table.addColumn("paper", TablePrinter::AlignKind::Left);
    Table.addColumn("measured", TablePrinter::AlignKind::Left);
    Table.addColumn("verdict", TablePrinter::AlignKind::Left);
  }

  void check(const std::string &Claim, const std::string &Paper,
             const std::string &Measured, bool Ok) {
    Table.beginRow();
    Table.addCell(Claim);
    Table.addCell(Paper);
    Table.addCell(Measured);
    Table.addCell(std::string(Ok ? "PASS" : "FAIL"));
    Failures += !Ok;
  }

  void checkValue(const std::string &Claim, double Paper, double Measured,
                  double Lo, double Hi) {
    check(Claim, formatDouble(Paper, 2), formatDouble(Measured, 2),
          Measured >= Lo && Measured <= Hi);
  }
};

std::string spanText(const Window &W) {
  return "[" + formatDouble(W.startTime().value(), 0) + ", " +
         formatDouble(W.endTime().value(), 0) + ")";
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("repro_summary",
                 "live PASS/FAIL check of every headline claim");
  const int64_t &Iterations = Args.addInt(
      "iterations", 1500, "simulated iterations for the statistics");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const int64_t &Threads = Args.addThreads();
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Reproduction summary: Toporkov et al., PaCT 2011\n");
  std::printf("================================================\n");
  std::printf("worker threads: %zu\n\n",
              ThreadPool::resolveThreadCount(
                  static_cast<size_t>(Threads)));

  ClaimChecker Checker;
  AlpSearch Alp;
  AmpSearch Amp;

  // --- Section 4 example (Fig. 2 / Fig. 3). ---
  {
    ComputingDomain Domain = buildPaperExampleDomain();
    const Batch Jobs = buildPaperExampleBatch();
    const SlotList Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));
    SlotList Work = Slots;
    const auto W1 = Amp.findWindow(Work, Jobs[0].Request);
    if (W1)
      W1->subtractFrom(Work);
    std::optional<Window> W2, W3;
    if (W1)
      W2 = Amp.findWindow(Work, Jobs[1].Request);
    if (W2) {
      W2->subtractFrom(Work);
      W3 = Amp.findWindow(Work, Jobs[2].Request);
    }

    Checker.check("Fig2 W1 = [150,230) on cpu1+cpu4, unit cost 10",
                  "[150, 230), 10",
                  W1 ? spanText(*W1) + ", " +
                           formatDouble(W1->unitPriceSum().value(), 0)
                     : "none",
                  W1 && W1->startTime().value() == 150.0 && W1->endTime().value() == 230.0 &&
                      W1->usesNode(0) && W1->usesNode(3) &&
                      W1->unitPriceSum().value() == 10.0);
    Checker.check("Fig2 W2 on cpu1+cpu2+cpu4, unit cost 14", "cost 14",
                  W2 ? spanText(*W2) + ", " +
                           formatDouble(W2->unitPriceSum().value(), 0)
                     : "none",
                  W2 && W2->usesNode(0) && W2->usesNode(1) &&
                      W2->usesNode(3) && W2->unitPriceSum().value() == 14.0);
    Checker.check("Fig2 W3 = [450,500)", "[450, 500)",
                  W3 ? spanText(*W3) : "none",
                  W3 && W3->startTime().value() == 450.0 &&
                      W3->endTime().value() == 500.0);

    const AlternativeSet AlpAlts =
        AlternativeSearch(Alp).run(Slots, Jobs);
    const AlternativeSet AmpAlts =
        AlternativeSearch(Amp).run(Slots, Jobs);
    bool AlpCpu6 = false, AmpCpu6 = false;
    for (const auto &PerJob : AlpAlts.PerJob)
      for (const Window &W : PerJob)
        AlpCpu6 |= W.usesNode(5);
    for (const auto &PerJob : AmpAlts.PerJob)
      for (const Window &W : PerJob)
        AmpCpu6 |= W.usesNode(5);
    Checker.check("Fig3 cpu6 used by AMP but not ALP", "yes",
                  AmpCpu6 && !AlpCpu6 ? "yes" : "no",
                  AmpCpu6 && !AlpCpu6);
    Checker.check("Fig3 AMP finds more alternatives on the example",
                  "more",
                  std::to_string(AmpAlts.total()) + " vs " +
                      std::to_string(AlpAlts.total()),
                  AmpAlts.total() > AlpAlts.total());
  }

  // --- Section 5 statistics (Figs. 4-6 + scalars). ---
  ExperimentConfig TimeCfg;
  TimeCfg.Iterations = Iterations;
  TimeCfg.Seed = static_cast<uint64_t>(Seed);
  TimeCfg.Threads = static_cast<size_t>(Threads);
  TimeCfg.Task = OptimizationTaskKind::MinimizeTime;
  TimeCfg.SeriesCapacity = 100;
  const ExperimentResult TimeRun = PairedExperiment(TimeCfg).run();

  ExperimentConfig CostCfg = TimeCfg;
  CostCfg.Task = OptimizationTaskKind::MinimizeCost;
  const ExperimentResult CostRun = PairedExperiment(CostCfg).run();

  {
    const double Gain =
        100.0 * (1.0 - TimeRun.Amp.JobTime.mean() /
                           TimeRun.Alp.JobTime.mean());
    Checker.checkValue("Fig4a AMP time gain % (band 20..50)", 34.8, Gain,
                       20.0, 50.0);
    const double Overhead =
        100.0 * (TimeRun.Amp.JobCost.mean() /
                     TimeRun.Alp.JobCost.mean() -
                 1.0);
    Checker.checkValue("Fig4b AMP cost overhead % (band 5..40)", 17.9,
                       Overhead, 5.0, 40.0);

    size_t AmpWins = 0;
    const size_t N = TimeRun.Amp.JobTimeSeries.size();
    for (size_t I = 0; I < N; ++I)
      AmpWins += TimeRun.Amp.JobTimeSeries[I] <
                 TimeRun.Alp.JobTimeSeries[I];
    Checker.checkValue("Fig5 AMP faster, % of experiments (>= 95)",
                       100.0,
                       N ? 100.0 * static_cast<double>(AmpWins) /
                               static_cast<double>(N)
                         : 0.0,
                       95.0, 100.0);

    const double AlpAdvantage =
        100.0 * (CostRun.Amp.JobCost.mean() /
                     CostRun.Alp.JobCost.mean() -
                 1.0);
    Checker.checkValue("Fig6a ALP cost advantage % (band 0..25)", 9.6,
                       AlpAdvantage, 0.0, 25.0);
    const double CostTaskTimeGain =
        100.0 * (1.0 - CostRun.Amp.JobTime.mean() /
                           CostRun.Alp.JobTime.mean());
    Checker.checkValue("Fig6b AMP time gain % (band 5..35)", 15.4,
                       CostTaskTimeGain, 5.0, 35.0);

    const double Ratio = TimeRun.Amp.AlternativesPerJob.mean() /
                         TimeRun.Alp.AlternativesPerJob.mean();
    Checker.checkValue("S5 AMP/ALP alternatives ratio (band 2..7)", 4.64,
                       Ratio, 2.0, 7.0);
    Checker.checkValue("S5 avg slots per iteration (band 120..150)",
                       135.11, TimeRun.SlotsAll.mean(), 120.0, 150.0);
    Checker.checkValue(
        "S5 counted fraction % (band 15..55)", 34.3,
        100.0 * static_cast<double>(CostRun.CountedIterations) /
            static_cast<double>(CostRun.TotalIterations),
        15.0, 55.0);
  }

  // --- Section 3 complexity claim. ---
  {
    SlotGeneratorConfig Cfg;
    Cfg.MinSlotCount = Cfg.MaxSlotCount = 4000;
    RandomGenerator Rng(7);
    const SlotList List = SlotGenerator(Cfg).generate(Rng);
    ResourceRequest Unsatisfiable;
    Unsatisfiable.NodeCount = 1000000;
    Unsatisfiable.Volume = 50.0;
    Unsatisfiable.MinPerformance = 1.0;
    Unsatisfiable.MaxUnitPrice = 1e9;
    SearchStats AlpStats, BackfillStats;
    (void)Alp.findWindow(List, Unsatisfiable, &AlpStats);
    BackfillSearch Backfill;
    (void)Backfill.findWindow(List, Unsatisfiable, &BackfillStats);
    Checker.check("S3 ALP examines exactly m slots (m=4000)", "m",
                  std::to_string(AlpStats.SlotsExamined),
                  AlpStats.SlotsExamined == 4000);
    Checker.check("S3 backfill examines ~m+m^2 slots", ">= m^2",
                  std::to_string(BackfillStats.SlotsExamined),
                  BackfillStats.SlotsExamined >= 4000ull * 4000ull);
  }

  // --- Cross-iteration reuse claim (docs/PERFORMANCE.md, "The
  // persistent filter"): the delta-synced views must reproduce the
  // from-scratch rebuild bitwise while actually reusing views. ---
  {
    DpOptimizer Dp;
    const Metascheduler Scheduler(Amp, Dp);
    const auto RunVo = [&](bool ReuseFilter) {
      ComputingDomain Domain;
      for (int Node = 0; Node < 5; ++Node)
        Domain.addNode(1.0 + 0.25 * Node, 1.0 + 0.2 * Node);
      VirtualOrganization::Config Cfg;
      Cfg.IterationPeriod = 100.0;
      Cfg.HorizonLength = 600.0;
      Cfg.ReuseFilter = ReuseFilter;
      VirtualOrganization Vo(std::move(Domain), Scheduler, Cfg);
      RandomGenerator Rng(static_cast<uint64_t>(Seed));
      int NextId = 0;
      for (int Iter = 0; Iter < 24; ++Iter) {
        // Demanding enough that some jobs wait in the queue across
        // iterations (high MinPerformance admits only the fast tail of
        // the pool), which is exactly the population whose views the
        // persistent filter carries forward.
        const int64_t Arrivals = Rng.uniformInt(2, 4);
        for (int64_t K = 0; K < Arrivals; ++K) {
          Job J;
          J.Id = NextId++;
          J.Request.NodeCount = static_cast<int>(Rng.uniformInt(1, 4));
          J.Request.Volume = Rng.uniformReal(40.0, 160.0);
          J.Request.MinPerformance = Rng.uniformReal(1.0, 1.8);
          J.Request.MaxUnitPrice = 2.5;
          Vo.submit(J);
        }
        Vo.runIteration();
      }
      return Vo;
    };
    const VirtualOrganization Reuse = RunVo(true);
    const VirtualOrganization Rebuild = RunVo(false);
    bool SameHistory = Reuse.totalIncome().value() == Rebuild.totalIncome().value() &&
                       Reuse.completed().size() ==
                           Rebuild.completed().size();
    for (size_t C = 0; SameHistory && C < Reuse.completed().size(); ++C)
      SameHistory = Reuse.completed()[C].JobId ==
                        Rebuild.completed()[C].JobId &&
                    Reuse.completed()[C].Cost ==
                        Rebuild.completed()[C].Cost &&
                    Reuse.completed()[C].StartTime ==
                        Rebuild.completed()[C].StartTime;
    Checker.check("Reuse == rebuild (bitwise, 24-iteration VO)",
                  "identical",
                  SameHistory ? "identical" : "DIVERGED", SameHistory);
    const SearchStats &FS = Reuse.filterStats();
    Checker.check("Persistent filter reuses views across iterations",
                  "> 0 reuses",
                  std::to_string(FS.FilterViewReuses) + " reuses, " +
                      std::to_string(FS.FilterViewRebuilds) +
                      " rebuilds, " +
                      std::to_string(FS.FilterDeltaOps) + " delta ops",
                  FS.FilterViewReuses > 0);
    Checker.check("Rebuild oracle never touches filter state", "0",
                  std::to_string(Rebuild.filterStats().FilterViewReuses +
                                 Rebuild.filterStats().FilterViewRebuilds +
                                 Rebuild.filterStats().FilterDeltaOps),
                  Rebuild.filterStats().FilterViewReuses +
                          Rebuild.filterStats().FilterViewRebuilds +
                          Rebuild.filterStats().FilterDeltaOps ==
                      0);
  }

  Checker.Table.print(stdout);
  std::printf("\n%s (%d failing claim%s); statistics from %lld "
              "iterations, seed %lld\n",
              Checker.Failures == 0 ? "REPRODUCTION INTACT"
                                    : "REPRODUCTION BROKEN",
              Checker.Failures, Checker.Failures == 1 ? "" : "s",
              static_cast<long long>(Iterations),
              static_cast<long long>(Seed));
  return Checker.Failures == 0 ? 0 : 1;
}
