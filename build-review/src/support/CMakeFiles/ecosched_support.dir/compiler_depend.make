# Empty compiler generated dependencies file for ecosched_support.
# This may be replaced when dependencies are built.
