//===-- sim/Window.cpp - Co-allocation window model -----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/Window.h"

#include "sim/SlotList.h"

#include <algorithm>

using namespace ecosched;

Window::Window(double StartTime, std::vector<WindowSlot> InMembers)
    : Start(StartTime), Members(std::move(InMembers)) {
  for (const WindowSlot &M : Members) {
    assert(M.Source.coversFrom(Start, M.Runtime) &&
           "member slot does not cover the window span");
    MaxRuntime = std::max(MaxRuntime, M.Runtime);
    TotalCost += M.Cost;
    UnitPrices += M.Source.UnitPrice;
  }
}

bool Window::usesNode(int NodeId) const {
  for (const WindowSlot &M : Members)
    if (M.Source.NodeId == NodeId)
      return true;
  return false;
}

bool Window::intersects(const Window &Other) const {
  for (const WindowSlot &A : Members) {
    const double AStart = Start;
    const double AEnd = Start + A.Runtime;
    for (const WindowSlot &B : Other.Members) {
      if (A.Source.NodeId != B.Source.NodeId)
        continue;
      const double BStart = Other.Start;
      const double BEnd = Other.Start + B.Runtime;
      const double OverlapStart = std::max(AStart, BStart);
      const double OverlapEnd = std::min(AEnd, BEnd);
      if (OverlapEnd - OverlapStart > TimeEpsilon)
        return true;
    }
  }
  return false;
}

bool Window::subtractFrom(SlotList &List) const {
  bool AllFound = true;
  for (const WindowSlot &M : Members)
    AllFound &=
        List.subtract(M.Source.NodeId, Start, Start + M.Runtime);
  return AllFound;
}
