//===-- fuzz/TraceIOFuzzer.cpp - Trace parse / round-trip fuzzer ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Feeds arbitrary bytes to the TraceIO text parsers and enforces two
// properties:
//
//  1. No abort on any input: the parsers must reject malformed traces
//     via the error string, never by tripping a library contract check
//     (the original parser accepted "nan"/"inf" fields and aborted in
//     the Slot constructor — the first crash this harness found).
//  2. Accepted inputs round-trip exactly: parse -> write -> parse
//     reproduces the identical slot list / batch bit for bit, the
//     guarantee the trace-replay workflow depends on.
//
//===----------------------------------------------------------------------===//

#include "sim/TraceIO.h"
#include "support/Check.h"

#include <cstdint>
#include <string>

using namespace ecosched;

namespace {

void checkSlotRoundTrip(const std::string &Text) {
  std::string Error;
  const std::optional<SlotList> First = parseSlotTrace(Text, &Error);
  if (!First)
    return; // Rejected inputs only need to be rejected gracefully.
  const std::string Written = writeSlotTrace(*First);
  const std::optional<SlotList> Second = parseSlotTrace(Written, &Error);
  ECOSCHED_CHECK(Second.has_value(),
                 "written slot trace failed to re-parse: {}", Error);
  ECOSCHED_CHECK(First->size() == Second->size(),
                 "slot round-trip changed size: {} vs {}", First->size(),
                 Second->size());
  for (size_t I = 0; I < First->size(); ++I) {
    const Slot &A = (*First)[I], &B = (*Second)[I];
    // Bitwise equality: %.17g round-trips doubles exactly.
    ECOSCHED_CHECK(A.NodeId == B.NodeId && A.Performance == B.Performance &&
                       A.UnitPrice == B.UnitPrice && A.Start == B.Start &&
                       A.End == B.End,
                   "slot {} changed across round-trip: [{}, {}) vs [{}, {})",
                   I, A.Start, A.End, B.Start, B.End);
  }
}

void checkBatchRoundTrip(const std::string &Text) {
  std::string Error;
  const std::optional<Batch> First = parseBatchTrace(Text, &Error);
  if (!First)
    return;
  const std::string Written = writeBatchTrace(*First);
  const std::optional<Batch> Second = parseBatchTrace(Written, &Error);
  ECOSCHED_CHECK(Second.has_value(),
                 "written job trace failed to re-parse: {}", Error);
  ECOSCHED_CHECK(First->size() == Second->size(),
                 "batch round-trip changed size: {} vs {}", First->size(),
                 Second->size());
  for (size_t I = 0; I < First->size(); ++I) {
    const Job &A = (*First)[I], &B = (*Second)[I];
    ECOSCHED_CHECK(
        A.Id == B.Id && A.Request.NodeCount == B.Request.NodeCount &&
            A.Request.Volume == B.Request.Volume &&
            A.Request.MinPerformance == B.Request.MinPerformance &&
            A.Request.MaxUnitPrice == B.Request.MaxUnitPrice &&
            A.Request.BudgetFactor == B.Request.BudgetFactor &&
            A.Request.BudgetPolicy == B.Request.BudgetPolicy,
        "job {} changed across round-trip", I);
  }
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  const std::string Text(reinterpret_cast<const char *>(Data), Size);
  checkSlotRoundTrip(Text);
  checkBatchRoundTrip(Text);
  return 0;
}
