//===-- tests/core/AlternativeSearchParallelTest.cpp - Sharded sweep ------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Determinism and exactness checks for the accelerated alternative
/// sweep (docs/PERFORMANCE.md): the sharded speculate/commit path must
/// be bitwise-identical to the textbook serial loop for every pool
/// size, and SlotFilter's incrementally maintained views must stay
/// bitwise-equal to from-scratch rebuilds under arbitrary damage.
///
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/SearchCommon.h"
#include "core/SlotFilter.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

SlotList makeList(uint64_t Seed, int SlotCount = 0) {
  SlotGeneratorConfig Cfg;
  if (SlotCount > 0) {
    Cfg.MinSlotCount = SlotCount;
    Cfg.MaxSlotCount = SlotCount;
  }
  RandomGenerator Rng(Seed);
  return SlotGenerator(Cfg).generate(Rng);
}

Batch makeBatch(uint64_t Seed, int JobCount = 0) {
  JobGeneratorConfig Cfg;
  if (JobCount > 0) {
    Cfg.MinJobs = JobCount;
    Cfg.MaxJobs = JobCount;
  }
  RandomGenerator Rng(Seed ^ 0xa5a5a5a5u);
  return JobGenerator(Cfg).generate(Rng);
}

/// Exact (not approximate) equality: the determinism contract promises
/// bitwise-identical results, so every double is compared with ==.
void expectSameWindows(const AlternativeSet &Expected,
                       const AlternativeSet &Actual,
                       const std::string &Label) {
  ASSERT_EQ(Expected.PerJob.size(), Actual.PerJob.size()) << Label;
  for (size_t J = 0; J < Expected.PerJob.size(); ++J) {
    ASSERT_EQ(Expected.PerJob[J].size(), Actual.PerJob[J].size())
        << Label << ": job " << J;
    for (size_t A = 0; A < Expected.PerJob[J].size(); ++A) {
      const Window &E = Expected.PerJob[J][A];
      const Window &G = Actual.PerJob[J][A];
      SCOPED_TRACE(Label + ": job " + std::to_string(J) + " alt " +
                   std::to_string(A));
      ASSERT_EQ(E.size(), G.size());
      EXPECT_EQ(E.startTime().value(), G.startTime().value());
      EXPECT_EQ(E.totalCost().value(), G.totalCost().value());
      for (size_t M = 0; M < E.size(); ++M) {
        EXPECT_EQ(E[M].Source.NodeId, G[M].Source.NodeId);
        EXPECT_EQ(E[M].Source.Performance, G[M].Source.Performance);
        EXPECT_EQ(E[M].Source.UnitPrice, G[M].Source.UnitPrice);
        EXPECT_EQ(E[M].Source.Start, G[M].Source.Start);
        EXPECT_EQ(E[M].Source.End, G[M].Source.End);
        EXPECT_EQ(E[M].Runtime, G[M].Runtime);
        EXPECT_EQ(E[M].Cost, G[M].Cost);
      }
    }
  }
}

void expectSameLists(const SlotList &Expected, const SlotList &Actual,
                     const std::string &Label) {
  ASSERT_EQ(Expected.size(), Actual.size()) << Label;
  for (size_t I = 0; I < Expected.size(); ++I) {
    SCOPED_TRACE(Label + ": slot " + std::to_string(I));
    EXPECT_EQ(Expected[I].NodeId, Actual[I].NodeId);
    EXPECT_EQ(Expected[I].Performance, Actual[I].Performance);
    EXPECT_EQ(Expected[I].UnitPrice, Actual[I].UnitPrice);
    EXPECT_EQ(Expected[I].Start, Actual[I].Start);
    EXPECT_EQ(Expected[I].End, Actual[I].End);
  }
}

} // namespace

TEST(AlternativeSearchParallelTest, ShardedMatchesSerialBitwise) {
  AlpSearch Alp;
  AmpSearch Amp;
  const SlotSearchAlgorithm *Algos[] = {&Alp, &Amp};
  for (const SlotSearchAlgorithm *Algo : Algos) {
    for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
      const SlotList List = makeList(Seed);
      const Batch Jobs = makeBatch(Seed);

      AlternativeSearch::Config Legacy;
      Legacy.UseFilter = false;
      const AlternativeSet Reference =
          AlternativeSearch(*Algo, Legacy).run(List, Jobs);

      const AlternativeSet Filtered =
          AlternativeSearch(*Algo).run(List, Jobs);
      expectSameWindows(Reference, Filtered,
                        std::string(Algo->name()) + " filtered seed " +
                            std::to_string(Seed));

      for (const size_t Threads : {1u, 2u, 8u}) {
        ThreadPool Pool(Threads);
        AlternativeSearch::Config Cfg;
        Cfg.Pool = &Pool;
        const AlternativeSet Sharded =
            AlternativeSearch(*Algo, Cfg).run(List, Jobs);
        expectSameWindows(Reference, Sharded,
                          std::string(Algo->name()) + " threads " +
                              std::to_string(Threads) + " seed " +
                              std::to_string(Seed));
      }
    }
  }
}

TEST(AlternativeSearchParallelTest, StatsIndependentOfPoolSize) {
  AlpSearch Alp;
  const SlotList List = makeList(11);
  const Batch Jobs = makeBatch(11, 6);

  SearchStats Baseline;
  {
    ThreadPool Pool(1);
    AlternativeSearch::Config Cfg;
    Cfg.Pool = &Pool;
    AlternativeSearch(Alp, Cfg).run(List, Jobs, &Baseline);
  }
  for (const size_t Threads : {2u, 8u}) {
    ThreadPool Pool(Threads);
    AlternativeSearch::Config Cfg;
    Cfg.Pool = &Pool;
    SearchStats Stats;
    AlternativeSearch(Alp, Cfg).run(List, Jobs, &Stats);
    EXPECT_EQ(Baseline.SlotsExamined, Stats.SlotsExamined)
        << Threads << " threads";
    EXPECT_EQ(Baseline.GroupPeak, Stats.GroupPeak) << Threads;
    EXPECT_EQ(Baseline.GroupOperations, Stats.GroupOperations) << Threads;
    EXPECT_EQ(Baseline.SpeculationRecomputes, Stats.SpeculationRecomputes)
        << Threads;
  }
}

TEST(AlternativeSearchParallelTest, CapsRespectedWithPool) {
  AlpSearch Alp;
  const SlotList List = makeList(3);
  const Batch Jobs = makeBatch(3, 5);
  for (const size_t MaxPasses : {0u, 2u}) {
    for (const size_t MaxPerJob : {0u, 1u, 3u}) {
      AlternativeSearch::Config Serial;
      Serial.MaxPasses = MaxPasses;
      Serial.MaxAlternativesPerJob = MaxPerJob;
      Serial.UseFilter = false;
      const AlternativeSet Reference =
          AlternativeSearch(Alp, Serial).run(List, Jobs);

      ThreadPool Pool(8);
      AlternativeSearch::Config Cfg;
      Cfg.MaxPasses = MaxPasses;
      Cfg.MaxAlternativesPerJob = MaxPerJob;
      Cfg.Pool = &Pool;
      const AlternativeSet Sharded =
          AlternativeSearch(Alp, Cfg).run(List, Jobs);
      expectSameWindows(Reference, Sharded,
                        "passes " + std::to_string(MaxPasses) + " cap " +
                            std::to_string(MaxPerJob));
    }
  }
}

TEST(AlternativeSearchParallelTest, BackfillWithPoolFallsBackSerially) {
  // Backfill does not support speculative reuse, so a configured pool
  // must be ignored; results still match the unfiltered loop, which
  // also exercises its performance/price-only admits() filter.
  BackfillSearch Backfill;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    const SlotList List = makeList(Seed);
    const Batch Jobs = makeBatch(Seed);

    AlternativeSearch::Config Legacy;
    Legacy.UseFilter = false;
    const AlternativeSet Reference =
        AlternativeSearch(Backfill, Legacy).run(List, Jobs);

    ThreadPool Pool(8);
    AlternativeSearch::Config Cfg;
    Cfg.Pool = &Pool;
    const AlternativeSet Sharded =
        AlternativeSearch(Backfill, Cfg).run(List, Jobs);
    expectSameWindows(Reference, Sharded,
                      "backfill seed " + std::to_string(Seed));
  }
}

TEST(SlotFilterTest, ViewsEqualFilteredCopiesOnConstruction) {
  AlpSearch Alp;
  const SlotList List = makeList(7);
  const Batch Jobs = makeBatch(7, 4);
  SlotFilter Filter(List, Jobs, Alp);
  ASSERT_EQ(Filter.jobCount(), Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J)
    expectSameLists(
        SlotFilter::filteredCopy(List, Jobs[J].Request, Alp),
        Filter.view(J), "job " + std::to_string(J));
}

TEST(SlotFilterTest, IncrementalDamageMatchesRebuild) {
  // Property: after any sequence of committed windows, each
  // incrementally maintained view is bitwise-equal to filtering the
  // equally damaged master list from scratch.
  AlpSearch Alp;
  AmpSearch Amp;
  const SlotSearchAlgorithm *Algos[] = {&Alp, &Amp};
  for (const SlotSearchAlgorithm *Algo : Algos) {
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      SlotList Master = makeList(Seed);
      const Batch Jobs = makeBatch(Seed, 5);
      SlotFilter Filter(Master, Jobs, *Algo);

      // Damage the master with windows found for jobs in round-robin
      // order, mirroring the sweep's commit sequence.
      for (size_t Step = 0; Step < 12; ++Step) {
        const size_t J = Step % Jobs.size();
        std::optional<Window> W =
            Algo->findWindow(Master, Jobs[J].Request);
        if (!W)
          continue;
        ASSERT_TRUE(W->subtractFrom(Master));
        Filter.applyDamage(*W);
        for (size_t K = 0; K < Jobs.size(); ++K)
          expectSameLists(
              SlotFilter::filteredCopy(Master, Jobs[K].Request, *Algo),
              Filter.view(K),
              std::string(Algo->name()) + " seed " +
                  std::to_string(Seed) + " step " + std::to_string(Step) +
                  " view " + std::to_string(K));
      }
    }
  }
}

TEST(SlotFilterTest, ViewsApplyTheDeadlineScanHorizon) {
  // With a finite deadline, a view must hold exactly the admissible
  // slots a deadline-bounded scan can reach — strictly earlier starts,
  // per scanEndBefore() — and searching the view must still equal
  // searching the master.
  AlpSearch Alp;
  const SlotList List = makeList(11);
  Batch Jobs = makeBatch(11, 3);
  ASSERT_FALSE(List.empty());
  const double Horizon = List[List.size() / 2].Start;
  for (Job &J : Jobs)
    J.Request.Deadline = Horizon;
  SlotFilter Filter(List, Jobs, Alp);

  for (size_t J = 0; J < Jobs.size(); ++J) {
    // Manual oracle: the admits()-passing subsequence of the reachable
    // prefix, built with a plain loop instead of scanEndBefore().
    std::vector<Slot> Expected;
    for (const Slot &S : List) {
      if (approxGe(S.Start, Horizon))
        break;
      if (Alp.admits(S, Jobs[J].Request))
        Expected.push_back(S);
    }
    expectSameLists(SlotList(std::move(Expected)), Filter.view(J),
                    "deadline view " + std::to_string(J));

    const auto FromView =
        Alp.findWindowFiltered(Filter.view(J), Jobs[J].Request);
    const auto FromMaster = Alp.findWindow(List, Jobs[J].Request);
    ASSERT_EQ(FromView.has_value(), FromMaster.has_value()) << J;
    if (FromView) {
      EXPECT_EQ(FromView->startTime().value(), FromMaster->startTime().value()) << J;
      EXPECT_EQ(FromView->totalCost().value(), FromMaster->totalCost().value()) << J;
    }
  }
}

TEST(SlotFilterTest, IncrementalDamageMatchesRebuildWithDeadlines) {
  // The damage property again, but with finite deadlines: remainder
  // pieces at or past the horizon must not re-enter a view (the Keep
  // predicate repeats the horizon cutoff), or incremental views would
  // drift from from-scratch rebuilds.
  AlpSearch Alp;
  AmpSearch Amp;
  const SlotSearchAlgorithm *Algos[] = {&Alp, &Amp};
  for (const SlotSearchAlgorithm *Algo : Algos) {
    for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
      SlotList Master = makeList(Seed);
      Batch Jobs = makeBatch(Seed, 5);
      ASSERT_FALSE(Master.empty());
      for (size_t J = 0; J < Jobs.size(); ++J) {
        // Staggered horizons so different views cut at different slots.
        const size_t Cut = (J + 1) * Master.size() / (Jobs.size() + 1);
        Jobs[J].Request.Deadline = Master[Cut].Start + 1.0;
      }
      SlotFilter Filter(Master, Jobs, *Algo);

      for (size_t Step = 0; Step < 12; ++Step) {
        const size_t J = Step % Jobs.size();
        std::optional<Window> W =
            Algo->findWindow(Master, Jobs[J].Request);
        if (!W)
          continue;
        ASSERT_TRUE(W->subtractFrom(Master));
        Filter.applyDamage(*W);
        for (size_t K = 0; K < Jobs.size(); ++K)
          expectSameLists(
              SlotFilter::filteredCopy(Master, Jobs[K].Request, *Algo),
              Filter.view(K),
              std::string(Algo->name()) + " deadline seed " +
                  std::to_string(Seed) + " step " + std::to_string(Step) +
                  " view " + std::to_string(K));
      }
    }
  }
}

TEST(SlotFilterTest, DamageKeepHeadPieceSkipsHorizonRecheckExactly) {
  // The Keep predicate re-tests the scan-horizon cutoff only for tail
  // pieces: a head piece keeps its container's exact (already vetted)
  // start. Backfill is the sharpest probe — its admitsRemainder() is
  // unconditionally true, so the horizon cutoff is the *only* span
  // check Keep applies, and the admitted set after damage must still
  // equal the from-scratch rebuild of the damaged master.
  BackfillSearch Backfill;
  const SlotList Master{{Slot(0, 1.0, 1.0, 0.0, 100.0)}};
  Job J;
  J.Id = 1;
  J.Request.NodeCount = 1;
  J.Request.Volume = 60.0;
  J.Request.MaxUnitPrice = 2.0;
  J.Request.Deadline = 50.0;
  const Batch Jobs = {J};
  SlotFilter Filter(Master, Jobs, Backfill);
  ASSERT_EQ(Filter.view(0).size(), 1u);

  // Commit [10, 70): the head [0, 10) starts before the deadline and
  // must survive without a horizon re-test; the tail [70, 100) starts
  // past the deadline and must be dropped by the retained tail check.
  const Slot *Chosen[] = {&Master[0]};
  const Window W = detail::buildWindow(TimePoint(10.0), Chosen, J.Request);
  SlotList Damaged = Master;
  ASSERT_TRUE(W.subtractFrom(Damaged));
  Filter.applyDamage(W);

  expectSameLists(SlotFilter::filteredCopy(Damaged, J.Request, Backfill),
                  Filter.view(0), "backfill head/tail horizon");
  ASSERT_EQ(Filter.view(0).size(), 1u);
  EXPECT_EQ(Filter.view(0)[0].Start, 0.0);
  EXPECT_EQ(Filter.view(0)[0].End, 10.0);
}

TEST(SlotFilterTest, WindowIntactDetectsDamage) {
  AlpSearch Alp;
  const SlotList List = makeList(2);
  const Batch Jobs = makeBatch(2, 3);
  SlotFilter Filter(List, Jobs, Alp);

  std::optional<Window> W =
      Alp.findWindowFiltered(Filter.view(0), Jobs[0].Request);
  ASSERT_TRUE(W.has_value());
  // Every member came out of view 0, so the window is intact there.
  EXPECT_TRUE(Filter.windowIntact(0, *W));
  // Committing the window removes (or shrinks) every member slot, so
  // the verbatim copies are gone from the finding job's view.
  Filter.applyDamage(*W);
  EXPECT_FALSE(Filter.windowIntact(0, *W));
}
