//===-- tests/core/AmpSearchTest.cpp - AMP unit tests ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"

#include "core/AlpSearch.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

ResourceRequest makeRequest(int Nodes, double Volume, double MinPerf,
                            double MaxPrice) {
  ResourceRequest Req;
  Req.NodeCount = Nodes;
  Req.Volume = Volume;
  Req.MinPerformance = MinPerf;
  Req.MaxUnitPrice = MaxPrice;
  return Req;
}

} // namespace

TEST(AmpSearchTest, AcceptsIndividuallyExpensiveSlotWithinBudget) {
  // Per-slot cap is 3; the 4-cost slot violates it but the pair costs
  // (4+1)*50 = 250 <= budget 3*2*50 = 300. ALP fails, AMP succeeds.
  SlotList List({Slot(0, 1.0, 4.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0)});
  const ResourceRequest Req = makeRequest(2, 50.0, 1.0, 3.0);

  AlpSearch Alp;
  EXPECT_FALSE(Alp.findWindow(List, Req).has_value());

  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 0.0);
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 250.0);
}

TEST(AmpSearchTest, RejectsWindowOverBudget) {
  SlotList List({Slot(0, 1.0, 4.0, 0.0, 100.0),
                 Slot(1, 1.0, 3.0, 0.0, 100.0)});
  // Budget: 2*2*50 = 200 < (4+3)*50 = 350.
  const ResourceRequest Req = makeRequest(2, 50.0, 1.0, 2.0);
  AmpSearch Amp;
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
}

TEST(AmpSearchTest, ContinuesToLaterCheaperWindow) {
  // The early pair busts the budget; a later pair fits.
  SlotList List({Slot(0, 1.0, 5.0, 0.0, 100.0),
                 Slot(1, 1.0, 5.0, 0.0, 100.0),
                 Slot(2, 1.0, 1.0, 200.0, 300.0),
                 Slot(3, 1.0, 1.0, 200.0, 300.0)});
  const ResourceRequest Req = makeRequest(2, 50.0, 1.0, 2.0);
  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->startTime().value(), 200.0);
  EXPECT_TRUE(W->usesNode(2));
  EXPECT_TRUE(W->usesNode(3));
}

TEST(AmpSearchTest, PicksCheapestSubsetOfAliveSlots) {
  // Four alive slots; budget only allows the two cheapest.
  SlotList List({Slot(0, 1.0, 9.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0),
                 Slot(2, 1.0, 8.0, 0.0, 100.0),
                 Slot(3, 1.0, 2.0, 0.0, 100.0)});
  const ResourceRequest Req = makeRequest(2, 50.0, 1.0, 2.0);
  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_TRUE(W->usesNode(1));
  EXPECT_TRUE(W->usesNode(3));
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 150.0);
}

TEST(AmpSearchTest, ExactBudgetAccepted) {
  SlotList List({Slot(0, 1.0, 2.0, 0.0, 100.0),
                 Slot(1, 1.0, 2.0, 0.0, 100.0)});
  // Budget = 2*2*50 = 200 == cost (2+2)*50.
  const ResourceRequest Req = makeRequest(2, 50.0, 1.0, 2.0);
  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_DOUBLE_EQ(W->totalCost().value(), 200.0);
}

TEST(AmpSearchTest, PerformanceConditionStillEnforced) {
  SlotList List({Slot(0, 1.0, 0.1, 0.0, 1000.0),  // Cheap but too slow.
                 Slot(1, 2.0, 1.0, 100.0, 1000.0)});
  const ResourceRequest Req = makeRequest(1, 100.0, 2.0, 2.0);
  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ((*W)[0].Source.NodeId, 1);
}

TEST(AmpSearchTest, FastNodeLowersEffectiveCost) {
  // The fast node's unit price is over the cap, but its shorter runtime
  // keeps the money cost inside the budget (the price/quality argument
  // of Section 6).
  SlotList List({Slot(0, 3.0, 4.0, 0.0, 1000.0)});
  // Cap 2 -> budget 2*1*100 = 200; cost = 4 * 100/3 = 133.3 <= 200.
  const ResourceRequest Req = makeRequest(1, 100.0, 1.0, 2.0);
  AmpSearch Amp;
  const auto W = Amp.findWindow(List, Req);
  ASSERT_TRUE(W.has_value());
  EXPECT_NEAR(W->totalCost().value(), 400.0 / 3.0, 1e-9);
  EXPECT_NEAR(W->timeSpan().value(), 100.0 / 3.0, 1e-9);
}

TEST(AmpSearchTest, BudgetFactorRhoShrinksBudget) {
  SlotList List({Slot(0, 1.0, 2.0, 0.0, 100.0),
                 Slot(1, 1.0, 2.0, 0.0, 100.0)});
  ResourceRequest Req = makeRequest(2, 50.0, 1.0, 2.0);
  AmpSearch Amp;
  ASSERT_TRUE(Amp.findWindow(List, Req).has_value());
  Req.BudgetFactor = 0.8; // Budget 160 < cost 200.
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
}

TEST(AmpSearchTest, VolumeBudgetPolicyIsLooser) {
  SlotList List({Slot(0, 2.0, 6.0, 0.0, 100.0)});
  // Span-based budget: 2*1*(100/2) = 100 < cost 6*50 = 300.
  ResourceRequest Req = makeRequest(1, 100.0, 2.0, 2.0);
  AmpSearch Amp;
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
  // Volume-based budget: 2*1*100 = 200 < 300, still fails.
  Req.BudgetPolicy = BudgetPolicyKind::VolumeBased;
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
  // Raise the cap: span 150 < 300 fails, volume 300 == 300 passes.
  Req.MaxUnitPrice = 3.0;
  Req.BudgetPolicy = BudgetPolicyKind::SpanBased;
  EXPECT_FALSE(Amp.findWindow(List, Req).has_value());
  Req.BudgetPolicy = BudgetPolicyKind::VolumeBased;
  EXPECT_TRUE(Amp.findWindow(List, Req).has_value());
}

TEST(AmpSearchTest, StatsReportWork) {
  SlotList List({Slot(0, 1.0, 1.0, 0.0, 100.0),
                 Slot(1, 1.0, 1.0, 0.0, 100.0),
                 Slot(2, 1.0, 1.0, 0.0, 100.0)});
  AmpSearch Amp;
  SearchStats Stats;
  ASSERT_TRUE(Amp.findWindow(List, makeRequest(2, 50.0, 1.0, 2.0), &Stats)
                  .has_value());
  EXPECT_EQ(Stats.SlotsExamined, 2u);
  EXPECT_GE(Stats.GroupPeak, 2u);
}
