#!/usr/bin/env bash
# bench_baseline.sh - build the release micro-benchmarks and capture a
# JSON baseline for regression tracking.
#
# Usage: scripts/bench_baseline.sh [--out FILE] [--filter REGEX]
#                                  [--repetitions N] [--jobs N]
#
#   --out FILE        Output JSON path
#                     (default: bench/baselines/BENCH_4.json).
#   --filter REGEX    google-benchmark name filter (default: all).
#   --repetitions N   Repetitions per benchmark; with N > 1 only the
#                     mean/median/stddev aggregates are reported
#                     (default: 1).
#   --jobs N          Build parallelism (default: nproc).
#
# The captured file is the input to scripts/bench_compare.py; the
# committed baselines under bench/baselines/ are refreshed with this
# script whenever a PR intentionally shifts performance
# (docs/PERFORMANCE.md describes the workflow).

set -euo pipefail

cd "$(dirname "$0")/.."

OUT="bench/baselines/BENCH_4.json"
FILTER="."
REPS=1
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --out)
      [[ $# -ge 2 ]] || { echo "error: --out needs an argument" >&2; exit 2; }
      OUT="$2"; shift 2 ;;
    --filter)
      [[ $# -ge 2 ]] || { echo "error: --filter needs an argument" >&2; exit 2; }
      FILTER="$2"; shift 2 ;;
    --repetitions)
      [[ $# -ge 2 ]] || { echo "error: --repetitions needs an argument" >&2; exit 2; }
      REPS="$2"; shift 2 ;;
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,19p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

echo "== configure + build (release) =="
cmake --preset release
cmake --build build/release -j "$JOBS" --target micro_benchmarks

EXTRA_ARGS=()
if [[ "$REPS" -gt 1 ]]; then
  EXTRA_ARGS+=("--benchmark_repetitions=$REPS"
               "--benchmark_report_aggregates_only=true")
fi

mkdir -p "$(dirname "$OUT")"
echo "== run micro_benchmarks (filter: $FILTER) =="
build/release/bench/micro_benchmarks \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json \
  "${EXTRA_ARGS[@]}"

echo "bench_baseline.sh: baseline written to $OUT"
