//===-- core/AlternativeSearch.cpp - Multi-variant batch search -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"

#include "support/Check.h"

using namespace ecosched;

AlternativeSet AlternativeSearch::run(SlotList List, const Batch &Jobs,
                                      SearchStats *Stats) const {
  AlternativeSet Result;
  Result.PerJob.resize(Jobs.size());

  for (size_t Pass = 0; Cfg.MaxPasses == 0 || Pass < Cfg.MaxPasses;
       ++Pass) {
    bool PlacedAny = false;
    for (size_t I = 0, E = Jobs.size(); I != E; ++I) {
      if (Cfg.MaxAlternativesPerJob != 0 &&
          Result.PerJob[I].size() >= Cfg.MaxAlternativesPerJob)
        continue;
      std::optional<Window> W =
          Algo.findWindow(List, Jobs[I].Request, Stats);
      if (!W)
        continue;
      // Exclude the window's spans so later alternatives (for this or
      // any other job) cannot reuse the processor time.
      const bool Subtracted = W->subtractFrom(List);
      ECOSCHED_CHECK(Subtracted,
                     "search returned a window outside the list for job {} "
                     "starting at {}",
                     Jobs[I].Id, W->startTime());
      ECOSCHED_DVALIDATE(List.validate());
      Result.PerJob[I].push_back(std::move(*W));
      PlacedAny = true;
    }
    if (!PlacedAny)
      break;
  }
  return Result;
}
