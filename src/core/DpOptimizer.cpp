//===-- core/DpOptimizer.cpp - Backward-run dynamic programming -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/DpOptimizer.h"

#include "support/Check.h"

#include <cmath>
#include <limits>
#include <vector>

using namespace ecosched;

namespace {

/// Sentinel for unreachable DP states.
constexpr double Unreachable = std::numeric_limits<double>::infinity();

/// Structural check on one DP row: f_i(Z) is monotone in the remaining
/// budget Z — spending headroom can never worsen the optimum. Violations
/// mean the recurrence read a stale or corrupted cell. Invoked per row
/// under ECOSCHED_DVALIDATE; comparisons are exact because both cells
/// are produced by the same recurrence over identical candidate sets
/// plus a monotone tail, and infinities must compare correctly.
void validateRowMonotone(const std::vector<double> &Row, bool Minimize,
                         size_t JobIndex) {
  for (size_t Z = 1, E = Row.size(); Z < E; ++Z) {
    if (Minimize)
      ECOSCHED_CHECK(Row[Z] <= Row[Z - 1],
                     "DP row {} not non-increasing at cell {}: f({}) = {} > "
                     "f({}) = {}",
                     JobIndex, Z, Z, Row[Z], Z - 1, Row[Z - 1]);
    else
      ECOSCHED_CHECK(Row[Z] >= Row[Z - 1],
                     "DP row {} not non-decreasing at cell {}: f({}) = {} < "
                     "f({}) = {}",
                     JobIndex, Z, Z, Row[Z], Z - 1, Row[Z - 1]);
  }
}

enum class RoundingKind { Up, Down };

/// Converts a constraint weight to grid cells. Rounding up never
/// understates consumption (safe but can reject boundary optima);
/// rounding down never overstates it (candidate selections must be
/// re-validated in exact arithmetic).
size_t weightToCells(double Weight, double CellSize, RoundingKind Round) {
  if (Weight <= 0.0)
    return 0;
  const double Scaled = Weight / CellSize;
  if (Round == RoundingKind::Up)
    return static_cast<size_t>(std::ceil(Scaled - 1e-12));
  return static_cast<size_t>(std::floor(Scaled + 1e-12));
}

/// One backward run of equation (1) on the discretized constraint axis.
/// Returns the reconstructed selection, or an empty vector when no
/// selection fits the grid.
std::vector<size_t> solveRounded(const CombinationProblem &P, size_t Bins,
                                 RoundingKind Round) {
  const size_t JobCount = P.PerJob.size();
  const double CellSize =
      P.Limit > 0.0 ? P.Limit / static_cast<double>(Bins) : 1.0;
  const size_t Cells = P.Limit > 0.0 ? Bins : 0;
  const bool Minimize = P.Direction == DirectionKind::Minimize;

  // f[i][z]: best objective for jobs i..n-1 with z grid cells of the
  // constrained resource remaining. Backward run: i = n-1 .. 0.
  const size_t Width = Cells + 1;
  std::vector<double> Next(Width, 0.0), Current(Width);
  std::vector<std::vector<uint32_t>> ChoiceTable(
      JobCount, std::vector<uint32_t>(Width, 0));

  std::vector<size_t> CellCosts;
  std::vector<double> Objectives;
  for (size_t I = JobCount; I-- > 0;) {
    const auto &Alts = P.PerJob[I];
    // Hoist the per-alternative conversions out of the Z loop.
    CellCosts.resize(Alts.size());
    Objectives.resize(Alts.size());
    for (size_t A = 0, E = Alts.size(); A != E; ++A) {
      CellCosts[A] =
          weightToCells(Alts[A].get(P.Constraint), CellSize, Round);
      Objectives[A] = Alts[A].get(P.Objective);
    }
    for (size_t Z = 0; Z < Width; ++Z) {
      double Best = 0.0;
      uint32_t BestAlt = 0;
      bool Found = false;
      for (size_t A = 0, E = Alts.size(); A != E; ++A) {
        const size_t Cells = CellCosts[A];
        if (Cells > Z)
          continue;
        const double Tail = Next[Z - Cells];
        if (Tail == Unreachable || Tail == -Unreachable)
          continue;
        const double Value = Objectives[A] + Tail;
        if (!Found || (Minimize ? Value < Best : Value > Best)) {
          Best = Value;
          BestAlt = static_cast<uint32_t>(A);
          Found = true;
        }
      }
      Current[Z] = Found ? Best : (Minimize ? Unreachable : -Unreachable);
      ChoiceTable[I][Z] = BestAlt;
    }
    ECOSCHED_DVALIDATE(validateRowMonotone(Current, Minimize, I));
    std::swap(Current, Next);
  }

  if (Next[Cells] == Unreachable || Next[Cells] == -Unreachable)
    return {};

  // Forward reconstruction of the chosen alternatives.
  std::vector<size_t> Selected(JobCount);
  size_t Z = Cells;
  for (size_t I = 0; I < JobCount; ++I) {
    const size_t Alt = ChoiceTable[I][Z];
    Selected[I] = Alt;
    Z -= weightToCells(P.PerJob[I][Alt].get(P.Constraint), CellSize,
                       Round);
  }
  return Selected;
}

} // namespace

CombinationChoice DpOptimizer::solve(const CombinationProblem &P) const {
  ECOSCHED_CHECK(Bins > 0, "DP needs at least one constraint cell, got {}",
                 Bins);
  CombinationChoice Infeasible;
  if (P.PerJob.empty())
    return Infeasible;
  for (const auto &Alts : P.PerJob)
    if (Alts.empty())
      return Infeasible;
  if (P.Limit < 0.0)
    return Infeasible;

  // Pass 1 (round up): any reconstructed selection is feasible in exact
  // arithmetic, but selections sitting exactly at the limit may be
  // rejected by the grid.
  CombinationChoice Best;
  const std::vector<size_t> Up = solveRounded(P, Bins, RoundingKind::Up);
  if (!Up.empty()) {
    Best = evaluateSelection(P, Up);
    ECOSCHED_CHECK(Best.Feasible,
                   "ceil-rounded DP produced a constraint-violating "
                   "selection: total {} exceeds limit {}",
                   Best.ConstraintTotal, P.Limit);
  }

  // Pass 2 (round down): the floor grid admits every exactly-feasible
  // selection, so its optimum bounds the true optimum; if the
  // reconstructed selection validates exactly, it *is* the true
  // optimum and supersedes pass 1.
  const std::vector<size_t> Down =
      solveRounded(P, Bins, RoundingKind::Down);
  if (!Down.empty()) {
    const CombinationChoice Candidate = evaluateSelection(P, Down);
    if (Candidate.Feasible) {
      const bool Minimize = P.Direction == DirectionKind::Minimize;
      if (!Best.Feasible ||
          (Minimize ? Candidate.ObjectiveTotal < Best.ObjectiveTotal
                    : Candidate.ObjectiveTotal > Best.ObjectiveTotal))
        Best = Candidate;
    }
  }
  return Best;
}
