//===-- tools/archlint/ArchLint.cpp - Project architecture linter ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "ArchLint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <iostream>
#include <map>
#include <sstream>

using namespace ecosched::archlint;

namespace {

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.compare(0, Prefix.size(), Prefix) == 0;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) != 0 || C == '_';
}

std::string trimLeft(const std::string &S) {
  size_t I = 0;
  while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
    ++I;
  return S.substr(I);
}

/// True for lines that are (almost certainly) pure comment: the rules
/// below must not fire on prose that merely mentions a banned token.
/// Block-comment interiors follow the project style of a leading '*' or
/// '///' so a prefix test is sufficient in practice.
bool isCommentLine(const std::string &Line) {
  const std::string T = trimLeft(Line);
  return startsWith(T, "//") || startsWith(T, "*") || startsWith(T, "/*");
}

/// Finds \p Token in \p Line at a position not preceded by an
/// identifier character, so `time(` does not match `runtime(` and
/// `assert(` does not match `static_assert(`. Returns npos if absent.
size_t findToken(const std::string &Line, const std::string &Token) {
  size_t Pos = 0;
  while ((Pos = Line.find(Token, Pos)) != std::string::npos) {
    if (Pos == 0 || !isIdentChar(Line[Pos - 1]))
      return Pos;
    Pos += Token.size();
  }
  return std::string::npos;
}

bool isCommentLine(const std::string &Line);

/// True when line \p Index (0-based) carries an `archlint-allow(<rule>)`
/// marker for \p Rule, or the contiguous comment block directly above it
/// does — suppressions are documented rationales, which usually take
/// more than one comment line.
bool isSuppressed(const std::vector<std::string> &Lines, size_t Index,
                  const std::string &Rule) {
  const std::string Marker = "archlint-allow(" + Rule + ")";
  if (Lines[Index].find(Marker) != std::string::npos)
    return true;
  for (size_t I = Index; I > 0 && isCommentLine(Lines[I - 1]); --I)
    if (Lines[I - 1].find(Marker) != std::string::npos)
      return true;
  return false;
}

/// Splits "src/core/AlpSearch.h" into {"src", "core", "AlpSearch.h"}.
std::vector<std::string> pathComponents(const std::string &Path) {
  std::vector<std::string> Parts;
  std::string Current;
  for (const char C : Path) {
    if (C == '/') {
      if (!Current.empty())
        Parts.push_back(Current);
      Current.clear();
    } else {
      Current += C;
    }
  }
  if (!Current.empty())
    Parts.push_back(Current);
  return Parts;
}

/// The strict layer DAG: each src/ layer may include itself and the
/// layers listed here (its transitive dependencies). Absent keys (tests,
/// bench, examples) may include anything.
const std::map<std::string, std::vector<std::string>> &layerAllows() {
  static const std::map<std::string, std::vector<std::string>> Allows = {
      {"support", {"support"}},
      {"sim", {"sim", "support"}},
      {"core", {"core", "sim", "support"}},
      {"engine", {"engine", "core", "sim", "support"}},
  };
  return Allows;
}

/// Extracts the target of an `#include "..."` directive, or "" when the
/// line is not a quoted include.
std::string quotedIncludeTarget(const std::string &Line) {
  const std::string T = trimLeft(Line);
  if (!startsWith(T, "#"))
    return "";
  const std::string AfterHash = trimLeft(T.substr(1));
  if (!startsWith(AfterHash, "include"))
    return "";
  const size_t Open = AfterHash.find('"');
  if (Open == std::string::npos)
    return "";
  const size_t Close = AfterHash.find('"', Open + 1);
  if (Close == std::string::npos)
    return "";
  return AfterHash.substr(Open + 1, Close - Open - 1);
}

/// Canonical include guard for a header: ECOSCHED_ + the uppercased
/// path components after the top-level directory (the src/ prefix
/// itself is dropped; bench/ and examples/ keep their directory name),
/// non-alphanumerics removed, + _H. src/core/AlpSearch.h ->
/// ECOSCHED_CORE_ALPSEARCH_H; bench/ExperimentReport.h ->
/// ECOSCHED_BENCH_EXPERIMENTREPORT_H.
std::string canonicalGuard(const std::string &Path) {
  std::vector<std::string> Parts = pathComponents(Path);
  size_t First = 0;
  if (!Parts.empty() && Parts[0] == "src")
    First = 1;
  std::string Guard = "ECOSCHED";
  for (size_t I = First; I < Parts.size(); ++I) {
    std::string Component = Parts[I];
    if (I + 1 == Parts.size() && endsWith(Component, ".h"))
      Component = Component.substr(0, Component.size() - 2);
    Guard += '_';
    for (const char C : Component)
      if (std::isalnum(static_cast<unsigned char>(C)))
        Guard += static_cast<char>(
            std::toupper(static_cast<unsigned char>(C)));
  }
  return Guard + "_H";
}

struct BannedToken {
  const char *Token;
  const char *Rule;
  const char *Message;
};

/// Banned tokens in all of src/. Boundary-matched (see findToken).
constexpr std::array<BannedToken, 5> SrcWideBans = {{
    {"assert(", "raw-assert",
     "raw assert() in library code; use ECOSCHED_CHECK (src/support/Check.h)"},
    {"std::cout", "banned-io",
     "std::cout in library code; report through return values or stderr"},
    {"rand(", "nondeterminism",
     "rand() in library code; draw from support/Random.h RandomGenerator"},
    {"srand(", "nondeterminism",
     "srand() in library code; seed a support/Random.h RandomGenerator"},
    {"time(", "nondeterminism",
     "time() in library code; simulated time comes from engine/SimClock"},
}};

/// True for the layers under the detlint determinism contract: the code
/// whose behavior feeds scheduling results. Everything here must be
/// bitwise-reproducible for any thread count, so iteration-order,
/// pointer-order, and wall-clock hazards are banned at the token level
/// (docs/CONCURRENCY.md).
bool isDetLayer(const std::string &Layer) {
  return Layer == "core" || Layer == "engine" || Layer == "support";
}

/// The detlint token bans (result-affecting layers only).
constexpr std::array<BannedToken, 9> DetBans = {{
    {"std::unordered_map", "det-unordered-container",
     "std::unordered_map iterates in hash order; use std::map or a "
     "sorted vector so results never depend on hashing"},
    {"std::unordered_set", "det-unordered-container",
     "std::unordered_set iterates in hash order; use std::set or a "
     "sorted vector so results never depend on hashing"},
    {"<unordered_map>", "det-unordered-container",
     "<unordered_map> include in a determinism-contract layer; use an "
     "ordered container"},
    {"<unordered_set>", "det-unordered-container",
     "<unordered_set> include in a determinism-contract layer; use an "
     "ordered container"},
    {"std::this_thread::get_id", "det-thread-id",
     "thread identity in result-affecting code makes behavior depend on "
     "scheduling; key work by index, not by thread"},
    {"<chrono>", "det-wall-clock",
     "<chrono> include in a determinism-contract layer; simulated time "
     "comes from engine/SimClock, never the wall clock"},
    {"std::chrono", "det-wall-clock",
     "wall-clock time in result-affecting code; simulated time comes "
     "from engine/SimClock"},
    {"std::random_device", "det-random-device",
     "std::random_device is non-reproducible entropy; seed a "
     "support/Random.h RandomGenerator instead"},
    {"volatile", "det-volatile",
     "volatile is not a synchronization primitive and hides "
     "scheduling-dependent behavior; use std::atomic or a mutex"},
}};

/// Ordered associative containers whose *key* must not be a pointer:
/// iterating a pointer-keyed container walks allocation addresses, which
/// vary run to run. Value-position pointers are fine.
constexpr std::array<const char *, 4> PointerKeyContainers = {
    "std::map<", "std::set<", "std::multimap<", "std::multiset<"};

/// Comparator/hash templates whose argument must not be a pointer type.
constexpr std::array<const char *, 2> PointerKeyFunctors = {"std::less<",
                                                            "std::hash<"};

/// True when the first template argument starting right after
/// \p AnglePos (the position of '<') names a pointer type, e.g.
/// `std::map<const Window *, int>`. Line-local by design, like every
/// other token rule here.
bool firstTemplateArgIsPointer(const std::string &Line, size_t AnglePos) {
  int Depth = 1;
  for (size_t I = AnglePos + 1; I < Line.size(); ++I) {
    const char C = Line[I];
    if (C == '<') {
      ++Depth;
    } else if (C == '>') {
      if (--Depth == 0)
        return false;
    } else if (C == ',' && Depth == 1) {
      return false;
    } else if (C == '*' && Depth == 1) {
      return true;
    }
  }
  return false;
}

/// Runs the det-pointer-key scan on one line: any ordered associative
/// container or ordering/hash functor instantiated with a pointer-typed
/// first template argument.
bool hasPointerKey(const std::string &Line) {
  for (const char *Token : PointerKeyContainers) {
    const std::string T(Token);
    const size_t Pos = findToken(Line, T);
    if (Pos != std::string::npos &&
        firstTemplateArgIsPointer(Line, Pos + T.size() - 1))
      return true;
  }
  for (const char *Token : PointerKeyFunctors) {
    const std::string T(Token);
    const size_t Pos = findToken(Line, T);
    if (Pos != std::string::npos &&
        firstTemplateArgIsPointer(Line, Pos + T.size() - 1))
      return true;
  }
  return false;
}

/// The two reviewed serialization boundaries: the only src/ files that
/// may open files directly. Everything else — snapshot writers
/// included — must route bytes through sim/TraceIO or
/// support/StateCodec so corrupt-input handling and the text formats
/// stay in one place (docs/PERSISTENCE.md). Other writers carry an
/// explicit archlint-allow(file-io) rationale at the call site.
bool isFileIoBoundary(const std::string &Path) {
  return Path == "src/sim/TraceIO.cpp" ||
         Path == "src/support/StateCodec.cpp";
}

/// Tokens of the file-io rule. fopen covers the repo's C-stream idiom;
/// the fstream tokens close the C++-stream escape hatch.
constexpr std::array<const char *, 5> FileIoTokens = {
    "fopen(", "std::ifstream", "std::ofstream", "std::fstream",
    "<fstream>"};

/// The deleted pre-PR-4 forwarding header; reintroducing it (or
/// including it) regresses the layering cleanup.
const char *const LegacyForwarderPath = "src/core/VirtualOrganization.h";

void lintOneFile(const SourceFile &F, std::vector<Finding> &Out) {
  const std::vector<std::string> Parts = pathComponents(F.Path);
  if (Parts.empty())
    return;
  const bool InSrc = Parts[0] == "src";
  const std::string Layer = (InSrc && Parts.size() >= 3) ? Parts[1] : "";
  const bool IsHeader = endsWith(F.Path, ".h");
  const bool GuardedTree =
      InSrc || Parts[0] == "bench" || Parts[0] == "examples";

  const auto &Allows = layerAllows();
  const auto AllowIt = Allows.find(Layer);

  bool SawIfndef = false, SawDefine = false, IfndefFlagged = false;
  const std::string Guard = canonicalGuard(F.Path);

  // no-legacy-forwarder: the deprecated core/VirtualOrganization.h
  // forwarder was deleted after its one-release grace period; the path
  // itself must not come back.
  if (F.Path == LegacyForwarderPath &&
      !isSuppressed(F.Lines, 0, "no-legacy-forwarder"))
    Out.push_back({F.Path, 0, "no-legacy-forwarder",
                   "the deprecated forwarding header was removed; the VO "
                   "facade lives at src/engine/VirtualOrganization.h"});

  for (size_t I = 0; I < F.Lines.size(); ++I) {
    const std::string &Line = F.Lines[I];
    const size_t LineNo = I + 1;

    // pragma-once: the repo convention is canonical include guards.
    if (trimLeft(Line).rfind("#pragma once", 0) == 0 &&
        !isSuppressed(F.Lines, I, "pragma-once"))
      Out.push_back({F.Path, LineNo, "pragma-once",
                     "#pragma once; use the canonical include guard " +
                         Guard});

    // layer-dag: quoted includes from a src/ layer must stay within the
    // layer's allowed dependency set.
    const std::string Target = quotedIncludeTarget(Line);
    if (Target == "core/VirtualOrganization.h" &&
        !isSuppressed(F.Lines, I, "no-legacy-forwarder"))
      Out.push_back({F.Path, LineNo, "no-legacy-forwarder",
                     "core/VirtualOrganization.h was removed; include "
                     "engine/VirtualOrganization.h"});
    if (!Target.empty() && AllowIt != Allows.end()) {
      const std::vector<std::string> TargetParts = pathComponents(Target);
      if (!TargetParts.empty() && Allows.count(TargetParts[0]) != 0) {
        const std::vector<std::string> &Allowed = AllowIt->second;
        if (std::find(Allowed.begin(), Allowed.end(), TargetParts[0]) ==
                Allowed.end() &&
            !isSuppressed(F.Lines, I, "layer-dag"))
          Out.push_back(
              {F.Path, LineNo, "layer-dag",
               "layer '" + Layer + "' must not include '" + Target +
                   "' (allowed: engine -> core -> sim -> support)"});
      }
    }

    if (isCommentLine(Line))
      continue;

    // Banned tokens in library code.
    if (InSrc) {
      for (const BannedToken &Ban : SrcWideBans)
        if (findToken(Line, Ban.Token) != std::string::npos &&
            !isSuppressed(F.Lines, I, Ban.Rule))
          Out.push_back({F.Path, LineNo, Ban.Rule, Ban.Message});
      // file-io: direct filesystem access outside the serialization
      // boundaries.
      if (!isFileIoBoundary(F.Path))
        for (const char *Token : FileIoTokens)
          if (findToken(Line, Token) != std::string::npos &&
              !isSuppressed(F.Lines, I, "file-io"))
            Out.push_back(
                {F.Path, LineNo, "file-io",
                 "direct file I/O in library code; route through "
                 "sim/TraceIO or support/StateCodec (or carry an "
                 "archlint-allow(file-io) rationale)"});
      if ((Layer == "core" || Layer == "engine") &&
          Line.find("std::function") != std::string::npos &&
          !isSuppressed(F.Lines, I, "std-function"))
        Out.push_back(
            {F.Path, LineNo, "std-function",
             "std::function in a hot layer; pass support/FunctionRef.h "
             "FunctionRef for non-owning callback parameters (owning "
             "storage may carry an archlint-allow entry)"});
      // detlint: the determinism rule family over the result-affecting
      // layers (docs/STATIC_ANALYSIS.md).
      if (isDetLayer(Layer)) {
        for (const BannedToken &Ban : DetBans)
          if (findToken(Line, Ban.Token) != std::string::npos &&
              !isSuppressed(F.Lines, I, Ban.Rule))
            Out.push_back({F.Path, LineNo, Ban.Rule, Ban.Message});
        if (hasPointerKey(Line) &&
            !isSuppressed(F.Lines, I, "det-pointer-key"))
          Out.push_back(
              {F.Path, LineNo, "det-pointer-key",
               "pointer-typed ordering/hash key: iteration walks "
               "allocation addresses, which vary run to run; key by a "
               "stable id or index instead"});
      }
    }

    // header-guard bookkeeping.
    if (IsHeader && GuardedTree) {
      const std::string T = trimLeft(Line);
      if (!SawIfndef && startsWith(T, "#ifndef")) {
        SawIfndef = true;
        if (trimLeft(T.substr(7)) != Guard &&
            !isSuppressed(F.Lines, I, "header-guard")) {
          IfndefFlagged = true;
          Out.push_back({F.Path, LineNo, "header-guard",
                         "include guard '" + trimLeft(T.substr(7)) +
                             "' does not match the canonical " + Guard});
        }
      } else if (SawIfndef && !SawDefine && startsWith(T, "#define")) {
        SawDefine = true;
        // A wrong #ifndef was already reported; flagging the matching
        // #define again would double-count the same defect.
        if (!IfndefFlagged && trimLeft(T.substr(7)) != Guard &&
            !isSuppressed(F.Lines, I, "header-guard"))
          Out.push_back({F.Path, LineNo, "header-guard",
                         "guard #define '" + trimLeft(T.substr(7)) +
                             "' does not match the canonical " + Guard});
      }
    }
  }

  if (IsHeader && GuardedTree && (!SawIfndef || !SawDefine) &&
      !isSuppressed(F.Lines, 0, "header-guard"))
    Out.push_back({F.Path, 0, "header-guard",
                   "missing #ifndef/#define include guard " + Guard});
}

/// test-registration: every tests/**/*.cpp must be named (path relative
/// to tests/) in some CMakeLists.txt under tests/.
void lintTestRegistration(const std::vector<SourceFile> &Files,
                          std::vector<Finding> &Out) {
  std::string Registrations;
  for (const SourceFile &F : Files) {
    if (!startsWith(F.Path, "tests/") || !endsWith(F.Path, "CMakeLists.txt"))
      continue;
    for (const std::string &Line : F.Lines) {
      Registrations += Line;
      Registrations += '\n';
    }
  }
  for (const SourceFile &F : Files) {
    if (!startsWith(F.Path, "tests/") || !endsWith(F.Path, ".cpp"))
      continue;
    const std::string Relative = F.Path.substr(std::string("tests/").size());
    if (Registrations.find(Relative) == std::string::npos &&
        !isSuppressed(F.Lines, 0, "test-registration"))
      Out.push_back({F.Path, 0, "test-registration",
                     "not registered in any tests/ CMakeLists.txt; the "
                     "file never builds or runs"});
  }
}

} // namespace

std::vector<Finding>
ecosched::archlint::lintFiles(const std::vector<SourceFile> &Files) {
  std::vector<Finding> Out;
  for (const SourceFile &F : Files)
    if (endsWith(F.Path, ".h") || endsWith(F.Path, ".cpp"))
      lintOneFile(F, Out);
  lintTestRegistration(Files, Out);
  std::sort(Out.begin(), Out.end(), [](const Finding &A, const Finding &B) {
    if (A.Path != B.Path)
      return A.Path < B.Path;
    if (A.Line != B.Line)
      return A.Line < B.Line;
    return A.Rule < B.Rule;
  });
  return Out;
}

std::string ecosched::archlint::formatFinding(const Finding &F) {
  std::ostringstream OS;
  OS << F.Path << ':' << F.Line << ": [" << F.Rule << "] " << F.Message;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Self test
//===----------------------------------------------------------------------===//

namespace {

struct SelfTestCase {
  const char *Name;
  std::vector<SourceFile> Files;
  /// Expected findings as rule names, order-insensitive.
  std::vector<std::string> ExpectedRules;
};

SourceFile makeFile(const char *Path,
                    std::initializer_list<const char *> Lines) {
  SourceFile F;
  F.Path = Path;
  for (const char *L : Lines)
    F.Lines.emplace_back(L);
  return F;
}

std::vector<SelfTestCase> selfTestCases() {
  std::vector<SelfTestCase> Cases;

  Cases.push_back({"upward include sim -> core is flagged",
                   {makeFile("src/sim/Bad.cpp",
                             {"#include \"core/Optimizer.h\""})},
                   {"layer-dag"}});
  Cases.push_back({"upward include core -> engine is flagged",
                   {makeFile("src/core/Bad.cpp",
                             {"#include \"engine/SimClock.h\""})},
                   {"layer-dag"}});
  Cases.push_back({"downward include engine -> support is allowed",
                   {makeFile("src/engine/Ok.cpp",
                             {"#include \"support/Check.h\""})},
                   {}});
  Cases.push_back({"suppressed upward include is allowed",
                   {makeFile("src/core/Fwd.h",
                             {"#ifndef ECOSCHED_CORE_FWD_H",
                              "#define ECOSCHED_CORE_FWD_H",
                              "// archlint-allow(layer-dag): forwarder",
                              "#include \"engine/SimClock.h\"", "#endif"})},
                   {}});
  Cases.push_back({"tests may include any layer",
                   {makeFile("tests/x/T.cpp",
                             {"#include \"engine/SimClock.h\""}),
                    makeFile("tests/CMakeLists.txt", {"x/T.cpp"})},
                   {}});

  Cases.push_back({"raw assert is flagged, static_assert is not",
                   {makeFile("src/sim/A.cpp",
                             {"assert(X);", "static_assert(true);"})},
                   {"raw-assert"}});
  Cases.push_back({"banned tokens in comments are ignored",
                   {makeFile("src/sim/B.cpp",
                             {"// assert( and std::cout and rand( here"})},
                   {}});
  Cases.push_back({"std::cout and rand and time are flagged",
                   {makeFile("src/sim/C.cpp",
                             {"std::cout << 1;", "int X = rand();",
                              "long T = time(nullptr);"})},
                   {"banned-io", "nondeterminism", "nondeterminism"}});
  Cases.push_back({"runtime( does not match the time( ban",
                   {makeFile("src/sim/D.cpp",
                             {"double R = S.runtimeFor(V);",
                              "double Q = startTime();"})},
                   {}});
  Cases.push_back({"std::function flagged in core, allowed in sim",
                   {makeFile("src/core/E.cpp", {"std::function<void()> F;"}),
                    makeFile("src/sim/F.cpp", {"std::function<void()> F;"})},
                   {"std-function"}});
  Cases.push_back({"std::function with an allow entry passes",
                   {makeFile("src/core/G.cpp",
                             {"// archlint-allow(std-function): owning",
                              "std::function<void()> F;"})},
                   {}});
  Cases.push_back({"allow marker anywhere in the comment block above",
                   {makeFile("src/core/G2.cpp",
                             {"// archlint-allow(std-function): owning",
                              "// storage, documented rationale spans",
                              "// several comment lines.",
                              "std::function<void()> F;"})},
                   {}});
  Cases.push_back({"allow marker does not leak past non-comment lines",
                   {makeFile("src/core/G3.cpp",
                             {"// archlint-allow(std-function): owning",
                              "std::function<void()> F;", "int X;",
                              "std::function<void()> G;"})},
                   {"std-function"}});

  Cases.push_back({"file I/O flagged in engine, allowed at the boundaries",
                   {makeFile("src/engine/IO1.cpp",
                             {"std::FILE *F = std::fopen(P, \"w\");"}),
                    makeFile("src/support/StateCodec.cpp",
                             {"std::FILE *F = std::fopen(P, \"w\");"}),
                    makeFile("src/sim/TraceIO.cpp",
                             {"std::ifstream In(Path);"})},
                   {"file-io"}});
  Cases.push_back({"fstream tokens are flagged as file I/O",
                   {makeFile("src/core/IO2.cpp",
                             {"#include <fstream>",
                              "std::ofstream Out(Path);"})},
                   {"file-io", "file-io"}});
  Cases.push_back({"file I/O with an allow rationale passes",
                   {makeFile("src/support/IO3.cpp",
                             {"// archlint-allow(file-io): chart output",
                              "std::FILE *F = std::fopen(P, \"w\");"})},
                   {}});

  Cases.push_back({"wrong include guard is flagged",
                   {makeFile("src/sim/H.h",
                             {"#ifndef WRONG_H", "#define WRONG_H",
                              "#endif"})},
                   {"header-guard"}});
  Cases.push_back({"missing include guard is flagged",
                   {makeFile("src/sim/I.h", {"int X;"})},
                   {"header-guard"}});
  Cases.push_back({"pragma once is flagged",
                   {makeFile("src/sim/J.h", {"#pragma once", "int X;"})},
                   {"header-guard", "pragma-once"}});
  Cases.push_back({"canonical guard passes",
                   {makeFile("src/sim/K.h",
                             {"#ifndef ECOSCHED_SIM_K_H",
                              "#define ECOSCHED_SIM_K_H", "#endif"})},
                   {}});
  Cases.push_back({"bench header keeps its directory in the guard",
                   {makeFile("bench/L.h",
                             {"#ifndef ECOSCHED_BENCH_L_H",
                              "#define ECOSCHED_BENCH_L_H", "#endif"})},
                   {}});

  Cases.push_back({"unordered container flagged in core, allowed in sim",
                   {makeFile("src/core/N1.cpp",
                             {"std::unordered_map<int, int> M;"}),
                    makeFile("src/sim/N1.cpp",
                             {"std::unordered_set<int> S;"})},
                   {"det-unordered-container"}});
  Cases.push_back({"unordered include flagged in engine",
                   {makeFile("src/engine/N2.cpp",
                             {"#include <unordered_set>"})},
                   {"det-unordered-container"}});
  Cases.push_back({"suppressed unordered container with rationale passes",
                   {makeFile("src/core/N3.cpp",
                             {"// archlint-allow(det-unordered-container):",
                              "// scratch set, drained before any fold.",
                              "std::unordered_set<int> Scratch;"})},
                   {}});
  Cases.push_back({"pointer-keyed map and set are flagged in core",
                   {makeFile("src/core/N4.cpp",
                             {"std::map<const Window *, int> ByPtr;",
                              "std::set<Slot *> Seen;"})},
                   {"det-pointer-key", "det-pointer-key"}});
  Cases.push_back({"pointer in value position is allowed",
                   {makeFile("src/core/N5.cpp",
                             {"std::map<int, const Window *> ById;",
                              "std::set<std::pair<int, int>> Keys;"})},
                   {}});
  Cases.push_back({"pointer-typed std::less and std::hash are flagged",
                   {makeFile("src/engine/N6.cpp",
                             {"std::less<Slot *> Cmp;",
                              "std::hash<const Job *> H;"})},
                   {"det-pointer-key", "det-pointer-key"}});
  Cases.push_back({"thread id and random_device are flagged in support",
                   {makeFile("src/support/N7.cpp",
                             {"auto Id = std::this_thread::get_id();",
                              "std::random_device Dev;"})},
                   {"det-thread-id", "det-random-device"}});
  Cases.push_back({"chrono include and clock use are flagged in core",
                   {makeFile("src/core/N8.cpp",
                             {"#include <chrono>",
                              "auto T = std::chrono::steady_clock::now();"})},
                   {"det-wall-clock", "det-wall-clock"}});
  Cases.push_back({"volatile flagged in engine, ignored in comments",
                   {makeFile("src/engine/N9.cpp",
                             {"volatile int Spin = 0;",
                              "// volatile in prose stays silent"})},
                   {"det-volatile"}});
  Cases.push_back({"det rules do not fire outside the det layers",
                   {makeFile("src/sim/N10.cpp",
                             {"#include <chrono>", "volatile int X;",
                              "std::map<int *, int> M;"}),
                    makeFile("tests/x/N10.cpp",
                             {"std::unordered_map<int, int> M;"}),
                    makeFile("tests/CMakeLists.txt", {"x/N10.cpp"})},
                   {}});

  Cases.push_back({"reintroduced legacy forwarder path is flagged",
                   {makeFile("src/core/VirtualOrganization.h",
                             {"#ifndef ECOSCHED_CORE_VIRTUALORGANIZATION_H",
                              "#define ECOSCHED_CORE_VIRTUALORGANIZATION_H",
                              "#endif"})},
                   {"no-legacy-forwarder"}});
  Cases.push_back({"include of the legacy forwarder is flagged",
                   {makeFile("src/engine/O1.cpp",
                             {"#include \"core/VirtualOrganization.h\""})},
                   {"no-legacy-forwarder"}});
  Cases.push_back({"engine facade include passes the forwarder rule",
                   {makeFile("src/engine/O2.cpp",
                             {"#include \"engine/VirtualOrganization.h\""})},
                   {}});

  Cases.push_back({"unregistered test file is flagged",
                   {makeFile("tests/x/Orphan.cpp", {"int X;"}),
                    makeFile("tests/CMakeLists.txt", {"x/Other.cpp"})},
                   {"test-registration"}});
  Cases.push_back({"registered test file passes",
                   {makeFile("tests/x/T.cpp", {"int X;"}),
                    makeFile("tests/CMakeLists.txt",
                             {"ecosched_add_test(x_tests", "  x/T.cpp", ")"})},
                   {}});

  return Cases;
}

} // namespace

int ecosched::archlint::runSelfTest() {
  int Failures = 0;
  for (const SelfTestCase &Case : selfTestCases()) {
    std::vector<Finding> Findings = lintFiles(Case.Files);
    std::vector<std::string> Got;
    Got.reserve(Findings.size());
    for (const Finding &F : Findings)
      Got.push_back(F.Rule);
    std::vector<std::string> Want = Case.ExpectedRules;
    std::sort(Got.begin(), Got.end());
    std::sort(Want.begin(), Want.end());
    if (Got != Want) {
      ++Failures;
      std::cerr << "self-test FAILED: " << Case.Name << "\n  expected:";
      for (const std::string &R : Want)
        std::cerr << ' ' << R;
      std::cerr << "\n  got:";
      for (const Finding &F : Findings)
        std::cerr << "\n    " << formatFinding(F);
      std::cerr << '\n';
    }
  }
  return Failures;
}
