//===-- bench/ablation_deadline.cpp - Deadline-constrained requests -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment: deadline-and-budget constrained requests are
/// the canonical strategy pair of the economic scheduling literature
/// the paper builds on (ref [6], Buyya et al.). Every generated job
/// gets a completion deadline; the sweep tightens it and measures how
/// batch coverage and the ALP/AMP comparison respond. Deadlines also
/// let the linear scans terminate early (sorted lists), which the
/// examined-slots column shows.
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_deadline",
                 "tightening completion deadlines on the Section 5 "
                 "workload");
  const int64_t &Iterations =
      Args.addInt("iterations", 400, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: deadline-constrained resource requests\n");
  std::printf("=================================================\n\n");

  TablePrinter Table;
  Table.addColumn("deadline", TablePrinter::AlignKind::Left);
  Table.addColumn("ALP covered %");
  Table.addColumn("AMP covered %");
  Table.addColumn("ALP alts/job");
  Table.addColumn("AMP alts/job");
  Table.addColumn("AMP slots examined");

  AlpSearch Alp;
  AmpSearch Amp;
  SlotGenerator Slots;
  JobGenerator Jobs;

  const double Deadlines[] = {150.0, 250.0, 400.0, 800.0, -1.0};
  for (const double Deadline : Deadlines) {
    RandomGenerator Master(static_cast<uint64_t>(Seed));
    size_t AlpCovered = 0, AmpCovered = 0, JobCount = 0;
    RunningStats AlpAlts, AmpAlts, Examined;

    for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
      RandomGenerator Rng = Master.fork();
      const SlotList SlotsNow = Slots.generate(Rng);
      Batch BatchNow = Jobs.generate(Rng);
      for (Job &J : BatchNow)
        if (Deadline > 0.0)
          J.Request.Deadline = Deadline;

      SearchStats AmpStats;
      const AlternativeSet A =
          AlternativeSearch(Alp).run(SlotsNow, BatchNow);
      const AlternativeSet M =
          AlternativeSearch(Amp).run(SlotsNow, BatchNow, &AmpStats);
      JobCount += BatchNow.size();
      for (size_t J = 0; J < BatchNow.size(); ++J) {
        AlpCovered += !A.PerJob[J].empty();
        AmpCovered += !M.PerJob[J].empty();
      }
      AlpAlts.add(A.averagePerJob());
      AmpAlts.add(M.averagePerJob());
      Examined.add(static_cast<double>(AmpStats.SlotsExamined));
    }

    char Label[32];
    if (Deadline > 0.0)
      std::snprintf(Label, sizeof(Label), "%.0f", Deadline);
    else
      std::snprintf(Label, sizeof(Label), "none");
    Table.beginRow();
    Table.addCell(std::string(Label));
    Table.addCell(100.0 * static_cast<double>(AlpCovered) /
                      static_cast<double>(JobCount),
                  1);
    Table.addCell(100.0 * static_cast<double>(AmpCovered) /
                      static_cast<double>(JobCount),
                  1);
    Table.addCell(AlpAlts.mean(), 2);
    Table.addCell(AmpAlts.mean(), 2);
    Table.addCell(Examined.mean(), 0);
  }
  Table.print(stdout);

  std::printf("\nreading: tightening deadlines first eats the late "
              "alternatives (counts drop), then coverage itself; AMP's "
              "coverage degrades more slowly than ALP's because its "
              "budget admits fast nodes that finish in time. The "
              "examined-slots column shows the sorted-list early exit "
              "deadlines enable.\n");
  return 0;
}
