file(REMOVE_RECURSE
  "../bench/ablation_dynamic_pricing"
  "../bench/ablation_dynamic_pricing.pdb"
  "CMakeFiles/ablation_dynamic_pricing.dir/ablation_dynamic_pricing.cpp.o"
  "CMakeFiles/ablation_dynamic_pricing.dir/ablation_dynamic_pricing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
