file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/CheckTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/CheckTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/CommandLineTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/CommandLineTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/RandomTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/RandomTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StatisticsTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/StatisticsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/SvgTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/SvgTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/TableTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/TableTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
