//===-- bench/ablation_batch_once.cpp - Whole-batch vs sequential ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment (Section 7 future work): "slot selection for
/// the whole job batch at once and not for each job consecutively",
/// optimizing "on the fly" without a dedicated optimization phase.
/// Compares, on identical Section 5 workloads:
///   * sequential: the paper's two-phase scheme (AMP alternative search
///     + DP combination selection under B*);
///   * one-pass: OnePassBatchScheduler, a single synchronized scan.
/// Reported: batch coverage, mean job start/completion, makespan, cost,
/// and scheduling wall time.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/BatchSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <chrono>
#include <cstdio>

using namespace ecosched;

namespace {

struct SchemeStats {
  RunningStats PlacedFraction;
  RunningStats MeanStart;
  RunningStats MeanCompletion;
  RunningStats Makespan;
  RunningStats CostPerJob;
  RunningStats WallUs;
};

void addWindows(SchemeStats &Stats,
                const std::vector<const Window *> &Windows,
                size_t BatchSize, double WallUs) {
  Stats.WallUs.add(WallUs);
  Stats.PlacedFraction.add(static_cast<double>(Windows.size()) /
                           static_cast<double>(BatchSize));
  if (Windows.empty())
    return;
  RunningStats Start, Completion, Cost;
  double End = 0.0;
  for (const Window *W : Windows) {
    Start.add(W->startTime().value());
    Completion.add(W->endTime().value());
    Cost.add(W->totalCost().value());
    End = std::max(End, W->endTime().value());
  }
  Stats.MeanStart.add(Start.mean());
  Stats.MeanCompletion.add(Completion.mean());
  Stats.Makespan.add(End);
  Stats.CostPerJob.add(Cost.mean());
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_batch_once",
                 "whole-batch one-pass scheduling vs the two-phase "
                 "scheme");
  const int64_t &Iterations =
      Args.addInt("iterations", 500, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: whole-batch one-pass scheduling (Section 7 "
              "future work)\n");
  std::printf("============================================================"
              "=\n\n");

  RandomGenerator Master(static_cast<uint64_t>(Seed));
  SlotGenerator Slots;
  JobGenerator Jobs;
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Sequential(Amp, Dp);
  OnePassBatchScheduler OnePass;

  SchemeStats SequentialStats, OnePassStats;
  size_t Compared = 0;

  for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
    RandomGenerator Rng = Master.fork();
    const SlotList SlotsNow = Slots.generate(Rng);
    const Batch BatchNow = Jobs.generate(Rng);

    const auto T0 = std::chrono::steady_clock::now();
    const IterationOutcome Outcome =
        Sequential.runIteration(SlotsNow, BatchNow);
    const auto T1 = std::chrono::steady_clock::now();
    const BatchAssignment Assignment = OnePass.assign(SlotsNow, BatchNow);
    const auto T2 = std::chrono::steady_clock::now();

    // Compare only iterations where both schemes placed the full batch,
    // so the quality metrics average over the same job population.
    std::vector<const Window *> SequentialWindows;
    for (const ScheduledJob &S : Outcome.Scheduled)
      SequentialWindows.push_back(&S.W);
    std::vector<const Window *> OnePassWindows;
    for (const auto &W : Assignment.PerJob)
      if (W)
        OnePassWindows.push_back(&*W);
    if (SequentialWindows.size() != BatchNow.size() ||
        OnePassWindows.size() != BatchNow.size())
      continue;
    ++Compared;
    addWindows(
        SequentialStats, SequentialWindows, BatchNow.size(),
        std::chrono::duration<double, std::micro>(T1 - T0).count());
    addWindows(
        OnePassStats, OnePassWindows, BatchNow.size(),
        std::chrono::duration<double, std::micro>(T2 - T1).count());
  }

  std::printf("%zu iterations where both schemes placed the whole "
              "batch\n\n",
              Compared);
  TablePrinter Table;
  Table.addColumn("metric", TablePrinter::AlignKind::Left);
  Table.addColumn("two-phase (paper)");
  Table.addColumn("one-pass (future work)");
  auto Row = [&](const char *Metric, double A, double B, int Precision) {
    Table.beginRow();
    Table.addCell(std::string(Metric));
    Table.addCell(A, Precision);
    Table.addCell(B, Precision);
  };
  Row("mean job start time", SequentialStats.MeanStart.mean(),
      OnePassStats.MeanStart.mean(), 2);
  Row("mean job completion time", SequentialStats.MeanCompletion.mean(),
      OnePassStats.MeanCompletion.mean(), 2);
  Row("batch makespan", SequentialStats.Makespan.mean(),
      OnePassStats.Makespan.mean(), 2);
  Row("mean job cost", SequentialStats.CostPerJob.mean(),
      OnePassStats.CostPerJob.mean(), 2);
  Row("scheduling wall time (us)", SequentialStats.WallUs.mean(),
      OnePassStats.WallUs.mean(), 1);
  Table.print(stdout);

  std::printf("\nreading: the one-pass scheme trades the two-phase "
              "scheme's optimized time/cost balance for drastically "
              "lower scheduling latency (no alternative enumeration, no "
              "DP) and earlier placements — the trade the paper's "
              "future-work section anticipates.\n");
  return 0;
}
