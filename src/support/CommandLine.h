//===-- support/CommandLine.h - Minimal flag parser --------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal `--flag=value` parser for the example and bench binaries.
/// Flags are registered with a default value and a help string; parse()
/// overrides registered defaults and rejects unknown flags.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_COMMANDLINE_H
#define ECOSCHED_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace ecosched {

/// Registry of typed command-line flags.
///
/// Usage:
/// \code
///   ArgParser Args("fig4", "Reproduces Fig. 4");
///   int64_t &Iterations = Args.addInt("iterations", 5000, "runs");
///   if (!Args.parse(argc, argv)) return 1;
/// \endcode
///
/// References returned by the add* methods remain valid for the lifetime
/// of the parser (values live in std::deque storage).
class ArgParser {
public:
  ArgParser(std::string ProgramName, std::string Description);

  /// Registers an integer flag; returns a stable reference to its value.
  int64_t &addInt(const std::string &Name, int64_t Default,
                  const std::string &Help);

  /// Registers a floating-point flag.
  double &addReal(const std::string &Name, double Default,
                  const std::string &Help);

  /// Registers a boolean flag (`--name` or `--name=true/false`).
  bool &addBool(const std::string &Name, bool Default,
                const std::string &Help);

  /// Registers a string flag.
  std::string &addString(const std::string &Name, std::string Default,
                         const std::string &Help);

  /// Registers the standard `--threads` flag shared by the long-running
  /// drivers (default 0 = all hardware cores, resolved through
  /// ThreadPool::resolveThreadCount; results are identical for any
  /// value — see docs/CONCURRENCY.md).
  int64_t &addThreads();

  /// Parses argv. On `--help` prints usage and returns false; on a
  /// malformed or unknown flag prints a diagnostic and returns false.
  bool parse(int Argc, const char *const *Argv);

  /// Prints registered flags with defaults and help text.
  void printHelp() const;

private:
  enum class FlagKind { Int, Real, Bool, String };

  struct Flag {
    std::string Name;
    std::string Help;
    std::string DefaultText;
    FlagKind Kind;
    size_t Index; // Index into the typed storage deque for Kind.
  };

  Flag *findFlag(const std::string &Name);
  bool setFlag(Flag &F, const std::string &Text);

  std::string ProgramName;
  std::string Description;
  std::vector<Flag> Flags;
  std::deque<int64_t> IntValues;
  std::deque<double> RealValues;
  std::deque<bool> BoolValues;
  std::deque<std::string> StringValues;
};

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_COMMANDLINE_H
