//===-- fuzz/SlotListDiffFuzzer.cpp - Differential SlotList algebra -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Differential fuzzer for the slot-subtraction algebra (Fig. 1(b) of the
// paper, the PR-3 incremental-damage property): a fuzzer-derived slot
// set takes a fuzzer-derived sequence of span subtractions four ways —
//
//   * incrementally through SlotList::subtractExact (the O(log n) hot
//     path, optionally with the remainder-Keep filter SlotFilter uses),
//   * incrementally through SlotList::subtract, which probes the
//     per-node interval index (bitwise-transparency contract),
//   * incrementally through SlotList::subtractLinear, the retained
//     front-to-back scan that serves as the index's oracle,
//   * against a from-scratch reference that recomputes the remainder
//     pieces independently and rebuilds the list via the sorting
//     constructor,
//
// and all four must agree bit for bit after every operation, and the
// interval index must stay consistent with its slot vector. Slot
// boundaries are quantized to a 0.25 grid (exact in binary, far above
// TimeEpsilon) so tolerant comparisons cannot blur the oracle. Misses
// (a container not in the list) must return false and leave the list
// untouched.
//
//===----------------------------------------------------------------------===//

#include "FuzzInput.h"
#include "sim/SlotList.h"
#include "support/Check.h"

#include <algorithm>
#include <cstdint>
#include <vector>

using namespace ecosched;
using fuzz::FuzzInput;

namespace {

constexpr double Grid = 0.25;

/// Decodes a per-node-disjoint slot set: per node a forward cursor
/// advances by a positive gap and a positive length, so disjointness and
/// positive lengths hold by construction.
std::vector<Slot> decodeSlots(FuzzInput &In) {
  std::vector<Slot> Slots;
  const int Nodes = In.takeIntInRange(1, 4);
  for (int Node = 0; Node < Nodes; ++Node) {
    const int Count = In.takeIntInRange(0, 4);
    const double Performance = In.takeQuantized(0.5, 4.0, Grid);
    const double Price = In.takeQuantized(0.0, 10.0, Grid);
    double Cursor = In.takeQuantized(0.0, 10.0, Grid);
    for (int I = 0; I < Count; ++I) {
      const double Start = Cursor + In.takeQuantized(Grid, 5.0, Grid);
      const double End = Start + In.takeQuantized(Grid, 10.0, Grid);
      Slots.emplace_back(Node, Performance, Price, Start, End);
      Cursor = End;
    }
  }
  std::sort(Slots.begin(), Slots.end(), slotStartLess);
  return Slots;
}

/// Asserts \p List holds exactly \p Expected (sorted), field for field.
void checkEqual(const SlotList &List, const std::vector<Slot> &Expected,
                const char *Which) {
  ECOSCHED_CHECK(List.size() == Expected.size(),
                 "{} list diverged from reference: {} slots vs {}", Which,
                 List.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I) {
    const Slot &A = List[I], &B = Expected[I];
    ECOSCHED_CHECK(A.NodeId == B.NodeId && A.Start == B.Start &&
                       A.End == B.End && A.Performance == B.Performance &&
                       A.UnitPrice == B.UnitPrice,
                   "{} list slot {} diverged: node {} [{}, {}) vs node {} "
                   "[{}, {})",
                   Which, I, A.NodeId, A.Start, A.End, B.NodeId, B.Start,
                   B.End);
  }
  ECOSCHED_CHECK(List.checkInvariants(),
                 "{} list lost its structural invariants", Which);
  ECOSCHED_CHECK(List.checkIndexConsistency(),
                 "{} list's interval index diverged from its slot vector",
                 Which);
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  FuzzInput In(Data, Size);

  std::vector<Slot> Truth = decodeSlots(In);
  SlotList Incremental{Truth};
  SlotList Indexed{Truth};
  SlotList Linear{Truth};
  // Fuzz lists sit far below SlotList::IndexBuildThreshold, where
  // subtract() would take the linear cutoff; force the index so the
  // differential genuinely exercises the indexed probe.
  Indexed.buildIndexNow();

  const bool UseKeepFilter = In.takeBool();
  const double MinKeepLen = In.takeQuantized(Grid, 2.0, Grid);
  const auto Keep = [&](const Slot &Piece) {
    return Piece.length() >= MinKeepLen;
  };

  for (int Op = 0; Op < 24 && !In.empty() && !Truth.empty(); ++Op) {
    const size_t Index =
        static_cast<size_t>(In.takeIntInRange(0, int(Truth.size()) - 1));
    const Slot Container = Truth[Index];
    const int Steps = std::max(1, int(Container.length() / Grid));
    const int StartStep = In.takeIntInRange(0, Steps);
    const int EndStep = In.takeIntInRange(StartStep, Steps);
    const double SpanStart = Container.Start + Grid * StartStep;
    const double SpanEnd = Container.Start + Grid * EndStep;

    // Miss probes need a non-degenerate span: subtractExact answers true
    // for an empty span before it ever looks the container up.
    if (In.takeByte() % 5 == 0 && SpanEnd - SpanStart > TimeEpsilon) {
      // A container shifted off the 0.25 grid can never be stored, so
      // subtractExact must refuse and change nothing.
      const Slot Ghost(Container.NodeId, Container.Performance,
                       Container.UnitPrice, Container.Start + Grid / 2,
                       Container.End + Grid / 2);
      const bool Hit =
          Incremental.subtractExact(Ghost, TimePoint(SpanStart), TimePoint(SpanEnd));
      ECOSCHED_CHECK(!Hit, "subtractExact split a container not in the "
                           "list: node {} [{}, {})",
                     Ghost.NodeId, Ghost.Start, Ghost.End);
      checkEqual(Incremental, Truth, "incremental(miss)");

      // The half-grid-shifted span pokes past the container's end, and
      // per-node disjointness rules out any other container: the
      // indexed probe and the linear oracle must both miss and leave
      // their lists untouched. (Skipped under the Keep filter, where
      // these two lists deliberately stop tracking the reference.)
      if (!UseKeepFilter) {
        const bool IndexedHit = Indexed.subtract(Container.NodeId, TimePoint(Container.Start + Grid / 2), TimePoint(Container.End + Grid / 2));
        const bool LinearHit = Linear.subtractLinear(Container.NodeId, TimePoint(Container.Start + Grid / 2), TimePoint(Container.End + Grid / 2));
        ECOSCHED_CHECK(!IndexedHit && !LinearHit,
                       "uncontained span [{}, {}) on node {} was "
                       "subtracted (indexed {}, linear {})",
                       Container.Start + Grid / 2,
                       Container.End + Grid / 2, Container.NodeId,
                       IndexedHit, LinearHit);
        checkEqual(Indexed, Truth, "indexed(miss)");
        checkEqual(Linear, Truth, "linear(miss)");
      }
      continue;
    }

    const bool DidSubtract =
        UseKeepFilter
            ? Incremental.subtractExact(Container, TimePoint(SpanStart), TimePoint(SpanEnd), Keep)
            : Incremental.subtractExact(Container, TimePoint(SpanStart), TimePoint(SpanEnd));
    ECOSCHED_CHECK(DidSubtract,
                   "subtractExact missed its own container: node {} "
                   "[{}, {}) span [{}, {})",
                   Container.NodeId, Container.Start, Container.End,
                   SpanStart, SpanEnd);

    if (SpanEnd - SpanStart > TimeEpsilon) {
      // From-scratch reference: recompute the remainder pieces
      // independently and re-sort. Grid arithmetic is exact, so the
      // pieces must match the incremental path bit for bit.
      Truth.erase(Truth.begin() + static_cast<long>(Index));
      const Slot Head(Container.NodeId, Container.Performance,
                      Container.UnitPrice, Container.Start, SpanStart);
      const Slot Tail(Container.NodeId, Container.Performance,
                      Container.UnitPrice, SpanEnd, Container.End);
      for (const Slot &Piece : {Head, Tail})
        if (Piece.length() > TimeEpsilon &&
            (!UseKeepFilter || Keep(Piece)))
          Truth.push_back(Piece);
      std::sort(Truth.begin(), Truth.end(), slotStartLess);

      if (!UseKeepFilter) {
        // The index-probing and linear-scan variants must both agree
        // with the exact variant.
        const bool IndexedHit =
            Indexed.subtract(Container.NodeId, TimePoint(SpanStart), TimePoint(SpanEnd));
        const bool LinearHit =
            Linear.subtractLinear(Container.NodeId, TimePoint(SpanStart), TimePoint(SpanEnd));
        ECOSCHED_CHECK(IndexedHit && LinearHit,
                       "subtract disagreed with subtractExact on node {} "
                       "span [{}, {}): indexed {}, linear {}",
                       Container.NodeId, SpanStart, SpanEnd, IndexedHit,
                       LinearHit);
      }
    }

    // Rebuild-from-scratch oracle: the sorting constructor over the
    // reference remainder set is the "recompute everything" answer.
    checkEqual(Incremental, Truth, "incremental");
    checkEqual(SlotList{Truth}, Truth, "rebuilt");
    if (!UseKeepFilter) {
      checkEqual(Indexed, Truth, "indexed");
      checkEqual(Linear, Truth, "linear");
    }
  }
  return 0;
}
