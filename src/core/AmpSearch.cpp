//===-- core/AmpSearch.cpp - Algorithm based on Maximal job Price ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"

#include "core/SearchCommon.h"

#include <algorithm>

using namespace ecosched;

namespace {

/// The AMP forward scan. With \p PreFiltered the list is a SlotFilter
/// view whose slots already pass the request-static predicates
/// (performance, length, own-start deadline; the per-slot price cap is
/// deliberately not part of AMP's admissibility), so only the dynamic
/// group and budget logic runs per slot.
template <bool PreFiltered>
std::optional<Window> ampScan(const SlotList &List,
                              const ResourceRequest &Request,
                              SearchStats *Stats) {
  ECOSCHED_CHECK(Request.NodeCount > 0,
                 "request must ask for at least one slot, got {}",
                 Request.NodeCount);
  if constexpr (!PreFiltered) {
    // A SlotFilter view is validated when built, and its damage
    // maintenance is an exactness-property-tested local splice;
    // re-validating the view on every search would make the sweep
    // quadratic in the list size again (docs/PERFORMANCE.md).
    ECOSCHED_DVALIDATE(List.validate());
  }
  const size_t Needed = static_cast<size_t>(Request.NodeCount);
  const Money Budget = Request.budget();
  std::vector<const Slot *> Group;
  std::vector<const Slot *> Cheapest;
  SearchStats Local;

  // Deadline horizon via binary search: scanEndBefore() is exactly
  // where the per-slot "start meets the deadline" break used to fire,
  // so the examined set (and the window, if any) is unchanged while
  // the scan becomes O(log n + examined).
  const auto ScanEnd = List.scanEndBefore(Request.deadline());
  for (auto ScanIt = List.begin(); ScanIt != ScanEnd; ++ScanIt) {
    const Slot &S = *ScanIt;
    ++Local.SlotsExamined;
    // Steps 1/3: accumulate slots under conditions 2a and 2b only; the
    // per-slot price condition 2c is deliberately dropped.
    if constexpr (!PreFiltered) {
      if (!detail::meetsPerformance(S, Request))
        continue;
      if (!detail::meetsLength(S, Request))
        continue;
      if (!detail::fitsDeadline(S, S.start(), Request))
        continue;
    }

    const TimePoint WindowStart = S.start();
    std::erase_if(Group, [&](const Slot *G) {
      return !G->coversFrom(WindowStart, G->runtimeFor(Request.Volume)) ||
             !detail::fitsDeadline(*G, WindowStart, Request);
    });
    Group.push_back(&S);
    Local.GroupOperations += Group.size();
    Local.GroupPeak = std::max(Local.GroupPeak, Group.size());

    if (Group.size() < Needed)
      continue;

    // Step 2: sort the alive slots by their usage cost and test whether
    // the N cheapest fit the job budget. Cheapest reuses its capacity
    // across iterations, so the copy is pointer-sized writes only.
    Cheapest.assign(Group.begin(), Group.end());
    std::partial_sort(Cheapest.begin(),
                      Cheapest.begin() + static_cast<long>(Needed),
                      Cheapest.end(), [&](const Slot *A, const Slot *B) {
                        const Money CostA = detail::slotUsageCost(*A, Request);
                        const Money CostB = detail::slotUsageCost(*B, Request);
                        // Exact comparison: comparator must stay a
                        // strict weak ordering.
                        if (!exactEq(CostA, CostB))
                          return exactLess(CostA, CostB);
                        return A->NodeId < B->NodeId;
                      });
    Cheapest.resize(Needed);
    Local.GroupOperations += Group.size();

    Money Total(0.0);
    for (const Slot *C : Cheapest)
      Total = Total + detail::slotUsageCost(*C, Request);
    if (approxLe(Total, Budget)) {
      if (Stats)
        *Stats += Local;
      return detail::buildWindow(WindowStart, Cheapest, Request);
    }
  }
  if (Stats)
    *Stats += Local;
  return std::nullopt;
}

} // namespace

std::optional<Window>
AmpSearch::findWindow(const SlotList &List, const ResourceRequest &Request,
                      SearchStats *Stats) const {
  return ampScan<false>(List, Request, Stats);
}

std::optional<Window>
AmpSearch::findWindowFiltered(const SlotList &Filtered,
                              const ResourceRequest &Request,
                              SearchStats *Stats) const {
  return ampScan<true>(Filtered, Request, Stats);
}

bool AmpSearch::admits(const Slot &S, const ResourceRequest &Request) const {
  return detail::meetsPerformance(S, Request) &&
         detail::meetsLength(S, Request) &&
         detail::fitsDeadline(S, S.start(), Request);
}

bool AmpSearch::admitsRemainder(const Slot &Piece,
                                const ResourceRequest &Request) const {
  // Condition 2a holds by inheritance from the admitted container; only
  // the span-dependent checks can change for a narrower piece.
  return detail::meetsLength(Piece, Request) &&
         detail::fitsDeadline(Piece, Piece.start(), Request);
}
