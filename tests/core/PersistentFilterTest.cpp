//===-- tests/core/PersistentFilterTest.cpp - Cross-iteration views -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the PersistentSlotFilter delta protocol: every sync
/// must leave each view bitwise-equal to the from-scratch
/// SlotFilter::filteredCopy of the new master (the view invariant,
/// whatever mix of slot removals, re-admissions, repricings, job
/// arrivals and departures the delta carries), the sweep-damage journal
/// must roll views back bitwise, and the reconciliation counters must
/// tell reuses, rebuilds, and splices apart. Also pins the
/// admitsRemainder fast path to admits() for every algorithm
/// (the satellite regression for the redundant static re-checks).
///
//===----------------------------------------------------------------------===//

#include "core/PersistentSlotFilter.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/BackfillSearch.h"
#include "core/SlotFilter.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ecosched;

namespace {

void expectSameList(const SlotList &A, const SlotList &B,
                    const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].NodeId, B[I].NodeId) << What << " slot " << I;
    EXPECT_EQ(A[I].Performance, B[I].Performance) << What << " slot " << I;
    EXPECT_EQ(A[I].UnitPrice, B[I].UnitPrice) << What << " slot " << I;
    EXPECT_EQ(A[I].Start, B[I].Start) << What << " slot " << I;
    EXPECT_EQ(A[I].End, B[I].End) << What << " slot " << I;
  }
}

/// Checks the view invariant for every job of \p Jobs.
void expectViewsMatchOracle(const PersistentSlotFilter &Filter,
                            const SlotList &Master, const Batch &Jobs,
                            const SlotSearchAlgorithm &Algo) {
  ASSERT_EQ(Filter.jobCount(), Jobs.size());
  for (size_t J = 0; J < Jobs.size(); ++J) {
    const SlotList Oracle =
        SlotFilter::filteredCopy(Master, Jobs[J].Request, Algo);
    expectSameList(Filter.view(J), Oracle, "view vs filteredCopy");
  }
}

SlotList makeMaster() {
  std::vector<Slot> Slots;
  // Three nodes, mixed performance/price, several spans per node.
  for (int Node = 0; Node < 3; ++Node) {
    const double Perf = 1.0 + 0.5 * Node;
    const double Price = 1.0 + 0.25 * Node;
    for (int K = 0; K < 4; ++K) {
      const double Start = 100.0 * K + 10.0 * Node;
      Slots.emplace_back(Node, Perf, Price, Start, Start + 80.0);
    }
  }
  return SlotList(std::move(Slots));
}

Job makeJob(int Id, double Volume, double MaxPrice,
            double MinPerf = 1.0) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = 1;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = MinPerf;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

} // namespace

TEST(PersistentFilterTest, FirstSyncBuildsEveryViewFromScratch) {
  AlpSearch Alp;
  PersistentSlotFilter Filter(Alp);
  const SlotList Master = makeMaster();
  const Batch Jobs = {makeJob(1, 40.0, 2.0), makeJob(2, 60.0, 1.2)};

  SearchStats Stats;
  Filter.sync(Master, Jobs, &Stats);
  EXPECT_EQ(Stats.FilterViewRebuilds, 2u);
  EXPECT_EQ(Stats.FilterViewReuses, 0u);
  EXPECT_EQ(Stats.FilterDeltaOps, 0u);
  expectViewsMatchOracle(Filter, Master, Jobs, Alp);
  expectSameList(Filter.shadowMaster(), Master, "shadow");
}

TEST(PersistentFilterTest, ResyncSplicesSlotDeltasIntoReusedViews) {
  AlpSearch Alp;
  PersistentSlotFilter Filter(Alp);
  const SlotList Master = makeMaster();
  const Batch Jobs = {makeJob(1, 40.0, 2.0), makeJob(2, 60.0, 1.2)};
  Filter.sync(Master, Jobs);

  // Next iteration's master: one span consumed, one split, one new span
  // returning to the free pool, and one slot repriced in place (same
  // (Start, NodeId, End) key, different UnitPrice).
  std::vector<Slot> Slots(Master.begin(), Master.end());
  Slots.erase(Slots.begin()); // Consumed by a reservation.
  Slot Repriced = Slots[0];
  Repriced.UnitPrice += 0.05;
  Slots[0] = Repriced;
  Slots.emplace_back(0, 1.0, 1.0, 400.0, 470.0); // Retired reservation.
  const SlotList Master2{Slots};

  SearchStats Stats;
  Filter.sync(Master2, Jobs, &Stats);
  EXPECT_EQ(Stats.FilterViewReuses, 2u);
  EXPECT_EQ(Stats.FilterViewRebuilds, 0u);
  EXPECT_GT(Stats.FilterDeltaOps, 0u);
  expectViewsMatchOracle(Filter, Master2, Jobs, Alp);
}

TEST(PersistentFilterTest, JobDeltasRebuildOnlyAffectedViews) {
  AmpSearch Amp;
  PersistentSlotFilter Filter(Amp);
  const SlotList Master = makeMaster();
  Filter.sync(Master, {makeJob(1, 40.0, 2.0), makeJob(2, 60.0, 1.2),
                       makeJob(3, 30.0, 1.5)});

  // Job 2 departs, job 4 arrives, job 3 changes its request (budget
  // factor counts: matching is whole-request on purpose), job 1 is
  // untouched — and the batch order shifts.
  Job Changed = makeJob(3, 30.0, 1.5);
  Changed.Request.BudgetFactor = 0.9;
  const Batch Jobs2 = {Changed, makeJob(4, 50.0, 1.8),
                       makeJob(1, 40.0, 2.0)};

  SearchStats Stats;
  Filter.sync(Master, Jobs2, &Stats);
  EXPECT_EQ(Stats.FilterViewReuses, 1u);  // Job 1.
  EXPECT_EQ(Stats.FilterViewRebuilds, 2u); // Jobs 3 (changed) and 4.
  EXPECT_EQ(Stats.FilterDeltaOps, 0u);     // No slot delta.
  expectViewsMatchOracle(Filter, Master, Jobs2, Amp);
}

TEST(PersistentFilterTest, OversizedDeltaFallsBackToForcedRebuild) {
  BackfillSearch Backfill;
  PersistentSlotFilter Filter(Backfill);
  // A wide first master: 3 nodes x 16 spans. Collapsing it to a small
  // replacement produces a delta (48 removals + 12 additions) past the
  // splice budget of the 12-slot new master, so the reused view is
  // refiltered instead of spliced — and still matches the oracle.
  std::vector<Slot> Wide;
  for (int Node = 0; Node < 3; ++Node)
    for (int K = 0; K < 16; ++K) {
      const double Start = 100.0 * K + 10.0 * Node;
      Wide.emplace_back(Node, 1.0 + 0.5 * Node, 1.0, Start, Start + 50.0);
    }
  const SlotList Master{Wide};
  const Batch Jobs = {makeJob(1, 40.0, 2.0)};
  Filter.sync(Master, Jobs);

  std::vector<Slot> Slots;
  for (int Node = 0; Node < 3; ++Node)
    for (int K = 0; K < 4; ++K) {
      const double Start = 10000.0 + 100.0 * K + 10.0 * Node;
      Slots.emplace_back(Node, 1.0 + 0.5 * Node, 1.0, Start, Start + 50.0);
    }
  const SlotList Master2{Slots};

  SearchStats Stats;
  Filter.sync(Master2, Jobs, &Stats);
  EXPECT_EQ(Stats.FilterViewReuses, 0u);
  EXPECT_EQ(Stats.FilterViewRebuilds, 1u);
  EXPECT_EQ(Stats.FilterDeltaOps, 0u);
  expectViewsMatchOracle(Filter, Master2, Jobs, Backfill);
}

TEST(PersistentFilterTest, HorizonRolloverReadmitsAndClipsSlots) {
  AlpSearch Alp;
  PersistentSlotFilter Filter(Alp);
  const Batch Jobs = {makeJob(1, 40.0, 2.0)};

  // Iteration 1 horizon [0, 300): only early spans visible.
  std::vector<Slot> First = {Slot(0, 1.0, 1.0, 0.0, 80.0),
                             Slot(1, 1.5, 1.25, 50.0, 300.0)};
  const SlotList Master1{First};
  Filter.sync(Master1, Jobs);

  // Iteration 2 horizon [200, 500): the first span ages out, the
  // second is front-clipped (new key), and a late span rolls in.
  std::vector<Slot> Second = {Slot(1, 1.5, 1.25, 200.0, 300.0),
                              Slot(0, 1.0, 1.0, 350.0, 500.0)};
  const SlotList Master2{Second};
  SearchStats Stats;
  Filter.sync(Master2, Jobs, &Stats);
  EXPECT_EQ(Stats.FilterViewReuses, 1u);
  expectViewsMatchOracle(Filter, Master2, Jobs, Alp);
}

TEST(PersistentFilterTest, SweepDamageRollsBackBitwise) {
  AlpSearch Alp;
  PersistentSlotFilter Filter(Alp);
  const SlotList Master = makeMaster();
  const Batch Jobs = {makeJob(1, 40.0, 2.0), makeJob(2, 20.0, 2.0)};
  Filter.sync(Master, Jobs);

  // Snapshot the post-sync views.
  std::vector<SlotList> Snapshot;
  for (size_t J = 0; J < Filter.jobCount(); ++J)
    Snapshot.push_back(Filter.view(J));

  // First window consumes [0, 40) of node 0's first slot; the second
  // consumes [40, 60) of the *remainder piece* the first splice kept —
  // the nested case only reverse-order rollback undoes correctly.
  const Slot Original(0, 1.0, 1.0, 0.0, 80.0);
  WindowSlot M1{Original, 40.0, 40.0};
  Filter.applyDamage(Window(TimePoint(0.0), {M1}));
  const Slot Piece(0, 1.0, 1.0, 40.0, 80.0);
  WindowSlot M2{Piece, 20.0, 20.0};
  Filter.applyDamage(Window(TimePoint(40.0), {M2}));
  EXPECT_GT(Filter.journalSize(), 0u);
  EXPECT_NE(Filter.view(0).size(), Snapshot[0].size());

  Filter.rollbackSweepDamage();
  EXPECT_EQ(Filter.journalSize(), 0u);
  for (size_t J = 0; J < Filter.jobCount(); ++J)
    expectSameList(Filter.view(J), Snapshot[J], "rolled-back view");

  // Rolled-back views must sync cleanly into the next iteration.
  SearchStats Stats;
  Filter.sync(Master, Jobs, &Stats);
  EXPECT_EQ(Stats.FilterViewReuses, 2u);
  EXPECT_EQ(Stats.FilterDeltaOps, 0u);
  expectViewsMatchOracle(Filter, Master, Jobs, Alp);
}

TEST(PersistentFilterTest, DamageKeepMatchesFilteredCopyOfDamagedMaster) {
  // The satellite regression: applyDamage's Keep callback now uses the
  // admitsRemainder fast path; the admitted set must stay exactly what
  // a full refilter of the equally damaged master produces.
  AlpSearch Alp;
  PersistentSlotFilter Filter(Alp);
  SlotList Master = makeMaster();
  Batch Jobs = {makeJob(1, 40.0, 2.0), makeJob(2, 60.0, 1.2)};
  // A tight deadline makes remainder pieces fail the own-start deadline
  // check, exercising the span-dependent half of admitsRemainder.
  Jobs[0].Request.Deadline = 150.0;
  Filter.sync(Master, Jobs);

  const Slot Container(1, 1.5, 1.25, 10.0, 90.0);
  WindowSlot M{Container, 30.0, 37.5};
  const Window W(TimePoint(10.0), {M});
  ASSERT_TRUE(W.subtractFrom(Master));
  Filter.applyDamage(W);
  expectViewsMatchOracle(Filter, Master, Jobs, Alp);
  Filter.rollbackSweepDamage();
}

TEST(PersistentFilterTest, AdmitsRemainderAgreesWithAdmitsForAllAlgorithms) {
  // Contract: admitsRemainder(Piece) == admits(Piece) whenever Piece is
  // a sub-span of an admitted container. Sweep containers and piece
  // spans for every algorithm, including pieces that fail the length
  // or own-start deadline check.
  const AlpSearch Alp;
  const AmpSearch Amp;
  const BackfillSearch BackfillCap(PriceRuleKind::PerSlotCap);
  const BackfillSearch BackfillBudget(PriceRuleKind::JobBudget);
  const SlotSearchAlgorithm *Algos[] = {&Alp, &Amp, &BackfillCap,
                                        &BackfillBudget};

  ResourceRequest Req;
  Req.Volume = 30.0;
  Req.MinPerformance = 1.0;
  Req.MaxUnitPrice = 1.5;
  Req.Deadline = 120.0;

  for (const SlotSearchAlgorithm *Algo : Algos) {
    for (double Perf : {1.0, 2.0}) {
      for (double Price : {1.0, 1.5}) {
        const Slot Container(0, Perf, Price, 0.0, 100.0);
        if (!Algo->admits(Container, Req))
          continue;
        for (double PieceStart : {0.0, 20.0, 60.0, 95.0}) {
          for (double PieceEnd : {10.0, 40.0, 80.0, 100.0}) {
            if (PieceEnd <= PieceStart)
              continue;
            const Slot Piece(0, Perf, Price, PieceStart, PieceEnd);
            EXPECT_EQ(Algo->admitsRemainder(Piece, Req),
                      Algo->admits(Piece, Req))
                << Algo->name() << " piece [" << PieceStart << ", "
                << PieceEnd << ") perf " << Perf << " price " << Price;
          }
        }
      }
    }
  }
}
