//===-- sim/SlotList.cpp - Ordered list of vacant slots ------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/SlotList.h"

#include "sim/TraceIO.h"
#include "support/StateCodec.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

using namespace ecosched;

namespace {

/// One slot's span keyed for the per-node overlap sweep.
struct NodeSpanRef {
  int NodeId = -1;
  double Start = 0.0;
  double End = 0.0;
  size_t Idx = 0;
};

/// Finds a same-node pair overlapping by more than the tolerance, as
/// (lower, higher) original indices, or nullopt if per-node spans are
/// disjoint. Regrouped by (NodeId, Start) with exact comparisons and
/// swept once per node run: any overlapping pair also overlaps the
/// running farthest-reaching predecessor, so the adjacent check is
/// equivalent to the all-pairs scan at O(n log n) instead of O(n^2) —
/// validate() runs on every search entry point, so hot paths feel this
/// cost (docs/PERFORMANCE.md).
std::optional<std::pair<size_t, size_t>>
findNodeOverlap(const std::vector<Slot> &Slots) {
  std::vector<NodeSpanRef> Refs;
  Refs.reserve(Slots.size());
  for (size_t I = 0, E = Slots.size(); I < E; ++I)
    Refs.push_back({Slots[I].NodeId, Slots[I].Start, Slots[I].End, I});
  std::sort(Refs.begin(), Refs.end(),
            [](const NodeSpanRef &A, const NodeSpanRef &B) {
              if (A.NodeId != B.NodeId)
                return A.NodeId < B.NodeId;
              if (A.Start != B.Start)
                return exactLess(A.Start, B.Start);
              return A.Idx < B.Idx;
            });
  size_t MaxEndAt = 0;
  for (size_t I = 1, E = Refs.size(); I < E; ++I) {
    if (Refs[I].NodeId != Refs[I - 1].NodeId) {
      MaxEndAt = I;
      continue;
    }
    // Sorted by start within the node, so the overlap starts at I's
    // start; its length against the max-end predecessor bounds the
    // length against every predecessor.
    const double OverlapEnd = std::min(Refs[MaxEndAt].End, Refs[I].End);
    if (approxGt(OverlapEnd - Refs[I].Start, 0.0))
      return std::make_pair(std::min(Refs[MaxEndAt].Idx, Refs[I].Idx),
                            std::max(Refs[MaxEndAt].Idx, Refs[I].Idx));
    if (exactLess(Refs[MaxEndAt].End, Refs[I].End))
      MaxEndAt = I;
  }
  return std::nullopt;
}

} // namespace

SlotList::SlotList(std::vector<Slot> InitialSlots)
    : Slots(std::move(InitialSlots)) {
  std::stable_sort(Slots.begin(), Slots.end(), slotStartLess);
}

void SlotList::insert(const Slot &S) {
  if (approxLe(S.length(), 0.0))
    return;
  insertVerbatim(S);
}

void SlotList::eraseAt(std::vector<Slot>::iterator It) {
  if (Index.built())
    Index.noteErase(*It);
  Slots.erase(It);
}

void SlotList::splitAround(std::vector<Slot>::iterator It, TimePoint Start,
                           TimePoint End) {
  // Split the containing slot K into K1 and K2. The span may overshoot
  // K's bounds by up to TimeEpsilon (tolerant containment in the
  // callers), so test each piece's length before constructing the Slot
  // — the constructor rejects End < Start even by one ulp.
  const Slot K = *It;
  eraseAt(It);
  if (approxGt(Start.value() - K.Start, 0.0))
    insert(Slot(K.NodeId, K.Performance, K.UnitPrice, K.Start, Start.value()));
  if (approxGt(K.End - End.value(), 0.0))
    insert(Slot(K.NodeId, K.Performance, K.UnitPrice, End.value(), K.End));
}

void SlotList::buildIndexNow() {
  if (!Index.built())
    Index.buildFrom(Slots);
}

bool SlotList::subtract(int NodeId, TimePoint Start, TimePoint End) {
  ECOSCHED_CHECK(!exactLess(End, Start),
                 "reserved span on node {} ends before it starts: [{}, {})",
                 NodeId, Start.value(), End.value());
  if (approxLe(End - Start, Duration(0.0)))
    return true; // Nothing to reserve.
  if (!Index.built()) {
    // Below the threshold the linear scan's early break wins outright;
    // the two paths are bitwise-interchangeable, so this is purely a
    // performance cutoff.
    if (Slots.size() < IndexBuildThreshold)
      return subtractLinear(NodeId, Start, End);
    Index.buildFrom(Slots);
  }
  const auto Found = Index.findContainer(NodeId, Start, End);
  if (!Found)
    return false;
  // The index only stores (Start, End); re-find the canonical slot for
  // its performance/price fields. lower_bound lands on the first slot
  // with this (Start, NodeId, End) key — the same one the linear scan
  // reaches first.
  const Slot Key(NodeId, /*Performance=*/1.0, /*UnitPrice=*/0.0,
                 Found->Start, Found->End);
  const auto It =
      std::lower_bound(Slots.begin(), Slots.end(), Key, slotStartLess);
  ECOSCHED_CHECK(It != Slots.end() && It->NodeId == NodeId &&
                     It->Start == Found->Start && It->End == Found->End,
                 "interval index names a container missing from the "
                 "list: node {} [{}, {})",
                 NodeId, Found->Start, Found->End);
  splitAround(It, Start, End);
  return true;
}

bool SlotList::subtractLinear(int NodeId, TimePoint Start, TimePoint End) {
  ECOSCHED_CHECK(!exactLess(End, Start),
                 "reserved span on node {} ends before it starts: [{}, {})",
                 NodeId, Start.value(), End.value());
  if (approxLe(End - Start, Duration(0.0)))
    return true; // Nothing to reserve.
  for (auto It = Slots.begin(), E = Slots.end(); It != E; ++It) {
    if (approxGt(It->Start, Start.value()))
      break; // Slots are start-sorted: once a start meaningfully
             // exceeds the span's, no later slot can contain it either.
    if (It->NodeId != NodeId)
      continue;
    if (approxLt(It->End, End.value()))
      continue;
    splitAround(It, Start, End);
    return true;
  }
  return false;
}

bool SlotList::subtractExact(const Slot &Container, TimePoint Start,
                             TimePoint End) {
  return subtractExact(Container, Start, End,
                       [](const Slot &) { return true; });
}

bool SlotList::subtractExact(const Slot &Container, TimePoint Start,
                             TimePoint End,
                             FunctionRef<bool(const Slot &)> Keep) {
  ECOSCHED_CHECK(!exactLess(End, Start),
                 "reserved span on node {} ends before it starts: [{}, {})",
                 Container.NodeId, Start.value(), End.value());
  if (approxLe(End - Start, Duration(0.0)))
    return true; // Nothing to reserve.
  const auto It =
      std::lower_bound(Slots.begin(), Slots.end(), Container, slotStartLess);
  // Per-node disjointness makes the (Start, NodeId, End) key unique, so
  // an equal-key slot is the container or it is absent.
  if (It == Slots.end() || It->NodeId != Container.NodeId ||
      It->Start != Container.Start || It->End != Container.End)
    return false;
  const Slot K = *It;
  eraseAt(It);
  // Windows whose runtime is not representable exactly may end within
  // TimeEpsilon past K.End (coversFrom accepts that tolerantly), which
  // would make the Tail piece negative-length; the Slot constructor
  // aborts on that, so test the length before constructing. Found by
  // fuzz/WindowInvariantFuzzer.cpp.
  if (approxGt(Start.value() - K.Start, 0.0)) {
    const Slot Head(K.NodeId, K.Performance, K.UnitPrice, K.Start,
                    Start.value());
    if (Keep(Head))
      insert(Head);
  }
  if (approxGt(K.End - End.value(), 0.0)) {
    const Slot Tail(K.NodeId, K.Performance, K.UnitPrice, End.value(), K.End);
    if (Keep(Tail))
      insert(Tail);
  }
  return true;
}

bool SlotList::containsExact(const Slot &S) const {
  const auto It =
      std::lower_bound(Slots.begin(), Slots.end(), S, slotStartLess);
  return It != Slots.end() && It->NodeId == S.NodeId &&
         It->Start == S.Start && It->End == S.End;
}

bool SlotList::eraseExact(const Slot &S) {
  const auto It =
      std::lower_bound(Slots.begin(), Slots.end(), S, slotStartLess);
  // Per-node disjointness makes the (Start, NodeId, End) key unique, so
  // an equal-key slot is the one to remove or it is absent.
  if (It == Slots.end() || It->NodeId != S.NodeId || It->Start != S.Start ||
      It->End != S.End)
    return false;
  eraseAt(It);
  return true;
}

void SlotList::insertVerbatim(const Slot &S) {
  auto Pos = std::upper_bound(Slots.begin(), Slots.end(), S, slotStartLess);
  Slots.insert(Pos, S);
  if (Index.built())
    Index.noteInsert(S);
}

double SlotList::totalSpan() const {
  // Neumaier's variant of Kahan summation, as in RunningStats::sum():
  // the compensation picks up the low-order bits of whichever operand
  // is smaller in magnitude, so a huge slot does not erase small ones.
  double Total = 0.0;
  double Comp = 0.0;
  for (const Slot &S : Slots) {
    const double X = S.length();
    const double T = Total + X;
    if (std::abs(Total) >= std::abs(X))
      Comp += (Total - T) + X;
    else
      Comp += (X - T) + Total;
    Total = T;
  }
  return Total + Comp;
}

std::vector<Slot>::const_iterator
SlotList::scanEndBefore(TimePoint Limit) const {
  if (!Limit.isFinite())
    return Slots.end();
  const double Bound = Limit.value();
  return std::partition_point(
      Slots.begin(), Slots.end(),
      [Bound](const Slot &S) { return approxLt(S.Start, Bound); });
}

bool SlotList::checkIndexConsistency() const {
  return !Index.built() || Index.consistentWith(Slots);
}

bool SlotList::checkInvariants() const {
  for (size_t I = 1, E = Slots.size(); I < E; ++I)
    if (approxGt(Slots[I - 1].Start, Slots[I].Start))
      return false;
  for (const Slot &S : Slots)
    if (approxLe(S.length(), 0.0))
      return false; // Zero-length slots must not be stored.
  // Per-node disjointness via the sorted sweep (see findNodeOverlap).
  return !findNodeOverlap(Slots).has_value();
}

void SlotList::validate() const {
  for (size_t I = 1, E = Slots.size(); I < E; ++I)
    ECOSCHED_CHECK(!approxGt(Slots[I - 1].Start, Slots[I].Start),
                   "slot list out of order at index {}: start {} precedes "
                   "start {}",
                   I, Slots[I].Start, Slots[I - 1].Start);
  for (size_t I = 0, E = Slots.size(); I < E; ++I) {
    const Slot &A = Slots[I];
    ECOSCHED_CHECK(approxGt(A.length(), 0.0),
                   "zero-length slot stored at index {} on node {}: [{}, {})",
                   I, A.NodeId, A.Start, A.End);
  }
  if (const std::optional<std::pair<size_t, size_t>> Overlap =
          findNodeOverlap(Slots)) {
    const Slot &A = Slots[Overlap->first];
    const Slot &B = Slots[Overlap->second];
    ECOSCHED_CHECK(false,
                   "slots {} and {} overlap on node {}: [{}, {}) vs "
                   "[{}, {})",
                   Overlap->first, Overlap->second, A.NodeId, A.Start,
                   A.End, B.Start, B.End);
  }
  ECOSCHED_CHECK(checkIndexConsistency(),
                 "interval index diverged from the slot vector");
}

void SlotList::saveState(StateWriter &W) const {
  W.beginSection("slot-list");
  W.writeBlob("slots", writeSlotTrace(*this));
  W.endSection("slot-list");
}

bool SlotList::loadState(StateReader &R) {
  std::string Blob;
  if (!R.beginSection("slot-list") || !R.readBlob("slots", Blob) ||
      !R.endSection("slot-list"))
    return false;
  std::string ParseError;
  std::optional<SlotList> Parsed = parseSlotTrace(Blob, &ParseError);
  if (!Parsed) {
    R.fail("slot-list: " + ParseError);
    return false;
  }
  // The trace format tolerates zero-length slots (End == Start); a
  // SlotList never stores them, so a blob carrying one cannot have come
  // from saveState.
  for (const Slot &S : *Parsed) {
    if (!exactLess(S.Start, S.End)) {
      R.fail("slot-list: zero-length slot in snapshot");
      return false;
    }
  }
  if (!Parsed->checkInvariants()) {
    R.fail("slot-list: slots unsorted or overlapping within a node");
    return false;
  }
  // Canonicality: re-rendering must reproduce the blob byte for byte,
  // so the loaded list is provably the one saveState wrote and a second
  // save is a fixed point (non-canonical numeric text like "1.0" is
  // parseable but rejected here).
  if (writeSlotTrace(*Parsed) != Blob) {
    R.fail("slot-list: snapshot is not a canonical rendering");
    return false;
  }
  *this = std::move(*Parsed);
  return true;
}
