//===-- bench/ablation_domain_workload.cpp - Domain-shaped slot lists -----===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness ablation for the paper's evaluation methodology. Section 5
/// generates the ordered slot list *directly* ("instead of generating
/// the whole distributed system model"), which gives every slot its own
/// synthetic node. Here the same paired ALP-vs-AMP study runs on slot
/// lists published by a ComputingDomain — a machine room whose nodes
/// carry owner-local load, so each node contributes a *sequence* of
/// vacancy gaps and windows can reuse a node over time. If the paper's
/// conclusions depend on the flat-list simplification, they would break
/// here; they do not.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "sim/ComputingDomain.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>

using namespace ecosched;

namespace {

/// Builds a random machine room and publishes its vacancy over the
/// scheduling horizon: ~30 nodes, each with a stream of local tasks.
SlotList domainSlots(RandomGenerator &Rng) {
  ComputingDomain Domain;
  const int Nodes = static_cast<int>(Rng.uniformInt(28, 36));
  constexpr double Horizon = 700.0;
  for (int I = 0; I < Nodes; ++I) {
    const double Perf = Rng.uniformReal(1.0, 3.0);
    const double Price =
        Rng.uniformReal(0.75, 1.25) * std::pow(1.7, Perf);
    const int Id = Domain.addNode(Perf, Price);
    // Owner-local tasks leave 50..300-long vacancy gaps, echoing the
    // Section 5 slot-length range.
    double Cursor = Rng.uniformReal(0.0, 120.0);
    while (Cursor < Horizon) {
      const double Busy = Rng.uniformReal(15.0, 80.0);
      Domain.addLocalTask(Id, TimePoint(Cursor), TimePoint(std::min(Cursor + Busy, Horizon)));
      Cursor += Busy + Rng.uniformReal(80.0, 350.0);
    }
  }
  return Domain.vacantSlots(TimePoint(0.0), TimePoint(Horizon));
}

} // namespace

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_domain_workload",
                 "paired study on domain-published slot lists");
  const int64_t &Iterations =
      Args.addInt("iterations", 600, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Ablation: Section 5 flat slot lists vs ComputingDomain "
              "vacancy (time minimization)\n");
  std::printf("==========================================================="
              "============\n\n");

  TablePrinter Table;
  Table.addColumn("slot source", TablePrinter::AlignKind::Left);
  Table.addColumn("counted");
  Table.addColumn("slots/iter");
  Table.addColumn("ALP time");
  Table.addColumn("AMP time");
  Table.addColumn("ALP alts");
  Table.addColumn("AMP alts");
  Table.addColumn("AMP time gain %");

  for (const bool UseDomain : {false, true}) {
    ExperimentConfig Cfg;
    Cfg.Iterations = Iterations;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.Task = OptimizationTaskKind::MinimizeTime;
    if (UseDomain)
      Cfg.SlotSource = domainSlots;
    const ExperimentResult R = PairedExperiment(Cfg).run();

    Table.beginRow();
    Table.addCell(std::string(UseDomain ? "computing domain"
                                        : "flat list (paper)"));
    Table.addCell(static_cast<long long>(R.CountedIterations));
    Table.addCell(R.SlotsAll.mean(), 1);
    Table.addCell(R.Alp.JobTime.mean(), 2);
    Table.addCell(R.Amp.JobTime.mean(), 2);
    Table.addCell(R.Alp.AlternativesPerJob.mean(), 2);
    Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
    Table.addCell(R.Alp.JobTime.mean() > 0.0
                      ? 100.0 * (1.0 - R.Amp.JobTime.mean() /
                                           R.Alp.JobTime.mean())
                      : 0.0,
                  1);
  }
  Table.print(stdout);

  std::printf("\nreading: the qualitative conclusions (AMP finds several "
              "times more alternatives and schedules faster batches) "
              "carry over from the paper's flat synthetic slot lists to "
              "vacancy published by a simulated machine room with "
              "owner-local load.\n");
  return 0;
}
