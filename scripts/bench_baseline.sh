#!/usr/bin/env bash
# bench_baseline.sh - build the release micro-benchmarks and capture a
# JSON baseline for regression tracking.
#
# Usage: scripts/bench_baseline.sh [--out FILE] [--filter REGEX]
#                                  [--repetitions N] [--jobs N]
#                                  [--best-of N]
#
#   --out FILE        Output JSON path
#                     (default: bench/baselines/BENCH_10.json).
#   --filter REGEX    google-benchmark name filter (default: all).
#   --repetitions N   Repetitions per benchmark; with N > 1 only the
#                     mean/median/stddev aggregates are reported
#                     (default: 1).
#   --jobs N          Build parallelism (default: nproc).
#   --best-of N       Run the full suite N times and keep each
#                     benchmark's best (lowest real_time) entry --
#                     defends the baseline against erratic external
#                     load on shared hosts (default: 1).
#
# The captured file is the input to scripts/bench_compare.py; the
# committed baselines under bench/baselines/ are refreshed with this
# script whenever a PR intentionally shifts performance
# (docs/PERFORMANCE.md describes the workflow).

set -euo pipefail

cd "$(dirname "$0")/.."

OUT="bench/baselines/BENCH_10.json"
FILTER="."
REPS=1
BEST_OF=1
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --out)
      [[ $# -ge 2 ]] || { echo "error: --out needs an argument" >&2; exit 2; }
      OUT="$2"; shift 2 ;;
    --filter)
      [[ $# -ge 2 ]] || { echo "error: --filter needs an argument" >&2; exit 2; }
      FILTER="$2"; shift 2 ;;
    --repetitions)
      [[ $# -ge 2 ]] || { echo "error: --repetitions needs an argument" >&2; exit 2; }
      REPS="$2"; shift 2 ;;
    --jobs)
      [[ $# -ge 2 ]] || { echo "error: --jobs needs an argument" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    --best-of)
      [[ $# -ge 2 ]] || { echo "error: --best-of needs an argument" >&2; exit 2; }
      BEST_OF="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,23p' "$0"; exit 0 ;;
    *)
      echo "error: unknown argument '$1' (see --help)" >&2; exit 2 ;;
  esac
done

echo "== configure + build (release) =="
cmake --preset release
cmake --build build/release -j "$JOBS" --target micro_benchmarks

EXTRA_ARGS=()
if [[ "$REPS" -gt 1 ]]; then
  EXTRA_ARGS+=("--benchmark_repetitions=$REPS"
               "--benchmark_report_aggregates_only=true")
fi

mkdir -p "$(dirname "$OUT")"
if [[ "$BEST_OF" -le 1 ]]; then
  echo "== run micro_benchmarks (filter: $FILTER) =="
  build/release/bench/micro_benchmarks \
    --benchmark_filter="$FILTER" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    "${EXTRA_ARGS[@]}"
else
  # On machines with erratic external load (steal time on shared
  # hosts), a single capture can attribute a co-tenant's burst to an
  # arbitrary benchmark. Noise of that kind only ever inflates
  # timings, so the per-benchmark best across several full runs is the
  # faithful estimate of what the code actually costs.
  TMPDIR_BASE="$(mktemp -d)"
  trap 'rm -rf "$TMPDIR_BASE"' EXIT
  for ((RUN = 1; RUN <= BEST_OF; ++RUN)); do
    echo "== run micro_benchmarks (filter: $FILTER, pass $RUN/$BEST_OF) =="
    build/release/bench/micro_benchmarks \
      --benchmark_filter="$FILTER" \
      --benchmark_out="$TMPDIR_BASE/run$RUN.json" \
      --benchmark_out_format=json \
      "${EXTRA_ARGS[@]}" > /dev/null
  done
  python3 - "$OUT" "$TMPDIR_BASE"/run*.json <<'PYEOF'
import json, sys

out_path, *runs = sys.argv[1:]
merged = None
best = {}
for path in runs:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if merged is None:
        merged = data
    for entry in data["benchmarks"]:
        name = entry["name"]
        key = entry.get("real_time", float("inf"))
        if name not in best or key < best[name].get("real_time",
                                                    float("inf")):
            best[name] = entry
merged["benchmarks"] = [best[e["name"]] for e in merged["benchmarks"]]
with open(out_path, "w", encoding="utf-8") as handle:
    json.dump(merged, handle, indent=1)
    handle.write("\n")
print(f"merged per-benchmark best of {len(runs)} runs "
      f"({len(best)} benchmarks)")
PYEOF
fi

echo "bench_baseline.sh: baseline written to $OUT"
