//===-- support/Units.h - Unit-tagged Time/Money quantities --------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The epsilon-discipline layer: every time and money quantity in the
/// result-affecting layers is a zero-cost tagged wrapper over double —
///
///   TimePoint  an absolute instant on the simulation time axis
///   Duration   a time span (TimePoint - TimePoint)
///   Money      an amount of currency
///   Price      a rate: Money per unit time
///
/// The wrappers never change the representation (same bits, same
/// arithmetic, statically proven trivially copyable and double-sized
/// below), so adopting them is bitwise-free; what they change is what
/// the compiler lets you write:
///
///  - construction from raw double is explicit, so a bare number cannot
///    silently become an instant or a price at a call boundary;
///  - arithmetic preserves dimensions (TimePoint - TimePoint yields a
///    Duration, Price * Duration yields Money, TimePoint + TimePoint
///    does not compile);
///  - the relational operators are deleted: a boundary decision must go
///    through the tolerant approxEq/Le/Ge/Lt/Gt helpers, or through the
///    explicit exactLess/exactEq named escapes (sort keys and identity
///    checks, where an epsilon would break strict weak ordering);
///  - .value() is the escape hatch back to double, and the fplint rule
///    family (tools/archlint, docs/STATIC_ANALYSIS.md) flags raw
///    comparisons composed with it.
///
/// This header is also the canonical home of the tolerance convention
/// itself (TimeEpsilon and the double-typed approx helpers used by the
/// storage-level code in sim/Slot.h — the one file that keeps raw
/// double fields as the trace/codec representation).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SUPPORT_UNITS_H
#define ECOSCHED_SUPPORT_UNITS_H

#include <cmath>
#include <ostream>
#include <type_traits>

namespace ecosched {

/// Comparison tolerance for times and costs throughout the library.
/// Slot arithmetic only adds and subtracts values of comparable
/// magnitude (hundreds), so a fixed epsilon is adequate.
inline constexpr double TimeEpsilon = 1e-9;

/// \name Tolerant comparisons (double)
/// Every time/cost comparison in the library goes through these helpers
/// so the tolerance convention is stated once: two values within
/// TimeEpsilon of each other are the same instant / the same price.
/// Exact `<`/`==` on doubles remains correct — and required — inside
/// strict-weak-ordering comparators, where an epsilon would break
/// transitivity; such sites use exactLess/exactEq so the intent is
/// greppable and the fplint raw-comparison rule stays quiet.
/// @{

/// True if \p A and \p B are within \p Eps of each other.
inline bool approxEq(double A, double B, double Eps = TimeEpsilon) {
  return std::fabs(A - B) <= Eps;
}

/// True if \p A <= \p B up to tolerance (A is not meaningfully greater).
inline bool approxLe(double A, double B, double Eps = TimeEpsilon) {
  return A <= B + Eps;
}

/// True if \p A >= \p B up to tolerance (A is not meaningfully smaller).
inline bool approxGe(double A, double B, double Eps = TimeEpsilon) {
  return A >= B - Eps;
}

/// True if \p A is meaningfully less than \p B (by more than \p Eps).
inline bool approxLt(double A, double B, double Eps = TimeEpsilon) {
  return A < B - Eps;
}

/// True if \p A is meaningfully greater than \p B (by more than \p Eps).
inline bool approxGt(double A, double B, double Eps = TimeEpsilon) {
  return A > B + Eps;
}

/// Exact `<` under a name that documents the intent: strict-weak-order
/// sort keys and binary-search partition points, where tolerance would
/// break transitivity. The named form is the sanctioned way to compare
/// exactly; a bare relational on a time/price quantity is a lint
/// finding (fp-raw-compare).
inline bool exactLess(double A, double B) { return A < B; }

/// Exact `==` under a name that documents the intent: identity checks
/// (key matching, canonical round-trips), never admissibility.
inline bool exactEq(double A, double B) { return A == B; }

/// @}

/// Zero-cost tagged wrapper over double; the shared representation and
/// escape hatch of the four quantity types. Dimension-specific
/// arithmetic lives in free operators below, so ill-dimensioned
/// expressions fail to compile instead of compiling to nonsense.
template <class Tag> class UnitValue {
public:
  constexpr UnitValue() = default;
  /// Explicit on purpose: raw numbers must be visibly tagged at the
  /// boundary where they enter the typed world.
  explicit constexpr UnitValue(double V) : V(V) {}

  /// The raw double — the escape hatch back to storage and formatting.
  /// Comparisons composed with it are flagged by fplint.
  constexpr double value() const { return V; }

  /// True for representable (non-NaN, non-infinite) quantities.
  bool isFinite() const { return std::isfinite(V); }

  /// Relational operators are deleted: boundary decisions go through
  /// approxEq/Le/Ge/Lt/Gt; sort keys through exactLess.
  friend bool operator<(UnitValue, UnitValue) = delete;
  friend bool operator<=(UnitValue, UnitValue) = delete;
  friend bool operator>(UnitValue, UnitValue) = delete;
  friend bool operator>=(UnitValue, UnitValue) = delete;
  friend bool operator==(UnitValue, UnitValue) = delete;
  friend bool operator!=(UnitValue, UnitValue) = delete;

private:
  double V = 0.0;
};

namespace detail_units {
struct TimePointTag;
struct DurationTag;
struct MoneyTag;
struct PriceTag;
} // namespace detail_units

/// An absolute instant on the simulation time axis.
using TimePoint = UnitValue<detail_units::TimePointTag>;
/// A time span; the difference of two TimePoints.
using Duration = UnitValue<detail_units::DurationTag>;
/// An amount of currency.
using Money = UnitValue<detail_units::MoneyTag>;
/// A rate of payment: Money per unit time.
using Price = UnitValue<detail_units::PriceTag>;

// The wrappers are provably free: same size and layout as the double
// they wrap, trivially copyable (memcpy/StateCodec-compatible).
static_assert(sizeof(TimePoint) == sizeof(double) &&
                  sizeof(Duration) == sizeof(double) &&
                  sizeof(Money) == sizeof(double) &&
                  sizeof(Price) == sizeof(double),
              "unit wrappers must not change the representation");
static_assert(std::is_trivially_copyable_v<TimePoint> &&
                  std::is_trivially_copyable_v<Duration> &&
                  std::is_trivially_copyable_v<Money> &&
                  std::is_trivially_copyable_v<Price>,
              "unit wrappers must stay trivially copyable");

/// \name Dimension-preserving arithmetic
/// Exactly the operations that are physically meaningful; everything
/// else is a compile error. Each forwards to the identical double
/// expression, so adopting the types is bitwise-free.
/// @{

// Duration is a vector space over double.
inline constexpr Duration operator+(Duration A, Duration B) {
  return Duration(A.value() + B.value());
}
inline constexpr Duration operator-(Duration A, Duration B) {
  return Duration(A.value() - B.value());
}
inline constexpr Duration operator-(Duration A) { return Duration(-A.value()); }
inline constexpr Duration operator*(Duration A, double S) {
  return Duration(A.value() * S);
}
inline constexpr Duration operator*(double S, Duration A) {
  return Duration(S * A.value());
}
inline constexpr Duration operator/(Duration A, double S) {
  return Duration(A.value() / S);
}
inline constexpr double operator/(Duration A, Duration B) {
  return A.value() / B.value();
}

// TimePoint is an affine space over Duration.
inline constexpr TimePoint operator+(TimePoint T, Duration D) {
  return TimePoint(T.value() + D.value());
}
inline constexpr TimePoint operator+(Duration D, TimePoint T) {
  return TimePoint(D.value() + T.value());
}
inline constexpr TimePoint operator-(TimePoint T, Duration D) {
  return TimePoint(T.value() - D.value());
}
inline constexpr Duration operator-(TimePoint A, TimePoint B) {
  return Duration(A.value() - B.value());
}

// Money is a vector space over double.
inline constexpr Money operator+(Money A, Money B) {
  return Money(A.value() + B.value());
}
inline constexpr Money operator-(Money A, Money B) {
  return Money(A.value() - B.value());
}
inline constexpr Money operator-(Money A) { return Money(-A.value()); }
inline constexpr Money operator*(Money A, double S) {
  return Money(A.value() * S);
}
inline constexpr Money operator*(double S, Money A) {
  return Money(S * A.value());
}
inline constexpr Money operator/(Money A, double S) {
  return Money(A.value() / S);
}
inline constexpr double operator/(Money A, Money B) {
  return A.value() / B.value();
}

// Price bridges the two: Price * Duration = Money.
inline constexpr Price operator+(Price A, Price B) {
  return Price(A.value() + B.value());
}
inline constexpr Price operator-(Price A, Price B) {
  return Price(A.value() - B.value());
}
inline constexpr Price operator*(Price A, double S) {
  return Price(A.value() * S);
}
inline constexpr Price operator*(double S, Price A) {
  return Price(S * A.value());
}
inline constexpr Money operator*(Price P, Duration D) {
  return Money(P.value() * D.value());
}
inline constexpr Money operator*(Duration D, Price P) {
  return Money(D.value() * P.value());
}
inline constexpr Price operator/(Money M, Duration D) {
  return Price(M.value() / D.value());
}
inline constexpr double operator/(Price A, Price B) {
  return A.value() / B.value();
}

/// @}

/// \name Tolerant and exact comparisons (typed)
/// Same semantics as the double helpers, dimension-checked: comparing a
/// TimePoint to a Money does not compile. The epsilon stays a raw
/// double — it is a tolerance, not a quantity.
/// @{

template <class Tag>
inline bool approxEq(UnitValue<Tag> A, UnitValue<Tag> B,
                     double Eps = TimeEpsilon) {
  return approxEq(A.value(), B.value(), Eps);
}
template <class Tag>
inline bool approxLe(UnitValue<Tag> A, UnitValue<Tag> B,
                     double Eps = TimeEpsilon) {
  return approxLe(A.value(), B.value(), Eps);
}
template <class Tag>
inline bool approxGe(UnitValue<Tag> A, UnitValue<Tag> B,
                     double Eps = TimeEpsilon) {
  return approxGe(A.value(), B.value(), Eps);
}
template <class Tag>
inline bool approxLt(UnitValue<Tag> A, UnitValue<Tag> B,
                     double Eps = TimeEpsilon) {
  return approxLt(A.value(), B.value(), Eps);
}
template <class Tag>
inline bool approxGt(UnitValue<Tag> A, UnitValue<Tag> B,
                     double Eps = TimeEpsilon) {
  return approxGt(A.value(), B.value(), Eps);
}

/// Exact `<` for strict-weak-order sort keys over typed quantities.
template <class Tag> inline bool exactLess(UnitValue<Tag> A, UnitValue<Tag> B) {
  return A.value() < B.value();
}

/// Exact `==` for identity checks over typed quantities.
template <class Tag> inline bool exactEq(UnitValue<Tag> A, UnitValue<Tag> B) {
  return A.value() == B.value();
}

/// @}

/// Quantities print as their raw value (diagnostics and contract
/// messages); the dimension is evident from the message text.
template <class Tag>
inline std::ostream &operator<<(std::ostream &OS, UnitValue<Tag> V) {
  return OS << V.value();
}

} // namespace ecosched

#endif // ECOSCHED_SUPPORT_UNITS_H
