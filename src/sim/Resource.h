//===-- sim/Resource.h - Computational node model -----------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computational nodes of the distributed environment. Every node has a
/// relative performance rate P (Section 6 calls P=1 the "etalon" node) and
/// an owner-defined usage price per time unit.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_RESOURCE_H
#define ECOSCHED_SIM_RESOURCE_H

#include "support/Check.h"
#include "support/Units.h"

#include <string>
#include <vector>

namespace ecosched {

/// A single computational node (CPU, cluster slice) of the environment.
struct ResourceNode {
  /// Stable identifier; index into the owning ResourcePool.
  int Id = -1;
  /// Relative performance rate P; a task of volume V runs for V / P.
  double Performance = 1.0;
  /// Usage cost per time unit charged by the owner.
  double UnitPrice = 1.0;
  /// Optional human-readable name (used by the Fig. 2 reproduction).
  std::string Name;
};

/// Ordered collection of nodes. Node ids are dense indices so other
/// components can key per-node data by vectors.
class ResourcePool {
public:
  /// Adds a node and returns its id.
  // archlint-allow(fp-double-api): construction boundary — node specs
  // arrive as raw numbers from traces and generators, and no boundary
  // decision happens here; the typed world starts at the accessors.
  int addNode(double Performance, double UnitPrice,
              std::string Name = std::string()) {
    ECOSCHED_CHECK(Performance > 0.0,
                   "performance must be positive, got {}", Performance);
    ECOSCHED_CHECK(UnitPrice >= 0.0, "price must be non-negative, got {}",
                   UnitPrice);
    ResourceNode Node;
    Node.Id = static_cast<int>(Nodes.size());
    Node.Performance = Performance;
    Node.UnitPrice = UnitPrice;
    Node.Name = !Name.empty() ? std::move(Name)
                              : "node" + std::to_string(Node.Id);
    Nodes.push_back(std::move(Node));
    return Nodes.back().Id;
  }

  /// Node lookup; \p Id must be valid.
  const ResourceNode &node(int Id) const {
    ECOSCHED_CHECK(Id >= 0 && static_cast<size_t>(Id) < Nodes.size(),
                   "invalid node id {} for a pool of {} nodes", Id,
                   Nodes.size());
    return Nodes[static_cast<size_t>(Id)];
  }

  /// Owner-side price update (supply-and-demand pricing adjusts node
  /// rates between scheduling iterations; see core/DynamicPricing.h).
  void setUnitPrice(int Id, Price UnitPrice) {
    ECOSCHED_CHECK(Id >= 0 && static_cast<size_t>(Id) < Nodes.size(),
                   "invalid node id {} for a pool of {} nodes", Id,
                   Nodes.size());
    ECOSCHED_CHECK(UnitPrice.value() >= 0.0,
                   "price must be non-negative, got {}",
                   UnitPrice);
    Nodes[static_cast<size_t>(Id)].UnitPrice = UnitPrice.value();
  }

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  std::vector<ResourceNode>::const_iterator begin() const {
    return Nodes.begin();
  }
  std::vector<ResourceNode>::const_iterator end() const {
    return Nodes.end();
  }

private:
  std::vector<ResourceNode> Nodes;
};

} // namespace ecosched

#endif // ECOSCHED_SIM_RESOURCE_H
