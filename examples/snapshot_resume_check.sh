#!/usr/bin/env bash
# End-to-end crash-safe snapshot check through the CLI surface
# (docs/PERSISTENCE.md): simulate with periodic snapshots, resume the
# run from a mid-flight snapshot in a fresh process, and require the
# resumed run to converge on a byte-identical final snapshot and an
# identical final summary line (owner income printed at %.17g).
#
# Usage: snapshot_resume_check.sh <path-to-scheduler_cli>
set -euo pipefail

CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$CLI" --mode=generate --seed=42 \
       --slots="$DIR/s.trace" --jobs="$DIR/j.trace" > /dev/null

"$CLI" --mode=simulate --iterations=8 \
       --slots="$DIR/s.trace" --jobs="$DIR/j.trace" \
       --snapshot-every=4 --snapshot-out="$DIR/straight" \
       > "$DIR/straight.out"

# "Crash" after iteration 4: a fresh process resumes from the snapshot
# and must finish the remaining iterations bitwise-identically.
"$CLI" --mode=simulate --iterations=8 \
       --slots="$DIR/s.trace" --jobs="$DIR/j.trace" \
       --resume="$DIR/straight/iter_4.snap" \
       --snapshot-every=4 --snapshot-out="$DIR/resumed" \
       > "$DIR/resumed.out"

cmp "$DIR/straight/iter_8.snap" "$DIR/resumed/iter_8.snap"

tail -n 1 "$DIR/straight.out" > "$DIR/straight.sum"
tail -n 1 "$DIR/resumed.out" > "$DIR/resumed.sum"
diff "$DIR/straight.sum" "$DIR/resumed.sum"

# A truncated snapshot must be rejected with a diagnostic, not a crash.
head -c 64 "$DIR/straight/iter_4.snap" > "$DIR/broken.snap"
if "$CLI" --mode=simulate --iterations=8 \
          --slots="$DIR/s.trace" --jobs="$DIR/j.trace" \
          --resume="$DIR/broken.snap" > /dev/null 2> "$DIR/broken.err"; then
  echo "error: truncated snapshot was accepted" >&2
  exit 1
fi
grep -q "error:" "$DIR/broken.err"

echo "snapshot resume check passed"
