//===-- tests/core/AlternativeSearchScheduleFuzzTest.cpp - Fuzzed sweep ---===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism gate's adversarial-schedule stress for the sharded
/// alternative sweep: the speculate/commit path must stay bitwise-equal
/// to the textbook serial loop when the pool claims chunks in shuffled
/// orders with injected yields, across {1, 2, 8} threads and at least 8
/// distinct shuffle seeds. A result that depends on claim order would
/// be a latent nondeterminism bug the FIFO-order tests cannot see.
///
//===----------------------------------------------------------------------===//

#include "core/AlternativeSearch.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

constexpr uint64_t ShuffleSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34};

SlotList makeList(uint64_t Seed) {
  RandomGenerator Rng(Seed);
  return SlotGenerator(SlotGeneratorConfig{}).generate(Rng);
}

Batch makeBatch(uint64_t Seed) {
  RandomGenerator Rng(Seed ^ 0xa5a5a5a5u);
  return JobGenerator(JobGeneratorConfig{}).generate(Rng);
}

/// Exact equality on purpose: the contract is bitwise determinism, so
/// every double is compared with ==.
void expectSameWindows(const AlternativeSet &Expected,
                       const AlternativeSet &Actual,
                       const std::string &Label) {
  ASSERT_EQ(Expected.PerJob.size(), Actual.PerJob.size()) << Label;
  for (size_t J = 0; J < Expected.PerJob.size(); ++J) {
    ASSERT_EQ(Expected.PerJob[J].size(), Actual.PerJob[J].size())
        << Label << ": job " << J;
    for (size_t A = 0; A < Expected.PerJob[J].size(); ++A) {
      const Window &E = Expected.PerJob[J][A];
      const Window &G = Actual.PerJob[J][A];
      SCOPED_TRACE(Label + ": job " + std::to_string(J) + " alt " +
                   std::to_string(A));
      ASSERT_EQ(E.size(), G.size());
      ASSERT_EQ(E.startTime().value(), G.startTime().value());
      ASSERT_EQ(E.totalCost().value(), G.totalCost().value());
      for (size_t M = 0; M < E.size(); ++M) {
        ASSERT_EQ(E[M].Source.NodeId, G[M].Source.NodeId);
        ASSERT_EQ(E[M].Source.Performance, G[M].Source.Performance);
        ASSERT_EQ(E[M].Source.UnitPrice, G[M].Source.UnitPrice);
        ASSERT_EQ(E[M].Source.Start, G[M].Source.Start);
        ASSERT_EQ(E[M].Source.End, G[M].Source.End);
        ASSERT_EQ(E[M].Runtime, G[M].Runtime);
        ASSERT_EQ(E[M].Cost, G[M].Cost);
      }
    }
  }
}

} // namespace

TEST(AlternativeSearchParallelFuzzTest, ShardedMatchesSerialUnderShuffle) {
  AlpSearch Alp;
  AmpSearch Amp;
  const SlotSearchAlgorithm *Algos[] = {&Alp, &Amp};
  for (const SlotSearchAlgorithm *Algo : Algos) {
    for (const uint64_t Scenario : {4u, 9u}) {
      const SlotList List = makeList(Scenario);
      const Batch Jobs = makeBatch(Scenario);

      AlternativeSearch::Config Legacy;
      Legacy.UseFilter = false;
      const AlternativeSet Reference =
          AlternativeSearch(*Algo, Legacy).run(List, Jobs);

      for (const size_t Threads : {1u, 2u, 8u}) {
        for (const uint64_t Seed : ShuffleSeeds) {
          ThreadPool Pool(Threads,
                          ThreadPool::ScheduleFuzz{/*Enabled=*/true, Seed});
          AlternativeSearch::Config Cfg;
          Cfg.Pool = &Pool;
          const AlternativeSet Sharded =
              AlternativeSearch(*Algo, Cfg).run(List, Jobs);
          expectSameWindows(Reference, Sharded,
                            std::string(Algo->name()) + " scenario " +
                                std::to_string(Scenario) + " threads " +
                                std::to_string(Threads) + " shuffle seed " +
                                std::to_string(Seed));
        }
      }
    }
  }
}

TEST(AlternativeSearchParallelFuzzTest, StatsIndependentOfSchedule) {
  // Aggregated SearchStats fold deterministically too; a schedule-
  // dependent count would betray order-sensitive accounting even when
  // the windows happen to match.
  AlpSearch Alp;
  const SlotList List = makeList(11);
  const Batch Jobs = makeBatch(11);

  SearchStats Baseline;
  {
    ThreadPool Pool(1);
    AlternativeSearch::Config Cfg;
    Cfg.Pool = &Pool;
    AlternativeSearch(Alp, Cfg).run(List, Jobs, &Baseline);
  }
  for (const uint64_t Seed : ShuffleSeeds) {
    SCOPED_TRACE("shuffle seed " + std::to_string(Seed));
    ThreadPool Pool(8, ThreadPool::ScheduleFuzz{/*Enabled=*/true, Seed});
    AlternativeSearch::Config Cfg;
    Cfg.Pool = &Pool;
    SearchStats Stats;
    AlternativeSearch(Alp, Cfg).run(List, Jobs, &Stats);
    EXPECT_EQ(Baseline.SlotsExamined, Stats.SlotsExamined);
    EXPECT_EQ(Baseline.GroupPeak, Stats.GroupPeak);
    EXPECT_EQ(Baseline.GroupOperations, Stats.GroupOperations);
    EXPECT_EQ(Baseline.SpeculationRecomputes, Stats.SpeculationRecomputes);
  }
}
