file(REMOVE_RECURSE
  "../bench/fig5_series"
  "../bench/fig5_series.pdb"
  "CMakeFiles/fig5_series.dir/fig5_series.cpp.o"
  "CMakeFiles/fig5_series.dir/fig5_series.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
