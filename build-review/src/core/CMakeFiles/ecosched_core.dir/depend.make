# Empty dependencies file for ecosched_core.
# This may be replaced when dependencies are built.
