
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/BatchSearchPropertyTest.cpp" "tests/CMakeFiles/property_tests.dir/property/BatchSearchPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/BatchSearchPropertyTest.cpp.o.d"
  "/root/repo/tests/property/ModelFuzzTest.cpp" "tests/CMakeFiles/property_tests.dir/property/ModelFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/ModelFuzzTest.cpp.o.d"
  "/root/repo/tests/property/OptimizerPropertyTest.cpp" "tests/CMakeFiles/property_tests.dir/property/OptimizerPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/OptimizerPropertyTest.cpp.o.d"
  "/root/repo/tests/property/SearchPropertyTest.cpp" "tests/CMakeFiles/property_tests.dir/property/SearchPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/SearchPropertyTest.cpp.o.d"
  "/root/repo/tests/property/SubtractionPropertyTest.cpp" "tests/CMakeFiles/property_tests.dir/property/SubtractionPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/SubtractionPropertyTest.cpp.o.d"
  "/root/repo/tests/property/WorkloadShapeTest.cpp" "tests/CMakeFiles/property_tests.dir/property/WorkloadShapeTest.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/WorkloadShapeTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ecosched_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
