//===-- engine/VirtualOrganization.h - Layered VO facade -----------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterative VO loop of Section 1 as a thin facade over the engine
/// layers: the SimClock owns the iteration cadence and horizon math,
/// the JobQueue owns admission / attempts / budget policy, and the
/// ReservationLedger owns commit / release / completion accounting
/// against the ComputingDomain. Each iteration publishes the domain's
/// vacant slots over the look-ahead horizon, schedules the queue as a
/// batch, commits the chosen windows as reservations, postpones the
/// rest, and advances the clock — behaviorally identical to the
/// historical monolithic driver, but with every concern in its own
/// layer so drivers like MultiVoDriver can run many VOs concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_ENGINE_VIRTUALORGANIZATION_H
#define ECOSCHED_ENGINE_VIRTUALORGANIZATION_H

#include "core/Metascheduler.h"
#include "core/PersistentSlotFilter.h"
#include "engine/JobQueue.h"
#include "engine/ReservationLedger.h"
#include "engine/SimClock.h"
#include "sim/ComputingDomain.h"

#include <optional>
#include <string>

namespace ecosched {

class StateWriter;
class StateReader;

/// VO driver facade: domain + clock + queue + ledger.
class VirtualOrganization {
public:
  struct Config {
    /// Time between scheduling iterations (local schedules refresh).
    double IterationPeriod = 200.0;
    /// Look-ahead horizon published to the metascheduler.
    double HorizonLength = 800.0;
    /// Drop a job after this many failed attempts; 0 keeps it queued
    /// forever.
    int MaxAttempts = 0;
    /// Carry the per-job admissibility views across iterations in a
    /// PersistentSlotFilter, synced by deltas instead of rebuilt (the
    /// cross-iteration reuse of docs/PERFORMANCE.md). Results are
    /// bitwise-identical either way — false selects the from-scratch
    /// rebuild inside AlternativeSearch and serves as the differential
    /// oracle for the equivalence suites and twin-VO fuzzers. Ignored
    /// when the scheduler runs with UseFilter off (no views exist).
    bool ReuseFilter = true;
  };

  /// Report of one VO iteration.
  struct IterationReport {
    double Now = 0.0;
    size_t QueueLength = 0;
    IterationOutcome Outcome;
    size_t Committed = 0;
    size_t Dropped = 0;
  };

  /// \p Scheduler must outlive the VO.
  VirtualOrganization(ComputingDomain Domain,
                      const Metascheduler &Scheduler);
  VirtualOrganization(ComputingDomain Domain,
                      const Metascheduler &Scheduler, Config Cfg);

  /// Enqueues an external job for the next iteration.
  void submit(const Job &J);

  /// Injects a node failure at the current clock: the node stops
  /// publishing slots, its unfinished reservations are cancelled, and
  /// the affected external jobs are resubmitted at the front of the
  /// queue (Section 7 motivates guaranteed execution under "possible
  /// failures of computational nodes").
  /// \returns the number of jobs cancelled and requeued.
  size_t injectNodeFailure(int NodeId);

  /// Returns a failed node to service.
  void repairNode(int NodeId);

  /// VO-policy hook (Section 6: rho may vary "depending on the time of
  /// day, resource load level"): sets the AMP budget factor of every
  /// queued job before the next iteration.
  void setQueuedBudgetFactor(double Rho);

  /// User-initiated cancellation: removes the job from the queue, or
  /// releases its reservations if it is already placed but has not
  /// finished. Completed jobs are unaffected (their cost is owed).
  /// Returns true if a queued or running job was cancelled.
  bool cancelJob(int JobId);

  /// Runs one scheduling iteration at the current clock, commits the
  /// selected windows, and advances the clock by the iteration period.
  IterationReport runIteration();

  TimePoint now() const { return Clock.now(); }
  size_t queueLength() const { return Queue.size(); }
  const ComputingDomain &domain() const { return Domain; }

  /// Owner-side access between iterations (price updates, extra local
  /// tasks). Mutations must keep reservations intact.
  ComputingDomain &mutableDomain() { return Domain; }
  const std::vector<CompletedJob> &completed() const {
    return Ledger.completed();
  }
  const std::vector<int> &dropped() const { return Queue.dropped(); }

  /// Total owner income from completed external jobs.
  Money totalIncome() const { return Ledger.totalIncome(); }

  /// Read access to the engine layers (introspection, tests, drivers).
  const SimClock &clock() const { return Clock; }
  const JobQueue &queue() const { return Queue; }
  const ReservationLedger &ledger() const { return Ledger; }

  /// Cumulative persistent-filter reconciliation counters (view
  /// reuses, forced rebuilds, delta splices) across all iterations so
  /// far; all-zero when ReuseFilter is off. Each iteration's share is
  /// also folded into that iteration's Outcome.Stats.
  const SearchStats &filterStats() const { return FilterStats; }

  /// \name Crash-safe snapshots (docs/PERSISTENCE.md)
  /// The full live state of the VO — config, clock, queue, ledger,
  /// domain occupancy, persistent-filter shadow, and stats counters —
  /// as one StateCodec stream. Call between iterations only (never
  /// mid-runIteration); resuming a loaded VO replays the remaining
  /// iterations bitwise-identically to the uninterrupted run.
  /// @{

  /// Serializes every engine layer into \p W in a fixed order.
  void saveSnapshot(StateWriter &W) const;

  /// Restores a snapshot written by saveSnapshot into this VO. The
  /// scheduler reference is not part of the snapshot: the caller must
  /// attach a Metascheduler configured like the writer's (the filter
  /// view digest rejects a mismatched search algorithm). All layers
  /// load into temporaries first, so the VO is unchanged unless the
  /// whole snapshot validates; failures set \p R's diagnostic and
  /// never abort.
  bool loadSnapshot(StateReader &R);

  /// saveSnapshot rendered as a standalone snapshot text.
  std::string saveSnapshotText() const;

  /// Parses and loads a snapshot text. \returns false on any parse or
  /// validation failure, filling \p Error with the diagnostic.
  bool loadSnapshotText(const std::string &Text,
                        std::string *Error = nullptr);

  /// Writes saveSnapshotText() to \p Path via StateCodec's file layer.
  bool saveSnapshotFile(const std::string &Path,
                        std::string *Error = nullptr) const;

  /// Reads \p Path and loads it as a snapshot.
  bool loadSnapshotFile(const std::string &Path,
                        std::string *Error = nullptr);

  /// @}

private:
  ComputingDomain Domain;
  const Metascheduler &Scheduler;
  Config Cfg;
  SimClock Clock;
  JobQueue Queue;
  ReservationLedger Ledger;
  /// Cross-iteration admissibility views (engine-owned: the scheduler
  /// is shared across VOs and stays stateless). Engaged lazily on the
  /// first iteration that can reuse, so oracle-configured VOs carry no
  /// filter state at all.
  std::optional<PersistentSlotFilter> Filter;
  SearchStats FilterStats;
};

} // namespace ecosched

#endif // ECOSCHED_ENGINE_VIRTUALORGANIZATION_H
