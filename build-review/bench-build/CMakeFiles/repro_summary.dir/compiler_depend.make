# Empty compiler generated dependencies file for repro_summary.
# This may be replaced when dependencies are built.
