//===-- engine/SimClock.cpp - Iteration cadence and horizon math ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/SimClock.h"

#include "support/Check.h"
#include "support/StateCodec.h"

#include <cmath>

using namespace ecosched;

SimClock::SimClock(Duration IterationPeriod, Duration HorizonLength)
    : IterationPeriod(IterationPeriod.value()),
      HorizonLength(HorizonLength.value()) {
  // Exact sign tests on purpose (and mirrored by loadState): IEEE-754
  // comparison against the literal zero is exact, no epsilon needed.
  ECOSCHED_CHECK(this->IterationPeriod > 0.0,
                 "iteration period must be positive, got {}",
                 this->IterationPeriod);
  ECOSCHED_CHECK(this->HorizonLength > 0.0, "horizon must be positive, got {}",
                 this->HorizonLength);
}

void SimClock::saveState(StateWriter &W) const {
  W.beginSection("clock");
  W.writeDouble("period", IterationPeriod);
  W.writeDouble("horizon", HorizonLength);
  W.writeDouble("now", Clock);
  W.writeUInt("iterations", Iterations);
  W.endSection("clock");
}

bool SimClock::loadState(StateReader &R) {
  double Period = 0.0;
  double Horizon = 0.0;
  double Now = 0.0;
  uint64_t Iters = 0;
  if (!R.beginSection("clock") || !R.readDouble("period", Period) ||
      !R.readDouble("horizon", Horizon) || !R.readDouble("now", Now) ||
      !R.readUInt("iterations", Iters) || !R.endSection("clock"))
    return false;
  // The constructor CHECKs these invariants; the loader must reject the
  // same inputs gracefully so corrupt snapshots never reach an abort.
  if (!(Period > 0.0) || !std::isfinite(Period)) {
    R.fail("clock: iteration period must be positive and finite");
    return false;
  }
  if (!(Horizon > 0.0) || !std::isfinite(Horizon)) {
    R.fail("clock: horizon must be positive and finite");
    return false;
  }
  if (!std::isfinite(Now)) {
    R.fail("clock: current time must be finite");
    return false;
  }
  IterationPeriod = Period;
  HorizonLength = Horizon;
  Clock = Now;
  Iterations = static_cast<size_t>(Iters);
  return true;
}
