//===-- core/Limits.h - VO economic limits T* and B* ---------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VO policy limits of Section 2. The total slot-occupancy quota T*
/// (formula (2)) balances global and local job shares; the VO budget B*
/// (formula (3)) is the maximal owner income achievable under T*,
/// computed with the same backward-run machinery as the scheduling
/// optimization itself.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_LIMITS_H
#define ECOSCHED_CORE_LIMITS_H

#include "core/Optimizer.h"
#include "support/Units.h"

namespace ecosched {

/// How formula (2) is evaluated.
enum class QuotaPolicyKind {
  /// Literal formula (2): every term floor(t/l_i). The truncation makes
  /// batches whose alternatives share one execution time (uniform
  /// resources) quota-infeasible; Section 5's reduced counted-iteration
  /// rate stems from this, so the experiment harness uses this policy.
  FlooredTerms,
  /// sum_i mean_a t_a: the un-truncated quota. Free of the artifact;
  /// the default for production scheduling via Metascheduler.
  ExactMean,
};

/// Formula (2): T* = sum_i sum_{s_i} [t_i(s_i) / l_i], where l_i is the
/// number of alternatives of job i. Jobs without alternatives
/// contribute nothing.
double computeTimeQuota(
    const std::vector<std::vector<AlternativeValue>> &PerJob,
    QuotaPolicyKind Policy = QuotaPolicyKind::FlooredTerms);

/// Formula (3): B* = max total cost subject to total time <= \p TimeQuota,
/// solved with \p Optimizer.
///
/// \returns the budget, or a negative value if no combination satisfies
/// the quota (the scheduling iteration is then skipped, Section 5's
/// counting rule).
double computeVoBudget(
    const std::vector<std::vector<AlternativeValue>> &PerJob,
    Duration TimeQuota, const CombinationOptimizer &Optimizer);

} // namespace ecosched

#endif // ECOSCHED_CORE_LIMITS_H
