//===-- support/CommandLine.cpp - Minimal flag parser --------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace ecosched;

ArgParser::ArgParser(std::string ProgramName, std::string Description)
    : ProgramName(std::move(ProgramName)),
      Description(std::move(Description)) {}

int64_t &ArgParser::addInt(const std::string &Name, int64_t Default,
                           const std::string &Help) {
  ECOSCHED_CHECK(!findFlag(Name), "duplicate flag --{}", Name);
  IntValues.push_back(Default);
  Flags.push_back({Name, Help, std::to_string(Default), FlagKind::Int,
                   IntValues.size() - 1});
  return IntValues.back();
}

double &ArgParser::addReal(const std::string &Name, double Default,
                           const std::string &Help) {
  ECOSCHED_CHECK(!findFlag(Name), "duplicate flag --{}", Name);
  RealValues.push_back(Default);
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%g", Default);
  Flags.push_back(
      {Name, Help, Buffer, FlagKind::Real, RealValues.size() - 1});
  return RealValues.back();
}

bool &ArgParser::addBool(const std::string &Name, bool Default,
                         const std::string &Help) {
  ECOSCHED_CHECK(!findFlag(Name), "duplicate flag --{}", Name);
  BoolValues.push_back(Default);
  Flags.push_back({Name, Help, Default ? "true" : "false", FlagKind::Bool,
                   BoolValues.size() - 1});
  return BoolValues.back();
}

std::string &ArgParser::addString(const std::string &Name,
                                  std::string Default,
                                  const std::string &Help) {
  ECOSCHED_CHECK(!findFlag(Name), "duplicate flag --{}", Name);
  StringValues.push_back(std::move(Default));
  Flags.push_back({Name, Help, StringValues.back(), FlagKind::String,
                   StringValues.size() - 1});
  return StringValues.back();
}

int64_t &ArgParser::addThreads() {
  return addInt("threads", 0,
                "worker threads (0 = all hardware cores); results are "
                "identical for any value");
}

ArgParser::Flag *ArgParser::findFlag(const std::string &Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

bool ArgParser::setFlag(Flag &F, const std::string &Text) {
  char *End = nullptr;
  switch (F.Kind) {
  case FlagKind::Int: {
    const long long Value = std::strtoll(Text.c_str(), &End, 10);
    if (Text.empty() || *End != '\0') {
      std::fprintf(stderr, "%s: flag --%s expects an integer, got '%s'\n",
                   ProgramName.c_str(), F.Name.c_str(), Text.c_str());
      return false;
    }
    IntValues[F.Index] = Value;
    return true;
  }
  case FlagKind::Real: {
    const double Value = std::strtod(Text.c_str(), &End);
    if (Text.empty() || *End != '\0') {
      std::fprintf(stderr, "%s: flag --%s expects a number, got '%s'\n",
                   ProgramName.c_str(), F.Name.c_str(), Text.c_str());
      return false;
    }
    RealValues[F.Index] = Value;
    return true;
  }
  case FlagKind::Bool:
    if (Text == "true" || Text == "1" || Text.empty()) {
      BoolValues[F.Index] = true;
      return true;
    }
    if (Text == "false" || Text == "0") {
      BoolValues[F.Index] = false;
      return true;
    }
    std::fprintf(stderr, "%s: flag --%s expects true/false, got '%s'\n",
                 ProgramName.c_str(), F.Name.c_str(), Text.c_str());
    return false;
  case FlagKind::String:
    StringValues[F.Index] = Text;
    return true;
  }
  return false;
}

bool ArgParser::parse(int Argc, const char *const *Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printHelp();
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   ProgramName.c_str(), Arg.c_str());
      return false;
    }
    Arg.erase(0, 2);
    std::string Value;
    bool HasValue = false;
    if (const size_t Eq = Arg.find('='); Eq != std::string::npos) {
      Value = Arg.substr(Eq + 1);
      Arg.resize(Eq);
      HasValue = true;
    }
    Flag *F = findFlag(Arg);
    if (!F) {
      std::fprintf(stderr, "%s: unknown flag --%s (try --help)\n",
                   ProgramName.c_str(), Arg.c_str());
      return false;
    }
    if (!HasValue && F->Kind != FlagKind::Bool) {
      // Allow `--flag value` in addition to `--flag=value`.
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: flag --%s requires a value\n",
                     ProgramName.c_str(), Arg.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    if (!setFlag(*F, Value))
      return false;
  }
  return true;
}

void ArgParser::printHelp() const {
  std::printf("%s - %s\n\nFlags:\n", ProgramName.c_str(),
              Description.c_str());
  for (const Flag &F : Flags)
    std::printf("  --%-24s %s (default: %s)\n", F.Name.c_str(),
                F.Help.c_str(), F.DefaultText.c_str());
}
