//===-- bench/ablation_budget_policy.cpp - S from span vs volume ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E10 (DESIGN.md): the paper defines the AMP budget as
/// S = C*t*N but leaves "t" ambiguous for heterogeneous requests (see
/// DESIGN.md, "Model conventions"). We default to the reserved span
/// t = V/Pmin; this ablation compares against the volume-based reading
/// t = V, which inflates budgets of high-Pmin requests and shifts the
/// cost/time balance. Also sweeps the quota policy (paper-literal
/// floored formula (2) vs exact mean), showing its effect on the
/// counted-iteration rate.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_budget_policy",
                 "AMP budget derivation and quota policy ablation");
  const int64_t &Iterations =
      Args.addInt("iterations", 600, "iterations per configuration");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Ablation: AMP budget policy x quota policy "
              "(time minimization)\n");
  std::printf("============================================="
              "=============\n\n");

  TablePrinter Table;
  Table.addColumn("budget policy", TablePrinter::AlignKind::Left);
  Table.addColumn("quota policy", TablePrinter::AlignKind::Left);
  Table.addColumn("counted");
  Table.addColumn("AMP alts/job");
  Table.addColumn("AMP time");
  Table.addColumn("AMP cost");
  Table.addColumn("ALP time");

  for (const BudgetPolicyKind Budget :
       {BudgetPolicyKind::SpanBased, BudgetPolicyKind::VolumeBased}) {
    for (const QuotaPolicyKind Quota :
         {QuotaPolicyKind::FlooredTerms, QuotaPolicyKind::ExactMean}) {
      ExperimentConfig Cfg;
      Cfg.Iterations = Iterations;
      Cfg.Seed = static_cast<uint64_t>(Seed);
      Cfg.Task = OptimizationTaskKind::MinimizeTime;
      Cfg.Jobs.BudgetPolicy = Budget;
      Cfg.Quota = Quota;
      const ExperimentResult R = PairedExperiment(Cfg).run();

      Table.beginRow();
      Table.addCell(std::string(Budget == BudgetPolicyKind::SpanBased
                                    ? "span (C*N*V/Pmin)"
                                    : "volume (C*N*V)"));
      Table.addCell(std::string(Quota == QuotaPolicyKind::FlooredTerms
                                    ? "floored (paper)"
                                    : "exact mean"));
      Table.addCell(static_cast<long long>(R.CountedIterations));
      Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
      Table.addCell(R.Amp.JobTime.mean(), 2);
      Table.addCell(R.Amp.JobCost.mean(), 2);
      Table.addCell(R.Alp.JobTime.mean(), 2);
    }
  }
  Table.print(stdout);

  std::printf("\nreading: the volume-based budget is looser for "
              "high-Pmin requests, buying more alternatives and lower "
              "times at higher cost; the exact-mean quota lifts the "
              "floored formula (2) truncation and counts more "
              "iterations.\n");
  return 0;
}
