# Empty dependencies file for fig6_cost_minimization.
# This may be replaced when dependencies are built.
