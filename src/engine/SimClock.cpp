//===-- engine/SimClock.cpp - Iteration cadence and horizon math ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/SimClock.h"

#include "support/Check.h"

using namespace ecosched;

SimClock::SimClock(double IterationPeriod, double HorizonLength)
    : IterationPeriod(IterationPeriod), HorizonLength(HorizonLength) {
  ECOSCHED_CHECK(IterationPeriod > 0.0,
                 "iteration period must be positive, got {}",
                 IterationPeriod);
  ECOSCHED_CHECK(HorizonLength > 0.0, "horizon must be positive, got {}",
                 HorizonLength);
}
