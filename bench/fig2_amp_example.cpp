//===-- bench/fig2_amp_example.cpp - Reproduces Fig. 2 --------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2 (DESIGN.md): the AMP search example of Section 4 /
/// Fig. 2. Prints the initial environment (a), then the first-pass
/// windows W1/W2/W3 (b) next to the values the paper reports.
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "sim/GanttChart.h"
#include "sim/PaperExample.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("fig2_amp_example",
                 "Fig. 2: the Section 4 AMP search example");
  const std::string &SvgPath = Args.addString(
      "svg", "", "write the chart as an SVG figure to this path");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Fig. 2 reproduction: AMP search example (Section 4)\n");
  std::printf("====================================================\n\n");

  ComputingDomain Domain = buildPaperExampleDomain();
  const Batch Jobs = buildPaperExampleBatch();
  const SlotList Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));

  std::printf("(a) initial state: %zu vacant slots, 7 local tasks "
              "('#')\n\n%s\n",
              Slots.size(),
              renderDomainChart(Domain, PaperExampleHorizonStart,
                                PaperExampleHorizonEnd)
                  .c_str());

  struct PaperRef {
    const char *Window;
    double Start, End;
    const char *Nodes;
    double UnitCost;
  };
  // What Section 4 reports for the first pass.
  const PaperRef Refs[] = {
      {"W1", 150.0, 230.0, "cpu1+cpu4", 10.0},
      {"W2", 230.0, 260.0, "cpu1+cpu2+cpu4", 14.0},
      {"W3", 450.0, 500.0, "cpu3+cpu5", 5.0},
  };

  TablePrinter Table;
  Table.addColumn("window", TablePrinter::AlignKind::Left);
  Table.addColumn("measured span", TablePrinter::AlignKind::Left);
  Table.addColumn("paper span", TablePrinter::AlignKind::Left);
  Table.addColumn("measured nodes", TablePrinter::AlignKind::Left);
  Table.addColumn("paper nodes", TablePrinter::AlignKind::Left);
  Table.addColumn("unit cost");
  Table.addColumn("paper");

  AmpSearch Amp;
  SlotList Work = Slots;
  std::vector<Window> FirstPass;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const auto W = Amp.findWindow(Work, Jobs[I].Request);
    if (!W) {
      std::printf("job %d found no window!\n", Jobs[I].Id);
      return 1;
    }
    W->subtractFrom(Work);

    std::string NodesText;
    for (const WindowSlot &M : *W) {
      if (!NodesText.empty())
        NodesText += "+";
      NodesText += Domain.pool().node(M.Source.NodeId).Name;
    }
    char Span[64], RefSpan[64];
    std::snprintf(Span, sizeof(Span), "[%.0f, %.0f)", W->startTime().value(),
                  W->endTime().value());
    std::snprintf(RefSpan, sizeof(RefSpan), "[%.0f, %.0f)", Refs[I].Start,
                  Refs[I].End);
    Table.beginRow();
    Table.addCell(std::string(Refs[I].Window));
    Table.addCell(std::string(Span));
    Table.addCell(std::string(RefSpan));
    Table.addCell(NodesText);
    Table.addCell(std::string(Refs[I].Nodes));
    Table.addCell(W->unitPriceSum().value(), 0);
    Table.addCell(Refs[I].UnitCost, 0);
    FirstPass.push_back(*W);
  }

  std::printf("(b) first-pass alternatives vs the paper:\n\n");
  Table.print(stdout);

  std::vector<ChartWindow> Overlay;
  const char Fills[] = {'1', '2', '3'};
  for (size_t I = 0; I < FirstPass.size(); ++I)
    Overlay.push_back({&FirstPass[I], Fills[I % 3]});
  std::printf("\nchart with W1/W2/W3 overlaid as 1/2/3:\n\n%s",
              renderDomainChart(Domain, Overlay, PaperExampleHorizonStart,
                                PaperExampleHorizonEnd)
                  .c_str());

  if (!SvgPath.empty()) {
    const SvgDocument Doc =
        renderDomainSvg(Domain, Overlay, PaperExampleHorizonStart,
                        PaperExampleHorizonEnd);
    if (Doc.write(SvgPath))
      std::printf("\nwrote %s\n", SvgPath.c_str());
    else
      std::fprintf(stderr, "cannot write %s\n", SvgPath.c_str());
  }
  return 0;
}
