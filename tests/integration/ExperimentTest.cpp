//===-- tests/integration/ExperimentTest.cpp - Paired study smoke ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// Trimmed runs of the Section 5 paired study: the qualitative shape of
/// the paper's results must already show at a few hundred iterations —
/// AMP finds several times more alternatives, yields lower job times
/// under time minimization, at higher cost.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"

#include "sim/SlotGenerator.h"

#include <atomic>

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

ExperimentResult runTrimmed(OptimizationTaskKind Task, uint64_t Seed,
                            int64_t Iterations = 300) {
  ExperimentConfig Cfg;
  Cfg.Iterations = Iterations;
  Cfg.Seed = Seed;
  Cfg.Task = Task;
  Cfg.SeriesCapacity = 50;
  return PairedExperiment(Cfg).run();
}

} // namespace

TEST(ExperimentTest, CountsSomeIterations) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 1);
  EXPECT_EQ(R.TotalIterations, 300u);
  EXPECT_GT(R.CountedIterations, 10u);
  EXPECT_LT(R.CountedIterations, 300u); // Some iterations must drop.
  // Slot/batch sizes stay in the published ranges.
  EXPECT_GE(R.SlotsAll.min(), 120.0);
  EXPECT_LE(R.SlotsAll.max(), 150.0);
  EXPECT_GE(R.JobsAll.min(), 3.0);
  EXPECT_LE(R.JobsAll.max(), 7.0);
}

TEST(ExperimentTest, AmpFindsSeveralTimesMoreAlternatives) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 2);
  ASSERT_GT(R.CountedIterations, 0u);
  // Paper: 7.39 vs 34.28 per job (~4.6x). Require a clear factor.
  EXPECT_GT(R.Amp.AlternativesPerJob.mean(),
            2.0 * R.Alp.AlternativesPerJob.mean());
}

TEST(ExperimentTest, TimeMinimizationShape) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 3, 400);
  ASSERT_GT(R.CountedIterations, 20u);
  // Fig. 4(a): AMP's average job execution time is clearly lower.
  EXPECT_LT(R.Amp.JobTime.mean(), R.Alp.JobTime.mean());
  // Fig. 4(b): AMP pays more on average.
  EXPECT_GT(R.Amp.JobCost.mean(), R.Alp.JobCost.mean());
}

TEST(ExperimentTest, CostMinimizationShape) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeCost, 4, 400);
  ASSERT_GT(R.CountedIterations, 20u);
  // Fig. 6(b): AMP is still faster under cost minimization.
  EXPECT_LT(R.Amp.JobTime.mean(), R.Alp.JobTime.mean());
  // Fig. 6(a): ALP's cost advantage is small; allow anything from a tie
  // to a clear ALP win, but AMP must not be cheaper by a wide margin.
  EXPECT_GT(R.Amp.JobCost.mean(), 0.9 * R.Alp.JobCost.mean());
}

TEST(ExperimentTest, DeterministicForFixedSeed) {
  const ExperimentResult A =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 7, 100);
  const ExperimentResult B =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 7, 100);
  EXPECT_EQ(A.CountedIterations, B.CountedIterations);
  EXPECT_DOUBLE_EQ(A.Alp.JobTime.mean(), B.Alp.JobTime.mean());
  EXPECT_DOUBLE_EQ(A.Amp.JobCost.mean(), B.Amp.JobCost.mean());
  EXPECT_EQ(A.Amp.JobTimeSeries, B.Amp.JobTimeSeries);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  const ExperimentResult A =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 7, 100);
  const ExperimentResult B =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 8, 100);
  EXPECT_NE(A.Alp.JobTime.mean(), B.Alp.JobTime.mean());
}

TEST(ExperimentTest, SeriesCaptureRespectsCapacity) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 9, 200);
  EXPECT_LE(R.Alp.JobTimeSeries.size(), 50u);
  EXPECT_EQ(R.Alp.JobTimeSeries.size(), R.Alp.JobCostSeries.size());
  EXPECT_EQ(R.Alp.JobTimeSeries.size(),
            std::min<size_t>(50u, R.CountedIterations));
}

TEST(ExperimentTest, FailureAccountingAddsUp) {
  const ExperimentResult R =
      runTrimmed(OptimizationTaskKind::MinimizeTime, 10, 200);
  // Every uncounted iteration failed in at least one method.
  const size_t Uncounted = R.TotalIterations - R.CountedIterations;
  EXPECT_LE(Uncounted, R.Alp.CoverageFailures + R.Alp.QuotaInfeasible +
                           R.Amp.CoverageFailures +
                           R.Amp.QuotaInfeasible);
  // Per-method failures never exceed the total.
  EXPECT_LE(R.Alp.CoverageFailures + R.Alp.QuotaInfeasible,
            R.TotalIterations);
}

TEST(ExperimentTest, SlotSourceHookOverridesGenerator) {
  ExperimentConfig Cfg;
  Cfg.Iterations = 30;
  Cfg.Seed = 12;
  // Iterations run concurrently by default (Threads = 0), so the
  // SlotSource callable must be thread-safe.
  std::atomic<size_t> Calls{0};
  Cfg.SlotSource = [&Calls](RandomGenerator &Rng) {
    ++Calls;
    SlotGeneratorConfig Small;
    Small.MinSlotCount = Small.MaxSlotCount = 60;
    return SlotGenerator(Small).generate(Rng);
  };
  const ExperimentResult R = PairedExperiment(Cfg).run();
  EXPECT_EQ(Calls.load(), 30u);
  EXPECT_DOUBLE_EQ(R.SlotsAll.mean(), 60.0);
}

TEST(ExperimentTest, ThreadCountDoesNotChangeResults) {
  ExperimentConfig Sequential;
  Sequential.Iterations = 120;
  Sequential.Seed = 31;
  Sequential.SeriesCapacity = 30;
  ExperimentConfig Parallel = Sequential;
  Parallel.Threads = 4;
  const ExperimentResult A = PairedExperiment(Sequential).run();
  const ExperimentResult B = PairedExperiment(Parallel).run();
  EXPECT_EQ(A.TotalIterations, B.TotalIterations);
  EXPECT_EQ(A.CountedIterations, B.CountedIterations);
  EXPECT_DOUBLE_EQ(A.Alp.JobTime.mean(), B.Alp.JobTime.mean());
  EXPECT_DOUBLE_EQ(A.Alp.JobCost.mean(), B.Alp.JobCost.mean());
  EXPECT_DOUBLE_EQ(A.Amp.JobTime.mean(), B.Amp.JobTime.mean());
  EXPECT_DOUBLE_EQ(A.Amp.AlternativesPerJob.mean(),
                   B.Amp.AlternativesPerJob.mean());
  EXPECT_EQ(A.Amp.JobTimeSeries, B.Amp.JobTimeSeries);
  EXPECT_EQ(A.Alp.CoverageFailures, B.Alp.CoverageFailures);
}

TEST(ExperimentTest, ThreadedEarlyStopMatchesSequential) {
  ExperimentConfig Sequential;
  Sequential.Iterations = 500;
  Sequential.Seed = 33;
  Sequential.StopAfterCounted = 25;
  Sequential.SeriesCapacity = 25;
  ExperimentConfig Parallel = Sequential;
  Parallel.Threads = 3;
  const ExperimentResult A = PairedExperiment(Sequential).run();
  const ExperimentResult B = PairedExperiment(Parallel).run();
  EXPECT_EQ(A.TotalIterations, B.TotalIterations);
  EXPECT_EQ(A.CountedIterations, B.CountedIterations);
  EXPECT_EQ(A.Amp.JobTimeSeries, B.Amp.JobTimeSeries);
  EXPECT_DOUBLE_EQ(A.Alp.JobCost.mean(), B.Alp.JobCost.mean());
}

namespace {

/// Bitwise comparison of one method's aggregates: the determinism
/// contract promises identical results for any thread count, so plain
/// operator== on doubles (no tolerance) is the right check.
void expectMethodBitwiseEqual(const MethodAggregate &A,
                              const MethodAggregate &B) {
  EXPECT_EQ(A.JobTime.count(), B.JobTime.count());
  EXPECT_EQ(A.JobTime.mean(), B.JobTime.mean());
  EXPECT_EQ(A.JobTime.variance(), B.JobTime.variance());
  EXPECT_EQ(A.JobTime.sum(), B.JobTime.sum());
  EXPECT_EQ(A.JobTime.min(), B.JobTime.min());
  EXPECT_EQ(A.JobTime.max(), B.JobTime.max());
  EXPECT_EQ(A.JobCost.mean(), B.JobCost.mean());
  EXPECT_EQ(A.JobCost.sum(), B.JobCost.sum());
  EXPECT_EQ(A.AlternativesPerJob.mean(), B.AlternativesPerJob.mean());
  EXPECT_EQ(A.CoverageFailures, B.CoverageFailures);
  EXPECT_EQ(A.QuotaInfeasible, B.QuotaInfeasible);
  EXPECT_EQ(A.JobTimeSeries, B.JobTimeSeries);
  EXPECT_EQ(A.JobCostSeries, B.JobCostSeries);
}

} // namespace

TEST(ExperimentTest, BitwiseIdenticalAcrossThreadCounts) {
  ExperimentConfig Baseline;
  Baseline.Iterations = 150;
  Baseline.Seed = 21;
  Baseline.SeriesCapacity = 40;
  Baseline.Threads = 1;
  const ExperimentResult A = PairedExperiment(Baseline).run();
  EXPECT_EQ(A.ThreadsUsed, 1u);
  EXPECT_EQ(A.SurplusIterations, 0u);
  for (const size_t Threads : {size_t{2}, size_t{8}}) {
    ExperimentConfig Cfg = Baseline;
    Cfg.Threads = Threads;
    const ExperimentResult B = PairedExperiment(Cfg).run();
    EXPECT_EQ(B.ThreadsUsed, Threads);
    EXPECT_EQ(A.TotalIterations, B.TotalIterations);
    EXPECT_EQ(A.CountedIterations, B.CountedIterations);
    EXPECT_EQ(A.SlotsAll.mean(), B.SlotsAll.mean());
    EXPECT_EQ(A.SlotsCounted.mean(), B.SlotsCounted.mean());
    EXPECT_EQ(A.JobsAll.mean(), B.JobsAll.mean());
    EXPECT_EQ(A.JobsCounted.mean(), B.JobsCounted.mean());
    expectMethodBitwiseEqual(A.Alp, B.Alp);
    expectMethodBitwiseEqual(A.Amp, B.Amp);
  }
}

TEST(ExperimentTest, SurplusIterationsAccountsDiscardedWork) {
  ExperimentConfig Cfg;
  Cfg.Iterations = 500;
  Cfg.Seed = 33;
  Cfg.StopAfterCounted = 10;
  Cfg.Threads = 4;
  const ExperimentResult R = PairedExperiment(Cfg).run();
  // Folded and surplus iterations together cover exactly the computed
  // blocks; the parallel path discards at most one block (Threads * 8).
  EXPECT_EQ(R.CountedIterations, 10u);
  EXPECT_LT(R.SurplusIterations, 32u);
  EXPECT_EQ((R.TotalIterations + R.SurplusIterations) % 32, 0u);
}

TEST(ExperimentTest, ExactMeanQuotaCountsMoreIterations) {
  ExperimentConfig Floored;
  Floored.Iterations = 200;
  Floored.Seed = 11;
  ExperimentConfig Exact = Floored;
  Exact.Quota = QuotaPolicyKind::ExactMean;
  const ExperimentResult A = PairedExperiment(Floored).run();
  const ExperimentResult B = PairedExperiment(Exact).run();
  // Relaxing the floor can only help feasibility.
  EXPECT_GE(B.CountedIterations, A.CountedIterations);
}
