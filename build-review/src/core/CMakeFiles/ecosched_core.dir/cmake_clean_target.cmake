file(REMOVE_RECURSE
  "libecosched_core.a"
)
