//===-- fuzz/VoIterationFuzzer.cpp - VO engine lifecycle fuzzing ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Decodes fuzzer bytes into a small computing domain plus a random
// operation sequence against the engine's VirtualOrganization facade —
// submits, iterations, user cancellations, node failures and repairs,
// budget-factor changes, owner-local tasks, and price updates — and
// asserts, after every operation:
//
//   * the ledger income identity: totalIncome() equals the sequential
//     fold of the completed-job costs, bitwise (docs/CONCURRENCY.md's
//     fold-in-iteration-order contract);
//   * completed work is append-only (a cancellation or failure must
//     never reach into history);
//   * the clock never runs backwards and advances by exactly the
//     iteration period per iteration;
//   * failure/repair actually toggles node availability.
//
// The whole sequence is then replayed on a fresh VO and both full
// traces are compared bitwise — the engine must be a pure function of
// the operation sequence (replay-twice determinism), or no fuzzer
// finding could ever be reproduced from its input alone. A third run
// flips Config::ReuseFilter to the from-scratch oracle and must also
// match bitwise: the persistent filter's delta reconciliation may
// never change a single observable number, no matter which failure /
// cancellation / repricing interleaving the fuzzer invents.
//
//===----------------------------------------------------------------------===//

#include "FuzzInput.h"
#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "engine/VirtualOrganization.h"
#include "support/Check.h"

#include <cstdint>
#include <vector>

using namespace ecosched;
using fuzz::FuzzInput;

namespace {

constexpr double Grid = 0.25;

/// One decoded operation. Every field is fixed at decode time so the
/// replay run sees the identical sequence.
struct Op {
  enum Kind {
    Submit,
    RunIteration,
    CancelJob,
    FailNode,
    RepairNode,
    SetRho,
    AddLocalTask,
    SetPrice,
    KindCount,
  };
  Kind K = Submit;
  ResourceRequest Request; // Submit
  int Node = 0;            // FailNode / RepairNode / AddLocalTask / SetPrice
  int TargetJob = 0;       // CancelJob
  double Rho = 1.0;        // SetRho
  double Start = 0.0;      // AddLocalTask (offset from now)
  double Length = 1.0;     // AddLocalTask
  double Price = 1.0;      // SetPrice
};

struct Scenario {
  std::vector<double> NodePerformance;
  std::vector<double> NodePrice;
  VirtualOrganization::Config Cfg;
  std::vector<Op> Ops;
};

Scenario decodeScenario(FuzzInput &In) {
  Scenario S;
  const int Nodes = In.takeIntInRange(1, 4);
  for (int Node = 0; Node < Nodes; ++Node) {
    S.NodePerformance.push_back(In.takeQuantized(Grid, 4.0, Grid));
    S.NodePrice.push_back(In.takeQuantized(Grid, 3.0, Grid));
  }
  S.Cfg.IterationPeriod = In.takeQuantized(25.0, 200.0, 25.0);
  S.Cfg.HorizonLength = In.takeQuantized(100.0, 800.0, 25.0);
  S.Cfg.MaxAttempts = In.takeIntInRange(0, 3);

  int NextJobId = 0;
  while (!In.empty() && S.Ops.size() < 24) {
    Op O;
    O.K = static_cast<Op::Kind>(In.takeIntInRange(0, Op::KindCount - 1));
    switch (O.K) {
    case Op::Submit:
      O.Request.NodeCount = In.takeIntInRange(1, 3);
      O.Request.Volume = In.takeQuantized(10.0, 150.0, 2.5);
      O.Request.MinPerformance = In.takeQuantized(Grid, 2.0, Grid);
      O.Request.MaxUnitPrice = In.takeQuantized(Grid, 3.0, Grid);
      O.Request.BudgetFactor = 0.5 + 0.25 * In.takeIntInRange(0, 2);
      O.Request.BudgetPolicy = In.takeBool() ? BudgetPolicyKind::SpanBased
                                             : BudgetPolicyKind::VolumeBased;
      ++NextJobId;
      break;
    case Op::RunIteration:
      break;
    case Op::CancelJob:
      // Deliberately may target a job that never existed, was dropped,
      // or already completed; cancelJob must absorb all of those.
      O.TargetJob = In.takeIntInRange(0, NextJobId);
      break;
    case Op::FailNode:
    case Op::RepairNode:
      // Repeated failures and repairs of the same node are legal.
      O.Node = In.takeIntInRange(0, Nodes - 1);
      break;
    case Op::SetRho:
      O.Rho = 0.5 + 0.25 * In.takeIntInRange(0, 2);
      break;
    case Op::AddLocalTask:
      O.Node = In.takeIntInRange(0, Nodes - 1);
      O.Start = In.takeQuantized(0.0, 400.0, 25.0);
      O.Length = In.takeQuantized(25.0, 200.0, 25.0);
      break;
    case Op::SetPrice:
      O.Node = In.takeIntInRange(0, Nodes - 1);
      O.Price = In.takeQuantized(0.0, 3.0, Grid);
      break;
    case Op::KindCount:
      break;
    }
    S.Ops.push_back(O);
  }
  return S;
}

/// The ledger income identity, checked bitwise: totalIncome() promises
/// the sequential in-order fold of completed costs, and the completed
/// stream itself must be append-only.
void checkLedgerInvariants(const VirtualOrganization &V,
                           size_t &CompletedSoFar) {
  const std::vector<CompletedJob> &Done = V.completed();
  ECOSCHED_CHECK(Done.size() >= CompletedSoFar,
                 "completed history shrank from {} to {}", CompletedSoFar,
                 Done.size());
  CompletedSoFar = Done.size();
  double Fold = 0.0;
  for (const CompletedJob &C : Done)
    Fold += C.Cost;
  ECOSCHED_CHECK(Fold == V.totalIncome().value(),
                 "income {} is not the in-order fold {} of {} completed "
                 "jobs",
                 V.totalIncome().value(), Fold, Done.size());
}

/// Runs the scenario on a fresh VO and flattens everything observable
/// into one number stream for the bitwise replay comparison.
std::vector<double> runScenario(const Scenario &S, bool ReuseFilter) {
  const AmpSearch Amp;
  const DpOptimizer Dp;
  const Metascheduler Scheduler(Amp, Dp);

  ComputingDomain Domain;
  for (size_t Node = 0; Node < S.NodePerformance.size(); ++Node)
    Domain.addNode(S.NodePerformance[Node], S.NodePrice[Node]);
  VirtualOrganization::Config Cfg = S.Cfg;
  Cfg.ReuseFilter = ReuseFilter;
  VirtualOrganization V(std::move(Domain), Scheduler, Cfg);

  std::vector<double> Trace;
  size_t CompletedSoFar = 0;
  int NextJobId = 0;
  for (const Op &O : S.Ops) {
    const double Before = V.now().value();
    switch (O.K) {
    case Op::Submit: {
      const size_t QueuedBefore = V.queueLength();
      Job J;
      J.Id = NextJobId++;
      J.Request = O.Request;
      V.submit(J);
      ECOSCHED_CHECK(V.queueLength() == QueuedBefore + 1,
                     "submit of job {} left the queue at {} (was {})",
                     J.Id, V.queueLength(), QueuedBefore);
      break;
    }
    case Op::RunIteration: {
      const VirtualOrganization::IterationReport R = V.runIteration();
      ECOSCHED_CHECK(V.now().value() == Before + S.Cfg.IterationPeriod,
                     "iteration advanced the clock from {} to {}, period "
                     "{}",
                     Before, V.now().value(), S.Cfg.IterationPeriod);
      Trace.push_back(R.Now);
      Trace.push_back(static_cast<double>(R.QueueLength));
      Trace.push_back(static_cast<double>(R.Committed));
      Trace.push_back(static_cast<double>(R.Dropped));
      Trace.push_back(static_cast<double>(R.Outcome.Scheduled.size()));
      for (const ScheduledJob &P : R.Outcome.Scheduled) {
        Trace.push_back(static_cast<double>(P.JobId));
        Trace.push_back(P.W.startTime().value());
        Trace.push_back(P.W.endTime().value());
        Trace.push_back(P.W.totalCost().value());
      }
      break;
    }
    case Op::CancelJob:
      Trace.push_back(V.cancelJob(O.TargetJob) ? 1.0 : 0.0);
      break;
    case Op::FailNode:
      Trace.push_back(
          static_cast<double>(V.injectNodeFailure(O.Node)));
      ECOSCHED_CHECK(!V.domain().isNodeAvailable(O.Node),
                     "node {} still available after failure injection",
                     O.Node);
      break;
    case Op::RepairNode:
      V.repairNode(O.Node);
      ECOSCHED_CHECK(V.domain().isNodeAvailable(O.Node),
                     "node {} still failed after repair", O.Node);
      break;
    case Op::SetRho:
      V.setQueuedBudgetFactor(O.Rho);
      break;
    case Op::AddLocalTask:
      Trace.push_back(V.mutableDomain().addLocalTask(O.Node, TimePoint(Before + O.Start), TimePoint(Before + O.Start + O.Length))
                          ? 1.0
                          : 0.0);
      break;
    case Op::SetPrice:
      V.mutableDomain().setNodePrice(O.Node, Price(O.Price));
      break;
    case Op::KindCount:
      break;
    }
    ECOSCHED_CHECK(V.now().value() >= Before, "clock ran backwards: {} -> {}",
                   Before, V.now().value());
    checkLedgerInvariants(V, CompletedSoFar);
    Trace.push_back(V.totalIncome().value());
    Trace.push_back(static_cast<double>(V.queueLength()));
  }

  // Final state: the full completion history and drop list.
  for (const CompletedJob &C : V.completed()) {
    Trace.push_back(static_cast<double>(C.JobId));
    Trace.push_back(C.StartTime);
    Trace.push_back(C.EndTime);
    Trace.push_back(C.Cost);
    Trace.push_back(static_cast<double>(C.Attempts));
  }
  for (const int JobId : V.dropped())
    Trace.push_back(static_cast<double>(JobId));
  return Trace;
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  FuzzInput In(Data, Size);
  const Scenario S = decodeScenario(In);

  const std::vector<double> First = runScenario(S, /*ReuseFilter=*/true);
  const std::vector<double> Second = runScenario(S, /*ReuseFilter=*/true);
  // Replay-twice determinism, bitwise: the engine's behavior must be a
  // pure function of the operation sequence.
  ECOSCHED_CHECK(First.size() == Second.size(),
                 "replay produced {} trace entries, first run {}",
                 Second.size(), First.size());
  for (size_t I = 0; I < First.size(); ++I)
    ECOSCHED_CHECK(First[I] == Second[I],
                   "replay diverged at trace entry {}: {} vs {}", I,
                   First[I], Second[I]);

  // Twin-VO reuse-vs-rebuild: the from-scratch oracle must reproduce
  // the persistent-filter run bitwise (the trace holds no search
  // stats, the one field the paths legitimately differ in).
  const std::vector<double> Oracle =
      runScenario(S, /*ReuseFilter=*/false);
  ECOSCHED_CHECK(First.size() == Oracle.size(),
                 "rebuild oracle produced {} trace entries, reuse run {}",
                 Oracle.size(), First.size());
  for (size_t I = 0; I < First.size(); ++I)
    ECOSCHED_CHECK(First[I] == Oracle[I],
                   "reuse diverged from rebuild oracle at trace entry "
                   "{}: {} vs {}",
                   I, First[I], Oracle[I]);
  return 0;
}
