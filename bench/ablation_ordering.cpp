//===-- bench/ablation_ordering.cpp - Batch priority policies -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment: the paper takes batch priorities as given, but
/// the alternative search serves jobs in priority order and early jobs
/// see more vacancy. This ablation sweeps the classic ordering policies
/// over Section 5 workloads and reports batch coverage (fraction of
/// iterations where every job got an alternative) and the usual quality
/// measures under time minimization. ALP is the interesting case: its
/// per-slot price cap makes vacancy scarce, so the serving order
/// decides which jobs find windows (AMP covers every batch regardless).
///
//===----------------------------------------------------------------------===//

#include "core/AlpSearch.h"
#include "core/BatchOrdering.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("ablation_ordering",
                 "batch priority policies for the alternative search");
  const int64_t &Iterations =
      Args.addInt("iterations", 400, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Extension: batch ordering policies (ALP, time "
              "minimization)\n");
  std::printf("========================================================\n"
              "\n");

  const OrderingPolicyKind Policies[] = {
      OrderingPolicyKind::SubmissionOrder, OrderingPolicyKind::WidestFirst,
      OrderingPolicyKind::NarrowestFirst,
      OrderingPolicyKind::LargestWorkFirst,
      OrderingPolicyKind::SmallestWorkFirst};

  TablePrinter Table;
  Table.addColumn("policy", TablePrinter::AlignKind::Left);
  Table.addColumn("full coverage %");
  Table.addColumn("scheduled jobs");
  Table.addColumn("avg job time");
  Table.addColumn("avg job cost");
  Table.addColumn("alts/job");

  AlpSearch Alp;
  DpOptimizer Dp;
  SlotGenerator Slots;
  JobGenerator Jobs;

  for (const OrderingPolicyKind Policy : Policies) {
    RandomGenerator Master(static_cast<uint64_t>(Seed));
    Metascheduler Scheduler(Alp, Dp);
    size_t FullyCovered = 0, ScheduledJobs = 0;
    RunningStats JobTime, JobCost, AltsPerJob;

    for (int64_t Iter = 0; Iter < Iterations; ++Iter) {
      RandomGenerator Rng = Master.fork();
      const SlotList SlotsNow = Slots.generate(Rng);
      const Batch BatchNow = orderBatch(Jobs.generate(Rng), Policy);

      const IterationOutcome Out =
          Scheduler.runIteration(SlotsNow, BatchNow);
      if (Out.Alternatives.allCovered())
        ++FullyCovered;
      ScheduledJobs += Out.Scheduled.size();
      for (const ScheduledJob &S : Out.Scheduled) {
        JobTime.add(S.W.timeSpan().value());
        JobCost.add(S.W.totalCost().value());
        AltsPerJob.add(static_cast<double>(
            Out.Alternatives.PerJob[S.BatchIndex].size()));
      }
    }

    Table.beginRow();
    Table.addCell(std::string(orderingPolicyName(Policy)));
    Table.addCell(100.0 * static_cast<double>(FullyCovered) /
                      static_cast<double>(Iterations),
                  1);
    Table.addCell(static_cast<long long>(ScheduledJobs));
    Table.addCell(JobTime.mean(), 2);
    Table.addCell(JobCost.mean(), 2);
    Table.addCell(AltsPerJob.mean(), 2);
  }
  Table.print(stdout);

  std::printf("\nreading: under ALP's scarce admissible vacancy the "
              "serving order decides which jobs get windows; the "
              "coverage and throughput spread across policies "
              "quantifies the packing trade-offs the paper's fixed "
              "priority assumption hides. (Under AMP the budgets are "
              "loose enough that every ordering covers every batch.)\n");
  return 0;
}
