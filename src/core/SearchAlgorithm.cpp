//===-- core/SearchAlgorithm.cpp - Slot search interface ------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SearchAlgorithm.h"

using namespace ecosched;

// Virtual method anchor.
SlotSearchAlgorithm::~SlotSearchAlgorithm() = default;

bool SlotSearchAlgorithm::admits(const Slot &, const ResourceRequest &) const {
  return true;
}

bool SlotSearchAlgorithm::admitsRemainder(
    const Slot &Piece, const ResourceRequest &Request) const {
  // Re-running the static predicates on a remainder piece is redundant
  // for the shrink-invariant ones but never wrong.
  return admits(Piece, Request);
}

std::optional<Window>
SlotSearchAlgorithm::findWindowFiltered(const SlotList &Filtered,
                                        const ResourceRequest &Request,
                                        SearchStats *Stats) const {
  // A filtered list is a valid slot list; re-running the static
  // predicate checks on it is redundant but never wrong.
  return findWindow(Filtered, Request, Stats);
}
