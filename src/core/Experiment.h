//===-- core/Experiment.h - Section 5 paired simulation study ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation study of Section 5: repeated scheduling iterations,
/// each generating one ordered slot list and one job batch, then running
/// the alternative search with *both* ALP and AMP on the same slots and
/// optimizing the batch under the VO limits. An iteration is counted
/// only when both methods find at least one alternative for every job
/// and the limits admit a combination (the paper's counting rule).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_EXPERIMENT_H
#define ECOSCHED_CORE_EXPERIMENT_H

#include "core/Metascheduler.h"
#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"
#include "support/Statistics.h"

#include <cstdint>
#include <functional>

namespace ecosched {

/// Configuration of one experiment series.
struct ExperimentConfig {
  /// Simulated scheduling iterations (the paper runs 25000).
  int64_t Iterations = 25000;
  /// RNG seed; a seed fully determines the series.
  uint64_t Seed = 0x5eedULL;
  SlotGeneratorConfig Slots;
  JobGeneratorConfig Jobs;
  /// The optimization task of the study.
  OptimizationTaskKind Task = OptimizationTaskKind::MinimizeTime;
  /// Paper-literal floored quota by default (see QuotaPolicyKind).
  QuotaPolicyKind Quota = QuotaPolicyKind::FlooredTerms;
  /// Resolution of the DP constraint axis.
  size_t DpBins = 2048;
  /// Capture per-iteration mean job time/cost for the first N counted
  /// iterations (Fig. 5); 0 disables the capture.
  size_t SeriesCapacity = 0;
  /// Stop early once this many iterations were counted ("the first 300
  /// experiments" of Fig. 5); 0 runs all Iterations.
  size_t StopAfterCounted = 0;
  /// Optional replacement for the Section 5 slot generator: when set,
  /// every iteration draws its vacant-slot list from this source
  /// instead (e.g. a ComputingDomain with owner-local load, see
  /// bench/ablation_domain_workload). Iterations run concurrently when
  /// the resolved thread count exceeds 1, so the callable must be
  /// safe to invoke from several threads at once.
  // archlint-allow(std-function): owning storage held across run();
  // a non-owning FunctionRef would dangle once the configuring scope
  // returns.
  std::function<SlotList(RandomGenerator &)> SlotSource;
  /// Worker threads for the iteration loop, resolved through
  /// ThreadPool::resolveThreadCount: 0 (the default) uses the hardware
  /// concurrency, any other value is taken verbatim. Results are
  /// bitwise identical for any thread count: every iteration owns a
  /// pre-forked RNG and the aggregation folds iteration records in
  /// order on the calling thread (see docs/CONCURRENCY.md).
  size_t Threads = 0;
};

/// Aggregates for one search method (ALP or AMP).
struct MethodAggregate {
  /// Execution time of the chosen alternative, per scheduled job.
  RunningStats JobTime;
  /// Execution cost of the chosen alternative, per scheduled job.
  RunningStats JobCost;
  /// Alternatives found per job (counted iterations only).
  RunningStats AlternativesPerJob;
  /// Iterations where some job had no alternative under this method.
  size_t CoverageFailures = 0;
  /// Iterations where T* admitted no combination under this method.
  size_t QuotaInfeasible = 0;
  /// Fig. 5 series: per counted-iteration mean job time / cost.
  std::vector<double> JobTimeSeries;
  std::vector<double> JobCostSeries;
};

/// Result of a paired experiment series.
struct ExperimentResult {
  size_t TotalIterations = 0;
  /// Iterations where both methods covered the batch and both limit
  /// systems were feasible.
  size_t CountedIterations = 0;
  /// Iterations the parallel path computed but discarded because the
  /// StopAfterCounted early stop fired mid-chunk; they contribute to no
  /// aggregate (at most one chunk of surplus work, 0 when sequential).
  size_t SurplusIterations = 0;
  /// Resolved worker-thread count the series ran with (>= 1); benches
  /// log it in their run headers.
  size_t ThreadsUsed = 1;
  /// Slot list size per iteration, over all / over counted iterations.
  RunningStats SlotsAll;
  RunningStats SlotsCounted;
  /// Batch size per iteration, over all / over counted iterations.
  RunningStats JobsAll;
  RunningStats JobsCounted;
  MethodAggregate Alp;
  MethodAggregate Amp;
};

/// Runs the paired ALP-vs-AMP study.
class PairedExperiment {
public:
  explicit PairedExperiment(ExperimentConfig Cfg) : Cfg(Cfg) {}

  ExperimentResult run() const;

  const ExperimentConfig &config() const { return Cfg; }

private:
  ExperimentConfig Cfg;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_EXPERIMENT_H
