# Empty dependencies file for ablation_dynamic_pricing.
# This may be replaced when dependencies are built.
