//===-- tests/sim/GeneratorTest.cpp - Section 5 generator tests -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/JobGenerator.h"
#include "sim/SlotGenerator.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecosched;

/// Seed sweep: the published parameter ranges must hold for any stream.
class SlotGeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlotGeneratorSeedTest, RespectsPublishedRanges) {
  RandomGenerator Rng(GetParam());
  SlotGenerator Gen;
  const SlotList List = Gen.generate(Rng);

  EXPECT_GE(List.size(), 120u);
  EXPECT_LE(List.size(), 150u);
  EXPECT_TRUE(List.checkInvariants());

  for (const Slot &S : List) {
    EXPECT_GE(S.length(), 50.0);
    EXPECT_LE(S.length(), 300.0);
    EXPECT_GE(S.Performance, 1.0);
    EXPECT_LE(S.Performance, 3.0);
    const double MeanPrice = std::pow(1.7, S.Performance);
    EXPECT_GE(S.UnitPrice, 0.75 * MeanPrice - 1e-9);
    EXPECT_LE(S.UnitPrice, 1.25 * MeanPrice + 1e-9);
  }
}

TEST_P(SlotGeneratorSeedTest, StartGapsBounded) {
  RandomGenerator Rng(GetParam());
  SlotGenerator Gen;
  const SlotList List = Gen.generate(Rng);
  for (size_t I = 1; I < List.size(); ++I) {
    const double Gap = List[I].Start - List[I - 1].Start;
    EXPECT_GE(Gap, 0.0);
    EXPECT_LE(Gap, 10.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotGeneratorSeedTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u,
                                           0xdeadbeefu, 0x5eedu));

TEST(SlotGeneratorTest, DeterministicPerSeed) {
  SlotGenerator Gen;
  RandomGenerator A(77), B(77);
  const SlotList ListA = Gen.generate(A);
  const SlotList ListB = Gen.generate(B);
  ASSERT_EQ(ListA.size(), ListB.size());
  for (size_t I = 0; I < ListA.size(); ++I) {
    EXPECT_DOUBLE_EQ(ListA[I].Start, ListB[I].Start);
    EXPECT_DOUBLE_EQ(ListA[I].End, ListB[I].End);
    EXPECT_DOUBLE_EQ(ListA[I].Performance, ListB[I].Performance);
    EXPECT_DOUBLE_EQ(ListA[I].UnitPrice, ListB[I].UnitPrice);
  }
}

TEST(SlotGeneratorTest, SameStartFractionNearConfigured) {
  // Across many lists, ~40% of adjacent slots should share a start.
  SlotGenerator Gen;
  RandomGenerator Rng(101);
  size_t Shared = 0, Pairs = 0;
  for (int Round = 0; Round < 50; ++Round) {
    const SlotList List = Gen.generate(Rng);
    for (size_t I = 1; I < List.size(); ++I) {
      ++Pairs;
      Shared += List[I].Start == List[I - 1].Start;
    }
  }
  const double Fraction =
      static_cast<double>(Shared) / static_cast<double>(Pairs);
  EXPECT_NEAR(Fraction, 0.4, 0.03);
}

TEST(SlotGeneratorTest, DistinctNodeIds) {
  RandomGenerator Rng(5);
  const SlotList List = SlotGenerator().generate(Rng);
  for (size_t I = 0; I < List.size(); ++I)
    for (size_t J = I + 1; J < List.size(); ++J)
      ASSERT_NE(List[I].NodeId, List[J].NodeId);
}

TEST(SlotGeneratorTest, CustomConfigRespected) {
  SlotGeneratorConfig Cfg;
  Cfg.MinSlotCount = 10;
  Cfg.MaxSlotCount = 10;
  Cfg.MinLength = 5.0;
  Cfg.MaxLength = 6.0;
  Cfg.MinPerformance = 2.0;
  Cfg.MaxPerformance = 2.0;
  RandomGenerator Rng(7);
  const SlotList List = SlotGenerator(Cfg).generate(Rng);
  ASSERT_EQ(List.size(), 10u);
  for (const Slot &S : List) {
    EXPECT_GE(S.length(), 5.0);
    EXPECT_LE(S.length(), 6.0);
    EXPECT_DOUBLE_EQ(S.Performance, 2.0);
  }
}

/// Seed sweep over the job batch generator.
class JobGeneratorSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JobGeneratorSeedTest, RespectsPublishedRanges) {
  RandomGenerator Rng(GetParam());
  JobGenerator Gen;
  const Batch Jobs = Gen.generate(Rng);

  EXPECT_GE(Jobs.size(), 3u);
  EXPECT_LE(Jobs.size(), 7u);
  for (const Job &J : Jobs) {
    EXPECT_GE(J.Request.NodeCount, 1);
    EXPECT_LE(J.Request.NodeCount, 6);
    EXPECT_GE(J.Request.Volume, 50.0);
    EXPECT_LE(J.Request.Volume, 150.0);
    EXPECT_GE(J.Request.MinPerformance, 1.0);
    EXPECT_LE(J.Request.MinPerformance, 2.0);
    // Derived price cap: 1.1 * 1.7^MinPerformance (calibrated default).
    EXPECT_NEAR(J.Request.MaxUnitPrice,
                1.1 * std::pow(1.7, J.Request.MinPerformance), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobGeneratorSeedTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

TEST(JobGeneratorTest, AssignsSequentialIds) {
  RandomGenerator Rng(9);
  const Batch Jobs = JobGenerator().generate(Rng, /*FirstJobId=*/100);
  for (size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(Jobs[I].Id, 100 + static_cast<int>(I));
}

TEST(JobGeneratorTest, BudgetKnobsPropagate) {
  JobGeneratorConfig Cfg;
  Cfg.BudgetFactor = 0.8;
  Cfg.BudgetPolicy = BudgetPolicyKind::VolumeBased;
  RandomGenerator Rng(11);
  const Batch Jobs = JobGenerator(Cfg).generate(Rng);
  for (const Job &J : Jobs) {
    EXPECT_DOUBLE_EQ(J.Request.BudgetFactor, 0.8);
    EXPECT_EQ(J.Request.BudgetPolicy, BudgetPolicyKind::VolumeBased);
  }
}

TEST(RequestBudgetTest, PolicyFormulas) {
  ResourceRequest Req;
  Req.NodeCount = 3;
  Req.Volume = 100.0;
  Req.MinPerformance = 2.0;
  Req.MaxUnitPrice = 4.0;
  Req.BudgetFactor = 1.0;
  Req.BudgetPolicy = BudgetPolicyKind::SpanBased;
  // Span-based: 4 * 3 * (100/2) = 600.
  EXPECT_DOUBLE_EQ(Req.budget().value(), 600.0);
  Req.BudgetPolicy = BudgetPolicyKind::VolumeBased;
  // Volume-based: 4 * 3 * 100 = 1200.
  EXPECT_DOUBLE_EQ(Req.budget().value(), 1200.0);
  Req.BudgetFactor = 0.5;
  EXPECT_DOUBLE_EQ(Req.budget().value(), 600.0);
}
