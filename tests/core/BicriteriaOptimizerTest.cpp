//===-- tests/core/BicriteriaOptimizerTest.cpp - Criteria vector ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BicriteriaOptimizer.h"

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

/// job 0: (cost 10, time 50) / (cost 30, time 20)
/// job 1: (cost 5, time 40) / (cost 25, time 10)
BicriteriaProblem makeProblem(double Budget, double Quota,
                              double CostWeight) {
  BicriteriaProblem P;
  P.PerJob = {{{10.0, 50.0}, {30.0, 20.0}},
              {{5.0, 40.0}, {25.0, 10.0}}};
  P.Budget = Budget;
  P.TimeQuota = Quota;
  P.CostWeight = CostWeight;
  return P;
}

} // namespace

TEST(BicriteriaDpTest, PureCostWeightMatchesCostMinimization) {
  // Generous limits: pure cost weight picks the cheapest combination.
  const BicriteriaProblem P = makeProblem(1000.0, 1000.0, 1.0);
  const BicriteriaChoice C = BicriteriaDpOptimizer().solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.Cost, 15.0);
  EXPECT_DOUBLE_EQ(C.Time, 90.0);
}

TEST(BicriteriaDpTest, PureTimeWeightMatchesTimeMinimization) {
  const BicriteriaProblem P = makeProblem(1000.0, 1000.0, 0.0);
  const BicriteriaChoice C = BicriteriaDpOptimizer().solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.Time, 30.0);
  EXPECT_DOUBLE_EQ(C.Cost, 55.0);
}

TEST(BicriteriaDpTest, BothLimitsEnforcedSimultaneously) {
  // Budget forbids (1,1) [cost 55]; quota forbids (0,0) [time 90]:
  // only the mixed selections (cost 35, time 60) remain.
  const BicriteriaProblem P = makeProblem(40.0, 70.0, 0.5);
  const BicriteriaChoice C = BicriteriaDpOptimizer().solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.Cost, 35.0);
  EXPECT_DOUBLE_EQ(C.Time, 60.0);
  EXPECT_DOUBLE_EQ(C.budgetSlack(P), 5.0);  // D = B* - C.
  EXPECT_DOUBLE_EQ(C.quotaSlack(P), 10.0);  // I = T* - T.
}

TEST(BicriteriaDpTest, InfeasibleWhenLimitsCannotBothHold) {
  // No selection has cost <= 20 and time <= 50.
  const BicriteriaProblem P = makeProblem(20.0, 50.0, 0.5);
  EXPECT_FALSE(BicriteriaDpOptimizer().solve(P).Feasible);
}

TEST(BicriteriaDpTest, DegenerateInputsInfeasible) {
  BicriteriaProblem Empty;
  Empty.Budget = Empty.TimeQuota = 100.0;
  EXPECT_FALSE(BicriteriaDpOptimizer().solve(Empty).Feasible);

  BicriteriaProblem NoAlts = makeProblem(100.0, 100.0, 0.5);
  NoAlts.PerJob.push_back({});
  EXPECT_FALSE(BicriteriaDpOptimizer().solve(NoAlts).Feasible);

  BicriteriaProblem Negative = makeProblem(-1.0, 100.0, 0.5);
  EXPECT_FALSE(BicriteriaDpOptimizer().solve(Negative).Feasible);
}

TEST(BicriteriaDpTest, ExactBoundaryRecoveredByFloorPass) {
  // Limits equal to the mixed selection's exact totals.
  const BicriteriaProblem P = makeProblem(35.0, 60.0, 0.5);
  const BicriteriaChoice C = BicriteriaDpOptimizer().solve(P);
  ASSERT_TRUE(C.Feasible);
  EXPECT_DOUBLE_EQ(C.Cost, 35.0);
  EXPECT_DOUBLE_EQ(C.Time, 60.0);
}

TEST(ParetoFrontTest, EnumeratesNonDominatedSelections) {
  // Unconstrained: selections are (15,90), (35,60)x2, (55,30); the
  // front is (15,90), (35,60), (55,30).
  const BicriteriaProblem P = makeProblem(1000.0, 1000.0, 0.5);
  const auto Front = enumerateParetoFront(P);
  ASSERT_EQ(Front.size(), 3u);
  EXPECT_DOUBLE_EQ(Front[0].Cost, 15.0);
  EXPECT_DOUBLE_EQ(Front[0].Time, 90.0);
  EXPECT_DOUBLE_EQ(Front[1].Cost, 35.0);
  EXPECT_DOUBLE_EQ(Front[1].Time, 60.0);
  EXPECT_DOUBLE_EQ(Front[2].Cost, 55.0);
  EXPECT_DOUBLE_EQ(Front[2].Time, 30.0);
}

TEST(ParetoFrontTest, LimitsClipTheFront) {
  const BicriteriaProblem P = makeProblem(40.0, 70.0, 0.5);
  const auto Front = enumerateParetoFront(P);
  ASSERT_EQ(Front.size(), 1u);
  EXPECT_DOUBLE_EQ(Front[0].Cost, 35.0);
  EXPECT_DOUBLE_EQ(Front[0].Time, 60.0);
}

TEST(ParetoFrontTest, EmptyWhenInfeasible) {
  EXPECT_TRUE(enumerateParetoFront(makeProblem(20.0, 50.0, 0.5)).empty());
}

/// Property: for random instances, every scalarization optimum found by
/// the 2D DP is (a) within both limits and (b) not dominated by any
/// exact Pareto point by more than the grid tolerance.
class BicriteriaPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BicriteriaPropertyTest, DpTracksExactFront) {
  RandomGenerator Rng(GetParam());
  BicriteriaProblem P;
  const int Jobs = static_cast<int>(Rng.uniformInt(2, 4));
  for (int I = 0; I < Jobs; ++I) {
    std::vector<AlternativeValue> Alts;
    const int Count = static_cast<int>(Rng.uniformInt(2, 5));
    for (int A = 0; A < Count; ++A)
      Alts.push_back({Rng.uniformReal(10.0, 300.0),
                      Rng.uniformReal(20.0, 120.0)});
    P.PerJob.push_back(std::move(Alts));
  }
  P.Budget = Rng.uniformReal(200.0, 900.0);
  P.TimeQuota = Rng.uniformReal(100.0, 400.0);

  const auto Front = enumerateParetoFront(P);
  BicriteriaDpOptimizer Dp(256, 256);
  for (const double Weight : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    P.CostWeight = Weight;
    const BicriteriaChoice C = Dp.solve(P);
    if (Front.empty()) {
      EXPECT_FALSE(C.Feasible);
      continue;
    }
    if (!C.Feasible)
      continue; // Grid may reject borderline instances.
    EXPECT_LE(C.Cost, P.Budget + 1e-9);
    EXPECT_LE(C.Time, P.TimeQuota + 1e-9);
    // The DP score cannot beat the best scalarized front point.
    double BestScore = 1e18;
    for (const ParetoPoint &Point : Front)
      BestScore = std::min(BestScore, Weight * Point.Cost +
                                          (1.0 - Weight) * Point.Time);
    const double Score = Weight * C.Cost + (1.0 - Weight) * C.Time;
    EXPECT_GE(Score, BestScore - 1e-9);
    // Rigorous upper bound: any front point with at least n grid cells
    // of slack in both dimensions stays feasible under ceil rounding,
    // so the DP must score at least as well as the best such point.
    const double CostCell = P.Budget / 256.0;
    const double TimeCell = P.TimeQuota / 256.0;
    const double SlackNeededC =
        CostCell * static_cast<double>(P.PerJob.size()) + 1e-9;
    const double SlackNeededT =
        TimeCell * static_cast<double>(P.PerJob.size()) + 1e-9;
    double BestGuaranteed = 1e18;
    for (const ParetoPoint &Point : Front)
      if (P.Budget - Point.Cost >= SlackNeededC &&
          P.TimeQuota - Point.Time >= SlackNeededT)
        BestGuaranteed =
            std::min(BestGuaranteed, Weight * Point.Cost +
                                         (1.0 - Weight) * Point.Time);
    if (BestGuaranteed < 1e17) {
      EXPECT_LE(Score, BestGuaranteed + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BicriteriaPropertyTest,
                         ::testing::Range<uint64_t>(1, 17));
