//===-- tests/sim/SlotIntervalIndexTest.cpp - Interval index tests --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// The interval index behind SlotList::subtract must be bitwise
// transparent: the indexed probe selects exactly the slot the linear
// scan (SlotList::subtractLinear) selects, on valid and on
// invariant-violating lists alike, and stays consistent with the slot
// vector through every insert/subtract/subtractExact mutation —
// including the Keep re-admission path SlotFilter uses.
//
//===----------------------------------------------------------------------===//

#include "sim/SlotIntervalIndex.h"
#include "sim/SlotList.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

using namespace ecosched;

namespace {

Slot makeSlot(int Node, double Start, double End) {
  return Slot(Node, /*Performance=*/1.0, /*UnitPrice=*/1.0, Start, End);
}

/// A multi-slot-per-node list on a 0.25 grid: \p PerNode disjoint slots
/// on each of \p Nodes nodes, with pseudo-random gaps and lengths.
/// (SlotGenerator gives every slot its own node, so per-node index runs
/// with more than one span must be built by hand.)
std::vector<Slot> makeGridSlots(int Nodes, int PerNode, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<int> Steps(1, 16);
  std::vector<Slot> Slots;
  for (int Node = 0; Node < Nodes; ++Node) {
    double Cursor = 0.25 * Steps(Rng);
    for (int I = 0; I < PerNode; ++I) {
      const double Start = Cursor + 0.25 * Steps(Rng);
      const double End = Start + 0.25 * Steps(Rng);
      Slots.push_back(makeSlot(Node, Start, End));
      Cursor = End;
    }
  }
  return Slots;
}

void expectSameLists(const SlotList &A, const SlotList &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].NodeId, B[I].NodeId) << "slot " << I;
    EXPECT_EQ(A[I].Start, B[I].Start) << "slot " << I;
    EXPECT_EQ(A[I].End, B[I].End) << "slot " << I;
  }
}

} // namespace

TEST(SlotIntervalIndexTest, FindContainerMatchesLinearSemantics) {
  SlotIntervalIndex Index;
  const std::vector<Slot> Slots = {
      makeSlot(0, 0.0, 10.0), makeSlot(1, 2.0, 8.0), makeSlot(0, 20.0, 30.0)};
  std::vector<Slot> Sorted = Slots;
  std::stable_sort(Sorted.begin(), Sorted.end(), slotStartLess);
  Index.buildFrom(Sorted);
  ASSERT_TRUE(Index.built());

  const auto Hit = Index.findContainer(0, TimePoint(5.0), TimePoint(8.0));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Start, 0.0);
  EXPECT_EQ(Hit->End, 10.0);

  const auto Exact = Index.findContainer(0, TimePoint(20.0), TimePoint(30.0));
  ASSERT_TRUE(Exact.has_value());
  EXPECT_EQ(Exact->Start, 20.0);

  // A span bridging the node's hole has no container; nor does a span
  // on a node the index never saw.
  EXPECT_FALSE(Index.findContainer(0, TimePoint(5.0), TimePoint(25.0)).has_value());
  EXPECT_FALSE(Index.findContainer(7, TimePoint(5.0), TimePoint(8.0)).has_value());
  EXPECT_TRUE(Index.consistentWith(Sorted));
}

TEST(SlotIntervalIndexTest, IndexedSubtractMatchesLinearRandomized) {
  for (unsigned Seed = 0; Seed < 8; ++Seed) {
    SlotList Indexed(makeGridSlots(/*Nodes=*/5, /*PerNode=*/12, Seed));
    SlotList Linear = Indexed;
    // Below IndexBuildThreshold subtract() would take the linear
    // cutoff; force the index so the differential is real.
    Indexed.buildIndexNow();
    std::mt19937 Rng(Seed * 977 + 1);
    std::uniform_int_distribution<size_t> Pick(0, Indexed.size() - 1);
    std::uniform_int_distribution<int> Quarter(0, 4);
    for (int Op = 0; Op < 64 && !Indexed.empty(); ++Op) {
      // Derive the probe from a live slot so hits and near-miss
      // perturbations both occur.
      const Slot S = Indexed[Pick(Rng) % Indexed.size()];
      const double Lo = S.Start + 0.25 * Quarter(Rng);
      const double Hi = Lo + 0.25 * Quarter(Rng);
      const int Node = Quarter(Rng) == 0 ? S.NodeId + 1 : S.NodeId;
      const bool HitIndexed = Indexed.subtract(Node, TimePoint(Lo), TimePoint(Hi));
      const bool HitLinear = Linear.subtractLinear(Node, TimePoint(Lo), TimePoint(Hi));
      ASSERT_EQ(HitIndexed, HitLinear)
          << "seed " << Seed << " op " << Op << " node " << Node << " ["
          << Lo << ", " << Hi << ")";
      expectSameLists(Indexed, Linear);
      ASSERT_TRUE(Indexed.checkIndexConsistency());
    }
  }
}

TEST(SlotIntervalIndexTest, StaysConsistentThroughExactAndKeepPath) {
  SlotList List(makeGridSlots(/*Nodes=*/3, /*PerNode=*/6, /*Seed=*/42));
  List.buildIndexNow();
  ASSERT_TRUE(List.indexBuilt());
  ASSERT_TRUE(List.checkIndexConsistency());

  // subtractExact with a Keep filter: dropped remainder pieces must
  // leave the index too (the SlotFilter re-admission path).
  const Slot Container = List[0];
  const double Mid = (Container.Start + Container.End) / 2.0;
  ASSERT_TRUE(List.subtractExact(Container, TimePoint(Container.Start), TimePoint(Mid), [](const Slot &Piece) {
                                   return Piece.length() >= 1.0;
                                 }));
  EXPECT_TRUE(List.checkIndexConsistency());

  // Plain subtractExact and insert keep maintaining it incrementally.
  const Slot Next = List[0];
  ASSERT_TRUE(List.subtractExact(Next, TimePoint(Next.Start), TimePoint(Next.End)));
  List.insert(makeSlot(9, 100.0, 200.0));
  EXPECT_TRUE(List.checkIndexConsistency());
  ASSERT_TRUE(List.subtract(9, TimePoint(110.0), TimePoint(120.0)));
  EXPECT_TRUE(List.checkIndexConsistency());
  EXPECT_TRUE(List.checkInvariants());
}

TEST(SlotIntervalIndexTest, FallsBackExactlyOnInvariantViolatingList) {
  // Overlapping same-node slots (constructible via the sorting
  // constructor) break the sorted-ends guarantee: [0, 100) then
  // [10, 20) has decreasing ends. The index must detect this and still
  // answer exactly like the linear scan.
  const std::vector<Slot> Overlapping = {makeSlot(0, 0.0, 100.0),
                                         makeSlot(0, 10.0, 20.0)};
  SlotList Indexed(Overlapping);
  SlotList Linear(Overlapping);
  Indexed.buildIndexNow();
  EXPECT_FALSE(Indexed.checkInvariants());

  // The linear scan picks [0, 100) — first in master order — even
  // though [10, 20) also contains the span.
  ASSERT_TRUE(Indexed.subtract(0, TimePoint(12.0), TimePoint(18.0)));
  ASSERT_TRUE(Linear.subtractLinear(0, TimePoint(12.0), TimePoint(18.0)));
  expectSameLists(Indexed, Linear);
  EXPECT_TRUE(Indexed.checkIndexConsistency());

  // A miss must agree too.
  EXPECT_FALSE(Indexed.subtract(0, TimePoint(95.0), TimePoint(105.0)));
  EXPECT_FALSE(Linear.subtractLinear(0, TimePoint(95.0), TimePoint(105.0)));
  expectSameLists(Indexed, Linear);
}

TEST(SlotIntervalIndexTest, MissLeavesListAndIndexUntouched) {
  SlotList List({makeSlot(0, 0.0, 40.0), makeSlot(0, 60.0, 100.0),
                 makeSlot(1, 0.0, 100.0)});
  List.buildIndexNow();
  const SlotList Before = List;
  EXPECT_FALSE(List.subtract(0, TimePoint(30.0), TimePoint(70.0))); // Bridges node 0's hole.
  EXPECT_FALSE(List.subtract(2, TimePoint(10.0), TimePoint(20.0))); // Node not present.
  EXPECT_FALSE(List.subtract(1, TimePoint(90.0), TimePoint(110.0))); // Past the slot end.
  expectSameLists(List, Before);
  EXPECT_TRUE(List.checkIndexConsistency());
}

TEST(SlotIntervalIndexTest, LazyBuildHonorsSizeThreshold) {
  // Small lists answer subtract() with the linear cutoff and never pay
  // for an index; at IndexBuildThreshold the first probe builds it.
  SlotList Small(makeGridSlots(/*Nodes=*/2, /*PerNode=*/4, /*Seed=*/3));
  ASSERT_LT(Small.size(), SlotList::IndexBuildThreshold);
  const Slot S = Small[0];
  EXPECT_TRUE(Small.subtract(S.NodeId, TimePoint(S.Start), TimePoint(S.End)));
  EXPECT_FALSE(Small.indexBuilt());

  const int PerNode =
      static_cast<int>(SlotList::IndexBuildThreshold) / 8 + 1;
  SlotList Large(makeGridSlots(/*Nodes=*/8, PerNode, /*Seed=*/4));
  ASSERT_GE(Large.size(), SlotList::IndexBuildThreshold);
  EXPECT_FALSE(Large.indexBuilt());
  EXPECT_FALSE(Large.subtract(0, TimePoint(1e6), TimePoint(1e6 + 1.0))); // Miss, but builds.
  EXPECT_TRUE(Large.indexBuilt());
  EXPECT_TRUE(Large.checkIndexConsistency());
}

TEST(SlotIntervalIndexTest, CopiesCarryIndependentIndexes) {
  // Copies carry the index along (see SlotList.h), and mutations on
  // either side never leak to the other.
  SlotList Master(makeGridSlots(/*Nodes=*/2, /*PerNode=*/4, /*Seed=*/7));
  Master.buildIndexNow();
  SlotList Copy = Master;
  ASSERT_TRUE(Copy.indexBuilt());
  const Slot S = Copy[0];
  ASSERT_TRUE(Copy.subtract(S.NodeId, TimePoint(S.Start), TimePoint(S.End)));
  EXPECT_TRUE(Copy.checkIndexConsistency());
  EXPECT_FALSE(Copy.containsExact(S));
  // The master must be unaffected by the copy's mutation.
  EXPECT_TRUE(Master.checkIndexConsistency());
  EXPECT_TRUE(Master.containsExact(S));

  // Copy-assignment over a probed list replaces its index wholesale.
  SlotList Assigned(makeGridSlots(2, 4, /*Seed=*/8));
  Assigned.buildIndexNow();
  Assigned = Master;
  expectSameLists(Assigned, Master);
  const Slot T = Assigned[0];
  ASSERT_TRUE(Assigned.subtract(T.NodeId, TimePoint(T.Start), TimePoint(T.End)));
  EXPECT_TRUE(Assigned.checkIndexConsistency());
  EXPECT_TRUE(Master.containsExact(T));
}

TEST(SlotIntervalIndexTest, CompactThresholdSweepIsAnswerInvariant) {
  // The compaction trigger is a pure performance knob: for any
  // threshold, every probe answer and the consistency oracle must
  // match the default-threshold index through a churn of erases and
  // re-inserts. Threshold 1 compacts on every mutation; a huge
  // threshold never compacts until the churn ends.
  const std::vector<Slot> Base =
      makeGridSlots(/*Nodes=*/6, /*PerNode=*/24, /*Seed=*/11);
  for (const size_t Threshold :
       {size_t(1), size_t(4), SlotIntervalIndex::DefaultCompactThreshold,
        size_t(100000)}) {
    SlotIntervalIndex Index;
    Index.setCompactThreshold(Threshold);
    EXPECT_EQ(Index.compactThreshold(), Threshold);
    Index.buildFrom(Base);

    std::vector<Slot> Mirror = Base;
    std::mt19937 Rng(29);
    for (int Step = 0; Step < 96; ++Step) {
      const size_t Pick = Rng() % Mirror.size();
      const Slot S = Mirror[Pick];
      Index.noteErase(S);
      Mirror.erase(Mirror.begin() + static_cast<long>(Pick));
      ASSERT_TRUE(Index.consistentWith(Mirror))
          << "threshold " << Threshold << " step " << Step;
      if (Step % 3 != 0) { // Re-insert two of every three.
        Index.noteInsert(S);
        const auto Pos = std::lower_bound(
            Mirror.begin(), Mirror.end(), S, [](const Slot &A,
                                                const Slot &B) {
              return slotStartLess(A, B);
            });
        Mirror.insert(Pos, S);
        ASSERT_TRUE(Index.consistentWith(Mirror));
      }
      const Slot &Probe = Mirror[Rng() % Mirror.size()];
      const auto Hit =
          Index.findContainer(Probe.NodeId, TimePoint(Probe.Start), TimePoint(Probe.End));
      ASSERT_TRUE(Hit.has_value());
      EXPECT_EQ(Hit->Start, Probe.Start);
      EXPECT_EQ(Hit->End, Probe.End);
    }
  }

  // Clamp: zero is illegal (compaction would fire forever), so the
  // setter floors it at 1.
  SlotIntervalIndex Clamped;
  Clamped.setCompactThreshold(0);
  EXPECT_EQ(Clamped.compactThreshold(), 1u);
}
