//===-- core/SlotFilter.cpp - Per-job admissible slot views ---------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/SlotFilter.h"

using namespace ecosched;

namespace {

/// True if a deadline-bounded scan can reach \p S at all: the search
/// loops stop at SlotList::scanEndBefore(Deadline), so slots past that
/// horizon can never influence a window and need not enter a view.
/// Views and filteredCopy() apply the same cutoff, and applyDamage()'s
/// Keep filter repeats it on remainder pieces, so the view invariant
/// (view == filteredCopy of the equally damaged master) is preserved.
bool inScanHorizon(const Slot &S, const ResourceRequest &Request) {
  return approxLt(S.Start, Request.Deadline);
}

} // namespace

SlotFilter::SlotFilter(const SlotList &Master, const Batch &Jobs,
                       const SlotSearchAlgorithm &Algo)
    : Algo(Algo) {
  Requests.reserve(Jobs.size());
  Views.reserve(Jobs.size());
  for (const Job &J : Jobs) {
    Requests.push_back(J.Request);
    Views.push_back(filteredCopy(Master, J.Request, Algo));
  }
}

void SlotFilter::applyDamage(const Window &W) {
  const double Start = W.startTime();
  for (size_t J = 0, E = Views.size(); J != E; ++J) {
    const ResourceRequest &Request = Requests[J];
    const auto Keep = [&](const Slot &Piece) {
      return inScanHorizon(Piece, Request) && Algo.admits(Piece, Request);
    };
    for (const WindowSlot &M : W)
      // A false return means this view never held the member slot
      // (inadmissible for job J), so there is nothing to update.
      Views[J].subtractExact(M.Source, Start, Start + M.Runtime, Keep);
  }
}

bool SlotFilter::windowIntact(size_t J, const Window &W) const {
  for (const WindowSlot &M : W)
    if (!Views[J].containsExact(M.Source))
      return false;
  return true;
}

SlotList SlotFilter::filteredCopy(const SlotList &List,
                                  const ResourceRequest &Request,
                                  const SlotSearchAlgorithm &Algo) {
  std::vector<Slot> Kept;
  // O(log n + k) with a finite deadline: only the prefix a
  // deadline-bounded scan can reach is tested for admissibility.
  const auto E = List.scanEndBefore(Request.Deadline);
  for (auto It = List.begin(); It != E; ++It)
    if (Algo.admits(*It, Request))
      Kept.push_back(*It);
  return SlotList(std::move(Kept));
}
