
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_cost_minimization.cpp" "bench-build/CMakeFiles/fig6_cost_minimization.dir/fig6_cost_minimization.cpp.o" "gcc" "bench-build/CMakeFiles/fig6_cost_minimization.dir/fig6_cost_minimization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/ecosched_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/ecosched_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/ecosched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
