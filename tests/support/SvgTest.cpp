//===-- tests/support/SvgTest.cpp - SVG writer and plot tests -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Plot.h"
#include "support/Svg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ecosched;

TEST(SvgEscapeTest, EscapesMarkupCharacters) {
  EXPECT_EQ(svgEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(svgEscape("plain text"), "plain text");
}

TEST(SvgDocumentTest, EmitsWellFormedSkeleton) {
  SvgDocument Doc(320.0, 200.0);
  const std::string Out = Doc.str();
  EXPECT_NE(Out.find("<?xml"), std::string::npos);
  EXPECT_NE(Out.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(Out.find("viewBox=\"0 0 320.00 200.00\""),
            std::string::npos);
  EXPECT_NE(Out.find("</svg>"), std::string::npos);
}

TEST(SvgDocumentTest, ElementsAppearInOutput) {
  SvgDocument Doc(100.0, 100.0);
  SvgStyle Fill;
  Fill.Fill = "#ff0000";
  Doc.addRect(10.0, 20.0, 30.0, 40.0, Fill);
  SvgStyle Stroke;
  Stroke.Stroke = "#00ff00";
  Doc.addLine(0.0, 0.0, 50.0, 50.0, Stroke);
  Doc.addPolyline({{0.0, 0.0}, {10.0, 5.0}, {20.0, 2.0}}, Stroke);
  Doc.addCircle(5.0, 5.0, 2.0, Fill);
  Doc.addText(50.0, 50.0, "hello <&>", 12.0,
              SvgTextAnchorKind::Middle);

  const std::string Out = Doc.str();
  EXPECT_NE(Out.find("<rect x=\"10.00\" y=\"20.00\""), std::string::npos);
  EXPECT_NE(Out.find("fill=\"#ff0000\""), std::string::npos);
  EXPECT_NE(Out.find("<line"), std::string::npos);
  EXPECT_NE(Out.find("<polyline points=\"0.00,0.00 10.00,5.00"),
            std::string::npos);
  EXPECT_NE(Out.find("<circle"), std::string::npos);
  EXPECT_NE(Out.find("hello &lt;&amp;&gt;"), std::string::npos);
  EXPECT_NE(Out.find("text-anchor=\"middle\""), std::string::npos);
}

TEST(SvgDocumentTest, EmptyPolylineIgnored) {
  SvgDocument Doc(100.0, 100.0);
  const size_t Before = Doc.str().size();
  Doc.addPolyline({}, SvgStyle());
  EXPECT_EQ(Doc.str().size(), Before);
}

TEST(SvgDocumentTest, WritesToFile) {
  SvgDocument Doc(100.0, 100.0);
  Doc.addText(10.0, 10.0, "file test", 10.0);
  const std::string Path = ::testing::TempDir() + "/ecosched_test.svg";
  ASSERT_TRUE(Doc.write(Path));
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  EXPECT_EQ(Ss.str(), Doc.str());
  std::remove(Path.c_str());
  EXPECT_FALSE(Doc.write("/no/such/dir/x.svg"));
}

TEST(NiceTicksTest, CoversRangeWithRoundSteps) {
  const std::vector<double> Ticks = niceTicks(0.0, 100.0, 5);
  ASSERT_GE(Ticks.size(), 3u);
  EXPECT_LE(Ticks.front(), 0.0 + 1e-9);
  EXPECT_GE(Ticks.back(), 100.0 - 1e-9);
  // Steps are uniform and "nice" (multiples of 1/2/5 x 10^k).
  const double Step = Ticks[1] - Ticks[0];
  for (size_t I = 2; I < Ticks.size(); ++I)
    EXPECT_NEAR(Ticks[I] - Ticks[I - 1], Step, 1e-9);
  const double Mantissa =
      Step / std::pow(10.0, std::floor(std::log10(Step)));
  EXPECT_TRUE(std::fabs(Mantissa - 1.0) < 1e-9 ||
              std::fabs(Mantissa - 2.0) < 1e-9 ||
              std::fabs(Mantissa - 5.0) < 1e-9 ||
              std::fabs(Mantissa - 10.0) < 1e-9);
}

TEST(NiceTicksTest, DegenerateRange) {
  const std::vector<double> Ticks = niceTicks(5.0, 5.0);
  EXPECT_GE(Ticks.size(), 2u); // Expanded to a unit range.
}

TEST(LineChartTest, RendersSeriesAndLegend) {
  LineChart Chart("Example chart", "experiment", "time");
  Chart.addSeries("ALP", {{1.0, 60.0}, {2.0, 58.0}, {3.0, 62.0}});
  Chart.addSeries("AMP", {{1.0, 40.0}, {2.0, 41.0}, {3.0, 39.0}});
  const std::string Out = Chart.render().str();
  EXPECT_NE(Out.find("Example chart"), std::string::npos);
  EXPECT_NE(Out.find("ALP"), std::string::npos);
  EXPECT_NE(Out.find("AMP"), std::string::npos);
  // Two polylines, one per series.
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("<polyline", Pos)) != std::string::npos) {
    ++Count;
    Pos += 9;
  }
  EXPECT_EQ(Count, 2u);
}

TEST(GroupedBarChartTest, RendersBarsPerGroupAndSeries) {
  GroupedBarChart Chart("Fig 4", "value");
  Chart.setSeries({"ALP", "AMP"});
  Chart.addGroup("time", {59.85, 39.01});
  Chart.addGroup("cost", {313.56, 369.69});
  const std::string Out = Chart.render().str();
  EXPECT_NE(Out.find("Fig 4"), std::string::npos);
  EXPECT_NE(Out.find("time"), std::string::npos);
  EXPECT_NE(Out.find("cost"), std::string::npos);
  EXPECT_NE(Out.find("39.0"), std::string::npos); // Value label.
  // Background + legend swatches (2) + bars (4) + grid... count rects
  // conservatively: at least 7.
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("<rect", Pos)) != std::string::npos) {
    ++Count;
    Pos += 5;
  }
  EXPECT_GE(Count, 7u);
}
