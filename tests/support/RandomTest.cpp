//===-- tests/support/RandomTest.cpp - RNG unit tests ---------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ecosched;

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  int Matches = 0;
  for (int I = 0; I < 64; ++I)
    Matches += A.next() == B.next();
  EXPECT_LT(Matches, 2);
}

TEST(RandomGeneratorTest, SameSeedSameStream) {
  RandomGenerator A(7), B(7);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(RandomGeneratorTest, ReseedRestartsStream) {
  RandomGenerator A(7);
  std::vector<uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(A.next());
  A.reseed(7);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.next(), First[static_cast<size_t>(I)]);
}

TEST(RandomGeneratorTest, NextUnitInHalfOpenUnitInterval) {
  RandomGenerator Rng(11);
  for (int I = 0; I < 10000; ++I) {
    const double X = Rng.nextUnit();
    ASSERT_GE(X, 0.0);
    ASSERT_LT(X, 1.0);
  }
}

TEST(RandomGeneratorTest, NextUnitMeanNearHalf) {
  RandomGenerator Rng(13);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.nextUnit();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(RandomGeneratorTest, UniformIntCoversSmallRange) {
  RandomGenerator Rng(17);
  std::set<int64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    const int64_t V = Rng.uniformInt(3, 7);
    ASSERT_GE(V, 3);
    ASSERT_LE(V, 7);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RandomGeneratorTest, UniformIntSingletonRange) {
  RandomGenerator Rng(19);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Rng.uniformInt(-4, -4), -4);
}

TEST(RandomGeneratorTest, UniformIntHandlesNegativeRanges) {
  RandomGenerator Rng(23);
  for (int I = 0; I < 1000; ++I) {
    const int64_t V = Rng.uniformInt(-10, 10);
    ASSERT_GE(V, -10);
    ASSERT_LE(V, 10);
  }
}

TEST(RandomGeneratorTest, BernoulliExtremes) {
  RandomGenerator Rng(29);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.bernoulli(0.0));
    EXPECT_TRUE(Rng.bernoulli(1.0));
    EXPECT_FALSE(Rng.bernoulli(-0.5));
    EXPECT_TRUE(Rng.bernoulli(1.5));
  }
}

TEST(RandomGeneratorTest, BernoulliFrequency) {
  RandomGenerator Rng(31);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += Rng.bernoulli(0.4);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.4, 0.01);
}

TEST(RandomGeneratorTest, ForkProducesIndependentStream) {
  RandomGenerator Parent(37);
  RandomGenerator Child = Parent.fork();
  int Matches = 0;
  for (int I = 0; I < 64; ++I)
    Matches += Parent.next() == Child.next();
  EXPECT_LT(Matches, 2);
}

TEST(RandomGeneratorTest, ForkIsDeterministic) {
  RandomGenerator A(41), B(41);
  RandomGenerator ChildA = A.fork();
  RandomGenerator ChildB = B.fork();
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(ChildA.next(), ChildB.next());
}

TEST(RandomGeneratorTest, PoissonZeroMean) {
  RandomGenerator Rng(53);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Rng.poisson(0.0), 0);
}

TEST(RandomGeneratorTest, PoissonMeanAndVarianceMatch) {
  RandomGenerator Rng(59);
  RunningStats Stats;
  const double Mean = 4.0;
  for (int I = 0; I < 50000; ++I)
    Stats.add(static_cast<double>(Rng.poisson(Mean)));
  // Poisson: mean == variance == lambda.
  EXPECT_NEAR(Stats.mean(), Mean, 0.05);
  EXPECT_NEAR(Stats.variance(), Mean, 0.15);
  EXPECT_GE(Stats.min(), 0.0);
}

/// Parameterized sweep: uniformReal stays inside many different ranges.
class UniformRealRangeTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(UniformRealRangeTest, StaysInRange) {
  const auto [Lo, Hi] = GetParam();
  RandomGenerator Rng(43);
  for (int I = 0; I < 5000; ++I) {
    const double X = Rng.uniformReal(Lo, Hi);
    ASSERT_GE(X, Lo);
    ASSERT_LE(X, Hi);
  }
}

TEST_P(UniformRealRangeTest, MeanNearMidpoint) {
  const auto [Lo, Hi] = GetParam();
  if (Hi - Lo <= 0.0)
    GTEST_SKIP() << "degenerate range";
  RandomGenerator Rng(47);
  double Sum = 0.0;
  const int N = 50000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.uniformReal(Lo, Hi);
  EXPECT_NEAR(Sum / N, (Lo + Hi) / 2.0, (Hi - Lo) * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformRealRangeTest,
    ::testing::Values(std::pair{0.0, 1.0}, std::pair{50.0, 300.0},
                      std::pair{-5.0, 5.0}, std::pair{1.0, 3.0},
                      std::pair{0.75, 1.25}, std::pair{2.0, 2.0}));
