//===-- support/Plot.cpp - SVG line and bar charts ------------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "support/Plot.h"

#include "support/Check.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace ecosched;

const std::vector<std::string> &ecosched::plotPalette() {
  static const std::vector<std::string> Palette = {
      "#3366cc", "#dc3912", "#109618", "#ff9900", "#990099", "#0099c6"};
  return Palette;
}

std::vector<double> ecosched::niceTicks(double Lo, double Hi,
                                        int TargetCount) {
  ECOSCHED_CHECK(TargetCount > 1, "need at least two ticks, got {}",
                 TargetCount);
  if (Hi <= Lo)
    Hi = Lo + 1.0;
  const double RawStep = (Hi - Lo) / (TargetCount - 1);
  const double Magnitude = std::pow(10.0, std::floor(std::log10(RawStep)));
  double Step = Magnitude;
  for (const double Factor : {1.0, 2.0, 5.0, 10.0}) {
    Step = Factor * Magnitude;
    if (Step >= RawStep)
      break;
  }
  std::vector<double> Ticks;
  const double First = std::floor(Lo / Step) * Step;
  for (double T = First; T <= Hi + Step * 0.5; T += Step)
    Ticks.push_back(T);
  return Ticks;
}

namespace {

/// Shared canvas geometry: margins and the data rectangle.
struct PlotFrame {
  double Width, Height;
  double Left = 64.0, Right = 20.0, Top = 40.0, Bottom = 52.0;

  double plotLeft() const { return Left; }
  double plotRight() const { return Width - Right; }
  double plotTop() const { return Top; }
  double plotBottom() const { return Height - Bottom; }
  double plotWidth() const { return plotRight() - plotLeft(); }
  double plotHeight() const { return plotBottom() - plotTop(); }
};

std::string formatTick(double Value) {
  char Buffer[32];
  if (std::fabs(Value - std::round(Value)) < 1e-9)
    std::snprintf(Buffer, sizeof(Buffer), "%.0f", Value);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%g", Value);
  return Buffer;
}

void drawFrame(SvgDocument &Doc, const PlotFrame &F,
               const std::string &Title, const std::string &XLabel,
               const std::string &YLabel) {
  SvgStyle Axis;
  Axis.Stroke = "#444444";
  Doc.addLine(F.plotLeft(), F.plotBottom(), F.plotRight(),
              F.plotBottom(), Axis);
  Doc.addLine(F.plotLeft(), F.plotTop(), F.plotLeft(), F.plotBottom(),
              Axis);
  Doc.addText(F.Width / 2.0, 24.0, Title, 15.0,
              SvgTextAnchorKind::Middle);
  if (!XLabel.empty())
    Doc.addText(F.plotLeft() + F.plotWidth() / 2.0, F.Height - 12.0,
                XLabel, 12.0, SvgTextAnchorKind::Middle);
  if (!YLabel.empty())
    Doc.addText(14.0, F.plotTop() - 10.0, YLabel, 12.0,
                SvgTextAnchorKind::Start);
}

void drawYTicks(SvgDocument &Doc, const PlotFrame &F, double YLo,
                double YHi, const std::vector<double> &Ticks) {
  SvgStyle Grid;
  Grid.Stroke = "#dddddd";
  for (const double T : Ticks) {
    if (T < YLo - 1e-9 || T > YHi + 1e-9)
      continue;
    const double Y =
        F.plotBottom() - (T - YLo) / (YHi - YLo) * F.plotHeight();
    Doc.addLine(F.plotLeft(), Y, F.plotRight(), Y, Grid);
    Doc.addText(F.plotLeft() - 6.0, Y + 4.0, formatTick(T), 11.0,
                SvgTextAnchorKind::End);
  }
}

void drawLegend(SvgDocument &Doc, const PlotFrame &F,
                const std::vector<std::pair<std::string, std::string>>
                    &LabelsAndColors) {
  double X = F.plotLeft() + 10.0;
  const double Y = F.plotTop() + 14.0;
  for (const auto &[Label, Color] : LabelsAndColors) {
    SvgStyle Swatch;
    Swatch.Fill = Color;
    Doc.addRect(X, Y - 9.0, 12.0, 12.0, Swatch);
    Doc.addText(X + 16.0, Y + 1.0, Label, 11.0);
    X += 16.0 + 7.0 * static_cast<double>(Label.size()) + 24.0;
  }
}

} // namespace

void LineChart::addSeries(std::string Label,
                          std::vector<std::pair<double, double>> Points,
                          std::string Color) {
  if (Color.empty())
    Color = plotPalette()[AllSeries.size() % plotPalette().size()];
  AllSeries.push_back(
      {std::move(Label), std::move(Points), std::move(Color)});
}

SvgDocument LineChart::render(double Width, double Height) const {
  SvgDocument Doc(Width, Height);
  PlotFrame F;
  F.Width = Width;
  F.Height = Height;
  drawFrame(Doc, F, Title, XLabel, YLabel);

  double XLo = 0.0, XHi = 1.0, YLo = 0.0, YHi = 1.0;
  bool Any = false;
  for (const Series &S : AllSeries)
    for (const auto &[X, Y] : S.Points) {
      if (!Any) {
        XLo = XHi = X;
        YLo = YHi = Y;
        Any = true;
        continue;
      }
      XLo = std::min(XLo, X);
      XHi = std::max(XHi, X);
      YLo = std::min(YLo, Y);
      YHi = std::max(YHi, Y);
    }
  if (XHi <= XLo)
    XHi = XLo + 1.0;
  YLo = std::min(YLo, 0.0); // Anchor the value axis at zero.
  if (YHi <= YLo)
    YHi = YLo + 1.0;
  YHi *= 1.05;

  drawYTicks(Doc, F, YLo, YHi, niceTicks(YLo, YHi));
  for (const double T : niceTicks(XLo, XHi, 7)) {
    if (T < XLo - 1e-9 || T > XHi + 1e-9)
      continue;
    const double X =
        F.plotLeft() + (T - XLo) / (XHi - XLo) * F.plotWidth();
    Doc.addText(X, F.plotBottom() + 16.0, formatTick(T), 11.0,
                SvgTextAnchorKind::Middle);
  }

  std::vector<std::pair<std::string, std::string>> Legend;
  for (const Series &S : AllSeries) {
    std::vector<std::pair<double, double>> Mapped;
    Mapped.reserve(S.Points.size());
    for (const auto &[X, Y] : S.Points)
      Mapped.push_back(
          {F.plotLeft() + (X - XLo) / (XHi - XLo) * F.plotWidth(),
           F.plotBottom() - (Y - YLo) / (YHi - YLo) * F.plotHeight()});
    SvgStyle Line;
    Line.Stroke = S.Color;
    Line.StrokeWidth = 1.6;
    Doc.addPolyline(Mapped, Line);
    Legend.push_back({S.Label, S.Color});
  }
  drawLegend(Doc, F, Legend);
  return Doc;
}

void GroupedBarChart::setSeries(std::vector<std::string> Names) {
  ECOSCHED_CHECK(Groups.empty(),
                 "declare series before adding groups ({} groups present)",
                 Groups.size());
  SeriesNames = std::move(Names);
}

void GroupedBarChart::addGroup(std::string Label,
                               std::vector<double> Values) {
  ECOSCHED_CHECK(Values.size() == SeriesNames.size(),
                 "one value per declared series: {} values for {} series",
                 Values.size(), SeriesNames.size());
  Groups.push_back({std::move(Label), std::move(Values)});
}

SvgDocument GroupedBarChart::render(double Width, double Height) const {
  SvgDocument Doc(Width, Height);
  PlotFrame F;
  F.Width = Width;
  F.Height = Height;
  drawFrame(Doc, F, Title, "", YLabel);

  double YHi = 1.0;
  for (const Group &G : Groups)
    for (const double V : G.Values)
      YHi = std::max(YHi, V);
  YHi *= 1.1;
  drawYTicks(Doc, F, 0.0, YHi, niceTicks(0.0, YHi));

  const size_t GroupCount = Groups.size();
  const size_t BarCount = SeriesNames.size();
  if (GroupCount && BarCount) {
    const double GroupWidth =
        F.plotWidth() / static_cast<double>(GroupCount);
    const double BarWidth =
        GroupWidth * 0.7 / static_cast<double>(BarCount);
    for (size_t G = 0; G < GroupCount; ++G) {
      const double GroupLeft =
          F.plotLeft() + GroupWidth * static_cast<double>(G) +
          GroupWidth * 0.15;
      for (size_t B = 0; B < BarCount; ++B) {
        const double Value = Groups[G].Values[B];
        const double BarHeight = Value / YHi * F.plotHeight();
        SvgStyle Bar;
        Bar.Fill = plotPalette()[B % plotPalette().size()];
        Doc.addRect(GroupLeft + BarWidth * static_cast<double>(B),
                    F.plotBottom() - BarHeight, BarWidth * 0.92,
                    BarHeight, Bar);
        // Value label above the bar.
        char Buffer[32];
        std::snprintf(Buffer, sizeof(Buffer), "%.1f", Value);
        Doc.addText(GroupLeft + BarWidth * (static_cast<double>(B) + 0.5),
                    F.plotBottom() - BarHeight - 4.0, Buffer, 10.0,
                    SvgTextAnchorKind::Middle);
      }
      Doc.addText(F.plotLeft() + GroupWidth * (static_cast<double>(G) +
                                               0.5),
                  F.plotBottom() + 16.0, Groups[G].Label, 11.0,
                  SvgTextAnchorKind::Middle);
    }
  }

  std::vector<std::pair<std::string, std::string>> Legend;
  for (size_t B = 0; B < BarCount; ++B)
    Legend.push_back(
        {SeriesNames[B], plotPalette()[B % plotPalette().size()]});
  drawLegend(Doc, F, Legend);
  return Doc;
}
