//===-- core/Experiment.cpp - Section 5 paired simulation study -----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"

#include "core/AlpSearch.h"
#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Limits.h"

#include "support/ThreadPool.h"

using namespace ecosched;

namespace {

/// Everything one method produced for one iteration.
struct MethodIteration {
  AlternativeSet Alts;
  std::vector<std::vector<AlternativeValue>> Values;
  double TimeQuota = 0.0;
  double VoBudget = -1.0;
  CombinationChoice Choice;
  bool Covered = false;
  bool Feasible = false;
};

MethodIteration runMethod(const SlotSearchAlgorithm &Algo,
                          const SlotList &Slots, const Batch &Jobs,
                          OptimizationTaskKind Task,
                          QuotaPolicyKind Quota,
                          const CombinationOptimizer &Optimizer) {
  MethodIteration Out;
  AlternativeSearch Search(Algo);
  Out.Alts = Search.run(Slots, Jobs);
  Out.Covered = Out.Alts.allCovered();
  if (!Out.Covered)
    return Out;

  Out.Values = toAlternativeValues(Out.Alts);
  Out.TimeQuota = computeTimeQuota(Out.Values, Quota);
  Out.VoBudget =
      computeVoBudget(Out.Values, Duration(Out.TimeQuota), Optimizer);
  if (Out.VoBudget < 0.0)
    return Out; // T* admits no combination; iteration is not counted.

  CombinationProblem Problem;
  Problem.PerJob = Out.Values;
  Problem.Direction = DirectionKind::Minimize;
  if (Task == OptimizationTaskKind::MinimizeTime) {
    Problem.Objective = MeasureKind::Time;
    Problem.Constraint = MeasureKind::Cost;
    Problem.Limit = Out.VoBudget;
  } else {
    Problem.Objective = MeasureKind::Cost;
    Problem.Constraint = MeasureKind::Time;
    Problem.Limit = Out.TimeQuota;
  }
  Out.Choice = Optimizer.solve(Problem);
  Out.Feasible = Out.Choice.Feasible;
  return Out;
}

/// Per-job values of one method for one counted iteration.
struct MethodRecord {
  bool Covered = false;
  bool Feasible = false;
  /// Per job: chosen time, chosen cost, alternatives found.
  std::vector<std::array<double, 3>> Jobs;
};

/// Everything the ordered fold needs from one iteration. Workers fill
/// records concurrently; the calling thread folds them in iteration
/// order so results are independent of the thread count.
struct IterationRecord {
  double SlotCount = 0.0;
  double JobCount = 0.0;
  MethodRecord Alp;
  MethodRecord Amp;
};

MethodRecord toRecord(const MethodIteration &It) {
  MethodRecord Record;
  Record.Covered = It.Covered;
  Record.Feasible = It.Feasible;
  if (!It.Feasible)
    return Record;
  Record.Jobs.reserve(It.Values.size());
  for (size_t I = 0, E = It.Values.size(); I != E; ++I) {
    const AlternativeValue &V = It.Values[I][It.Choice.Selected[I]];
    Record.Jobs.push_back(
        {V.Time, V.Cost,
         static_cast<double>(It.Alts.PerJob[I].size())});
  }
  return Record;
}

void foldMethod(MethodAggregate &Agg, const MethodRecord &Record) {
  if (!Record.Covered)
    ++Agg.CoverageFailures;
  else if (!Record.Feasible)
    ++Agg.QuotaInfeasible;
}

void foldCounted(MethodAggregate &Agg, const MethodRecord &Record,
                 size_t SeriesCapacity) {
  RunningStats IterTime, IterCost;
  for (const auto &[Time, Cost, Alternatives] : Record.Jobs) {
    Agg.JobTime.add(Time);
    Agg.JobCost.add(Cost);
    Agg.AlternativesPerJob.add(Alternatives);
    IterTime.add(Time);
    IterCost.add(Cost);
  }
  if (SeriesCapacity > 0 && Agg.JobTimeSeries.size() < SeriesCapacity) {
    Agg.JobTimeSeries.push_back(IterTime.mean());
    Agg.JobCostSeries.push_back(IterCost.mean());
  }
}

} // namespace

ExperimentResult PairedExperiment::run() const {
  ExperimentResult Result;
  RandomGenerator Master(Cfg.Seed);
  const SlotGenerator Slots(Cfg.Slots);
  const JobGenerator Jobs(Cfg.Jobs);

  const size_t Threads = ThreadPool::resolveThreadCount(Cfg.Threads);
  Result.ThreadsUsed = Threads;

  const auto RunIteration = [&](RandomGenerator Rng) {
    // Thread-local algorithm/optimizer instances (all stateless, but
    // keeping them local documents the intent).
    AlpSearch Alp;
    AmpSearch Amp;
    DpOptimizer Optimizer(Cfg.DpBins);
    IterationRecord Record;
    const SlotList SlotsNow =
        Cfg.SlotSource ? Cfg.SlotSource(Rng) : Slots.generate(Rng);
    const Batch BatchNow = Jobs.generate(Rng);
    Record.SlotCount = static_cast<double>(SlotsNow.size());
    Record.JobCount = static_cast<double>(BatchNow.size());
    Record.Alp = toRecord(
        runMethod(Alp, SlotsNow, BatchNow, Cfg.Task, Cfg.Quota, Optimizer));
    Record.Amp = toRecord(
        runMethod(Amp, SlotsNow, BatchNow, Cfg.Task, Cfg.Quota, Optimizer));
    return Record;
  };

  const auto Fold = [&](const IterationRecord &Record) {
    ++Result.TotalIterations;
    Result.SlotsAll.add(Record.SlotCount);
    Result.JobsAll.add(Record.JobCount);
    foldMethod(Result.Alp, Record.Alp);
    foldMethod(Result.Amp, Record.Amp);
    if (!Record.Alp.Feasible || !Record.Amp.Feasible)
      return; // Not counted (Section 5 rule).
    ++Result.CountedIterations;
    Result.SlotsCounted.add(Record.SlotCount);
    Result.JobsCounted.add(Record.JobCount);
    foldCounted(Result.Alp, Record.Alp, Cfg.SeriesCapacity);
    foldCounted(Result.Amp, Record.Amp, Cfg.SeriesCapacity);
  };

  const auto Done = [&] {
    return Cfg.StopAfterCounted != 0 &&
           Result.CountedIterations >= Cfg.StopAfterCounted;
  };

  if (Threads == 1) {
    for (int64_t Iter = 0; Iter < Cfg.Iterations && !Done(); ++Iter)
      Fold(RunIteration(Master.fork()));
    return Result;
  }

  // Parallel path: process fixed-size blocks of pre-forked iterations
  // on one pool shared by the whole series (no thread churn per block),
  // folding each block in order on this thread. Early stop
  // (StopAfterCounted) takes effect at iteration granularity inside the
  // block, so results match the sequential path exactly; at most one
  // block of surplus iterations is computed and discarded, reported as
  // SurplusIterations.
  ThreadPool Pool(Threads);
  const int64_t BlockSize = static_cast<int64_t>(Threads) * 8;
  for (int64_t BlockBegin = 0; BlockBegin < Cfg.Iterations && !Done();
       BlockBegin += BlockSize) {
    const int64_t BlockLimit =
        std::min(BlockBegin + BlockSize, Cfg.Iterations);
    const size_t Count = static_cast<size_t>(BlockLimit - BlockBegin);

    std::vector<RandomGenerator> Rngs;
    Rngs.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Rngs.push_back(Master.fork());

    const std::vector<IterationRecord> Records =
        Pool.parallelMap<IterationRecord>(
            Count, 1, [&](size_t I) { return RunIteration(Rngs[I]); });

    for (size_t I = 0; I < Count; ++I) {
      if (Done()) {
        Result.SurplusIterations += Count - I;
        break;
      }
      Fold(Records[I]);
    }
  }
  return Result;
}
