//===-- engine/MultiVoDriver.cpp - Concurrent multi-VO driver -------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "engine/MultiVoDriver.h"

using namespace ecosched;

size_t MultiVoDriver::addTenant(ComputingDomain Domain,
                                const Metascheduler &Scheduler,
                                VirtualOrganization::Config VoCfg,
                                uint64_t Seed) {
  Tenant T;
  T.Vo = std::make_unique<VirtualOrganization>(std::move(Domain), Scheduler,
                                               VoCfg);
  T.Rng.reseed(Seed);
  Tenants.push_back(std::move(T));
  return Tenants.size() - 1;
}

MultiVoDriver::TenantIteration
MultiVoDriver::stepTenant(size_t I, const ArrivalFn &Arrivals) {
  Tenant &T = Tenants[I];
  TenantIteration Result;
  if (Arrivals) {
    const Batch Arrived = Arrivals(I, T.Iteration, T.Rng);
    for (const Job &J : Arrived)
      T.Vo->submit(J);
    Result.Arrivals = Arrived.size();
  }
  Result.Report = T.Vo->runIteration();
  ++T.Iteration;
  return Result;
}

std::vector<MultiVoDriver::TenantIteration>
MultiVoDriver::runIteration(const ArrivalFn &Arrivals) {
  // Tenants are fully independent (own domain, own RNG stream), so the
  // fan-out is deterministic for any pool size: parallelMap writes
  // tenant I's result to slot I.
  if (Cfg.Pool != nullptr && Cfg.Pool->threadCount() > 1)
    return Cfg.Pool->parallelMap<TenantIteration>(
        Tenants.size(), /*Chunk=*/1,
        [&](size_t I) { return stepTenant(I, Arrivals); });

  std::vector<TenantIteration> Results;
  Results.reserve(Tenants.size());
  for (size_t I = 0; I < Tenants.size(); ++I)
    Results.push_back(stepTenant(I, Arrivals));
  return Results;
}

std::vector<MultiVoDriver::TenantIteration>
MultiVoDriver::run(size_t Iterations, const ArrivalFn &Arrivals) {
  std::vector<TenantIteration> Last(Tenants.size());
  for (size_t Round = 0; Round < Iterations; ++Round)
    Last = runIteration(Arrivals);
  return Last;
}

double MultiVoDriver::totalIncome() const {
  double Income = 0.0;
  for (const Tenant &T : Tenants)
    Income += T.Vo->totalIncome();
  return Income;
}

size_t MultiVoDriver::totalCompleted() const {
  size_t Count = 0;
  for (const Tenant &T : Tenants)
    Count += T.Vo->completed().size();
  return Count;
}

size_t MultiVoDriver::totalDropped() const {
  size_t Count = 0;
  for (const Tenant &T : Tenants)
    Count += T.Vo->dropped().size();
  return Count;
}

SearchStats MultiVoDriver::totalFilterStats() const {
  SearchStats Total;
  for (const Tenant &T : Tenants)
    Total += T.Vo->filterStats();
  return Total;
}
