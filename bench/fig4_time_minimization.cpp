//===-- bench/fig4_time_minimization.cpp - Reproduces Fig. 4 --------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E4 (DESIGN.md): job batch execution time minimization,
/// min T(s) subject to C(s) <= B* (Fig. 4). The paper reports, over
/// 25000 simulated scheduling iterations:
///   (a) average job execution time: ALP 59.85, AMP 39.01 (-35%);
///   (b) average job execution cost: ALP 313.56, AMP 369.69 (+15%).
/// Default runs a trimmed series; --iterations=25000 reproduces the
/// full-size study.
///
//===----------------------------------------------------------------------===//

#include "ExperimentReport.h"
#include "support/CommandLine.h"
#include "support/Plot.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("fig4_time_minimization",
                 "Fig. 4: batch time minimization, ALP vs AMP");
  const int64_t &Iterations =
      Args.addInt("iterations", 2000, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const double &PriceFactor = Args.addReal(
      "price-factor", 1.1,
      "request price cap factor: C = factor * 1.7^Pmin");
  const int64_t &Threads = Args.addThreads();
  const std::string &SvgPrefix = Args.addString(
      "svg", "", "write <prefix>_time.svg and <prefix>_cost.svg figures");
  const std::string &Csv =
      Args.addString("csv", "", "optional CSV output path");
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Fig. 4 reproduction: job batch execution time "
              "minimization (min T(s) s.t. C(s) <= B*)\n");
  std::printf("======================================================="
              "=================\n\n");

  ExperimentConfig Cfg;
  Cfg.Iterations = Iterations;
  Cfg.Seed = static_cast<uint64_t>(Seed);
  Cfg.Jobs.PriceFactor = PriceFactor;
  Cfg.Threads = static_cast<size_t>(Threads);
  Cfg.Task = OptimizationTaskKind::MinimizeTime;
  const ExperimentResult R = PairedExperiment(Cfg).run();
  printRunHeader(R);

  const PaperComparisonRow Rows[] = {
      {"(a) avg job execution time", R.Alp.JobTime.mean(),
       R.Amp.JobTime.mean(), 59.85, 39.01},
      {"(b) avg job execution cost", R.Alp.JobCost.mean(),
       R.Amp.JobCost.mean(), 313.56, 369.69},
      {"alternatives per job", R.Alp.AlternativesPerJob.mean(),
       R.Amp.AlternativesPerJob.mean(), 7.39, 34.28},
  };
  printPaperComparison(Rows, 3);

  std::printf("\nshape check: AMP time gain %.1f%% (paper 34.8%%), AMP "
              "cost overhead %.1f%% (paper 17.9%%)\n",
              100.0 * (1.0 - R.Amp.JobTime.mean() / R.Alp.JobTime.mean()),
              100.0 *
                  (R.Amp.JobCost.mean() / R.Alp.JobCost.mean() - 1.0));

  if (!Csv.empty()) {
    TablePrinter Out;
    Out.addColumn("metric");
    Out.addColumn("alp");
    Out.addColumn("amp");
    const PaperComparisonRow *AllRows = Rows;
    for (size_t I = 0; I < 3; ++I) {
      Out.beginRow();
      Out.addCell(std::string(AllRows[I].Metric));
      Out.addCell(AllRows[I].MeasuredAlp, 4);
      Out.addCell(AllRows[I].MeasuredAmp, 4);
    }
    if (Out.writeCsv(Csv))
      std::printf("wrote %s\n", Csv.c_str());
  }
  if (!SvgPrefix.empty()) {
    GroupedBarChart TimeChart("Fig. 4(a/b): average job execution time",
                              "time");
    TimeChart.setSeries({"ALP", "AMP"});
    TimeChart.addGroup("measured",
                       {R.Alp.JobTime.mean(), R.Amp.JobTime.mean()});
    TimeChart.addGroup("paper", {59.85, 39.01});
    GroupedBarChart CostChart("Fig. 4: average job execution cost",
                              "cost");
    CostChart.setSeries({"ALP", "AMP"});
    CostChart.addGroup("measured",
                       {R.Alp.JobCost.mean(), R.Amp.JobCost.mean()});
    CostChart.addGroup("paper", {313.56, 369.69});
    if (TimeChart.render().write(SvgPrefix + "_time.svg") &&
        CostChart.render().write(SvgPrefix + "_cost.svg"))
      std::printf("wrote %s_time.svg and %s_cost.svg\n",
                  SvgPrefix.c_str(), SvgPrefix.c_str());
  }
  return 0;
}
