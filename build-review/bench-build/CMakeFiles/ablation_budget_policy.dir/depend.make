# Empty dependencies file for ablation_budget_policy.
# This may be replaced when dependencies are built.
