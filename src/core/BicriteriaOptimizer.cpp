//===-- core/BicriteriaOptimizer.cpp - Criteria-vector selection ----------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "core/BicriteriaOptimizer.h"

#include "support/Check.h"
#include "support/Units.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

using namespace ecosched;

namespace {

constexpr double Unreachable = std::numeric_limits<double>::infinity();

enum class RoundingKind { Up, Down };

size_t toCells(double Weight, double CellSize, RoundingKind Round) {
  if (Weight <= 0.0)
    return 0;
  const double Scaled = Weight / CellSize;
  if (Round == RoundingKind::Up)
    return static_cast<size_t>(std::ceil(Scaled - 1e-12));
  return static_cast<size_t>(std::floor(Scaled + 1e-12));
}

/// Evaluates a selection exactly against both limits.
BicriteriaChoice evaluate(const BicriteriaProblem &P,
                          std::vector<size_t> Selected) {
  BicriteriaChoice Choice;
  Choice.Selected = std::move(Selected);
  for (size_t I = 0, E = Choice.Selected.size(); I != E; ++I) {
    const AlternativeValue &V = P.PerJob[I][Choice.Selected[I]];
    Choice.Cost += V.Cost;
    Choice.Time += V.Time;
  }
  Choice.Feasible =
      approxLe(Choice.Cost, P.Budget) && approxLe(Choice.Time, P.TimeQuota);
  return Choice;
}

/// One 2D backward run; empty vector when nothing fits the grid.
std::vector<size_t> solve2d(const BicriteriaProblem &P, size_t CostBins,
                            size_t TimeBins, RoundingKind Round) {
  const size_t JobCount = P.PerJob.size();
  const double CostCell =
      P.Budget > 0.0 ? P.Budget / static_cast<double>(CostBins) : 1.0;
  const double TimeCell =
      P.TimeQuota > 0.0 ? P.TimeQuota / static_cast<double>(TimeBins)
                        : 1.0;
  const size_t CostCells = P.Budget > 0.0 ? CostBins : 0;
  const size_t TimeCells = P.TimeQuota > 0.0 ? TimeBins : 0;
  const size_t WidthC = CostCells + 1;
  const size_t WidthT = TimeCells + 1;
  const size_t States = WidthC * WidthT;

  std::vector<double> Next(States, 0.0), Current(States);
  std::vector<std::vector<uint32_t>> ChoiceTable(
      JobCount, std::vector<uint32_t>(States, 0));

  std::vector<size_t> NeededCostCells, NeededTimeCells;
  std::vector<double> Score;
  for (size_t I = JobCount; I-- > 0;) {
    const auto &Alts = P.PerJob[I];
    NeededCostCells.resize(Alts.size());
    NeededTimeCells.resize(Alts.size());
    Score.resize(Alts.size());
    for (size_t A = 0, E = Alts.size(); A != E; ++A) {
      NeededCostCells[A] = toCells(Alts[A].Cost, CostCell, Round);
      NeededTimeCells[A] = toCells(Alts[A].Time, TimeCell, Round);
      Score[A] = P.CostWeight * Alts[A].Cost +
                 (1.0 - P.CostWeight) * Alts[A].Time;
    }
    for (size_t Zc = 0; Zc < WidthC; ++Zc) {
      for (size_t Zt = 0; Zt < WidthT; ++Zt) {
        double Best = Unreachable;
        uint32_t BestAlt = 0;
        for (size_t A = 0, E = Alts.size(); A != E; ++A) {
          if (NeededCostCells[A] > Zc || NeededTimeCells[A] > Zt)
            continue;
          const double Tail = Next[(Zc - NeededCostCells[A]) * WidthT +
                                   (Zt - NeededTimeCells[A])];
          if (Tail == Unreachable)
            continue;
          const double Value = Score[A] + Tail;
          if (Value < Best) {
            Best = Value;
            BestAlt = static_cast<uint32_t>(A);
          }
        }
        Current[Zc * WidthT + Zt] = Best;
        ChoiceTable[I][Zc * WidthT + Zt] = BestAlt;
      }
    }
    std::swap(Current, Next);
  }

  if (Next[CostCells * WidthT + TimeCells] == Unreachable)
    return {};

  std::vector<size_t> Selected(JobCount);
  size_t Zc = CostCells, Zt = TimeCells;
  for (size_t I = 0; I < JobCount; ++I) {
    const size_t Alt = ChoiceTable[I][Zc * WidthT + Zt];
    Selected[I] = Alt;
    Zc -= toCells(P.PerJob[I][Alt].Cost, CostCell, Round);
    Zt -= toCells(P.PerJob[I][Alt].Time, TimeCell, Round);
  }
  return Selected;
}

} // namespace

BicriteriaChoice
BicriteriaDpOptimizer::solve(const BicriteriaProblem &P) const {
  ECOSCHED_CHECK(CostBins > 0 && TimeBins > 0,
                 "empty DP grid: {} cost bins x {} time bins", CostBins,
                 TimeBins);
  ECOSCHED_CHECK(P.CostWeight >= 0.0 && P.CostWeight <= 1.0,
                 "scalarization weight outside [0, 1]: {}", P.CostWeight);
  BicriteriaChoice Infeasible;
  if (P.PerJob.empty())
    return Infeasible;
  for (const auto &Alts : P.PerJob)
    if (Alts.empty())
      return Infeasible;
  if (P.Budget < 0.0 || P.TimeQuota < 0.0)
    return Infeasible;

  BicriteriaChoice Best;
  const std::vector<size_t> Up =
      solve2d(P, CostBins, TimeBins, RoundingKind::Up);
  if (!Up.empty()) {
    Best = evaluate(P, Up);
    ECOSCHED_CHECK(Best.Feasible,
                   "ceil-rounded 2D DP violated a limit: cost {} vs budget "
                   "{}, time {} vs quota {}",
                   Best.Cost, P.Budget, Best.Time, P.TimeQuota);
  }
  const std::vector<size_t> Down =
      solve2d(P, CostBins, TimeBins, RoundingKind::Down);
  if (!Down.empty()) {
    const BicriteriaChoice Candidate = evaluate(P, Down);
    if (Candidate.Feasible) {
      const auto ScoreOf = [&](const BicriteriaChoice &C) {
        return P.CostWeight * C.Cost + (1.0 - P.CostWeight) * C.Time;
      };
      if (!Best.Feasible || ScoreOf(Candidate) < ScoreOf(Best))
        Best = Candidate;
    }
  }
  return Best;
}

std::vector<ParetoPoint>
ecosched::enumerateParetoFront(const BicriteriaProblem &P) {
  std::vector<ParetoPoint> Points;
  const size_t JobCount = P.PerJob.size();
  if (JobCount == 0)
    return Points;
  for (const auto &Alts : P.PerJob)
    if (Alts.empty())
      return Points;

  // Suffix minima for pruning against both limits.
  std::vector<double> MinCostSuffix(JobCount + 1, 0.0);
  std::vector<double> MinTimeSuffix(JobCount + 1, 0.0);
  for (size_t I = JobCount; I-- > 0;) {
    double MinCost = Unreachable, MinTime = Unreachable;
    for (const AlternativeValue &V : P.PerJob[I]) {
      MinCost = std::min(MinCost, V.Cost);
      MinTime = std::min(MinTime, V.Time);
    }
    MinCostSuffix[I] = MinCostSuffix[I + 1] + MinCost;
    MinTimeSuffix[I] = MinTimeSuffix[I + 1] + MinTime;
  }

  std::vector<size_t> Stack;
  auto Visit = [&](auto &&Self, size_t Job, double Cost,
                   double Time) -> void {
    if (approxGt(Cost + MinCostSuffix[Job], P.Budget) ||
        approxGt(Time + MinTimeSuffix[Job], P.TimeQuota))
      return;
    if (Job == JobCount) {
      Points.push_back({Cost, Time, Stack});
      return;
    }
    for (size_t A = 0, E = P.PerJob[Job].size(); A != E; ++A) {
      const AlternativeValue &V = P.PerJob[Job][A];
      Stack.push_back(A);
      Self(Self, Job + 1, Cost + V.Cost, Time + V.Time);
      Stack.pop_back();
    }
  };
  Visit(Visit, 0, 0.0, 0.0);

  // Keep the non-dominated points: sort by (cost, time) and sweep.
  std::sort(Points.begin(), Points.end(),
            [](const ParetoPoint &A, const ParetoPoint &B) {
              if (!exactEq(A.Cost, B.Cost))
                return exactLess(A.Cost, B.Cost);
              return exactLess(A.Time, B.Time);
            });
  std::vector<ParetoPoint> Front;
  double BestTime = Unreachable;
  for (ParetoPoint &Point : Points) {
    if (approxLt(Point.Time, BestTime, 1e-12)) {
      BestTime = Point.Time;
      Front.push_back(std::move(Point));
    }
  }
  return Front;
}
