//===-- engine/ReservationLedger.h - Reservation bookkeeping -------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reservation ledger of the VO loop: committing selected windows
/// into the domain as external reservations, retiring elapsed
/// reservations into the completed-job record, releasing reservations
/// on user cancellation, and pulling affected jobs back when a node
/// fails (Section 7's "possible failures of computational nodes").
/// This bookkeeping was historically smeared across the monolithic
/// VirtualOrganization and ad-hoc ComputingDomain loops; the ledger
/// owns it in one place and checks its consistency invariants at every
/// mutation.
///
/// Ledger invariants (ECOSCHED_CHECK-backed):
///  - commit: the window must not conflict with domain occupancy (it
///    was found on this iteration's vacant slots).
///  - release / failure cancellation: afterwards the domain holds no
///    external reservation of the job on any in-service node — even
///    when the reservation had not started yet, or when the failed
///    node held no reservations at all.
///  - failure cancellation: the running set shrinks by exactly the
///    number of requeued jobs.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_ENGINE_RESERVATIONLEDGER_H
#define ECOSCHED_ENGINE_RESERVATIONLEDGER_H

#include "core/Metascheduler.h"
#include "sim/ComputingDomain.h"

#include <vector>

namespace ecosched {

class StateWriter;
class StateReader;

/// A job finished (its reservation elapsed) inside the VO.
struct CompletedJob {
  int JobId = -1;
  double StartTime = 0.0;
  double EndTime = 0.0;
  double Cost = 0.0;
  /// Scheduling iterations the job waited before being placed.
  int Attempts = 0;
};

/// Commit / release / completion accounting over a ComputingDomain.
/// The ledger records running reservations; the domain that holds the
/// occupancy is passed into every mutating call so the owning facade
/// keeps sole ownership of it.
class ReservationLedger {
public:
  /// One committed-but-unfinished reservation.
  struct RunningJob {
    int JobId = -1;
    double StartTime = 0.0;
    double EndTime = 0.0;
    double Cost = 0.0;
    int Attempts = 0;
    /// Kept for resubmission after a node failure.
    Job Spec;
    /// Nodes the reservation occupies (failure impact lookup).
    std::vector<int> Nodes;
  };

  /// A job pulled back by a node failure, ready for resubmission.
  struct RequeuedJob {
    Job Spec;
    int Attempts = 0;
  };

  /// Commits \p S's window into \p D as external reservations and opens
  /// a running entry carrying \p Spec (for failure resubmission) and
  /// the placement \p Attempts count. Aborts if the window conflicts
  /// with existing occupancy: the metascheduler derived it from this
  /// iteration's vacant slots, so a conflict is a logic error.
  void commit(ComputingDomain &D, const ScheduledJob &S, const Job &Spec,
              int Attempts);

  /// Moves every running entry that finished by \p Now into
  /// completed(), preserving commit order.
  void retireFinished(TimePoint Now);

  /// Releases a running job's reservations (user cancellation). Safe at
  /// any point of the reservation's life, including before it starts.
  /// \returns true if a running entry was found and released.
  bool release(ComputingDomain &D, int JobId);

  /// Takes \p NodeId out of service in \p D at time \p Now, releases
  /// the surviving sibling reservations of every affected running job,
  /// and returns the affected jobs in cancellation order for the queue
  /// to resubmit. Failing a node that holds no reservations is a no-op
  /// on the ledger.
  std::vector<RequeuedJob> cancelOnNode(ComputingDomain &D, int NodeId,
                                        TimePoint Now);

  const std::vector<CompletedJob> &completed() const { return Completed; }
  size_t runningCount() const { return Running.size(); }

  /// True if \p JobId has a committed, unfinished reservation.
  bool isRunning(int JobId) const;

  /// Total owner income from completed external jobs.
  Money totalIncome() const;

  /// Serializes the running set (commit order, including specs and node
  /// lists for failure resubmission) and the completed record
  /// (docs/PERSISTENCE.md). The domain occupancy backing the running
  /// reservations is serialized by the domain itself.
  void saveState(StateWriter &W) const;

  /// Restores a ledger written by saveState. Rejects non-finite times
  /// or costs, negative attempt counters, and malformed job specs with
  /// a diagnostic on the reader; the ledger is unchanged unless the
  /// load succeeds.
  bool loadState(StateReader &R);

private:
  std::vector<RunningJob> Running;
  std::vector<CompletedJob> Completed;
};

} // namespace ecosched

#endif // ECOSCHED_ENGINE_RESERVATIONLEDGER_H
