file(REMOVE_RECURSE
  "libecosched_support.a"
)
