//===-- sim/TraceIO.cpp - Workload trace persistence ----------------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceIO.h"

#include "support/StateCodec.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace ecosched;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

/// RAII FILE handle.
struct FileHandle {
  std::FILE *F = nullptr;
  FileHandle(const char *Path, const char *Mode)
      : F(std::fopen(Path, Mode)) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
};

/// Reads the whole of \p Path; false on open failure.
bool readFile(const std::string &Path, std::string &Text,
              std::string *Error) {
  FileHandle In(Path.c_str(), "r");
  if (!In.F) {
    setError(Error, "cannot open '" + Path + "' for reading");
    return false;
  }
  char Buffer[4096];
  size_t Count = 0;
  while ((Count = std::fread(Buffer, 1, sizeof(Buffer), In.F)) > 0)
    Text.append(Buffer, Count);
  return true;
}

/// Writes \p Text to \p Path; false on open failure.
bool writeFile(const std::string &Text, const std::string &Path,
               std::string *Error) {
  FileHandle Out(Path.c_str(), "w");
  if (!Out.F) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), Out.F);
  return true;
}

/// Splits \p Text on '\n'; the trailing fragment counts even without a
/// final newline.
std::vector<std::string> splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  std::string Current;
  for (const char C : Text) {
    if (C == '\n') {
      Lines.push_back(Current);
      Current.clear();
    } else {
      Current += C;
    }
  }
  if (!Current.empty())
    Lines.push_back(Current);
  return Lines;
}

bool isSkippable(const std::string &Line) {
  for (const char C : Line) {
    if (C == '#')
      return true;
    if (C != ' ' && C != '\t')
      return false;
  }
  return true; // Blank line.
}

/// True when every listed value is finite. The trace format transports
/// doubles through %lg, which happily parses "nan" and "inf"; letting
/// those through would trip the Slot constructor's contract checks —
/// an abort — instead of a parse error (found by fuzz/TraceIOFuzzer).
bool allFinite(std::initializer_list<double> Values) {
  for (const double V : Values)
    if (!std::isfinite(V))
      return false;
  return true;
}

std::string lineError(size_t LineNo, const std::string &Message) {
  return "line " + std::to_string(LineNo + 1) + ": " + Message;
}

/// Appends printf-formatted text to \p Out.
template <typename... Ts>
void appendFormat(std::string &Out, const char *Fmt, Ts... Values) {
  char Buffer[256];
  const int Count = std::snprintf(Buffer, sizeof(Buffer), Fmt, Values...);
  if (Count > 0)
    Out.append(Buffer, static_cast<size_t>(Count));
}

} // namespace

std::string ecosched::writeSlotTrace(const SlotList &List) {
  std::string Out = "# ecosched slot trace v1\n";
  for (const Slot &S : List)
    appendFormat(Out, "slot %d %.17g %.17g %.17g %.17g\n", S.NodeId,
                 S.Performance, S.UnitPrice, S.Start, S.End);
  return Out;
}

std::optional<SlotList> ecosched::parseSlotTrace(const std::string &Text,
                                                std::string *Error) {
  const std::vector<std::string> Lines = splitLines(Text);
  std::vector<Slot> Slots;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (isSkippable(Line))
      continue;
    int NodeId = 0;
    double Performance = 0.0, Price = 0.0, Start = 0.0, End = 0.0;
    if (std::sscanf(Line.c_str(), "slot %d %lg %lg %lg %lg", &NodeId,
                    &Performance, &Price, &Start, &End) != 5) {
      setError(Error, lineError(LineNo, "expected 'slot <node> <perf> "
                                        "<price> <start> <end>'"));
      return std::nullopt;
    }
    if (!allFinite({Performance, Price, Start, End})) {
      setError(Error, lineError(LineNo, "non-finite slot parameter"));
      return std::nullopt;
    }
    if (Performance <= 0.0 || exactLess(End, Start)) {
      setError(Error, lineError(LineNo, "invalid slot parameters"));
      return std::nullopt;
    }
    Slots.emplace_back(NodeId, Performance, Price, Start, End);
  }
  return SlotList(std::move(Slots));
}

std::string ecosched::writeBatchTrace(const Batch &Jobs) {
  std::string Out = "# ecosched job trace v1\n";
  for (const Job &J : Jobs)
    appendFormat(
        Out, "job %d %d %.17g %.17g %.17g %.17g %s\n", J.Id,
        J.Request.NodeCount, J.Request.Volume, J.Request.MinPerformance,
        J.Request.MaxUnitPrice, J.Request.BudgetFactor,
        J.Request.BudgetPolicy == BudgetPolicyKind::SpanBased ? "span"
                                                              : "volume");
  return Out;
}

std::optional<Batch> ecosched::parseBatchTrace(const std::string &Text,
                                              std::string *Error) {
  const std::vector<std::string> Lines = splitLines(Text);
  Batch Jobs;
  for (size_t LineNo = 0; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (isSkippable(Line))
      continue;
    Job J;
    char Policy[16] = {};
    if (std::sscanf(Line.c_str(), "job %d %d %lg %lg %lg %lg %15s",
                    &J.Id, &J.Request.NodeCount, &J.Request.Volume,
                    &J.Request.MinPerformance, &J.Request.MaxUnitPrice,
                    &J.Request.BudgetFactor, Policy) != 7) {
      setError(Error,
               lineError(LineNo, "expected 'job <id> <nodes> <volume> "
                                 "<min-perf> <max-price> <rho> "
                                 "<span|volume>'"));
      return std::nullopt;
    }
    if (std::strcmp(Policy, "span") == 0) {
      J.Request.BudgetPolicy = BudgetPolicyKind::SpanBased;
    } else if (std::strcmp(Policy, "volume") == 0) {
      J.Request.BudgetPolicy = BudgetPolicyKind::VolumeBased;
    } else {
      setError(Error, lineError(LineNo, "unknown budget policy '" +
                                            std::string(Policy) + "'"));
      return std::nullopt;
    }
    if (!allFinite({J.Request.Volume, J.Request.MinPerformance,
                    J.Request.MaxUnitPrice, J.Request.BudgetFactor})) {
      setError(Error, lineError(LineNo, "non-finite job parameter"));
      return std::nullopt;
    }
    if (J.Request.NodeCount <= 0 || J.Request.Volume <= 0.0 ||
        J.Request.MinPerformance <= 0.0) {
      setError(Error, lineError(LineNo, "invalid job parameters"));
      return std::nullopt;
    }
    Jobs.push_back(J);
  }
  return Jobs;
}

bool ecosched::saveSlotTrace(const SlotList &List, const std::string &Path,
                             std::string *Error) {
  return writeFile(writeSlotTrace(List), Path, Error);
}

std::optional<SlotList>
ecosched::loadSlotTrace(const std::string &Path, std::string *Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return std::nullopt;
  return parseSlotTrace(Text, Error);
}

bool ecosched::saveBatchTrace(const Batch &Jobs, const std::string &Path,
                              std::string *Error) {
  return writeFile(writeBatchTrace(Jobs), Path, Error);
}

std::optional<Batch> ecosched::loadBatchTrace(const std::string &Path,
                                              std::string *Error) {
  std::string Text;
  if (!readFile(Path, Text, Error))
    return std::nullopt;
  return parseBatchTrace(Text, Error);
}

void ecosched::saveJobState(StateWriter &W, const Job &J) {
  W.beginSection("job");
  W.writeInt("id", J.Id);
  W.writeInt("nodes", J.Request.NodeCount);
  W.writeDouble("volume", J.Request.Volume);
  W.writeDouble("min-perf", J.Request.MinPerformance);
  W.writeDouble("max-price", J.Request.MaxUnitPrice);
  W.writeDouble("rho", J.Request.BudgetFactor);
  W.writeUInt("policy",
              J.Request.BudgetPolicy == BudgetPolicyKind::SpanBased ? 0 : 1);
  W.writeDouble("deadline", J.Request.Deadline);
  W.endSection("job");
}

bool ecosched::loadJobState(StateReader &R, Job &J) {
  int64_t Id = 0;
  int64_t Nodes = 0;
  double Volume = 0.0, MinPerf = 0.0, MaxPrice = 0.0, Rho = 0.0;
  uint64_t Policy = 0;
  double Deadline = 0.0;
  if (!R.beginSection("job") || !R.readInt("id", Id) ||
      !R.readInt("nodes", Nodes) || !R.readDouble("volume", Volume) ||
      !R.readDouble("min-perf", MinPerf) ||
      !R.readDouble("max-price", MaxPrice) || !R.readDouble("rho", Rho) ||
      !R.readUInt("policy", Policy) ||
      !R.readDouble("deadline", Deadline) || !R.endSection("job"))
    return false;
  // Mirror parseBatchTrace's domain checks, plus the fields the batch
  // format lacks. maxRuntime() CHECKs MinPerformance > 0, so out-of-
  // domain values must die here as a diagnostic, not there as an abort.
  if (Id < std::numeric_limits<int>::min() ||
      Id > std::numeric_limits<int>::max()) {
    R.fail("job: id out of range");
    return false;
  }
  if (Nodes <= 0 || Nodes > std::numeric_limits<int>::max()) {
    R.fail("job: node count must be a positive int");
    return false;
  }
  if (!(Volume > 0.0) || !std::isfinite(Volume)) {
    R.fail("job: volume must be positive and finite");
    return false;
  }
  if (!(MinPerf > 0.0) || !std::isfinite(MinPerf)) {
    R.fail("job: minimum performance must be positive and finite");
    return false;
  }
  if (!std::isfinite(MaxPrice)) {
    R.fail("job: maximum unit price must be finite");
    return false;
  }
  if (!std::isfinite(Rho)) {
    R.fail("job: budget factor must be finite");
    return false;
  }
  if (Policy > 1) {
    R.fail("job: unknown budget policy");
    return false;
  }
  // Deadline may be infinite (the "no deadline" default); the reader
  // already rejected NaN.
  J.Id = static_cast<int>(Id);
  J.Request.NodeCount = static_cast<int>(Nodes);
  J.Request.Volume = Volume;
  J.Request.MinPerformance = MinPerf;
  J.Request.MaxUnitPrice = MaxPrice;
  J.Request.BudgetFactor = Rho;
  J.Request.BudgetPolicy = Policy == 0 ? BudgetPolicyKind::SpanBased
                                       : BudgetPolicyKind::VolumeBased;
  J.Request.Deadline = Deadline;
  return true;
}
