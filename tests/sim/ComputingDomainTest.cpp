//===-- tests/sim/ComputingDomainTest.cpp - Domain substrate tests --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//

#include "sim/ComputingDomain.h"

#include <gtest/gtest.h>

using namespace ecosched;

TEST(ComputingDomainTest, VacantSlotsOfIdleNodeSpanHorizon) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 2.0);
  const SlotList Slots = D.vacantSlots(TimePoint(0.0), TimePoint(500.0));
  ASSERT_EQ(Slots.size(), 1u);
  EXPECT_EQ(Slots[0].NodeId, N);
  EXPECT_DOUBLE_EQ(Slots[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(Slots[0].End, 500.0);
  EXPECT_DOUBLE_EQ(Slots[0].UnitPrice, 2.0);
}

TEST(ComputingDomainTest, LocalTasksPunchHoles) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(100.0), TimePoint(200.0)));
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(300.0), TimePoint(350.0)));
  const SlotList Slots = D.vacantSlots(TimePoint(0.0), TimePoint(500.0));
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_DOUBLE_EQ(Slots[0].Start, 0.0);
  EXPECT_DOUBLE_EQ(Slots[0].End, 100.0);
  EXPECT_DOUBLE_EQ(Slots[1].Start, 200.0);
  EXPECT_DOUBLE_EQ(Slots[1].End, 300.0);
  EXPECT_DOUBLE_EQ(Slots[2].Start, 350.0);
  EXPECT_DOUBLE_EQ(Slots[2].End, 500.0);
}

TEST(ComputingDomainTest, HorizonClipsOccupancy) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  // Task straddles the horizon start; another lies fully beyond it.
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(120.0)));
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(900.0), TimePoint(1000.0)));
  const SlotList Slots = D.vacantSlots(TimePoint(100.0), TimePoint(600.0));
  ASSERT_EQ(Slots.size(), 1u);
  EXPECT_DOUBLE_EQ(Slots[0].Start, 120.0);
  EXPECT_DOUBLE_EQ(Slots[0].End, 600.0);
}

TEST(ComputingDomainTest, FullyBusyNodePublishesNothing) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(1000.0)));
  EXPECT_TRUE(D.vacantSlots(TimePoint(100.0), TimePoint(600.0)).empty());
}

TEST(ComputingDomainTest, RejectsOverlappingOccupancy) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(100.0), TimePoint(200.0)));
  EXPECT_FALSE(D.addLocalTask(N, TimePoint(150.0), TimePoint(250.0)));
  EXPECT_FALSE(D.reserve(N, TimePoint(199.0), TimePoint(300.0), /*JobId=*/1));
  // Touching intervals are fine.
  EXPECT_TRUE(D.reserve(N, TimePoint(200.0), TimePoint(300.0), /*JobId=*/1));
}

TEST(ComputingDomainTest, IsBusyQueries) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(100.0), TimePoint(200.0)));
  EXPECT_TRUE(D.isBusy(N, TimePoint(150.0), TimePoint(160.0)));
  EXPECT_TRUE(D.isBusy(N, TimePoint(50.0), TimePoint(101.0)));
  EXPECT_FALSE(D.isBusy(N, TimePoint(0.0), TimePoint(100.0)));
  EXPECT_FALSE(D.isBusy(N, TimePoint(200.0), TimePoint(300.0)));
}

TEST(ComputingDomainTest, ReserveWindowCommitsAllMembers) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 2.0);
  const int B = D.addNode(2.0, 3.0);

  std::vector<WindowSlot> Members;
  WindowSlot M0;
  M0.Source = Slot(A, 1.0, 2.0, 0.0, 500.0);
  M0.Runtime = 100.0;
  M0.Cost = 200.0;
  WindowSlot M1;
  M1.Source = Slot(B, 2.0, 3.0, 0.0, 500.0);
  M1.Runtime = 50.0;
  M1.Cost = 150.0;
  Members.push_back(M0);
  Members.push_back(M1);
  const Window W(TimePoint(50.0), std::move(Members));

  ASSERT_TRUE(D.reserveWindow(W, /*JobId=*/7));
  EXPECT_TRUE(D.isBusy(A, TimePoint(50.0), TimePoint(150.0)));
  EXPECT_TRUE(D.isBusy(B, TimePoint(50.0), TimePoint(100.0)));
  EXPECT_FALSE(D.isBusy(B, TimePoint(100.0), TimePoint(500.0)));
  EXPECT_DOUBLE_EQ(D.externalLoad(), 150.0);
}

TEST(ComputingDomainTest, ReserveWindowIsAtomicOnConflict) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 2.0);
  const int B = D.addNode(1.0, 3.0);
  ASSERT_TRUE(D.addLocalTask(B, TimePoint(60.0), TimePoint(80.0))); // Conflicts with member 1.

  std::vector<WindowSlot> Members;
  WindowSlot M0;
  M0.Source = Slot(A, 1.0, 2.0, 0.0, 500.0);
  M0.Runtime = 100.0;
  M0.Cost = 200.0;
  WindowSlot M1;
  M1.Source = Slot(B, 1.0, 3.0, 0.0, 500.0);
  M1.Runtime = 100.0;
  M1.Cost = 300.0;
  Members.push_back(M0);
  Members.push_back(M1);
  const Window W(TimePoint(50.0), std::move(Members));

  EXPECT_FALSE(D.reserveWindow(W, /*JobId=*/7));
  // Nothing was committed, node A stays free.
  EXPECT_FALSE(D.isBusy(A, TimePoint(0.0), TimePoint(500.0)));
  EXPECT_DOUBLE_EQ(D.externalLoad(), 0.0);
}

TEST(ComputingDomainTest, AdvanceDropsPastOccupancy) {
  ComputingDomain D;
  const int N = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(N, TimePoint(0.0), TimePoint(100.0)));
  ASSERT_TRUE(D.reserve(N, TimePoint(150.0), TimePoint(250.0), /*JobId=*/1));
  D.advanceTo(TimePoint(120.0));
  EXPECT_EQ(D.occupancy(N).size(), 1u); // Only the reservation remains.
  EXPECT_DOUBLE_EQ(D.localLoad(), 0.0);
  EXPECT_DOUBLE_EQ(D.externalLoad(), 100.0);
  D.advanceTo(TimePoint(300.0));
  EXPECT_TRUE(D.occupancy(N).empty());
}

TEST(ComputingDomainTest, LoadAccounting) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 1.0);
  const int B = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(A, TimePoint(0.0), TimePoint(100.0)));
  ASSERT_TRUE(D.addLocalTask(B, TimePoint(0.0), TimePoint(50.0)));
  ASSERT_TRUE(D.reserve(B, TimePoint(60.0), TimePoint(100.0), /*JobId=*/3));
  EXPECT_DOUBLE_EQ(D.localLoad(), 150.0);
  EXPECT_DOUBLE_EQ(D.externalLoad(), 40.0);
}

TEST(ComputingDomainTest, VacantSlotsAreSorted) {
  ComputingDomain D;
  const int A = D.addNode(1.0, 1.0);
  const int B = D.addNode(1.0, 1.0);
  ASSERT_TRUE(D.addLocalTask(A, TimePoint(0.0), TimePoint(300.0)));
  ASSERT_TRUE(D.addLocalTask(B, TimePoint(100.0), TimePoint(200.0)));
  const SlotList Slots = D.vacantSlots(TimePoint(0.0), TimePoint(600.0));
  EXPECT_TRUE(Slots.checkInvariants());
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_DOUBLE_EQ(Slots[0].Start, 0.0);   // B: [0,100).
  EXPECT_DOUBLE_EQ(Slots[1].Start, 200.0); // B: [200,600).
  EXPECT_DOUBLE_EQ(Slots[2].Start, 300.0); // A: [300,600).
}
