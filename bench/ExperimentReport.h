//===-- bench/ExperimentReport.h - Shared bench reporting ---------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared console reporting for the Section 5 experiment benches: a
/// paired-methods table with the paper's reference values alongside the
/// measured ones, plus the standard run header.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_BENCH_EXPERIMENTREPORT_H
#define ECOSCHED_BENCH_EXPERIMENTREPORT_H

#include "core/Experiment.h"
#include "support/Table.h"

#include <cstdio>

namespace ecosched {

/// Prints the run header common to the experiment benches.
inline void printRunHeader(const ExperimentResult &R) {
  std::printf("iterations: %zu total, %zu counted (both methods covered "
              "every job and the limits admitted a combination)\n",
              R.TotalIterations, R.CountedIterations);
  std::printf("avg slots per iteration %.2f, avg jobs per counted "
              "iteration %.2f; %zu worker thread%s\n",
              R.SlotsAll.mean(), R.JobsCounted.mean(), R.ThreadsUsed,
              R.ThreadsUsed == 1 ? "" : "s");
  if (R.SurplusIterations != 0)
    std::printf("early stop discarded %zu surplus iteration%s computed "
                "past the counted target\n",
                R.SurplusIterations,
                R.SurplusIterations == 1 ? "" : "s");
  std::printf("\n");
}

/// One row of a measured-vs-paper comparison.
struct PaperComparisonRow {
  const char *Metric;
  double MeasuredAlp;
  double MeasuredAmp;
  double PaperAlp;
  double PaperAmp;
};

/// Prints measured ALP/AMP values next to the paper's, with the
/// AMP/ALP ratio for shape comparison.
inline void printPaperComparison(const PaperComparisonRow *Rows,
                                 size_t Count) {
  TablePrinter Table;
  Table.addColumn("metric", TablePrinter::AlignKind::Left);
  Table.addColumn("ALP");
  Table.addColumn("AMP");
  Table.addColumn("AMP/ALP");
  Table.addColumn("paper ALP");
  Table.addColumn("paper AMP");
  Table.addColumn("paper ratio");
  for (size_t I = 0; I < Count; ++I) {
    const PaperComparisonRow &Row = Rows[I];
    Table.beginRow();
    Table.addCell(std::string(Row.Metric));
    Table.addCell(Row.MeasuredAlp, 2);
    Table.addCell(Row.MeasuredAmp, 2);
    Table.addCell(Row.MeasuredAlp > 0.0
                      ? Row.MeasuredAmp / Row.MeasuredAlp
                      : 0.0,
                  3);
    Table.addCell(Row.PaperAlp, 2);
    Table.addCell(Row.PaperAmp, 2);
    Table.addCell(Row.PaperAlp > 0.0 ? Row.PaperAmp / Row.PaperAlp : 0.0,
                  3);
  }
  Table.print(stdout);
}

} // namespace ecosched

#endif // ECOSCHED_BENCH_EXPERIMENTREPORT_H
