//===-- examples/paper_example.cpp - The Section 4 walkthrough ------------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the worked example of Section 4 end to end on the public
/// API: builds the six-node domain with seven local tasks, prints the
/// initial occupancy chart (Fig. 2(a)), runs the AMP alternative search
/// for the three-job batch, prints the first-pass windows W1/W2/W3
/// (Fig. 2(b)), and finally runs the full two-phase scheduling
/// iteration and commits the chosen windows into the domain.
///
/// Run: build/examples/paper_example
///
//===----------------------------------------------------------------------===//

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"
#include "core/Metascheduler.h"
#include "sim/GanttChart.h"
#include "sim/PaperExample.h"

#include <cstdio>

using namespace ecosched;

int main() {
  ComputingDomain Domain = buildPaperExampleDomain();
  const Batch Jobs = buildPaperExampleBatch();

  std::printf("=== Initial environment (Fig. 2(a)) ===\n");
  std::printf("'#' = owner-local tasks p1..p7, '.' = vacant\n\n%s\n",
              renderDomainChart(Domain, PaperExampleHorizonStart,
                                PaperExampleHorizonEnd)
                  .c_str());

  const SlotList Slots = Domain.vacantSlots(TimePoint(PaperExampleHorizonStart), TimePoint(PaperExampleHorizonEnd));
  std::printf("%zu vacant slots published to the metascheduler\n\n",
              Slots.size());

  // First pass of the AMP alternative search: one window per job, each
  // subtracted before the next job is served.
  std::printf("=== AMP first pass (Fig. 2(b)) ===\n");
  AmpSearch Amp;
  SlotList Work = Slots;
  std::vector<Window> FirstPass;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    const auto W = Amp.findWindow(Work, Jobs[I].Request);
    if (!W) {
      std::printf("job %d: no window (postponed)\n", Jobs[I].Id);
      continue;
    }
    std::printf("W%zu for job %d: span [%.0f, %.0f), unit-price sum "
                "%.0f, nodes:",
                I + 1, Jobs[I].Id, W->startTime().value(), W->endTime().value(),
                W->unitPriceSum().value());
    for (const WindowSlot &M : *W)
      std::printf(" %s", Domain.pool().node(M.Source.NodeId).Name.c_str());
    std::printf("\n");
    W->subtractFrom(Work);
    FirstPass.push_back(*W);
  }

  std::vector<ChartWindow> Overlay;
  const char Fills[] = {'1', '2', '3'};
  for (size_t I = 0; I < FirstPass.size(); ++I)
    Overlay.push_back({&FirstPass[I], Fills[I % 3]});
  std::printf("\n%s\n", renderDomainChart(Domain, Overlay,
                                          PaperExampleHorizonStart,
                                          PaperExampleHorizonEnd)
                            .c_str());

  // The full two-phase scheduling iteration: collect every alternative,
  // derive the VO limits T*/B*, and pick the efficient combination.
  std::printf("=== Full scheduling iteration ===\n");
  DpOptimizer Dp;
  Metascheduler Scheduler(Amp, Dp);
  const IterationOutcome Out = Scheduler.runIteration(Slots, Jobs);

  std::printf("alternatives per job:");
  for (const auto &PerJob : Out.Alternatives.PerJob)
    std::printf(" %zu", PerJob.size());
  std::printf("\nT* (time quota) = %.1f, B* (VO budget) = %.1f\n",
              Out.TimeQuota, Out.VoBudget);

  if (!Out.Choice.Feasible) {
    std::printf("no feasible combination; batch postponed\n");
    return 0;
  }
  std::printf("selected combination: total time %.1f, total cost %.1f\n",
              Out.Choice.ObjectiveTotal, Out.Choice.ConstraintTotal);
  for (const ScheduledJob &S : Out.Scheduled) {
    std::printf("job %d -> alternative %zu, window [%.0f, %.0f), "
                "cost %.1f\n",
                S.JobId, S.AlternativeIndex, S.W.startTime().value(),
                S.W.endTime().value(), S.W.totalCost().value());
    Domain.reserveWindow(S.W, S.JobId);
  }

  std::printf("\n=== Domain after commit (external jobs as letters) "
              "===\n\n%s",
              renderDomainChart(Domain, PaperExampleHorizonStart,
                                PaperExampleHorizonEnd)
                  .c_str());
  return 0;
}
