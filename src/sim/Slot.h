//===-- sim/Slot.h - Vacant time slot model ------------------------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slot is a vacant time span on one computational node that can be
/// assigned to a task of a parallel job (Section 1 of the paper). The
/// node's performance and unit price are denormalized into the slot so
/// the search algorithms can scan a flat list.
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_SIM_SLOT_H
#define ECOSCHED_SIM_SLOT_H

#include "support/Check.h"

#include <cmath>

namespace ecosched {

/// Comparison tolerance for times and costs throughout the library.
/// Slot arithmetic only adds and subtracts values of comparable
/// magnitude (hundreds), so a fixed epsilon is adequate.
inline constexpr double TimeEpsilon = 1e-9;

/// \name Tolerant comparisons
/// Every time/cost comparison in the library goes through these helpers
/// so the tolerance convention is stated once: two values within
/// TimeEpsilon of each other are the same instant / the same price.
/// Exact `<`/`==` on doubles remains correct — and required — inside
/// strict-weak-ordering comparators, where an epsilon would break
/// transitivity.
/// @{

/// True if \p A and \p B are within \p Eps of each other.
inline bool approxEq(double A, double B, double Eps = TimeEpsilon) {
  return std::fabs(A - B) <= Eps;
}

/// True if \p A <= \p B up to tolerance (A is not meaningfully greater).
inline bool approxLe(double A, double B, double Eps = TimeEpsilon) {
  return A <= B + Eps;
}

/// True if \p A >= \p B up to tolerance (A is not meaningfully smaller).
inline bool approxGe(double A, double B, double Eps = TimeEpsilon) {
  return A >= B - Eps;
}

/// True if \p A is meaningfully less than \p B (by more than \p Eps).
inline bool approxLt(double A, double B, double Eps = TimeEpsilon) {
  return A < B - Eps;
}

/// True if \p A is meaningfully greater than \p B (by more than \p Eps).
inline bool approxGt(double A, double B, double Eps = TimeEpsilon) {
  return A > B + Eps;
}

/// @}

/// A vacant time span on one node.
struct Slot {
  /// Node the slot is allocated on.
  int NodeId = -1;
  /// Relative performance rate of that node.
  double Performance = 1.0;
  /// Usage cost per time unit of that node.
  double UnitPrice = 0.0;
  /// Start time of the vacant span.
  double Start = 0.0;
  /// End time of the vacant span (exclusive).
  double End = 0.0;

  Slot() = default;
  Slot(int NodeId, double Performance, double UnitPrice, double Start,
       double End)
      : NodeId(NodeId), Performance(Performance), UnitPrice(UnitPrice),
        Start(Start), End(End) {
    ECOSCHED_CHECK(End >= Start, "slot on node {} ends before it starts: [{}, {})",
                   NodeId, Start, End);
    ECOSCHED_CHECK(Performance > 0.0,
                   "node {} performance must be positive, got {}", NodeId,
                   Performance);
  }

  /// Time span of the slot.
  double length() const { return End - Start; }

  /// Runtime of a task of etalon volume \p Volume on this slot's node.
  double runtimeFor(double Volume) const { return Volume / Performance; }

  /// True if the slot still offers at least \p Duration time units when
  /// the task starts at \p StartTime (used by the expiration step 3 of
  /// ALP/AMP).
  bool coversFrom(double StartTime, double Duration) const {
    return approxLe(Start, StartTime) &&
           approxGe(End - StartTime, Duration);
  }
};

/// Ordering used by the search algorithms: non-decreasing start time,
/// ties broken by node id for determinism. Comparisons are exact on
/// purpose: a tolerant comparator is not a strict weak ordering.
inline bool slotStartLess(const Slot &A, const Slot &B) {
  if (A.Start != B.Start)
    return A.Start < B.Start;
  if (A.NodeId != B.NodeId)
    return A.NodeId < B.NodeId;
  return A.End < B.End;
}

} // namespace ecosched

#endif // ECOSCHED_SIM_SLOT_H
