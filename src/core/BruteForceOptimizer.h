//===-- core/BruteForceOptimizer.h - Exact enumeration oracle ------*- C++ -*-=//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive enumeration with branch-and-bound pruning. Exact, so it
/// serves as the correctness oracle for DpOptimizer in the tests, and
/// as the reference optimum in the optimizer-ablation bench. Worst-case
/// exponential; intended for small instances (the paper's batches have
/// 3..7 jobs).
///
//===----------------------------------------------------------------------===//

#ifndef ECOSCHED_CORE_BRUTEFORCEOPTIMIZER_H
#define ECOSCHED_CORE_BRUTEFORCEOPTIMIZER_H

#include "core/Optimizer.h"

namespace ecosched {

/// Exact multiple-choice optimizer via pruned enumeration.
class BruteForceOptimizer : public CombinationOptimizer {
public:
  std::string_view name() const override { return "brute-force"; }

  CombinationChoice solve(const CombinationProblem &Problem) const override;
};

} // namespace ecosched

#endif // ECOSCHED_CORE_BRUTEFORCEOPTIMIZER_H
