//===-- bench/tab_alternatives_stats.cpp - Section 5 scalar results -------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E7 (DESIGN.md): the in-text scalar results of Section 5 —
/// alternatives found per job under both tasks, the average number of
/// slots per experiment (135.11), the average number of jobs per counted
/// iteration (4.18 under cost minimization, below the overall batch-size
/// mean), and the counted-experiment rate.
///
//===----------------------------------------------------------------------===//

#include "core/Experiment.h"
#include "support/CommandLine.h"
#include "support/Table.h"

#include <cstdio>

using namespace ecosched;

int main(int Argc, char **Argv) {
  ArgParser Args("tab_alternatives_stats",
                 "Section 5 scalar results: alternatives, slots, jobs");
  const int64_t &Iterations =
      Args.addInt("iterations", 2000, "simulated scheduling iterations");
  const int64_t &Seed = Args.addInt("seed", 2011, "RNG seed");
  const double &PriceFactor = Args.addReal(
      "price-factor", 1.1,
      "request price cap factor: C = factor * 1.7^Pmin");
  const int64_t &Threads = Args.addThreads();
  if (!Args.parse(Argc, Argv))
    return 1;

  std::printf("Section 5 scalar results reproduction\n");
  std::printf("=====================================\n\n");

  TablePrinter Table;
  Table.addColumn("metric", TablePrinter::AlignKind::Left);
  Table.addColumn("task", TablePrinter::AlignKind::Left);
  Table.addColumn("measured");
  Table.addColumn("paper");

  for (const bool CostTask : {false, true}) {
    ExperimentConfig Cfg;
    Cfg.Iterations = Iterations;
    Cfg.Seed = static_cast<uint64_t>(Seed);
    Cfg.Jobs.PriceFactor = PriceFactor;
    Cfg.Threads = static_cast<size_t>(Threads);
    Cfg.Task = CostTask ? OptimizationTaskKind::MinimizeCost
                        : OptimizationTaskKind::MinimizeTime;
    const ExperimentResult R = PairedExperiment(Cfg).run();
    const char *Task = CostTask ? "cost-min" : "time-min";

    Table.beginRow();
    Table.addCell(std::string("ALP alternatives per job"));
    Table.addCell(std::string(Task));
    Table.addCell(R.Alp.AlternativesPerJob.mean(), 2);
    Table.addCell(CostTask ? 7.28 : 7.39, 2);

    Table.beginRow();
    Table.addCell(std::string("AMP alternatives per job"));
    Table.addCell(std::string(Task));
    Table.addCell(R.Amp.AlternativesPerJob.mean(), 2);
    Table.addCell(CostTask ? 34.23 : 34.28, 2);

    Table.beginRow();
    Table.addCell(std::string("avg slots per iteration"));
    Table.addCell(std::string(Task));
    Table.addCell(R.SlotsCounted.mean(), 2);
    Table.addCell(135.11, 2);

    Table.beginRow();
    Table.addCell(std::string("avg jobs per counted iteration"));
    Table.addCell(std::string(Task));
    Table.addCell(R.JobsCounted.mean(), 2);
    Table.addCell(CostTask ? 4.18 : 0.0, 2);

    Table.beginRow();
    Table.addCell(std::string("avg jobs per iteration (all)"));
    Table.addCell(std::string(Task));
    Table.addCell(R.JobsAll.mean(), 2);
    Table.addCell(5.0, 2); // Uniform [3,7] has mean 5.

    Table.beginRow();
    Table.addCell(std::string("counted iterations %"));
    Table.addCell(std::string(Task));
    Table.addCell(100.0 * static_cast<double>(R.CountedIterations) /
                      static_cast<double>(R.TotalIterations),
                  1);
    Table.addCell(CostTask ? 34.3 : 0.0, 1);
  }
  Table.print(stdout);

  std::printf("\nnotes: the paper publishes the counted rate and "
              "jobs-per-iteration only for the cost-minimization study "
              "(8571/25000, 4.18); 0.00 marks unpublished references.\n"
              "Counted batches are smaller than average because large "
              "batches often leave some job without any ALP "
              "alternative, dropping the experiment (Section 5).\n");
  return 0;
}
