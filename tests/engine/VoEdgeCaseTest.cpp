//===-- tests/engine/VoEdgeCaseTest.cpp - Cancellation edge cases ---------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regression tests for the VO cancellation edge cases backed by the
/// ReservationLedger invariants: cancelling a job whose committed
/// reservation has not started yet, and failing a node that holds no
/// reservations.
///
//===----------------------------------------------------------------------===//

#include "engine/VirtualOrganization.h"

#include "core/AmpSearch.h"
#include "core/DpOptimizer.h"

#include <gtest/gtest.h>

using namespace ecosched;

namespace {

Job makeJob(int Id, int Nodes, double Volume, double MaxPrice) {
  Job J;
  J.Id = Id;
  J.Request.NodeCount = Nodes;
  J.Request.Volume = Volume;
  J.Request.MinPerformance = 1.0;
  J.Request.MaxUnitPrice = MaxPrice;
  return J;
}

ComputingDomain makeDomain() {
  ComputingDomain D;
  D.addNode(1.0, 1.0, "n0");
  D.addNode(2.0, 1.5, "n1");
  D.addNode(2.0, 1.5, "n2");
  return D;
}

struct VoFixture {
  AmpSearch Amp;
  DpOptimizer Dp;
  Metascheduler Scheduler;
  VoFixture() : Scheduler(Amp, Dp) {}
};

} // namespace

TEST(VoEdgeCaseTest, CancelJobWhoseReservationHasNotStarted) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 10.0; // Reservations far outlive one period.
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);

  // Job 1 occupies all nodes for a long stretch; job 2, scheduled one
  // iteration later, can only be placed after job 1 ends — its
  // reservation start lies in the future.
  Vo.submit(makeJob(1, 3, 200.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);
  const double LoadAfterFirst = Vo.domain().externalLoad();

  Vo.submit(makeJob(2, 3, 100.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);
  ASSERT_TRUE(Vo.ledger().isRunning(2));
  ASSERT_GT(Vo.domain().externalLoad(), LoadAfterFirst);

  // Cancelling the not-yet-started job must remove every one of its
  // reservations (the ledger CHECKs the domain is clean afterwards)
  // and leave job 1 untouched.
  EXPECT_TRUE(Vo.cancelJob(2));
  EXPECT_FALSE(Vo.ledger().isRunning(2));
  EXPECT_TRUE(Vo.ledger().isRunning(1));
  EXPECT_EQ(Vo.domain().externalReservationCount(2), 0u);

  // Job 2 never completes and owes nothing; job 1 finishes normally.
  for (int I = 0; I < 40 && Vo.completed().empty(); ++I)
    Vo.runIteration();
  ASSERT_EQ(Vo.completed().size(), 1u);
  EXPECT_EQ(Vo.completed()[0].JobId, 1);
}

TEST(VoEdgeCaseTest, CancelJobScheduledThisIteration) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 20.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 2, 100.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);

  // Immediately after the committing iteration the job is running, not
  // queued: cancellation must go through the ledger release path.
  EXPECT_EQ(Vo.queueLength(), 0u);
  EXPECT_TRUE(Vo.cancelJob(1));
  EXPECT_DOUBLE_EQ(Vo.domain().externalLoad(), 0.0);
  EXPECT_FALSE(Vo.cancelJob(1));
}

TEST(VoEdgeCaseTest, FailNodeHoldingNoReservations) {
  VoFixture F;
  VirtualOrganization Vo(makeDomain(), F.Scheduler);

  // No jobs anywhere: the failure takes the node out of service but
  // cancels nothing (the ledger CHECKs its running set is unchanged).
  EXPECT_EQ(Vo.injectNodeFailure(1), 0u);
  EXPECT_FALSE(Vo.domain().isNodeAvailable(1));
  EXPECT_EQ(Vo.queueLength(), 0u);
  EXPECT_EQ(Vo.ledger().runningCount(), 0u);

  Vo.repairNode(1);
  EXPECT_TRUE(Vo.domain().isNodeAvailable(1));
}

TEST(VoEdgeCaseTest, FailNodeUnusedByRunningJob) {
  VoFixture F;
  VirtualOrganization::Config Cfg;
  Cfg.IterationPeriod = 20.0;
  Cfg.HorizonLength = 600.0;
  VirtualOrganization Vo(makeDomain(), F.Scheduler, Cfg);
  Vo.submit(makeJob(1, 1, 100.0, 2.0));
  ASSERT_EQ(Vo.runIteration().Committed, 1u);

  // Find a node the single committed window does not occupy.
  int FreeNode = -1;
  for (int Node = 0; Node < 3; ++Node)
    if (Vo.domain().occupancy(Node).empty())
      FreeNode = Node;
  ASSERT_GE(FreeNode, 0);

  const double LoadBefore = Vo.domain().externalLoad();
  EXPECT_EQ(Vo.injectNodeFailure(FreeNode), 0u);
  EXPECT_EQ(Vo.queueLength(), 0u);
  EXPECT_TRUE(Vo.ledger().isRunning(1));
  EXPECT_DOUBLE_EQ(Vo.domain().externalLoad(), LoadBefore);
}
