//===-- fuzz/WindowInvariantFuzzer.cpp - ALP/AMP window invariants --------===//
//
// Part of EcoSched, a reproduction of "Slot Selection and Co-allocation for
// Economic Scheduling in Distributed Computing" (Toporkov et al., PaCT 2011).
//
//===----------------------------------------------------------------------===//
//
// Decodes fuzzer bytes into a valid (but adversarially shaped) slot list
// and job batch, runs the ALP and AMP searches, and asserts the paper's
// admissibility invariants on every window either algorithm returns:
//
//   * exactly N member slots, on pairwise distinct nodes, each covering
//     [start, start + runtime) (Section 3 step 1);
//   * member performance >= P and, for ALP, the per-slot price cap
//     C(s_k) <= C (conditions 2a/2c);
//   * for AMP, total window cost within the job budget S = rho*C*t*N
//     (Section 3 / Section 6);
//   * a finite deadline bounds the window end.
//
// On top of single windows, the multi-pass AlternativeSearch must yield
// pairwise non-intersecting alternatives (Section 2) and its SlotFilter
// fast path must reproduce the textbook unfiltered sweep bit for bit
// (the PR-3 result-preservation contract).
//
// Finally, every found alternative's damage is replayed two ways — via
// Window::subtractFrom, whose fallback probes the per-node interval
// index, and via a mirror whose fallback is the retained linear scan
// (SlotList::subtractLinear) — and the two damaged lists must stay
// bitwise equal after every window (the index-transparency contract).
//
//===----------------------------------------------------------------------===//

#include "FuzzInput.h"
#include "core/AlpSearch.h"
#include "core/AlternativeSearch.h"
#include "core/AmpSearch.h"
#include "support/Check.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

using namespace ecosched;
using fuzz::FuzzInput;

namespace {

constexpr double Grid = 0.25;

std::vector<Slot> decodeSlots(FuzzInput &In) {
  std::vector<Slot> Slots;
  const int Nodes = In.takeIntInRange(1, 5);
  for (int Node = 0; Node < Nodes; ++Node) {
    const int Count = In.takeIntInRange(0, 4);
    const double Performance = In.takeQuantized(Grid, 3.0, Grid);
    const double Price = In.takeQuantized(0.0, 8.0, Grid);
    double Cursor = In.takeQuantized(0.0, 6.0, Grid);
    for (int I = 0; I < Count; ++I) {
      const double Start = Cursor + In.takeQuantized(Grid, 4.0, Grid);
      const double End = Start + In.takeQuantized(Grid, 12.0, Grid);
      Slots.emplace_back(Node, Performance, Price, Start, End);
      Cursor = End;
    }
  }
  return Slots;
}

ResourceRequest decodeRequest(FuzzInput &In) {
  ResourceRequest R;
  R.NodeCount = In.takeIntInRange(1, 4);
  R.Volume = In.takeQuantized(Grid, 8.0, Grid);
  R.MinPerformance = In.takeQuantized(Grid, 2.0, Grid);
  R.MaxUnitPrice = In.takeQuantized(0.0, 8.0, Grid);
  R.BudgetFactor = 0.5 + 0.25 * In.takeIntInRange(0, 2); // {0.5, 0.75, 1}
  R.BudgetPolicy = In.takeBool() ? BudgetPolicyKind::SpanBased
                                 : BudgetPolicyKind::VolumeBased;
  if (In.takeBool())
    R.Deadline = In.takeQuantized(1.0, 40.0, Grid);
  return R;
}

/// The Section 3 admissibility invariants for one returned window.
void checkWindow(const Window &W, const ResourceRequest &R, bool PerSlotCap,
                 const char *Algo) {
  W.validate(static_cast<size_t>(R.NodeCount));
  for (size_t I = 0; I < W.size(); ++I) {
    const WindowSlot &M = W[I];
    for (size_t J = I + 1; J < W.size(); ++J)
      ECOSCHED_CHECK(M.Source.NodeId != W[J].Source.NodeId,
                     "{} window members {} and {} share node {}", Algo, I,
                     J, M.Source.NodeId);
    ECOSCHED_CHECK(M.Source.coversFrom(TimePoint(W.startTime().value()), Duration(M.Runtime)),
                   "{} member {} does not cover its own task: slot "
                   "[{}, {}) vs start {} runtime {}",
                   Algo, I, M.Source.Start, M.Source.End, W.startTime().value(),
                   M.Runtime);
    ECOSCHED_CHECK(approxGe(M.Source.Performance, R.MinPerformance),
                   "{} member {} below the performance floor: {} < {}",
                   Algo, I, M.Source.Performance, R.MinPerformance);
    ECOSCHED_CHECK(approxEq(M.Runtime, R.Volume / M.Source.Performance),
                   "{} member {} runtime {} is not volume/performance {}",
                   Algo, I, M.Runtime, R.Volume / M.Source.Performance);
    if (PerSlotCap)
      ECOSCHED_CHECK(approxLe(M.Source.UnitPrice, R.MaxUnitPrice),
                     "{} member {} breaks the per-slot cap: {} > {}", Algo,
                     I, M.Source.UnitPrice, R.MaxUnitPrice);
  }
  if (!PerSlotCap)
    ECOSCHED_CHECK(approxLe(W.totalCost().value(), R.budget().value()),
                   "{} window cost {} exceeds the job budget {}", Algo,
                   W.totalCost().value(), R.budget().value());
  if (std::isfinite(R.Deadline))
    ECOSCHED_CHECK(approxLe(W.endTime().value(), R.Deadline),
                   "{} window ends at {} past the deadline {}", Algo,
                   W.endTime().value(), R.Deadline);
}

/// Bitwise window equality, for the filtered-vs-unfiltered differential.
bool sameWindow(const Window &A, const Window &B) {
  if (A.startTime().value() != B.startTime().value() || A.timeSpan().value() != B.timeSpan().value() ||
      A.totalCost().value() != B.totalCost().value() || A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const WindowSlot &MA = A[I], &MB = B[I];
    if (MA.Source.NodeId != MB.Source.NodeId ||
        MA.Source.Start != MB.Source.Start ||
        MA.Source.End != MB.Source.End || MA.Runtime != MB.Runtime ||
        MA.Cost != MB.Cost)
      return false;
  }
  return true;
}

/// Asserts two independently damaged lists agree bit for bit.
void checkSameLists(const SlotList &A, const SlotList &B) {
  ECOSCHED_CHECK(A.size() == B.size(),
                 "indexed and linear damage paths diverged: {} slots vs {}",
                 A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    ECOSCHED_CHECK(A[I].NodeId == B[I].NodeId && A[I].Start == B[I].Start &&
                       A[I].End == B[I].End,
                   "slot {} diverged between the indexed and linear damage "
                   "paths: node {} [{}, {}) vs node {} [{}, {})",
                   I, A[I].NodeId, A[I].Start, A[I].End, B[I].NodeId,
                   B[I].Start, B[I].End);
}

/// Replays every alternative's damage against fresh copies of \p List
/// two ways: Window::subtractFrom (exact splice, then the indexed
/// probe) versus a mirror whose fallback is the linear oracle scan.
/// Later windows find their member sources split by earlier ones, so
/// the fallback paths are genuinely exercised.
void checkDamageDifferential(const SlotList &List,
                             const AlternativeSet &Alts) {
  SlotList IndexedList = List;
  SlotList LinearList = List;
  // Fuzz lists sit far below SlotList::IndexBuildThreshold, where the
  // subtractFrom fallback would take the linear cutoff; force the
  // index so the replay exercises the indexed probe and the index
  // maintenance of the subtractExact fast path alike.
  IndexedList.buildIndexNow();
  for (const std::vector<Window> &PerJob : Alts.PerJob) {
    for (const Window &W : PerJob) {
      const bool IndexedFound = W.subtractFrom(IndexedList);
      bool LinearFound = true;
      for (const WindowSlot &M : W) {
        const double End = W.startTime().value() + M.Runtime;
        if (!LinearList.subtractExact(M.Source, TimePoint(W.startTime().value()), TimePoint(End)))
          LinearFound &= LinearList.subtractLinear(M.Source.NodeId, TimePoint(W.startTime().value()), TimePoint(End));
      }
      ECOSCHED_CHECK(IndexedFound == LinearFound,
                     "indexed damage found {} but the linear mirror "
                     "found {} for the window starting at {}",
                     IndexedFound, LinearFound, W.startTime().value());
      checkSameLists(IndexedList, LinearList);
      ECOSCHED_CHECK(IndexedList.checkIndexConsistency(),
                     "interval index diverged after subtracting the "
                     "window starting at {}",
                     W.startTime().value());
    }
  }
}

void checkAlternatives(const SlotSearchAlgorithm &Algo, const SlotList &List,
                       const Batch &Jobs, bool PerSlotCap) {
  AlternativeSearch::Config Filtered;
  Filtered.MaxPasses = 3;
  Filtered.MaxAlternativesPerJob = 3;
  AlternativeSearch::Config Unfiltered = Filtered;
  Unfiltered.UseFilter = false;

  const AlternativeSet Fast =
      AlternativeSearch(Algo, Filtered).run(List, Jobs);
  const AlternativeSet Reference =
      AlternativeSearch(Algo, Unfiltered).run(List, Jobs);

  ECOSCHED_CHECK(Fast.PerJob.size() == Reference.PerJob.size(),
                 "filtered sweep changed the batch shape: {} vs {}",
                 Fast.PerJob.size(), Reference.PerJob.size());
  std::vector<const Window *> All;
  for (size_t J = 0; J < Fast.PerJob.size(); ++J) {
    ECOSCHED_CHECK(Fast.PerJob[J].size() == Reference.PerJob[J].size(),
                   "filtered sweep found {} alternatives for job {}, the "
                   "textbook sweep {}",
                   Fast.PerJob[J].size(), J, Reference.PerJob[J].size());
    for (size_t A = 0; A < Fast.PerJob[J].size(); ++A) {
      ECOSCHED_CHECK(sameWindow(Fast.PerJob[J][A], Reference.PerJob[J][A]),
                     "filtered sweep diverged on job {} alternative {}", J,
                     A);
      checkWindow(Fast.PerJob[J][A], Jobs[J].Request, PerSlotCap,
                  "alternative");
      All.push_back(&Fast.PerJob[J][A]);
    }
  }
  // Section 2: every pair of alternatives across the whole batch is
  // carved from disjoint processor time.
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      ECOSCHED_CHECK(!All[I]->intersects(*All[J]),
                     "alternatives {} and {} intersect in processor time",
                     I, J);

  checkDamageDifferential(List, Fast);
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  FuzzInput In(Data, Size);

  const SlotList List{decodeSlots(In)};
  Batch Jobs;
  const int JobCount = In.takeIntInRange(1, 3);
  for (int I = 0; I < JobCount; ++I) {
    Job J;
    J.Id = I;
    J.Request = decodeRequest(In);
    Jobs.push_back(J);
  }

  const AlpSearch Alp;
  const AmpSearch Amp;
  for (const Job &J : Jobs) {
    if (const auto W = Alp.findWindow(List, J.Request))
      checkWindow(*W, J.Request, /*PerSlotCap=*/true, "ALP");
    if (const auto W = Amp.findWindow(List, J.Request))
      checkWindow(*W, J.Request, /*PerSlotCap=*/false, "AMP");
  }

  checkAlternatives(Alp, List, Jobs, /*PerSlotCap=*/true);
  checkAlternatives(Amp, List, Jobs, /*PerSlotCap=*/false);
  return 0;
}
