file(REMOVE_RECURSE
  "../bench/ablation_budget_policy"
  "../bench/ablation_budget_policy.pdb"
  "CMakeFiles/ablation_budget_policy.dir/ablation_budget_policy.cpp.o"
  "CMakeFiles/ablation_budget_policy.dir/ablation_budget_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_budget_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
